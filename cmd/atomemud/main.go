// Command atomemud serves emulation jobs over HTTP/JSON.
//
//	atomemud [-addr :8347] [-workers 4] [-queue 16]
//
// Endpoints:
//
//	POST /jobs        submit a server.JobRequest; 202 with {"id": ...},
//	                  400 on a bad request, 429 (with Retry-After) when
//	                  the queue is full, 503 while draining
//	GET  /jobs        list all job statuses
//	GET  /jobs/{id}   one job's status (live counters while running)
//	GET  /jobs/{id}/checkpoint  latest live checkpoint as an ACKP image
//	POST /jobs/{id}/resume      admit a job resuming from a shipped ACKP
//	                  snapshot (router failover hand-off)
//	GET  /healthz     liveness + metrics (always 200 while the process is up)
//	GET  /readyz      admission readiness (503 once draining starts or
//	                  while journal replay is still running, Retry-After set)
//	GET  /statz       metrics + per-scheme circuit-breaker states
//	GET  /metrics     Prometheus text exposition (counters, breaker
//	                  gauges, engine totals, per-scheme latency histograms)
//
// With -pprof ADDR the daemon also serves net/http/pprof on a separate
// listener (keep it off the tenant-facing address).
//
// On SIGTERM or SIGINT the daemon stops admitting (503), finishes every
// accepted job — cancelling stragglers after -drain-grace — and exits 0
// once all jobs are terminal. A second signal aborts the HTTP server
// immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"atomemu/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "atomemud:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 4, "concurrent emulation workers")
	queue := flag.Int("queue", 16, "job queue depth (full queue sheds with 429)")
	wallDeadline := flag.Duration("wall-deadline", 30*time.Second, "default per-job wall-clock budget")
	maxWallDeadline := flag.Duration("max-wall-deadline", 2*time.Minute, "cap on tenant-requested wall budgets")
	virtDeadline := flag.Uint64("virtual-deadline", 2_000_000_000, "default per-job virtual-cycle budget")
	maxInstrs := flag.Uint64("max-instrs", 4_000_000_000, "cap on guest instructions per job")
	maxThreads := flag.Int("max-threads", 64, "cap on threads per job")
	breakerThreshold := flag.Int("breaker-threshold", 3, "scheme failures before the breaker opens (0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second, "open-breaker cooldown before a half-open probe")
	drainGrace := flag.Duration("drain-grace", 10*time.Second, "time to let jobs finish on SIGTERM before cancelling them")
	allowFault := flag.Bool("allow-fault-inject", false, "accept fault-injection rules in job requests (soak/CI only)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off; use a loopback port, not -addr)")
	dataDir := flag.String("data-dir", "", "durability directory: job journal + checkpoint spills; accepted jobs survive restarts (empty = in-memory only)")
	fsync := flag.String("fsync", "batch", "journal sync policy: always (power-loss safe), batch (default), never (crash-safe via page cache only)")
	maxResumes := flag.Int("max-restart-resumes", 3, "checkpoint-resume attempts per job across restarts before requeueing from scratch (negative = unbounded)")
	tbstoreBlocks := flag.Int("tbstore-blocks", 0, "cross-job shared translation store capacity in blocks (0 = off)")
	warmPool := flag.Int("warm-pool", 0, "checkpoint-templated warm-start pool size in templates (0 = off)")
	warmCkptEvery := flag.Uint64("warm-checkpoint-every", 0, "checkpoint cadence (virtual cycles) given to cadence-less jobs so warm templates can be captured (0 = none)")
	flag.Parse()

	s, err := server.New(server.Options{
		Workers:                *workers,
		QueueDepth:             *queue,
		DefaultWallDeadline:    *wallDeadline,
		MaxWallDeadline:        *maxWallDeadline,
		DefaultVirtualDeadline: *virtDeadline,
		MaxGuestInstrs:         *maxInstrs,
		MaxThreadsPerJob:       *maxThreads,
		BreakerThreshold:       *breakerThreshold,
		BreakerCooldown:        *breakerCooldown,
		DrainGrace:             *drainGrace,
		AllowFaultInjection:    *allowFault,
		DataDir:                *dataDir,
		Fsync:                  *fsync,
		MaxRestartResumes:      *maxResumes,
		SharedTBCacheBlocks:    *tbstoreBlocks,
		WarmPoolSize:           *warmPool,
		WarmCheckpointEvery:    *warmCkptEvery,
		BackgroundReplay:       true,
		Logger:                 log.Default(),
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		// Replay runs behind the 503 readiness window; log its outcome once
		// it settles so the listener is up while recovery is still reading.
		go func() {
			if err := s.WaitReady(context.Background()); err != nil {
				return
			}
			m := s.Metrics()
			log.Printf("atomemud: durable in %s (fsync=%s, replayed=%d records, resumed=%d requeued=%d terminal=%d)",
				*dataDir, *fsync, m.JournalReplayed, m.RestartResumed, m.RestartRequeued, m.RestartTerminal)
		}()
	}

	if *pprofAddr != "" {
		// A dedicated mux, not http.DefaultServeMux: the profiling
		// endpoints must never leak onto the tenant-facing listener.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		log.Printf("atomemud: pprof on %s", pln.Addr())
		go func() {
			if err := http.Serve(pln, pm); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("atomemud: pprof server: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	log.Printf("atomemud: listening on %s (workers=%d queue=%d)", ln.Addr(), *workers, *queue)

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // second signal kills the process via default handling

	log.Printf("atomemud: draining (grace %s)", *drainGrace)
	// Drain first so in-flight status polls keep working until every
	// accepted job is terminal, then close the HTTP server.
	dctx, cancel := context.WithTimeout(context.Background(), *drainGrace+30*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		hs.Close()
		return fmt.Errorf("drain: %w", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	m := s.Metrics()
	log.Printf("atomemud: drained clean (accepted=%d completed=%d failed=%d canceled=%d shed=%d)",
		m.Accepted, m.Completed, m.Failed, m.Canceled, m.Shed)
	return nil
}
