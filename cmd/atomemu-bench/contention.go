package main

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"atomemu/internal/asm"
	"atomemu/internal/engine"
	"atomemu/internal/harness"
	"atomemu/internal/stats"
)

// The contention experiment measures HOST wall-clock throughput of the
// engine's two most contended paths — the SC hot path (exclusive protocol
// plus its accounting) and shared translation-block dispatch — by running
// the LL/SC atomic-counter guest at a vCPU sweep. Unlike the figures,
// which report virtual cycles, this reports real host time: it is the
// regression check for the lock-free TB cache, the O(1) exclusive
// accounting, and (in fastpath mode) block chaining with the profile-gated
// tier (see README "Host-side concurrency").
//
// Each scheme×threads point runs twice: "base" with the fast path off (the
// historical configuration every recorded CSV used) and "fast" with
// chaining and tiering on, so the two are directly comparable in one table.

// contentionProgram is the canonical LL/SC increment worker: r0 = iterations.
const contentionProgram = `
.org 0x10000
.entry worker
worker:
    ldr r4, =counter
loop:
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne loop
    subsi r0, r0, #1
    bne loop
    movi r0, #0
    svc #1
.align 1024
counter: .word 0
`

// contentionChainBudget / contentionHotThreshold are the fastpath-mode
// knobs: a deep chain budget (the worker is one tight loop, so links are
// stable) and a low promotion threshold so the short benchmark spends its
// time in promoted superblocks rather than warming up.
const (
	contentionChainBudget  = 128
	contentionHotThreshold = 16
)

type contentionRow struct {
	Scheme         string            `json:"scheme"`
	Mode           string            `json:"mode"` // "base" or "fast"
	Threads        int               `json:"threads"`
	WallMS         float64           `json:"wall_ms"`
	SCsPerSec      float64           `json:"sc_per_sec"`
	SharedLookups  uint64            `json:"tb_shared_lookups"`
	Translations   uint64            `json:"tb_translations"`
	RaceDiscards   uint64            `json:"tb_race_discards"`
	ChainFollows   uint64            `json:"chain_follows"`
	TierPromotions uint64            `json:"tier_promotions"`
	Cycles         map[string]uint64 `json:"cycles"` // per-component virtual cycles
}

type contentionResult struct {
	rows []contentionRow
}

func runContention(scale float64, threads []int, progress harness.Progress) (*contentionResult, error) {
	if len(threads) == 0 {
		threads = []int{1, 4, 16}
	}
	totalOps := uint64(float64(1_000_000) * scale)
	if totalOps < 1000 {
		totalOps = 1000
	}
	im, err := asm.Assemble(contentionProgram)
	if err != nil {
		return nil, err
	}
	modes := []struct {
		name string
		mut  func(*engine.Config)
	}{
		{"base", func(cfg *engine.Config) {}},
		{"fast", func(cfg *engine.Config) {
			cfg.ChainBudget = contentionChainBudget
			cfg.Tiered = true
			cfg.HotThreshold = contentionHotThreshold
		}},
	}
	res := &contentionResult{}
	for _, scheme := range []string{"hst", "pico-st", "pico-cas"} {
		for _, mode := range modes {
			for _, n := range threads {
				cfg := engine.DefaultConfig(scheme)
				mode.mut(&cfg)
				m, err := engine.NewMachine(cfg)
				if err != nil {
					return nil, err
				}
				if err := m.LoadImage(im); err != nil {
					return nil, err
				}
				per := uint32(totalOps/uint64(n)) + 1
				begin := time.Now()
				for i := 0; i < n; i++ {
					if _, err := m.SpawnThread(im.Entry, per); err != nil {
						return nil, err
					}
				}
				if err := m.Run(); err != nil {
					return nil, err
				}
				wall := time.Since(begin)
				agg := m.AggregateStats()
				cycles := make(map[string]uint64, stats.NumComponents)
				for comp := stats.Component(0); comp < stats.NumComponents; comp++ {
					cycles[comp.String()] = agg.Cycles[comp]
				}
				row := contentionRow{
					Scheme:         scheme,
					Mode:           mode.name,
					Threads:        n,
					WallMS:         float64(wall.Microseconds()) / 1000,
					SCsPerSec:      float64(agg.SCs-agg.SCFails) / wall.Seconds(),
					SharedLookups:  agg.TBSharedLookups,
					Translations:   agg.TBTranslations,
					RaceDiscards:   agg.TBRaceDiscards,
					ChainFollows:   agg.ChainFollows,
					TierPromotions: agg.TierPromotions,
					Cycles:         cycles,
				}
				res.rows = append(res.rows, row)
				if progress != nil {
					progress("contention %s/%s t=%d: %.1f ms, %.0f SC/s", scheme, mode.name, n, row.WallMS, row.SCsPerSec)
				}
			}
		}
	}
	return res, nil
}

// Render prints the host-throughput table.
func (c *contentionResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%-9s %-5s %8s %10s %12s %9s %7s %9s %10s %7s\n",
		"scheme", "mode", "threads", "wall(ms)", "SC/s", "tblookup", "tbxlat", "tbdiscard", "chainfllw", "promo")
	for _, r := range c.rows {
		fmt.Fprintf(w, "%-9s %-5s %8d %10.1f %12.0f %9d %7d %9d %10d %7d\n",
			r.Scheme, r.Mode, r.Threads, r.WallMS, r.SCsPerSec,
			r.SharedLookups, r.Translations, r.RaceDiscards,
			r.ChainFollows, r.TierPromotions)
	}
}

// CSV writes the machine-readable form (out/contention.csv).
func (c *contentionResult) CSV(w io.Writer) {
	fmt.Fprintln(w, "scheme,mode,threads,wall_ms,sc_per_sec,tb_shared_lookups,tb_translations,tb_race_discards,chain_follows,tier_promotions")
	for _, r := range c.rows {
		fmt.Fprintf(w, "%s,%s,%d,%.3f,%.0f,%d,%d,%d,%d,%d\n",
			r.Scheme, r.Mode, r.Threads, r.WallMS, r.SCsPerSec,
			r.SharedLookups, r.Translations, r.RaceDiscards,
			r.ChainFollows, r.TierPromotions)
	}
}

// JSON writes the full rows — including the per-component cycle breakdown
// the flat CSV omits — as one machine-readable document, so the perf
// trajectory (SC/s and where the cycles go) is diffable across commits.
func (c *contentionResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Experiment string          `json:"experiment"`
		Rows       []contentionRow `json:"rows"`
	}{Experiment: "contention", Rows: c.rows})
}
