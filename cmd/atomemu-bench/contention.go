package main

import (
	"fmt"
	"io"
	"time"

	"atomemu/internal/asm"
	"atomemu/internal/engine"
	"atomemu/internal/harness"
)

// The contention experiment measures HOST wall-clock throughput of the
// engine's two most contended paths — the SC hot path (exclusive protocol
// plus its accounting) and shared translation-block dispatch — by running
// the LL/SC atomic-counter guest at a vCPU sweep. Unlike the figures,
// which report virtual cycles, this reports real host time: it is the
// regression check for the lock-free TB cache and the O(1) exclusive
// accounting (see README "Host-side concurrency").

// contentionProgram is the canonical LL/SC increment worker: r0 = iterations.
const contentionProgram = `
.org 0x10000
.entry worker
worker:
    ldr r4, =counter
loop:
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne loop
    subsi r0, r0, #1
    bne loop
    movi r0, #0
    svc #1
.align 1024
counter: .word 0
`

type contentionRow struct {
	Scheme        string
	Threads       int
	WallMS        float64
	SCsPerSec     float64
	SharedLookups uint64
	Translations  uint64
	RaceDiscards  uint64
}

type contentionResult struct {
	rows []contentionRow
}

func runContention(scale float64, threads []int, progress harness.Progress) (*contentionResult, error) {
	if len(threads) == 0 {
		threads = []int{1, 4, 16}
	}
	totalOps := uint64(float64(1_000_000) * scale)
	if totalOps < 1000 {
		totalOps = 1000
	}
	im, err := asm.Assemble(contentionProgram)
	if err != nil {
		return nil, err
	}
	res := &contentionResult{}
	for _, scheme := range []string{"hst", "pico-st", "pico-cas"} {
		for _, n := range threads {
			m, err := engine.NewMachine(engine.DefaultConfig(scheme))
			if err != nil {
				return nil, err
			}
			if err := m.LoadImage(im); err != nil {
				return nil, err
			}
			per := uint32(totalOps/uint64(n)) + 1
			begin := time.Now()
			for i := 0; i < n; i++ {
				if _, err := m.SpawnThread(im.Entry, per); err != nil {
					return nil, err
				}
			}
			if err := m.Run(); err != nil {
				return nil, err
			}
			wall := time.Since(begin)
			agg := m.AggregateStats()
			row := contentionRow{
				Scheme:        scheme,
				Threads:       n,
				WallMS:        float64(wall.Microseconds()) / 1000,
				SCsPerSec:     float64(agg.SCs-agg.SCFails) / wall.Seconds(),
				SharedLookups: agg.TBSharedLookups,
				Translations:  agg.TBTranslations,
				RaceDiscards:  agg.TBRaceDiscards,
			}
			res.rows = append(res.rows, row)
			if progress != nil {
				progress("contention %s t=%d: %.1f ms, %.0f SC/s", scheme, n, row.WallMS, row.SCsPerSec)
			}
		}
	}
	return res, nil
}

// Render prints the host-throughput table.
func (c *contentionResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%-9s %8s %10s %12s %9s %7s %9s\n",
		"scheme", "threads", "wall(ms)", "SC/s", "tblookup", "tbxlat", "tbdiscard")
	for _, r := range c.rows {
		fmt.Fprintf(w, "%-9s %8d %10.1f %12.0f %9d %7d %9d\n",
			r.Scheme, r.Threads, r.WallMS, r.SCsPerSec,
			r.SharedLookups, r.Translations, r.RaceDiscards)
	}
}

// CSV writes the machine-readable form (out/contention.csv).
func (c *contentionResult) CSV(w io.Writer) {
	fmt.Fprintln(w, "scheme,threads,wall_ms,sc_per_sec,tb_shared_lookups,tb_translations,tb_race_discards")
	for _, r := range c.rows {
		fmt.Fprintf(w, "%s,%d,%.3f,%.0f,%d,%d,%d\n",
			r.Scheme, r.Threads, r.WallMS, r.SCsPerSec,
			r.SharedLookups, r.Translations, r.RaceDiscards)
	}
}
