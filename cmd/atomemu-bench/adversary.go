package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"atomemu/internal/adversary"
)

type advConfig struct {
	Seed        uint64
	Runs        int
	MaxSteps    uint64
	Targets     []string
	IncludeFree bool
	OutDir      string
	Require     string
	Quiet       bool
}

// runAdversary drives the adversarial interleaving search and reports it.
// Exit status doubles as the CI gate: any unexpected finding fails the
// command, and -require strict-livelock additionally fails it when the
// search did not rediscover the paper's fig. 11 HTM livelock.
func runAdversary(c advConfig) error {
	var logw io.Writer
	if !c.Quiet {
		logw = os.Stderr
	}
	rep, err := adversary.Search(adversary.Options{
		Seed:        c.Seed,
		Runs:        c.Runs,
		MaxSteps:    c.MaxSteps,
		Targets:     c.Targets,
		IncludeFree: c.IncludeFree,
		Log:         logw,
	})
	if err != nil {
		return err
	}

	classes := map[string]int{}
	for _, rec := range rep.Records {
		classes[rec.Outcome.Class.String()]++
	}
	fmt.Printf("Adversary search — seed=%d runs=%d coverage=%d known-livelocks=%d findings=%d\n",
		rep.Seed, len(rep.Records), rep.Coverage, rep.KnownLivelocks, len(rep.Findings))
	fmt.Printf("  outcome classes: ")
	for _, cl := range []string{"ok", "oracle", "livelock", "watchdog", "deadlock", "guest-fault", "wedge", "error"} {
		if n := classes[cl]; n > 0 {
			fmt.Printf("%s=%d ", cl, n)
		}
	}
	fmt.Println()
	for i, f := range rep.Findings {
		fmt.Printf("  FINDING %d: %s\n    %s\n    err=%q oracle=%q\n",
			i, f.Scenario.ID(), f.Why, f.Outcome.Err, f.Outcome.OracleErr)
		if f.Minimized != nil {
			fmt.Printf("    minimized: %s (trace %016x)\n", f.Minimized.ID(), f.MinOutcome.TraceHash)
		}
	}

	if c.OutDir != "" {
		if err := os.MkdirAll(c.OutDir, 0o755); err != nil {
			return err
		}
		csvPath := filepath.Join(c.OutDir, "adversary.csv")
		fcsv, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := rep.WriteCSV(fcsv); err != nil {
			fcsv.Close()
			return err
		}
		if err := fcsv.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", csvPath)
		if len(rep.Findings) > 0 {
			reproDir := filepath.Join(c.OutDir, "repros")
			if err := os.MkdirAll(reproDir, 0o755); err != nil {
				return err
			}
			for i, f := range rep.Findings {
				if f.Minimized == nil {
					continue
				}
				r, err := adversary.NewRepro(*f.Minimized, f.MinOutcome, f.Why)
				if err != nil {
					return err
				}
				path := filepath.Join(reproDir, fmt.Sprintf("finding-%02d.json", i))
				if err := r.WriteFile(path); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
	}

	switch c.Require {
	case "":
	case "strict-livelock":
		if rep.KnownLivelocks == 0 {
			return fmt.Errorf("adversary: -require strict-livelock: the search did not rediscover the fig. 11 HTM livelock")
		}
	default:
		return fmt.Errorf("adversary: unknown -require property %q (want strict-livelock)", c.Require)
	}
	if len(rep.Findings) > 0 {
		return fmt.Errorf("adversary: %d unexpected finding(s); minimized repros written under %s",
			len(rep.Findings), filepath.Join(c.OutDir, "repros"))
	}
	return nil
}
