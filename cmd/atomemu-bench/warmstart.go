package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"atomemu/internal/server"
)

// The warmstart experiment quantifies cross-job translation reuse: the same
// translation-heavy program is submitted repeatedly to in-process daemons
// and the submit-to-terminal wall latency is compared across three start
// modes:
//
//	cold  first job for the image — pays decode + translate for every block
//	hit   repeat job on a shared-translation-store daemon — adopts blocks
//	fork  repeat job on a warm-pool daemon — resumes a checkpoint template
//	      AND adopts blocks
//
// Two servers keep the modes honest: server A enables only the shared store
// (cold vs hit), server B adds the warm pool (template vs fork). The run
// fails if the shared store never hits or the warm pool never forks —
// latency ratios vary with host load, reuse counters must not.

type warmstartConfig struct {
	Stmts   int // straight-line statements in the synthetic program
	Repeats int // repeat submissions per warm mode (best-of)
	OutDir  string
	Quiet   bool
}

// warmstartReport is the JSON artifact (out/BENCH_warmstart.json).
type warmstartReport struct {
	Stmts      int     `json:"stmts"`
	Repeats    int     `json:"repeats"`
	ColdMS     float64 `json:"cold_ms"`
	HitMS      float64 `json:"hit_ms"`
	TemplateMS float64 `json:"template_ms"`
	ForkMS     float64 `json:"fork_ms"`
	SpeedupHit float64 `json:"speedup_hit"`
	SpeedupFrk float64 `json:"speedup_fork"`

	TBStoreHits      uint64 `json:"tbstore_hits"`
	TBStoreMisses    uint64 `json:"tbstore_misses"`
	TBStorePublishes uint64 `json:"tbstore_publishes"`
	TBStoreBlocks    int    `json:"tbstore_blocks"`
	WarmForks        uint64 `json:"warm_forks"`
	WarmPublishes    uint64 `json:"warm_publishes"`

	HitRate float64 `json:"hit_rate"`
}

// synthWarmstartGAC builds a translation-dominated program: a long
// straight-line body every block of which executes exactly once, so a cold
// run's wall time is mostly decode+translate — the cost reuse removes.
func synthWarmstartGAC(stmts int) string {
	var b strings.Builder
	b.WriteString("var x;\nvar y;\nfunc main(n) {\n")
	for i := 0; i < stmts; i++ {
		fmt.Fprintf(&b, "    x = x + %d;\n    y = y + x;\n", i%7+1)
	}
	b.WriteString("    print(x);\n    print(y);\n    exit(0);\n}\n")
	return b.String()
}

func runWarmstart(cfg warmstartConfig) error {
	if cfg.Stmts <= 0 {
		cfg.Stmts = 3000
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 3
	}
	progress := func(format string, a ...any) {
		if !cfg.Quiet {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	src := synthWarmstartGAC(cfg.Stmts)
	req := server.JobRequest{Scheme: "pico-cas", GAC: src, Arg: 1}
	rep := warmstartReport{Stmts: cfg.Stmts, Repeats: cfg.Repeats}

	// Server A: shared translation store only — cold vs hit.
	sA, err := server.New(server.Options{Workers: 1, SharedTBCacheBlocks: 1 << 16})
	if err != nil {
		return err
	}
	defer drainServer(sA)
	cold, st, err := timedJob(sA, req)
	if err != nil {
		return fmt.Errorf("cold job: %w", err)
	}
	var want []uint32 = st.Output
	rep.ColdMS = cold
	progress("cold    %8.2f ms  (%d translations published)", cold, sA.Metrics().TBStorePublishes)
	rep.HitMS, err = bestOf(cfg.Repeats, func() (float64, error) {
		d, st, err := timedJob(sA, req)
		if err != nil {
			return 0, err
		}
		if !sameOutput(st.Output, want) {
			return 0, fmt.Errorf("hit output %v diverges from cold %v", st.Output, want)
		}
		return d, nil
	})
	if err != nil {
		return fmt.Errorf("hit job: %w", err)
	}
	progress("hit     %8.2f ms", rep.HitMS)
	mA := sA.Metrics()
	rep.TBStoreHits = mA.TBStoreHits
	rep.TBStoreMisses = mA.TBStoreMisses
	rep.TBStorePublishes = mA.TBStorePublishes
	rep.TBStoreBlocks = mA.TBStoreBlocks
	if lookups := mA.TBStoreHits + mA.TBStoreMisses; lookups > 0 {
		rep.HitRate = float64(mA.TBStoreHits) / float64(lookups)
	}

	// Server B: shared store + warm pool — template producer vs fork.
	sB, err := server.New(server.Options{
		Workers:             1,
		SharedTBCacheBlocks: 1 << 16,
		WarmPoolSize:        4,
		WarmCheckpointEvery: 5_000,
	})
	if err != nil {
		return err
	}
	defer drainServer(sB)
	rep.TemplateMS, st, err = timedJob(sB, req)
	if err != nil {
		return fmt.Errorf("template job: %w", err)
	}
	if !sameOutput(st.Output, want) {
		return fmt.Errorf("template output %v diverges from cold %v", st.Output, want)
	}
	progress("template%8.2f ms  (%d warm templates)", rep.TemplateMS, sB.Metrics().WarmTemplates)
	rep.ForkMS, err = bestOf(cfg.Repeats, func() (float64, error) {
		d, st, err := timedJob(sB, req)
		if err != nil {
			return 0, err
		}
		if !st.WarmForked {
			return 0, fmt.Errorf("repeat job did not warm-fork")
		}
		if !sameOutput(st.Output, want) {
			return 0, fmt.Errorf("fork output %v diverges from cold %v", st.Output, want)
		}
		return d, nil
	})
	if err != nil {
		return fmt.Errorf("fork job: %w", err)
	}
	progress("fork    %8.2f ms", rep.ForkMS)
	mB := sB.Metrics()
	rep.WarmForks = mB.WarmForks
	rep.WarmPublishes = mB.WarmPublishes

	if rep.HitMS > 0 {
		rep.SpeedupHit = rep.ColdMS / rep.HitMS
	}
	if rep.ForkMS > 0 {
		rep.SpeedupFrk = rep.ColdMS / rep.ForkMS
	}

	fmt.Printf("warm-start latency, %d-statement straight-line image (best of %d repeats)\n", cfg.Stmts, cfg.Repeats)
	fmt.Printf("  %-10s %10s %10s\n", "mode", "ms", "speedup")
	fmt.Printf("  %-10s %10.2f %10s\n", "cold", rep.ColdMS, "1.00x")
	fmt.Printf("  %-10s %10.2f %9.2fx\n", "hit", rep.HitMS, rep.SpeedupHit)
	fmt.Printf("  %-10s %10.2f %10s\n", "template", rep.TemplateMS, "-")
	fmt.Printf("  %-10s %10.2f %9.2fx\n", "fork", rep.ForkMS, rep.SpeedupFrk)
	fmt.Printf("  tbstore: %d hits / %d misses (%.0f%% hit rate), %d blocks; warm: %d forks / %d templates\n",
		rep.TBStoreHits, rep.TBStoreMisses, 100*rep.HitRate, rep.TBStoreBlocks, rep.WarmForks, rep.WarmPublishes)

	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(cfg.OutDir, "BENCH_warmstart.json")
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	// The exposition must carry the reuse counters the fleet dashboards key
	// on, and reuse itself is the experiment's pass condition.
	var expo strings.Builder
	if err := sA.WritePrometheus(&expo); err != nil {
		return err
	}
	if !strings.Contains(expo.String(), "atomemu_tbstore_hits_total") {
		return fmt.Errorf("/metrics exposition is missing atomemu_tbstore_hits_total")
	}
	if rep.TBStoreHits == 0 {
		return fmt.Errorf("shared translation store never hit (rate %.2f)", rep.HitRate)
	}
	if rep.WarmForks == 0 {
		return fmt.Errorf("warm pool never forked")
	}
	return nil
}

// timedJob submits req and waits for a terminal state, returning the
// submit-to-terminal wall latency in milliseconds.
func timedJob(s *server.Server, req server.JobRequest) (float64, server.JobStatus, error) {
	start := time.Now()
	id, err := s.Submit(req)
	if err != nil {
		return 0, server.JobStatus{}, err
	}
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, ok := s.Status(id)
		if !ok {
			return 0, server.JobStatus{}, fmt.Errorf("job %s vanished", id)
		}
		if st.State.Terminal() {
			if st.State != server.StateDone || st.ExitCode != 0 {
				return 0, st, fmt.Errorf("job %s: state=%s exit=%d err=%q", id, st.State, st.ExitCode, st.Error)
			}
			return float64(time.Since(start).Microseconds()) / 1000, st, nil
		}
		time.Sleep(time.Millisecond)
	}
	return 0, server.JobStatus{}, fmt.Errorf("job %s never finished", id)
}

// bestOf runs f n times and keeps the fastest latency.
func bestOf(n int, f func() (float64, error)) (float64, error) {
	best := 0.0
	for i := 0; i < n; i++ {
		d, err := f()
		if err != nil {
			return 0, err
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func sameOutput(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func drainServer(s *server.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = s.Drain(ctx)
}
