package main

// fabricsoak is the multi-node failover proof: an in-process router fronts
// several real worker daemons (this binary re-executed in fabric-serve
// mode), a burst of keyed jobs is submitted, and once the router has
// cached a checkpoint for some in-flight job that job's worker is
// SIGKILLed mid-burst. The audit then asserts the fabric contract:
//
//   - 0 lost — every admitted job is terminal "done" on the router;
//   - 0 duplicated — every idempotency key answers its original router id
//     after the failover, and exactly as many jobs completed as were
//     submitted;
//   - ≥1 checkpoint-resumed — at least one failed-over job continued from
//     a checkpoint image the router shipped to a survivor, not from the
//     program entry;
//   - failover changes no results — every output is byte-identical to an
//     uninterrupted single-node engine run of the same program.
//
// With -out DIR the run writes fabricsoak.csv.

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"atomemu/internal/router"
	"atomemu/internal/server"
)

type fabricsoakConfig struct {
	Fleet   int // worker daemons
	Jobs    int
	Workers int // emulation workers per daemon
	Queue   int
	Scale   float64
	OutDir  string
	Quiet   bool
}

// fabricArg sizes job i so the kill lands mid-run at the default scale.
func fabricArg(scale float64, i int) uint32 {
	n := int(float64(500+80*i) * scale)
	if n < 8 {
		n = 8
	}
	return uint32(n)
}

type fabricWorkerProc struct {
	url   string
	child *exec.Cmd
}

func runFabricsoak(cfg fabricsoakConfig) error {
	if cfg.Fleet < 2 {
		cfg.Fleet = 3
	}
	if cfg.Jobs < 1 {
		cfg.Jobs = 8
	}
	logf := func(format string, a ...any) {
		if !cfg.Quiet {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	tmpDir, err := os.MkdirTemp("", "fabricsoak-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmpDir)

	// Uninterrupted references, computed in-process before the fleet runs.
	refs := make([][]uint32, cfg.Jobs)
	for i := range refs {
		out, err := crashsoakReference(fabricArg(cfg.Scale, i))
		if err != nil {
			return fmt.Errorf("reference run %d: %w", i, err)
		}
		refs[i] = out
	}

	// Spawn the fleet.
	procs := make([]*fabricWorkerProc, 0, cfg.Fleet)
	defer func() {
		for _, p := range procs {
			if p.child.Process != nil {
				p.child.Process.Kill()
				p.child.Wait()
			}
		}
	}()
	urls := make([]string, 0, cfg.Fleet)
	for i := 0; i < cfg.Fleet; i++ {
		addrFile := filepath.Join(tmpDir, fmt.Sprintf("addr-%d", i))
		child := exec.Command(exe, "fabric-serve",
			"-addr-file", addrFile,
			"-workers", strconv.Itoa(cfg.Workers), "-queue", strconv.Itoa(cfg.Queue))
		child.Stderr = os.Stderr
		if err := child.Start(); err != nil {
			return err
		}
		p := &fabricWorkerProc{child: child}
		procs = append(procs, p)
		base, err := awaitAddrFile(addrFile, child, 20*time.Second)
		if err != nil {
			return err
		}
		p.url = base
		urls = append(urls, base)
	}
	logf("fabricsoak: fleet of %d up", cfg.Fleet)

	r, err := router.New(router.Options{
		Workers:                 urls,
		ProbeInterval:           100 * time.Millisecond,
		ProbeTimeout:            2 * time.Second,
		ProbeSuspectAfter:       1,
		ProbeDownAfter:          2,
		PollInterval:            50 * time.Millisecond,
		CheckpointFetchInterval: 250 * time.Millisecond,
		Client:                  &http.Client{Timeout: 10 * time.Second},
	})
	if err != nil {
		return err
	}
	defer r.Close()

	var csv bytes.Buffer
	fmt.Fprintf(&csv, "# fabricsoak fleet=%d jobs=%d workers=%d scale=%g\n", cfg.Fleet, cfg.Jobs, cfg.Workers, cfg.Scale)
	fmt.Fprintf(&csv, "event,done,total,failover_redispatch,failover_resumed,ckpt_fetches,dispatches,bounces,completed\n")
	csvRow := func(event string, done int) {
		mets := routerMetrics(r)
		fmt.Fprintf(&csv, "%s,%d,%d,%g,%g,%g,%g,%g,%g\n", event, done, cfg.Jobs,
			mets["atomemu_router_failover_redispatch_total"],
			mets["atomemu_router_failover_resumed_total"],
			mets["atomemu_router_ckpt_fetch_total"],
			mets["atomemu_router_dispatch_total"],
			mets["atomemu_router_dispatch_bounce_total"],
			mets["atomemu_router_jobs_completed_total"])
	}

	// Submit the burst.
	ids := make([]string, cfg.Jobs)
	keys := make([]string, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		keys[i] = fmt.Sprintf("fabric-%d", i)
		id, err := r.Submit(server.JobRequest{
			Scheme: "pico-cas", GAC: crashsoakGAC, Arg: fabricArg(cfg.Scale, i),
			DeadlineMS:     120_000,
			IdempotencyKey: keys[i],
			Config:         server.JobConfig{CheckpointEvery: 5000},
		})
		if err != nil {
			return fmt.Errorf("submit %s: %w", keys[i], err)
		}
		ids[i] = id
	}
	csvRow("start", 0)

	// Wait until the router caches a checkpoint for a dispatched job —
	// that job's worker is the victim, so the kill provably strands
	// resumable state behind a dead listener.
	var victim string
	deadline := time.Now().Add(60 * time.Second)
	for victim == "" {
		if time.Now().After(deadline) {
			return fmt.Errorf("no checkpoint was cached for any dispatched job within 60s")
		}
		for _, v := range r.Jobs() {
			if string(v.State) == "dispatched" && v.CkptVirtualTime > 0 && v.Worker != "" {
				victim = v.Worker
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, p := range procs {
		if p.url == victim {
			p.child.Process.Kill()
			p.child.Wait()
		}
	}
	logf("fabricsoak: SIGKILLed %s mid-burst", victim)
	csvRow("sigkill", 0)

	// Every job must still finish, off the victim, with the uninterrupted
	// output.
	lost, mismatched := 0, 0
	for i, id := range ids {
		v, err := awaitFabricTerminal(r, id, 180*time.Second)
		if err != nil {
			lost++
			logf("fabricsoak: %s (%s) LOST: %v", keys[i], id, err)
			continue
		}
		if string(v.State) != "done" {
			lost++
			logf("fabricsoak: %s state=%s err=%q", keys[i], v.State, v.Error)
			continue
		}
		if v.Worker == victim {
			mismatched++
			logf("fabricsoak: %s finalized from the killed worker", keys[i])
			continue
		}
		if v.Status == nil || !equalOutputs(v.Status.Output, refs[i]) {
			mismatched++
			logf("fabricsoak: %s output diverged from the uninterrupted reference", keys[i])
		}
	}

	// 0 duplicated: every key still answers its original id, and exactly
	// cfg.Jobs jobs completed.
	duplicated := 0
	for i, key := range keys {
		id, err := r.Submit(server.JobRequest{
			Scheme: "pico-cas", GAC: crashsoakGAC, Arg: fabricArg(cfg.Scale, i),
			IdempotencyKey: key,
		})
		if err != nil || id != ids[i] {
			duplicated++
			logf("fabricsoak: key %s resolved to %s (err=%v), want %s", key, id, err, ids[i])
		}
	}
	mets := routerMetrics(r)
	completed := mets["atomemu_router_jobs_completed_total"]
	resumed := mets["atomemu_router_failover_resumed_total"]
	redispatched := mets["atomemu_router_failover_redispatch_total"]
	if int(completed) != cfg.Jobs {
		duplicated += int(completed) - cfg.Jobs
	}
	csvRow("final", cfg.Jobs-lost-mismatched)

	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(cfg.OutDir, "fabricsoak.csv")
		if err := os.WriteFile(path, csv.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	fmt.Printf("fabricsoak: %d jobs over %d workers, 1 SIGKILL: lost=%d duplicated=%d mismatched=%d redispatched=%g resumed=%g\n",
		cfg.Jobs, cfg.Fleet, lost, duplicated, mismatched, redispatched, resumed)
	if lost > 0 || duplicated != 0 || mismatched > 0 {
		return fmt.Errorf("fabricsoak: fabric contract violated (lost=%d duplicated=%d mismatched=%d)", lost, duplicated, mismatched)
	}
	if redispatched < 1 {
		return fmt.Errorf("fabricsoak: the kill stranded no in-flight jobs — nothing failed over")
	}
	if resumed < 1 {
		return fmt.Errorf("fabricsoak: no failover shipped a checkpoint — the resume path went untested")
	}
	return nil
}

func awaitFabricTerminal(r *router.Router, id string, timeout time.Duration) (router.JobView, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		v, ok := r.Status(id)
		if !ok {
			return v, fmt.Errorf("job vanished from the router")
		}
		switch string(v.State) {
		case "done", "failed", "shed":
			return v, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	v, _ := r.Status(id)
	return v, fmt.Errorf("not terminal after %s (state=%s worker=%s)", timeout, v.State, v.Worker)
}

// routerMetrics scrapes the in-process router's Prometheus exposition the
// same way crashsoak scrapes a daemon's, reusing its unlabeled parser.
func routerMetrics(r *router.Router) map[string]float64 {
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		return map[string]float64{}
	}
	out := map[string]float64{}
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		s := string(line)
		if s == "" || s[0] == '#' || bytes.ContainsRune(line, '{') {
			continue
		}
		sp := -1
		for i := len(s) - 1; i >= 0; i-- {
			if s[i] == ' ' {
				sp = i
				break
			}
		}
		if sp <= 0 {
			continue
		}
		if v, err := strconv.ParseFloat(s[sp+1:], 64); err == nil {
			out[s[:sp]] = v
		}
	}
	return out
}

// --- child mode ---

// runFabricServe is the worker side of fabricsoak: a plain (non-durable)
// atomemud worker on an ephemeral loopback port, its address published
// through -addr-file. Non-durable is the point — when the parent SIGKILLs
// it, everything it held dies with it, and only the router's cached
// checkpoint can save the in-flight work.
func runFabricServe(args []string) error {
	fs := flag.NewFlagSet("fabric-serve", flag.ContinueOnError)
	addrFile := fs.String("addr-file", "", "file to publish the listen address to (required)")
	workers := fs.Int("workers", 2, "emulation workers")
	queue := fs.Int("queue", 16, "job queue depth")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addrFile == "" {
		return fmt.Errorf("fabric-serve needs -addr-file")
	}
	s, err := server.New(server.Options{
		Workers:    *workers,
		QueueDepth: *queue,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// Publish atomically so the parent never reads a half-written address.
	tmp := *addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, *addrFile); err != nil {
		return err
	}
	return http.Serve(ln, s.Handler())
}
