// Command atomemu-bench regenerates every table and figure of the paper's
// evaluation section:
//
//	atomemu-bench fig10        scalability of the software schemes
//	atomemu-bench fig11        scalability of the HTM schemes
//	atomemu-bench fig12        execution-time breakdowns
//	atomemu-bench table1       per-program instruction census
//	atomemu-bench table2       scheme summary matrix (measured)
//	atomemu-bench correctness  lock-free stack ABA audit (§IV-A)
//	atomemu-bench litmus       Seq1–Seq4 atomicity matrix (§IV-A)
//	atomemu-bench contention   host-side SC/TB-dispatch throughput sweep
//	atomemu-bench resilience   HTM schemes at livelock scale, strict vs resilient
//	atomemu-bench trace        contended HST stack run with the event tracer
//	                           on; -out DIR also writes Chrome trace JSON
//	atomemu-bench soak         multi-tenant daemon soak: concurrent clients,
//	                           fault injection, breaker/shed/drain accounting
//	atomemu-bench adversary    seed-driven adversarial interleaving search over
//	                           the lock-free workloads; -out DIR writes the run
//	                           CSV and minimized repros; exits nonzero on any
//	                           unexpected oracle violation
//	atomemu-bench crashsoak    durability proof: SIGKILL a durable child daemon
//	                           mid-burst -crash-cycles times over one data dir;
//	                           exits nonzero if any job is lost, any idempotent
//	                           submit duplicates, or any output diverges from an
//	                           uninterrupted reference (not part of "all")
//	atomemu-bench fabricsoak   multi-node failover proof: an in-process router
//	                           over -fabric-workers worker daemons, one daemon
//	                           SIGKILLed once a checkpoint is cached for its
//	                           in-flight work; exits nonzero unless 0 jobs are
//	                           lost, 0 duplicated, ≥1 checkpoint-resumed and
//	                           every output matches an uninterrupted reference
//	                           (not part of "all")
//	atomemu-bench warmstart    cross-job reuse latency: cold vs shared-store
//	                           hit vs warm-pool fork for one image; -out DIR
//	                           writes BENCH_warmstart.json; exits nonzero if
//	                           the shared store never hits or no fork happens
//	atomemu-bench all          everything above except crashsoak and fabricsoak
//
// Text renders to stdout; with -out DIR each experiment also writes a CSV.
// Seed-driven experiments (adversary, soak, resilience) share the single
// -seed flag and record it in their CSV headers ("# seed=N") so any row
// can be replayed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"atomemu/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "atomemu-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// The crashsoak child mode re-executes this binary as a daemon; it has
	// its own flags and must be routed before the bench FlagSet sees them.
	if len(args) > 0 && args[0] == "crashsoak-serve" {
		return runCrashsoakServe(args[1:])
	}
	if len(args) > 0 && args[0] == "fabric-serve" {
		return runFabricServe(args[1:])
	}
	fs := flag.NewFlagSet("atomemu-bench", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.25, "work scale factor (1.0 = full-size runs)")
	threadsFlag := fs.String("threads", "", "comma-separated thread counts (default: per-figure sweep)")
	outDir := fs.String("out", "", "directory for CSV output (omit to skip CSVs)")
	jsonPath := fs.String("json", "", "path for the contention JSON report (contention/all only)")
	quiet := fs.Bool("q", false, "suppress per-run progress lines")
	stackOps := fs.Uint64("stack-ops", 1048575, "total stack operations for the correctness run")
	stackThreads := fs.Int("stack-threads", 16, "threads for the correctness run")
	stackNodes := fs.Uint("stack-nodes", 64, "stack nodes for the correctness run")
	attempts := fs.Int("attempts", 6, "PICO-CAS retry attempts for the correctness run")
	soakClients := fs.Int("soak-clients", 8, "concurrent clients for the soak run")
	soakJobs := fs.Int("soak-jobs", 12, "jobs per client for the soak run")
	soakWorkers := fs.Int("soak-workers", 4, "daemon workers for the soak run")
	soakQueue := fs.Int("soak-queue", 4, "daemon queue depth for the soak run")
	seed := fs.Uint64("seed", 1, "experiment seed (adversary, soak, resilience); recorded in CSV headers")
	crashCycles := fs.Int("crash-cycles", 3, "SIGKILL cycles for the crashsoak run")
	crashJobs := fs.Int("crash-jobs", 6, "keyed jobs for the crashsoak run")
	fabricFleet := fs.Int("fabric-workers", 3, "worker daemons for the fabricsoak run")
	fabricJobs := fs.Int("fabric-jobs", 8, "keyed jobs for the fabricsoak run")
	warmStmts := fs.Int("warm-stmts", 3000, "straight-line statements for the warmstart image")
	warmRepeats := fs.Int("warm-repeats", 3, "repeat submissions per warmstart mode (best-of)")
	advRuns := fs.Int("runs", 40, "scenario budget for the adversary search")
	advMaxSteps := fs.Uint64("max-steps", 0, "per-scenario step budget for the adversary search (0 = default)")
	advTargets := fs.String("targets", "", "comma-separated workload targets for the adversary search (default: all)")
	advFree := fs.Bool("free", false, "let the adversary search explore free-running mode too")
	require := fs.String("require", "", "fail the adversary search unless a property held (strict-livelock)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: atomemu-bench [flags] {fig10|fig11|fig12|table1|table2|correctness|litmus|contention|resilience|trace|soak|adversary|crashsoak|fabricsoak|warmstart|all}")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("an experiment name is expected")
	}
	cmd := fs.Arg(0)
	// Accept flags after the experiment name too ("bench correctness -out d").
	if fs.NArg() > 1 {
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return err
		}
		if fs.NArg() != 0 {
			fs.Usage()
			return fmt.Errorf("unexpected arguments %v", fs.Args())
		}
	}

	threads, err := parseThreads(*threadsFlag)
	if err != nil {
		return err
	}
	progress := harness.Progress(nil)
	if !*quiet {
		progress = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	saveCSV := func(name string, render func(io.Writer)) error {
		if *outDir == "" {
			return nil
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		render(f)
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		return nil
	}

	experiments := map[string]func() error{
		"fig10": func() error {
			fig, err := harness.RunFig10(*scale, threads, progress)
			if err != nil {
				return err
			}
			fig.Render(os.Stdout)
			return saveCSV("fig10.csv", fig.CSV)
		},
		"fig11": func() error {
			fig, err := harness.RunFig11(*scale, threads, progress)
			if err != nil {
				return err
			}
			fig.Render(os.Stdout)
			return saveCSV("fig11.csv", fig.CSV)
		},
		"fig12": func() error {
			fig, err := harness.RunFig12(*scale, threads, progress)
			if err != nil {
				return err
			}
			fig.Render(os.Stdout)
			return saveCSV("fig12.csv", fig.CSV)
		},
		"table1": func() error {
			tab, err := harness.RunTableI(*scale, 16, progress)
			if err != nil {
				return err
			}
			tab.Render(os.Stdout)
			return saveCSV("table1.csv", tab.CSV)
		},
		"table2": func() error {
			tab, err := harness.RunTableII(*scale, 16, progress)
			if err != nil {
				return err
			}
			tab.Render(os.Stdout)
			return saveCSV("table2.csv", tab.CSV)
		},
		"correctness": func() error {
			c, err := harness.RunCorrectness(*stackThreads, *stackOps, uint32(*stackNodes), *attempts, progress)
			if err != nil {
				return err
			}
			c.Render(os.Stdout)
			return saveCSV("correctness.csv", c.CSV)
		},
		"litmus": func() error {
			return harness.LitmusMatrix(os.Stdout)
		},
		"contention": func() error {
			c, err := runContention(*scale, threads, progress)
			if err != nil {
				return err
			}
			c.Render(os.Stdout)
			if *jsonPath != "" {
				if err := os.MkdirAll(filepath.Dir(*jsonPath), 0o755); err != nil {
					return err
				}
				f, err := os.Create(*jsonPath)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := c.JSON(f); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
			}
			return saveCSV("contention.csv", c.CSV)
		},
		"resilience": func() error {
			r, err := harness.RunResilience(*stackThreads, *stackOps, uint32(*stackNodes), *seed, progress)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return saveCSV("resilience.csv", r.CSV)
		},
		"trace": func() error {
			tr, err := harness.RunTrace(8, 1<<14, uint32(*stackNodes), progress)
			if err != nil {
				return err
			}
			tr.Render(os.Stdout)
			return saveCSV("trace.json", tr.Chrome)
		},
		"soak": func() error {
			r, err := harness.RunSoak(harness.SoakOptions{
				Clients: *soakClients, JobsPerClient: *soakJobs,
				Workers: *soakWorkers, QueueDepth: *soakQueue, Seed: int64(*seed),
			}, progress)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return saveCSV("soak.csv", r.CSV)
		},
		"crashsoak": func() error {
			return runCrashsoak(crashsoakConfig{
				Cycles:  *crashCycles,
				Jobs:    *crashJobs,
				Workers: *soakWorkers,
				Queue:   *soakQueue,
				Scale:   *scale,
				OutDir:  *outDir,
				Quiet:   *quiet,
			})
		},
		"fabricsoak": func() error {
			return runFabricsoak(fabricsoakConfig{
				Fleet:   *fabricFleet,
				Jobs:    *fabricJobs,
				Workers: *soakWorkers,
				Queue:   *soakQueue,
				Scale:   *scale,
				OutDir:  *outDir,
				Quiet:   *quiet,
			})
		},
		"warmstart": func() error {
			return runWarmstart(warmstartConfig{
				Stmts:   *warmStmts,
				Repeats: *warmRepeats,
				OutDir:  *outDir,
				Quiet:   *quiet,
			})
		},
		"adversary": func() error {
			return runAdversary(advConfig{
				Seed:        *seed,
				Runs:        *advRuns,
				MaxSteps:    *advMaxSteps,
				Targets:     splitList(*advTargets),
				IncludeFree: *advFree,
				OutDir:      *outDir,
				Require:     *require,
				Quiet:       *quiet,
			})
		},
	}

	if cmd == "all" {
		for _, name := range []string{"litmus", "correctness", "table1", "fig10", "fig11", "fig12", "table2", "contention", "warmstart", "resilience", "trace", "soak", "adversary"} {
			fmt.Printf("\n===== %s =====\n", name)
			if err := experiments[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	exp, ok := experiments[cmd]
	if !ok {
		fs.Usage()
		return fmt.Errorf("unknown experiment %q", cmd)
	}
	return exp()
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseThreads(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
