package main

// crashsoak is the durability proof: a real atomemud-style daemon (this
// binary re-executed in crashsoak-serve mode) is SIGKILLed mid-burst
// several times over one data directory. After each kill the parent
// restarts it, re-submits every idempotency key, and finally asserts the
// durability contract:
//
//   - no accepted job is lost — every acknowledged id is terminal "done"
//     on the final daemon;
//   - no idempotent submit is duplicated — a key answers the same job id
//     across every restart;
//   - recovery changes no results — every job's output is byte-identical
//     to an uninterrupted in-process engine run of the same program;
//   - at least one job resumed from an on-disk checkpoint, and replay
//     skipped no corrupt records.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"atomemu/internal/engine"
	"atomemu/internal/gac"
	"atomemu/internal/server"
)

// crashsoakGAC prints a milestone after every outer loop of 1000 atomic
// increments, so a resumed run that lost or repeated work is visible in the
// output sequence, not just the final value.
const crashsoakGAC = `
var total;
func main(n) {
    var outer = 0;
    var i = 0;
    while (outer < n) {
        i = 0;
        while (i < 1000) {
            atomic_add(&total, 1);
            i = i + 1;
        }
        outer = outer + 1;
        print(total);
    }
    exit(0);
}
`

type crashsoakConfig struct {
	Cycles  int // SIGKILL cycles before the final run to completion
	Jobs    int
	Workers int
	Queue   int
	Scale   float64
	OutDir  string
	Quiet   bool
}

// crashsoakArg sizes job i so a kill lands mid-run at the default scale.
func crashsoakArg(scale float64, i int) uint32 {
	n := int(float64(600+100*i) * scale)
	if n < 8 {
		n = 8
	}
	return uint32(n)
}

func runCrashsoak(cfg crashsoakConfig) error {
	if cfg.Cycles < 1 {
		cfg.Cycles = 3
	}
	if cfg.Jobs < 1 {
		cfg.Jobs = 6
	}
	logf := func(format string, a ...any) {
		if !cfg.Quiet {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	dataDir, err := os.MkdirTemp("", "crashsoak-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)
	addrFile := filepath.Join(dataDir, "addr")

	// Uninterrupted references, computed in-process before any daemon runs.
	refs := make([][]uint32, cfg.Jobs)
	for i := range refs {
		out, err := crashsoakReference(crashsoakArg(cfg.Scale, i))
		if err != nil {
			return fmt.Errorf("reference run %d: %w", i, err)
		}
		refs[i] = out
	}

	client := &http.Client{Timeout: 5 * time.Second}
	idByKey := make(map[string]string)
	var csv bytes.Buffer
	fmt.Fprintf(&csv, "# crashsoak cycles=%d jobs=%d workers=%d scale=%g\n", cfg.Cycles, cfg.Jobs, cfg.Workers, cfg.Scale)
	fmt.Fprintf(&csv, "cycle,event,done,total,spill_total,resumed,requeued,terminal,corrupt\n")

	var resumedTotal, requeuedTotal float64
	kills := 0
	for cycle := 0; cycle <= cfg.Cycles; cycle++ {
		os.Remove(addrFile)
		child := exec.Command(exe, "crashsoak-serve",
			"-data-dir", dataDir, "-addr-file", addrFile,
			"-workers", strconv.Itoa(cfg.Workers), "-queue", strconv.Itoa(cfg.Queue))
		child.Stderr = os.Stderr
		if err := child.Start(); err != nil {
			return err
		}
		base, err := awaitAddrFile(addrFile, child, 20*time.Second)
		if err != nil {
			child.Process.Kill()
			child.Wait()
			return err
		}

		mets, err := scrapeMetrics(client, base)
		if err != nil {
			child.Process.Kill()
			child.Wait()
			return err
		}
		resumedTotal += mets["atomemu_restart_jobs_resumed_total"]
		requeuedTotal += mets["atomemu_restart_jobs_requeued_total"]
		if c := mets["atomemu_journal_corrupt_records_total"]; c != 0 {
			child.Process.Kill()
			child.Wait()
			return fmt.Errorf("cycle %d: replay skipped %g corrupt journal records", cycle, c)
		}
		fmt.Fprintf(&csv, "%d,start,%d,%d,%g,%g,%g,%g,%g\n", cycle,
			countDone(client, base, idByKey), cfg.Jobs,
			mets["atomemu_ckpt_spill_total"],
			mets["atomemu_restart_jobs_resumed_total"],
			mets["atomemu_restart_jobs_requeued_total"],
			mets["atomemu_restart_jobs_terminal_total"],
			mets["atomemu_journal_corrupt_records_total"])
		logf("crashsoak: cycle %d up at %s (resumed=%g requeued=%g terminal=%g)",
			cycle, base, mets["atomemu_restart_jobs_resumed_total"],
			mets["atomemu_restart_jobs_requeued_total"], mets["atomemu_restart_jobs_terminal_total"])

		// (Re-)submit every key. A key seen before must answer its old id.
		for i := 0; i < cfg.Jobs; i++ {
			key := fmt.Sprintf("crash-%d", i)
			id, err := submitCrashsoakJob(client, base, key, crashsoakArg(cfg.Scale, i))
			if err != nil {
				child.Process.Kill()
				child.Wait()
				return fmt.Errorf("cycle %d submit %s: %w", cycle, key, err)
			}
			if old, seen := idByKey[key]; seen && old != id {
				child.Process.Kill()
				child.Wait()
				return fmt.Errorf("cycle %d: key %s answered %s, previously %s — duplicate admission", cycle, key, id, old)
			}
			idByKey[key] = id
		}

		if cycle < cfg.Cycles {
			// Let the burst run until checkpoints hit the disk, then pull the
			// plug — no drain, no warning, exactly like a crash.
			if err := awaitSpill(client, base, 30*time.Second); err != nil {
				child.Process.Kill()
				child.Wait()
				return fmt.Errorf("cycle %d: %w", cycle, err)
			}
			child.Process.Kill()
			child.Wait()
			kills++
			fmt.Fprintf(&csv, "%d,sigkill,,%d,,,,,\n", cycle, cfg.Jobs)
			logf("crashsoak: cycle %d SIGKILL", cycle)
			continue
		}

		// Final cycle: run everything to completion and audit.
		if err := awaitAllDone(client, base, idByKey, 120*time.Second); err != nil {
			child.Process.Kill()
			child.Wait()
			return err
		}
		lost, mismatched := 0, 0
		for i := 0; i < cfg.Jobs; i++ {
			key := fmt.Sprintf("crash-%d", i)
			st, err := jobStatus(client, base, idByKey[key])
			if err != nil {
				lost++
				logf("crashsoak: %s (%s) LOST: %v", key, idByKey[key], err)
				continue
			}
			if st.State != "done" || !equalOutputs(st.Output, refs[i]) {
				mismatched++
				logf("crashsoak: %s state=%s output mismatch (got %d words, want %d)",
					key, st.State, len(st.Output), len(refs[i]))
			}
		}
		mets, _ = scrapeMetrics(client, base)
		fmt.Fprintf(&csv, "%d,final,%d,%d,%g,%g,%g,%g,%g\n", cycle,
			cfg.Jobs-lost-mismatched, cfg.Jobs,
			mets["atomemu_ckpt_spill_total"], resumedTotal, requeuedTotal,
			mets["atomemu_restart_jobs_terminal_total"],
			mets["atomemu_journal_corrupt_records_total"])
		child.Process.Kill()
		child.Wait()

		fmt.Printf("crashsoak: %d jobs, %d SIGKILL cycles: lost=%d duplicated=0 mismatched=%d resumed=%g requeued=%g\n",
			cfg.Jobs, kills, lost, mismatched, resumedTotal, requeuedTotal)
		if lost > 0 || mismatched > 0 {
			return fmt.Errorf("crashsoak: durability contract violated (lost=%d mismatched=%d)", lost, mismatched)
		}
		if kills < cfg.Cycles {
			return fmt.Errorf("crashsoak: only %d of %d kill cycles ran", kills, cfg.Cycles)
		}
		if resumedTotal < 1 {
			return fmt.Errorf("crashsoak: no job ever resumed from a checkpoint — the resume path went untested")
		}
	}

	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(cfg.OutDir, "crashsoak.csv")
		if err := os.WriteFile(path, csv.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}

// crashsoakReference runs one job's program uninterrupted on a bare engine.
func crashsoakReference(arg uint32) ([]uint32, error) {
	im, err := gac.Compile(crashsoakGAC)
	if err != nil {
		return nil, err
	}
	cfg := engine.DefaultConfig("pico-cas")
	m, err := engine.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.LoadImage(im); err != nil {
		return nil, err
	}
	if _, err := m.SpawnThread(im.Entry, arg); err != nil {
		return nil, err
	}
	if err := m.Run(); err != nil {
		return nil, err
	}
	return m.Output(), nil
}

func submitCrashsoakJob(client *http.Client, base, key string, arg uint32) (string, error) {
	req := server.JobRequest{
		Scheme: "pico-cas", GAC: crashsoakGAC, Arg: arg,
		DeadlineMS:     120_000,
		IdempotencyKey: key,
		Config:         server.JobConfig{CheckpointEvery: 5000},
	}
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	var lastErr error
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			time.Sleep(50 * time.Millisecond)
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			lastErr = fmt.Errorf("POST /jobs: %d %s", resp.StatusCode, strings.TrimSpace(string(b)))
			time.Sleep(50 * time.Millisecond)
			continue
		}
		var ans struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(b, &ans); err != nil {
			return "", err
		}
		return ans.ID, nil
	}
	return "", lastErr
}

func jobStatus(client *http.Client, base, id string) (server.JobStatus, error) {
	var st server.JobStatus
	resp, err := client.Get(base + "/jobs/" + id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return st, fmt.Errorf("GET /jobs/%s: %d %s", id, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// awaitAddrFile waits for the child daemon to publish its listen address.
func awaitAddrFile(path string, child *exec.Cmd, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return "http://" + strings.TrimSpace(string(b)), nil
		}
		if child.ProcessState != nil {
			return "", fmt.Errorf("daemon exited before publishing its address")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return "", fmt.Errorf("daemon never published %s", path)
}

// awaitSpill polls /metrics until at least one checkpoint hit the disk in
// this daemon's lifetime — the signal that a kill now lands mid-run with
// durable state worth resuming.
func awaitSpill(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		mets, err := scrapeMetrics(client, base)
		if err == nil && mets["atomemu_ckpt_spill_total"] > 0 {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("no checkpoint spill within %s", timeout)
}

func awaitAllDone(client *http.Client, base string, idByKey map[string]string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		done := 0
		for _, id := range idByKey {
			st, err := jobStatus(client, base, id)
			if err == nil && (st.State == "done" || st.State == "failed" || st.State == "canceled") {
				done++
			}
		}
		if done == len(idByKey) {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("jobs still unterminated after %s", timeout)
}

func countDone(client *http.Client, base string, idByKey map[string]string) int {
	done := 0
	for _, id := range idByKey {
		if st, err := jobStatus(client, base, id); err == nil && st.State == "done" {
			done++
		}
	}
	return done
}

// scrapeMetrics parses the Prometheus exposition into name→value, ignoring
// labeled series (crashsoak only reads the unlabeled durability counters).
func scrapeMetrics(client *http.Client, base string) (map[string]float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[sp+1:], 64); err == nil {
			out[line[:sp]] = v
		}
	}
	return out, sc.Err()
}

func equalOutputs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- child mode ---

// runCrashsoakServe is the daemon side of crashsoak: a durable server on an
// ephemeral loopback port, its address published through -addr-file. It
// never shuts down gracefully — the parent's SIGKILL is the whole point.
func runCrashsoakServe(args []string) error {
	fs := flag.NewFlagSet("crashsoak-serve", flag.ContinueOnError)
	dataDir := fs.String("data-dir", "", "durability directory (required)")
	addrFile := fs.String("addr-file", "", "file to publish the listen address to (required)")
	workers := fs.Int("workers", 2, "emulation workers")
	queue := fs.Int("queue", 16, "job queue depth")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" || *addrFile == "" {
		return fmt.Errorf("crashsoak-serve needs -data-dir and -addr-file")
	}
	s, err := server.New(server.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		DataDir:    *dataDir,
		// SIGKILL is the adversary here, so every acknowledged record must
		// already be on disk: batch syncing would let an acked job vanish.
		Fsync: "always",
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// Publish atomically so the parent never reads a half-written address.
	tmp := *addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, *addrFile); err != nil {
		return err
	}
	return http.Serve(ln, s.Handler())
}
