// Command atomemu-asm assembles GA32 text assembly — or compiles GAC, the
// C-like guest language — into the flat binary image format cmd/atomemu
// runs:
//
//	atomemu-asm prog.s -o prog.ga32
//	atomemu-asm -gac prog.gac -o prog.ga32
//	atomemu-asm -d prog.ga32          (disassemble an image)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"atomemu/internal/asm"
	"atomemu/internal/gac"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "atomemu-asm:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "", "output image path (default: stdout refuses binaries; use -o)")
	disas := flag.Bool("d", false, "disassemble an image instead of assembling")
	gacMode := flag.Bool("gac", false, "treat the input as GAC source (auto-detected for .gac files)")
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		return fmt.Errorf("an input file is expected")
	}
	path := flag.Arg(0)
	// Accept flags after the input file too ("asm prog.s -o prog.ga32").
	if flag.NArg() > 1 {
		if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil {
			return err
		}
		if flag.NArg() != 0 {
			return fmt.Errorf("unexpected arguments %v", flag.Args())
		}
	}

	if *disas {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		im, err := asm.ReadImage(f)
		if err != nil {
			return err
		}
		fmt.Printf("org %#08x  entry %#08x  %d words\n", im.Org, im.Entry, len(im.Words))
		return im.Disassemble(os.Stdout)
	}

	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var im *asm.Image
	if *gacMode || strings.HasSuffix(path, ".gac") {
		im, err = gac.Compile(string(src))
	} else {
		im, err = asm.Assemble(string(src))
	}
	if err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("use -o to name the output image")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := im.WriteTo(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: org=%#x entry=%#x words=%d symbols=%d\n",
		*out, im.Org, im.Entry, len(im.Words), len(im.Symbols))
	return nil
}
