// Command atomemu runs guest programs under a chosen atomic-instruction
// emulation scheme:
//
//	atomemu -image prog.ga32 [-scheme hst] [-threads 1]
//	    run an assembled image (one worker thread per -threads at entry)
//	atomemu -gac prog.gac [-scheme hst] [-threads 1]
//	    compile a GAC source file and run it
//	atomemu -program fluidanimate [-scheme hst] [-threads 8] [-scale 0.25]
//	    run a miniparsec workload
//	atomemu -stack [-scheme pico-cas] [-threads 16] [-ops 1048575]
//	    run the §IV-A lock-free-stack ABA experiment
//
// On exit it prints guest output, the instruction census and the
// virtual-time total.
//
// Exit codes: 0 success; 2 guest deadlock; 3 emulation fault or watchdog
// trip; 4 recovery attempts exhausted; 1 any other error.
package main

import (
	"flag"
	"fmt"
	"os"

	"atomemu/internal/asm"
	"atomemu/internal/engine"
	"atomemu/internal/gac"
	"atomemu/internal/harness"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
	"atomemu/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "atomemu:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps machine failures to distinct process exit codes so scripts
// can tell a guest deadlock from a scheme fault from exhausted recovery.
// The classification lives in engine.ClassifyStop, shared with the job
// daemon so the two cannot drift; errors from outside the engine (bad
// flags, unreadable files) classify as StopError = 1.
func exitCode(err error) int {
	if c := engine.ClassifyStop(err); c != engine.StopOK {
		return c.ExitCode()
	}
	return 1
}

func run() error {
	scheme := flag.String("scheme", "hst", "emulation scheme (pico-cas pico-st pico-htm hst hst-weak hst-htm pst pst-remap pst-mpk)")
	image := flag.String("image", "", "assembled GA32 image to run")
	gacFile := flag.String("gac", "", "GAC source file to compile and run")
	program := flag.String("program", "", "miniparsec workload name")
	stack := flag.Bool("stack", false, "run the lock-free-stack ABA experiment")
	threads := flag.Int("threads", 1, "worker threads")
	scale := flag.Float64("scale", 0.25, "workload scale factor")
	ops := flag.Uint64("ops", 1048575, "stack operations (with -stack)")
	nodes := flag.Uint("nodes", 64, "stack nodes (with -stack)")
	arg := flag.Uint("arg", 0, "r0 argument for -image workers")
	fuse := flag.Bool("fuse", false, "enable rule-based translation (fuse LL/SC retry loops into host atomics)")
	traceInstrs := flag.Bool("trace-instrs", false, "log every executed guest instruction to stderr (-image only)")
	traceFile := flag.String("trace", "", "write the atomic-event trace (virtual-timestamped JSON lines) to this file (-image/-gac only)")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "capture a recovery checkpoint every N virtual cycles (0 = off; -image/-gac only)")
	deadline := flag.Uint64("deadline", 0, "abort when any vCPU passes N virtual cycles (0 = no deadline; -image/-gac only)")
	flag.Parse()

	switch {
	case *stack:
		res, err := harness.RunStack(*scheme, *threads, *ops, uint32(*nodes))
		if err != nil {
			return err
		}
		fmt.Printf("scheme=%s ops=%d corrupt=%.2f%% crashed=%v\naudit: %s\n",
			res.Scheme, res.Ops, res.CorruptPct, res.Crashed, res.Report)
		if res.Crashed {
			fmt.Println("reason:", res.Reason)
		}
		return nil

	case *program != "":
		res, err := harness.RunWorkload(harness.RunConfig{
			Program: *program, Scheme: *scheme, Threads: *threads, Scale: *scale,
		})
		if err != nil {
			return err
		}
		if res.Crashed {
			fmt.Printf("CRASHED: %s\n", res.CrashReason)
			return nil
		}
		printStats(res.Stats, res.VirtualTime)
		fmt.Printf("wall time: %s\n", res.WallTime)
		return nil

	case *image != "" || *gacFile != "":
		var im *asm.Image
		if *gacFile != "" {
			src, err := os.ReadFile(*gacFile)
			if err != nil {
				return err
			}
			im, err = gac.Compile(string(src))
			if err != nil {
				return err
			}
		} else {
			f, err := os.Open(*image)
			if err != nil {
				return err
			}
			var rerr error
			im, rerr = asm.ReadImage(f)
			f.Close()
			if rerr != nil {
				return rerr
			}
		}
		cfg := engine.DefaultConfig(*scheme)
		cfg.FuseAtomics = *fuse
		cfg.CheckpointEvery = *ckptEvery
		cfg.VirtualDeadline = *deadline
		if *traceInstrs {
			cfg.TraceWriter = os.Stderr
		}
		if *traceFile != "" {
			cfg.TraceEvents = true
		}
		m, err := engine.NewMachine(cfg)
		if err != nil {
			return err
		}
		if err := m.LoadImage(im); err != nil {
			return err
		}
		for i := 0; i < *threads; i++ {
			if _, err := m.SpawnThread(im.Entry, uint32(*arg)); err != nil {
				return err
			}
		}
		runErr := m.Run()
		// Flush the event trace even when the run failed: a trace of the
		// cycles leading up to a fault is the whole point of having one.
		if *traceFile != "" {
			if err := writeTrace(*traceFile, m); err != nil {
				fmt.Fprintln(os.Stderr, "atomemu: writing trace:", err)
			}
		}
		if runErr != nil {
			return runErr
		}
		for _, v := range m.Output() {
			fmt.Println(v)
		}
		printStats(m.AggregateStats(), m.VirtualTime())
		return nil
	}
	flag.Usage()
	return fmt.Errorf("one of -image, -gac, -program or -stack is required (programs: %v)", names())
}

// writeTrace dumps the machine's merged event stream as JSON lines.
func writeTrace(path string, m *engine.Machine) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	events := m.TraceEvents()
	if dropped := m.TraceDropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "atomemu: trace rings overflowed, %d oldest events dropped\n", dropped)
	}
	if err := obs.WriteJSONL(f, events); err != nil {
		f.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "atomemu: wrote %d events to %s\n", len(events), path)
	return f.Close()
}

func names() []string {
	var out []string
	for _, s := range workload.Specs() {
		out = append(out, s.Name)
	}
	return out
}

func printStats(st stats.CPU, vt uint64) {
	fmt.Printf("guest instrs: %d  loads: %d  stores: %d  LL/SC: %d/%d (fails %d)\n",
		st.GuestInstrs, st.Loads, st.Stores, st.LLs, st.SCs, st.SCFails)
	fmt.Printf("virtual time: %d cycles  (native %d, exclusive %d, instrument %d, mprotect %d, htm %d)\n",
		vt, st.Cycles[stats.CompNative], st.Cycles[stats.CompExclusive],
		st.Cycles[stats.CompInstrument], st.Cycles[stats.CompMProtect], st.Cycles[stats.CompHTM])
	if st.PageFaults > 0 {
		fmt.Printf("page faults: %d (false sharing %d)\n", st.PageFaults, st.FalseSharing)
	}
	if st.HTMCommits+st.HTMAborts > 0 {
		fmt.Printf("htm: %d commits, %d aborts\n", st.HTMCommits, st.HTMAborts)
	}
}
