// Command atomemu-router fronts a fleet of atomemud workers: it
// consistent-hash routes submitted jobs across the fleet, health-probes
// every worker, fails in-flight jobs over to survivors when a worker dies
// (shipping the last fetched checkpoint so work resumes instead of
// restarting), and enforces weighted per-tenant admission quotas with
// deficit-round-robin dispatch.
//
//	atomemu-router -worker http://h1:8347 -worker http://h2:8347 [-addr :8348]
//
// Endpoints:
//
//	POST /jobs        submit a server.JobRequest; 202 with {"id": ...},
//	                  400 on a bad request, 429 (with Retry-After) when the
//	                  tenant is over quota or no worker accepted the job,
//	                  503 while draining
//	GET  /jobs        list router job views
//	GET  /jobs/{id}   one job's view; dispatched jobs proxy the worker's
//	                  live status
//	GET  /workers     per-worker health (healthy/suspect/down, probes,
//	                  queue gauges)
//	GET  /healthz     liveness
//	GET  /readyz      routability (503 while draining or with no live
//	                  workers on the ring)
//	GET  /statz       tenants + workers + journal stats
//	GET  /metrics     Prometheus text exposition (worker health, failover
//	                  and checkpoint-shipping counters, per-tenant series)
//
// Tenant weights are given as -tenant-weight name=N (repeatable); a
// tenant's admission quota is N × -quota-per-weight live jobs, and its
// share of dispatch bandwidth under contention is proportional to N.
//
// On SIGTERM or SIGINT the router stops admitting (503) and waits for
// live jobs to finish before exiting; with -data-dir its journal lets a
// restarted router re-adopt whatever was still in flight.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"atomemu/internal/durable"
	"atomemu/internal/router"
)

// stringList collects a repeatable -flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }
func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// weightMap collects repeatable name=N pairs.
type weightMap map[string]int

func (m weightMap) String() string {
	parts := make([]string, 0, len(m))
	for k, v := range m {
		parts = append(parts, fmt.Sprintf("%s=%d", k, v))
	}
	return strings.Join(parts, ",")
}

func (m weightMap) Set(v string) error {
	name, ws, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=weight, got %q", v)
	}
	w, err := strconv.Atoi(ws)
	if err != nil || w < 1 {
		return fmt.Errorf("weight in %q must be a positive integer", v)
	}
	m[name] = w
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "atomemu-router:", err)
		os.Exit(1)
	}
}

func run() error {
	var workers stringList
	weights := weightMap{}
	addr := flag.String("addr", ":8348", "listen address")
	flag.Var(&workers, "worker", "worker base URL, e.g. http://host:8347 (repeatable)")
	flag.Var(weights, "tenant-weight", "tenant scheduling weight as name=N (repeatable)")
	defaultWeight := flag.Int("default-weight", 1, "weight for tenants without an explicit -tenant-weight")
	quotaPerWeight := flag.Int("quota-per-weight", 32, "live-job admission quota per unit of tenant weight (negative = unbounded)")
	dispatchers := flag.Int("dispatchers", 4, "concurrent dispatch workers")
	redispatchRounds := flag.Int("redispatch-rounds", 3, "dispatch rounds over the ring before a job is shed")
	probeInterval := flag.Duration("probe-interval", 250*time.Millisecond, "worker health probe cadence")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
	downAfter := flag.Int("down-after", 3, "consecutive failures before a worker is evicted and its jobs failed over")
	probeBackoffMax := flag.Duration("probe-backoff-max", 5*time.Second, "cap on the probe backoff while a worker stays down")
	pollInterval := flag.Duration("poll-interval", 200*time.Millisecond, "status/checkpoint poll cadence over dispatched jobs")
	dataDir := flag.String("data-dir", "", "router journal directory; in-flight jobs survive router restarts (empty = in-memory only)")
	fsync := flag.String("fsync", "batch", "journal sync policy: always, batch, never")
	drainWait := flag.Duration("drain-wait", 2*time.Minute, "how long to wait for live jobs on SIGTERM before exiting anyway")
	flag.Parse()

	if len(workers) == 0 {
		return errors.New("at least one -worker is required")
	}
	sync, err := durable.ParseSyncPolicy(*fsync)
	if err != nil {
		return err
	}
	r, err := router.New(router.Options{
		Workers:          workers,
		TenantWeights:    weights,
		DefaultWeight:    *defaultWeight,
		QuotaPerWeight:   *quotaPerWeight,
		Dispatchers:      *dispatchers,
		RedispatchRounds: *redispatchRounds,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		ProbeDownAfter:   *downAfter,
		ProbeBackoffMax:  *probeBackoffMax,
		PollInterval:     *pollInterval,
		DataDir:          *dataDir,
		JournalSync:      sync,
		Logger:           log.Default(),
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: r.Handler()}
	log.Printf("atomemu-router: listening on %s, fronting %d workers", ln.Addr(), len(workers))

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		r.Close()
		return err
	case <-ctx.Done():
	}
	stop() // second signal kills the process via default handling

	log.Printf("atomemu-router: draining (waiting up to %s for live jobs)", *drainWait)
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	drainErr := r.DrainAndClose(dctx)
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if drainErr != nil {
		return drainErr
	}
	log.Println("atomemu-router: drained clean")
	return nil
}
