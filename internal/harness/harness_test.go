package harness

import (
	"bytes"
	"strings"
	"testing"

	"atomemu/internal/stats"
)

func TestRunWorkloadBasics(t *testing.T) {
	res, err := RunWorkload(RunConfig{Program: "swaptions", Scheme: "hst", Threads: 2, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualTime == 0 || res.Stats.GuestInstrs == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Crashed {
		t.Fatalf("unexpected crash: %s", res.CrashReason)
	}
}

func TestRunWorkloadRejectsBadInput(t *testing.T) {
	if _, err := RunWorkload(RunConfig{Program: "nope", Scheme: "hst", Threads: 1, Scale: 1}); err == nil {
		t.Error("unknown program must fail")
	}
	if _, err := RunWorkload(RunConfig{Program: "x264", Scheme: "hst", Threads: 0, Scale: 1}); err == nil {
		t.Error("zero threads must fail")
	}
	if _, err := RunWorkload(RunConfig{Program: "x264", Scheme: "bogus", Threads: 1, Scale: 1}); err == nil {
		t.Error("unknown scheme must fail")
	}
}

func TestFig10SmallSweep(t *testing.T) {
	fig, err := RunFig10(0.01, []int{1, 2, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Programs) != 7 {
		t.Fatalf("programs = %v", fig.Programs)
	}
	for _, prog := range fig.Programs {
		for _, scheme := range fig.Schemes {
			series := fig.Data[prog][scheme]
			if len(series) != 3 {
				t.Fatalf("%s/%s series length %d", prog, scheme, len(series))
			}
			if series[0].Speedup != 1.0 {
				t.Errorf("%s/%s: single-thread speedup = %.2f, want 1.0", prog, scheme, series[0].Speedup)
			}
		}
	}
	var text, csv bytes.Buffer
	fig.Render(&text)
	fig.CSV(&csv)
	if !strings.Contains(text.String(), "HST vs PICO-ST") {
		t.Error("render missing summary")
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 7*5*3+1 {
		t.Errorf("csv rows = %d", lines)
	}
	s := fig.Summarize()
	if s.HSTvsPicoSTGeo <= 1.0 {
		t.Errorf("HST should beat PICO-ST, geomean = %.2f", s.HSTvsPicoSTGeo)
	}
}

func TestFig12Breakdowns(t *testing.T) {
	fig, err := RunFig12(0.01, []int{1, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	remapOK := PSTRemapPrograms()
	for _, prog := range fig.Programs {
		for _, scheme := range fig.Schemes {
			for _, bp := range fig.Data[prog][scheme] {
				if scheme == "pst-remap" && !remapOK[prog] {
					if !bp.Missing {
						t.Errorf("%s under pst-remap should be marked missing", prog)
					}
					continue
				}
				if bp.Missing {
					t.Errorf("%s/%s unexpectedly missing", prog, scheme)
					continue
				}
				sum := 0.0
				for _, f := range bp.Fractions {
					sum += f
				}
				if sum < 0.99 || sum > 1.01 {
					t.Errorf("%s/%s t=%d fractions sum to %.3f", prog, scheme, bp.Threads, sum)
				}
			}
		}
	}
	// Structural claims of the paper: PICO-ST's overhead is instrumentation,
	// PST's is mprotect.
	st := fig.Data["fluidanimate"]["pico-st"][1]
	if st.Fractions[stats.CompInstrument] < 0.1 {
		t.Errorf("pico-st instrumentation fraction = %.3f, expected dominant", st.Fractions[stats.CompInstrument])
	}
	pst := fig.Data["fluidanimate"]["pst"][1]
	if pst.Fractions[stats.CompMProtect] < 0.1 {
		t.Errorf("pst mprotect fraction = %.3f, expected dominant", pst.Fractions[stats.CompMProtect])
	}
	var text, csv bytes.Buffer
	fig.Render(&text)
	fig.CSV(&csv)
	if !strings.Contains(text.String(), "mprot") || !strings.Contains(csv.String(), "mprotect") {
		t.Error("render output incomplete")
	}
}

func TestTableICensus(t *testing.T) {
	tab, err := RunTableI(0.02, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d (one per program)", len(tab.Rows))
	}
	var minR, maxR float64
	for _, r := range tab.Rows {
		if r.Stores == 0 || r.LLSC == 0 {
			t.Errorf("%s: empty census", r.Program)
		}
		if r.Ratio <= 1 {
			t.Errorf("%s: ratio %.1f", r.Program, r.Ratio)
		}
		if minR == 0 || r.Ratio < minR {
			minR = r.Ratio
		}
		if r.Ratio > maxR {
			maxR = r.Ratio
		}
	}
	if maxR/minR < 10 {
		t.Errorf("ratio spread %.1f too narrow for Table I", maxR/minR)
	}
	var text bytes.Buffer
	tab.Render(&text)
	if !strings.Contains(text.String(), "store:LLSC") {
		t.Error("table render incomplete")
	}
}

func TestCorrectnessExperimentSmall(t *testing.T) {
	c, err := RunCorrectness(8, 100_000, 4, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Runs) != 9 {
		t.Fatalf("runs = %d (eight paper schemes + pst-mpk)", len(c.Runs))
	}
	for _, r := range c.Runs {
		if r.Scheme == "pico-cas" {
			if r.CorruptPct == 0 && !r.Crashed {
				t.Error("pico-cas should corrupt the stack (racy; rerun if flaky)")
			}
			continue
		}
		if r.Report.Corrupted() || r.Crashed {
			t.Errorf("%s corrupted the stack: %s (%s)", r.Scheme, r.Report, r.Reason)
		}
	}
	var text, csv bytes.Buffer
	c.Render(&text)
	c.CSV(&csv)
	if !strings.Contains(text.String(), "pico-cas") {
		t.Error("render incomplete")
	}
}

func TestTableIISummary(t *testing.T) {
	tab, err := RunTableII(0.01, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d (eight paper schemes + pst-mpk)", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.ClaimedAtomicity != r.MeasuredAtomicity {
			t.Errorf("%s: measured %v != claimed %v", r.Scheme, r.MeasuredAtomicity, r.ClaimedAtomicity)
		}
	}
	var byName = map[string]TableIIRow{}
	for _, r := range tab.Rows {
		byName[r.Scheme] = r
	}
	if byName["pico-cas"].RelativeTime > 1.05 {
		t.Errorf("pico-cas relative time = %.2f, should be ~1", byName["pico-cas"].RelativeTime)
	}
	if byName["hst"].RelativeTime >= byName["pico-st"].RelativeTime {
		t.Errorf("hst (%.2f) must be faster than pico-st (%.2f)",
			byName["hst"].RelativeTime, byName["pico-st"].RelativeTime)
	}
	var text bytes.Buffer
	tab.Render(&text)
	if !strings.Contains(text.String(), "measured") {
		t.Error("render incomplete")
	}
}

func TestLitmusMatrixRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := LitmusMatrix(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Seq1", "Seq2", "StrongDef", "pico-cas", "hst", "classified"} {
		if !strings.Contains(out, want) {
			t.Errorf("litmus matrix missing %q", want)
		}
	}
}

func TestSpeedupHelper(t *testing.T) {
	if Speedup(100, 50) != 2.0 || Speedup(100, 0) != 0 {
		t.Error("Speedup math")
	}
}

func TestFig11SmallSweep(t *testing.T) {
	fig, err := RunFig11(0.01, []int{1, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Programs) != 7 || len(fig.Schemes) != 2 {
		t.Fatalf("shape: %v / %v", fig.Programs, fig.Schemes)
	}
	for _, prog := range fig.Programs {
		for _, scheme := range fig.Schemes {
			if len(fig.Data[prog][scheme]) != 2 {
				t.Fatalf("%s/%s series truncated", prog, scheme)
			}
		}
	}
	var text, csv bytes.Buffer
	fig.Render(&text)
	fig.CSV(&csv)
	if !strings.Contains(text.String(), "pico-htm") || !strings.Contains(csv.String(), "hst-htm") {
		t.Error("render incomplete")
	}
}

func TestFig11PicoHTMCrashesAtScale(t *testing.T) {
	// The livelock crash must appear on a lock-based program at 32 threads.
	fig, err := RunFig11(0.05, []int{8, 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	series := fig.Data["fluidanimate"]["pico-htm"]
	if series[0].Crashed {
		t.Error("pico-htm should survive 8 threads")
	}
	if !series[1].Crashed {
		t.Error("pico-htm should livelock at 32 threads on fluidanimate")
	}
	for _, p := range fig.Data["fluidanimate"]["hst-htm"] {
		if p.Crashed {
			t.Error("hst-htm must never crash")
		}
	}
}
