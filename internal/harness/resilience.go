package harness

import (
	"fmt"
	"io"

	"atomemu/internal/engine"
	"atomemu/internal/faultinject"
)

// ResilienceRow is one (scheme, mode) run of the lock-free-stack bench.
type ResilienceRow struct {
	Scheme string
	// Strict runs the paper-faithful policy (livelock crashes the run);
	// otherwise the resilience layer degrades the scheme and completes.
	Strict bool
	// Recovery runs the resilient policy with checkpointing on and an
	// injected mid-run store fault: the run is killed mid-flight and must
	// roll back to the last checkpoint and complete.
	Recovery    bool
	Threads     int
	Crashed     bool
	Reason      string
	CorruptPct  float64
	VirtualTime uint64
	// Resilience counters (all zero in strict mode by construction).
	Retries       uint64
	BackoffWaits  uint64
	Fallbacks     uint64
	WatchdogTrips uint64
	// Checkpoint/rollback counters (recovery mode only).
	Checkpoints uint64
	Restores    uint64
}

// Mode names the row's policy for display.
func (r ResilienceRow) Mode() string {
	switch {
	case r.Recovery:
		return "recovery"
	case r.Strict:
		return "strict"
	}
	return "resilient"
}

// Resilience is the robustness experiment: the HTM schemes driven through
// the §IV-A lock-free stack at a thread count where PICO-HTM livelocks,
// once under the paper's strict policy (reproducing the crash) and once
// under the default resilient policy (degrading but completing with a
// correct final stack).
type Resilience struct {
	Threads int
	Ops     uint64
	Nodes   uint32
	// Seed is the backoff-jitter seed threaded into every run's
	// Config.ResilienceSeed, recorded so a CSV row can be replayed.
	Seed uint64
	Rows []ResilienceRow
}

// ResilienceSchemes are the HTM-backed schemes the resilience layer covers.
func ResilienceSchemes() []string { return []string{"pico-htm", "hst-htm"} }

// RunResilience executes the experiment. threads <= 0 defaults to 16 (the
// paper's stack experiment size, beyond PICO-HTM's 8-thread livelock
// limit); totalOps <= 0 defaults to 1<<16 pairs; nodes <= 0 to 4096.
// seed drives the deterministic backoff jitter (Config.ResilienceSeed).
func RunResilience(threads int, totalOps uint64, nodes uint32, seed uint64, progress Progress) (*Resilience, error) {
	if progress == nil {
		progress = noProgress
	}
	if threads <= 0 {
		threads = 16
	}
	if totalOps == 0 {
		totalOps = 1 << 16
	}
	if nodes == 0 {
		nodes = 4096
	}
	exp := &Resilience{Threads: threads, Ops: totalOps, Nodes: nodes, Seed: seed}
	for _, scheme := range ResilienceSchemes() {
		for _, strict := range []bool{true, false} {
			cfg := engine.DefaultConfig(scheme)
			cfg.MaxGuestInstrs = 4_000_000_000
			cfg.StrictPaper = strict
			cfg.ResilienceSeed = seed
			run, err := runStack(cfg, threads, totalOps, nodes)
			if err != nil {
				return nil, fmt.Errorf("harness: resilience %s strict=%v: %w", scheme, strict, err)
			}
			row := ResilienceRow{
				Scheme:        scheme,
				Strict:        strict,
				Threads:       threads,
				Crashed:       run.Crashed,
				Reason:        run.Reason,
				CorruptPct:    run.CorruptPct,
				VirtualTime:   run.VirtualTime,
				Retries:       run.Stats.HTMRetries,
				BackoffWaits:  run.Stats.HTMBackoffWaits,
				Fallbacks:     run.Stats.SchemeFallbacks,
				WatchdogTrips: run.Stats.WatchdogTrips,
			}
			if row.Crashed {
				progress("%-9s %-9s t=%-3d CRASH: %s", scheme, row.Mode(), threads, row.Reason)
			} else {
				progress("%-9s %-9s t=%-3d vt=%-12d retries=%d fallbacks=%d corrupt=%.2f%%",
					scheme, row.Mode(), threads, row.VirtualTime, row.Retries, row.Fallbacks, row.CorruptPct)
			}
			exp.Rows = append(exp.Rows, row)
		}
		// Recovery scenario: resilient policy with checkpointing on and a
		// one-shot store fault injected mid-run. The run must roll back to
		// the last checkpoint, re-execute, and still produce a clean stack.
		pairs := (totalOps / uint64(threads)) * uint64(threads)
		cfg := engine.DefaultConfig(scheme)
		cfg.MaxGuestInstrs = 4_000_000_000
		cfg.StrictPaper = false
		cfg.ResilienceSeed = seed
		// Each push/pop pair performs ~2 guest stores and ~450 virtual
		// cycles, so a fault after `pairs` stores lands mid-run and the
		// checkpoint cadence of pairs*10 cycles guarantees several cuts
		// before it fires.
		cfg.CheckpointEvery = pairs * 10
		cfg.FaultInjector = faultinject.New(faultinject.Rule{
			Op:     faultinject.OpMemStore,
			Action: faultinject.ActFault,
			After:  pairs,
			Count:  1,
		})
		run, err := runStack(cfg, threads, totalOps, nodes)
		if err != nil {
			return nil, fmt.Errorf("harness: resilience %s recovery: %w", scheme, err)
		}
		row := ResilienceRow{
			Scheme:        scheme,
			Recovery:      true,
			Threads:       threads,
			Crashed:       run.Crashed,
			Reason:        run.Reason,
			CorruptPct:    run.CorruptPct,
			VirtualTime:   run.VirtualTime,
			Retries:       run.Stats.HTMRetries,
			BackoffWaits:  run.Stats.HTMBackoffWaits,
			Fallbacks:     run.Stats.SchemeFallbacks,
			WatchdogTrips: run.Stats.WatchdogTrips,
			Checkpoints:   run.Stats.Checkpoints,
			Restores:      run.Stats.RecoveryRestores,
		}
		if row.Crashed {
			progress("%-9s %-9s t=%-3d CRASH: %s", scheme, row.Mode(), threads, row.Reason)
		} else {
			progress("%-9s %-9s t=%-3d vt=%-12d ckpts=%d restores=%d corrupt=%.2f%%",
				scheme, row.Mode(), threads, row.VirtualTime, row.Checkpoints, row.Restores, row.CorruptPct)
		}
		exp.Rows = append(exp.Rows, row)
	}
	return exp, nil
}

// Render writes the experiment as an aligned table.
func (exp *Resilience) Render(w io.Writer) {
	fmt.Fprintf(w, "Resilience — lock-free stack, %d threads, %d op pairs, %d nodes\n",
		exp.Threads, exp.Ops, exp.Nodes)
	fmt.Fprintf(w, "(strict = paper policy: HTM livelock aborts the run; resilient = default: degrade and complete;\n")
	fmt.Fprintf(w, " recovery = resilient + checkpointing with an injected mid-run fault, rolled back and completed)\n\n")
	fmt.Fprintf(w, "  %-9s %-9s %-8s %10s %10s %10s %8s %8s %9s  %s\n",
		"scheme", "mode", "outcome", "retries", "backoffs", "fallbacks", "ckpts", "restores", "corrupt%", "detail")
	for _, r := range exp.Rows {
		outcome := "ok"
		detail := fmt.Sprintf("vt=%d", r.VirtualTime)
		if r.Crashed {
			outcome = "crash"
			detail = r.Reason
		}
		fmt.Fprintf(w, "  %-9s %-9s %-8s %10d %10d %10d %8d %8d %9.2f  %s\n",
			r.Scheme, r.Mode(), outcome, r.Retries, r.BackoffWaits, r.Fallbacks,
			r.Checkpoints, r.Restores, r.CorruptPct, detail)
	}
}

// CSV writes rows: scheme,mode,threads,crashed,retries,backoff_waits,fallbacks,watchdog_trips,checkpoints,restores,corrupt_pct,virtual_time.
func (exp *Resilience) CSV(w io.Writer) {
	fmt.Fprintf(w, "# seed=%d\n", exp.Seed)
	fmt.Fprintln(w, "scheme,mode,threads,crashed,retries,backoff_waits,fallbacks,watchdog_trips,checkpoints,restores,corrupt_pct,virtual_time")
	for _, r := range exp.Rows {
		fmt.Fprintf(w, "%s,%s,%d,%v,%d,%d,%d,%d,%d,%d,%.4f,%d\n",
			r.Scheme, r.Mode(), r.Threads, r.Crashed, r.Retries, r.BackoffWaits,
			r.Fallbacks, r.WatchdogTrips, r.Checkpoints, r.Restores, r.CorruptPct, r.VirtualTime)
	}
}
