package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"atomemu/internal/server"
)

// Guest programs the soak clients submit. The mix is chosen so every
// robustness path gets traffic: plain completion, rollback recovery off an
// injected fault, watchdog trips that feed the circuit breaker, and
// wall-clock cancellation.
const (
	soakCounterGAC = `
var counter;
func main(n) {
    var i = 0;
    while (i < n) {
        atomic_add(&counter, 1);
        i = i + 1;
    }
    print(counter);
    exit(0);
}
`
	// The store-exclusive never matches the load-exclusive address, so the
	// SC can never succeed and the progress watchdog trips — a failure that
	// implicates the scheme and so counts against its breaker.
	soakWedgedGAC = `
var x;
var y;
func main(n) {
    while (1) {
        ll(&x);
        sc(&y, 1);
    }
}
`
	soakSpinGAC = `
var sink;
func main(n) {
    while (1) {
        sink = sink + 1;
    }
}
`
)

// SoakOptions sizes the soak experiment.
type SoakOptions struct {
	Clients       int   // concurrent clients (default 8)
	JobsPerClient int   // jobs each client submits (default 12)
	Workers       int   // daemon worker pool (default 4)
	QueueDepth    int   // admission queue depth (default 4: small, so shed happens)
	Seed          int64 // client mix seed (default 1)
}

func (o SoakOptions) withDefaults() SoakOptions {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.JobsPerClient <= 0 {
		o.JobsPerClient = 12
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// SoakRow is one client's tally.
type SoakRow struct {
	Client    int
	Submitted int // jobs accepted by the server
	Shed      int // 429 responses observed
	Retried   int // jobs accepted only after at least one 429
	Dropped   int // jobs abandoned after every retry shed
	Completed int
	Failed    int
	Canceled  int
	Recovered int // completed after at least one rollback restore
	Demoted   int // ran on a scheme other than the one requested
}

// Soak is the multi-tenant robustness experiment: an in-process atomemud
// (real HTTP stack on a loopback port) soaked by concurrent clients whose
// job mix includes recoverable faults, scheme-implicating failures and
// wall-deadline overruns, finished with a drain while jobs are in flight.
type Soak struct {
	Opts       SoakOptions
	Rows       []SoakRow
	Metrics    server.Metrics
	Breakers   []server.BreakerStatus
	DrainWave  int  // jobs submitted right before the drain
	DrainClean bool // every accepted job terminal after drain, no panics
	Wall       time.Duration
}

// RunSoak executes the experiment.
func RunSoak(opts SoakOptions, progress Progress) (*Soak, error) {
	if progress == nil {
		progress = noProgress
	}
	opts = opts.withDefaults()
	start := time.Now()

	s, err := server.New(server.Options{
		Workers:             opts.Workers,
		QueueDepth:          opts.QueueDepth,
		DefaultWallDeadline: 30 * time.Second,
		BreakerThreshold:    2,
		BreakerCooldown:     2 * time.Second,
		DrainGrace:          500 * time.Millisecond,
		AllowFaultInjection: true,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	progress("soak: daemon on %s, %d clients x %d jobs (workers=%d queue=%d)",
		base, opts.Clients, opts.JobsPerClient, opts.Workers, opts.QueueDepth)

	exp := &Soak{Opts: opts, Rows: make([]SoakRow, opts.Clients)}
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			soakClient(base, opts, c, &exp.Rows[c])
		}(c)
	}
	wg.Wait()
	for i := range exp.Rows {
		r := &exp.Rows[i]
		progress("soak: client %d: submitted=%d shed=%d retried=%d completed=%d failed=%d canceled=%d recovered=%d demoted=%d",
			r.Client, r.Submitted, r.Shed, r.Retried, r.Completed, r.Failed, r.Canceled, r.Recovered, r.Demoted)
	}

	// Drain while jobs are still in flight: submit one slow job per client
	// and immediately drain. Accepted jobs must all reach a terminal state
	// (the grace-period cancel is their exit path) and the daemon must not
	// have panicked.
	for c := 0; c < opts.Clients; c++ {
		if _, code, _ := soakSubmit(base, server.JobRequest{
			Scheme: "pico-cas", GAC: soakSpinGAC, DeadlineMS: 60_000,
		}); code == http.StatusAccepted {
			exp.DrainWave++
		}
	}
	progress("soak: draining with %d slow jobs in flight", exp.DrainWave)
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	drainErr := s.Drain(dctx)
	hs.Close()
	<-serveErr

	exp.Metrics = s.Metrics()
	exp.Breakers = s.Breakers()
	exp.DrainClean = drainErr == nil && exp.Metrics.Panics == 0
	if exp.DrainClean {
		for _, st := range s.Jobs() {
			if !st.State.Terminal() {
				exp.DrainClean = false
				break
			}
		}
	}
	exp.Wall = time.Since(start)
	progress("soak: done in %s (accepted=%d shed=%d panics=%d drain_clean=%v)",
		exp.Wall.Round(time.Millisecond), exp.Metrics.Accepted, exp.Metrics.Shed, exp.Metrics.Panics, exp.DrainClean)
	return exp, nil
}

// soakClient submits the client's job mix in bursts of three — enough
// concurrent submitters to overflow the small admission queue and exercise
// the 429 shed/retry path — then polls each accepted job to a terminal
// state.
func soakClient(base string, opts SoakOptions, c int, row *SoakRow) {
	row.Client = c
	rng := rand.New(rand.NewSource(opts.Seed + int64(c)))
	const burst = 3
	for i := 0; i < opts.JobsPerClient; i += burst {
		n := burst
		if rem := opts.JobsPerClient - i; rem < n {
			n = rem
		}
		ids := make([]string, 0, n)
		for j := 0; j < n; j++ {
			id, shed, ok := soakSubmitRetry(base, soakJob(rng), rng)
			row.Shed += shed
			if !ok {
				row.Dropped++
				continue
			}
			row.Submitted++
			if shed > 0 {
				row.Retried++
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			st, err := soakAwait(base, id)
			if err != nil {
				row.Failed++
				continue
			}
			switch st.State {
			case server.StateDone:
				row.Completed++
				if st.Restores > 0 {
					row.Recovered++
				}
			case server.StateCanceled:
				row.Canceled++
			default:
				row.Failed++
			}
			if st.Demoted {
				row.Demoted++
			}
		}
	}
}

// soakJob picks one job from the mix: mostly healthy counters across
// schemes, plus recoverable-fault, wedged-watchdog and deadline-overrun
// jobs in fixed proportions.
func soakJob(rng *rand.Rand) server.JobRequest {
	schemes := []string{"pico-cas", "hst", "pst", "hst-htm"}
	switch rng.Intn(10) {
	case 0, 1: // recoverable injected fault: checkpoint, fault once, roll back, complete
		return server.JobRequest{
			Scheme:  "pico-cas",
			GAC:     soakCounterGAC,
			Threads: 2,
			Arg:     uint32(1500 + rng.Intn(1000)),
			Config:  server.JobConfig{CheckpointEvery: 20_000, RecoveryAttempts: 4},
			Fault: []server.FaultRule{{
				Op: "mem-store", Action: "fault",
				After: uint64(3000 + rng.Intn(4000)), Count: 1,
			}},
		}
	case 2: // wedged SC: watchdog trip, feeds the pico-cas breaker
		return server.JobRequest{
			Scheme: "pico-cas",
			GAC:    soakWedgedGAC,
			Config: server.JobConfig{WatchdogSCFails: 300},
		}
	case 3: // wall-deadline overrun: canceled by the server
		return server.JobRequest{
			Scheme:     "hst",
			GAC:        soakSpinGAC,
			DeadlineMS: int64(50 + rng.Intn(100)),
		}
	default: // healthy counter across the scheme mix
		return server.JobRequest{
			Scheme:  schemes[rng.Intn(len(schemes))],
			GAC:     soakCounterGAC,
			Threads: 1 + rng.Intn(4),
			Arg:     uint32(500 + rng.Intn(2000)),
		}
	}
}

// soakSubmitRetry submits with up to four attempts, backing off after each
// shed. Returns the job id, how many 429s were absorbed, and whether the
// job was eventually accepted.
func soakSubmitRetry(base string, req server.JobRequest, rng *rand.Rand) (id string, shed int, ok bool) {
	for attempt := 0; attempt < 4; attempt++ {
		id, code, err := soakSubmit(base, req)
		if err != nil {
			return "", shed, false
		}
		switch code {
		case http.StatusAccepted:
			return id, shed, true
		case http.StatusTooManyRequests:
			shed++
			time.Sleep(time.Duration(5+rng.Intn(10)*(attempt+1)) * time.Millisecond)
		default:
			return "", shed, false
		}
	}
	return "", shed, false
}

func soakSubmit(base string, req server.JobRequest) (id string, code int, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", 0, err
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var out struct {
		ID string `json:"id"`
	}
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return "", resp.StatusCode, err
		}
	}
	return out.ID, resp.StatusCode, nil
}

func soakAwait(base string, id string) (server.JobStatus, error) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			return server.JobStatus{}, err
		}
		var st server.JobStatus
		derr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if derr != nil {
			return server.JobStatus{}, derr
		}
		if st.State.Terminal() {
			return st, nil
		}
		time.Sleep(3 * time.Millisecond)
	}
	return server.JobStatus{}, fmt.Errorf("job %s never finished", id)
}

// Totals sums the per-client rows.
func (exp *Soak) Totals() SoakRow {
	var t SoakRow
	t.Client = -1
	for _, r := range exp.Rows {
		t.Submitted += r.Submitted
		t.Shed += r.Shed
		t.Retried += r.Retried
		t.Dropped += r.Dropped
		t.Completed += r.Completed
		t.Failed += r.Failed
		t.Canceled += r.Canceled
		t.Recovered += r.Recovered
		t.Demoted += r.Demoted
	}
	return t
}

// Render writes the experiment as an aligned table.
func (exp *Soak) Render(w io.Writer) {
	fmt.Fprintf(w, "Soak — %d clients x %d jobs against atomemud (workers=%d queue=%d), %s wall\n\n",
		exp.Opts.Clients, exp.Opts.JobsPerClient, exp.Opts.Workers, exp.Opts.QueueDepth,
		exp.Wall.Round(time.Millisecond))
	fmt.Fprintf(w, "  %-7s %9s %6s %8s %8s %10s %7s %9s %10s %8s\n",
		"client", "submitted", "shed", "retried", "dropped", "completed", "failed", "canceled", "recovered", "demoted")
	rows := append([]SoakRow(nil), exp.Rows...)
	rows = append(rows, exp.Totals())
	for _, r := range rows {
		name := fmt.Sprintf("%d", r.Client)
		if r.Client < 0 {
			name = "total"
		}
		fmt.Fprintf(w, "  %-7s %9d %6d %8d %8d %10d %7d %9d %10d %8d\n",
			name, r.Submitted, r.Shed, r.Retried, r.Dropped, r.Completed, r.Failed, r.Canceled, r.Recovered, r.Demoted)
	}
	m := exp.Metrics
	fmt.Fprintf(w, "\n  daemon: accepted=%d shed=%d completed=%d failed=%d canceled=%d recovered=%d demoted=%d trips=%d panics=%d\n",
		m.Accepted, m.Shed, m.Completed, m.Failed, m.Canceled, m.Recovered, m.Demoted, m.BreakerTrips, m.Panics)
	for _, b := range exp.Breakers {
		fmt.Fprintf(w, "  breaker %-9s %-9s failures=%d trips=%d\n", b.Scheme, b.State, b.Failures, b.Trips)
	}
	fmt.Fprintf(w, "  drain: %d jobs in flight, clean=%v\n", exp.DrainWave, exp.DrainClean)
}

// CSV writes per-client rows plus a totals row:
// client,submitted,shed,retried,dropped,completed,failed,canceled,recovered,demoted,breaker_trips,panics,drain_clean.
func (exp *Soak) CSV(w io.Writer) {
	fmt.Fprintf(w, "# seed=%d\n", exp.Opts.Seed)
	fmt.Fprintln(w, "client,submitted,shed,retried,dropped,completed,failed,canceled,recovered,demoted,breaker_trips,panics,drain_clean")
	rows := append([]SoakRow(nil), exp.Rows...)
	rows = append(rows, exp.Totals())
	for _, r := range rows {
		name := fmt.Sprintf("%d", r.Client)
		if r.Client < 0 {
			name = "total"
		}
		fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%v\n",
			name, r.Submitted, r.Shed, r.Retried, r.Dropped, r.Completed, r.Failed,
			r.Canceled, r.Recovered, r.Demoted, exp.Metrics.BreakerTrips, exp.Metrics.Panics, exp.DrainClean)
	}
}
