package harness

import "testing"

// TestSoakSmall is a CI-sized soak: a few clients against a deliberately
// undersized daemon. It must finish with no daemon panics and a clean
// drain; the full-size run is `atomemu-bench soak`.
func TestSoakSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	exp, err := RunSoak(SoakOptions{Clients: 3, JobsPerClient: 4, Workers: 2, QueueDepth: 2}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Metrics.Panics != 0 {
		t.Fatalf("daemon panicked %d times", exp.Metrics.Panics)
	}
	if !exp.DrainClean {
		t.Fatal("drain left non-terminal jobs behind")
	}
	if exp.Metrics.Accepted == 0 {
		t.Fatal("soak accepted no jobs")
	}
	tot := exp.Totals()
	if tot.Submitted+tot.Dropped != 3*4 {
		t.Fatalf("job accounting leak: submitted %d + dropped %d != 12", tot.Submitted, tot.Dropped)
	}
}
