// Package harness drives the paper's experiments: it runs (program, scheme,
// thread-count) matrices over the miniparsec suite and the lock-free-stack
// micro-benchmark, collects virtual-time and profiling data, and renders
// each of the paper's tables and figures (Fig. 10–12, Table I–II, the §IV-A
// correctness experiment) as aligned text and CSV.
package harness

import (
	"errors"
	"fmt"
	"time"

	"atomemu/internal/core"
	"atomemu/internal/engine"
	"atomemu/internal/guestlib"
	"atomemu/internal/stats"
	"atomemu/internal/workload"
)

// RunConfig describes one workload execution.
type RunConfig struct {
	Program string  // miniparsec program name
	Scheme  string  // emulation scheme name
	Threads int     // worker count
	Scale   float64 // work scale factor (1.0 = full Table-sized run)
	// ProfileCollisions enables the HST hash-collision census.
	ProfileCollisions bool
}

// RunResult is the outcome of one workload execution.
type RunResult struct {
	Program string
	Scheme  string
	Threads int
	// VirtualTime is the run's execution time in model cycles (max over
	// vCPU clocks) — the quantity the paper's figures plot.
	VirtualTime uint64
	// WallTime is the host-side duration, for harness bookkeeping only.
	WallTime time.Duration
	// Stats aggregates all vCPU counters.
	Stats stats.CPU
	// Crashed is set when the scheme failed (e.g. PICO-HTM livelock); the
	// paper reports such runs as crashes, not data points.
	Crashed bool
	// CrashReason holds the failure text when Crashed.
	CrashReason string
}

// RunWorkload executes one miniparsec program under one scheme and checks
// the program's invariant. Scheme-level failures (livelock) are reported in
// the result; infrastructure errors are returned.
func RunWorkload(cfg RunConfig) (*RunResult, error) {
	spec, ok := workload.SpecByName(cfg.Program)
	if !ok {
		return nil, fmt.Errorf("harness: unknown program %q", cfg.Program)
	}
	if cfg.Threads < 1 || cfg.Threads > workload.MaxThreads {
		return nil, fmt.Errorf("harness: thread count %d out of range", cfg.Threads)
	}
	prog, err := spec.Build(0x10000)
	if err != nil {
		return nil, err
	}
	ecfg := engine.DefaultConfig(cfg.Scheme)
	ecfg.MaxGuestInstrs = 4_000_000_000
	ecfg.ProfileCollisions = cfg.ProfileCollisions
	// Paper-fidelity runs: HTM livelock crashes (Fig. 11's missing data
	// points) instead of degrading to the resilient fallback.
	ecfg.StrictPaper = true
	m, err := engine.NewMachine(ecfg)
	if err != nil {
		return nil, err
	}
	if err := m.LoadImage(prog.Image); err != nil {
		return nil, err
	}
	items := spec.ItemsPerThread(cfg.Threads, cfg.Scale)
	if spec.BarrierEvery > 0 {
		m.InitBarrier(prog.BarrierCell, cfg.Threads)
	}
	start := time.Now()
	for i := 0; i < cfg.Threads; i++ {
		if _, err := m.SpawnThread(prog.Worker, uint32(items)); err != nil {
			return nil, err
		}
	}
	runErr := m.Run()
	res := &RunResult{
		Program:     cfg.Program,
		Scheme:      cfg.Scheme,
		Threads:     cfg.Threads,
		VirtualTime: m.VirtualTime(),
		WallTime:    time.Since(start),
		Stats:       m.AggregateStats(),
	}
	if runErr != nil {
		if isSchemeCrash(runErr) {
			res.Crashed = true
			res.CrashReason = runErr.Error()
			return res, nil
		}
		return nil, fmt.Errorf("harness: %s under %s with %d threads: %w",
			cfg.Program, cfg.Scheme, cfg.Threads, runErr)
	}
	if err := prog.Verify(m.Mem(), cfg.Threads, items); err != nil {
		return nil, err
	}
	return res, nil
}

// isSchemeCrash reports whether err is a scheme-level failure (livelock
// EmulationError or a watchdog trip) — reported as a crashed run, like the
// paper's crashed QEMU — rather than an infrastructure error.
func isSchemeCrash(err error) bool {
	var ee *core.EmulationError
	var we *core.WatchdogError
	return errors.As(err, &ee) || errors.As(err, &we)
}

// StackRun is the §IV-A correctness experiment result for one scheme.
type StackRun struct {
	Scheme string
	// Threads is the worker count actually used (PICO-HTM is capped at 8,
	// the paper's own limit before it livelocks).
	Threads int
	// Ops is the total pop+push pairs executed.
	Ops uint64
	// Report is the post-run stack audit.
	Report guestlib.StackReport
	// CorruptPct is the fraction of nodes damaged or missing, in percent
	// (the paper reports ~4% for QEMU-4.1 / PICO-CAS, 0 for all others).
	CorruptPct float64
	// Crashed is set when the guest detected total loss (all nodes gone)
	// or the scheme failed.
	Crashed bool
	Reason  string
	// VirtualTime is the run's execution time in model cycles.
	VirtualTime uint64
	// Stats aggregates all vCPU counters (retries, fallbacks, …).
	Stats stats.CPU
}

// RunStack executes the lock-free-stack correctness experiment: threads
// workers, totalOps pop+push pairs in all (the paper uses 16 threads and
// 1,048,575 operations), nodes stack entries. It runs in StrictPaper mode
// so the paper's crash behavior reproduces; see RunResilience for the
// degraded-but-completing counterpart.
func RunStack(scheme string, threads int, totalOps uint64, nodes uint32) (*StackRun, error) {
	cfg := engine.DefaultConfig(scheme)
	cfg.MaxGuestInstrs = 4_000_000_000
	cfg.StrictPaper = true
	return runStack(cfg, threads, totalOps, nodes)
}

// runStack executes the stack experiment under an explicit engine config.
func runStack(cfg engine.Config, threads int, totalOps uint64, nodes uint32) (*StackRun, error) {
	sb, err := guestlib.BuildStackBench(0x10000, nodes)
	if err != nil {
		return nil, err
	}
	m, err := engine.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.LoadImage(sb.Image); err != nil {
		return nil, err
	}
	if err := sb.InitStack(m.Mem()); err != nil {
		return nil, err
	}
	per := totalOps / uint64(threads)
	if per == 0 {
		per = 1
	}
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(sb.Worker, uint32(per)); err != nil {
			return nil, err
		}
	}
	runErr := m.Run()
	out := &StackRun{
		Scheme:      cfg.Scheme,
		Threads:     threads,
		Ops:         per * uint64(threads),
		VirtualTime: m.VirtualTime(),
		Stats:       m.AggregateStats(),
	}
	if runErr != nil {
		if isSchemeCrash(runErr) {
			out.Crashed = true
			out.Reason = runErr.Error()
			return out, nil
		}
		return nil, runErr
	}
	// A worker that bailed with exit code 2 saw a permanently empty stack:
	// the guest-visible crash.
	for _, c := range m.CPUs() {
		if c.ExitCode() == 2 {
			out.Crashed = true
			out.Reason = "stack permanently empty (all nodes lost)"
		}
	}
	rep, err := sb.CheckStack(m.Mem())
	if err != nil {
		return nil, err
	}
	out.Report = rep
	// The paper's metric: the fraction of entries with a self-pointing
	// next. When the damage shows up differently (nodes lost to a cycle or
	// leaked entirely), fall back to the missing fraction.
	damaged := uint64(rep.SelfLoops)
	if damaged == 0 && (rep.Cycles || rep.Missing > 0) {
		damaged = uint64(rep.Missing)
		if damaged == 0 {
			damaged = 1
		}
	}
	out.CorruptPct = 100 * float64(damaged) / float64(nodes)
	return out, nil
}

// Speedup computes a/b as a float, tolerating zero.
func Speedup(base, v uint64) float64 {
	if v == 0 {
		return 0
	}
	return float64(base) / float64(v)
}
