package harness

import (
	"fmt"
	"io"
	"math"
	"sort"

	"atomemu/internal/core"
	"atomemu/internal/htm"
	"atomemu/internal/litmus"
	"atomemu/internal/stats"
	"atomemu/internal/workload"
)

// Point is one (threads, time) sample of a scalability series.
type Point struct {
	Threads     int
	VirtualTime uint64
	// Speedup is normalized to the same series' single-thread time, as in
	// the paper's Fig. 10/11.
	Speedup float64
	Crashed bool
}

// Fig10Schemes are the software schemes of the paper's Figure 10, plus the
// PICO-CAS reference the text compares against.
func Fig10Schemes() []string { return []string{"pico-cas", "pico-st", "hst", "hst-weak", "pst"} }

// Fig10Threads is the paper's thread sweep.
func Fig10Threads() []int { return []int{1, 2, 4, 8, 16, 32, 64} }

// Fig10 holds the scalability experiment.
type Fig10 struct {
	Scale    float64
	Threads  []int
	Programs []string
	Schemes  []string
	// Data[program][scheme] is the series over Threads.
	Data map[string]map[string][]Point
}

// Progress receives one line per completed run (nil is fine).
type Progress func(format string, args ...any)

func noProgress(string, ...any) {}

// RunFig10 sweeps the scalability matrix.
func RunFig10(scale float64, threads []int, progress Progress) (*Fig10, error) {
	if progress == nil {
		progress = noProgress
	}
	if len(threads) == 0 {
		threads = Fig10Threads()
	}
	fig := &Fig10{
		Scale:   scale,
		Threads: threads,
		Schemes: Fig10Schemes(),
		Data:    make(map[string]map[string][]Point),
	}
	for _, spec := range workload.ScalabilitySpecs() {
		fig.Programs = append(fig.Programs, spec.Name)
	}
	for _, prog := range fig.Programs {
		fig.Data[prog] = make(map[string][]Point)
		for _, scheme := range fig.Schemes {
			series, err := runSeries(prog, scheme, threads, scale, progress)
			if err != nil {
				return nil, err
			}
			fig.Data[prog][scheme] = series
		}
	}
	return fig, nil
}

func runSeries(prog, scheme string, threads []int, scale float64, progress Progress) ([]Point, error) {
	var series []Point
	var base uint64
	for _, t := range threads {
		res, err := RunWorkload(RunConfig{Program: prog, Scheme: scheme, Threads: t, Scale: scale})
		if err != nil {
			return nil, err
		}
		p := Point{Threads: t, VirtualTime: res.VirtualTime, Crashed: res.Crashed}
		if res.Crashed {
			progress("%-13s %-9s t=%-3d CRASH: %s", prog, scheme, t, res.CrashReason)
			series = append(series, p)
			continue
		}
		if base == 0 {
			base = res.VirtualTime
		}
		p.Speedup = Speedup(base, res.VirtualTime)
		progress("%-13s %-9s t=%-3d vt=%-12d speedup=%.2f", prog, scheme, t, p.VirtualTime, p.Speedup)
		series = append(series, p)
	}
	return series, nil
}

// Summary condenses Fig. 10 into the paper's §IV-B headline numbers.
type Summary struct {
	// HSTvsPicoST is the distribution over programs of the per-program
	// geomean (over thread counts) of VT(pico-st)/VT(hst): the paper
	// reports min 1.25x, max 3.21x, geomean 2.03x.
	HSTvsPicoSTMin, HSTvsPicoSTMax, HSTvsPicoSTGeo float64
	// HSTOverheadVsPicoCAS1T is the smallest per-program overhead
	// VT(hst)/VT(pico-cas)-1 at one thread; MaxT the largest at the top
	// thread count (paper: 2.9% up to 555%).
	HSTOverheadVsPicoCAS1T, HSTOverheadVsPicoCASMaxT float64
}

// Summarize computes the headline comparison from a Fig. 10 dataset.
func (fig *Fig10) Summarize() Summary {
	var s Summary
	last := len(fig.Threads) - 1
	var ratios []float64
	var ovh1, ovhN []float64
	for _, prog := range fig.Programs {
		hst := fig.Data[prog]["hst"]
		st := fig.Data[prog]["pico-st"]
		cas := fig.Data[prog]["pico-cas"]
		if len(hst) == 0 || len(st) == 0 || len(cas) == 0 {
			continue
		}
		logSum, n := 0.0, 0
		for i := range fig.Threads {
			if i < len(st) && i < len(hst) && !st[i].Crashed && !hst[i].Crashed && hst[i].VirtualTime > 0 {
				logSum += math.Log(float64(st[i].VirtualTime) / float64(hst[i].VirtualTime))
				n++
			}
		}
		if n > 0 {
			ratios = append(ratios, math.Exp(logSum/float64(n)))
		}
		if cas[0].VirtualTime > 0 {
			ovh1 = append(ovh1, float64(hst[0].VirtualTime)/float64(cas[0].VirtualTime)-1)
		}
		if cas[last].VirtualTime > 0 {
			ovhN = append(ovhN, float64(hst[last].VirtualTime)/float64(cas[last].VirtualTime)-1)
		}
	}
	if len(ratios) > 0 {
		s.HSTvsPicoSTMin, s.HSTvsPicoSTMax = ratios[0], ratios[0]
		logSum := 0.0
		for _, r := range ratios {
			s.HSTvsPicoSTMin = math.Min(s.HSTvsPicoSTMin, r)
			s.HSTvsPicoSTMax = math.Max(s.HSTvsPicoSTMax, r)
			logSum += math.Log(r)
		}
		s.HSTvsPicoSTGeo = math.Exp(logSum / float64(len(ratios)))
	}
	s.HSTOverheadVsPicoCAS1T = minOf(ovh1)
	s.HSTOverheadVsPicoCASMaxT = maxOf(ovhN)
	return s
}

func maxOf(v []float64) float64 {
	out := 0.0
	for _, x := range v {
		out = math.Max(out, x)
	}
	return out
}

func minOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	out := v[0]
	for _, x := range v {
		out = math.Min(out, x)
	}
	return out
}

// Render writes the figure as aligned text series.
func (fig *Fig10) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 10 — scalability (speedup vs own 1-thread), scale=%.3f\n", fig.Scale)
	for _, prog := range fig.Programs {
		fmt.Fprintf(w, "\n%s\n  %-10s", prog, "threads")
		for _, t := range fig.Threads {
			fmt.Fprintf(w, "%8d", t)
		}
		fmt.Fprintln(w)
		for _, scheme := range fig.Schemes {
			fmt.Fprintf(w, "  %-10s", scheme)
			for _, p := range fig.Data[prog][scheme] {
				if p.Crashed {
					fmt.Fprintf(w, "%8s", "crash")
				} else {
					fmt.Fprintf(w, "%8.2f", p.Speedup)
				}
			}
			fmt.Fprintln(w)
		}
	}
	s := fig.Summarize()
	fmt.Fprintf(w, "\nHST vs PICO-ST speedup: min %.2fx max %.2fx geomean %.2fx (paper: 1.25x / 3.21x / 2.03x)\n",
		s.HSTvsPicoSTMin, s.HSTvsPicoSTMax, s.HSTvsPicoSTGeo)
	fmt.Fprintf(w, "HST overhead vs PICO-CAS: %.1f%% at 1 thread, %.1f%% at %d threads (paper: 2.9%% .. 555%%)\n",
		100*s.HSTOverheadVsPicoCAS1T, 100*s.HSTOverheadVsPicoCASMaxT, fig.Threads[len(fig.Threads)-1])
}

// CSV writes the figure as rows: program,scheme,threads,virtual_time,speedup,crashed.
func (fig *Fig10) CSV(w io.Writer) {
	fmt.Fprintln(w, "program,scheme,threads,virtual_time,speedup,crashed")
	for _, prog := range fig.Programs {
		for _, scheme := range fig.Schemes {
			for _, p := range fig.Data[prog][scheme] {
				fmt.Fprintf(w, "%s,%s,%d,%d,%.4f,%v\n", prog, scheme, p.Threads, p.VirtualTime, p.Speedup, p.Crashed)
			}
		}
	}
}

// Fig11 is the HTM-scheme scalability experiment.
type Fig11 struct {
	Scale    float64
	Threads  []int
	Programs []string
	Schemes  []string
	Data     map[string]map[string][]Point
}

// Fig11Schemes are the HTM-based schemes.
func Fig11Schemes() []string { return []string{"pico-htm", "hst-htm"} }

// Fig11Threads is the paper's HTM sweep (their workstation tops out at 32).
func Fig11Threads() []int { return []int{1, 2, 4, 8, 16, 32} }

// RunFig11 sweeps the HTM matrix.
func RunFig11(scale float64, threads []int, progress Progress) (*Fig11, error) {
	if progress == nil {
		progress = noProgress
	}
	if len(threads) == 0 {
		threads = Fig11Threads()
	}
	fig := &Fig11{Scale: scale, Threads: threads, Schemes: Fig11Schemes(), Data: make(map[string]map[string][]Point)}
	for _, spec := range workload.ScalabilitySpecs() {
		fig.Programs = append(fig.Programs, spec.Name)
	}
	for _, prog := range fig.Programs {
		fig.Data[prog] = make(map[string][]Point)
		for _, scheme := range fig.Schemes {
			series, err := runSeries(prog, scheme, threads, scale, progress)
			if err != nil {
				return nil, err
			}
			fig.Data[prog][scheme] = series
		}
	}
	return fig, nil
}

// Render writes the HTM figure.
func (fig *Fig11) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 11 — HTM schemes scalability, scale=%.3f\n", fig.Scale)
	for _, prog := range fig.Programs {
		fmt.Fprintf(w, "\n%s\n  %-10s", prog, "threads")
		for _, t := range fig.Threads {
			fmt.Fprintf(w, "%8d", t)
		}
		fmt.Fprintln(w)
		for _, scheme := range fig.Schemes {
			fmt.Fprintf(w, "  %-10s", scheme)
			for _, p := range fig.Data[prog][scheme] {
				if p.Crashed {
					fmt.Fprintf(w, "%8s", "crash")
				} else {
					fmt.Fprintf(w, "%8.2f", p.Speedup)
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// CSV writes the HTM figure rows.
func (fig *Fig11) CSV(w io.Writer) {
	fmt.Fprintln(w, "program,scheme,threads,virtual_time,speedup,crashed")
	for _, prog := range fig.Programs {
		for _, scheme := range fig.Schemes {
			for _, p := range fig.Data[prog][scheme] {
				fmt.Fprintf(w, "%s,%s,%d,%d,%.4f,%v\n", prog, scheme, p.Threads, p.VirtualTime, p.Speedup, p.Crashed)
			}
		}
	}
}

// Fig12Schemes are the breakdown schemes, in the paper's bar order.
func Fig12Schemes() []string { return []string{"pico-st", "hst", "pst", "pst-remap"} }

// Fig12Threads is the paper's breakdown sweep.
func Fig12Threads() []int { return []int{1, 2, 4, 8, 16, 32} }

// PSTRemapPrograms are the four PARSEC programs the paper's PST-REMAP
// prototype supports.
func PSTRemapPrograms() map[string]bool {
	return map[string]bool{"blackscholes": true, "bodytrack": true, "freqmine": true, "swaptions": true}
}

// BreakdownPoint is one stacked bar of Fig. 12.
type BreakdownPoint struct {
	Threads     int
	VirtualTime uint64
	// Fractions sum to 1 across stats components.
	Fractions [stats.NumComponents]float64
	Missing   bool // scheme/program combination not run (PST-REMAP limits)
}

// Fig12 is the overhead-breakdown experiment.
type Fig12 struct {
	Scale    float64
	Threads  []int
	Programs []string
	Schemes  []string
	Data     map[string]map[string][]BreakdownPoint
}

// RunFig12 sweeps the breakdown matrix.
func RunFig12(scale float64, threads []int, progress Progress) (*Fig12, error) {
	if progress == nil {
		progress = noProgress
	}
	if len(threads) == 0 {
		threads = Fig12Threads()
	}
	remapOK := PSTRemapPrograms()
	fig := &Fig12{Scale: scale, Threads: threads, Schemes: Fig12Schemes(), Data: make(map[string]map[string][]BreakdownPoint)}
	for _, spec := range workload.Specs() {
		fig.Programs = append(fig.Programs, spec.Name)
	}
	for _, prog := range fig.Programs {
		fig.Data[prog] = make(map[string][]BreakdownPoint)
		for _, scheme := range fig.Schemes {
			var series []BreakdownPoint
			for _, t := range threads {
				if scheme == "pst-remap" && !remapOK[prog] {
					series = append(series, BreakdownPoint{Threads: t, Missing: true})
					continue
				}
				res, err := RunWorkload(RunConfig{Program: prog, Scheme: scheme, Threads: t, Scale: scale})
				if err != nil {
					return nil, err
				}
				bp := BreakdownPoint{Threads: t, VirtualTime: res.VirtualTime, Fractions: res.Stats.Breakdown()}
				progress("%-13s %-9s t=%-3d native=%.2f excl=%.2f instr=%.2f mprot=%.2f",
					prog, scheme, t, bp.Fractions[stats.CompNative], bp.Fractions[stats.CompExclusive],
					bp.Fractions[stats.CompInstrument], bp.Fractions[stats.CompMProtect])
				series = append(series, bp)
			}
			fig.Data[prog][scheme] = series
		}
	}
	return fig, nil
}

// Render writes the breakdown as per-program tables.
func (fig *Fig12) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 12 — execution-time breakdown (fraction of cycles), scale=%.3f\n", fig.Scale)
	for _, prog := range fig.Programs {
		fmt.Fprintf(w, "\n%s\n  %-10s %-8s %-12s %8s %8s %8s %8s %8s\n",
			prog, "scheme", "threads", "vtime", "native", "excl", "instr", "mprot", "htm")
		for _, scheme := range fig.Schemes {
			for _, bp := range fig.Data[prog][scheme] {
				if bp.Missing {
					fmt.Fprintf(w, "  %-10s %-8d %-12s\n", scheme, bp.Threads, "n/a")
					continue
				}
				fmt.Fprintf(w, "  %-10s %-8d %-12d %8.3f %8.3f %8.3f %8.3f %8.3f\n",
					scheme, bp.Threads, bp.VirtualTime,
					bp.Fractions[stats.CompNative], bp.Fractions[stats.CompExclusive],
					bp.Fractions[stats.CompInstrument], bp.Fractions[stats.CompMProtect],
					bp.Fractions[stats.CompHTM])
			}
		}
	}
}

// CSV writes the breakdown rows.
func (fig *Fig12) CSV(w io.Writer) {
	fmt.Fprintln(w, "program,scheme,threads,virtual_time,native,exclusive,instrument,mprotect,htm,missing")
	for _, prog := range fig.Programs {
		for _, scheme := range fig.Schemes {
			for _, bp := range fig.Data[prog][scheme] {
				fmt.Fprintf(w, "%s,%s,%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%v\n",
					prog, scheme, bp.Threads, bp.VirtualTime,
					bp.Fractions[stats.CompNative], bp.Fractions[stats.CompExclusive],
					bp.Fractions[stats.CompInstrument], bp.Fractions[stats.CompMProtect],
					bp.Fractions[stats.CompHTM], bp.Missing)
			}
		}
	}
}

// TableIRow is one program's instruction census.
type TableIRow struct {
	Program      string
	GuestInstrs  uint64
	Stores       uint64
	LLSC         uint64 // LL count (pairs)
	Ratio        float64
	CollisionPct float64 // HST hash-collision rate among instrumented accesses
}

// TableI holds the census.
type TableI struct {
	Scale float64
	Rows  []TableIRow
}

// RunTableI profiles every program under HST with collision profiling.
// Use enough threads (the paper used a full machine) for the per-thread
// buffers to span the hash table and alias.
func RunTableI(scale float64, threads int, progress Progress) (*TableI, error) {
	if progress == nil {
		progress = noProgress
	}
	tab := &TableI{Scale: scale}
	for _, spec := range workload.Specs() {
		res, err := RunWorkload(RunConfig{
			Program: spec.Name, Scheme: "hst", Threads: threads,
			Scale: scale, ProfileCollisions: true,
		})
		if err != nil {
			return nil, err
		}
		st := res.Stats
		row := TableIRow{
			Program:     spec.Name,
			GuestInstrs: st.GuestInstrs,
			Stores:      st.Stores,
			LLSC:        st.LLs,
			Ratio:       st.StoreToLLSCRatio(),
		}
		if touched := st.Stores + st.LLs; touched > 0 {
			row.CollisionPct = 100 * float64(st.HashConflicts) / float64(touched)
		}
		progress("%-13s instrs=%-10d stores=%-9d llsc=%-7d ratio=%.0f", spec.Name,
			row.GuestInstrs, row.Stores, row.LLSC, row.Ratio)
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// Render writes Table I.
func (tab *TableI) Render(w io.Writer) {
	fmt.Fprintf(w, "Table I — instruction census (scale=%.3f)\n", tab.Scale)
	fmt.Fprintf(w, "%-14s %12s %12s %10s %12s %10s\n",
		"program", "guest instrs", "stores", "LL/SC", "store:LLSC", "hash coll%")
	for _, r := range tab.Rows {
		fmt.Fprintf(w, "%-14s %12d %12d %10d %12.0f %9.2f%%\n",
			r.Program, r.GuestInstrs, r.Stores, r.LLSC, r.Ratio, r.CollisionPct)
	}
}

// CSV writes Table I rows.
func (tab *TableI) CSV(w io.Writer) {
	fmt.Fprintln(w, "program,guest_instrs,stores,llsc,store_llsc_ratio,hash_collision_pct")
	for _, r := range tab.Rows {
		fmt.Fprintf(w, "%s,%d,%d,%d,%.2f,%.4f\n", r.Program, r.GuestInstrs, r.Stores, r.LLSC, r.Ratio, r.CollisionPct)
	}
}

// TableIIRow is one scheme's qualitative summary, with the atomicity
// *measured* by the litmus harness rather than asserted.
type TableIIRow struct {
	Scheme            string
	RelativeTime      float64 // geomean VT vs pico-cas, same program/threads
	Speed             string  // fast / varies / slow, derived from RelativeTime
	ClaimedAtomicity  core.Atomicity
	MeasuredAtomicity core.Atomicity
	Portable          bool
	Crashed           bool // any benchmark crash (PICO-HTM livelock)
}

// TableII holds the summary matrix.
type TableII struct {
	Threads int
	Scale   float64
	Rows    []TableIIRow
}

// RunTableII measures every scheme: relative time on the scalability suite
// at the given thread count, plus the litmus atomicity classification.
func RunTableII(scale float64, threads int, progress Progress) (*TableII, error) {
	if progress == nil {
		progress = noProgress
	}
	tab := &TableII{Threads: threads, Scale: scale}
	// Baseline: pico-cas on every program.
	base := make(map[string]uint64)
	for _, spec := range workload.ScalabilitySpecs() {
		res, err := RunWorkload(RunConfig{Program: spec.Name, Scheme: "pico-cas", Threads: threads, Scale: scale})
		if err != nil {
			return nil, err
		}
		base[spec.Name] = res.VirtualTime
	}
	for _, scheme := range core.SchemeNames() {
		row := TableIIRow{Scheme: scheme}
		// Litmus classification.
		results, err := litmus.RunAll(scheme)
		if err != nil {
			return nil, err
		}
		row.MeasuredAtomicity = litmus.Classify(results)
		s, err := core.New(scheme, schemeProbeDeps())
		if err != nil {
			return nil, err
		}
		row.ClaimedAtomicity = s.Atomicity()
		row.Portable = s.Portable()
		// Relative time.
		logSum, n := 0.0, 0
		for _, spec := range workload.ScalabilitySpecs() {
			res, err := RunWorkload(RunConfig{Program: spec.Name, Scheme: scheme, Threads: threads, Scale: scale})
			if err != nil {
				return nil, err
			}
			if res.Crashed {
				row.Crashed = true
				continue
			}
			if b := base[spec.Name]; b > 0 && res.VirtualTime > 0 {
				logSum += math.Log(float64(res.VirtualTime) / float64(b))
				n++
			}
		}
		if n > 0 {
			row.RelativeTime = math.Exp(logSum / float64(n))
		}
		switch {
		case row.Crashed:
			row.Speed = "crashes"
		case row.RelativeTime <= 1.6:
			row.Speed = "fast"
		case row.RelativeTime <= 4:
			row.Speed = "varies"
		default:
			row.Speed = "slow"
		}
		progress("%-10s rel=%.2fx atomicity=%s portable=%v", scheme, row.RelativeTime, row.MeasuredAtomicity, row.Portable)
		tab.Rows = append(tab.Rows, row)
	}
	sort.Slice(tab.Rows, func(i, j int) bool { return tab.Rows[i].Scheme < tab.Rows[j].Scheme })
	return tab, nil
}

func schemeProbeDeps() core.Deps {
	cm := core.DefaultCostModel()
	tab, _ := core.NewHashTable(8)
	tm, _ := htm.New(8, 0)
	return core.Deps{Cost: &cm, Htab: tab, TM: tm}
}

// Render writes Table II.
func (tab *TableII) Render(w io.Writer) {
	fmt.Fprintf(w, "Table II — scheme summary (threads=%d, scale=%.3f)\n", tab.Threads, tab.Scale)
	fmt.Fprintf(w, "%-11s %10s %-8s %-10s %-10s %-9s\n",
		"scheme", "rel. time", "speed", "claimed", "measured", "portable")
	for _, r := range tab.Rows {
		port := "portable"
		if !r.Portable {
			port = "HTM"
		}
		fmt.Fprintf(w, "%-11s %9.2fx %-8s %-10s %-10s %-9s\n",
			r.Scheme, r.RelativeTime, r.Speed, r.ClaimedAtomicity, r.MeasuredAtomicity, port)
	}
}

// CSV writes Table II rows.
func (tab *TableII) CSV(w io.Writer) {
	fmt.Fprintln(w, "scheme,relative_time,speed,claimed_atomicity,measured_atomicity,portable,crashed")
	for _, r := range tab.Rows {
		fmt.Fprintf(w, "%s,%.4f,%s,%s,%s,%v,%v\n",
			r.Scheme, r.RelativeTime, r.Speed, r.ClaimedAtomicity, r.MeasuredAtomicity, r.Portable, r.Crashed)
	}
}

// Correctness is the §IV-A experiment across every scheme.
type Correctness struct {
	Threads int
	Ops     uint64
	Nodes   uint32
	Runs    []StackRun
}

// RunCorrectness executes the lock-free-stack audit per scheme. attempts
// re-runs PICO-CAS until corruption manifests (it is a race), up to the
// given count; the other schemes run once and must stay clean.
func RunCorrectness(threads int, ops uint64, nodes uint32, attempts int, progress Progress) (*Correctness, error) {
	if progress == nil {
		progress = noProgress
	}
	if attempts < 1 {
		attempts = 1
	}
	out := &Correctness{Threads: threads, Ops: ops, Nodes: nodes}
	for _, scheme := range core.SchemeNames() {
		tries := 1
		if scheme == "pico-cas" {
			tries = attempts
		}
		schemeThreads := threads
		if scheme == "pico-htm" && schemeThreads > 8 {
			// The paper's PICO-HTM livelocks beyond 8 threads (Fig. 11);
			// its correctness run uses the supported width.
			schemeThreads = 8
		}
		var last *StackRun
		for i := 0; i < tries; i++ {
			run, err := RunStack(scheme, schemeThreads, ops, nodes)
			if err != nil {
				return nil, err
			}
			last = run
			if run.Report.Corrupted() || run.Crashed {
				break
			}
		}
		progress("%-10s corrupt=%.1f%% crashed=%v (%s)", scheme, last.CorruptPct, last.Crashed, last.Report)
		out.Runs = append(out.Runs, *last)
	}
	return out, nil
}

// Render writes the correctness table.
func (c *Correctness) Render(w io.Writer) {
	fmt.Fprintf(w, "Correctness (§IV-A) — lock-free stack, %d threads, %d ops, %d nodes\n", c.Threads, c.Ops, c.Nodes)
	fmt.Fprintf(w, "%-11s %8s %10s %-9s %s\n", "scheme", "threads", "corrupt %", "crashed", "audit")
	for _, r := range c.Runs {
		fmt.Fprintf(w, "%-11s %8d %9.1f%% %-9v %s\n", r.Scheme, r.Threads, r.CorruptPct, r.Crashed, r.Report)
	}
}

// CSV writes the correctness rows.
func (c *Correctness) CSV(w io.Writer) {
	fmt.Fprintln(w, "scheme,corrupt_pct,crashed,self_loops,cycles,missing,walked")
	for _, r := range c.Runs {
		fmt.Fprintf(w, "%s,%.2f,%v,%d,%v,%d,%d\n",
			r.Scheme, r.CorruptPct, r.Crashed, r.Report.SelfLoops, r.Report.Cycles, r.Report.Missing, r.Report.Walked)
	}
}

// LitmusMatrix renders the per-sequence SC_a outcome per scheme.
func LitmusMatrix(w io.Writer) error {
	seqs := litmus.StandardSequences()
	fmt.Fprintf(w, "Litmus (§IV-A sequences) — final SC_a outcome per scheme (ok = succeeded)\n")
	fmt.Fprintf(w, "%-11s", "scheme")
	for _, s := range seqs {
		fmt.Fprintf(w, "%10s", s.Name)
	}
	fmt.Fprintf(w, "%12s\n", "classified")
	for _, scheme := range core.SchemeNames() {
		results, err := litmus.RunAll(scheme)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-11s", scheme)
		for _, s := range seqs {
			out := "fail"
			if results[s.Name].FinalSCSuccess {
				out = "ok"
			}
			fmt.Fprintf(w, "%10s", out)
		}
		fmt.Fprintf(w, "%12s\n", litmus.Classify(results))
	}
	return nil
}
