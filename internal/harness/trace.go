package harness

import (
	"fmt"
	"io"
	"sort"

	"atomemu/internal/engine"
	"atomemu/internal/guestlib"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// Trace is the event-trace experiment: one contended HST stack run with
// the per-vCPU tracer on, plus the merged event stream. Render prints a
// per-kind census; Chrome emits the stream in Chrome trace-event JSON
// (load into chrome://tracing or Perfetto to see exclusive sections and
// SC failures per vCPU on the virtual timeline).
type Trace struct {
	Scheme      string
	Threads     int
	Ops         uint64
	VirtualTime uint64
	Stats       stats.CPU
	Events      []obs.Event
	Dropped     uint64
}

// RunTrace executes the contended lock-free-stack run under HST with
// event tracing enabled and collects the merged trace.
func RunTrace(threads int, totalOps uint64, nodes uint32, progress Progress) (*Trace, error) {
	if progress == nil {
		progress = noProgress
	}
	const scheme = "hst"
	cfg := engine.DefaultConfig(scheme)
	cfg.MaxGuestInstrs = 4_000_000_000
	cfg.TraceEvents = true
	sb, err := guestlib.BuildStackBench(0x10000, nodes)
	if err != nil {
		return nil, err
	}
	m, err := engine.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.LoadImage(sb.Image); err != nil {
		return nil, err
	}
	if err := sb.InitStack(m.Mem()); err != nil {
		return nil, err
	}
	per := totalOps / uint64(threads)
	if per == 0 {
		per = 1
	}
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(sb.Worker, uint32(per)); err != nil {
			return nil, err
		}
	}
	if err := m.Run(); err != nil {
		return nil, fmt.Errorf("harness: traced stack run under %s: %w", scheme, err)
	}
	t := &Trace{
		Scheme:      scheme,
		Threads:     threads,
		Ops:         per * uint64(threads),
		VirtualTime: m.VirtualTime(),
		Stats:       m.AggregateStats(),
		Events:      m.TraceEvents(),
		Dropped:     m.TraceDropped(),
	}
	progress("trace: %s threads=%d ops=%d events=%d dropped=%d",
		scheme, threads, t.Ops, len(t.Events), t.Dropped)
	return t, nil
}

// Render prints the event census: totals per kind, SC-failure reasons,
// and the time span the trace covers.
func (t *Trace) Render(w io.Writer) {
	fmt.Fprintf(w, "event trace: %s, %d threads, %d ops, %d virtual cycles\n",
		t.Scheme, t.Threads, t.Ops, t.VirtualTime)
	fmt.Fprintf(w, "%d events captured", len(t.Events))
	if t.Dropped > 0 {
		fmt.Fprintf(w, " (%d oldest dropped by ring wrap)", t.Dropped)
	}
	if len(t.Events) > 0 {
		fmt.Fprintf(w, ", vt %d .. %d", t.Events[0].VT, t.Events[len(t.Events)-1].VT)
	}
	fmt.Fprintln(w)

	kinds := map[obs.Kind]int{}
	reasons := map[uint64]int{}
	for _, e := range t.Events {
		kinds[e.Kind]++
		if e.Kind == obs.EvSCFail {
			reasons[e.Arg]++
		}
	}
	kindKeys := make([]obs.Kind, 0, len(kinds))
	for k := range kinds {
		kindKeys = append(kindKeys, k)
	}
	sort.Slice(kindKeys, func(i, j int) bool { return kindKeys[i] < kindKeys[j] })
	for _, k := range kindKeys {
		fmt.Fprintf(w, "  %-16s %d\n", k.String(), kinds[k])
	}
	if len(reasons) > 0 {
		fmt.Fprintln(w, "sc_fail reasons:")
		reasonKeys := make([]uint64, 0, len(reasons))
		for r := range reasons {
			reasonKeys = append(reasonKeys, r)
		}
		sort.Slice(reasonKeys, func(i, j int) bool { return reasonKeys[i] < reasonKeys[j] })
		for _, r := range reasonKeys {
			fmt.Fprintf(w, "  %-16s %d\n", obs.SCReasonString(r), reasons[r])
		}
	}
}

// Chrome writes the trace as Chrome trace-event JSON (saved as
// trace.json by the bench CLI's -out flag).
func (t *Trace) Chrome(w io.Writer) {
	_ = obs.WriteChromeTrace(w, t.Events)
}
