package mmu

import (
	"sync"
	"testing"
	"testing/quick"
)

func newMem(t *testing.T) *Memory {
	t.Helper()
	return New(16 << 20)
}

func TestMapLoadStore(t *testing.T) {
	m := newMem(t)
	if err := m.Map(0x10000, 2*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if f := m.StoreWord(0x10004, 0xdeadbeef); f != nil {
		t.Fatal(f)
	}
	v, f := m.LoadWord(0x10004)
	if f != nil || v != 0xdeadbeef {
		t.Fatalf("LoadWord = %#x, %v", v, f)
	}
	// Fresh pages read as zero.
	v, f = m.LoadWord(0x10000 + PageSize)
	if f != nil || v != 0 {
		t.Fatalf("fresh page load = %#x, %v", v, f)
	}
}

func TestUnmappedFault(t *testing.T) {
	m := newMem(t)
	_, f := m.LoadWord(0x5000)
	if f == nil || f.Kind != FaultUnmapped || f.Access != AccessLoad {
		t.Fatalf("fault = %v", f)
	}
	if f.Error() == "" {
		t.Error("fault should format")
	}
	if f2 := m.StoreWord(0x5000, 1); f2 == nil || f2.Kind != FaultUnmapped || f2.Access != AccessStore {
		t.Fatalf("store fault = %v", f2)
	}
}

func TestAlignmentFault(t *testing.T) {
	m := newMem(t)
	if err := m.Map(0, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if _, f := m.LoadWord(2); f == nil || f.Kind != FaultAlign {
		t.Fatalf("misaligned load fault = %v", f)
	}
	if f := m.StoreWord(1, 9); f == nil || f.Kind != FaultAlign {
		t.Fatalf("misaligned store fault = %v", f)
	}
}

func TestProtectionFault(t *testing.T) {
	m := newMem(t)
	if err := m.Map(0x4000, PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	if f := m.StoreWord(0x4000, 1); f == nil || f.Kind != FaultProtected {
		t.Fatalf("store to read-only = %v", f)
	}
	if _, f := m.LoadWord(0x4000); f != nil {
		t.Fatalf("read of read-only page should work: %v", f)
	}
	if _, f := m.FetchWord(0x4000); f == nil || f.Kind != FaultProtected {
		t.Fatalf("fetch from non-exec = %v", f)
	}
}

func TestProtectFlipsPermissions(t *testing.T) {
	m := newMem(t)
	if err := m.Map(0x4000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if f := m.StoreWord(0x4000, 7); f != nil {
		t.Fatal(f)
	}
	if err := m.Protect(0x4000, PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	if f := m.StoreWord(0x4000, 8); f == nil || f.Kind != FaultProtected {
		t.Fatalf("store after mprotect(RO) = %v", f)
	}
	// PST's privileged commit path still works.
	if f := m.WriteWordPriv(0x4000, 8); f != nil {
		t.Fatal(f)
	}
	if err := m.Protect(0x4000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	v, f := m.LoadWord(0x4000)
	if f != nil || v != 8 {
		t.Fatalf("after restore: %#x, %v", v, f)
	}
}

func TestDoubleMapRejected(t *testing.T) {
	m := newMem(t)
	if err := m.Map(0x1000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(0x1000, PageSize, PermRW); err == nil {
		t.Fatal("double map should fail")
	}
	// Partial overlap too.
	if err := m.Map(0, 2*PageSize, PermRW); err == nil {
		t.Fatal("overlapping map should fail")
	}
}

func TestUnmapAndReuse(t *testing.T) {
	m := newMem(t)
	if err := m.Map(0x1000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if f := m.StoreWord(0x1000, 42); f != nil {
		t.Fatal(f)
	}
	if err := m.Unmap(0x1000, PageSize); err != nil {
		t.Fatal(err)
	}
	if _, f := m.LoadWord(0x1000); f == nil || f.Kind != FaultUnmapped {
		t.Fatalf("load after unmap = %v", f)
	}
	// Remapping must hand back a zeroed page even though the frame is
	// recycled.
	if err := m.Map(0x1000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	v, f := m.LoadWord(0x1000)
	if f != nil || v != 0 {
		t.Fatalf("recycled frame not zeroed: %#x, %v", v, f)
	}
	if err := m.Unmap(0x2000, PageSize); err == nil {
		t.Fatal("unmap of unmapped page should fail")
	}
}

func TestAliasSharesFrame(t *testing.T) {
	m := newMem(t)
	if err := m.Map(0x1000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := m.Alias(0x9000, 0x1000, PermRW); err != nil {
		t.Fatal(err)
	}
	if f := m.StoreWord(0x9004, 0x1234); f != nil {
		t.Fatal(f)
	}
	v, f := m.LoadWord(0x1004)
	if f != nil || v != 0x1234 {
		t.Fatalf("alias write not visible at original: %#x, %v", v, f)
	}
	// Unmapping the original must keep the frame alive for the alias.
	if err := m.Unmap(0x1000, PageSize); err != nil {
		t.Fatal(err)
	}
	v, f = m.LoadWord(0x9004)
	if f != nil || v != 0x1234 {
		t.Fatalf("alias lost data after original unmap: %#x, %v", v, f)
	}
}

func TestRemapMovesPage(t *testing.T) {
	m := newMem(t)
	if err := m.Map(0x1000, PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	if f := m.WriteWordPriv(0x1008, 99); f != nil {
		t.Fatal(f)
	}
	if err := m.Remap(0x1000, 0xa000, PermRW); err != nil {
		t.Fatal(err)
	}
	// Old address faults MAPERR — this is what blocks other threads in
	// PST-REMAP.
	if _, f := m.LoadWord(0x1008); f == nil || f.Kind != FaultUnmapped {
		t.Fatalf("old address after remap = %v", f)
	}
	// New address sees the data, now writable.
	v, f := m.LoadWord(0xa008)
	if f != nil || v != 99 {
		t.Fatalf("remapped load = %#x, %v", v, f)
	}
	if f := m.StoreWord(0xa008, 100); f != nil {
		t.Fatal(f)
	}
	// Remap back.
	if err := m.Remap(0xa000, 0x1000, PermRead); err != nil {
		t.Fatal(err)
	}
	v, f = m.LoadWord(0x1008)
	if f != nil || v != 100 {
		t.Fatalf("after remap back = %#x, %v", v, f)
	}
}

func TestRemapErrors(t *testing.T) {
	m := newMem(t)
	if err := m.Remap(0x1000, 0x2000, PermRW); err == nil {
		t.Fatal("remap of unmapped should fail")
	}
	if err := m.Map(0x1000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(0x2000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := m.Remap(0x1000, 0x2000, PermRW); err == nil {
		t.Fatal("remap onto mapped destination should fail")
	}
	if err := m.Remap(0x1001, 0x3000, PermRW); err == nil {
		t.Fatal("unaligned remap should fail")
	}
}

func TestCASWord(t *testing.T) {
	m := newMem(t)
	if err := m.Map(0, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if f := m.StoreWord(0x10, 5); f != nil {
		t.Fatal(f)
	}
	ok, f := m.CASWord(0x10, 5, 6)
	if f != nil || !ok {
		t.Fatalf("CAS(5,6) = %v, %v", ok, f)
	}
	ok, f = m.CASWord(0x10, 5, 7)
	if f != nil || ok {
		t.Fatalf("CAS with stale old should fail, got %v, %v", ok, f)
	}
	v, _ := m.LoadWord(0x10)
	if v != 6 {
		t.Fatalf("value = %d, want 6", v)
	}
}

func TestByteAccess(t *testing.T) {
	m := newMem(t)
	if err := m.Map(0, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 4; i++ {
		if f := m.StoreByte(0x20+i, uint8(0x10+i)); f != nil {
			t.Fatal(f)
		}
	}
	w, f := m.LoadWord(0x20)
	if f != nil || w != 0x13121110 {
		t.Fatalf("word after byte stores = %#x (little-endian expected), %v", w, f)
	}
	b, f := m.LoadByte(0x22)
	if f != nil || b != 0x12 {
		t.Fatalf("LoadByte = %#x, %v", b, f)
	}
	// Byte fault carries the byte address, not the word base.
	if _, f := m.LoadByte(0x7fff_0003); f == nil || f.Addr != 0x7fff_0003 {
		t.Fatalf("byte fault addr = %v", f)
	}
}

func TestConcurrentByteStoresNoLostUpdate(t *testing.T) {
	m := newMem(t)
	if err := m.Map(0, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for lane := uint32(0); lane < 4; lane++ {
		wg.Add(1)
		go func(lane uint32) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if f := m.StoreByte(0x40+lane, uint8(lane+1)); f != nil {
					t.Error(f)
					return
				}
			}
		}(lane)
	}
	wg.Wait()
	w, _ := m.LoadWord(0x40)
	if w != 0x04030201 {
		t.Fatalf("concurrent byte lanes = %#x, want 0x04030201", w)
	}
}

func TestPermAt(t *testing.T) {
	m := newMem(t)
	if m.PermAt(0x1000) != 0 {
		t.Error("unmapped PermAt should be 0")
	}
	if err := m.Map(0x1000, PageSize, PermRX); err != nil {
		t.Fatal(err)
	}
	if got := m.PermAt(0x1abc); got != PermRX {
		t.Errorf("PermAt = %v", got)
	}
}

func TestPermString(t *testing.T) {
	if PermRW.String() != "rw-" || PermRWX.String() != "rwx" || Perm(0).String() != "---" {
		t.Errorf("perm strings: %s %s %s", PermRW, PermRWX, Perm(0))
	}
}

func TestOutOfPhysicalMemory(t *testing.T) {
	m := New(2 * PageSize)
	if err := m.Map(0, 2*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(0x10000, PageSize, PermRW); err == nil {
		t.Fatal("expected out-of-memory")
	}
}

// Property: for any set of distinct pages mapped RW, stores round-trip and
// pages are isolated from each other.
func TestQuickPageIsolation(t *testing.T) {
	f := func(pages []uint16, val uint32) bool {
		m := New(64 << 20)
		seen := map[uint32]bool{}
		var addrs []uint32
		for _, p := range pages {
			base := uint32(p) << PageShift
			if seen[base] {
				continue
			}
			seen[base] = true
			if err := m.Map(base, PageSize, PermRW); err != nil {
				return false
			}
			addrs = append(addrs, base)
		}
		for i, a := range addrs {
			if f := m.StoreWord(a, val+uint32(i)); f != nil {
				return false
			}
		}
		for i, a := range addrs {
			v, f := m.LoadWord(a)
			if f != nil || v != val+uint32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentWordStoresAtomic(t *testing.T) {
	// Concurrent CAS increments must not lose updates: the host-atomicity
	// guarantee the PICO-CAS translation relies on.
	m := newMem(t)
	if err := m.Map(0, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				for {
					old, _ := m.LoadWord(0)
					ok, _ := m.CASWord(0, old, old+1)
					if ok {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	v, _ := m.LoadWord(0)
	if v != goroutines*perG {
		t.Fatalf("lost updates: %d, want %d", v, goroutines*perG)
	}
}

func TestPageBase(t *testing.T) {
	if PageBase(0x12345) != 0x12000 {
		t.Errorf("PageBase = %#x", PageBase(0x12345))
	}
}
