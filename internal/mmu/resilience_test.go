package mmu

import (
	"testing"

	"atomemu/internal/faultinject"
)

func TestFaultInjectedMemoryAccess(t *testing.T) {
	m := New(1 << 20)
	if err := m.Map(0x1000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if f := m.StoreWord(0x1000, 42); f != nil {
		t.Fatal(f)
	}
	m.SetInjector(faultinject.New(
		faultinject.Rule{Op: faultinject.OpMemLoad, Action: faultinject.ActFault, Addr: 0x1000, Count: 1},
		faultinject.Rule{Op: faultinject.OpMemStore, Action: faultinject.ActFault, Addr: 0x1004, Count: 1},
	))
	// Injected load fault at the targeted address only.
	if _, f := m.LoadWord(0x1000); f == nil || f.Kind != FaultProtected || f.Access != AccessLoad {
		t.Fatalf("injected load fault = %v", f)
	}
	if _, f := m.LoadWord(0x1004); f != nil {
		t.Fatalf("untargeted load should pass: %v", f)
	}
	// Injected store fault leaves memory untouched.
	if f := m.StoreWord(0x1004, 7); f == nil || f.Access != AccessStore {
		t.Fatalf("injected store fault = %v", f)
	}
	if v, f := m.LoadWord(0x1004); f != nil || v != 0 {
		t.Fatalf("faulted store leaked: v=%d f=%v", v, f)
	}
	// Both windows are spent: accesses succeed again.
	if v, f := m.LoadWord(0x1000); f != nil || v != 42 {
		t.Fatalf("load after spent rule: v=%d f=%v", v, f)
	}
	if f := m.StoreWord(0x1004, 7); f != nil {
		t.Fatalf("store after spent rule: %v", f)
	}
}
