package mmu

import "testing"

// TestSnapshotRestoreRoundTrip: a snapshot must reproduce the exact memory
// image it captured, and stay valid for a second restore after further
// mutation.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := New(1 << 20)
	if err := m.Map(0x1000, 2*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 16; i++ {
		if f := m.StoreWord(0x1000+i*4, 0xA0+i); f != nil {
			t.Fatal(f)
		}
	}
	snap := m.SnapshotPages(nil)

	// Mutate: overwrite captured words and map a new region.
	for i := uint32(0); i < 16; i++ {
		if f := m.StoreWord(0x1000+i*4, 0xdead); f != nil {
			t.Fatal(f)
		}
	}
	if err := m.Map(0x9000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 2; round++ {
		m.Restore(snap)
		for i := uint32(0); i < 16; i++ {
			v, f := m.LoadWord(0x1000 + i*4)
			if f != nil {
				t.Fatal(f)
			}
			if v != 0xA0+i {
				t.Fatalf("round %d: word %d = %#x, want %#x", round, i, v, 0xA0+i)
			}
		}
		// The post-snapshot mapping must be gone.
		if _, f := m.LoadWord(0x9000); f == nil {
			t.Fatalf("round %d: page mapped after the snapshot survived restore", round)
		}
		// Mutate again so the second restore has work to undo.
		if f := m.StoreWord(0x1000, 0xbeef); f != nil {
			t.Fatal(f)
		}
	}
}

// TestSnapshotIncrementalSharing: a second snapshot with no intervening
// writes copies nothing; touching one page re-copies only its frame.
func TestSnapshotIncrementalSharing(t *testing.T) {
	m := New(1 << 20)
	if err := m.Map(0x1000, 4*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	for p := uint32(0); p < 4; p++ {
		if f := m.StoreWord(0x1000+p*PageSize, p); f != nil {
			t.Fatal(f)
		}
	}
	s1 := m.SnapshotPages(nil)
	if s1.Copied != 4 {
		t.Fatalf("first snapshot copied %d frames, want 4", s1.Copied)
	}
	s2 := m.SnapshotPages(s1)
	if s2.Copied != 0 {
		t.Fatalf("idle incremental snapshot copied %d frames, want 0", s2.Copied)
	}
	if f := m.StoreWord(0x1000+2*PageSize, 99); f != nil {
		t.Fatal(f)
	}
	s3 := m.SnapshotPages(s2)
	if s3.Copied != 1 {
		t.Fatalf("one dirty page, snapshot copied %d frames, want 1", s3.Copied)
	}
	// The shared (clean) frames must still restore the original contents.
	m.Restore(s3)
	for p := uint32(0); p < 4; p++ {
		want := p
		if p == 2 {
			want = 99
		}
		v, f := m.LoadWord(0x1000 + p*PageSize)
		if f != nil {
			t.Fatal(f)
		}
		if v != want {
			t.Fatalf("page %d word = %d, want %d", p, v, want)
		}
	}
}
