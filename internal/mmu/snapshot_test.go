package mmu

import (
	"testing"

	"atomemu/internal/faultinject"
)

// TestSnapshotRestoreRoundTrip: a snapshot must reproduce the exact memory
// image it captured, and stay valid for a second restore after further
// mutation.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := New(1 << 20)
	if err := m.Map(0x1000, 2*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 16; i++ {
		if f := m.StoreWord(0x1000+i*4, 0xA0+i); f != nil {
			t.Fatal(f)
		}
	}
	snap := m.SnapshotPages(nil)

	// Mutate: overwrite captured words and map a new region.
	for i := uint32(0); i < 16; i++ {
		if f := m.StoreWord(0x1000+i*4, 0xdead); f != nil {
			t.Fatal(f)
		}
	}
	if err := m.Map(0x9000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 2; round++ {
		m.Restore(snap)
		for i := uint32(0); i < 16; i++ {
			v, f := m.LoadWord(0x1000 + i*4)
			if f != nil {
				t.Fatal(f)
			}
			if v != 0xA0+i {
				t.Fatalf("round %d: word %d = %#x, want %#x", round, i, v, 0xA0+i)
			}
		}
		// The post-snapshot mapping must be gone.
		if _, f := m.LoadWord(0x9000); f == nil {
			t.Fatalf("round %d: page mapped after the snapshot survived restore", round)
		}
		// Mutate again so the second restore has work to undo.
		if f := m.StoreWord(0x1000, 0xbeef); f != nil {
			t.Fatal(f)
		}
	}
}

// TestSnapshotIncrementalSharing: a second snapshot with no intervening
// writes copies nothing; touching one page re-copies only its frame.
func TestSnapshotIncrementalSharing(t *testing.T) {
	m := New(1 << 20)
	if err := m.Map(0x1000, 4*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	for p := uint32(0); p < 4; p++ {
		if f := m.StoreWord(0x1000+p*PageSize, p); f != nil {
			t.Fatal(f)
		}
	}
	s1 := m.SnapshotPages(nil)
	if s1.Copied != 4 {
		t.Fatalf("first snapshot copied %d frames, want 4", s1.Copied)
	}
	s2 := m.SnapshotPages(s1)
	if s2.Copied != 0 {
		t.Fatalf("idle incremental snapshot copied %d frames, want 0", s2.Copied)
	}
	if f := m.StoreWord(0x1000+2*PageSize, 99); f != nil {
		t.Fatal(f)
	}
	s3 := m.SnapshotPages(s2)
	if s3.Copied != 1 {
		t.Fatalf("one dirty page, snapshot copied %d frames, want 1", s3.Copied)
	}
	// The shared (clean) frames must still restore the original contents.
	m.Restore(s3)
	for p := uint32(0); p < 4; p++ {
		want := p
		if p == 2 {
			want = 99
		}
		v, f := m.LoadWord(0x1000 + p*PageSize)
		if f != nil {
			t.Fatal(f)
		}
		if v != want {
			t.Fatalf("page %d word = %d, want %d", p, v, want)
		}
	}
}

// TestRestoreRejectsOversizedSnapshot: restoring a snapshot whose frames
// exceed physical capacity (a decoded spill from a machine with a larger
// MemBytes) must fail closed — non-nil fault, current state untouched.
func TestRestoreRejectsOversizedSnapshot(t *testing.T) {
	big := New(1 << 20)
	if err := big.Map(0x1000, 4*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	snap := big.SnapshotPages(nil)

	small := New(2 * PageSize)
	if err := small.Map(0x5000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if f := small.StoreWord(0x5000, 0x1234); f != nil {
		t.Fatal(f)
	}
	if f := small.Restore(snap); f == nil {
		t.Fatal("restoring a 4-frame snapshot into a 2-frame space must fault")
	}
	// Fail-closed: the rejected restore must not have wiped anything.
	v, f := small.LoadWord(0x5000)
	if f != nil || v != 0x1234 {
		t.Fatalf("pre-restore state destroyed by rejected restore: v=%#x f=%v", v, f)
	}
}

// TestRestoreRejectsDanglingFrameRef: a snapshot page pointing at a frame
// with no captured contents (a corrupt or hand-built spill) is rejected
// up front with the page's base address in the fault.
func TestRestoreRejectsDanglingFrameRef(t *testing.T) {
	m := New(1 << 20)
	snap := &Snapshot{
		Pages:  []PageSnap{{Base: 0x3000, Perm: PermRW, Frame: 7}},
		Frames: map[int32][]uint32{},
	}
	f := m.Restore(snap)
	if f == nil {
		t.Fatal("dangling frame reference must fault")
	}
	if f.Addr != 0x3000 {
		t.Fatalf("fault addr = %#x, want the dangling page base 0x3000", f.Addr)
	}
}

// TestRestoreInjectedFaultIsRetryable: a fault injected into the
// page-table rebuild leaves partial state, but retrying the same restore
// (the engine's recovery loop) completes and reproduces the image.
func TestRestoreInjectedFaultIsRetryable(t *testing.T) {
	m := New(1 << 20)
	m.SetInjector(faultinject.New(faultinject.Rule{
		Op: faultinject.OpMemStore, Action: faultinject.ActFault, Addr: 0x2000, Count: 1,
	}))
	if err := m.Map(0x2000, 2*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	// Store past the page base: the rule is scoped to the base address, so
	// it can only fire in Restore's page sweep, not on this guest store.
	if f := m.StoreWord(0x2004, 0xabcd); f != nil {
		t.Fatal(f)
	}
	snap := m.SnapshotPages(nil)
	f := m.Restore(snap)
	if f == nil {
		t.Fatal("first restore should take the injected rebuild fault")
	}
	if f.Addr != 0x2000 {
		t.Fatalf("fault addr = %#x, want the injected page base 0x2000", f.Addr)
	}
	if f2 := m.Restore(snap); f2 != nil {
		t.Fatalf("retry after the injected fault should succeed: %v", f2)
	}
	v, lf := m.LoadWord(0x2004)
	if lf != nil || v != 0xabcd {
		t.Fatalf("retried restore lost contents: v=%#x f=%v", v, lf)
	}
}
