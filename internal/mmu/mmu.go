// Package mmu implements the software MMU backing atomemu's guest address
// space — the analogue of QEMU's guest memory layer plus the pieces of the
// host kernel the paper's PST schemes lean on: per-page permissions with
// fault delivery (mprotect + SIGSEGV) and remapping of a physical frame at a
// different guest address (mremap).
//
// The fast path is lock-free: page-table entries are atomic words published
// after their frames, so concurrent guest loads/stores never take a lock.
// Structural changes (map, unmap, protect, remap) serialize on a mutex.
// Callers that need mprotect to be safe against in-flight accesses must
// provide their own stop-the-world, exactly as the paper's PST does via
// QEMU's start_exclusive.
package mmu

import (
	"fmt"
	"sync"
	"sync/atomic"

	"atomemu/internal/faultinject"
)

// Page geometry.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // bytes
	PageWords = PageSize / 4
	PageMask  = PageSize - 1
)

// Perm is a page-permission bit set.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
	// PermRW and PermRWX are the common combinations.
	PermRW  = PermRead | PermWrite
	PermRX  = PermRead | PermExec
	PermRWX = PermRead | PermWrite | PermExec
)

func (p Perm) String() string {
	buf := []byte("---")
	if p&PermRead != 0 {
		buf[0] = 'r'
	}
	if p&PermWrite != 0 {
		buf[1] = 'w'
	}
	if p&PermExec != 0 {
		buf[2] = 'x'
	}
	return string(buf)
}

// AccessKind describes the access that faulted.
type AccessKind uint8

// Access kinds.
const (
	AccessLoad AccessKind = iota
	AccessStore
	AccessFetch
)

func (a AccessKind) String() string {
	switch a {
	case AccessLoad:
		return "load"
	case AccessStore:
		return "store"
	case AccessFetch:
		return "fetch"
	}
	return "access?"
}

// FaultKind classifies a fault, mirroring the si_code values the paper's
// page-fault handler distinguishes (SEGV_MAPERR vs SEGV_ACCERR).
type FaultKind uint8

// Fault kinds.
const (
	FaultUnmapped  FaultKind = iota // MAPERR: no mapping at the address
	FaultProtected                  // ACCERR: mapping exists, permission denied
	FaultAlign                      // misaligned word access
)

func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "unmapped"
	case FaultProtected:
		return "protection"
	case FaultAlign:
		return "alignment"
	}
	return "fault?"
}

// Fault reports a failed guest memory access.
type Fault struct {
	Addr   uint32
	Kind   FaultKind
	Access AccessKind
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mmu: %s fault on %s at %#08x", f.Kind, f.Access, f.Addr)
}

// pte layout: bit 0 present, bits 1..3 perm, bit 4 dirty, bits 8.. frame
// index. The dirty bit is set on every store resolution and consumed (and
// cleared) by Snapshot, so incremental snapshots copy only frames written
// since the previous one.
const (
	ptePresent    = 1
	ptePermShift  = 1
	pteDirty      = 1 << 4
	pteFrameShift = 8
)

type leaf struct {
	ptes [1 << 10]atomic.Uint64
}

// Memory is a guest address space.
type Memory struct {
	mu        sync.Mutex // guards structural changes
	dir       [1 << 10]atomic.Pointer[leaf]
	frames    []*[PageWords]uint32 // fixed capacity, entries published before their pte
	nextFrame int
	freeList  []int32 // recycled frame indices
	inj       *faultinject.Injector
	// watch, when set, counts stores landing in one address range — the
	// engine's shared-translation guard over the guest image span. One
	// atomic pointer load per store resolution when unwatched.
	watch atomic.Pointer[StoreWatch]
}

// StoreWatch counts stores into [lo, hi) at page granularity. Counters are
// bumped with sequentially-consistent ordering BEFORE the watched word is
// written, so any reader that observes a mutated word is guaranteed to
// observe a non-zero count on its next RangeCount call — the property the
// engine's publication-time pristine check relies on (DESIGN.md §13).
// Per-page counts matter because guest images interleave code and data:
// a store to a data cell only taints its own page, not every translation
// from the image.
type StoreWatch struct {
	lo, hi uint32 // watched range, page-aligned
	total  atomic.Uint64
	pages  []atomic.Uint64 // one counter per watched page
}

// Count returns how many watched stores have been observed in total.
func (w *StoreWatch) Count() uint64 {
	if w == nil {
		return 0
	}
	return w.total.Load()
}

// Contains reports whether the non-empty range [lo, hi) lies inside the
// watched span.
func (w *StoreWatch) Contains(lo, hi uint32) bool {
	return w != nil && lo < hi && lo >= w.lo && hi <= w.hi
}

// RangeCount sums watched-store counts over the pages overlapping [lo, hi).
// Addresses outside the watched span contribute 0 — callers that need
// "unwatched means unknown" must gate on Contains first.
func (w *StoreWatch) RangeCount(lo, hi uint32) uint64 {
	if w == nil || hi <= w.lo || lo >= w.hi || lo >= hi {
		return 0
	}
	if lo < w.lo {
		lo = w.lo
	}
	if hi > w.hi {
		hi = w.hi
	}
	var n uint64
	for i := (lo - w.lo) >> PageShift; i <= (hi-1-w.lo)>>PageShift; i++ {
		n += w.pages[i].Load()
	}
	return n
}

// StoreCounts returns a copy of the per-page counts (nil receiver → nil).
func (w *StoreWatch) StoreCounts() []uint64 {
	if w == nil {
		return nil
	}
	out := make([]uint64, len(w.pages))
	for i := range w.pages {
		out[i] = w.pages[i].Load()
	}
	return out
}

// SeedStores pre-marks pages as already stored to, by per-page count
// (aligned from the watch base; extra entries are ignored). Used when the
// watched memory comes from a snapshot whose producer had already mutated
// parts of the span: the seeded pages stay "dirty" in the new watch.
func (w *StoreWatch) SeedStores(counts []uint64) {
	if w == nil {
		return
	}
	var total uint64
	for i, n := range counts {
		if i >= len(w.pages) {
			break
		}
		w.pages[i].Add(n)
		total += n
	}
	w.total.Add(total)
}

// WatchStores installs a store watch over [lo, hi) (rounded out to page
// boundaries) and returns it, replacing any previous watch. Install after
// any host-side seeding of the range (WriteWordPriv resolves as a store and
// would count).
func (m *Memory) WatchStores(lo, hi uint32) *StoreWatch {
	lo &^= uint32(PageMask)
	hi = (hi + PageSize - 1) &^ uint32(PageMask)
	if hi <= lo {
		hi = lo + PageSize
	}
	w := &StoreWatch{lo: lo, hi: hi, pages: make([]atomic.Uint64, (hi-lo)>>PageShift)}
	m.watch.Store(w)
	return w
}

// SetInjector installs a fault injector (nil to disable). Call before the
// memory is shared; the field is read without synchronization afterwards.
// The MMU has no vCPU identity, so injection rules for its sites must use
// TID 0 (any vCPU) and select by address instead.
func (m *Memory) SetInjector(inj *faultinject.Injector) { m.inj = inj }

// New creates an address space backed by at most maxBytes of physical
// memory (rounded up to whole pages).
func New(maxBytes uint32) *Memory {
	nframes := int((uint64(maxBytes) + PageSize - 1) / PageSize)
	if nframes < 1 {
		nframes = 1
	}
	return &Memory{frames: make([]*[PageWords]uint32, nframes)}
}

func (m *Memory) leafFor(addr uint32, create bool) *leaf {
	idx := addr >> 22
	l := m.dir[idx].Load()
	if l == nil && create {
		// Caller holds m.mu; publish once.
		l = new(leaf)
		m.dir[idx].Store(l)
	}
	return l
}

func (m *Memory) pte(addr uint32) uint64 {
	l := m.dir[addr>>22].Load()
	if l == nil {
		return 0
	}
	return l.ptes[addr>>PageShift&0x3ff].Load()
}

func (m *Memory) setPTE(addr uint32, v uint64) {
	m.leafFor(addr, true).ptes[addr>>PageShift&0x3ff].Store(v)
}

// makePTE builds a present entry with the dirty bit set: every structural
// change (Map, Protect, Alias, Remap) conservatively marks the page dirty
// so the next incremental snapshot re-copies its frame. Without this a
// recycled frame index could alias a stale copy in the previous snapshot.
func makePTE(frame int32, perm Perm) uint64 {
	return uint64(frame)<<pteFrameShift | uint64(perm)<<ptePermShift | pteDirty | ptePresent
}

func pteFrame(p uint64) int32 { return int32(p >> pteFrameShift) }
func ptePerm(p uint64) Perm   { return Perm(p >> ptePermShift & 0x7) }

// allocFrame returns a zeroed frame index. Caller holds m.mu.
func (m *Memory) allocFrame() (int32, error) {
	if n := len(m.freeList); n > 0 {
		f := m.freeList[n-1]
		m.freeList = m.freeList[:n-1]
		*m.frames[f] = [PageWords]uint32{}
		return f, nil
	}
	if m.nextFrame >= len(m.frames) {
		return 0, fmt.Errorf("mmu: out of physical memory (%d frames)", len(m.frames))
	}
	f := int32(m.nextFrame)
	m.frames[f] = new([PageWords]uint32)
	m.nextFrame++
	return f, nil
}

func pageAligned(addr uint32) bool { return addr&PageMask == 0 }

// Map allocates zeroed pages covering [addr, addr+size) with the given
// permissions. addr must be page-aligned; size is rounded up to pages.
// Mapping over an existing mapping is an error.
func (m *Memory) Map(addr, size uint32, perm Perm) error {
	if !pageAligned(addr) {
		return fmt.Errorf("mmu: Map addr %#x not page-aligned", addr)
	}
	if size == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	npages := (uint64(size) + PageSize - 1) / PageSize
	for i := uint64(0); i < npages; i++ {
		a := addr + uint32(i)*PageSize
		if m.pte(a)&ptePresent != 0 {
			return fmt.Errorf("mmu: Map: page %#x already mapped", a)
		}
	}
	for i := uint64(0); i < npages; i++ {
		a := addr + uint32(i)*PageSize
		f, err := m.allocFrame()
		if err != nil {
			return err
		}
		m.setPTE(a, makePTE(f, perm))
	}
	return nil
}

// Unmap removes the mappings covering [addr, addr+size). Frames whose last
// mapping disappears are recycled; aliased frames (Alias, Remap) survive
// until their final mapping goes.
func (m *Memory) Unmap(addr, size uint32) error {
	if !pageAligned(addr) {
		return fmt.Errorf("mmu: Unmap addr %#x not page-aligned", addr)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	npages := (uint64(size) + PageSize - 1) / PageSize
	for i := uint64(0); i < npages; i++ {
		a := addr + uint32(i)*PageSize
		p := m.pte(a)
		if p&ptePresent == 0 {
			return fmt.Errorf("mmu: Unmap: page %#x not mapped", a)
		}
		m.setPTE(a, 0)
		f := pteFrame(p)
		if !m.frameReferenced(f) {
			m.freeList = append(m.freeList, f)
		}
	}
	return nil
}

// frameReferenced reports whether any pte still points at frame f.
// Caller holds m.mu. Linear in mapped pages; only used on Unmap.
func (m *Memory) frameReferenced(f int32) bool {
	for di := range m.dir {
		l := m.dir[di].Load()
		if l == nil {
			continue
		}
		for pi := range l.ptes {
			p := l.ptes[pi].Load()
			if p&ptePresent != 0 && pteFrame(p) == f {
				return true
			}
		}
	}
	return false
}

// Protect changes the permissions of the pages covering [addr, addr+size).
// This is the mprotect analogue; the caller is responsible for any
// stop-the-world needed for it to be race-free against running vCPUs.
func (m *Memory) Protect(addr, size uint32, perm Perm) error {
	if !pageAligned(addr) {
		return fmt.Errorf("mmu: Protect addr %#x not page-aligned", addr)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	npages := (uint64(size) + PageSize - 1) / PageSize
	for i := uint64(0); i < npages; i++ {
		a := addr + uint32(i)*PageSize
		p := m.pte(a)
		if p&ptePresent == 0 {
			return fmt.Errorf("mmu: Protect: page %#x not mapped", a)
		}
		m.setPTE(a, makePTE(pteFrame(p), perm))
	}
	return nil
}

// PermAt returns the permissions of the page containing addr, or 0 if the
// page is unmapped.
func (m *Memory) PermAt(addr uint32) Perm {
	p := m.pte(addr)
	if p&ptePresent == 0 {
		return 0
	}
	return ptePerm(p)
}

// Alias maps the page at dst to the same physical frame as the page at src,
// with the given permissions. dst must be unmapped. This is the
// one-frame-two-addresses building block of the paper's PST-REMAP.
func (m *Memory) Alias(dst, src uint32, perm Perm) error {
	if !pageAligned(dst) || !pageAligned(src) {
		return fmt.Errorf("mmu: Alias addresses must be page-aligned (%#x, %#x)", dst, src)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	sp := m.pte(src)
	if sp&ptePresent == 0 {
		return fmt.Errorf("mmu: Alias: source page %#x not mapped", src)
	}
	if m.pte(dst)&ptePresent != 0 {
		return fmt.Errorf("mmu: Alias: destination page %#x already mapped", dst)
	}
	m.setPTE(dst, makePTE(pteFrame(sp), perm))
	return nil
}

// Remap atomically moves the page mapping at old to new (same frame, new
// permissions), leaving old unmapped — the paper's sys_mremap step. Accesses
// to old afterwards fault with FaultUnmapped (MAPERR).
func (m *Memory) Remap(old, new uint32, perm Perm) error {
	if !pageAligned(old) || !pageAligned(new) {
		return fmt.Errorf("mmu: Remap addresses must be page-aligned (%#x, %#x)", old, new)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	op := m.pte(old)
	if op&ptePresent == 0 {
		return fmt.Errorf("mmu: Remap: page %#x not mapped", old)
	}
	if m.pte(new)&ptePresent != 0 {
		return fmt.Errorf("mmu: Remap: destination page %#x already mapped", new)
	}
	// Publish the new mapping before retiring the old one so no window
	// exists where the frame is unreachable by its owner.
	m.setPTE(new, makePTE(pteFrame(op), perm))
	m.setPTE(old, 0)
	return nil
}

// resolve returns the frame and word index for a word access.
func (m *Memory) resolve(addr uint32, need Perm, access AccessKind) (*[PageWords]uint32, uint32, *Fault) {
	if addr&3 != 0 {
		return nil, 0, &Fault{Addr: addr, Kind: FaultAlign, Access: access}
	}
	p := m.pte(addr)
	if p&ptePresent == 0 {
		return nil, 0, &Fault{Addr: addr, Kind: FaultUnmapped, Access: access}
	}
	if ptePerm(p)&need != need {
		return nil, 0, &Fault{Addr: addr, Kind: FaultProtected, Access: access}
	}
	if access == AccessStore {
		if w := m.watch.Load(); w != nil && addr >= w.lo && addr < w.hi {
			w.total.Add(1)
			w.pages[(addr-w.lo)>>PageShift].Add(1)
		}
		if p&pteDirty == 0 {
			// Lock-free dirty marking: the Or races only with identical Ors
			// and with structural changes, which rewrite the pte wholesale
			// (and themselves set dirty), so no update is lost.
			if l := m.dir[addr>>22].Load(); l != nil {
				l.ptes[addr>>PageShift&0x3ff].Or(pteDirty)
			}
		}
	}
	return m.frames[pteFrame(p)], addr & PageMask / 4, nil
}

// LoadWord performs a guest word load with permission checking. All word
// accesses are host-atomic, modelling a coherent memory system.
func (m *Memory) LoadWord(addr uint32) (uint32, *Fault) {
	if m.inj.Check(faultinject.OpMemLoad, 0, addr) == faultinject.ActFault {
		return 0, &Fault{Addr: addr, Kind: FaultProtected, Access: AccessLoad}
	}
	fr, wi, f := m.resolve(addr, PermRead, AccessLoad)
	if f != nil {
		return 0, f
	}
	return atomic.LoadUint32(&fr[wi]), nil
}

// StoreWord performs a guest word store with permission checking.
func (m *Memory) StoreWord(addr, val uint32) *Fault {
	if m.inj.Check(faultinject.OpMemStore, 0, addr) == faultinject.ActFault {
		return &Fault{Addr: addr, Kind: FaultProtected, Access: AccessStore}
	}
	fr, wi, f := m.resolve(addr, PermWrite, AccessStore)
	if f != nil {
		return f
	}
	atomic.StoreUint32(&fr[wi], val)
	return nil
}

// CASWord is the host compare-and-swap primitive (the x86 cmpxchg the
// paper's schemes translate SC into). It checks write permission.
func (m *Memory) CASWord(addr, old, new uint32) (bool, *Fault) {
	fr, wi, f := m.resolve(addr, PermRW, AccessStore)
	if f != nil {
		return false, f
	}
	return atomic.CompareAndSwapUint32(&fr[wi], old, new), nil
}

// LoadByte performs a guest byte load.
func (m *Memory) LoadByte(addr uint32) (uint8, *Fault) {
	fr, wi, f := m.resolve(addr&^3, PermRead, AccessLoad)
	if f != nil {
		f.Addr = addr
		return 0, f
	}
	w := atomic.LoadUint32(&fr[wi])
	return uint8(w >> (8 * (addr & 3))), nil
}

// StoreByte performs a guest byte store. The containing word is updated with
// a CAS loop so concurrent byte stores to different lanes do not lose
// updates, but no cross-word atomicity is implied (a regular store, not SC).
func (m *Memory) StoreByte(addr uint32, val uint8) *Fault {
	fr, wi, f := m.resolve(addr&^3, PermWrite, AccessStore)
	if f != nil {
		f.Addr = addr
		return f
	}
	shift := 8 * (addr & 3)
	for {
		old := atomic.LoadUint32(&fr[wi])
		new := old&^(0xff<<shift) | uint32(val)<<shift
		if atomic.CompareAndSwapUint32(&fr[wi], old, new) {
			return nil
		}
	}
}

// FetchWord reads an instruction word, checking execute permission.
func (m *Memory) FetchWord(addr uint32) (uint32, *Fault) {
	fr, wi, f := m.resolve(addr, PermExec, AccessFetch)
	if f != nil {
		return 0, f
	}
	return atomic.LoadUint32(&fr[wi]), nil
}

// ReadWordPriv reads a word ignoring permissions (engine/debugger use).
func (m *Memory) ReadWordPriv(addr uint32) (uint32, *Fault) {
	fr, wi, f := m.resolve(addr, 0, AccessLoad)
	if f != nil {
		return 0, f
	}
	return atomic.LoadUint32(&fr[wi]), nil
}

// WriteWordPriv writes a word ignoring permissions (loader/scheme use, e.g.
// the SC commit under PST while the page is read-only to everyone else).
func (m *Memory) WriteWordPriv(addr, val uint32) *Fault {
	fr, wi, f := m.resolve(addr, 0, AccessStore)
	if f != nil {
		return f
	}
	atomic.StoreUint32(&fr[wi], val)
	return nil
}

// CASWordPriv is CASWord without the permission check, for schemes that
// commit an SC while the page is deliberately protected.
func (m *Memory) CASWordPriv(addr, old, new uint32) (bool, *Fault) {
	fr, wi, f := m.resolve(addr, 0, AccessStore)
	if f != nil {
		return false, f
	}
	return atomic.CompareAndSwapUint32(&fr[wi], old, new), nil
}

// PageBase returns the base address of the page containing addr.
func PageBase(addr uint32) uint32 { return addr &^ PageMask }

// PageSnap records one mapped guest page: base address, permissions and
// backing frame index. Aliased pages (Alias, Remap) share a frame index,
// so alias structure survives a snapshot/restore round trip.
type PageSnap struct {
	Base  uint32
	Perm  Perm
	Frame int32
}

// Snapshot is a consistent copy of the address space: every mapped page
// plus the contents of every referenced frame. Frame slices are immutable
// once captured; incremental snapshots share them with their predecessor
// when the frame was not written in between.
type Snapshot struct {
	Pages  []PageSnap
	Frames map[int32][]uint32
	// Copied counts frames copied fresh in this snapshot (as opposed to
	// shared with prev) — observability for the incremental path.
	Copied int
}

// SnapshotPages captures the address space. prev, when non-nil, is the
// previous snapshot: frames whose pages carry no dirty bit are shared with
// it instead of re-copied. All dirty bits are cleared. The caller must
// guarantee quiescence (no concurrent guest stores); the engine takes
// snapshots inside its exclusive section.
func (m *Memory) SnapshotPages(prev *Snapshot) *Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &Snapshot{Frames: make(map[int32][]uint32)}
	dirtyFrames := make(map[int32]bool)
	for di := range m.dir {
		l := m.dir[di].Load()
		if l == nil {
			continue
		}
		for pi := range l.ptes {
			p := l.ptes[pi].Load()
			if p&ptePresent == 0 {
				continue
			}
			base := uint32(di)<<22 | uint32(pi)<<PageShift
			f := pteFrame(p)
			s.Pages = append(s.Pages, PageSnap{Base: base, Perm: ptePerm(p), Frame: f})
			if p&pteDirty != 0 {
				dirtyFrames[f] = true
				l.ptes[pi].And(^uint64(pteDirty))
			} else if _, seen := dirtyFrames[f]; !seen {
				dirtyFrames[f] = false
			}
		}
	}
	for f, dirty := range dirtyFrames {
		if !dirty && prev != nil {
			if words, ok := prev.Frames[f]; ok {
				s.Frames[f] = words
				continue
			}
		}
		words := make([]uint32, PageWords)
		copy(words, m.frames[f][:])
		s.Frames[f] = words
		s.Copied++
	}
	return s
}

// Restore rebuilds the address space from a snapshot: the page table is
// replaced wholesale and every referenced frame's contents are copied back
// in. Frames allocated after the snapshot are recycled. The snapshot
// itself is not consumed and stays valid for further restores. Like
// SnapshotPages, this requires quiescence.
//
// A non-nil return means the restore did not complete: either the snapshot
// does not fit this address space (a decoded spill from a machine with a
// larger MemBytes — validated up front, before any state is touched), or a
// fault was injected mid-rebuild (OpMemStore rules match each restored
// page's base address). After an injected mid-rebuild fault the address
// space is partial; the caller retries the restore or abandons the machine.
func (m *Memory) Restore(s *Snapshot) *Fault {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Fail-closed validation before the wipe: a snapshot referencing frames
	// beyond physical capacity (or pages with no frame contents) must not
	// destroy the current state, and must not panic the frame-array index.
	for f := range s.Frames {
		if f < 0 || int(f) >= len(m.frames) {
			return &Fault{Addr: 0, Kind: FaultUnmapped, Access: AccessStore}
		}
	}
	for _, pg := range s.Pages {
		if _, ok := s.Frames[pg.Frame]; !ok {
			return &Fault{Addr: pg.Base, Kind: FaultUnmapped, Access: AccessStore}
		}
	}
	for i := range m.dir {
		m.dir[i].Store(nil)
	}
	used := make(map[int32]bool, len(s.Frames))
	for f, words := range s.Frames {
		if m.frames[f] == nil {
			m.frames[f] = new([PageWords]uint32)
			if int(f) >= m.nextFrame {
				m.nextFrame = int(f) + 1
			}
		}
		copy(m.frames[f][:], words)
		used[f] = true
	}
	m.freeList = m.freeList[:0]
	for f := 0; f < m.nextFrame; f++ {
		if m.frames[f] != nil && !used[int32(f)] {
			m.freeList = append(m.freeList, int32(f))
		}
	}
	// makePTE marks every restored page dirty, so the next incremental
	// snapshot re-copies all frames rather than trusting pre-rollback
	// sharing.
	for _, pg := range s.Pages {
		if m.inj.Check(faultinject.OpMemStore, 0, pg.Base) == faultinject.ActFault {
			return &Fault{Addr: pg.Base, Kind: FaultProtected, Access: AccessStore}
		}
		m.setPTE(pg.Base, makePTE(pg.Frame, pg.Perm))
	}
	return nil
}
