// Package durable is atomemud's crash-safety substrate: a write-ahead job
// journal plus helpers for spilling checkpoint snapshots to disk. The
// design center is the same as the engine's resilience stack, one layer
// down — a SIGKILL, OOM-kill or deploy restart must never lose accepted
// work, and a corrupt byte on disk must never keep the daemon from
// starting.
//
// The journal is a sequence of segment files ("journal-NNNNNN.waj"), each
// holding length-prefixed CRC32C-framed records:
//
//	+----------+----------+-------------------+
//	| len u32  | crc u32  | payload (JSON)    |
//	| little-  | CRC32C   | len bytes         |
//	| endian   | (payload)|                   |
//	+----------+----------+-------------------+
//
// Replay is deliberately forgiving, in two distinct modes:
//
//   - Torn tail (short header, short payload, or an implausible length —
//     framing itself is lost): the rest of the segment is ignored, exactly
//     what a crash mid-append produces. Counted in Truncated/TruncatedBytes.
//   - Corrupt record (full frame present but CRC or JSON fails — framing
//     is intact, the payload is damaged): that one record is skipped and
//     counted in CorruptRecords; scanning continues at the next frame.
//
// Neither mode is an error: a journal replay never refuses to start the
// daemon. Real I/O failures (unreadable directory) still surface.
//
// Compaction: segments rotate at a size threshold, and rotation (or an
// explicit CompactNow) asks the owner for the live record set via the
// compact source callback, writes it as the head of a fresh segment, and
// deletes every older segment — so terminal jobs' history is dropped and
// the journal's size tracks the live set, not daemon lifetime.
package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Record is one journal entry. Type tags which fields are meaningful:
//
//	submitted    Job, Key (optional), Request (original wire JSON)
//	started      Job, Resumes (restart-resume budget consumed so far)
//	checkpointed Job, VirtualTime (a durable snapshot exists on disk)
//	finished     Job, Status (final JobStatus wire JSON)
//	shed         Key (a keyed submission was shed at admission)
//	dispatched   Job, Worker, WorkerJob, Resumes (a router handed the job
//	             to a worker; the router journal's analogue of "started")
type Record struct {
	Type        string          `json:"type"`
	Job         string          `json:"job,omitempty"`
	Key         string          `json:"key,omitempty"`
	UnixMS      int64           `json:"unix_ms,omitempty"`
	Request     json.RawMessage `json:"request,omitempty"`
	Status      json.RawMessage `json:"status,omitempty"`
	VirtualTime uint64          `json:"virtual_time,omitempty"`
	Resumes     int             `json:"resumes,omitempty"`
	// Worker and WorkerJob are set on router dispatch records: the worker
	// base URL the job went to and the job id it answers to there.
	Worker    string `json:"worker,omitempty"`
	WorkerJob string `json:"worker_job,omitempty"`
}

// Record types.
const (
	TypeSubmitted    = "submitted"
	TypeStarted      = "started"
	TypeCheckpointed = "checkpointed"
	TypeFinished     = "finished"
	TypeShed         = "shed"
	TypeDispatched   = "dispatched"
)

// SyncPolicy selects when appends reach the platters.
type SyncPolicy int

// Sync policies. SyncAlways fsyncs after every append — survives power
// loss, slowest. SyncBatch fsyncs every batchEvery appends and at rotation
// and close — bounds loss to a short suffix. SyncNever leaves flushing to
// the OS — still survives SIGKILL (the data is in the page cache), not
// power loss.
const (
	SyncAlways SyncPolicy = iota
	SyncBatch
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "batch", "":
		return SyncBatch, nil
	case "never":
		return SyncNever, nil
	}
	return SyncBatch, fmt.Errorf("durable: unknown fsync policy %q (always, batch, never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	}
	return "batch"
}

const (
	frameHeader = 8        // len + crc
	maxFrame    = 16 << 20 // sanity bound on one record
	batchEvery  = 16
	segPrefix   = "journal-"
	segSuffix   = ".waj"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Journal.
type Options struct {
	// Dir is the journal directory (created if missing).
	Dir string
	// Sync selects the fsync policy.
	Sync SyncPolicy
	// SegmentBytes is the rotation threshold (default 4 MiB).
	SegmentBytes int64
	// CompactSource, when set, returns the records that must survive a
	// compaction: rotation writes them as the head of the fresh segment and
	// deletes every older one. Without it, rotation just starts a new
	// segment and history accumulates.
	CompactSource func() []Record
}

// Stats are the journal's lifetime counters (this process only; replay
// stats describe what Open found on disk).
type Stats struct {
	Appends      uint64 `json:"appends"`
	Fsyncs       uint64 `json:"fsyncs"`
	Rotations    uint64 `json:"rotations"`
	Compactions  uint64 `json:"compactions"`
	BytesWritten uint64 `json:"bytes_written"`
	Segments     int    `json:"segments"`
}

// ReplayStats describe what a replay found.
type ReplayStats struct {
	Records        int   `json:"records"`
	CorruptRecords int   `json:"corrupt_records"`
	Truncated      int   `json:"truncated_tails"`
	TruncatedBytes int64 `json:"truncated_bytes"`
	Segments       int   `json:"segments"`
}

// Journal is an append-only record log. Safe for concurrent use.
type Journal struct {
	opts Options

	mu       sync.Mutex
	f        *os.File
	seq      int // active segment sequence number
	size     int64
	unsynced int
	closed   bool

	appends, fsyncs, rotations, compactions, bytes uint64
	segments                                       int
}

// Open creates or opens the journal in opts.Dir and starts a fresh segment
// numbered after any existing ones (existing segments are never appended
// to, so a torn tail from a previous crash can never be written after).
// Replay existing history first with Replay; Open does not read it.
func Open(opts Options) (*Journal, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("durable: journal directory is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if n := len(segs); n > 0 {
		next = segs[n-1].seq + 1
	}
	j := &Journal{opts: opts, seq: next, segments: len(segs) + 1}
	if err := j.openSegment(next); err != nil {
		return nil, err
	}
	return j, nil
}

func segName(seq int) string { return fmt.Sprintf("%s%06d%s", segPrefix, seq, segSuffix) }

func (j *Journal) openSegment(seq int) error {
	f, err := os.OpenFile(filepath.Join(j.opts.Dir, segName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f, j.seq, j.size = f, seq, 0
	return nil
}

// Append journals one record under the configured sync policy.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("durable: journal closed")
	}
	if _, err := j.f.Write(frame); err != nil {
		return err
	}
	j.appends++
	j.bytes += uint64(len(frame))
	j.size += int64(len(frame))
	j.unsynced++
	switch j.opts.Sync {
	case SyncAlways:
		if err := j.fsyncLocked(); err != nil {
			return err
		}
	case SyncBatch:
		if j.unsynced >= batchEvery {
			if err := j.fsyncLocked(); err != nil {
				return err
			}
		}
	}
	if j.size >= j.opts.SegmentBytes {
		return j.rotateLocked()
	}
	return nil
}

func (j *Journal) fsyncLocked() error {
	if j.unsynced == 0 {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.fsyncs++
	j.unsynced = 0
	return nil
}

// Sync forces an fsync of the active segment.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.fsyncLocked()
}

// CompactNow rotates to a fresh segment seeded with the compact source's
// live records and deletes all older segments. A no-op without a source.
func (j *Journal) CompactNow() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.opts.CompactSource == nil {
		return nil
	}
	return j.rotateLocked()
}

// rotateLocked seals the active segment and opens the next. With a compact
// source, the new segment starts with the live record set and every older
// segment is removed.
func (j *Journal) rotateLocked() error {
	if err := j.fsyncLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	old := j.seq
	if err := j.openSegment(old + 1); err != nil {
		return err
	}
	j.rotations++
	j.segments++
	if j.opts.CompactSource == nil {
		return nil
	}
	for _, rec := range j.opts.CompactSource() {
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		frame := make([]byte, frameHeader+len(payload))
		binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
		copy(frame[frameHeader:], payload)
		if _, err := j.f.Write(frame); err != nil {
			return err
		}
		j.bytes += uint64(len(frame))
		j.size += int64(len(frame))
		j.unsynced++
	}
	if err := j.fsyncLocked(); err != nil {
		return err
	}
	// Live set durably in the new segment: history can go.
	segs, err := listSegments(j.opts.Dir)
	if err != nil {
		return err
	}
	removed := 0
	for _, s := range segs {
		if s.seq < j.seq {
			if err := os.Remove(filepath.Join(j.opts.Dir, s.name)); err != nil {
				return err
			}
			removed++
		}
	}
	j.segments -= removed
	j.compactions++
	return nil
}

// Close fsyncs and closes the active segment.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.fsyncLocked(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// Stats returns the journal's lifetime counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Appends:      j.appends,
		Fsyncs:       j.fsyncs,
		Rotations:    j.rotations,
		Compactions:  j.compactions,
		BytesWritten: j.bytes,
		Segments:     j.segments,
	}
}

type segment struct {
	name string
	seq  int
}

func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), "%d", &seq); err != nil {
			continue
		}
		segs = append(segs, segment{name: name, seq: seq})
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i].seq < segs[k].seq })
	return segs, nil
}

// Replay reads every journal segment in dir in order and returns the
// surviving records. Torn tails and corrupt records are tolerated per the
// package policy and reported in the stats; a missing directory replays
// empty. Only real I/O failures return an error.
func Replay(dir string) ([]Record, ReplayStats, error) {
	var st ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		return nil, st, err
	}
	st.Segments = len(segs)
	var out []Record
	for _, s := range segs {
		data, err := os.ReadFile(filepath.Join(dir, s.name))
		if err != nil {
			return nil, st, err
		}
		recs := replaySegment(data, &st)
		out = append(out, recs...)
	}
	st.Records = len(out)
	return out, st, nil
}

// ReplayBytes scans one segment image (fuzzing and tests).
func ReplayBytes(data []byte) ([]Record, ReplayStats) {
	var st ReplayStats
	st.Segments = 1
	out := replaySegment(data, &st)
	st.Records = len(out)
	return out, st
}

func replaySegment(data []byte, st *ReplayStats) []Record {
	var out []Record
	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < frameHeader {
			// Torn header: a crash mid-append. Ignore the tail.
			st.Truncated++
			st.TruncatedBytes += int64(rest)
			return out
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxFrame {
			// Framing itself is gone: nothing after this point can be
			// trusted to start on a frame boundary. Truncate here.
			st.Truncated++
			st.TruncatedBytes += int64(rest)
			return out
		}
		if rest-frameHeader < n {
			// Torn payload.
			st.Truncated++
			st.TruncatedBytes += int64(rest)
			return out
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		off += frameHeader + n
		if crc32.Checksum(payload, crcTable) != want {
			// Framing intact, payload damaged: skip just this record.
			st.CorruptRecords++
			continue
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			st.CorruptRecords++
			continue
		}
		out = append(out, rec)
	}
	return out
}
