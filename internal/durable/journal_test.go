package durable

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func testRecords(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, Record{
			Type:    TypeSubmitted,
			Job:     fmt.Sprintf("job-%d", i+1),
			Key:     fmt.Sprintf("key-%d", i+1),
			UnixMS:  int64(1000 + i),
			Request: json.RawMessage(fmt.Sprintf(`{"gac":"prog-%d"}`, i)),
		})
	}
	return recs
}

func writeJournal(t *testing.T, dir string, recs []Record) {
	t.Helper()
	j, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("expected one segment, got %v (err %v)", segs, err)
	}
	return filepath.Join(dir, segs[0].name)
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testRecords(5)
	writeJournal(t, dir, want)
	got, st, err := Replay(dir)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.CorruptRecords != 0 || st.Truncated != 0 {
		t.Fatalf("clean journal reported damage: %+v", st)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Job != want[i].Job || got[i].Key != want[i].Key || got[i].Type != want[i].Type {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestReplayMissingDirIsEmpty(t *testing.T) {
	recs, st, err := Replay(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(recs) != 0 || st.Segments != 0 {
		t.Fatalf("missing dir: recs=%v st=%+v err=%v", recs, st, err)
	}
}

// validSet indexes the canonical payload bytes of every record ever
// appended, so a replay result can be checked for resurrected garbage.
func validSet(recs []Record) map[string]bool {
	set := make(map[string]bool, len(recs))
	for _, r := range recs {
		b, _ := json.Marshal(r)
		set[string(b)] = true
	}
	return set
}

func assertNoResurrection(t *testing.T, got []Record, valid map[string]bool, what string) {
	t.Helper()
	for _, r := range got {
		b, _ := json.Marshal(r)
		if !valid[string(b)] {
			t.Fatalf("%s: replay resurrected a record that was never appended: %s", what, b)
		}
	}
}

// TestJournalTornWriteTolerance is the satellite regression: truncating the
// journal at every possible offset, and flipping every single byte, must
// never error the replay and must never produce a record that was not
// appended. Torn tails truncate; corrupt-but-framed records are skipped and
// counted.
func TestJournalTornWriteTolerance(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(4)
	writeJournal(t, dir, recs)
	data, err := os.ReadFile(onlySegment(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	valid := validSet(recs)

	for cut := 0; cut <= len(data); cut++ {
		got, st := ReplayBytes(data[:cut])
		assertNoResurrection(t, got, valid, fmt.Sprintf("truncate@%d", cut))
		if cut < len(data) && len(got)+st.CorruptRecords+st.Truncated == 0 && cut > 0 {
			t.Fatalf("truncate@%d: damage went uncounted", cut)
		}
		if cut == len(data) && len(got) != len(recs) {
			t.Fatalf("full image replayed %d records, want %d", len(got), len(recs))
		}
	}

	for off := 0; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x5a
		got, st := ReplayBytes(mut)
		assertNoResurrection(t, got, valid, fmt.Sprintf("flip@%d", off))
		if len(got) == len(recs) && st.CorruptRecords == 0 && st.Truncated == 0 {
			// A flip that leaves everything intact would mean the CRC or the
			// framing failed to notice damage.
			t.Fatalf("flip@%d: replay saw no damage (%d records)", off, len(got))
		}
		// A corrupt record must cost at most itself: framing-intact damage
		// never takes the rest of the log with it.
		if st.Truncated == 0 && len(got) < len(recs)-1 {
			t.Fatalf("flip@%d: lost %d records to one corrupt frame", off, len(recs)-len(got))
		}
	}
}

func TestJournalCorruptMiddleRecordIsSkipped(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(3)
	writeJournal(t, dir, recs)
	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte of the second frame (header intact).
	n0 := int(binary.LittleEndian.Uint32(data))
	off := frameHeader + n0 + frameHeader // first payload byte of frame 2
	data[off] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, st, err := Replay(dir)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.CorruptRecords != 1 {
		t.Fatalf("corrupt records = %d, want 1 (%+v)", st.CorruptRecords, st)
	}
	if len(got) != 2 || got[0].Job != "job-1" || got[1].Job != "job-3" {
		t.Fatalf("surviving records wrong: %+v", got)
	}
}

func TestJournalRotationCompactsHistory(t *testing.T) {
	dir := t.TempDir()
	live := []Record{{Type: TypeSubmitted, Job: "job-live", Request: json.RawMessage(`{}`)}}
	j, err := Open(Options{
		Dir:           dir,
		Sync:          SyncNever,
		SegmentBytes:  256,
		CompactSource: func() []Record { return live },
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 64; i++ {
		if err := j.Append(Record{Type: TypeFinished, Job: fmt.Sprintf("job-%d", i), Status: json.RawMessage(`{"state":"done"}`)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compactions after %d appends over a 256-byte threshold: %+v", 64, st)
	}
	if st.Segments != 1 {
		t.Fatalf("compaction left %d segments, want 1", st.Segments)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The surviving log must start from the live set, not full history.
	if len(recs) == 0 || recs[0].Job != "job-live" {
		t.Fatalf("replay after compaction did not start from the live set: %+v", recs)
	}
	if len(recs) == 65 {
		t.Fatalf("compaction kept full history (%d records)", len(recs))
	}
}

func TestJournalOpenNumbersPastExistingSegments(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, testRecords(2))
	j, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.seq != 2 {
		t.Fatalf("second Open chose segment %d, want 2", j.seq)
	}
	if err := j.Append(Record{Type: TypeStarted, Job: "job-1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 2 || len(recs) != 3 {
		t.Fatalf("cross-restart replay: %d segments, %d records (%+v)", st.Segments, len(recs), st)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "batch": SyncBatch, "": SyncBatch, "never": SyncNever, "NEVER": SyncNever} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

// FuzzJournalReplay asserts the replay's core contract on arbitrary bytes:
// it never panics, and every record it returns round-trips through the
// framing (a frame with a valid CRC whose payload parses as JSON).
func FuzzJournalReplay(f *testing.F) {
	dir := f.TempDir()
	j, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range testRecords(3) {
		if err := j.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	segs, _ := listSegments(dir)
	var seed []byte
	if len(segs) == 1 {
		seed, _ = os.ReadFile(filepath.Join(dir, segs[0].name))
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:len(seed)/2])
	flipped := append([]byte(nil), seed...)
	if len(flipped) > 10 {
		flipped[10] ^= 0xff
	}
	f.Add(flipped)
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add([]byte{0x04, 0x00, 0x00, 0x00, 0, 0, 0, 0, 'n', 'u', 'l', 'l'})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, st := ReplayBytes(data)
		if len(recs) > 0 && st.Records != len(recs) {
			t.Fatalf("stats records %d != %d", st.Records, len(recs))
		}
		// Re-frame what survived; it must replay back identically (the
		// surviving set is self-consistent, nothing half-parsed leaks out).
		var buf bytes.Buffer
		for _, r := range recs {
			payload, err := json.Marshal(r)
			if err != nil {
				t.Fatalf("surviving record does not marshal: %v", err)
			}
			var hdr [frameHeader]byte
			binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
			binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
			buf.Write(hdr[:])
			buf.Write(payload)
		}
		again, st2 := ReplayBytes(buf.Bytes())
		if len(again) != len(recs) || st2.CorruptRecords != 0 || st2.Truncated != 0 {
			t.Fatalf("re-framed survivors did not replay cleanly: %d vs %d (%+v)", len(again), len(recs), st2)
		}
	})
}
