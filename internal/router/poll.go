package router

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"atomemu/internal/durable"
	"atomemu/internal/server"
)

// dispatchResp is the decoded outcome of one dispatch POST.
type dispatchResp struct {
	code    int
	id      string // worker-side job id on 202
	resumed bool   // worker adopted the shipped snapshot
	errMsg  string // body text on non-202
}

// postDispatch performs the worker hand-off: POST /jobs with the original
// wire request, or POST /jobs/{routerID}/resume shipping the cached ACKP
// image when this is a checkpoint-carrying failover re-dispatch. The
// router id names the resume so the worker's synthetic idempotency key
// ("resume:<routerID>") stays stable across re-ships.
func (r *Router) postDispatch(url, routerID string, raw []byte, req server.JobRequest, useCkpt bool, ckpt []byte, resumes int) (*dispatchResp, error) {
	var (
		target string
		body   []byte
		err    error
	)
	if useCkpt {
		target = url + "/jobs/" + routerID + "/resume"
		body, err = json.Marshal(server.ResumeRequest{
			Request:     req,
			SnapshotB64: base64.StdEncoding.EncodeToString(ckpt),
			Resumes:     resumes,
		})
		if err != nil {
			return nil, fmt.Errorf("encoding resume: %w", err)
		}
	} else {
		target = url + "/jobs"
		body = raw
	}
	resp, err := r.client.Post(target, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	out := &dispatchResp{code: resp.StatusCode}
	if resp.StatusCode == http.StatusAccepted {
		var ack struct {
			ID      string `json:"id"`
			Resumed bool   `json:"resumed"`
		}
		if err := json.Unmarshal(data, &ack); err != nil || ack.ID == "" {
			return nil, fmt.Errorf("bad accept body %q", string(data))
		}
		out.id, out.resumed = ack.ID, ack.Resumed
		return out, nil
	}
	var eb struct {
		Error string `json:"error"`
	}
	_ = json.Unmarshal(data, &eb)
	out.errMsg = eb.Error
	if out.errMsg == "" {
		out.errMsg = string(data)
	}
	return out, nil
}

// pollLoop reconciles dispatched jobs against their workers every
// PollInterval: terminal statuses finalize the router job, running jobs
// with checkpointing enabled get their latest checkpoint image fetched
// and cached (the image failover will ship), and a worker that has
// forgotten a job — an in-memory restart — triggers immediate failover.
func (r *Router) pollLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.opts.PollInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-tick.C:
		}
		r.pollOnce()
	}
}

// pollOnce runs one reconciliation sweep. Jobs are grouped by worker and a
// worker is abandoned for the sweep on its first transport error — one
// dead worker must cost one health-machine failure per sweep, not one per
// in-flight job (which would rocket consecFails past the down threshold
// in a single sweep).
func (r *Router) pollOnce() {
	type ref struct {
		j         *job
		workerJob string
		fetchCkpt bool
	}
	now := time.Now()
	r.mu.Lock()
	byWorker := make(map[string][]ref)
	for _, j := range r.jobs {
		if j.state != jobDispatched {
			continue
		}
		fetch := j.req.Config.CheckpointEvery > 0 &&
			now.Sub(j.lastCkptFetch) >= r.opts.CheckpointFetchInterval
		if fetch {
			j.lastCkptFetch = now
		}
		byWorker[j.worker] = append(byWorker[j.worker], ref{
			j:         j,
			workerJob: j.workerJob,
			fetchCkpt: fetch,
		})
	}
	r.mu.Unlock()

	for url, refs := range byWorker {
		for _, p := range refs {
			st, code, err := r.fetchStatus(url, p.workerJob)
			if err != nil {
				r.noteWorkerFailure(url, "poll: "+err.Error())
				break // skip this worker's remaining jobs this sweep
			}
			switch {
			case code == http.StatusNotFound:
				// The worker restarted without durability (or another router's
				// drain flushed it): the job is gone there. Re-dispatch.
				r.mu.Lock()
				if p.j.state == jobDispatched && p.j.worker == url {
					r.failoverLocked(p.j, fmt.Sprintf("worker %s no longer knows job %s", url, p.workerJob))
				}
				r.mu.Unlock()
			case code == http.StatusOK && st != nil && st.State.Terminal():
				r.finalize(p.j, url, st)
			case code == http.StatusOK && p.fetchCkpt:
				r.fetchCheckpoint(p.j, url, p.workerJob)
			}
		}
	}
}

// fetchStatus GETs one worker-side job status. A non-200/404 code is
// reported as an error (it implicates the worker, not the job).
func (r *Router) fetchStatus(url, workerJob string) (*server.JobStatus, int, error) {
	resp, err := r.client.Get(url + "/jobs/" + workerJob)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	switch resp.StatusCode {
	case http.StatusOK:
		var st server.JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return nil, 0, fmt.Errorf("bad status body: %w", err)
		}
		return &st, http.StatusOK, nil
	case http.StatusNotFound:
		return nil, http.StatusNotFound, nil
	default:
		return nil, 0, fmt.Errorf("status: HTTP %d", resp.StatusCode)
	}
}

// fetchCheckpoint pulls the job's latest live checkpoint image and caches
// it as the failover resume point. 404 (not running / no checkpoint yet)
// is a non-event; transport errors are left to the status poll to count.
func (r *Router) fetchCheckpoint(j *job, url, workerJob string) {
	resp, err := r.client.Get(url + "/jobs/" + workerJob + "/checkpoint")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return
	}
	vt, _ := strconv.ParseUint(resp.Header.Get("X-Atomemu-Virtual-Time"), 10, 64)
	r.mu.Lock()
	if j.state == jobDispatched && j.worker == url && vt >= j.ckptVT {
		j.ckpt = data
		j.ckptVT = vt
	}
	r.mu.Unlock()
	r.ckptFetches.Add(1)
	r.ckptFetchBytes.Add(uint64(len(data)))
}

// failoverLocked re-queues a dispatched job whose worker is gone, arming
// the cached checkpoint (if any) for a resume-style re-dispatch. r.mu held.
func (r *Router) failoverLocked(j *job, why string) {
	j.resumes++
	j.worker, j.workerJob = "", ""
	j.rounds = 0
	j.resumed = false
	j.useCkpt = len(j.ckpt) > 0
	t := r.tenants[j.tenant]
	t.inflight--
	r.failoverRedispatch.Add(1)
	if j.useCkpt {
		r.opts.Logger.Printf("router: failing over %s (%s), shipping checkpoint at vt=%d", j.id, why, j.ckptVT)
	} else {
		r.opts.Logger.Printf("router: failing over %s (%s), no checkpoint cached, restarting", j.id, why)
	}
	r.enqueueLocked(t, j)
}

// failoverWorkerLocked fails over every job in flight on a worker that
// just went down. r.mu held (called from the health machine's down
// transition).
func (r *Router) failoverWorkerLocked(url string) {
	for _, j := range r.jobs {
		if j.state == jobDispatched && j.worker == url {
			r.failoverLocked(j, "worker down")
		}
	}
}

// finalize records a worker-terminal status as the job's final state.
func (r *Router) finalize(j *job, url string, st *server.JobStatus) {
	now := time.Now()
	r.mu.Lock()
	if j.state != jobDispatched || j.worker != url {
		r.mu.Unlock()
		return
	}
	if st.State == server.StateDone {
		j.state = jobDone
	} else {
		j.state = jobFailed
		j.errMsg = st.Error
	}
	j.final = st
	j.finishedAt = now
	j.ckpt = nil
	t := r.tenants[j.tenant]
	t.inflight--
	t.live--
	t.noteFinish(now)
	if j.state == jobDone {
		t.completed++
	} else {
		t.failed++
	}
	r.mu.Unlock()
	if j.state == jobDone {
		r.completed.Add(1)
	} else {
		r.failed.Add(1)
	}
	r.journalFinish(j)
}

// JobView is the router's wire representation of one job.
type JobView struct {
	ID        string   `json:"id"`
	Tenant    string   `json:"tenant"`
	State     jobState `json:"state"`
	Worker    string   `json:"worker,omitempty"`
	WorkerJob string   `json:"worker_job,omitempty"`
	// Resumes counts failover re-dispatches; Resumed reports whether the
	// current (or final) dispatch continued from a shipped checkpoint.
	Resumes int  `json:"resumes,omitempty"`
	Resumed bool `json:"resumed,omitempty"`
	// CkptVirtualTime is the virtual time of the latest cached checkpoint
	// image (the failover resume point).
	CkptVirtualTime uint64 `json:"ckpt_virtual_time,omitempty"`
	Error           string `json:"error,omitempty"`

	EnqueuedAt   time.Time `json:"enqueued_at"`
	DispatchedAt time.Time `json:"dispatched_at,omitempty"`
	FinishedAt   time.Time `json:"finished_at,omitempty"`

	// Status is the worker's JobStatus: final for terminal jobs, a live
	// proxy snapshot for dispatched ones (absent when the worker cannot be
	// reached).
	Status *server.JobStatus `json:"status,omitempty"`
}

func (r *Router) viewLocked(j *job) JobView {
	return JobView{
		ID: j.id, Tenant: j.tenant, State: j.state,
		Worker: j.worker, WorkerJob: j.workerJob,
		Resumes: j.resumes, Resumed: j.resumed,
		CkptVirtualTime: j.ckptVT, Error: j.errMsg,
		EnqueuedAt: j.enqueuedAt, DispatchedAt: j.dispatchedAt,
		FinishedAt: j.finishedAt, Status: j.final,
	}
}

// Status returns one job's view. For a dispatched job the worker's live
// status is proxied in best-effort.
func (r *Router) Status(id string) (JobView, bool) {
	r.mu.Lock()
	j := r.jobs[id]
	if j == nil {
		r.mu.Unlock()
		return JobView{}, false
	}
	v := r.viewLocked(j)
	var url, workerJob string
	if j.state == jobDispatched {
		url, workerJob = j.worker, j.workerJob
	}
	r.mu.Unlock()
	if url != "" {
		if st, code, err := r.fetchStatus(url, workerJob); err == nil && code == http.StatusOK {
			v.Status = st
		}
	}
	return v, true
}

// Jobs lists every job's view (no live proxying), newest id last.
func (r *Router) Jobs() []JobView {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobView, 0, len(r.jobs))
	for _, j := range r.jobs {
		out = append(out, r.viewLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return jobIDLess(out[i].ID, out[k].ID) })
	return out
}

// jobIDLess orders "fab-N" ids numerically.
func jobIDLess(a, b string) bool {
	pa, _ := strconv.Atoi(strings.TrimPrefix(a, "fab-"))
	pb, _ := strconv.Atoi(strings.TrimPrefix(b, "fab-"))
	if pa != pb {
		return pa < pb
	}
	return a < b
}

// journalFinish appends the job's terminal view to the router journal.
func (r *Router) journalFinish(j *job) {
	r.mu.Lock()
	v := r.viewLocked(j)
	r.mu.Unlock()
	data, err := json.Marshal(v)
	if err != nil {
		r.opts.Logger.Printf("router: encoding final view of %s: %v", j.id, err)
		return
	}
	r.journalAppend(durable.Record{
		Type: durable.TypeFinished, Job: j.id, Key: j.key,
		Status: json.RawMessage(data), UnixMS: v.FinishedAt.UnixMilli(),
	})
}
