package router

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"atomemu/internal/server"
)

// WorkerView is the wire representation of one worker's health.
type WorkerView struct {
	URL         string    `json:"url"`
	State       string    `json:"state"` // healthy | suspect | down
	OnRing      bool      `json:"on_ring"`
	ConsecFails int       `json:"consec_fails,omitempty"`
	LastError   string    `json:"last_error,omitempty"`
	LastProbe   time.Time `json:"last_probe,omitempty"`
	Queued      int       `json:"queued"`
	QueueDepth  int       `json:"queue_depth"`
	Accepted    uint64    `json:"accepted"`
	Completed   uint64    `json:"completed"`
	Shed        uint64    `json:"shed"`
	Warmth      int       `json:"warmth"`
	Dispatched  uint64    `json:"dispatched"`
	Downs       uint64    `json:"downs"`
	Rejoins     uint64    `json:"rejoins"`
}

// Workers returns every worker's health view, sorted by URL.
func (r *Router) Workers() []WorkerView {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerView, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, WorkerView{
			URL: w.url, State: w.state.String(), OnRing: w.state != stateDown,
			ConsecFails: w.consecFails, LastError: w.lastErr, LastProbe: w.lastProbe,
			Queued: w.queued, QueueDepth: w.queueDepth,
			Accepted: w.accepted, Completed: w.completed, Shed: w.shed,
			Warmth: w.warmth,
			Dispatched: w.dispatched, Downs: w.downs, Rejoins: w.rejoins,
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].URL < out[k].URL })
	return out
}

// TenantView is the wire representation of one tenant's scheduling state.
type TenantView struct {
	Name      string `json:"name"`
	Weight    int    `json:"weight"`
	Quota     int    `json:"quota"` // -1 = unbounded
	Live      int    `json:"live"`
	Queued    int    `json:"queued"`
	Inflight  int    `json:"inflight"`
	Admitted  uint64 `json:"admitted"`
	ShedQuota uint64 `json:"shed_quota"`
	ShedRoute uint64 `json:"shed_route"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
}

// Tenants returns every tenant's view, sorted by name.
func (r *Router) Tenants() []TenantView {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TenantView, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, TenantView{
			Name: t.name, Weight: t.weight, Quota: t.quota,
			Live: t.live, Queued: len(t.queue), Inflight: t.inflight,
			Admitted: t.admitted, ShedQuota: t.shedQuota, ShedRoute: t.shedDispatch,
			Completed: t.completed, Failed: t.failed,
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}

// ringSize reports live ring membership.
func (r *Router) ringSize() int { return r.ring.size() }

func (r *Router) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		r.opts.Logger.Printf("router: encoding response: %v", err)
	}
}

func (r *Router) httpError(w http.ResponseWriter, code int, msg string) {
	r.writeJSON(w, code, map[string]string{"error": msg})
}

// Handler returns the router's HTTP API:
//
//	POST /jobs          submit → 202 {id, state} | 400 | 429 quota or route
//	                    shed (Retry-After) | 503 draining
//	GET  /jobs          list router job views
//	GET  /jobs/{id}     one job's view, live-proxying the worker status
//	                    for dispatched jobs → 200 | 404
//	GET  /workers       per-worker health views
//	GET  /healthz       liveness (200 while the process serves)
//	GET  /readyz        routability → 200 | 503 draining or no live workers
//	GET  /statz         tenants + workers + journal stats
//	GET  /metrics       Prometheus text exposition
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, req *http.Request) {
		switch req.Method {
		case http.MethodPost:
			var jr server.JobRequest
			if err := json.NewDecoder(req.Body).Decode(&jr); err != nil {
				r.httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
				return
			}
			id, err := r.Submit(jr)
			if err != nil {
				se, ok := err.(*server.SubmitError)
				if !ok {
					se = &server.SubmitError{Status: http.StatusInternalServerError, Msg: err.Error()}
				}
				if se.RetryAfter > 0 {
					w.Header().Set("Retry-After", strconv.Itoa(se.RetryAfter))
				}
				r.httpError(w, se.Status, se.Msg)
				return
			}
			state := string(jobQueued)
			if v, ok := r.Status(id); ok {
				state = string(v.State)
			}
			r.writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": state})
		case http.MethodGet:
			r.writeJSON(w, http.StatusOK, r.Jobs())
		default:
			r.httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		}
	})
	mux.HandleFunc("/jobs/", r.getOnly(func(w http.ResponseWriter, req *http.Request) {
		id := strings.TrimPrefix(req.URL.Path, "/jobs/")
		v, ok := r.Status(id)
		if !ok {
			r.httpError(w, http.StatusNotFound, "no such job "+id)
			return
		}
		r.writeJSON(w, http.StatusOK, v)
	}))
	mux.HandleFunc("/workers", r.getOnly(func(w http.ResponseWriter, req *http.Request) {
		r.writeJSON(w, http.StatusOK, r.Workers())
	}))
	mux.HandleFunc("/healthz", r.getOnly(func(w http.ResponseWriter, req *http.Request) {
		r.writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok", "draining": r.Draining(), "ring_workers": r.ringSize(),
		})
	}))
	mux.HandleFunc("/readyz", r.getOnly(func(w http.ResponseWriter, req *http.Request) {
		if r.Draining() {
			r.httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		n := r.ringSize()
		if n == 0 {
			w.Header().Set("Retry-After", "1")
			r.httpError(w, http.StatusServiceUnavailable, "no live workers on the ring")
			return
		}
		r.writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "ring_workers": n})
	}))
	mux.HandleFunc("/statz", r.getOnly(func(w http.ResponseWriter, req *http.Request) {
		r.writeJSON(w, http.StatusOK, map[string]any{
			"tenants": r.Tenants(), "workers": r.Workers(), "journal": r.JournalStats(),
		})
	}))
	mux.HandleFunc("/metrics", r.getOnly(r.handleMetrics))
	return mux
}

func (r *Router) getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			r.httpError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		h(w, req)
	}
}
