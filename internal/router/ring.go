package router

import (
	"hash/fnv"
	"sort"
	"sync"
)

// ring is a consistent-hash ring over worker base URLs. Each member is
// hashed onto the circle at `replicas` virtual points, so load spreads
// evenly and removing one worker only reassigns that worker's arc (jobs
// hashed to everyone else keep their owner — exactly the property that
// makes failover cheap and rejoin non-disruptive).
//
// Candidates walks the circle clockwise from the key's point and returns
// distinct members in encounter order: the first is the job's home, the
// rest are its failover/backpressure spill sequence. The same key always
// yields the same sequence for a given membership, so a bounced or failed-
// over job lands deterministically.
type ring struct {
	mu       sync.RWMutex
	replicas int
	points   []uint64          // sorted vnode hashes
	owner    map[uint64]string // vnode hash -> member
	members  map[string]bool
}

func newRing(replicas int) *ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &ring{
		replicas: replicas,
		owner:    make(map[uint64]string),
		members:  make(map[string]bool),
	}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV alone disperses poorly when inputs share long prefixes (vnode
	// names differ only in a short suffix), which clumps ring points and
	// skews load badly; a splitmix64 finalizer spreads the bits.
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// vnodeHash places virtual point i of a member on the circle.
func vnodeHash(name string, i int) uint64 {
	return mix64(hash64(name) + uint64(i)*0x9e3779b97f4a7c15)
}

// add inserts a member (idempotent).
func (r *ring) add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[name] {
		return
	}
	r.members[name] = true
	for i := 0; i < r.replicas; i++ {
		h := vnodeHash(name, i)
		if _, taken := r.owner[h]; taken {
			// A vnode collision across members: skip the point rather than
			// silently stealing it. With 64-bit hashes this is cosmically
			// rare; the member keeps its other replicas.
			continue
		}
		r.owner[h] = name
		r.points = append(r.points, h)
	}
	sort.Slice(r.points, func(i, k int) bool { return r.points[i] < r.points[k] })
}

// remove evicts a member (idempotent).
func (r *ring) remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[name] {
		return
	}
	delete(r.members, name)
	keep := r.points[:0]
	for _, h := range r.points {
		if r.owner[h] == name {
			delete(r.owner, h)
			continue
		}
		keep = append(keep, h)
	}
	r.points = keep
}

// size reports the member count.
func (r *ring) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// candidates returns up to n distinct members clockwise from key's point.
func (r *ring) candidates(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		m := r.owner[r.points[(start+i)%len(r.points)]]
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
