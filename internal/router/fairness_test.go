package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"atomemu/internal/server"
)

// TestTenantFairnessUnderFlood: one tenant floods the router far past its
// quota while a background tenant trickles jobs in. The flooder must eat
// 429s (with Retry-After) at its quota ceiling; the background tenant
// must see zero sheds and bounded admission-to-dispatch latency — the
// flood cannot starve it, because admission quotas bound the flooder's
// share of the fleet and deficit round-robin interleaves dispatch.
func TestTenantFairnessUnderFlood(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fairness soak")
	}
	w := startWorker(t, server.Options{Workers: 2, QueueDepth: 64})
	opts := fastOptions(w.url())
	opts.QuotaPerWeight = 8 // each tenant caps at 8 live jobs
	opts.TenantWeights = map[string]int{"flood": 1, "bg": 1}
	r := newTestRouter(t, opts)
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)

	submit := func(tenant, key string, arg uint32) (int, string, string) {
		t.Helper()
		body, err := json.Marshal(server.JobRequest{
			Scheme: "pico-cas", GAC: milestoneGAC, Arg: arg,
			Tenant: tenant, IdempotencyKey: key,
			Config: server.JobConfig{CheckpointEvery: 50000},
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ans struct {
			ID    string `json:"id"`
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&ans)
		if ans.ID == "" {
			ans.ID = ans.Error
		}
		return resp.StatusCode, ans.ID, resp.Header.Get("Retry-After")
	}

	// Flood: far more submissions than the quota admits, as fast as the
	// transport allows.
	const floodTries = 40
	var floodAdmitted, flood429 int
	floodIDs := make([]string, 0, floodTries)
	sawRetryAfter := false
	for i := 0; i < floodTries; i++ {
		code, id, retry := submit("flood", fmt.Sprintf("flood-%d", i), 50)
		switch code {
		case http.StatusAccepted:
			floodAdmitted++
			floodIDs = append(floodIDs, id)
		case http.StatusTooManyRequests:
			flood429++
			if retry != "" {
				sawRetryAfter = true
			}
		default:
			t.Fatalf("flood submit %d: HTTP %d (%s)", i, code, id)
		}
	}
	if flood429 == 0 {
		t.Fatalf("flooder was never shed (%d/%d admitted); the quota is not biting", floodAdmitted, floodTries)
	}
	if !sawRetryAfter {
		t.Fatal("429 responses never carried a Retry-After header")
	}

	// Background tenant trickles 8 jobs while the flood backlog drains.
	// Every one must be admitted and finish promptly.
	const bgJobs = 8
	bgIDs := make([]string, 0, bgJobs)
	for i := 0; i < bgJobs; i++ {
		code, id, _ := submit("bg", fmt.Sprintf("bg-%d", i), 25)
		if code != http.StatusAccepted {
			t.Fatalf("background submit %d shed with HTTP %d — the flood starved it", i, code)
		}
		bgIDs = append(bgIDs, id)
		time.Sleep(20 * time.Millisecond)
	}
	for i, id := range bgIDs {
		v := awaitRouterTerminal(t, r, id, 60*time.Second)
		if v.State != jobDone {
			t.Fatalf("background job %d: state=%s err=%q", i, v.State, v.Error)
		}
	}

	// Fairness in the numbers: the background tenant shed nothing, and its
	// p99 dispatch wait stayed bounded while the flooder queued behind its
	// quota. The bound is generous — it guards against starvation (waiting
	// behind the whole flood backlog), not scheduler jitter.
	r.mu.Lock()
	bg := r.tenants["bg"]
	bgShed := bg.shedQuota + bg.shedDispatch
	bgWait := bg.waitHist.Snapshot()
	r.mu.Unlock()
	if bgShed != 0 {
		t.Fatalf("background tenant shed %d jobs, want 0", bgShed)
	}
	if bgWait.Count != bgJobs {
		t.Fatalf("background dispatch-wait histogram has %d observations, want %d", bgWait.Count, bgJobs)
	}
	const p99Bound = 5.0 // seconds
	if p99 := histQuantile(bgWait.Bounds, bgWait.Buckets, 0.99); p99 > p99Bound {
		t.Fatalf("background p99 dispatch wait %.3fs exceeds %.0fs — flooded out of the schedule", p99, p99Bound)
	}

	// Let the admitted flood jobs finish so worker drain stays clean.
	for _, id := range floodIDs {
		awaitRouterTerminal(t, r, id, 120*time.Second)
	}
}

// histQuantile reads quantile q from cumulative histogram buckets,
// returning the upper bound of the bucket the quantile falls in (+Inf
// collapses to the last finite bound doubled).
func histQuantile(bounds []float64, cum []uint64, q float64) float64 {
	if len(cum) == 0 {
		return 0
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	for i, c := range cum {
		if c > target {
			if i < len(bounds) {
				return bounds[i]
			}
			return bounds[len(bounds)-1] * 2
		}
	}
	return bounds[len(bounds)-1] * 2
}
