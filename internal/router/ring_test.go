package router

import (
	"fmt"
	"testing"
)

// TestRingDeterministicCandidates: the same key yields the same candidate
// walk for a fixed membership.
func TestRingDeterministicCandidates(t *testing.T) {
	r := newRing(64)
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for _, m := range members {
		r.add(m)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		first := r.candidates(key, 3)
		if len(first) != 3 {
			t.Fatalf("key %s: %d candidates, want 3", key, len(first))
		}
		seen := map[string]bool{}
		for _, c := range first {
			if seen[c] {
				t.Fatalf("key %s: duplicate candidate %s", key, c)
			}
			seen[c] = true
		}
		for rep := 0; rep < 3; rep++ {
			again := r.candidates(key, 3)
			for k := range first {
				if again[k] != first[k] {
					t.Fatalf("key %s: candidate walk changed between calls: %v vs %v", key, first, again)
				}
			}
		}
	}
}

// TestRingBalance: with vnode spreading no member owns a grossly outsized
// share of the key space (the regression this guards: raw FNV over
// shared-prefix vnode names clumped points so badly that one member of
// three owned ~70% — or even 9 of 9 consecutive keys).
func TestRingBalance(t *testing.T) {
	r := newRing(64)
	members := []string{"http://127.0.0.1:38371", "http://127.0.0.1:42977", "http://127.0.0.1:40001"}
	for _, m := range members {
		r.add(m)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.candidates(fmt.Sprintf("key-%d", i), 1)[0]]++
	}
	for _, m := range members {
		share := float64(counts[m]) / keys
		if share < 0.15 || share > 0.55 {
			t.Fatalf("member %s owns %.0f%% of keys (%v), want a roughly even split", m, share*100, counts)
		}
	}
}

// TestRingRemovalOnlyMovesTheRemovedArc: evicting one member must not
// reassign keys owned by the survivors — the property failover leans on.
func TestRingRemovalOnlyMovesTheRemovedArc(t *testing.T) {
	r := newRing(64)
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for _, m := range members {
		r.add(m)
	}
	const keys = 500
	before := make([]string, keys)
	for i := range before {
		before[i] = r.candidates(fmt.Sprintf("key-%d", i), 1)[0]
	}
	evicted := members[1]
	r.remove(evicted)
	moved := 0
	for i := range before {
		now := r.candidates(fmt.Sprintf("key-%d", i), 1)[0]
		if now == evicted {
			t.Fatalf("key-%d still routed to the evicted member", i)
		}
		if before[i] == evicted {
			moved++
			continue
		}
		if now != before[i] {
			t.Fatalf("key-%d moved from %s to %s though its owner survived", i, before[i], now)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the evicted member — vnode spread is broken")
	}
	// Rejoin restores the original assignment exactly.
	r.add(evicted)
	for i := range before {
		if now := r.candidates(fmt.Sprintf("key-%d", i), 1)[0]; now != before[i] {
			t.Fatalf("key-%d owned by %s after rejoin, want %s", i, now, before[i])
		}
	}
	if r.size() != len(members) {
		t.Fatalf("ring size = %d, want %d", r.size(), len(members))
	}
}
