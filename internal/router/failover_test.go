package router

import (
	"fmt"
	"net"
	"testing"
	"time"

	"atomemu/internal/server"
)

// reListen rebinds a worker's old address, simulating its process coming
// back after a crash.
func reListen(addr string) (net.Listener, error) {
	var (
		ln  net.Listener
		err error
	)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil, err
}

// TestFailoverResumesFromShippedCheckpoint is the fabric's core promise
// under -race: three workers, a burst of keyed jobs, one worker hard-
// killed mid-burst (listener torn down, its server left running as a
// partitioned zombie). Every job must still finish exactly once with
// output byte-identical to an uninterrupted single-node run, and at
// least one failed-over job must have resumed from a checkpoint the
// router shipped to a survivor rather than restarting from scratch.
func TestFailoverResumesFromShippedCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleet soak")
	}
	workers := []*testWorker{
		startWorker(t, server.Options{Workers: 3, QueueDepth: 32}),
		startWorker(t, server.Options{Workers: 3, QueueDepth: 32}),
		startWorker(t, server.Options{Workers: 3, QueueDepth: 32}),
	}
	urls := []string{workers[0].url(), workers[1].url(), workers[2].url()}
	byURL := map[string]*testWorker{}
	for _, w := range workers {
		byURL[w.url()] = w
	}
	r := newTestRouter(t, fastOptions(urls...))

	// Long enough that the kill lands mid-run for most of the burst;
	// milestone prints make lost or repeated work visible in the sequence.
	const jobs = 8
	args := make([]uint32, jobs)
	refs := make([][]uint32, jobs)
	for i := range args {
		args[i] = uint32(100 + 40*i)
		refs[i] = referenceOutput(t, milestoneGAC, args[i])
	}

	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		id, err := r.Submit(server.JobRequest{
			Scheme: "pico-cas", GAC: milestoneGAC, Arg: args[i],
			DeadlineMS:     120_000,
			IdempotencyKey: fmt.Sprintf("soak-%d", i),
			Config:         server.JobConfig{CheckpointEvery: 5000},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	// Wait until the router has cached a checkpoint for some dispatched
	// job — that job's worker is the victim, so the kill provably strands
	// resumable state.
	var victim string
	deadline := time.Now().Add(30 * time.Second)
	for victim == "" {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint was cached for any dispatched job")
		}
		r.mu.Lock()
		for _, id := range ids {
			j := r.jobs[id]
			if j.state == jobDispatched && j.ckptVT > 0 {
				victim = j.worker
				break
			}
		}
		r.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("killing %s mid-burst", victim)
	byURL[victim].kill()

	// Every job still completes, exactly once, with the uninterrupted
	// output.
	for i, id := range ids {
		v := awaitRouterTerminal(t, r, id, 180*time.Second)
		if v.State != jobDone {
			t.Fatalf("job %d (%s): state=%s err=%q", i, id, v.State, v.Error)
		}
		if v.Worker == victim {
			t.Fatalf("job %d finalized from the killed worker %s", i, victim)
		}
		if v.Status == nil || !equalOutputs(v.Status.Output, refs[i]) {
			t.Fatalf("job %d output diverged from the uninterrupted reference\n got: %v\nwant: %v",
				i, v.Status.Output, refs[i])
		}
	}

	// 0 lost / 0 duplicated at the router boundary: every key still maps
	// to its original id and exactly `jobs` jobs completed.
	for i, want := range ids {
		id, err := r.Submit(server.JobRequest{
			Scheme: "pico-cas", GAC: milestoneGAC, Arg: args[i],
			IdempotencyKey: fmt.Sprintf("soak-%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Fatalf("key soak-%d resolved to %s after failover, want %s", i, id, want)
		}
	}
	if got := r.completed.Load(); got != jobs {
		t.Fatalf("completed = %d, want exactly %d", got, jobs)
	}

	// The kill was detected (down transition, ring eviction) and at least
	// one in-flight job was re-dispatched with a shipped checkpoint.
	if got := r.failoverRedispatch.Load(); got < 1 {
		t.Fatalf("failover redispatches = %d, want >= 1", got)
	}
	if got := r.failoverResumed.Load(); got < 1 {
		t.Fatalf("checkpoint-resumed failovers = %d, want >= 1", got)
	}
	r.mu.Lock()
	vw := r.workers[victim]
	state, downs := vw.state, vw.downs
	r.mu.Unlock()
	if state != stateDown || downs < 1 {
		t.Fatalf("victim health = %v (downs=%d), want down with a recorded transition", state, downs)
	}
	if r.ringSize() != len(urls)-1 {
		t.Fatalf("ring size = %d after eviction, want %d", r.ringSize(), len(urls)-1)
	}
}

// TestWorkerRejoinsAfterRecovery: a down worker that starts answering
// probes again rejoins the ring automatically.
func TestWorkerRejoinsAfterRecovery(t *testing.T) {
	w1 := startWorker(t, server.Options{})
	w2 := startWorker(t, server.Options{})
	r := newTestRouter(t, fastOptions(w1.url(), w2.url()))

	// Make w2 unreachable long enough for the down transition...
	w2.ts.CloseClientConnections()
	w2.ts.Listener.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		r.mu.Lock()
		st := r.workers[w2.url()].state
		r.mu.Unlock()
		if st == stateDown {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never went down")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r.ringSize() != 1 {
		t.Fatalf("ring size = %d with one worker down, want 1", r.ringSize())
	}
	// ...then bring a listener back on the same address.
	// Serve on a fresh listener bound to the old address; mutating
	// w2.ts.Listener would race with httptest's serve goroutine.
	ln, err := reListen(w2.ts.Listener.Addr().String())
	if err != nil {
		t.Fatalf("relistening on %s: %v", w2.ts.Listener.Addr(), err)
	}
	w2.reborn = ln
	go w2.ts.Config.Serve(ln)
	deadline = time.Now().Add(10 * time.Second)
	for {
		r.mu.Lock()
		wv := r.workers[w2.url()]
		st, rejoins := wv.state, wv.rejoins
		r.mu.Unlock()
		if st == stateHealthy && rejoins >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never rejoined (state=%v)", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r.ringSize() != 2 {
		t.Fatalf("ring size = %d after rejoin, want 2", r.ringSize())
	}
}
