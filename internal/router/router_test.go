package router

import (
	"context"
	"log"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"atomemu/internal/engine"
	"atomemu/internal/gac"
	"atomemu/internal/server"
)

// counterGAC is the quick healthy job: n atomic increments, print, exit.
const counterGAC = `
var counter;
func main(n) {
    var i = 0;
    while (i < n) {
        atomic_add(&counter, 1);
        i = i + 1;
    }
    print(counter);
    exit(0);
}
`

// milestoneGAC prints a running total after every outer loop of 1000
// atomic increments, so a failover that lost or repeated work corrupts
// the output *sequence*, not just the final value. Arg is the outer loop
// count.
const milestoneGAC = `
var total;
func main(n) {
    var outer = 0;
    var i = 0;
    while (outer < n) {
        i = 0;
        while (i < 1000) {
            atomic_add(&total, 1);
            i = i + 1;
        }
        outer = outer + 1;
        print(total);
    }
    exit(0);
}
`

// testWorker is one in-process atomemud behind a real listener, killable
// mid-burst.
type testWorker struct {
	srv    *server.Server
	ts     *httptest.Server
	reborn net.Listener // second listener after a test revives the worker
	killed bool
}

func (w *testWorker) url() string { return w.ts.URL }

// kill is the SIGKILL-equivalent for an in-process worker: the listener
// closes and every established connection is torn down, so probes, polls
// and dispatches all fail from this instant. The server.Server itself
// keeps running its jobs — exactly the partitioned-zombie scenario the
// exactly-once argument must survive.
func (w *testWorker) kill() {
	if w.killed {
		return
	}
	w.killed = true
	w.ts.Listener.Close()
	if w.reborn != nil {
		w.reborn.Close()
	}
	w.ts.CloseClientConnections()
}

func startWorker(t *testing.T, opts server.Options) *testWorker {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	s, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	w := &testWorker{srv: s, ts: ts}
	t.Cleanup(func() {
		w.kill()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("worker drain: %v", err)
		}
	})
	return w
}

// fastOptions are router timings tuned for tests: sub-second down
// detection, tight polling.
func fastOptions(urls ...string) Options {
	return Options{
		Workers:                 urls,
		ProbeInterval:           20 * time.Millisecond,
		ProbeTimeout:            500 * time.Millisecond,
		ProbeSuspectAfter:       1,
		ProbeDownAfter:          2,
		ProbeBackoffMax:         200 * time.Millisecond,
		PollInterval:            25 * time.Millisecond,
		CheckpointFetchInterval: 100 * time.Millisecond,
		BounceBackoff:           5 * time.Millisecond,
	}
}

func newTestRouter(t *testing.T, opts Options) *Router {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = log.Default()
	}
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func awaitRouterTerminal(t *testing.T, r *Router, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		v, ok := r.Status(id)
		if !ok {
			t.Fatalf("job %s vanished from the router", id)
		}
		if v.State.terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	v, _ := r.Status(id)
	t.Fatalf("job %s never reached a terminal state (state=%s worker=%s)", id, v.State, v.Worker)
	return JobView{}
}

// referenceOutput runs the program uninterrupted on a bare engine — the
// ground truth routed results must be byte-identical to.
func referenceOutput(t *testing.T, src string, arg uint32) []uint32 {
	t.Helper()
	im, err := gac.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := engine.NewMachine(engine.DefaultConfig("pico-cas"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnThread(im.Entry, arg); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m.Output()
}

func equalOutputs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRouterRoutesAndProxies: jobs submitted to the router run on the
// fleet, terminal views carry the worker's status, idempotency keys map
// to one router id forever, and each job is admitted exactly once across
// the fleet.
func TestRouterRoutesAndProxies(t *testing.T) {
	w1 := startWorker(t, server.Options{})
	w2 := startWorker(t, server.Options{})
	r := newTestRouter(t, fastOptions(w1.url(), w2.url()))

	const n = 6
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		id, err := r.Submit(server.JobRequest{
			Scheme: "pico-cas", GAC: counterGAC, Arg: 300,
			IdempotencyKey: "route-" + string(rune('a'+i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		v := awaitRouterTerminal(t, r, id, 30*time.Second)
		if v.State != jobDone {
			t.Fatalf("job %d: state=%s err=%q", i, v.State, v.Error)
		}
		if v.Status == nil || len(v.Status.Output) != 1 || v.Status.Output[0] != 300 {
			t.Fatalf("job %d: missing or wrong proxied status: %+v", i, v.Status)
		}
		if v.Worker != w1.url() && v.Worker != w2.url() {
			t.Fatalf("job %d: unknown worker %q", i, v.Worker)
		}
	}
	// Keys keep answering with the same router id after completion.
	for i, want := range ids {
		id, err := r.Submit(server.JobRequest{
			Scheme: "pico-cas", GAC: counterGAC, Arg: 300,
			IdempotencyKey: "route-" + string(rune('a'+i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Fatalf("key re-submit %d: got %s, want %s", i, id, want)
		}
	}
	if got := r.completed.Load(); got != n {
		t.Fatalf("completed = %d, want %d", got, n)
	}
	// Exactly-once admission across the fleet: the workers together
	// admitted each job once, none twice.
	total := w1.srv.Metrics().Accepted + w2.srv.Metrics().Accepted
	if total != n {
		t.Fatalf("fleet accepted %d jobs, want %d", total, n)
	}
}

// TestRouterQuotaShedsWith429: a tenant at its quota is shed with a
// Retry-After, and the quota frees as its jobs finish.
func TestRouterQuotaShedsWith429(t *testing.T) {
	w := startWorker(t, server.Options{Workers: 2, QueueDepth: 32})
	opts := fastOptions(w.url())
	opts.QuotaPerWeight = 2
	r := newTestRouter(t, opts)

	mk := func() (string, error) {
		return r.Submit(server.JobRequest{
			Scheme: "pico-cas", GAC: milestoneGAC, Arg: 200, Tenant: "q",
			Config: server.JobConfig{CheckpointEvery: 50000},
		})
	}
	id1, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	id2, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	_, err = mk()
	se, ok := err.(*server.SubmitError)
	if !ok || se.Status != 429 {
		t.Fatalf("third submit: got %v, want a 429 SubmitError", err)
	}
	if se.RetryAfter < 1 {
		t.Fatalf("429 carried Retry-After %d, want >= 1", se.RetryAfter)
	}
	awaitRouterTerminal(t, r, id1, 60*time.Second)
	awaitRouterTerminal(t, r, id2, 60*time.Second)
	// Quota slots freed: the tenant admits again.
	if _, err := mk(); err != nil {
		t.Fatalf("post-completion submit still shed: %v", err)
	}
	r.mu.Lock()
	shed := r.tenants["q"].shedQuota
	r.mu.Unlock()
	if shed != 1 {
		t.Fatalf("tenant shedQuota = %d, want 1", shed)
	}
}

// TestRouterJournalRecovery: a router restarted on its DataDir keeps its
// idempotency table and re-adopts a job that was in flight on a worker,
// finalizing it without re-running anything.
func TestRouterJournalRecovery(t *testing.T) {
	w := startWorker(t, server.Options{})
	dir := t.TempDir()

	opts := fastOptions(w.url())
	opts.DataDir = dir
	r1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	doneID, err := r1.Submit(server.JobRequest{
		Scheme: "pico-cas", GAC: counterGAC, Arg: 100, IdempotencyKey: "jr-done",
	})
	if err != nil {
		t.Fatal(err)
	}
	awaitRouterTerminal(t, r1, doneID, 30*time.Second)

	liveID, err := r1.Submit(server.JobRequest{
		Scheme: "pico-cas", GAC: milestoneGAC, Arg: 600, IdempotencyKey: "jr-live",
		Config: server.JobConfig{CheckpointEvery: 5000},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the hand-off so the dispatched record is on disk, then stop
	// the router cold. The job keeps running on the worker.
	deadline := time.Now().Add(15 * time.Second)
	for {
		r1.mu.Lock()
		st := r1.jobs[liveID].state
		r1.mu.Unlock()
		if st == jobDispatched {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never dispatched", liveID)
		}
		time.Sleep(2 * time.Millisecond)
	}
	r1.Close()

	r2 := newTestRouter(t, opts)
	// The restarted router re-adopts: same ids for both keys, and the
	// in-flight job reaches done through reconciliation with the worker.
	for key, want := range map[string]string{"jr-done": doneID, "jr-live": liveID} {
		id, err := r2.Submit(server.JobRequest{
			Scheme: "pico-cas", GAC: counterGAC, Arg: 100, IdempotencyKey: key,
		})
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Fatalf("key %s: got %s after restart, want %s", key, id, want)
		}
	}
	v := awaitRouterTerminal(t, r2, liveID, 60*time.Second)
	if v.State != jobDone {
		t.Fatalf("re-adopted job: state=%s err=%q", v.State, v.Error)
	}
	if !equalOutputs(v.Status.Output, referenceOutput(t, milestoneGAC, 600)) {
		t.Fatalf("re-adopted job output diverged: %v", v.Status.Output)
	}
	done, _ := r2.Status(doneID)
	if done.State != jobDone || done.Status == nil {
		t.Fatalf("terminal job lost its final status across restart: %+v", done)
	}
}
