package router

import (
	"encoding/json"
	"fmt"
	"time"

	"atomemu/internal/durable"
	"atomemu/internal/server"
)

// The router journal reuses the workers' write-ahead format (package
// durable) with three record types:
//
//	submitted   Job, Key (client idempotency key), Request (worker wire
//	            JSON with the worker-side key already injected)
//	dispatched  Job, Worker, WorkerJob, Resumes
//	finished    Job, Status (final JobView JSON — router-terminal, so shed
//	            jobs are covered too)
//
// Appends happen OUTSIDE Router.mu: segment rotation invokes the compact
// source, which takes Router.mu, so appending under it would self-deadlock.
// The price is that a job's records may land out of order relative to
// records of other jobs racing their appends — replayFold is therefore
// order-insensitive per job and keyed by job id.

// initJournal replays any existing journal into the job table, then opens
// a fresh segment for this process's appends.
func (r *Router) initJournal() error {
	recs, rst, err := durable.Replay(r.opts.DataDir)
	if err != nil {
		return fmt.Errorf("router: replaying journal: %w", err)
	}
	r.replay = rst
	r.replayFold(recs)
	jour, err := durable.Open(durable.Options{
		Dir:           r.opts.DataDir,
		Sync:          r.opts.JournalSync,
		CompactSource: r.liveRecords,
	})
	if err != nil {
		return fmt.Errorf("router: opening journal: %w", err)
	}
	r.mu.Lock()
	r.jour = jour
	r.mu.Unlock()
	if err := jour.CompactNow(); err != nil {
		r.opts.Logger.Printf("router: startup compaction: %v", err)
	}
	if rst.Records > 0 || rst.CorruptRecords > 0 || rst.Truncated > 0 {
		r.opts.Logger.Printf("router: journal replay: %d records, %d corrupt, %d torn tails",
			rst.Records, rst.CorruptRecords, rst.Truncated)
	}
	return nil
}

// replayFold rebuilds the job table from journal records. Unfinished jobs
// that were dispatched stay dispatched (the poller reconciles against the
// worker: terminal → finalize, forgotten → failover); undispatched ones
// re-enter the dispatch queue.
func (r *Router) replayFold(recs []durable.Record) {
	type acc struct {
		raw        json.RawMessage
		key        string
		worker     string
		workerJob  string
		resumes    int
		dispatched bool
		final      *JobView
		unixMS     int64
	}
	accs := make(map[string]*acc)
	get := func(id string) *acc {
		a := accs[id]
		if a == nil {
			a = &acc{}
			accs[id] = a
		}
		return a
	}
	for _, rec := range recs {
		if rec.Job == "" {
			continue
		}
		switch rec.Type {
		case durable.TypeSubmitted:
			a := get(rec.Job)
			a.raw = rec.Request
			a.key = rec.Key
			if a.unixMS == 0 {
				a.unixMS = rec.UnixMS
			}
		case durable.TypeDispatched:
			a := get(rec.Job)
			// Keep the dispatch with the highest resume count — the latest
			// hand-off wins whatever order the appends landed in.
			if !a.dispatched || rec.Resumes >= a.resumes {
				a.dispatched = true
				a.worker, a.workerJob, a.resumes = rec.Worker, rec.WorkerJob, rec.Resumes
			}
		case durable.TypeFinished:
			var v JobView
			if err := json.Unmarshal(rec.Status, &v); err == nil {
				get(rec.Job).final = &v
			}
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	var maxID uint64
	for id, a := range accs {
		var n uint64
		if _, err := fmt.Sscanf(id, "fab-%d", &n); err == nil && n > maxID {
			maxID = n
		}
		if a.final != nil {
			v := *a.final
			j := &job{
				id: id, tenant: v.Tenant, key: a.key, state: v.State,
				worker: v.Worker, workerJob: v.WorkerJob,
				resumes: v.Resumes, resumed: v.Resumed, errMsg: v.Error,
				final: v.Status, enqueuedAt: v.EnqueuedAt,
				dispatchedAt: v.DispatchedAt, finishedAt: v.FinishedAt,
			}
			if !j.state.terminal() { // damaged view; refuse to resurrect as live
				j.state = jobFailed
			}
			r.jobs[id] = j
			if a.key != "" {
				r.byKey[a.key] = id
			}
			continue
		}
		if len(a.raw) == 0 {
			continue // dispatched/finished fragment without its submission
		}
		var req server.JobRequest
		if err := json.Unmarshal(a.raw, &req); err != nil {
			r.opts.Logger.Printf("router: replay: dropping %s: bad request record: %v", id, err)
			continue
		}
		tname := req.Tenant
		if tname == "" {
			tname = "default"
		}
		j := &job{
			id: id, tenant: tname, key: a.key, req: req, raw: a.raw,
			resumes: a.resumes,
		}
		j.hashKey = ringKey(req, a.key, id)
		j.enqueuedAt = time.UnixMilli(a.unixMS)
		if a.unixMS == 0 {
			j.enqueuedAt = time.Now()
		}
		j.lastEnqueue = time.Now()
		r.jobs[id] = j
		if a.key != "" {
			r.byKey[a.key] = id
		}
		t := r.tenantLocked(tname)
		t.live++
		if a.dispatched {
			j.state = jobDispatched
			j.worker, j.workerJob = a.worker, a.workerJob
			t.inflight++
		} else {
			r.enqueueLocked(t, j)
		}
	}
	if maxID > r.nextID {
		r.nextID = maxID
	}
}

// liveRecords is the journal compaction source: the minimal record set
// that reproduces the current job table.
func (r *Router) liveRecords() []durable.Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]durable.Record, 0, len(r.jobs)*2)
	for _, j := range r.jobs {
		if j.state.terminal() {
			v := r.viewLocked(j)
			data, err := json.Marshal(v)
			if err != nil {
				continue
			}
			out = append(out, durable.Record{
				Type: durable.TypeFinished, Job: j.id, Key: j.key,
				Status: json.RawMessage(data), UnixMS: j.finishedAt.UnixMilli(),
			})
			continue
		}
		out = append(out, durable.Record{
			Type: durable.TypeSubmitted, Job: j.id, Key: j.key,
			Request: json.RawMessage(j.raw), UnixMS: j.enqueuedAt.UnixMilli(),
		})
		if j.state == jobDispatched {
			out = append(out, durable.Record{
				Type: durable.TypeDispatched, Job: j.id,
				Worker: j.worker, WorkerJob: j.workerJob, Resumes: j.resumes,
			})
		}
	}
	return out
}

// journalAppend appends one record, tolerating a disabled journal. Router
// durability is best-effort in the same sense as the worker's: an append
// failure degrades crash recovery, never the job in flight.
func (r *Router) journalAppend(rec durable.Record) {
	r.mu.Lock()
	jour := r.jour
	r.mu.Unlock()
	if jour == nil {
		return
	}
	if err := jour.Append(rec); err != nil {
		r.journalErrs.Add(1)
		r.opts.Logger.Printf("router: journal append (%s %s): %v", rec.Type, rec.Job, err)
	}
}

// JournalStats exposes the live journal's counters (zero without DataDir).
func (r *Router) JournalStats() durable.Stats {
	r.mu.Lock()
	jour := r.jour
	r.mu.Unlock()
	if jour == nil {
		return durable.Stats{}
	}
	return jour.Stats()
}
