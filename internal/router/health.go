package router

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// Worker health is a three-state machine driven by active probes of the
// worker's /readyz (and, while it answers, /statz for load gauges):
//
//	healthy ──ProbeSuspectAfter consecutive failures──▶ suspect
//	suspect ──ProbeDownAfter consecutive failures────▶ down
//	any     ──one successful probe───────────────────▶ healthy
//
// A suspect worker stays on the ring (it may be a blip; its queued jobs
// are still likely to finish) but its failures keep counting. The down
// transition evicts the worker from the ring and fails over its in-flight
// jobs to surviving workers. While down, probing backs off exponentially
// (capped at ProbeBackoffMax) so a dead host is not hammered; the first
// successful probe resets the counters, rejoins the ring, and the worker
// starts taking its hash arc again.
//
// Dispatch and poll errors against a worker feed the same counter as
// probe failures, so a worker that dies right after a clean probe is
// detected at the speed of traffic, not of the probe interval.

type healthState int32

const (
	stateHealthy healthState = iota
	stateSuspect
	stateDown
)

func (h healthState) String() string {
	switch h {
	case stateHealthy:
		return "healthy"
	case stateSuspect:
		return "suspect"
	default:
		return "down"
	}
}

// worker is the router's view of one atomemud. All fields are guarded by
// Router.mu.
type worker struct {
	url   string
	state healthState

	consecFails int
	lastErr     string
	lastProbe   time.Time
	nextProbe   time.Time
	backoff     time.Duration // probe backoff while down; 0 = ProbeInterval cadence
	probing     bool          // a probe goroutine is in flight

	// Gauges from the last successful /readyz + /statz probe.
	queued     int
	queueDepth int
	accepted   uint64
	completed  uint64
	shed       uint64
	// warmth scores the worker's reusable warm-start state (shared TB
	// blocks plus, much more heavily, warm-pool templates) from the /statz
	// warmth hint; dispatch uses it to order spill candidates.
	warmth int

	// Lifetime transition counters for /metrics.
	downs   uint64
	rejoins uint64

	dispatched uint64 // jobs this router dispatched here
}

// probeLoop wakes every half ProbeInterval and launches probes for workers
// that are due. Each probe runs in its own goroutine so one unresponsive
// worker (blocked until ProbeTimeout) cannot delay probing the others.
func (r *Router) probeLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.opts.ProbeInterval / 2)
	defer tick.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-tick.C:
		}
		now := time.Now()
		r.mu.Lock()
		for _, w := range r.workers {
			if w.probing || now.Before(w.nextProbe) {
				continue
			}
			w.probing = true
			r.wg.Add(1)
			go r.probe(w.url)
		}
		r.mu.Unlock()
	}
}

// probe performs one health check against a worker and feeds the result to
// the state machine. Runs outside Router.mu.
func (r *Router) probe(url string) {
	defer r.wg.Done()
	q, depth, err := r.probeReadyz(url)
	if err != nil {
		r.noteWorkerFailure(url, err.Error())
		return
	}
	sz := r.probeStatz(url)
	r.mu.Lock()
	w := r.workers[url]
	if w != nil {
		w.queued, w.queueDepth = q, depth
		w.accepted, w.completed, w.shed = sz.accepted, sz.completed, sz.shed
		w.warmth = sz.warmth
	}
	r.mu.Unlock()
	r.noteWorkerSuccess(url)
}

// probeReadyz GETs {url}/readyz; any transport error or non-200 is a
// failure (a 503-draining worker must leave the rotation just like a dead
// one). On 200 it returns the worker's reported queue length and depth.
func (r *Router) probeReadyz(url string) (queued, depth int, err error) {
	req, err := http.NewRequest(http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := r.probeClient.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("readyz: %s: %s", resp.Status, string(body))
	}
	var rb struct {
		Queued     int `json:"queued"`
		QueueDepth int `json:"queue_depth"`
	}
	_ = json.Unmarshal(body, &rb) // gauges only; a parse failure is not a health failure
	return rb.Queued, rb.QueueDepth, nil
}

// statzSample is what one /statz probe yields for the worker gauges.
type statzSample struct {
	accepted  uint64
	completed uint64
	shed      uint64
	warmth    int
}

// probeStatz samples the worker's job counters and warmth hint for
// per-worker load gauges. Best-effort: health never depends on it.
func (r *Router) probeStatz(url string) statzSample {
	resp, err := r.probeClient.Get(url + "/statz")
	if err != nil {
		return statzSample{}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statzSample{}
	}
	var sb struct {
		Metrics struct {
			Accepted  uint64 `json:"accepted"`
			Completed uint64 `json:"completed"`
			Shed      uint64 `json:"shed"`
		} `json:"metrics"`
		Warmth struct {
			TBStoreBlocks int `json:"tbstore_blocks"`
			WarmTemplates int `json:"warm_templates"`
		} `json:"warmth"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&sb)
	// A template skips a whole prologue; a cached block skips one
	// translation. Weight accordingly so one warm template beats any
	// realistic block count from an unrelated image.
	return statzSample{
		accepted:  sb.Metrics.Accepted,
		completed: sb.Metrics.Completed,
		shed:      sb.Metrics.Shed,
		warmth:    sb.Warmth.TBStoreBlocks + 512*sb.Warmth.WarmTemplates,
	}
}

// noteWorkerSuccess records a successful interaction: reset the failure
// streak, rejoin the ring if the worker was down, resume normal cadence.
func (r *Router) noteWorkerSuccess(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[url]
	if w == nil {
		return
	}
	w.probing = false
	w.lastProbe = time.Now()
	w.consecFails = 0
	w.lastErr = ""
	w.backoff = 0
	w.nextProbe = w.lastProbe.Add(r.opts.ProbeInterval)
	if w.state == stateDown {
		w.rejoins++
		r.ring.add(url)
		r.opts.Logger.Printf("router: worker %s recovered, rejoining ring", url)
	}
	w.state = stateHealthy
}

// noteWorkerFailure records a failed probe/dispatch/poll and advances the
// state machine, evicting and failing over on the down transition.
func (r *Router) noteWorkerFailure(url, detail string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[url]
	if w == nil {
		return
	}
	w.probing = false
	w.lastProbe = time.Now()
	w.consecFails++
	w.lastErr = detail
	switch {
	case w.consecFails >= r.opts.ProbeDownAfter:
		if w.state != stateDown {
			w.state = stateDown
			w.downs++
			r.ring.remove(url)
			r.opts.Logger.Printf("router: worker %s down after %d failures (%s), evicting and failing over",
				url, w.consecFails, detail)
			r.failoverWorkerLocked(url)
		}
		// Exponential probe backoff while down, jittered so a fleet of
		// routers does not probe a rebooting worker in lockstep.
		if w.backoff == 0 {
			w.backoff = r.opts.ProbeInterval
		} else if w.backoff < r.opts.ProbeBackoffMax {
			w.backoff *= 2
			if w.backoff > r.opts.ProbeBackoffMax {
				w.backoff = r.opts.ProbeBackoffMax
			}
		}
		w.nextProbe = w.lastProbe.Add(jitter(w.backoff))
	case w.consecFails >= r.opts.ProbeSuspectAfter && w.state == stateHealthy:
		w.state = stateSuspect
		w.nextProbe = w.lastProbe.Add(r.opts.ProbeInterval)
	default:
		w.nextProbe = w.lastProbe.Add(r.opts.ProbeInterval)
	}
}

// jitter spreads d over [0.5d, 1.5d).
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}
