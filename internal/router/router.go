// Package router is the front tier of a multi-node atomemu deployment: an
// HTTP service that consistent-hash routes jobs across a fleet of atomemud
// workers and keeps the fleet's promises when individual workers die.
//
//   - Placement: jobs are routed on a consistent-hash ring (keyed by the
//     client's idempotency key, falling back to the router job id), so a
//     given key always lands on the same worker while membership holds, and
//     membership changes only move the dead worker's arc.
//   - Health: workers are actively probed (/readyz, /statz) through a
//     three-state machine — healthy, suspect, down — with exponential
//     probe backoff while down, automatic ring eviction on the down
//     transition and rejoin on recovery. See health.go.
//   - Failover: when a worker goes down mid-job, its in-flight jobs are
//     re-dispatched to surviving workers. The router polls running jobs'
//     /jobs/{id}/checkpoint and caches the latest ACKP image; failover
//     ships it via POST /jobs/{id}/resume so the job continues from its
//     last checkpoint instead of from the entry point.
//   - Exactly-once results: every job runs under a worker-side idempotency
//     key (the client's, or a router-generated "fab:<id>"), so a re-shipped
//     dispatch cannot double-admit, and the router exposes one id and one
//     final status per key. Duplicate *execution* is possible under
//     partition (a presumed-dead worker may still be running its copy),
//     but the engine is deterministic and the only observable effect is
//     the result recorded under the key — which both copies compute
//     identically. See DESIGN.md §12 for the full argument.
//   - Fairness: admission is quota-bounded per tenant (quota scales with
//     configured tenant weight) and dispatch order is deficit round-robin
//     across tenants, so a flooding tenant saturates its own quota and
//     eats 429s while background tenants keep their latency.
//   - Backpressure: a dispatch bounced by a full worker queue (429) is
//     retried on the next ring candidate after a jittered backoff; after
//     RedispatchRounds fruitless rounds the job is shed with 429 semantics
//     rather than queued forever.
//
// With a DataDir the router writes its own write-ahead journal (the same
// durable format as the workers') recording submitted / dispatched /
// finished transitions, so a router restart recovers its job table and
// re-adopts in-flight work by polling the workers it had dispatched to.
package router

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"atomemu/internal/durable"
	"atomemu/internal/obs"
	"atomemu/internal/server"
)

// Options configures a Router.
type Options struct {
	// Workers are the base URLs of the atomemud fleet ("http://host:port").
	Workers []string

	// TenantWeights maps tenant name to scheduling weight (min 1). A
	// tenant's admission quota is weight × QuotaPerWeight and its DRR
	// quantum is its weight. Unlisted tenants get DefaultWeight.
	TenantWeights map[string]int
	// DefaultWeight is the weight for tenants not in TenantWeights.
	// Default 1.
	DefaultWeight int
	// QuotaPerWeight caps a tenant's live jobs (admitted, not yet terminal)
	// at weight × QuotaPerWeight. Beyond it submissions are shed with 429
	// and a Retry-After derived from the tenant's measured completion rate.
	// Default 32; negative disables quotas.
	QuotaPerWeight int

	// Dispatchers is the number of dispatch workers. Default 4.
	Dispatchers int
	// DispatchAttempts is how many ring candidates one dispatch round
	// tries before backing off. Default 3 (clamped to the fleet size).
	DispatchAttempts int
	// RedispatchRounds is how many dispatch rounds a job gets before it is
	// shed. Default 3.
	RedispatchRounds int
	// BounceBackoff is the base jittered backoff between candidate
	// attempts and between rounds. Default 25ms.
	BounceBackoff time.Duration

	// ProbeInterval is the health probe cadence per worker. Default 250ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request. Default 2s.
	ProbeTimeout time.Duration
	// ProbeSuspectAfter is the consecutive-failure count that turns a
	// healthy worker suspect. Default 1.
	ProbeSuspectAfter int
	// ProbeDownAfter is the consecutive-failure count that turns a worker
	// down (ring eviction + failover). Default 3.
	ProbeDownAfter int
	// ProbeBackoffMax caps the exponential probe backoff while a worker
	// stays down. Default 5s.
	ProbeBackoffMax time.Duration

	// PollInterval is the cadence of the status poll over dispatched jobs.
	// Default 200ms.
	PollInterval time.Duration
	// CheckpointFetchInterval throttles how often one job's checkpoint
	// image is re-fetched and cached (fetching encodes a full snapshot on
	// the worker, so it is much heavier than a status poll). Default 500ms.
	CheckpointFetchInterval time.Duration

	// VNodes is the virtual-node count per worker on the hash ring.
	// Default 64.
	VNodes int

	// DataDir, when set, enables the router journal (submitted /
	// dispatched / finished records) so a restart recovers the job table.
	DataDir string
	// JournalSync is the journal fsync policy. Default SyncBatch.
	JournalSync durable.SyncPolicy

	// Client performs dispatch, poll and proxy requests. Defaults to a
	// 30s-timeout client.
	Client *http.Client
	// Logger receives router diagnostics. Defaults to log.Default().
	Logger *log.Logger
}

func (o Options) withDefaults() Options {
	if o.DefaultWeight <= 0 {
		o.DefaultWeight = 1
	}
	if o.QuotaPerWeight == 0 {
		o.QuotaPerWeight = 32
	}
	if o.Dispatchers <= 0 {
		o.Dispatchers = 4
	}
	if o.DispatchAttempts <= 0 {
		o.DispatchAttempts = 3
	}
	if o.RedispatchRounds <= 0 {
		o.RedispatchRounds = 3
	}
	if o.BounceBackoff <= 0 {
		o.BounceBackoff = 25 * time.Millisecond
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.ProbeSuspectAfter <= 0 {
		o.ProbeSuspectAfter = 1
	}
	if o.ProbeDownAfter <= 0 {
		o.ProbeDownAfter = 3
	}
	if o.ProbeBackoffMax <= 0 {
		o.ProbeBackoffMax = 5 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 200 * time.Millisecond
	}
	if o.CheckpointFetchInterval <= 0 {
		o.CheckpointFetchInterval = 500 * time.Millisecond
	}
	if o.VNodes <= 0 {
		o.VNodes = 64
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
	return o
}

// jobState is the router-side lifecycle. "dispatched" covers everything
// between hand-off and the worker's terminal status (the worker-side
// queued/running distinction lives in the proxied status).
type jobState string

const (
	jobQueued     jobState = "queued"
	jobDispatched jobState = "dispatched"
	jobDone       jobState = "done"
	jobFailed     jobState = "failed"
	jobShed       jobState = "shed"
)

func (s jobState) terminal() bool { return s == jobDone || s == jobFailed || s == jobShed }

// job is the router's record of one submission. Guarded by Router.mu;
// between nextJob and the dispatch outcome the owning dispatcher is the
// only writer of the routing fields.
type job struct {
	id      string
	tenant  string
	key     string // client idempotency key ("" if none)
	hashKey string // ring key: image content hash, else client key, else router id
	req     server.JobRequest
	raw     []byte // marshaled req (worker-side key injected)

	state     jobState
	worker    string // base URL while dispatched
	workerJob string // worker-side job id while dispatched
	rounds    int    // dispatch rounds consumed this attempt
	resumes   int    // failover re-dispatches so far
	resumed   bool   // current dispatch adopted a shipped checkpoint

	ckpt          []byte    // latest fetched ACKP image
	ckptVT        uint64    // its virtual time
	lastCkptFetch time.Time // throttles re-fetching
	useCkpt       bool      // next dispatch should ship ckpt via /resume

	errMsg string
	final  *server.JobStatus

	enqueuedAt   time.Time // first admission
	lastEnqueue  time.Time // start of the current dispatch wait
	dispatchedAt time.Time
	finishedAt   time.Time
}

// tenant is one admission/scheduling domain. Guarded by Router.mu.
type tenant struct {
	name    string
	weight  int
	quota   int // live-job cap; <0 = unbounded
	queue   []*job
	deficit int
	onDeck  bool // in Router.active

	live     int // admitted, not yet terminal
	inflight int // dispatched, not yet terminal

	admitted     uint64
	shedQuota    uint64
	shedDispatch uint64
	completed    uint64
	failed       uint64

	waitHist *obs.Histogram // dispatch wait (enqueue→hand-off), seconds

	finishRing [32]time.Time
	finishN    int
}

func (t *tenant) noteFinish(at time.Time) {
	t.finishRing[t.finishN%len(t.finishRing)] = at
	t.finishN++
}

// finishRate is the tenant's measured completions/sec over its recent
// finish ring; 0 means no evidence.
func (t *tenant) finishRate(now time.Time) float64 {
	n := t.finishN
	if n > len(t.finishRing) {
		n = len(t.finishRing)
	}
	if n < 2 {
		return 0
	}
	oldest := now
	for i := 0; i < n; i++ {
		if ts := t.finishRing[i]; ts.Before(oldest) {
			oldest = ts
		}
	}
	span := now.Sub(oldest)
	if span <= 0 {
		span = 50 * time.Millisecond
	}
	return float64(n) / span.Seconds()
}

// dispatchWaitBuckets spans in-process test latencies to worst-case
// redispatch backoff chains.
var dispatchWaitBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 15}

// Router is the front tier. Create with New, mount Handler, stop with
// Close (or DrainAndClose to wait for in-flight jobs first).
type Router struct {
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond // signaled when a tenant queue gains work
	workers map[string]*worker
	ring    *ring
	jobs    map[string]*job
	byKey   map[string]string // client idempotency key → router job id
	tenants map[string]*tenant
	active  []*tenant // DRR rotation of tenants with queued work
	nextID  uint64
	stopped bool

	jour   *durable.Journal
	replay durable.ReplayStats

	draining atomic.Bool
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	client      *http.Client
	probeClient *http.Client

	// Lifetime counters (see metrics.go).
	dispatches         atomic.Uint64
	bounces            atomic.Uint64
	dispatchErrs       atomic.Uint64
	failoverRedispatch atomic.Uint64
	failoverResumed    atomic.Uint64
	ckptFetches        atomic.Uint64
	ckptFetchBytes     atomic.Uint64
	completed          atomic.Uint64
	failed             atomic.Uint64
	journalErrs        atomic.Uint64
}

// New builds the router, replays its journal (with a DataDir), and starts
// the dispatch, probe and poll loops. Workers start healthy and on the
// ring — the first probe round corrects that within ProbeInterval.
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("router: no workers configured")
	}
	r := &Router{
		opts:    opts,
		workers: make(map[string]*worker, len(opts.Workers)),
		ring:    newRing(opts.VNodes),
		jobs:    make(map[string]*job),
		byKey:   make(map[string]string),
		tenants: make(map[string]*tenant),
		stopCh:  make(chan struct{}),
		client:  opts.Client,
		probeClient: &http.Client{
			Timeout:   opts.ProbeTimeout,
			Transport: opts.Client.Transport,
		},
	}
	r.cond = sync.NewCond(&r.mu)
	now := time.Now()
	for _, u := range opts.Workers {
		if _, dup := r.workers[u]; dup {
			return nil, fmt.Errorf("router: duplicate worker %s", u)
		}
		r.workers[u] = &worker{url: u, state: stateHealthy, nextProbe: now}
		r.ring.add(u)
	}
	if opts.DataDir != "" {
		if err := r.initJournal(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < opts.Dispatchers; i++ {
		r.wg.Add(1)
		go r.dispatchLoop()
	}
	r.wg.Add(2)
	go r.probeLoop()
	go r.pollLoop()
	return r, nil
}

// tenantLocked returns (creating on first sight) the tenant record.
func (r *Router) tenantLocked(name string) *tenant {
	t := r.tenants[name]
	if t == nil {
		w := r.opts.TenantWeights[name]
		if w <= 0 {
			w = r.opts.DefaultWeight
		}
		quota := -1
		if r.opts.QuotaPerWeight > 0 {
			quota = w * r.opts.QuotaPerWeight
		}
		t = &tenant{
			name: name, weight: w, quota: quota,
			waitHist: obs.NewHistogram(dispatchWaitBuckets),
		}
		r.tenants[name] = t
	}
	return t
}

// Submit admits a job: quota check, id assignment, idempotency
// registration, tenant enqueue. Returns the router job id; errors are
// *server.SubmitError with HTTP semantics (429 quota with Retry-After,
// 503 draining, 400 invalid).
func (r *Router) Submit(req server.JobRequest) (string, error) {
	if r.draining.Load() {
		return "", &server.SubmitError{Status: http.StatusServiceUnavailable, Msg: "router is draining"}
	}
	if len(req.Tenant) > 64 {
		return "", &server.SubmitError{Status: http.StatusBadRequest, Msg: "tenant: too long (max 64 bytes)"}
	}
	if (req.GAC == "") == (req.ImageB64 == "") {
		return "", &server.SubmitError{Status: http.StatusBadRequest, Msg: "provide exactly one of gac or image_b64"}
	}
	tname := req.Tenant
	if tname == "" {
		tname = "default"
	}

	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return "", &server.SubmitError{Status: http.StatusServiceUnavailable, Msg: "router is stopped"}
	}
	if req.IdempotencyKey != "" {
		if id, ok := r.byKey[req.IdempotencyKey]; ok {
			r.mu.Unlock()
			return id, nil
		}
	}
	t := r.tenantLocked(tname)
	if t.quota >= 0 && t.live >= t.quota {
		t.shedQuota++
		retry := r.tenantRetryAfterLocked(t)
		r.mu.Unlock()
		return "", &server.SubmitError{
			Status:     http.StatusTooManyRequests,
			Msg:        fmt.Sprintf("tenant %q is at its admission quota (%d live jobs)", tname, t.quota),
			RetryAfter: retry,
		}
	}
	r.nextID++
	id := fmt.Sprintf("fab-%d", r.nextID)
	j := &job{
		id:     id,
		tenant: tname,
		key:    req.IdempotencyKey,
		state:  jobQueued,
	}
	// The worker-side idempotency key makes re-dispatch of the same router
	// job collapse on the worker: the client's key when it gave one, a
	// router-scoped synthetic key otherwise.
	wreq := req
	wreq.Tenant = tname
	if wreq.IdempotencyKey == "" {
		wreq.IdempotencyKey = "fab:" + id
	}
	raw, err := json.Marshal(wreq)
	if err != nil {
		r.mu.Unlock()
		return "", &server.SubmitError{Status: http.StatusBadRequest, Msg: "encoding request: " + err.Error()}
	}
	j.req = wreq
	j.raw = raw
	j.hashKey = ringKey(req, j.key, id)
	now := time.Now()
	j.enqueuedAt, j.lastEnqueue = now, now
	r.jobs[id] = j
	if j.key != "" {
		r.byKey[j.key] = id
	}
	t.live++
	t.admitted++
	r.enqueueLocked(t, j)
	r.mu.Unlock()

	r.journalAppend(durable.Record{
		Type: durable.TypeSubmitted, Job: id, Key: j.key,
		Request: json.RawMessage(raw), UnixMS: now.UnixMilli(),
	})
	return id, nil
}

// ringKey derives a job's consistent-hash placement key. Image content
// wins: repeat submissions of the same guest program land on the worker
// that already holds its translations in the shared TB store and its fork
// template in the warm pool, so placement affinity is what turns those
// caches into fleet-level wins. Same program, same arc — whoever submits
// it. Jobs without program content (not possible via the HTTP surface)
// fall back to the client key, then the router id.
func ringKey(req server.JobRequest, key, id string) string {
	switch {
	case req.GAC != "":
		sum := sha256.Sum256([]byte("gac\x00" + req.GAC))
		return "img:" + hex.EncodeToString(sum[:])
	case req.ImageB64 != "":
		sum := sha256.Sum256([]byte("img\x00" + req.ImageB64))
		return "img:" + hex.EncodeToString(sum[:])
	case key != "":
		return key
	default:
		return id
	}
}

// tenantRetryAfterLocked derives a quota-shed Retry-After from the
// tenant's measured completion rate: how long until one quota slot likely
// frees. Clamped to [1, 30]; 2 without rate evidence.
func (r *Router) tenantRetryAfterLocked(t *tenant) int {
	rate := t.finishRate(time.Now())
	if rate <= 0 {
		return 2
	}
	secs := 1 / rate
	if secs < 1 {
		return 1
	}
	if secs > 30 {
		return 30
	}
	return int(secs + 0.5)
}

// enqueueLocked appends the job to its tenant queue and puts the tenant on
// the DRR rotation.
func (r *Router) enqueueLocked(t *tenant, j *job) {
	j.state = jobQueued
	j.lastEnqueue = time.Now()
	t.queue = append(t.queue, j)
	if !t.onDeck {
		t.onDeck = true
		r.active = append(r.active, t)
	}
	r.cond.Signal()
}

// nextLocked pops the next job under deficit round-robin: the tenant at
// the head of the rotation spends one deficit credit per job; an exhausted
// tenant moves to the tail with a fresh quantum (its weight), so over a
// rotation each backlogged tenant dispatches in proportion to its weight.
func (r *Router) nextLocked() *job {
	for len(r.active) > 0 {
		t := r.active[0]
		if len(t.queue) == 0 {
			t.deficit = 0
			t.onDeck = false
			r.active = r.active[1:]
			continue
		}
		if t.deficit < 1 {
			t.deficit += t.weight
			r.active = append(r.active[1:], t)
			continue
		}
		t.deficit--
		j := t.queue[0]
		t.queue = t.queue[1:]
		return j
	}
	return nil
}

// nextJob blocks until a job is available or the router stops (nil).
func (r *Router) nextJob() *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.stopped {
			return nil
		}
		if j := r.nextLocked(); j != nil {
			return j
		}
		r.cond.Wait()
	}
}

func (r *Router) dispatchLoop() {
	defer r.wg.Done()
	for {
		j := r.nextJob()
		if j == nil {
			return
		}
		r.dispatch(j)
	}
}

type dispOutcome int

const (
	dispOK       dispOutcome = iota
	dispBounce               // 429: worker queue full, try the next candidate
	dispFail                 // transport error or 5xx: counts against worker health
	dispTerminal             // 400 or job no longer dispatchable: stop trying
)

// dispatch walks the job's ring candidates, with jittered backoff between
// attempts and between rounds; RedispatchRounds fruitless rounds shed the
// job. An empty ring (every worker down) burns rounds like a bounce — a
// job cannot wait forever for a fleet that may never return.
func (r *Router) dispatch(j *job) {
	for {
		r.mu.Lock()
		if r.stopped || j.state != jobQueued {
			r.mu.Unlock()
			return
		}
		cands := r.ring.candidates(j.hashKey, r.opts.DispatchAttempts)
		if len(cands) > 2 {
			// The arc owner stays first — placement stability is what builds
			// worker warmth in the first place. But a bounce's spill order is
			// free choice: prefer spilling to the warmest surviving candidate
			// (most reusable translations/templates, per its /statz warmth
			// hint). Stable sort, so equally-cold candidates keep ring order.
			rest := cands[1:]
			sort.SliceStable(rest, func(a, b int) bool {
				wa, wb := r.workers[rest[a]], r.workers[rest[b]]
				var sa, sb int
				if wa != nil {
					sa = wa.warmth
				}
				if wb != nil {
					sb = wb.warmth
				}
				return sa > sb
			})
		}
		r.mu.Unlock()

		for i, url := range cands {
			if i > 0 {
				// Back off before spilling to the next candidate: the bounce
				// is usually a momentarily full queue, and the jitter keeps
				// concurrent dispatchers from stampeding the same spill.
				if !r.sleepStop(jitter(r.opts.BounceBackoff << uint(i-1))) {
					return
				}
			}
			switch r.tryDispatch(j, url) {
			case dispOK, dispTerminal:
				return
			case dispBounce, dispFail:
			}
		}

		r.mu.Lock()
		j.rounds++
		rounds := j.rounds
		if rounds >= r.opts.RedispatchRounds {
			r.shedLocked(j, fmt.Sprintf("no worker accepted the job after %d dispatch rounds", rounds))
			r.mu.Unlock()
			r.journalFinish(j)
			return
		}
		r.mu.Unlock()
		if !r.sleepStop(jitter(r.opts.BounceBackoff << uint(rounds+1))) {
			return
		}
	}
}

// tryDispatch hands the job to one worker: POST /jobs, or POST
// /jobs/{id}/resume with the cached checkpoint image when this is a
// failover re-dispatch that has one to ship.
func (r *Router) tryDispatch(j *job, url string) dispOutcome {
	r.mu.Lock()
	if j.state != jobQueued {
		r.mu.Unlock()
		return dispTerminal
	}
	useCkpt := j.useCkpt && len(j.ckpt) > 0
	ckpt := j.ckpt
	resumes := j.resumes
	raw := j.raw
	req := j.req
	r.mu.Unlock()

	resp, err := r.postDispatch(url, j.id, raw, req, useCkpt, ckpt, resumes)
	if err != nil {
		r.dispatchErrs.Add(1)
		r.noteWorkerFailure(url, "dispatch: "+err.Error())
		return dispFail
	}
	switch resp.code {
	case http.StatusAccepted:
		now := time.Now()
		r.mu.Lock()
		if j.state != jobQueued { // lost a race with shed/stop
			r.mu.Unlock()
			return dispTerminal
		}
		j.state = jobDispatched
		j.worker = url
		j.workerJob = resp.id
		j.dispatchedAt = now
		j.resumed = useCkpt && resp.resumed
		j.useCkpt = false
		t := r.tenants[j.tenant]
		t.inflight++
		t.waitHist.Observe(now.Sub(j.lastEnqueue).Seconds())
		if w := r.workers[url]; w != nil {
			w.dispatched++
		}
		resumesNow := j.resumes
		r.mu.Unlock()
		r.dispatches.Add(1)
		if useCkpt && resp.resumed {
			r.failoverResumed.Add(1)
		}
		r.journalAppend(durable.Record{
			Type: durable.TypeDispatched, Job: j.id,
			Worker: url, WorkerJob: resp.id, Resumes: resumesNow,
			UnixMS: now.UnixMilli(),
		})
		return dispOK
	case http.StatusTooManyRequests:
		r.bounces.Add(1)
		return dispBounce
	case http.StatusBadRequest:
		// The fleet rejected the job itself; retrying elsewhere cannot help.
		r.mu.Lock()
		r.failLocked(j, "worker rejected job: "+resp.errMsg)
		r.mu.Unlock()
		r.journalFinish(j)
		return dispTerminal
	default:
		r.dispatchErrs.Add(1)
		r.noteWorkerFailure(url, fmt.Sprintf("dispatch: HTTP %d: %s", resp.code, resp.errMsg))
		return dispFail
	}
}

// sleepStop sleeps d unless the router stops first; false means stopped.
func (r *Router) sleepStop(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	select {
	case <-r.stopCh:
		return false
	case <-time.After(d):
		return true
	}
}

// shedLocked marks a queued job shed (dispatch exhausted). r.mu held.
func (r *Router) shedLocked(j *job, why string) {
	j.state = jobShed
	j.errMsg = why
	j.finishedAt = time.Now()
	j.ckpt = nil
	t := r.tenants[j.tenant]
	t.live--
	t.shedDispatch++
	t.noteFinish(j.finishedAt)
	r.opts.Logger.Printf("router: shedding %s: %s", j.id, why)
}

// failLocked marks a queued job failed without a worker status. r.mu held.
func (r *Router) failLocked(j *job, why string) {
	j.state = jobFailed
	j.errMsg = why
	j.finishedAt = time.Now()
	j.ckpt = nil
	t := r.tenants[j.tenant]
	t.live--
	t.failed++
	t.noteFinish(j.finishedAt)
	r.failed.Add(1)
}

// Draining reports whether DrainAndClose has begun.
func (r *Router) Draining() bool { return r.draining.Load() }

// DrainAndClose stops admission, waits (bounded by ctx) for every live job
// to reach a terminal state, then shuts down. Jobs still live at ctx
// expiry stay live on their workers; a restarted router with the same
// DataDir re-adopts them.
func (r *Router) DrainAndClose(ctx context.Context) error {
	r.draining.Store(true)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	var err error
wait:
	for {
		r.mu.Lock()
		live := 0
		for _, t := range r.tenants {
			live += t.live
		}
		r.mu.Unlock()
		if live == 0 {
			break
		}
		select {
		case <-ctx.Done():
			err = fmt.Errorf("router drain: %d jobs still live: %w", live, ctx.Err())
			break wait
		case <-tick.C:
		}
	}
	r.Close()
	return err
}

// Close stops the loops and the journal. Idempotent. Live jobs keep
// running on their workers.
func (r *Router) Close() {
	r.stopOnce.Do(func() {
		r.mu.Lock()
		r.stopped = true
		r.cond.Broadcast()
		r.mu.Unlock()
		close(r.stopCh)
	})
	r.wg.Wait()
	r.mu.Lock()
	jour := r.jour
	r.jour = nil
	r.mu.Unlock()
	if jour != nil {
		if err := jour.Close(); err != nil {
			r.opts.Logger.Printf("router: closing journal: %v", err)
		}
	}
}
