package router

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"atomemu/internal/server"
)

// TestRingKeyDerivation: placement hashes by image content when the request
// carries one, so repeat submissions of one program share a hash arc (and
// its worker's warm state), falling back to the idempotency key, then the
// router job id.
func TestRingKeyDerivation(t *testing.T) {
	gacReq := server.JobRequest{GAC: counterGAC}
	if a, b := ringKey(gacReq, "", "fab-1"), ringKey(gacReq, "other-key", "fab-2"); a != b {
		t.Errorf("same GAC must hash to one arc regardless of key/id: %q vs %q", a, b)
	}
	if a, b := ringKey(gacReq, "", "fab-1"), ringKey(server.JobRequest{GAC: milestoneGAC}, "", "fab-1"); a == b {
		t.Error("different programs must not share an image arc")
	}
	imgReq := server.JobRequest{ImageB64: "AAAA"}
	if a, b := ringKey(imgReq, "k", "fab-1"), ringKey(server.JobRequest{ImageB64: "BBBB"}, "k", "fab-1"); a == b {
		t.Error("different images must not share an image arc")
	}
	if a, b := ringKey(gacReq, "", ""), ringKey(imgReq, "", ""); a == b {
		t.Error("GAC and image namespaces must not collide")
	}
	if got := ringKey(server.JobRequest{}, "client-key", "fab-3"); got != "client-key" {
		t.Errorf("imageless request should fall back to the client key, got %q", got)
	}
	if got := ringKey(server.JobRequest{}, "", "fab-3"); got != "fab-3" {
		t.Errorf("keyless request should fall back to the job id, got %q", got)
	}
}

// TestImageAffinityRoutesToOneWorker: across a healthy fleet, every repeat
// submission of the same program lands on the same worker, so cross-job
// translation reuse and warm forks actually trigger fleet-wide.
func TestImageAffinityRoutesToOneWorker(t *testing.T) {
	w1 := startWorker(t, server.Options{})
	w2 := startWorker(t, server.Options{})
	w3 := startWorker(t, server.Options{})
	r := newTestRouter(t, fastOptions(w1.url(), w2.url(), w3.url()))

	owner := ""
	for i := 0; i < 6; i++ {
		id, err := r.Submit(server.JobRequest{Scheme: "pico-cas", GAC: counterGAC, Arg: 50})
		if err != nil {
			t.Fatal(err)
		}
		v := awaitRouterTerminal(t, r, id, 30*time.Second)
		if v.State != jobDone {
			t.Fatalf("job %d: state=%s err=%q", i, v.State, v.Error)
		}
		if owner == "" {
			owner = v.Worker
		} else if v.Worker != owner {
			t.Fatalf("job %d dispatched to %s, earlier jobs to %s — image affinity broken", i, v.Worker, owner)
		}
	}
	// A different program may (and with three workers, usually does) own a
	// different arc; at minimum its placement must be deterministic too.
	other := ""
	for i := 0; i < 3; i++ {
		id, err := r.Submit(server.JobRequest{Scheme: "pico-cas", GAC: milestoneGAC, Arg: 2})
		if err != nil {
			t.Fatal(err)
		}
		v := awaitRouterTerminal(t, r, id, 30*time.Second)
		if v.State != jobDone {
			t.Fatalf("milestone job %d: state=%s err=%q", i, v.State, v.Error)
		}
		if other == "" {
			other = v.Worker
		} else if v.Worker != other {
			t.Fatalf("milestone job %d dispatched to %s, earlier to %s", i, v.Worker, other)
		}
	}
}

// TestProbeStatzParsesWarmth: the health probe folds the worker's warmth
// hint (shared TB blocks + heavily-weighted warm templates) into one
// placement score, and tolerates workers that predate the hint.
func TestProbeStatzParsesWarmth(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"metrics": map[string]uint64{"accepted": 7, "completed": 5, "shed": 1},
			"warmth":  map[string]int{"tbstore_blocks": 100, "tbstore_segments": 2, "warm_templates": 3},
		})
	}))
	defer stub.Close()
	r := newTestRouter(t, fastOptions(stub.URL))
	sz := r.probeStatz(stub.URL)
	if sz.accepted != 7 || sz.completed != 5 || sz.shed != 1 {
		t.Errorf("counters = %+v", sz)
	}
	if want := 100 + 512*3; sz.warmth != want {
		t.Errorf("warmth = %d, want %d", sz.warmth, want)
	}

	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"metrics": map[string]uint64{"accepted": 1}})
	}))
	defer old.Close()
	if sz := r.probeStatz(old.URL); sz.warmth != 0 {
		t.Errorf("hint-less worker should score 0 warmth, got %d", sz.warmth)
	}
}

// TestProbePublishesWarmthGauge: a worker that finished a warm-enabled job
// shows up with nonzero warmth in the router's worker view (the gauge the
// spill-candidate ordering reads).
func TestProbePublishesWarmthGauge(t *testing.T) {
	w := startWorker(t, server.Options{
		SharedTBCacheBlocks: 4096,
		WarmPoolSize:        2,
		WarmCheckpointEvery: 2000,
	})
	r := newTestRouter(t, fastOptions(w.url()))
	id, err := r.Submit(server.JobRequest{Scheme: "pico-cas", GAC: counterGAC, Arg: 4000})
	if err != nil {
		t.Fatal(err)
	}
	awaitRouterTerminal(t, r, id, 30*time.Second)

	deadline := time.Now().Add(5 * time.Second)
	for {
		views := r.Workers()
		if len(views) == 1 && views[0].Warmth >= 512 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker warmth never surfaced: %+v", views)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
