package router

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"atomemu/internal/obs"
)

// WritePrometheus renders the router exposition (text format 0.0.4):
// fleet health per worker, failover and checkpoint-shipping counters, and
// per-tenant admission/fairness series. Series are prefixed
// atomemu_router_ so a scrape of router + workers never collides.
func (r *Router) WritePrometheus(w io.Writer) error {
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	counter("atomemu_router_dispatch_total", "Jobs handed to a worker.", r.dispatches.Load())
	counter("atomemu_router_dispatch_bounce_total", "Dispatches bounced by a full worker queue (429).", r.bounces.Load())
	counter("atomemu_router_dispatch_error_total", "Dispatch attempts that failed at transport or 5xx level.", r.dispatchErrs.Load())
	counter("atomemu_router_failover_redispatch_total", "In-flight jobs re-dispatched after their worker died.", r.failoverRedispatch.Load())
	counter("atomemu_router_failover_resumed_total", "Failover re-dispatches that resumed from a shipped checkpoint.", r.failoverResumed.Load())
	counter("atomemu_router_ckpt_fetch_total", "Checkpoint images fetched from workers.", r.ckptFetches.Load())
	counter("atomemu_router_ckpt_fetch_bytes_total", "Bytes of checkpoint images fetched from workers.", r.ckptFetchBytes.Load())
	counter("atomemu_router_jobs_completed_total", "Router jobs that finished done.", r.completed.Load())
	counter("atomemu_router_jobs_failed_total", "Router jobs that finished failed.", r.failed.Load())
	counter("atomemu_router_journal_errors_total", "Router journal append failures.", r.journalErrs.Load())

	gauge("atomemu_router_ring_workers", "Workers currently on the hash ring.")
	fmt.Fprintf(&b, "atomemu_router_ring_workers %d\n", r.ringSize())
	gauge("atomemu_router_draining", "1 while the router is draining, else 0.")
	d := 0
	if r.Draining() {
		d = 1
	}
	fmt.Fprintf(&b, "atomemu_router_draining %d\n", d)

	workers := r.Workers()
	gauge("atomemu_router_worker_health", "Worker health state: 0 healthy, 1 suspect, 2 down.")
	for _, wv := range workers {
		fmt.Fprintf(&b, "atomemu_router_worker_health{worker=%q} %d\n", wv.URL, healthValue(wv.State))
	}
	gauge("atomemu_router_worker_consec_failures", "Consecutive probe/dispatch/poll failures counted toward the down threshold.")
	for _, wv := range workers {
		fmt.Fprintf(&b, "atomemu_router_worker_consec_failures{worker=%q} %d\n", wv.URL, wv.ConsecFails)
	}
	gauge("atomemu_router_worker_queued", "Worker-reported queue length at the last successful probe.")
	for _, wv := range workers {
		fmt.Fprintf(&b, "atomemu_router_worker_queued{worker=%q} %d\n", wv.URL, wv.Queued)
	}
	gauge("atomemu_router_worker_warmth", "Worker warm-start score (shared TB blocks + weighted warm templates) at the last successful probe.")
	for _, wv := range workers {
		fmt.Fprintf(&b, "atomemu_router_worker_warmth{worker=%q} %d\n", wv.URL, wv.Warmth)
	}
	fmt.Fprintf(&b, "# HELP atomemu_router_worker_dispatched_total Jobs this router dispatched to the worker.\n# TYPE atomemu_router_worker_dispatched_total counter\n")
	for _, wv := range workers {
		fmt.Fprintf(&b, "atomemu_router_worker_dispatched_total{worker=%q} %d\n", wv.URL, wv.Dispatched)
	}
	fmt.Fprintf(&b, "# HELP atomemu_router_worker_downs_total Down transitions (ring evictions) of the worker.\n# TYPE atomemu_router_worker_downs_total counter\n")
	for _, wv := range workers {
		fmt.Fprintf(&b, "atomemu_router_worker_downs_total{worker=%q} %d\n", wv.URL, wv.Downs)
	}
	fmt.Fprintf(&b, "# HELP atomemu_router_worker_rejoins_total Ring rejoins of the worker after recovery.\n# TYPE atomemu_router_worker_rejoins_total counter\n")
	for _, wv := range workers {
		fmt.Fprintf(&b, "atomemu_router_worker_rejoins_total{worker=%q} %d\n", wv.URL, wv.Rejoins)
	}

	tenants := r.Tenants()
	fmt.Fprintf(&b, "# HELP atomemu_router_tenant_admitted_total Jobs admitted per tenant.\n# TYPE atomemu_router_tenant_admitted_total counter\n")
	for _, tv := range tenants {
		fmt.Fprintf(&b, "atomemu_router_tenant_admitted_total{tenant=%q} %d\n", tv.Name, tv.Admitted)
	}
	fmt.Fprintf(&b, "# HELP atomemu_router_tenant_shed_total Submissions shed per tenant, by reason.\n# TYPE atomemu_router_tenant_shed_total counter\n")
	for _, tv := range tenants {
		fmt.Fprintf(&b, "atomemu_router_tenant_shed_total{tenant=%q,reason=\"quota\"} %d\n", tv.Name, tv.ShedQuota)
		fmt.Fprintf(&b, "atomemu_router_tenant_shed_total{tenant=%q,reason=\"route\"} %d\n", tv.Name, tv.ShedRoute)
	}
	fmt.Fprintf(&b, "# HELP atomemu_router_tenant_completed_total Jobs finished done per tenant.\n# TYPE atomemu_router_tenant_completed_total counter\n")
	for _, tv := range tenants {
		fmt.Fprintf(&b, "atomemu_router_tenant_completed_total{tenant=%q} %d\n", tv.Name, tv.Completed)
	}
	gauge("atomemu_router_tenant_live", "Live (admitted, non-terminal) jobs per tenant.")
	for _, tv := range tenants {
		fmt.Fprintf(&b, "atomemu_router_tenant_live{tenant=%q} %d\n", tv.Name, tv.Live)
	}
	gauge("atomemu_router_tenant_queued", "Jobs waiting for dispatch per tenant.")
	for _, tv := range tenants {
		fmt.Fprintf(&b, "atomemu_router_tenant_queued{tenant=%q} %d\n", tv.Name, tv.Queued)
	}

	// Per-tenant dispatch-wait histograms (admission→hand-off latency): the
	// series the tenant-fairness test bounds.
	r.mu.Lock()
	type th struct {
		name string
		h    obs.HistSnapshot
	}
	hists := make([]th, 0, len(r.tenants))
	for name, t := range r.tenants {
		hists = append(hists, th{name, t.waitHist.Snapshot()})
	}
	r.mu.Unlock()
	sort.Slice(hists, func(i, k int) bool { return hists[i].name < hists[k].name })
	fmt.Fprintf(&b, "# HELP atomemu_router_dispatch_wait_seconds Enqueue-to-dispatch wait per tenant.\n# TYPE atomemu_router_dispatch_wait_seconds histogram\n")
	for _, t := range hists {
		for i, bound := range t.h.Bounds {
			fmt.Fprintf(&b, "atomemu_router_dispatch_wait_seconds_bucket{tenant=%q,le=%q} %d\n",
				t.name, strconv.FormatFloat(bound, 'g', -1, 64), t.h.Buckets[i])
		}
		fmt.Fprintf(&b, "atomemu_router_dispatch_wait_seconds_bucket{tenant=%q,le=\"+Inf\"} %d\n",
			t.name, t.h.Buckets[len(t.h.Buckets)-1])
		fmt.Fprintf(&b, "atomemu_router_dispatch_wait_seconds_sum{tenant=%q} %s\n",
			t.name, strconv.FormatFloat(t.h.Sum, 'g', -1, 64))
		fmt.Fprintf(&b, "atomemu_router_dispatch_wait_seconds_count{tenant=%q} %d\n", t.name, t.h.Count)
	}

	js := r.JournalStats()
	counter("atomemu_router_journal_records_total", "Records appended to the router journal by this process.", js.Appends)
	counter("atomemu_router_journal_compactions_total", "Router journal compactions.", js.Compactions)
	counter("atomemu_router_journal_replayed_records_total", "Records recovered from the router journal at the last startup.", uint64(r.replay.Records))

	_, err := io.WriteString(w, b.String())
	return err
}

func healthValue(state string) int {
	switch state {
	case "suspect":
		return 1
	case "down":
		return 2
	default:
		return 0
	}
}

// handleMetrics serves GET /metrics.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := r.WritePrometheus(w); err != nil {
		r.opts.Logger.Printf("router: writing /metrics: %v", err)
	}
}
