package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"atomemu/internal/arch"
	"atomemu/internal/mmu"
	"atomemu/internal/stats"
)

func testSnapshot() *Snapshot {
	frameA := make([]uint32, mmu.PageWords)
	frameB := make([]uint32, mmu.PageWords)
	frameDup := make([]uint32, mmu.PageWords)
	for i := range frameA {
		frameA[i] = uint32(i) * 3
		frameDup[i] = frameA[i] // same contents, different slice: must dedup
		frameB[i] = 0xdead0000 + uint32(i)
	}
	st := stats.CPU{GuestInstrs: 1234, SCs: 7, SCFails: 2}
	st.Cycles[stats.CompNative] = 999
	return &Snapshot{
		VirtualTime: 123456,
		Mem: &mmu.Snapshot{
			Pages: []mmu.PageSnap{
				{Base: 0x1000, Perm: mmu.PermRX, Frame: 0},
				{Base: 0x10000, Perm: mmu.PermRWX, Frame: 1},
				{Base: 0x11000, Perm: mmu.PermRW, Frame: 2},
			},
			Frames: map[int32][]uint32{0: frameA, 1: frameB, 2: frameDup},
		},
		Scheme: map[string]int{"private": 1}, // must be dropped by the codec
		CPUs: []VCPU{
			{TID: 1, PC: 0x10040, Slots: []uint32{1, 2, 3}, Flags: arch.Flags{Z: true}, Clock: 123456, Stats: st},
			{TID: 2, PC: 0x10080, Slots: []uint32{9}, Halted: true, ExitCode: 3,
				Blocked: Blocked{Active: true, Syscall: 7, Kind: "futex", Addr: 0x11010}},
		},
		Barriers: []Barrier{{Addr: 0x11020, Total: 4}},
		Output:   []uint32{10, 20, 30},
		HeapNext: 0x2000_1000,
		NextTID:  3,
	}
}

func encodeToBytes(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestCodecRoundTrip(t *testing.T) {
	want := testSnapshot()
	got, err := DecodeBytes(encodeToBytes(t, want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Scheme != nil {
		t.Fatalf("decoded snapshot carries a scheme payload: %v", got.Scheme)
	}
	if got.VirtualTime != want.VirtualTime || got.HeapNext != want.HeapNext || got.NextTID != want.NextTID {
		t.Fatalf("cursors mismatch: %+v", got)
	}
	if len(got.CPUs) != 2 || got.CPUs[0].Stats.GuestInstrs != 1234 ||
		got.CPUs[0].Stats.Cycles[stats.CompNative] != 999 || !got.CPUs[0].Flags.Z {
		t.Fatalf("vCPU state mismatch: %+v", got.CPUs)
	}
	if b := got.CPUs[1].Blocked; !b.Active || b.Kind != "futex" || b.Addr != 0x11010 {
		t.Fatalf("blocked marker mismatch: %+v", b)
	}
	if len(got.Barriers) != 1 || got.Barriers[0].Total != 4 {
		t.Fatalf("barriers mismatch: %+v", got.Barriers)
	}
	if len(got.Output) != 3 || got.Output[2] != 30 {
		t.Fatalf("output mismatch: %v", got.Output)
	}
	if len(got.Mem.Pages) != 3 || len(got.Mem.Frames) != 3 {
		t.Fatalf("memory shape mismatch: %d pages, %d frames", len(got.Mem.Pages), len(got.Mem.Frames))
	}
	for f, words := range want.Mem.Frames {
		gw := got.Mem.Frames[f]
		if len(gw) != len(words) {
			t.Fatalf("frame %d length mismatch", f)
		}
		for i := range words {
			if gw[i] != words[i] {
				t.Fatalf("frame %d word %d: %#x != %#x", f, i, gw[i], words[i])
			}
		}
	}
}

func TestCodecDedupsIdenticalFrames(t *testing.T) {
	s := testSnapshot()
	withDup := len(encodeToBytes(t, s))
	// Make the duplicate frame unique: the image must grow by a whole frame.
	s.Mem.Frames[2] = append([]uint32(nil), s.Mem.Frames[2]...)
	s.Mem.Frames[2][0] = ^uint32(0)
	withoutDup := len(encodeToBytes(t, s))
	if withoutDup-withDup != mmu.PageWords*4 {
		t.Fatalf("dedup saved %d bytes, want exactly one frame (%d)", withoutDup-withDup, mmu.PageWords*4)
	}
	// And the deduped image still restores both frames independently.
	got, err := DecodeBytes(encodeToBytes(t, testSnapshot()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Mem.Frames[0][10] != got.Mem.Frames[2][10] {
		t.Fatal("deduped frames decoded to different contents")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	good := encodeToBytes(t, testSnapshot())

	check := func(name string, img []byte) {
		t.Helper()
		s, err := DecodeBytes(img)
		if err == nil {
			t.Fatalf("%s: decode accepted a damaged image (%+v)", name, s)
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("%s: error %v is not a DecodeError", name, err)
		}
	}

	check("empty", nil)
	check("truncated", good[:len(good)/2])
	badMagic := append([]byte(nil), good...)
	badMagic[0] ^= 0xff
	check("bad magic", badMagic)
	badVersion := append([]byte(nil), good...)
	badVersion[4] = 0x7f
	check("bad version", badVersion)
	for _, off := range []int{16, len(good) / 2, len(good) - 5} {
		flipped := append([]byte(nil), good...)
		flipped[off] ^= 0x01
		check("flip", flipped)
	}
}

func TestDecodeRejectsDanglingBlobRef(t *testing.T) {
	s := testSnapshot()
	// A page referencing a frame that has no contents must be rejected: the
	// restore path would otherwise index a nil frame.
	s.Mem.Pages = append(s.Mem.Pages, mmu.PageSnap{Base: 0x20000, Perm: mmu.PermRW, Frame: 99})
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := DecodeBytes(buf.Bytes()); err == nil {
		t.Fatal("decode accepted a page with a missing frame")
	}
}

// FuzzCheckpointDecode: DecodeBytes must never panic, whatever the bytes.
// When an image does decode, re-encoding the result must yield an image
// that decodes to the same snapshot — the codec has one canonical form.
func FuzzCheckpointDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := Encode(&buf, testSnapshot()); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:8])
	truncated := append([]byte(nil), good[:len(good)-3]...)
	f.Add(truncated)
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeBytes(data)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("non-DecodeError from DecodeBytes: %v", err)
			}
			return
		}
		var re bytes.Buffer
		if err := Encode(&re, snap); err != nil {
			t.Fatalf("re-encode of a decoded snapshot failed: %v", err)
		}
		again, err := DecodeBytes(re.Bytes())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.VirtualTime != snap.VirtualTime || len(again.CPUs) != len(snap.CPUs) ||
			len(again.Output) != len(snap.Output) {
			t.Fatalf("round-trip diverged: %+v vs %+v", again, snap)
		}
	})
}
