package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"atomemu/internal/mmu"
)

// DecodeError reports a rejected snapshot image. Callers treat any decode
// failure as "no usable checkpoint" and fall back to running the job from
// scratch — a damaged spill must never wedge recovery.
type DecodeError struct{ Reason string }

func (e *DecodeError) Error() string { return "checkpoint: decode: " + e.Reason }

func decErr(format string, args ...any) error {
	return &DecodeError{Reason: fmt.Sprintf(format, args...)}
}

// Decode parses an image produced by Encode, validating magic, version,
// section bounds, blob references and the trailing CRC before trusting any
// of it. The returned snapshot carries Scheme == nil (see the encoding
// comment in encode.go: scheme payloads are deliberately not persisted;
// every scheme restores fresh from a nil payload).
func Decode(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeBytes(data)
}

// DecodeBytes is Decode over an in-memory image.
func DecodeBytes(data []byte) (*Snapshot, error) {
	if len(data) < 20 { // magic+version+metaLen+blobCount+crc
		return nil, decErr("image too short (%d bytes)", len(data))
	}
	if got := binary.LittleEndian.Uint32(data[0:]); got != Magic {
		return nil, decErr("bad magic %#x", got)
	}
	if got := binary.LittleEndian.Uint32(data[4:]); got != Version {
		return nil, decErr("unsupported version %d (have %d)", got, Version)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.Checksum(body, codecCRC); got != want {
		return nil, decErr("crc mismatch (%#x != %#x)", got, want)
	}

	metaLen := int(binary.LittleEndian.Uint32(data[8:]))
	if metaLen < 0 || metaLen > maxEncodedMeta || 12+metaLen+4 > len(body) {
		return nil, decErr("metadata length %d out of bounds", metaLen)
	}
	var meta encMeta
	if err := json.Unmarshal(data[12:12+metaLen], &meta); err != nil {
		return nil, decErr("metadata: %v", err)
	}
	off := 12 + metaLen
	nblobs := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if nblobs < 0 || nblobs > maxBlobCount {
		return nil, decErr("blob count %d out of bounds", nblobs)
	}
	if len(body)-off != nblobs*frameBytes {
		return nil, decErr("blob section is %d bytes, want %d", len(body)-off, nblobs*frameBytes)
	}
	blobs := make([][]uint32, nblobs)
	for b := 0; b < nblobs; b++ {
		words := make([]uint32, mmu.PageWords)
		for i := range words {
			words[i] = binary.LittleEndian.Uint32(data[off:])
			off += 4
		}
		blobs[b] = words
	}

	mem := &mmu.Snapshot{
		Pages:  meta.Pages,
		Frames: make(map[int32][]uint32, len(meta.FrameBlobs)),
	}
	for _, ref := range meta.FrameBlobs {
		if int(ref.Blob) >= nblobs {
			return nil, decErr("frame %d references blob %d of %d", ref.Frame, ref.Blob, nblobs)
		}
		if ref.Frame < 0 {
			return nil, decErr("negative frame index %d", ref.Frame)
		}
		mem.Frames[ref.Frame] = blobs[ref.Blob]
	}
	for _, pg := range meta.Pages {
		if _, ok := mem.Frames[pg.Frame]; !ok {
			return nil, decErr("page %#x references missing frame %d", pg.Base, pg.Frame)
		}
	}
	if len(meta.CPUs) == 0 {
		return nil, decErr("no vCPUs")
	}
	seen := make(map[uint32]bool, len(meta.CPUs))
	for _, c := range meta.CPUs {
		if c.TID == 0 || seen[c.TID] {
			return nil, decErr("bad vCPU tid %d", c.TID)
		}
		seen[c.TID] = true
	}

	return &Snapshot{
		VirtualTime: meta.VirtualTime,
		Mem:         mem,
		Scheme:      nil,
		CPUs:        meta.CPUs,
		Barriers:    meta.Barriers,
		Output:      meta.Output,
		HeapNext:    meta.HeapNext,
		NextTID:     meta.NextTID,
	}, nil
}
