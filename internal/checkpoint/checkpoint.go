// Package checkpoint defines the crash-consistent machine snapshot the
// engine captures at stop-the-world quiescence and replays during rollback
// recovery.
//
// A capture happens inside a quiet exclusive section: every vCPU is either
// parked between translation blocks or blocked in a guest syscall outside
// its execution region, so the cut it records — registers, memory pages,
// scheme state, synchronization topology, output log — is a state the
// machine really passed through. Nothing mid-SC, mid-transaction or
// mid-store can leak into it.
//
// Two deliberate omissions keep restores simple and architecturally sound:
//
//   - Exclusive monitors are not captured. A restore disarms every monitor,
//     which at worst makes the first SC after resumption fail spuriously —
//     behavior LL/SC guests must tolerate anyway.
//   - Futex and barrier waiter queues are not serialized. A blocked vCPU is
//     recorded through its Blocked marker: its registers still hold the
//     syscall arguments and its pc already points at the post-svc
//     continuation, so the restore simply re-executes the syscall, which
//     re-joins the rebuilt queue (or returns immediately, per futex
//     semantics, when the rolled-back memory no longer matches).
package checkpoint

import (
	"atomemu/internal/arch"
	"atomemu/internal/mmu"
	"atomemu/internal/stats"
)

// Blocked describes a vCPU parked in a blocking guest syscall at capture
// time.
type Blocked struct {
	Active  bool
	Syscall uint32 // syscall number to re-execute on resume
	Kind    string // "futex", "barrier" or "join"
	Addr    uint32 // futex word, barrier cell, or joined tid
}

// VCPU is one vCPU's architectural and accounting state.
type VCPU struct {
	TID      uint32
	PC       uint32
	Slots    []uint32
	Flags    arch.Flags
	Clock    uint64
	Stats    stats.CPU
	Halted   bool
	ExitCode uint32
	Blocked  Blocked
}

// Barrier re-creates one guest barrier. Arrival counts are not captured:
// every arrived-but-unreleased waiter was parked at the cut, and re-arrives
// when its barrier_wait syscall is re-executed.
type Barrier struct {
	Addr  uint32
	Total int
}

// Snapshot is one consistent machine cut. It is immutable once captured and
// stays valid across multiple restores.
type Snapshot struct {
	// VirtualTime is the machine's virtual time at the cut (max over vCPU
	// clocks).
	VirtualTime uint64
	// Mem is the page table and frame contents (incremental: clean frames
	// are shared with the previous snapshot).
	Mem *mmu.Snapshot
	// Scheme is the emulation scheme's private payload (core.Scheme.Snapshot).
	Scheme any
	// CPUs lists every vCPU that existed at the cut, in spawn order.
	CPUs []VCPU
	// Barriers lists the initialized guest barriers.
	Barriers []Barrier
	// Output is the guest output log up to the cut.
	Output []uint32
	// HeapNext and NextTID restore the allocation cursors, so post-restore
	// mmaps and spawns reproduce the rolled-back address/tid assignments.
	HeapNext uint32
	NextTID  uint32
}
