package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"atomemu/internal/mmu"
)

// This file gives Snapshot a stable, versioned binary encoding so a
// checkpoint can outlive the process that captured it (atomemud's durable
// job spills, warm-pool templates, offline repro bundles).
//
// Container layout, all integers little-endian:
//
//	u32 magic "ACKP"    u32 version
//	u32 metaLen         metaLen bytes of JSON metadata
//	u32 blobCount       blobCount × PageWords*4 bytes of frame contents
//	u32 crc             CRC32C over everything before it
//
// The metadata carries every architectural field (vCPUs, barriers, output,
// cursors) plus the page table; frame contents live in the blob section,
// deduplicated by content hash — the incremental capture path shares
// unwritten frame slices across snapshots, and content addressing keeps
// that sharing (and any coincidental duplicates, like all-zero pages) from
// being re-serialized per page.
//
// One deliberate omission: the emulation scheme's private payload
// (Snapshot.Scheme) is NOT encoded, and a decoded snapshot carries
// Scheme == nil. The payload is host-side acceleration state, not guest
// state — HST hash-table entries are store-test metadata and TM slot words
// are version counters — and every scheme's Restore treats an unrecognized
// payload as "start fresh", which composes with the restore path already
// disarming all exclusive monitors: the first SC after resumption may fail
// spuriously, which LL/SC guests must tolerate anyway. Dropping it keeps
// the format scheme-independent and stable across scheme evolution.

// Encoding identity.
const (
	Magic   = 0x504b4341 // "ACKP" little-endian
	Version = 1

	frameBytes = mmu.PageWords * 4
	// maxEncodedMeta bounds the metadata section a decoder will accept.
	maxEncodedMeta = 256 << 20
	// maxBlobCount bounds the frame section (1M frames = 4 GiB of guest
	// memory, far beyond the 32-bit guest this models).
	maxBlobCount = 1 << 20
)

var codecCRC = crc32.MakeTable(crc32.Castagnoli)

// encMeta is the JSON metadata section. mmu.PageSnap's Frame field is
// reused as-is: in the encoded form it indexes the original frame numbering
// preserved in FrameBlobs, which maps each frame to its content blob.
type encMeta struct {
	VirtualTime uint64         `json:"virtual_time"`
	HeapNext    uint32         `json:"heap_next"`
	NextTID     uint32         `json:"next_tid"`
	CPUs        []VCPU         `json:"cpus"`
	Barriers    []Barrier      `json:"barriers,omitempty"`
	Output      []uint32       `json:"output,omitempty"`
	Pages       []mmu.PageSnap `json:"pages"`
	FrameBlobs  []frameBlobRef `json:"frame_blobs"`
}

type frameBlobRef struct {
	Frame int32  `json:"frame"`
	Blob  uint32 `json:"blob"`
}

// EncodeBytes renders snap to its versioned binary form in memory — the
// shape checkpoint hand-offs want (HTTP bodies, router-side caches), where
// the image is shipped whole rather than streamed.
func EncodeBytes(snap *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, snap); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Encode writes snap in the versioned binary format. The snapshot is read
// but never mutated, so encoding may run concurrently with further
// captures and restores of the same (immutable) snapshot.
func Encode(w io.Writer, snap *Snapshot) error {
	if snap == nil || snap.Mem == nil {
		return fmt.Errorf("checkpoint: encode: nil snapshot")
	}
	meta := encMeta{
		VirtualTime: snap.VirtualTime,
		HeapNext:    snap.HeapNext,
		NextTID:     snap.NextTID,
		CPUs:        snap.CPUs,
		Barriers:    snap.Barriers,
		Output:      snap.Output,
		Pages:       snap.Mem.Pages,
	}

	// Content-address the frames: identical contents (shared incremental
	// slices, zero pages) serialize once. Iterate frames in index order so
	// the encoding is deterministic.
	frames := make([]int32, 0, len(snap.Mem.Frames))
	for f := range snap.Mem.Frames {
		frames = append(frames, f)
	}
	sort.Slice(frames, func(i, k int) bool { return frames[i] < frames[k] })
	var blobs [][]uint32
	blobByHash := make(map[[sha256.Size]byte]uint32, len(frames))
	for _, f := range frames {
		words := snap.Mem.Frames[f]
		if len(words) != mmu.PageWords {
			return fmt.Errorf("checkpoint: encode: frame %d has %d words, want %d", f, len(words), mmu.PageWords)
		}
		h := hashFrame(words)
		idx, ok := blobByHash[h]
		if !ok {
			idx = uint32(len(blobs))
			blobs = append(blobs, words)
			blobByHash[h] = idx
		}
		meta.FrameBlobs = append(meta.FrameBlobs, frameBlobRef{Frame: f, Blob: idx})
	}

	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return err
	}

	var buf bytes.Buffer
	buf.Grow(16 + len(metaJSON) + len(blobs)*frameBytes)
	var u32 [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf.Write(u32[:])
	}
	put(Magic)
	put(Version)
	put(uint32(len(metaJSON)))
	buf.Write(metaJSON)
	put(uint32(len(blobs)))
	wordBuf := make([]byte, frameBytes)
	for _, words := range blobs {
		for i, w := range words {
			binary.LittleEndian.PutUint32(wordBuf[i*4:], w)
		}
		buf.Write(wordBuf)
	}
	put(crc32.Checksum(buf.Bytes(), codecCRC))
	_, err = w.Write(buf.Bytes())
	return err
}

func hashFrame(words []uint32) [sha256.Size]byte {
	b := make([]byte, len(words)*4)
	for i, w := range words {
		binary.LittleEndian.PutUint32(b[i*4:], w)
	}
	return sha256.Sum256(b)
}
