package mpk

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestKeyPoolExhaustion(t *testing.T) {
	u := New()
	if u.FreeKeys() != 15 {
		t.Fatalf("fresh unit has %d keys, want 15", u.FreeKeys())
	}
	var keys []uint8
	for {
		k, ok := u.AllocKey()
		if !ok {
			break
		}
		if k == 0 || k >= NumKeys {
			t.Fatalf("allocated invalid key %d", k)
		}
		keys = append(keys, k)
	}
	if len(keys) != 15 {
		t.Fatalf("allocated %d keys, want 15", len(keys))
	}
	seen := map[uint8]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("key %d allocated twice", k)
		}
		seen[k] = true
	}
	// Free one, get it back.
	u.FreeKey(keys[7])
	k, ok := u.AllocKey()
	if !ok || k != keys[7] {
		t.Fatalf("freed key not reallocated: %d, %v", k, ok)
	}
}

func TestFreeKeyIgnoresInvalid(t *testing.T) {
	u := New()
	u.FreeKey(0)
	u.FreeKey(200)
	if u.FreeKeys() != 15 {
		t.Fatalf("invalid FreeKey changed the pool: %d", u.FreeKeys())
	}
}

func TestTagUntagKeyOf(t *testing.T) {
	u := New()
	const page = 0x2000_3000
	if u.KeyOf(page+0x123) != 0 {
		t.Fatal("untagged page should report key 0")
	}
	u.TagPage(page, 5)
	if got := u.KeyOf(page + 0xffc); got != 5 {
		t.Fatalf("KeyOf = %d, want 5", got)
	}
	// Addresses on neighbouring pages are unaffected.
	if u.KeyOf(page-4) != 0 || u.KeyOf(page+0x1000) != 0 {
		t.Fatal("tag leaked to neighbouring pages")
	}
	u.UntagPage(page)
	if u.KeyOf(page) != 0 {
		t.Fatal("untag did not clear the key")
	}
}

func TestUntagUnknownPageHarmless(t *testing.T) {
	u := New()
	u.UntagPage(0x7fff_f000) // never tagged; must not panic or allocate
}

func TestQuickTagIsPageGranular(t *testing.T) {
	u := New()
	f := func(pageBits uint16, off uint16) bool {
		page := uint32(pageBits) << 12
		u.TagPage(page, 3)
		ok := u.KeyOf(page+uint32(off)%4096) == 3
		u.UntagPage(page)
		return ok && u.KeyOf(page) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	u := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if k, ok := u.AllocKey(); ok {
					u.FreeKey(k)
				}
			}
		}()
	}
	wg.Wait()
	if u.FreeKeys() != 15 {
		t.Fatalf("pool leaked: %d keys free, want 15", u.FreeKeys())
	}
}
