// Package mpk is a software model of Intel Memory Protection Keys, the
// hardware the paper's §VI discussion proposes for a faster PST: pages are
// tagged with one of 16 protection keys, and write permission per key is a
// thread-local register (PKRU) flipped by an unprivileged instruction —
// no kernel entry, no page-table update, no TLB shootdown.
//
// The model keeps the two properties the pst-mpk scheme depends on:
// a per-page key tag readable on every store (hardware does this for free
// in the TLB; here it is one atomic load), and a hard limit of 16 keys,
// which is exactly the scalability ceiling the paper's discussion predicts.
package mpk

import (
	"sync"
	"sync/atomic"
)

// NumKeys is the architectural number of protection keys. Key 0 is the
// default key: always writable, never allocated.
const NumKeys = 16

// Unit is one machine's protection-key state.
type Unit struct {
	// dir maps guest pages to key+1 (0 = untagged), two-level like a TLB.
	dir [1 << 10]atomic.Pointer[keyLeaf]

	mu   sync.Mutex
	free []uint8 // allocatable keys (1..15)
}

type keyLeaf struct {
	keys [1 << 10]atomic.Uint32
}

// New creates a Unit with all 15 allocatable keys free.
func New() *Unit {
	u := &Unit{}
	for k := uint8(1); k < NumKeys; k++ {
		u.free = append(u.free, k)
	}
	return u
}

// AllocKey takes a key from the pool; ok is false when all 15 are in use —
// the fallback point the paper's discussion warns about.
func (u *Unit) AllocKey() (uint8, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	n := len(u.free)
	if n == 0 {
		return 0, false
	}
	k := u.free[n-1]
	u.free = u.free[:n-1]
	return k, true
}

// FreeKey returns a key to the pool.
func (u *Unit) FreeKey(k uint8) {
	if k == 0 || k >= NumKeys {
		return
	}
	u.mu.Lock()
	u.free = append(u.free, k)
	u.mu.Unlock()
}

// FreeKeys reports how many keys remain allocatable.
func (u *Unit) FreeKeys() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.free)
}

func (u *Unit) leafFor(page uint32, create bool) *keyLeaf {
	idx := page >> 22
	l := u.dir[idx].Load()
	if l == nil && create {
		l = new(keyLeaf)
		if !u.dir[idx].CompareAndSwap(nil, l) {
			l = u.dir[idx].Load()
		}
	}
	return l
}

// TagPage assigns a key to the page containing addr.
func (u *Unit) TagPage(page uint32, key uint8) {
	u.leafFor(page, true).keys[page>>12&0x3ff].Store(uint32(key) + 1)
}

// UntagPage clears the page's key.
func (u *Unit) UntagPage(page uint32) {
	if l := u.leafFor(page, false); l != nil {
		l.keys[page>>12&0x3ff].Store(0)
	}
}

// Reset clears every page tag and returns all 15 keys to the pool — the
// checkpoint-restore path: restored monitors are disarmed, so no page may
// stay tagged and no key may stay allocated. Call only at quiescence.
func (u *Unit) Reset() {
	for di := range u.dir {
		l := u.dir[di].Load()
		if l == nil {
			continue
		}
		for pi := range l.keys {
			l.keys[pi].Store(0)
		}
	}
	u.mu.Lock()
	u.free = u.free[:0]
	for k := uint8(1); k < NumKeys; k++ {
		u.free = append(u.free, k)
	}
	u.mu.Unlock()
}

// KeyOf returns the key tagged on addr's page, or 0 for untagged pages.
// This is the store fast path: one (usually nil) pointer load plus one
// atomic load, the software stand-in for the hardware's free TLB check.
func (u *Unit) KeyOf(addr uint32) uint8 {
	l := u.dir[addr>>22].Load()
	if l == nil {
		return 0
	}
	v := l.keys[addr>>12&0x3ff].Load()
	if v == 0 {
		return 0
	}
	return uint8(v - 1)
}
