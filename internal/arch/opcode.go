package arch

import "fmt"

// Opcode identifies a GA32 instruction. The opcode occupies bits [31:24] of
// every encoding.
type Opcode uint8

// GA32 opcodes. The groups mirror the instruction formats in format.go.
const (
	// Three-register ALU: rd = rn OP rm.
	ADD Opcode = iota
	SUB
	RSB
	AND
	ORR
	EOR
	MUL
	UDIV
	SDIV
	LSL
	LSR
	ASR
	ADDS // flag-setting add
	SUBS // flag-setting subtract

	// Register+immediate ALU: rd = rn OP imm12 (imm zero-extended).
	ADDI
	SUBI
	RSBI
	ANDI
	ORRI
	EORI
	LSLI
	LSRI
	ASRI
	ADDSI
	SUBSI

	// Moves and compares.
	MOV  // rd = rm
	MVN  // rd = ^rm
	MOVI // rd = imm12
	MOVW // rd = imm16 (low half, upper cleared)
	MOVT // rd = (rd & 0xffff) | imm16<<16
	CMP  // flags from rn - rm
	CMPI // flags from rn - imm12
	CMN  // flags from rn + rm
	TST  // flags from rn & rm

	// Memory. Offsets are byte offsets; word accesses must be 4-aligned.
	LDR   // rd = mem32[rn + imm12]
	STR   // mem32[rn + imm12] = rd
	LDRB  // rd = mem8[rn + imm12]
	STRB  // mem8[rn + imm12] = rd&0xff
	LDRR  // rd = mem32[rn + rm]
	STRR  // mem32[rn + rm] = rd
	LDRBR // rd = mem8[rn + rm]
	STRBR // mem8[rn + rm] = rd&0xff

	// Exclusive (LL/SC) accesses.
	LDREX // rd = mem32[rn], begin exclusive monitor on rn
	STREX // rd = 0 and mem32[rn] = rm if monitor held, else rd = 1
	CLREX // clear exclusive monitor
	DMB   // full memory barrier

	// Control flow.
	B   // conditional branch: pc += 4 + off*4 if cond
	BL  // branch and link: lr = pc+4; pc += 4 + off*4
	BX  // branch to register: pc = rm
	SVC // supervisor call, number in imm12
	HLT // halt this vCPU
	NOP
	YIELD // hint: yield to other vCPUs

	NumOpcodes
)

// Format describes which encoding fields an opcode uses.
type Format uint8

// Instruction formats.
const (
	Fmt3R   Format = iota // rd, rn, rm
	Fmt2RI                // rd, rn, imm12
	Fmt2R                 // rd, rm          (MOV, MVN)
	FmtRI16               // rd, imm16       (MOVW, MOVT)
	FmtRI12               // rd, imm12       (MOVI)
	FmtCmpR               // rn, rm          (CMP, CMN, TST)
	FmtCmpI               // rn, imm12       (CMPI)
	FmtMem                // rd, rn, imm12   (LDR/STR/LDRB/STRB)
	FmtMemR               // rd, rn, rm      (LDRR/STRR/...)
	FmtEx                 // LDREX: rd, rn; STREX: rd, rn, rm
	FmtB                  // cond, off20
	FmtBL                 // off24
	FmtBX                 // rm
	FmtSVC                // imm12
	FmtNone               // no operands
)

type opInfo struct {
	name string
	fmt  Format
}

var opTable = [NumOpcodes]opInfo{
	ADD:   {"add", Fmt3R},
	SUB:   {"sub", Fmt3R},
	RSB:   {"rsb", Fmt3R},
	AND:   {"and", Fmt3R},
	ORR:   {"orr", Fmt3R},
	EOR:   {"eor", Fmt3R},
	MUL:   {"mul", Fmt3R},
	UDIV:  {"udiv", Fmt3R},
	SDIV:  {"sdiv", Fmt3R},
	LSL:   {"lsl", Fmt3R},
	LSR:   {"lsr", Fmt3R},
	ASR:   {"asr", Fmt3R},
	ADDS:  {"adds", Fmt3R},
	SUBS:  {"subs", Fmt3R},
	ADDI:  {"addi", Fmt2RI},
	SUBI:  {"subi", Fmt2RI},
	RSBI:  {"rsbi", Fmt2RI},
	ANDI:  {"andi", Fmt2RI},
	ORRI:  {"orri", Fmt2RI},
	EORI:  {"eori", Fmt2RI},
	LSLI:  {"lsli", Fmt2RI},
	LSRI:  {"lsri", Fmt2RI},
	ASRI:  {"asri", Fmt2RI},
	ADDSI: {"addsi", Fmt2RI},
	SUBSI: {"subsi", Fmt2RI},
	MOV:   {"mov", Fmt2R},
	MVN:   {"mvn", Fmt2R},
	MOVI:  {"movi", FmtRI12},
	MOVW:  {"movw", FmtRI16},
	MOVT:  {"movt", FmtRI16},
	CMP:   {"cmp", FmtCmpR},
	CMPI:  {"cmpi", FmtCmpI},
	CMN:   {"cmn", FmtCmpR},
	TST:   {"tst", FmtCmpR},
	LDR:   {"ldr", FmtMem},
	STR:   {"str", FmtMem},
	LDRB:  {"ldrb", FmtMem},
	STRB:  {"strb", FmtMem},
	LDRR:  {"ldrr", FmtMemR},
	STRR:  {"strr", FmtMemR},
	LDRBR: {"ldrbr", FmtMemR},
	STRBR: {"strbr", FmtMemR},
	LDREX: {"ldrex", FmtEx},
	STREX: {"strex", FmtEx},
	CLREX: {"clrex", FmtNone},
	DMB:   {"dmb", FmtNone},
	B:     {"b", FmtB},
	BL:    {"bl", FmtBL},
	BX:    {"bx", FmtBX},
	SVC:   {"svc", FmtSVC},
	HLT:   {"hlt", FmtNone},
	NOP:   {"nop", FmtNone},
	YIELD: {"yield", FmtNone},
}

func (o Opcode) String() string {
	if o < NumOpcodes {
		return opTable[o].name
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Opcode) Valid() bool { return o < NumOpcodes }

// Format returns the encoding format of o.
func (o Opcode) Format() Format {
	if o < NumOpcodes {
		return opTable[o].fmt
	}
	return FmtNone
}

// IsStore reports whether o writes guest memory through the regular
// (non-exclusive) store path. These are the instructions the paper's
// store-test schemes must instrument.
func (o Opcode) IsStore() bool {
	switch o {
	case STR, STRB, STRR, STRBR:
		return true
	}
	return false
}

// IsLoad reports whether o reads guest memory through the regular load path.
func (o Opcode) IsLoad() bool {
	switch o {
	case LDR, LDRB, LDRR, LDRBR:
		return true
	}
	return false
}

// IsBranch reports whether o transfers control.
func (o Opcode) IsBranch() bool {
	switch o {
	case B, BL, BX:
		return true
	}
	return false
}

// EndsBlock reports whether o terminates a translation block: control
// transfers, the exclusive pair boundaries the DBT must observe, system
// calls and halts.
func (o Opcode) EndsBlock() bool {
	switch o {
	case B, BL, BX, SVC, HLT, YIELD:
		return true
	}
	return false
}

// OpcodeByName resolves an assembler mnemonic to its opcode.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opByName[name]
	return op, ok
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := Opcode(0); op < NumOpcodes; op++ {
		m[opTable[op].name] = op
	}
	return m
}()
