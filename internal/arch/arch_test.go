package arch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{R0: "r0", R7: "r7", R12: "r12", SP: "sp", LR: "lr", PC: "pc"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", uint8(r), got, want)
		}
	}
	if Reg(16).Valid() {
		t.Error("Reg(16) should be invalid")
	}
}

func TestCondTest(t *testing.T) {
	cases := []struct {
		f    Flags
		cond Cond
		want bool
	}{
		{Flags{Z: true}, EQ, true},
		{Flags{Z: false}, EQ, false},
		{Flags{Z: false}, NE, true},
		{Flags{C: true}, CS, true},
		{Flags{C: false}, CC, true},
		{Flags{N: true}, MI, true},
		{Flags{N: false}, PL, true},
		{Flags{V: true}, VS, true},
		{Flags{V: false}, VC, true},
		{Flags{C: true, Z: false}, HI, true},
		{Flags{C: true, Z: true}, HI, false},
		{Flags{C: false}, LS, true},
		{Flags{N: true, V: true}, GE, true},
		{Flags{N: true, V: false}, LT, true},
		{Flags{N: false, V: false, Z: false}, GT, true},
		{Flags{Z: true}, GT, false},
		{Flags{Z: true}, LE, true},
		{Flags{N: true, V: false}, LE, true},
		{Flags{}, AL, true},
		{Flags{N: true, Z: true, C: true, V: true}, AL, true},
	}
	for _, c := range cases {
		if got := c.f.Test(c.cond); got != c.want {
			t.Errorf("%+v.Test(%s) = %v, want %v", c.f, c.cond, got, c.want)
		}
	}
}

func TestFlagsPackRoundTrip(t *testing.T) {
	for w := uint32(0); w < 16; w++ {
		if got := UnpackFlags(w).Pack(); got != w {
			t.Errorf("UnpackFlags(%d).Pack() = %d", w, got)
		}
	}
}

func TestEncodeDecodeSpecific(t *testing.T) {
	cases := []Instruction{
		{Op: ADD, Rd: R0, Rn: R1, Rm: R2},
		{Op: SUBS, Rd: R3, Rn: R3, Rm: R4},
		{Op: ADDI, Rd: R5, Rn: R5, Imm: 4095},
		{Op: MOVI, Rd: R9, Imm: 0},
		{Op: MOVW, Rd: R1, Imm: 0xffff},
		{Op: MOVT, Rd: R1, Imm: 0x8000},
		{Op: MOV, Rd: R2, Rm: SP},
		{Op: MVN, Rd: R2, Rm: R0},
		{Op: CMP, Rn: R4, Rm: R5},
		{Op: CMPI, Rn: R4, Imm: 17},
		{Op: TST, Rn: R0, Rm: R0},
		{Op: LDR, Rd: R0, Rn: SP, Imm: 8},
		{Op: STR, Rd: R1, Rn: R2, Imm: 0},
		{Op: LDRB, Rd: R1, Rn: R2, Imm: 3},
		{Op: STRR, Rd: R1, Rn: R2, Rm: R3},
		{Op: LDREX, Rd: R0, Rn: R1},
		{Op: STREX, Rd: R2, Rn: R1, Rm: R0},
		{Op: CLREX},
		{Op: DMB},
		{Op: B, Cond: NE, Off: -1},
		{Op: B, Cond: AL, Off: MaxOff20},
		{Op: B, Cond: EQ, Off: MinOff20},
		{Op: BL, Off: MaxOff24},
		{Op: BL, Off: MinOff24},
		{Op: BX, Rm: LR},
		{Op: SVC, Imm: 42},
		{Op: HLT},
		{Op: NOP},
		{Op: YIELD},
	}
	for _, in := range cases {
		w := in.Encode()
		out, err := Decode(w)
		if err != nil {
			t.Errorf("Decode(Encode(%v)) error: %v", in, err)
			continue
		}
		if out != in {
			t.Errorf("round trip: encoded %v, decoded %v (word %#08x)", in, out, w)
		}
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	if _, err := Decode(0xff000000); err == nil {
		t.Error("Decode of undefined opcode byte should fail")
	}
}

func TestDecodeInvalidCond(t *testing.T) {
	// Opcode B with condition field 15 (beyond AL=14).
	w := uint32(B)<<24 | 15<<20
	if _, err := Decode(w); err == nil {
		t.Error("Decode of invalid branch condition should fail")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Instruction{
		{Op: NumOpcodes},
		{Op: ADDI, Rd: R0, Rn: R0, Imm: 4096},
		{Op: ADDI, Rd: R0, Rn: R0, Imm: -1},
		{Op: MOVW, Rd: R0, Imm: 0x10000},
		{Op: B, Cond: NumConds, Off: 0},
		{Op: B, Cond: AL, Off: MaxOff20 + 1},
		{Op: BL, Off: MinOff24 - 1},
		{Op: SVC, Imm: 5000},
		{Op: ADD, Rd: Reg(16), Rn: R0, Rm: R0},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", in)
		}
	}
}

// randomInstr builds a random valid instruction for property testing.
func randomInstr(r *rand.Rand) Instruction {
	op := Opcode(r.Intn(int(NumOpcodes)))
	in := Instruction{Op: op}
	reg := func() Reg { return Reg(r.Intn(NumRegs)) }
	switch op.Format() {
	case Fmt3R, FmtMemR, FmtEx:
		in.Rd, in.Rn, in.Rm = reg(), reg(), reg()
	case Fmt2RI, FmtMem:
		in.Rd, in.Rn, in.Imm = reg(), reg(), int32(r.Intn(4096))
	case Fmt2R:
		in.Rd, in.Rm = reg(), reg()
	case FmtRI16:
		in.Rd, in.Imm = reg(), int32(r.Intn(65536))
	case FmtRI12:
		in.Rd, in.Imm = reg(), int32(r.Intn(4096))
	case FmtCmpR:
		in.Rn, in.Rm = reg(), reg()
	case FmtCmpI:
		in.Rn, in.Imm = reg(), int32(r.Intn(4096))
	case FmtB:
		in.Cond = Cond(r.Intn(int(NumConds)))
		in.Off = int32(r.Intn(MaxOff20-MinOff20+1)) + MinOff20
	case FmtBL:
		in.Off = int32(r.Intn(MaxOff24-MinOff24+1)) + MinOff24
	case FmtBX:
		in.Rm = reg()
	case FmtSVC:
		in.Imm = int32(r.Intn(4096))
	}
	return in
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randomInstr(r)
		out, err := Decode(in.Encode())
		if err != nil {
			t.Logf("decode error for %v: %v", in, err)
			return false
		}
		// STREX aside, Rm of FmtEx LDREX is don't-care in semantics but we
		// preserve it bit-exactly, so plain equality must hold.
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true
		}
		// Anything that decodes must validate and re-encode decodably.
		if err := in.Validate(); err != nil {
			t.Logf("decoded invalid instruction %v from %#08x: %v", in, w, err)
			return false
		}
		round, err := Decode(in.Encode())
		return err == nil && round == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestBranchTargetOffsetInverse(t *testing.T) {
	f := func(pcWords uint16, offRaw int32) bool {
		pc := uint32(pcWords) * 4
		off := offRaw % (MaxOff20 + 1)
		in := Instruction{Op: B, Cond: AL, Off: off}
		target := in.BranchTarget(pc)
		return OffsetFor(pc, target) == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpcodeByName(t *testing.T) {
	for op := Opcode(0); op < NumOpcodes; op++ {
		got, ok := OpcodeByName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpcodeByName("bogus"); ok {
		t.Error("OpcodeByName should reject unknown mnemonics")
	}
}

func TestStoreLoadClassification(t *testing.T) {
	stores := []Opcode{STR, STRB, STRR, STRBR}
	for _, op := range stores {
		if !op.IsStore() {
			t.Errorf("%s should be classified as store", op)
		}
	}
	if STREX.IsStore() {
		t.Error("STREX must not be a regular store (it is the SC)")
	}
	loads := []Opcode{LDR, LDRB, LDRR, LDRBR}
	for _, op := range loads {
		if !op.IsLoad() {
			t.Errorf("%s should be classified as load", op)
		}
	}
	if LDREX.IsLoad() {
		t.Error("LDREX must not be a regular load (it is the LL)")
	}
}

func TestEndsBlock(t *testing.T) {
	enders := []Opcode{B, BL, BX, SVC, HLT, YIELD}
	for _, op := range enders {
		if !op.EndsBlock() {
			t.Errorf("%s should end a translation block", op)
		}
	}
	for _, op := range []Opcode{ADD, LDR, STREX, LDREX, DMB, CLREX} {
		if op.EndsBlock() {
			t.Errorf("%s should not end a translation block", op)
		}
	}
}

func TestDisassemblySamples(t *testing.T) {
	cases := map[string]Instruction{
		"add r0, r1, r2":     {Op: ADD, Rd: R0, Rn: R1, Rm: R2},
		"addi r5, r5, #12":   {Op: ADDI, Rd: R5, Rn: R5, Imm: 12},
		"ldr r0, [sp, #8]":   {Op: LDR, Rd: R0, Rn: SP, Imm: 8},
		"strex r2, r0, [r1]": {Op: STREX, Rd: R2, Rn: R1, Rm: R0},
		"ldrex r0, [r1]":     {Op: LDREX, Rd: R0, Rn: R1},
		"bne -1":             {Op: B, Cond: NE, Off: -1},
		"b +4":               {Op: B, Cond: AL, Off: 4},
		"bx lr":              {Op: BX, Rm: LR},
		"svc #3":             {Op: SVC, Imm: 3},
		"ldrr r1, [r2, r3]":  {Op: LDRR, Rd: R1, Rn: R2, Rm: R3},
		"movw r1, #65535":    {Op: MOVW, Rd: R1, Imm: 65535},
		"cmp r4, r5":         {Op: CMP, Rn: R4, Rm: R5},
		"mov r2, sp":         {Op: MOV, Rd: R2, Rm: SP},
		"hlt":                {Op: HLT},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", in, got, want)
		}
	}
}
