package arch

import "fmt"

// Instruction is a decoded GA32 instruction. Which fields are meaningful
// depends on Op.Format(); Validate checks the combination.
type Instruction struct {
	Op   Opcode
	Rd   Reg   // destination (or status register for STREX)
	Rn   Reg   // first source / base address
	Rm   Reg   // second source / store value
	Imm  int32 // immediate: imm12 (0..4095) or imm16 (0..65535)
	Cond Cond  // condition for B
	Off  int32 // signed word offset for B (±2^19) and BL (±2^23)
}

// Field layout constants.
const (
	immMask12 = 0xfff
	immMask16 = 0xffff
	off20Bits = 20
	off24Bits = 24
)

// MaxOff20 and friends bound the branch offsets (in words).
const (
	MaxOff20 = 1<<(off20Bits-1) - 1
	MinOff20 = -(1 << (off20Bits - 1))
	MaxOff24 = 1<<(off24Bits-1) - 1
	MinOff24 = -(1 << (off24Bits - 1))
)

// Validate reports whether the instruction's operands fit its format.
func (i Instruction) Validate() error {
	if !i.Op.Valid() {
		return fmt.Errorf("arch: invalid opcode %d", uint8(i.Op))
	}
	checkReg := func(r Reg, what string) error {
		if !r.Valid() {
			return fmt.Errorf("arch: %s: invalid %s register %d", i.Op, what, uint8(r))
		}
		return nil
	}
	switch i.Op.Format() {
	case Fmt3R, FmtMemR:
		for _, p := range []struct {
			r    Reg
			what string
		}{{i.Rd, "rd"}, {i.Rn, "rn"}, {i.Rm, "rm"}} {
			if err := checkReg(p.r, p.what); err != nil {
				return err
			}
		}
	case Fmt2RI, FmtMem:
		if err := checkReg(i.Rd, "rd"); err != nil {
			return err
		}
		if err := checkReg(i.Rn, "rn"); err != nil {
			return err
		}
		if i.Imm < 0 || i.Imm > immMask12 {
			return fmt.Errorf("arch: %s: imm12 out of range: %d", i.Op, i.Imm)
		}
	case Fmt2R:
		if err := checkReg(i.Rd, "rd"); err != nil {
			return err
		}
		if err := checkReg(i.Rm, "rm"); err != nil {
			return err
		}
	case FmtRI16:
		if err := checkReg(i.Rd, "rd"); err != nil {
			return err
		}
		if i.Imm < 0 || i.Imm > immMask16 {
			return fmt.Errorf("arch: %s: imm16 out of range: %d", i.Op, i.Imm)
		}
	case FmtRI12:
		if err := checkReg(i.Rd, "rd"); err != nil {
			return err
		}
		if i.Imm < 0 || i.Imm > immMask12 {
			return fmt.Errorf("arch: %s: imm12 out of range: %d", i.Op, i.Imm)
		}
	case FmtCmpR:
		if err := checkReg(i.Rn, "rn"); err != nil {
			return err
		}
		if err := checkReg(i.Rm, "rm"); err != nil {
			return err
		}
	case FmtCmpI:
		if err := checkReg(i.Rn, "rn"); err != nil {
			return err
		}
		if i.Imm < 0 || i.Imm > immMask12 {
			return fmt.Errorf("arch: %s: imm12 out of range: %d", i.Op, i.Imm)
		}
	case FmtEx:
		if err := checkReg(i.Rd, "rd"); err != nil {
			return err
		}
		if err := checkReg(i.Rn, "rn"); err != nil {
			return err
		}
		if i.Op == STREX {
			if err := checkReg(i.Rm, "rm"); err != nil {
				return err
			}
		}
	case FmtB:
		if !i.Cond.Valid() {
			return fmt.Errorf("arch: b: invalid condition %d", uint8(i.Cond))
		}
		if i.Off < MinOff20 || i.Off > MaxOff20 {
			return fmt.Errorf("arch: b: offset out of range: %d", i.Off)
		}
	case FmtBL:
		if i.Off < MinOff24 || i.Off > MaxOff24 {
			return fmt.Errorf("arch: bl: offset out of range: %d", i.Off)
		}
	case FmtBX:
		if err := checkReg(i.Rm, "rm"); err != nil {
			return err
		}
	case FmtSVC:
		if i.Imm < 0 || i.Imm > immMask12 {
			return fmt.Errorf("arch: svc: number out of range: %d", i.Imm)
		}
	case FmtNone:
		// no operands
	}
	return nil
}

// Encode packs the instruction into its 32-bit GA32 encoding.
// The instruction must be valid; Encode panics otherwise (callers that
// handle untrusted input should Validate first).
func (i Instruction) Encode() uint32 {
	if err := i.Validate(); err != nil {
		panic(err)
	}
	w := uint32(i.Op) << 24
	switch i.Op.Format() {
	case Fmt3R, FmtMemR:
		w |= uint32(i.Rd)<<20 | uint32(i.Rn)<<16 | uint32(i.Rm)<<12
	case Fmt2RI, FmtMem:
		w |= uint32(i.Rd)<<20 | uint32(i.Rn)<<16 | uint32(i.Imm)&immMask12
	case Fmt2R:
		w |= uint32(i.Rd)<<20 | uint32(i.Rm)<<12
	case FmtRI16:
		w |= uint32(i.Rd)<<20 | uint32(i.Imm)&immMask16
	case FmtRI12:
		w |= uint32(i.Rd)<<20 | uint32(i.Imm)&immMask12
	case FmtCmpR:
		w |= uint32(i.Rn)<<16 | uint32(i.Rm)<<12
	case FmtCmpI:
		w |= uint32(i.Rn)<<16 | uint32(i.Imm)&immMask12
	case FmtEx:
		w |= uint32(i.Rd)<<20 | uint32(i.Rn)<<16 | uint32(i.Rm)<<12
	case FmtB:
		w |= uint32(i.Cond)<<20 | uint32(i.Off)&((1<<off20Bits)-1)
	case FmtBL:
		w |= uint32(i.Off) & ((1 << off24Bits) - 1)
	case FmtBX:
		w |= uint32(i.Rm) << 12
	case FmtSVC:
		w |= uint32(i.Imm) & immMask12
	}
	return w
}

// Decode unpacks a 32-bit GA32 encoding.
func Decode(w uint32) (Instruction, error) {
	op := Opcode(w >> 24)
	if !op.Valid() {
		return Instruction{}, fmt.Errorf("arch: undefined opcode byte %#02x in %#08x", uint8(op), w)
	}
	i := Instruction{Op: op}
	switch op.Format() {
	case Fmt3R, FmtMemR, FmtEx:
		i.Rd = Reg(w >> 20 & 0xf)
		i.Rn = Reg(w >> 16 & 0xf)
		i.Rm = Reg(w >> 12 & 0xf)
	case Fmt2RI, FmtMem:
		i.Rd = Reg(w >> 20 & 0xf)
		i.Rn = Reg(w >> 16 & 0xf)
		i.Imm = int32(w & immMask12)
	case Fmt2R:
		i.Rd = Reg(w >> 20 & 0xf)
		i.Rm = Reg(w >> 12 & 0xf)
	case FmtRI16:
		i.Rd = Reg(w >> 20 & 0xf)
		i.Imm = int32(w & immMask16)
	case FmtRI12:
		i.Rd = Reg(w >> 20 & 0xf)
		i.Imm = int32(w & immMask12)
	case FmtCmpR:
		i.Rn = Reg(w >> 16 & 0xf)
		i.Rm = Reg(w >> 12 & 0xf)
	case FmtCmpI:
		i.Rn = Reg(w >> 16 & 0xf)
		i.Imm = int32(w & immMask12)
	case FmtB:
		cond := Cond(w >> 20 & 0xf)
		if !cond.Valid() {
			return Instruction{}, fmt.Errorf("arch: invalid branch condition %d in %#08x", uint8(cond), w)
		}
		i.Cond = cond
		i.Off = signExtend(w&((1<<off20Bits)-1), off20Bits)
	case FmtBL:
		i.Off = signExtend(w&((1<<off24Bits)-1), off24Bits)
	case FmtBX:
		i.Rm = Reg(w >> 12 & 0xf)
	case FmtSVC:
		i.Imm = int32(w & immMask12)
	case FmtNone:
		// nothing to decode
	}
	if err := i.Validate(); err != nil {
		return Instruction{}, err
	}
	return i, nil
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// BranchTarget computes the absolute target of a B/BL at address pc.
// GA32 branch semantics: target = pc + 4 + off*4.
func (i Instruction) BranchTarget(pc uint32) uint32 {
	return pc + InstrBytes + uint32(i.Off)*WordBytes
}

// OffsetFor computes the Off field that makes a branch at pc reach target.
func OffsetFor(pc, target uint32) int32 {
	return int32(target-pc-InstrBytes) / WordBytes
}

// String renders the instruction in GA32 assembly syntax.
func (i Instruction) String() string {
	switch i.Op.Format() {
	case Fmt3R:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rn, i.Rm)
	case Fmt2RI:
		return fmt.Sprintf("%s %s, %s, #%d", i.Op, i.Rd, i.Rn, i.Imm)
	case Fmt2R:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rm)
	case FmtRI16, FmtRI12:
		return fmt.Sprintf("%s %s, #%d", i.Op, i.Rd, i.Imm)
	case FmtCmpR:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rn, i.Rm)
	case FmtCmpI:
		return fmt.Sprintf("%s %s, #%d", i.Op, i.Rn, i.Imm)
	case FmtMem:
		return fmt.Sprintf("%s %s, [%s, #%d]", i.Op, i.Rd, i.Rn, i.Imm)
	case FmtMemR:
		return fmt.Sprintf("%s %s, [%s, %s]", i.Op, i.Rd, i.Rn, i.Rm)
	case FmtEx:
		if i.Op == STREX {
			return fmt.Sprintf("strex %s, %s, [%s]", i.Rd, i.Rm, i.Rn)
		}
		return fmt.Sprintf("ldrex %s, [%s]", i.Rd, i.Rn)
	case FmtB:
		if i.Cond == AL {
			return fmt.Sprintf("b %+d", i.Off)
		}
		return fmt.Sprintf("b%s %+d", i.Cond, i.Off)
	case FmtBL:
		return fmt.Sprintf("bl %+d", i.Off)
	case FmtBX:
		return fmt.Sprintf("bx %s", i.Rm)
	case FmtSVC:
		return fmt.Sprintf("svc #%d", i.Imm)
	default:
		return i.Op.String()
	}
}
