// Package arch defines GA32, the guest instruction-set architecture emulated
// by atomemu.
//
// GA32 is a 32-bit ARM-like RISC: sixteen general-purpose registers, NZCV
// condition flags, fixed 32-bit instruction encodings, and — central to this
// project — a Load-Linked/Store-Conditional pair (LDREX/STREX) with the same
// programmer-visible semantics as ARMv7's exclusive accesses. It stands in
// for ARMv7 in the reproduction of "Enhancing Atomic Instruction Emulation
// for Cross-ISA Dynamic Binary Translation" (CGO 2021): the paper's emulation
// schemes depend only on LL/SC semantics and store visibility, not on ARM's
// encoding quirks, so GA32 keeps the decoder honest (real bit-level
// encode/decode) while staying regular.
package arch

import "fmt"

// Reg names one of the sixteen GA32 general-purpose registers.
type Reg uint8

// Register aliases. SP, LR and PC follow the ARM convention.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // R13: stack pointer
	LR // R14: link register
	PC // R15: program counter
)

// NumRegs is the size of the architectural register file.
const NumRegs = 16

func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	case PC:
		return "pc"
	}
	if r < NumRegs {
		return fmt.Sprintf("r%d", uint8(r))
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Cond is a branch condition, tested against the NZCV flags.
type Cond uint8

// Branch conditions, ARM-style.
const (
	EQ Cond = iota // Z
	NE             // !Z
	CS             // C
	CC             // !C
	MI             // N
	PL             // !N
	VS             // V
	VC             // !V
	HI             // C && !Z
	LS             // !C || Z
	GE             // N == V
	LT             // N != V
	GT             // !Z && N == V
	LE             // Z || N != V
	AL             // always
	NumConds
)

var condNames = [NumConds]string{
	EQ: "eq", NE: "ne", CS: "cs", CC: "cc", MI: "mi", PL: "pl",
	VS: "vs", VC: "vc", HI: "hi", LS: "ls", GE: "ge", LT: "lt",
	GT: "gt", LE: "le", AL: "al",
}

func (c Cond) String() string {
	if c < NumConds {
		return condNames[c]
	}
	return fmt.Sprintf("cond?%d", uint8(c))
}

// Valid reports whether c names a condition.
func (c Cond) Valid() bool { return c < NumConds }

// Flags holds the guest NZCV condition flags.
type Flags struct {
	N, Z, C, V bool
}

// Test evaluates a condition against the flags.
func (f Flags) Test(c Cond) bool {
	switch c {
	case EQ:
		return f.Z
	case NE:
		return !f.Z
	case CS:
		return f.C
	case CC:
		return !f.C
	case MI:
		return f.N
	case PL:
		return !f.N
	case VS:
		return f.V
	case VC:
		return !f.V
	case HI:
		return f.C && !f.Z
	case LS:
		return !f.C || f.Z
	case GE:
		return f.N == f.V
	case LT:
		return f.N != f.V
	case GT:
		return !f.Z && f.N == f.V
	case LE:
		return f.Z || f.N != f.V
	case AL:
		return true
	}
	return false
}

// Pack encodes the flags into the low four bits (N=8, Z=4, C=2, V=1),
// matching the layout used by the engine's CPU state.
func (f Flags) Pack() uint32 {
	var w uint32
	if f.N {
		w |= 8
	}
	if f.Z {
		w |= 4
	}
	if f.C {
		w |= 2
	}
	if f.V {
		w |= 1
	}
	return w
}

// UnpackFlags is the inverse of Flags.Pack.
func UnpackFlags(w uint32) Flags {
	return Flags{N: w&8 != 0, Z: w&4 != 0, C: w&2 != 0, V: w&1 != 0}
}

// InstrBytes is the size in bytes of every GA32 instruction.
const InstrBytes = 4

// WordBytes is the guest word size in bytes.
const WordBytes = 4
