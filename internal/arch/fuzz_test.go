package arch

import "testing"

// FuzzDecode throws arbitrary 32-bit words at the decoder. Any word that
// decodes must be a valid instruction (Encode must not panic), and the
// decode→encode→decode round trip must be a fixed point: unused bit fields
// are the only information Encode may drop.
func FuzzDecode(f *testing.F) {
	seeds := []Instruction{
		{Op: MOVI, Rd: 3, Imm: 42},
		{Op: ADD, Rd: 1, Rn: 2, Rm: 3},
		{Op: LDR, Rd: 4, Rn: 5, Imm: 8},
		{Op: LDREX, Rd: 0, Rn: 1},
		{Op: STREX, Rd: 2, Rn: 3, Rm: 4},
		{Op: B, Cond: NE, Off: -12},
		{Op: SVC, Imm: 7},
	}
	for _, i := range seeds {
		f.Add(i.Encode())
	}
	f.Add(uint32(0))
	f.Add(^uint32(0))
	f.Add(uint32(0xff000000))
	f.Fuzz(func(t *testing.T, w uint32) {
		i, err := Decode(w)
		if err != nil {
			return
		}
		w2 := i.Encode() // must not panic: Decode validated
		j, err := Decode(w2)
		if err != nil {
			t.Fatalf("re-decode of %#08x (from %#08x) failed: %v", w2, w, err)
		}
		if i != j {
			t.Fatalf("round trip not stable: %#08x -> %+v -> %#08x -> %+v", w, i, w2, j)
		}
	})
}
