package workload

import (
	"strings"
	"testing"

	"atomemu/internal/core"
	"atomemu/internal/engine"
)

func TestTargetsWellFormed(t *testing.T) {
	ts := Targets()
	names := map[string]bool{}
	for _, tg := range ts {
		if tg.Name == "" || tg.Desc == "" || tg.Build == nil {
			t.Errorf("target %q incomplete", tg.Name)
		}
		if names[tg.Name] {
			t.Errorf("duplicate target %q", tg.Name)
		}
		names[tg.Name] = true
		if _, err := tg.Build(0x10000); err != nil {
			t.Errorf("%s does not build: %v", tg.Name, err)
		}
	}
	for _, want := range []string{"stack", "msqueue", "wsdeque", "seqlock", "hazard", "futexpc"} {
		if !names[want] {
			t.Errorf("missing target %q", want)
		}
	}
	if _, ok := TargetByName("msqueue"); !ok {
		t.Error("TargetByName(msqueue) failed")
	}
	if _, ok := TargetByName("doom"); ok {
		t.Error("unexpected target found")
	}
}

// runTarget executes a target under a scheme and applies its oracle.
// A non-nil error is the oracle's verdict (or a crash); exit-code 2
// (a guest's own "structure wedged" bail) is folded into the verdict.
func runTarget(tg Target, scheme string, threads, ops int) error {
	inst, err := tg.Build(0x10000)
	if err != nil {
		return err
	}
	cfg := engine.DefaultConfig(scheme)
	cfg.MaxGuestInstrs = 1_000_000_000
	m, err := engine.NewMachine(cfg)
	if err != nil {
		return err
	}
	if err := m.LoadImage(inst.Image); err != nil {
		return err
	}
	if inst.Setup != nil {
		if err := inst.Setup(m.Mem(), threads, ops); err != nil {
			return err
		}
	}
	if inst.Barrier != nil {
		if addr, n := inst.Barrier(threads); n > 0 {
			m.InitBarrier(addr, n)
		}
	}
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(inst.Entry, inst.Args(i, threads, ops)); err != nil {
			return err
		}
	}
	if err := m.Run(); err != nil {
		return err
	}
	if err := inst.Verify(m.Mem(), threads, ops); err != nil {
		return err
	}
	for _, c := range m.CPUs() {
		if code := c.ExitCode(); code != 0 {
			return &exitError{tid: c.TID(), code: code}
		}
	}
	return nil
}

type exitError struct {
	tid  uint32
	code uint32
}

func (e *exitError) Error() string {
	return "thread exited nonzero"
}

func TestLockfreeTargetsRunAndVerify(t *testing.T) {
	// Every adversary target under the reference strong scheme: the oracle
	// must hold, so any failure here is a workload bug, not a finding.
	cases := []struct{ name string; threads, ops int }{
		{"stack", 4, 200},
		{"msqueue", 4, 200},
		{"wsdeque", 4, 256},
		{"seqlock", 4, 150},
		{"hazard", 4, 100},
		{"futexpc", 4, 120},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tg, ok := TargetByName(tc.name)
			if !ok {
				t.Fatalf("no target %q", tc.name)
			}
			if err := runTarget(tg, "hst", tc.threads, tc.ops); err != nil {
				t.Fatalf("%s under hst: %v", tc.name, err)
			}
		})
	}
}

func TestLockfreeTargetsSingleThread(t *testing.T) {
	// Degenerate thread counts exercise the role-assignment edges (a lone
	// writer, an owner with no thieves, one producer + one consumer).
	for _, name := range []string{"stack", "msqueue", "wsdeque", "seqlock", "hazard"} {
		tg, _ := TargetByName(name)
		if err := runTarget(tg, "hst", 1, 50); err != nil {
			t.Errorf("%s single-thread: %v", name, err)
		}
	}
	tg, _ := TargetByName("futexpc")
	if err := runTarget(tg, "hst", 2, 50); err != nil {
		t.Errorf("futexpc two-thread: %v", err)
	}
}

func TestLockfreeTargetsWeakAtomicity(t *testing.T) {
	// The five lock-free targets only ever write their monitored words
	// through SC, so weak atomicity must suffice: an hst-weak oracle
	// failure is a real engine bug, and the adversary treats it as such.
	for _, name := range []string{"msqueue", "wsdeque", "seqlock", "hazard", "futexpc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tg, _ := TargetByName(name)
			threads := 4
			if err := runTarget(tg, "hst-weak", threads, 100); err != nil {
				t.Fatalf("%s under hst-weak: %v", name, err)
			}
		})
	}
}

// TestSpecOraclesAcrossAllSchemes is the cross-scheme oracle matrix: every
// miniparsec program under every emulation scheme at 8 vCPUs, each run
// judged by its Verify oracle. Tier-2 (meaningful under -race); skipped
// with -short to keep quick edit loops snappy.
func TestSpecOraclesAcrossAllSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-scheme oracle matrix skipped in -short mode")
	}
	for _, scheme := range core.SchemeNames() {
		scheme := scheme
		for _, spec := range Specs() {
			spec := spec
			t.Run(scheme+"/"+spec.Name, func(t *testing.T) {
				t.Parallel()
				runProgram(t, spec.Name, scheme, 8, 0.01)
			})
		}
	}
}

func TestTargetDescriptionsMentionOracle(t *testing.T) {
	// Every target description names what its oracle checks — the
	// adversary's reports lean on these strings.
	for _, tg := range Targets() {
		if len(tg.Desc) < 10 || strings.TrimSpace(tg.Desc) != tg.Desc {
			t.Errorf("target %s: implausible description %q", tg.Name, tg.Desc)
		}
	}
}
