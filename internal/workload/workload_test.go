package workload

import (
	"testing"

	"atomemu/internal/engine"
)

func TestSpecsWellFormed(t *testing.T) {
	specs := Specs()
	if len(specs) != 8 {
		t.Fatalf("want 8 programs, have %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate program %s", s.Name)
		}
		names[s.Name] = true
		if _, err := s.Build(0x10000); err != nil {
			t.Errorf("%s does not build: %v", s.Name, err)
		}
	}
	for _, want := range []string{"blackscholes", "bodytrack", "canneal", "facesim",
		"fluidanimate", "freqmine", "swaptions", "x264"} {
		if !names[want] {
			t.Errorf("missing PARSEC program %s", want)
		}
	}
}

func TestScalabilitySpecsExcludeCanneal(t *testing.T) {
	for _, s := range ScalabilitySpecs() {
		if s.Name == "canneal" {
			t.Fatal("canneal must be excluded from scalability runs")
		}
	}
	if len(ScalabilitySpecs()) != 7 {
		t.Fatalf("want 7 scalability programs")
	}
}

func TestSpecByName(t *testing.T) {
	if _, ok := SpecByName("fluidanimate"); !ok {
		t.Error("fluidanimate not found")
	}
	if _, ok := SpecByName("doom"); ok {
		t.Error("unexpected program found")
	}
}

func TestItemsPerThreadEven(t *testing.T) {
	spec, _ := SpecByName("bodytrack")
	per := spec.ItemsPerThread(8, 1.0)
	if per < 1 || per*8 > spec.TotalItems {
		t.Fatalf("per-thread items %d implausible", per)
	}
	if spec.ItemsPerThread(1000000, 1.0) < 1 {
		t.Fatal("per-thread items must be at least 1")
	}
}

// runProgram executes a workload under a scheme and verifies its invariant.
func runProgram(t *testing.T, name, scheme string, threads int, scale float64) (*Program, *engine.Machine, int) {
	t.Helper()
	spec, ok := SpecByName(name)
	if !ok {
		t.Fatalf("no such program %s", name)
	}
	prog, err := spec.Build(0x10000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig(scheme)
	cfg.MaxGuestInstrs = 1_000_000_000
	m, err := engine.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(prog.Image); err != nil {
		t.Fatal(err)
	}
	items := spec.ItemsPerThread(threads, scale)
	if spec.BarrierEvery > 0 {
		m.InitBarrier(prog.BarrierCell, threads)
	}
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(prog.Worker, uint32(items)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := prog.Verify(m.Mem(), threads, items); err != nil {
		t.Fatal(err)
	}
	return prog, m, items
}

func TestEveryProgramRunsAndVerifies(t *testing.T) {
	for _, spec := range Specs() {
		t.Run(spec.Name, func(t *testing.T) {
			runProgram(t, spec.Name, "hst", 4, 0.05)
		})
	}
}

func TestEverySchemeRunsFluidanimate(t *testing.T) {
	// The most atomic-intensive program across all eight schemes.
	for _, scheme := range []string{"pico-cas", "pico-st", "pico-htm", "hst", "hst-weak", "hst-htm", "pst", "pst-remap", "pst-mpk"} {
		t.Run(scheme, func(t *testing.T) {
			runProgram(t, "fluidanimate", scheme, 4, 0.02)
		})
	}
}

func TestStoreToLLSCRatiosMatchTableI(t *testing.T) {
	// The measured store:LL/SC ratio per program must land in its
	// Table I neighbourhood, and the suite must span roughly two orders
	// of magnitude (88x .. 3000x in the paper).
	type band struct{ lo, hi float64 }
	want := map[string]band{
		"blackscholes": {1500, 6000},
		"bodytrack":    {250, 1300},
		"canneal":      {30, 200},
		"facesim":      {300, 1500},
		"fluidanimate": {40, 200},
		"freqmine":     {200, 900},
		"swaptions":    {70, 350},
		"x264":         {1000, 4500},
	}
	var minRatio, maxRatio float64
	for _, spec := range Specs() {
		_, m, _ := runProgram(t, spec.Name, "hst", 2, 0.05)
		agg := m.AggregateStats()
		ratio := agg.StoreToLLSCRatio()
		b := want[spec.Name]
		if ratio < b.lo || ratio > b.hi {
			t.Errorf("%s store:LL/SC = %.0f, want within [%.0f, %.0f]", spec.Name, ratio, b.lo, b.hi)
		}
		if minRatio == 0 || ratio < minRatio {
			minRatio = ratio
		}
		if ratio > maxRatio {
			maxRatio = ratio
		}
	}
	if maxRatio/minRatio < 10 {
		t.Errorf("suite ratio spread %.1fx too narrow (paper: ~34x)", maxRatio/minRatio)
	}
}

func TestBarrierProgramsWithVariousThreadCounts(t *testing.T) {
	for _, threads := range []int{1, 3, 8} {
		runProgram(t, "bodytrack", "pico-cas", threads, 0.05)
	}
}

func TestCannealSerializesOnGlobalLock(t *testing.T) {
	// canneal's critical sections all hit lock cell 0.
	prog, m, items := runProgram(t, "canneal", "hst", 4, 0.05)
	want := prog.Spec.ExpectedSections(4, items)
	v, _ := m.Mem().ReadWordPriv(prog.Counter)
	if uint64(v) != want {
		t.Fatalf("counter = %d, want %d", v, want)
	}
}

func TestPSTSeesFalseSharingOnBodytrack(t *testing.T) {
	// bodytrack stores into the page holding its locks: under PST these
	// faults must be counted as false sharing.
	_, m, _ := runProgram(t, "bodytrack", "pst", 4, 0.05)
	agg := m.AggregateStats()
	if agg.FalseSharing == 0 {
		t.Error("expected false-sharing faults under PST on bodytrack")
	}
	if agg.PageFaults < agg.FalseSharing {
		t.Error("page faults must include false-sharing faults")
	}
}

func TestInvalidSpecsRejected(t *testing.T) {
	bad := Spec{Name: "bad", TotalItems: 10, AtomicEvery: 3, LockCells: 2}
	if _, err := bad.Build(0); err == nil {
		t.Error("non-power-of-two AtomicEvery must fail")
	}
	bad = Spec{Name: "bad", TotalItems: 10, AtomicEvery: 2, LockCells: 2, BarrierEvery: 7}
	if _, err := bad.Build(0); err == nil {
		t.Error("non-power-of-two BarrierEvery must fail")
	}
	bad = Spec{Name: "bad", TotalItems: 10, AtomicEvery: 2, LockCells: 2, StoresPerItem: 100}
	if _, err := bad.Build(0); err == nil {
		t.Error("oversized store count must fail")
	}
}

func TestAtomicKindString(t *testing.T) {
	if KindAdd.String() != "add" || KindLock.String() != "lock" {
		t.Error("kind strings")
	}
}

func TestDeterministicChecksumSingleThread(t *testing.T) {
	// With one thread the exit checksum is deterministic across runs.
	run := func() uint32 {
		_, m, _ := runProgram(t, "blackscholes", "pico-cas", 1, 0.02)
		return m.CPUs()[0].ExitCode()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("single-thread checksum not deterministic: %#x vs %#x", a, b)
	}
	if a == 0 {
		t.Error("checksum should be nonzero")
	}
}
