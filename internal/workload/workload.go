// Package workload generates "miniparsec", atomemu's synthetic stand-in for
// the PARSEC 3.0 suite the paper evaluates on. Building PARSEC itself is
// neither possible (no cross-compiled ARM binaries here) nor necessary: the
// paper's performance results are driven by a handful of per-program
// characteristics — the store:LL/SC ratio (Table I: 88x–3000x), whether
// atomics are lock acquisitions or bare read-modify-writes, lock
// granularity, barrier cadence, the serial fraction, and how many stores
// land on the same page as a synchronization variable (PST's false
// sharing). Each miniparsec program reproduces its namesake's profile in
// those dimensions with a parameterized GA32 kernel; the per-program
// parameters are listed in Specs.
//
// Every program carries a built-in invariant for run validation: lock-kind
// programs count critical-section entries in a lock-protected word, add-kind
// programs accumulate in their atomic cells; Verify checks the total.
package workload

import (
	"fmt"

	"atomemu/internal/arch"
	"atomemu/internal/asm"
	"atomemu/internal/mmu"
)

// AtomicKind selects the shape of a program's atomic sections.
type AtomicKind uint8

// Atomic section kinds.
const (
	// KindAdd is a bare LL/SC fetch-and-add (compiler __atomic_add shape).
	KindAdd AtomicKind = iota
	// KindLock is a spinlock acquire / critical section / release.
	KindLock
)

func (k AtomicKind) String() string {
	if k == KindAdd {
		return "add"
	}
	return "lock"
}

// Spec parameterizes one miniparsec program.
type Spec struct {
	Name string
	// TotalItems is the whole-run work-item count at scale 1.0, divided
	// evenly among threads.
	TotalItems int
	// ComputePerItem is the number of xorshift rounds per item.
	ComputePerItem int
	// StoresPerItem is the number of thread-local buffer stores per item.
	StoresPerItem int
	// SharedStoresPerItem is the number of stores per item landing on the
	// page that also holds the locks/cells — the PST false-sharing source.
	SharedStoresPerItem int
	// AtomicEvery runs an atomic section every this many items (power of 2).
	AtomicEvery int
	// Kind selects add vs lock sections.
	Kind AtomicKind
	// LockCells is the number of distinct cells/locks (power of 2);
	// 1 means a single global lock (serialization).
	LockCells int
	// CSStores is the number of shared-page stores inside a critical
	// section (lock kind only).
	CSStores int
	// BarrierEvery inserts a barrier every this many items (power of 2),
	// 0 for none.
	BarrierEvery int
}

// Specs returns the eight miniparsec programs. The comments give the
// intended store:LL/SC ballpark (Table I) and the behaviour being imitated.
func Specs() []Spec {
	return []Spec{
		{
			// Data-parallel option pricing: almost no synchronization.
			// ratio ~3000:1; scales nearly perfectly.
			Name: "blackscholes", TotalItems: 32768,
			ComputePerItem: 12, StoresPerItem: 24,
			AtomicEvery: 128, Kind: KindAdd, LockCells: 4,
		},
		{
			// Per-frame barriers plus shared-structure stores next to the
			// locks: the false-sharing U-shape program. ratio ~550:1.
			Name: "bodytrack", TotalItems: 32768,
			ComputePerItem: 8, StoresPerItem: 16, SharedStoresPerItem: 1,
			AtomicEvery: 32, Kind: KindLock, LockCells: 8, CSStores: 4,
			BarrierEvery: 4096,
		},
		{
			// Simulated annealing with one global lock: ~30% parallelism;
			// excluded from the scalability figure, kept for overheads.
			Name: "canneal", TotalItems: 16384,
			ComputePerItem: 6, StoresPerItem: 12,
			AtomicEvery: 2, Kind: KindLock, LockCells: 1, CSStores: 24,
		},
		{
			// Physics solver: barriers each phase, moderate atomics.
			// ratio ~650:1.
			Name: "facesim", TotalItems: 32768,
			ComputePerItem: 10, StoresPerItem: 20,
			AtomicEvery: 32, Kind: KindAdd, LockCells: 8,
			BarrierEvery: 2048,
		},
		{
			// Fine-grained per-cell locks, the most atomic-intensive
			// program. ratio ~90:1.
			Name: "fluidanimate", TotalItems: 32768,
			ComputePerItem: 4, StoresPerItem: 20, SharedStoresPerItem: 1,
			AtomicEvery: 4, Kind: KindLock, LockCells: 64, CSStores: 2,
		},
		{
			// FP-growth mining: chunky locked updates. ratio ~400:1.
			Name: "freqmine", TotalItems: 24576,
			ComputePerItem: 8, StoresPerItem: 48,
			AtomicEvery: 8, Kind: KindLock, LockCells: 8, CSStores: 8,
		},
		{
			// Monte-Carlo pricing with work-stealing counters: intensive
			// bare atomics. ratio ~150:1.
			Name: "swaptions", TotalItems: 32768,
			ComputePerItem: 6, StoresPerItem: 36,
			AtomicEvery: 4, Kind: KindAdd, LockCells: 16,
		},
		{
			// Pipeline encoder: long store-heavy stretches, rare locks.
			// ratio ~2000:1.
			Name: "x264", TotalItems: 32768,
			ComputePerItem: 10, StoresPerItem: 32,
			AtomicEvery: 64, Kind: KindLock, LockCells: 4, CSStores: 4,
		},
	}
}

// SpecByName finds a spec.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// ScalabilitySpecs returns the suite minus canneal, whose 30% parallel
// fraction makes it inappropriate for the scalability study (paper §IV).
func ScalabilitySpecs() []Spec {
	var out []Spec
	for _, s := range Specs() {
		if s.Name != "canneal" {
			out = append(out, s)
		}
	}
	return out
}

// MaxThreads is the most workers one program image supports (per-thread
// buffer pages are laid out statically).
const MaxThreads = 64

// Program is an assembled miniparsec program.
type Program struct {
	Spec  Spec
	Image *asm.Image
	// Worker is the thread entry; r0 = items to process.
	Worker uint32
	// BarrierCell is the engine barrier key (init with thread count before
	// running when the spec uses barriers).
	BarrierCell uint32
	// Counter is the validation counter (lock kind) — for add kind use the
	// cells themselves.
	Counter uint32
	// Cells is the base of the lock/atomic cell array.
	Cells uint32
}

func pow2(v int) bool { return v > 0 && v&(v-1) == 0 }

func log2of(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Build assembles the program at the given origin.
func (spec Spec) Build(org uint32) (*Program, error) {
	if !pow2(spec.AtomicEvery) || !pow2(spec.LockCells) {
		return nil, fmt.Errorf("workload %s: AtomicEvery and LockCells must be powers of two", spec.Name)
	}
	if spec.BarrierEvery != 0 && !pow2(spec.BarrierEvery) {
		return nil, fmt.Errorf("workload %s: BarrierEvery must be a power of two", spec.Name)
	}
	if spec.StoresPerItem > 64 || spec.CSStores > 32 || spec.SharedStoresPerItem > 8 {
		return nil, fmt.Errorf("workload %s: store counts out of range", spec.Name)
	}
	b := asm.NewBuilder(org)

	// Register plan: r4 = local buffer base, r5 = rng, r6 = item index,
	// r9 = items remaining, r11 = tid, r12 = shared page base,
	// r0-r3, r7, r8, r10 scratch.
	b.Label("worker")
	b.Mov(arch.R9, arch.R0)
	b.CmpI(arch.R9, 0)
	b.Beq("finish")
	b.MovI(arch.R6, 0)
	b.Svc(5) // gettid
	b.Mov(arch.R11, arch.R0)
	// r4 = bufs + ((tid-1) & 63) << PageShift
	b.SubI(arch.R1, arch.R11, 1)
	b.AndI(arch.R1, arch.R1, MaxThreads-1)
	b.LslI(arch.R1, arch.R1, mmu.PageShift)
	b.LoadAddr(arch.R4, "bufs")
	b.Add(arch.R4, arch.R4, arch.R1)
	// rng seed: tid * 2654435761 + 97
	b.MovImm32(arch.R7, 2654435761)
	b.Mul(arch.R5, arch.R11, arch.R7)
	b.AddI(arch.R5, arch.R5, 97)
	b.LoadAddr(arch.R12, "shared")

	b.Label("itemloop")
	// Compute: xorshift rounds on r5.
	for i := 0; i < spec.ComputePerItem; i++ {
		b.LslI(arch.R7, arch.R5, 13)
		b.Eor(arch.R5, arch.R5, arch.R7)
		b.LsrI(arch.R7, arch.R5, 17)
		b.Eor(arch.R5, arch.R5, arch.R7)
		b.LslI(arch.R7, arch.R5, 5)
		b.Eor(arch.R5, arch.R5, arch.R7)
	}
	// Local-buffer stores, spread across the page.
	for s := 0; s < spec.StoresPerItem; s++ {
		off := int32(s*52) % (mmu.PageSize - 4) &^ 3
		b.Str(arch.R5, arch.R4, off)
	}
	// Shared-page stores (false sharing for PST): land in the shared
	// array, which shares its page with the locks and counter.
	for s := 0; s < spec.SharedStoresPerItem; s++ {
		b.Str(arch.R5, arch.R12, int32(sharedArrOff+s*4))
	}

	// Atomic section every AtomicEvery items.
	b.AndI(arch.R7, arch.R6, uint32OK(spec.AtomicEvery-1))
	b.CmpI(arch.R7, 0)
	b.Bne("noatomic")
	// cell index = ((item >> log2(every)) + tid) & (cells-1)
	b.LsrI(arch.R7, arch.R6, int32(log2of(spec.AtomicEvery)))
	b.Add(arch.R7, arch.R7, arch.R11)
	b.AndI(arch.R7, arch.R7, uint32OK(spec.LockCells-1))
	b.LslI(arch.R7, arch.R7, 2)
	b.Mov(arch.R8, arch.R12) // cells sit at offset 0 of the shared page
	b.Add(arch.R8, arch.R8, arch.R7)
	switch spec.Kind {
	case KindAdd:
		b.Label("addretry")
		b.Ldrex(arch.R1, arch.R8)
		b.AddI(arch.R1, arch.R1, 1)
		b.Strex(arch.R2, arch.R1, arch.R8)
		b.CmpI(arch.R2, 0)
		b.Bne("addretry")
	case KindLock:
		b.Label("lockacq")
		b.Ldrex(arch.R1, arch.R8)
		b.CmpI(arch.R1, 0)
		b.Bne("lockwait")
		b.MovI(arch.R1, 1)
		b.Strex(arch.R2, arch.R1, arch.R8)
		b.CmpI(arch.R2, 0)
		b.Bne("lockacq")
		b.B("lockcs")
		b.Label("lockwait")
		b.Clrex()
		b.Yield()
		b.B("lockacq")
		b.Label("lockcs")
		// Lock-protected validation counter: counter i sits counterOff
		// bytes above lock i and is protected by it.
		b.Ldr(arch.R1, arch.R8, counterOff)
		b.AddI(arch.R1, arch.R1, 1)
		b.Str(arch.R1, arch.R8, counterOff)
		// Critical-section stores on the shared page.
		for s := 0; s < spec.CSStores; s++ {
			b.Str(arch.R5, arch.R12, int32(csArrOff+s*4))
		}
		// Release.
		b.MovI(arch.R1, 0)
		b.Str(arch.R1, arch.R8, 0)
	}
	b.Label("noatomic")

	// Barrier every BarrierEvery items.
	if spec.BarrierEvery > 0 {
		b.AndI(arch.R7, arch.R6, uint32OK(spec.BarrierEvery-1))
		b.MovImm32(arch.R8, uint32(spec.BarrierEvery-1))
		b.Cmp(arch.R7, arch.R8)
		b.Bne("nobarrier")
		b.AddI(arch.R0, arch.R12, barrierOff)
		b.Svc(10) // barrier_wait
		b.Label("nobarrier")
	}

	b.AddI(arch.R6, arch.R6, 1)
	b.SubsI(arch.R9, arch.R9, 1)
	b.Bne("itemloop")
	b.Label("finish")
	b.Mov(arch.R0, arch.R5) // checksum as exit code
	b.Svc(1)

	// Shared page: cells, counter, barrier cell, CS array, shared array.
	b.AlignWords(mmu.PageWords)
	b.Label("shared")
	b.Space(spec.LockCells) // cells at offset 0
	padToOff(b, counterOff)
	b.Word(0) // counter
	padToOff(b, barrierOff)
	b.Word(0) // barrier key cell
	padToOff(b, csArrOff)
	b.Space(32)
	padToOff(b, sharedArrOff)
	b.Space(16)
	// Per-thread local buffer pages.
	b.AlignWords(mmu.PageWords)
	b.Label("bufs")
	b.Space(MaxThreads * mmu.PageWords)

	im, err := b.Finish()
	if err != nil {
		return nil, err
	}
	shared := im.MustSymbol("shared")
	return &Program{
		Spec:        spec,
		Image:       im,
		Worker:      im.MustSymbol("worker"),
		BarrierCell: shared + barrierOff,
		Counter:     shared + counterOff,
		Cells:       shared,
	}, nil
}

// Fixed offsets within the shared page (bytes). Cells occupy [0,
// LockCells*4) and their validation counters [0x100, 0x100+LockCells*4):
// counter i is protected by lock i, so fine-grained-lock programs count
// critical sections without racing on one word.
const (
	counterOff   = 0x100
	barrierOff   = 0x200
	csArrOff     = 0x240
	sharedArrOff = 0x300
)

func padToOff(b *asm.Builder, off int32) {
	base := b.PC()
	_ = base
	for b.PC()%mmu.PageSize != uint32(off) {
		b.Word(0)
	}
}

func uint32OK(v int) int32 { return int32(v) }

// ItemsPerThread divides the (scaled) total evenly; every thread gets the
// same count so barrier arrivals match.
func (spec Spec) ItemsPerThread(threads int, scale float64) int {
	if threads < 1 {
		threads = 1
	}
	total := float64(spec.TotalItems) * scale
	per := int(total) / threads
	if per < 1 {
		per = 1
	}
	// Barrier programs need per-thread counts that cover at least one
	// barrier interval boundary consistently; any equal count works since
	// arrivals are per-item-index.
	return per
}

// ExpectedSections computes how many atomic sections a run executes.
func (spec Spec) ExpectedSections(threads, itemsPerThread int) uint64 {
	perThread := (itemsPerThread + spec.AtomicEvery - 1) / spec.AtomicEvery
	return uint64(threads) * uint64(perThread)
}

// memory is the slice of mmu.Memory Verify needs.
type memory interface {
	ReadWordPriv(addr uint32) (uint32, *mmu.Fault)
}

// Verify checks the program's built-in invariant after a run: the total
// number of atomic sections observed in guest memory must equal the
// expectation — mutual exclusion (lock kind) or atomicity (add kind) held.
func (p *Program) Verify(mem memory, threads, itemsPerThread int) error {
	want := p.Spec.ExpectedSections(threads, itemsPerThread)
	var got uint64
	switch p.Spec.Kind {
	case KindAdd:
		for i := 0; i < p.Spec.LockCells; i++ {
			v, f := mem.ReadWordPriv(p.Cells + uint32(i)*4)
			if f != nil {
				return f
			}
			got += uint64(v)
		}
	case KindLock:
		for i := 0; i < p.Spec.LockCells; i++ {
			v, f := mem.ReadWordPriv(p.Counter + uint32(i)*4)
			if f != nil {
				return f
			}
			got += uint64(v)
		}
	}
	if got != want {
		return fmt.Errorf("workload %s: invariant violated: %d sections recorded, want %d",
			p.Spec.Name, got, want)
	}
	return nil
}
