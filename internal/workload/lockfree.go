// Lock-free adversary targets: oracle-bearing guest workloads whose
// correctness is interleaving-dependent in exactly the ways the paper's
// atomic-emulation schemes can break (ABA windows, same-value SC,
// plain-store visibility around LL/SC, futex wake ordering). Each target
// assembles a GA32 program plus a host-side linearizability-style
// invariant checker; the adversary (internal/adversary) composes them
// with generated interference and judges runs with the checker.
//
// The five structures and what each one is sensitive to:
//
//   - msqueue: Michael–Scott queue with node recycling. The dequeue's
//     head swing is a classic ABA window; PICO-CAS loses or duplicates
//     nodes, which the conservation + value-multiset oracle catches.
//   - wsdeque: Chase–Lev work-stealing deque. top is monotonic (no ABA),
//     so this is a burn-in target: any exactly-once violation is a real
//     scheme or engine bug under every scheme.
//   - seqlock: sequence-lock writer/reader. Readers validate snapshot
//     consistency with no atomics at all; writers race an LL/SC
//     acquisition on a monotonic word. Stresses plain-store visibility
//     around the monitored word (the PST false-sharing page).
//   - hazard: hazard-pointer-style reclamation. Writers swap a shared
//     pointer, scan hazard slots, then poison-and-free; readers publish
//     a hazard, re-validate, and dereference a canary. Use-after-free
//     shows up as a poisoned canary read or a broken free-list walk.
//   - futexpc: futex-heavy bounded producer/consumer (the canonical
//     mutex+condvar ring). Exercises the blocking-syscall machinery and
//     mutual exclusion; the checksum and sum-conservation oracle catches
//     broken lock acquisition.
package workload

import (
	"fmt"

	"atomemu/internal/arch"
	"atomemu/internal/asm"
	"atomemu/internal/guestlib"
	"atomemu/internal/mmu"
)

// Memory is the slice of mmu.Memory targets need for setup and
// verification; *mmu.Memory satisfies it.
type Memory interface {
	ReadWordPriv(addr uint32) (uint32, *mmu.Fault)
	WriteWordPriv(addr, val uint32) *mmu.Fault
}

// Target is one adversary-facing workload: a buildable guest program
// with a correctness oracle.
type Target struct {
	Name string
	// Desc is a one-line description for reports.
	Desc string
	// MinThreads is the fewest vCPUs the workload is meaningful with.
	MinThreads int
	// MaxOps bounds the per-run operation parameter (0 = unbounded);
	// targets with statically sized result arrays set it.
	MaxOps int
	// Build assembles the target's image at org.
	Build func(org uint32) (*Instance, error)
}

// Instance is an assembled target, ready to load and drive.
type Instance struct {
	Image *asm.Image
	// Entry is the per-thread entry point. Thread i (spawn order,
	// tid i+1) receives Args(i, threads, ops) in r0.
	Entry uint32
	// Args returns thread i's r0 argument.
	Args func(i, threads, ops int) uint32
	// Setup seeds guest data structures after the image is loaded.
	// May be nil.
	Setup func(mem Memory, threads, ops int) error
	// Barrier returns the engine-barrier cell and participant count the
	// host must initialise before running, or (0, 0) for none. May be nil.
	Barrier func(threads int) (uint32, int)
	// Verify checks the oracle after every thread halted cleanly.
	Verify func(mem Memory, threads, ops int) error
}

// Targets returns the adversary workload registry: the Treiber stack,
// the five lock-free targets above, and every miniparsec program (whose
// section-count invariant doubles as an oracle).
func Targets() []Target {
	ts := []Target{
		{
			Name: "stack", Desc: "Treiber stack pop/push cycling (paper Fig. 3; ABA-prone)",
			MinThreads: 1,
			Build:      buildStackTarget,
		},
		{
			Name: "msqueue", Desc: "Michael-Scott queue with node recycling (ABA-prone head swing)",
			MinThreads: 1,
			Build:      buildMSQueue,
		},
		{
			Name: "wsdeque", Desc: "Chase-Lev work-stealing deque, exactly-once task oracle",
			MinThreads: 1, MaxOps: wsMaxTasks,
			Build: buildWSDeque,
		},
		{
			Name: "seqlock", Desc: "seqlock writers/readers, snapshot-consistency oracle",
			MinThreads: 1,
			Build:      buildSeqlock,
		},
		{
			Name: "hazard", Desc: "hazard-pointer reclamation, poisoned-canary oracle",
			MinThreads: 1,
			Build:      buildHazard,
		},
		{
			Name: "futexpc", Desc: "futex mutex+condvar bounded ring, sum-conservation oracle",
			MinThreads: 2, MaxOps: 2048,
			Build: buildFutexPC,
		},
	}
	for _, spec := range Specs() {
		spec := spec
		ts = append(ts, Target{
			Name: spec.Name, Desc: "miniparsec " + spec.Name + " (section-count oracle)",
			MinThreads: 1,
			Build:      func(org uint32) (*Instance, error) { return buildSpecTarget(spec, org) },
		})
	}
	return ts
}

// TargetByName finds a target in the registry.
func TargetByName(name string) (Target, bool) {
	for _, t := range Targets() {
		if t.Name == name {
			return t, true
		}
	}
	return Target{}, false
}

// sameOps gives every thread the same r0.
func sameOps(_, _, ops int) uint32 { return uint32(ops) }

// --- Treiber stack (wraps guestlib) ---

const stackNodes = 64

func buildStackTarget(org uint32) (*Instance, error) {
	sb, err := guestlib.BuildStackBench(org, stackNodes)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Image: sb.Image,
		Entry: sb.Worker,
		Args:  sameOps,
		Setup: func(mem Memory, _, _ int) error { return sb.InitStack(mem) },
		Verify: func(mem Memory, _, _ int) error {
			rep, err := sb.CheckStack(mem)
			if err != nil {
				return fmt.Errorf("stack: audit failed: %v", err)
			}
			if rep.Corrupted() {
				return fmt.Errorf("stack: corrupted: %s", rep)
			}
			return nil
		},
	}, nil
}

// --- miniparsec wrapper ---

func buildSpecTarget(spec Spec, org uint32) (*Instance, error) {
	prog, err := spec.Build(org)
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		Image: prog.Image,
		Entry: prog.Worker,
		Args:  sameOps,
		Verify: func(mem Memory, threads, ops int) error {
			return prog.Verify(mem, threads, ops)
		},
	}
	if spec.BarrierEvery > 0 {
		inst.Barrier = func(threads int) (uint32, int) { return prog.BarrierCell, threads }
	}
	return inst, nil
}

// --- Michael-Scott queue ---

// msqNodes is the node-pool size; node i initially carries value i, the
// dummy (node 0) excepted. The live-value multiset {1..N-1} is invariant
// under dequeue+re-enqueue cycling.
const msqNodes = 48

func buildMSQueue(org uint32) (*Instance, error) {
	b := asm.NewBuilder(org)

	// Register plan: r9 = remaining ops, r10 = consecutive-empty counter,
	// r12 = &qdata (head at +0, tail at +4), r8 = node in flight,
	// r0-r7 scratch inside the queue routines.
	b.Label("worker") // r0 = ops
	b.Mov(arch.R9, arch.R0)
	b.CmpI(arch.R9, 0)
	b.Beq("w_done")
	b.MovI(arch.R10, 0)
	b.LoadAddr(arch.R12, "qdata")
	b.Label("w_loop")
	b.BL("q_deq")
	b.CmpI(arch.R0, 0)
	b.Beq("w_empty")
	b.MovI(arch.R10, 0)
	b.Mov(arch.R1, arch.R0)
	b.BL("q_enq")
	b.SubsI(arch.R9, arch.R9, 1)
	b.Bne("w_loop")
	b.Label("w_done")
	b.MovI(arch.R0, 0)
	b.Svc(1)
	b.Label("w_empty")
	// Transient emptiness is normal under heavy dequeuing; a persistently
	// empty queue means corruption consumed every node — exit 2, like the
	// stack bench.
	b.AddI(arch.R10, arch.R10, 1)
	b.MovImm32(arch.R11, 100_000)
	b.Cmp(arch.R10, arch.R11)
	b.Bge("w_lost")
	b.Yield()
	b.B("w_loop")
	b.Label("w_lost")
	b.MovI(arch.R0, 2)
	b.Svc(1)

	// q_deq: returns the dequeued node in r0 (carrying the dequeued value),
	// or 0 when empty. The outgoing dummy is the recycled node; the
	// successor's value moves into it. The head swing is the deliberate ABA
	// window: SC(&head, next) with a stale next corrupts the chain under
	// value-compare schemes.
	b.Label("q_deq")
	b.Label("dq_retry")
	b.Ldrex(arch.R1, arch.R12)  // h = LL(&head)
	b.Ldr(arch.R2, arch.R12, 4) // t = tail
	b.Ldr(arch.R3, arch.R1, 0)  // next = h->next (load inside the window)
	b.Cmp(arch.R1, arch.R2)
	b.Bne("dq_mid")
	b.Clrex() // head == tail: only the dummy — empty
	b.MovI(arch.R0, 0)
	b.Ret()
	b.Label("dq_mid")
	// head != tail but next == 0: an enqueuer swung tail and has not linked
	// yet, or our snapshot is stale — either way, retry rather than chase a
	// null pointer.
	b.CmpI(arch.R3, 0)
	b.Beq("dq_stale")
	b.Ldr(arch.R4, arch.R3, 4)          // val = next->value
	b.Strex(arch.R5, arch.R3, arch.R12) // SC(&head, next)
	b.CmpI(arch.R5, 0)
	b.Bne("dq_retry")
	b.Str(arch.R4, arch.R1, 4) // recycled node carries the dequeued value
	b.Mov(arch.R0, arch.R1)
	b.Ret()
	b.Label("dq_stale")
	b.Clrex()
	b.Yield()
	b.B("dq_retry")

	// q_enq: r1 = node to append (value already set). Swing-then-link: win
	// the tail swing with LL/SC, then the winner alone writes the
	// predecessor's link. Unlike the textbook MS enqueue (LL on t->next),
	// this never SCs into a node that may already have been recycled, so it
	// is safe under strong and weak LL/SC with immediate node reuse.
	b.Label("q_enq")
	b.MovI(arch.R6, 0)
	b.Str(arch.R6, arch.R1, 0) // node->next = 0
	b.AddI(arch.R7, arch.R12, 4)
	b.Label("eq_retry")
	b.Ldrex(arch.R2, arch.R7)          // t = LL(&tail)
	b.Strex(arch.R5, arch.R1, arch.R7) // SC(&tail, node)
	b.CmpI(arch.R5, 0)
	b.Bne("eq_retry")
	b.Str(arch.R1, arch.R2, 0) // t->next = node (the swing winner owns this link)
	b.Ret()

	b.AlignWords(mmu.PageWords)
	b.Label("qdata")
	b.Word(0) // head
	b.Word(0) // tail
	b.AlignWords(mmu.PageWords)
	b.Label("qnodes")
	b.Space(msqNodes * 2) // [next, value] per node

	im, err := b.Finish()
	if err != nil {
		return nil, err
	}
	qdata := im.MustSymbol("qdata")
	qnodes := im.MustSymbol("qnodes")
	node := func(i uint32) uint32 { return qnodes + i*8 }
	return &Instance{
		Image: im,
		Entry: im.MustSymbol("worker"),
		Args:  sameOps,
		Setup: func(mem Memory, _, _ int) error {
			for i := uint32(0); i < msqNodes; i++ {
				next := uint32(0)
				if i+1 < msqNodes {
					next = node(i + 1)
				}
				if f := mem.WriteWordPriv(node(i), next); f != nil {
					return f
				}
				if f := mem.WriteWordPriv(node(i)+4, i); f != nil {
					return f
				}
			}
			if f := mem.WriteWordPriv(qdata, node(0)); f != nil { // head = dummy
				return f
			}
			if f := mem.WriteWordPriv(qdata+4, node(msqNodes-1)); f != nil { // tail
				return f
			}
			return nil
		},
		Verify: func(mem Memory, _, _ int) error {
			inRange := func(p uint32) bool {
				return p >= qnodes && p < qnodes+msqNodes*8 && (p-qnodes)%8 == 0
			}
			head, f := mem.ReadWordPriv(qdata)
			if f != nil {
				return f
			}
			seen := make(map[uint32]bool, msqNodes)
			values := make(map[uint32]int, msqNodes)
			cur := head
			pos := 0
			for cur != 0 {
				if !inRange(cur) {
					return fmt.Errorf("msqueue: chain left the node pool at %#x (position %d)", cur, pos)
				}
				if seen[cur] {
					return fmt.Errorf("msqueue: cycle at node %#x (position %d)", cur, pos)
				}
				seen[cur] = true
				if pos > 0 { // position 0 is the dummy; its value is stale
					v, f := mem.ReadWordPriv(cur + 4)
					if f != nil {
						return f
					}
					values[v]++
				}
				next, f := mem.ReadWordPriv(cur)
				if f != nil {
					return f
				}
				cur = next
				pos++
			}
			if pos != msqNodes {
				return fmt.Errorf("msqueue: conservation violated: %d of %d nodes reachable", pos, msqNodes)
			}
			for v := uint32(1); v < msqNodes; v++ {
				if values[v] != 1 {
					return fmt.Errorf("msqueue: value multiset violated: value %d appears %d times", v, values[v])
				}
			}
			return nil
		},
	}, nil
}

// --- Chase-Lev work-stealing deque ---

const (
	wsSlots    = 64   // circular task buffer (power of two)
	wsMaxTasks = 4096 // exec-array capacity; bounds the ops parameter
)

func buildWSDeque(org uint32) (*Instance, error) {
	b := asm.NewBuilder(org)

	// Shared page layout (wdata): top +0, bottom +4, done +8.
	// r4 = &wdata, r5 = &wtasks, r6 = &wexec, r9 = total tasks (owner),
	// r7 = next task id (owner), r11 = tid.
	b.Label("worker") // r0 = total tasks for the owner, 0 for thieves
	b.Mov(arch.R9, arch.R0)
	b.Svc(5)
	b.Mov(arch.R11, arch.R0)
	b.LoadAddr(arch.R4, "wdata")
	b.LoadAddr(arch.R5, "wtasks")
	b.LoadAddr(arch.R6, "wexec")
	b.CmpI(arch.R11, 1)
	b.Bne("thief")

	// Owner: push batches, pop them back, competing with thieves for the
	// last element (Chase-Lev bottom/top discipline).
	b.MovI(arch.R7, 0)
	b.CmpI(arch.R9, 0)
	b.Beq("o_done")
	b.Label("o_push")
	b.Cmp(arch.R7, arch.R9)
	b.Beq("o_pop")
	b.Ldr(arch.R1, arch.R4, 4) // b
	b.Ldr(arch.R2, arch.R4, 0) // t
	b.Sub(arch.R3, arch.R1, arch.R2)
	b.CmpI(arch.R3, wsSlots)
	b.Bge("o_pop") // full
	b.AndI(arch.R3, arch.R1, wsSlots-1)
	b.LslI(arch.R3, arch.R3, 2)
	b.StrR(arch.R7, arch.R5, arch.R3) // tasks[b & mask] = task
	b.AddI(arch.R1, arch.R1, 1)
	b.Str(arch.R1, arch.R4, 4) // bottom = b+1 (single writer)
	b.AddI(arch.R7, arch.R7, 1)
	b.B("o_push")

	b.Label("o_pop")
	b.Ldr(arch.R1, arch.R4, 4)
	b.SubI(arch.R1, arch.R1, 1)
	b.Str(arch.R1, arch.R4, 4) // bottom = b-1, published before reading top
	b.Ldr(arch.R2, arch.R4, 0) // t
	b.Cmp(arch.R1, arch.R2)
	b.Bgt("o_take")
	b.Beq("o_race")
	// b-1 < t: deque empty, thieves won; restore bottom.
	b.Str(arch.R2, arch.R4, 4)
	b.B("o_next")
	b.Label("o_take")
	b.AndI(arch.R3, arch.R1, wsSlots-1)
	b.LslI(arch.R3, arch.R3, 2)
	b.LdrR(arch.R0, arch.R5, arch.R3)
	b.BL("exec")
	b.B("o_pop")
	b.Label("o_race") // last element: compete on top
	b.Ldrex(arch.R3, arch.R4)
	b.Cmp(arch.R3, arch.R2)
	b.Bne("o_lost_clrex")
	b.AddI(arch.R3, arch.R2, 1)
	b.Strex(arch.R8, arch.R3, arch.R4)
	b.CmpI(arch.R8, 0)
	b.Bne("o_lost")
	// Won the race: reset bottom before exec (exec clobbers r1-r3, and the
	// deque is empty either way once top passed t).
	b.AddI(arch.R3, arch.R2, 1)
	b.Str(arch.R3, arch.R4, 4) // bottom = t+1 (canonical reset)
	b.AndI(arch.R3, arch.R1, wsSlots-1)
	b.LslI(arch.R3, arch.R3, 2)
	b.LdrR(arch.R0, arch.R5, arch.R3)
	b.BL("exec")
	b.B("o_next")
	b.Label("o_lost_clrex")
	b.Clrex()
	b.Label("o_lost")
	b.AddI(arch.R3, arch.R2, 1)
	b.Str(arch.R3, arch.R4, 4) // bottom = t+1 (canonical reset)
	b.Label("o_next")
	b.Cmp(arch.R7, arch.R9)
	b.Bne("o_push") // more tasks to push
	b.Label("o_done")
	b.MovI(arch.R1, 1)
	b.Str(arch.R1, arch.R4, 8) // done = 1
	b.MovI(arch.R0, 0)
	b.Svc(1)

	// Thief: steal from top until the owner is done and the deque drained.
	b.Label("thief")
	b.Label("t_loop")
	b.Ldrex(arch.R2, arch.R4) // t = LL(&top)
	b.Ldr(arch.R1, arch.R4, 4)
	b.Cmp(arch.R2, arch.R1)
	b.Bge("t_empty")
	b.AndI(arch.R3, arch.R2, wsSlots-1)
	b.LslI(arch.R3, arch.R3, 2)
	b.LdrR(arch.R0, arch.R5, arch.R3) // read task before the SC claims it
	b.AddI(arch.R3, arch.R2, 1)
	b.Strex(arch.R8, arch.R3, arch.R4)
	b.CmpI(arch.R8, 0)
	b.Bne("t_loop")
	b.BL("exec")
	b.B("t_loop")
	b.Label("t_empty")
	b.Clrex()
	b.Ldr(arch.R3, arch.R4, 8)
	b.CmpI(arch.R3, 0)
	b.Bne("t_exit")
	b.Yield()
	b.B("t_loop")
	b.Label("t_exit")
	b.MovI(arch.R0, 0)
	b.Svc(1)

	// exec: atomically increment wexec[task]; r0 = task id, clobbers r1-r3.
	b.Label("exec")
	b.LslI(arch.R1, arch.R0, 2)
	b.Add(arch.R1, arch.R6, arch.R1)
	b.Label("x_retry")
	b.Ldrex(arch.R2, arch.R1)
	b.AddI(arch.R2, arch.R2, 1)
	b.Strex(arch.R3, arch.R2, arch.R1)
	b.CmpI(arch.R3, 0)
	b.Bne("x_retry")
	b.Ret()

	b.AlignWords(mmu.PageWords)
	b.Label("wdata")
	b.Space(4) // top, bottom, done, pad
	b.AlignWords(mmu.PageWords)
	b.Label("wtasks")
	b.Space(wsSlots)
	b.AlignWords(mmu.PageWords)
	b.Label("wexec")
	b.Space(wsMaxTasks)

	im, err := b.Finish()
	if err != nil {
		return nil, err
	}
	wdata := im.MustSymbol("wdata")
	wexec := im.MustSymbol("wexec")
	return &Instance{
		Image: im,
		Entry: im.MustSymbol("worker"),
		Args: func(i, _, ops int) uint32 {
			if i == 0 {
				return uint32(ops)
			}
			return 0
		},
		Verify: func(mem Memory, _, ops int) error {
			done, f := mem.ReadWordPriv(wdata + 8)
			if f != nil {
				return f
			}
			if done != 1 {
				return fmt.Errorf("wsdeque: owner never finished (done=%d)", done)
			}
			for i := 0; i < ops; i++ {
				v, f := mem.ReadWordPriv(wexec + uint32(i)*4)
				if f != nil {
					return f
				}
				if v != 1 {
					return fmt.Errorf("wsdeque: exactly-once violated: task %d executed %d times", i, v)
				}
			}
			return nil
		},
	}, nil
}

// --- seqlock ---

// seqlockWriters returns the writer count for a thread count: writers
// are tids 1..W, readers the rest.
func seqlockWriters(threads int) int {
	if threads >= 4 {
		return 2
	}
	return 1
}

func buildSeqlock(org uint32) (*Instance, error) {
	b := asm.NewBuilder(org)

	// sdata: seq +0, data0 +4, data1 +8; per-thread writer CS counts at
	// +0x100, reader violation counts at +0x200 (both indexed by tid-1).
	const (
		wcountOff = 0x100
		violOff   = 0x200
	)
	b.Label("worker") // r0 = ops
	b.Mov(arch.R9, arch.R0)
	b.Svc(5)
	b.Mov(arch.R11, arch.R0)
	b.LoadAddr(arch.R4, "sdata")
	b.CmpI(arch.R9, 0)
	b.Beq("s_exit")
	// Writers are tids 1..W; W is patched into the movi below by Setup
	// (the image cannot know the thread count at build time).
	b.Label("wmark")
	b.MovI(arch.R1, 1) // patched: W
	b.Cmp(arch.R11, arch.R1)
	b.Ble("s_writer")

	// Reader.
	b.SubI(arch.R5, arch.R11, 1)
	b.LslI(arch.R5, arch.R5, 2)
	b.AddI(arch.R5, arch.R5, violOff)
	b.Add(arch.R5, arch.R4, arch.R5) // &viol[tid-1]
	b.Label("r_loop")
	b.Label("r_read")
	b.Ldr(arch.R1, arch.R4, 0) // s1
	b.AndI(arch.R2, arch.R1, 1)
	b.CmpI(arch.R2, 0)
	b.Bne("r_wait")
	b.Ldr(arch.R2, arch.R4, 4) // d0
	b.Ldr(arch.R3, arch.R4, 8) // d1
	b.Ldr(arch.R6, arch.R4, 0) // s2
	b.Cmp(arch.R1, arch.R6)
	b.Bne("r_read")
	b.AddI(arch.R2, arch.R2, 1)
	b.Cmp(arch.R3, arch.R2)
	b.Beq("r_ok")
	b.Ldr(arch.R7, arch.R5, 0) // torn snapshot observed
	b.AddI(arch.R7, arch.R7, 1)
	b.Str(arch.R7, arch.R5, 0)
	b.Label("r_ok")
	b.SubsI(arch.R9, arch.R9, 1)
	b.Bne("r_loop")
	b.B("s_exit")
	b.Label("r_wait")
	b.Yield()
	b.B("r_read")

	// Writer.
	b.Label("s_writer")
	b.SubI(arch.R5, arch.R11, 1)
	b.LslI(arch.R5, arch.R5, 2)
	b.AddI(arch.R5, arch.R5, wcountOff)
	b.Add(arch.R5, arch.R4, arch.R5) // &wcount[tid-1]
	b.Label("w_loop")
	b.Label("w_acq")
	b.Ldrex(arch.R1, arch.R4) // s = LL(&seq)
	b.AndI(arch.R2, arch.R1, 1)
	b.CmpI(arch.R2, 0)
	b.Bne("w_wait")
	b.AddI(arch.R2, arch.R1, 1)
	b.Strex(arch.R3, arch.R2, arch.R4) // seq = s+1 (odd: write locked)
	b.CmpI(arch.R3, 0)
	b.Bne("w_acq")
	// Critical section: bump both data words, widening the window a bit.
	b.Ldr(arch.R2, arch.R4, 4)
	b.AddI(arch.R2, arch.R2, 1)
	b.Str(arch.R2, arch.R4, 4) // data0 = g+1
	b.Nop()
	b.Nop()
	b.Nop()
	b.AddI(arch.R3, arch.R2, 1)
	b.Str(arch.R3, arch.R4, 8) // data1 = data0+1
	b.Ldr(arch.R6, arch.R5, 0) // wcount[tid-1]++
	b.AddI(arch.R6, arch.R6, 1)
	b.Str(arch.R6, arch.R5, 0)
	b.AddI(arch.R1, arch.R1, 2)
	b.Str(arch.R1, arch.R4, 0) // release: seq = s+2 (even)
	b.SubsI(arch.R9, arch.R9, 1)
	b.Bne("w_loop")
	b.B("s_exit")
	b.Label("w_wait")
	b.Clrex()
	b.Yield()
	b.B("w_acq")

	b.Label("s_exit")
	b.MovI(arch.R0, 0)
	b.Svc(1)

	b.AlignWords(mmu.PageWords)
	b.Label("sdata")
	b.Space(mmu.PageWords)

	im, err := b.Finish()
	if err != nil {
		return nil, err
	}
	sdata := im.MustSymbol("sdata")
	wmark := im.MustSymbol("wmark")
	return &Instance{
		Image: im,
		Entry: im.MustSymbol("worker"),
		Args:  sameOps,
		Setup: func(mem Memory, threads, _ int) error {
			// Patch the writer-count immediate (movi r1, #W).
			w := seqlockWriters(threads)
			in := arch.Instruction{Op: arch.MOVI, Rd: arch.R1, Imm: int32(w)}
			if f := mem.WriteWordPriv(wmark, in.Encode()); f != nil {
				return f
			}
			// The reader invariant is data1 == data0+1, so the initial
			// state must already satisfy it.
			if f := mem.WriteWordPriv(sdata+8, 1); f != nil {
				return f
			}
			return nil
		},
		Verify: func(mem Memory, threads, ops int) error {
			w := seqlockWriters(threads)
			want := uint64(w) * uint64(ops)
			rd := func(off uint32) (uint32, error) {
				v, f := mem.ReadWordPriv(sdata + off)
				if f != nil {
					return 0, f
				}
				return v, nil
			}
			seq, err := rd(0)
			if err != nil {
				return err
			}
			d0, err := rd(4)
			if err != nil {
				return err
			}
			d1, err := rd(8)
			if err != nil {
				return err
			}
			for i := 0; i < threads; i++ {
				v, err := rd(0x200 + uint32(i)*4)
				if err != nil {
					return err
				}
				if v != 0 {
					return fmt.Errorf("seqlock: reader tid %d observed %d torn snapshots", i+1, v)
				}
			}
			var cs uint64
			for i := 0; i < w; i++ {
				v, err := rd(0x100 + uint32(i)*4)
				if err != nil {
					return err
				}
				cs += uint64(v)
			}
			if cs != want || uint64(d0) != want || uint64(seq) != 2*want || d1 != d0+1 {
				return fmt.Errorf("seqlock: writer invariant violated: cs=%d data0=%d data1=%d seq=%d want %d sections",
					cs, d0, d1, seq, want)
			}
			return nil
		},
	}, nil
}

// --- hazard-pointer reclamation ---

const (
	hazNodes  = 32
	hazLive   = 0x600D600D
	hazDead   = 0xDEADDEAD
	hpOff     = 0x40  // hazard slots, indexed by tid-1
	hvViolOff = 0x100 // reader violation counts
)

func hazardWriters(threads int) int {
	if threads >= 4 {
		return 2
	}
	return 1
}

func buildHazard(org uint32) (*Instance, error) {
	b := asm.NewBuilder(org)

	// hdata: cur +0, freelist head +4, gen +8. Nodes are [next, canary,
	// val, pad]. Writers pop a free node, publish it as cur, then scan
	// hazard slots before poisoning and freeing the displaced node.
	b.Label("worker") // r0 = ops
	b.Mov(arch.R9, arch.R0)
	b.Svc(5)
	b.Mov(arch.R11, arch.R0)
	b.LoadAddr(arch.R4, "hdata")
	b.CmpI(arch.R9, 0)
	b.Beq("h_exit")
	b.Label("hwmark")
	b.MovI(arch.R1, 1) // patched: W
	b.Cmp(arch.R11, arch.R1)
	b.Ble("h_writer")

	// Reader: publish a hazard, re-validate, dereference the canary.
	b.SubI(arch.R5, arch.R11, 1)
	b.LslI(arch.R5, arch.R5, 2)
	b.AddI(arch.R5, arch.R5, hpOff)
	b.Add(arch.R5, arch.R4, arch.R5) // &hp[tid-1]
	b.Label("hr_loop")
	b.Label("hr_acq")
	b.Ldr(arch.R1, arch.R4, 0) // c = cur
	b.Str(arch.R1, arch.R5, 0) // hp = c
	b.Ldr(arch.R2, arch.R4, 0)
	b.Cmp(arch.R1, arch.R2)
	b.Bne("hr_acq") // cur moved between read and publish: retry
	b.MovImm32(arch.R7, hazLive)
	b.Ldr(arch.R6, arch.R1, 4) // canary
	b.Cmp(arch.R6, arch.R7)
	b.Bne("hr_viol")
	b.Nop()
	b.Ldr(arch.R6, arch.R1, 4) // second deref widens the protected window
	b.Cmp(arch.R6, arch.R7)
	b.Bne("hr_viol")
	b.Label("hr_rel")
	b.MovI(arch.R6, 0)
	b.Str(arch.R6, arch.R5, 0) // clear hazard
	b.SubsI(arch.R9, arch.R9, 1)
	b.Bne("hr_loop")
	b.B("h_exit")
	b.Label("hr_viol") // dereferenced a poisoned (freed) node
	b.SubI(arch.R6, arch.R11, 1)
	b.LslI(arch.R6, arch.R6, 2)
	b.AddI(arch.R6, arch.R6, hvViolOff)
	b.Add(arch.R6, arch.R4, arch.R6)
	b.Ldr(arch.R7, arch.R6, 0)
	b.AddI(arch.R7, arch.R7, 1)
	b.Str(arch.R7, arch.R6, 0)
	b.B("hr_rel")

	// Writer.
	b.Label("h_writer")
	b.Label("hw_loop")
	b.MovI(arch.R10, 0)
	b.Label("hw_pop") // pop a node off the freelist (Treiber)
	b.AddI(arch.R7, arch.R4, 4)
	b.Ldrex(arch.R1, arch.R7)
	b.CmpI(arch.R1, 0)
	b.Beq("hw_dry")
	b.Ldr(arch.R2, arch.R1, 0)
	b.Strex(arch.R3, arch.R2, arch.R7)
	b.CmpI(arch.R3, 0)
	b.Bne("hw_pop")
	// r1 = fresh node; stamp a new generation value.
	b.Label("hw_gen")
	b.AddI(arch.R7, arch.R4, 8)
	b.Ldrex(arch.R5, arch.R7)
	b.AddI(arch.R6, arch.R5, 1)
	b.Strex(arch.R3, arch.R6, arch.R7)
	b.CmpI(arch.R3, 0)
	b.Bne("hw_gen")
	b.MovImm32(arch.R6, hazLive)
	b.Str(arch.R6, arch.R1, 4) // canary = LIVE
	b.Str(arch.R5, arch.R1, 8) // val = gen
	b.Label("hw_swap")         // old = swap(cur, node)
	b.Ldrex(arch.R2, arch.R4)
	b.Strex(arch.R3, arch.R1, arch.R4)
	b.CmpI(arch.R3, 0)
	b.Bne("hw_swap")
	b.CmpI(arch.R2, 0)
	b.Beq("hw_next")
	// Reclaim r2: wait until no hazard slot references it.
	b.MovI(arch.R10, 0)
	b.Label("hw_scan")
	b.MovI(arch.R6, 0)
	b.Label("hw_scan_loop")
	b.LslI(arch.R7, arch.R6, 2)
	b.AddI(arch.R7, arch.R7, hpOff)
	b.Add(arch.R7, arch.R4, arch.R7)
	b.Ldr(arch.R8, arch.R7, 0)
	b.Cmp(arch.R8, arch.R2)
	b.Beq("hw_scan_hit")
	b.AddI(arch.R6, arch.R6, 1)
	b.CmpI(arch.R6, MaxThreads)
	b.Blt("hw_scan_loop")
	// Clear: poison and push back onto the freelist.
	b.MovImm32(arch.R6, hazDead)
	b.Str(arch.R6, arch.R2, 4)
	b.Label("hw_push")
	b.AddI(arch.R7, arch.R4, 4)
	b.Ldrex(arch.R3, arch.R7)
	b.Str(arch.R3, arch.R2, 0)
	b.Strex(arch.R6, arch.R2, arch.R7)
	b.CmpI(arch.R6, 0)
	b.Bne("hw_push")
	b.Label("hw_next")
	b.SubsI(arch.R9, arch.R9, 1)
	b.Bne("hw_loop")
	b.B("h_exit")
	b.Label("hw_scan_hit") // a reader still holds it: bounded wait
	b.AddI(arch.R10, arch.R10, 1)
	b.MovImm32(arch.R8, 100_000)
	b.Cmp(arch.R10, arch.R8)
	b.Bge("h_stuck")
	b.Yield()
	b.B("hw_scan")
	b.Label("hw_dry") // freelist empty: every node in flight — corruption
	b.Clrex()
	b.AddI(arch.R10, arch.R10, 1)
	b.MovImm32(arch.R8, 100_000)
	b.Cmp(arch.R10, arch.R8)
	b.Bge("h_stuck")
	b.Yield()
	b.B("hw_pop")
	b.Label("h_stuck")
	b.MovI(arch.R0, 2)
	b.Svc(1)
	b.Label("h_exit")
	b.MovI(arch.R0, 0)
	b.Svc(1)

	b.AlignWords(mmu.PageWords)
	b.Label("hdata")
	b.Space(mmu.PageWords)
	b.Label("hnodes")
	b.Space(hazNodes * 4) // [next, canary, val, pad]

	im, err := b.Finish()
	if err != nil {
		return nil, err
	}
	hdata := im.MustSymbol("hdata")
	hnodes := im.MustSymbol("hnodes")
	hwmark := im.MustSymbol("hwmark")
	node := func(i uint32) uint32 { return hnodes + i*16 }
	return &Instance{
		Image: im,
		Entry: im.MustSymbol("worker"),
		Args:  sameOps,
		Setup: func(mem Memory, threads, _ int) error {
			w := hazardWriters(threads)
			in := arch.Instruction{Op: arch.MOVI, Rd: arch.R1, Imm: int32(w)}
			if f := mem.WriteWordPriv(hwmark, in.Encode()); f != nil {
				return f
			}
			// Node 0 is the initial cur (live); the rest chain onto the
			// freelist, poisoned.
			if f := mem.WriteWordPriv(node(0)+4, hazLive); f != nil {
				return f
			}
			for i := uint32(1); i < hazNodes; i++ {
				next := uint32(0)
				if i+1 < hazNodes {
					next = node(i + 1)
				}
				if f := mem.WriteWordPriv(node(i), next); f != nil {
					return f
				}
				if f := mem.WriteWordPriv(node(i)+4, hazDead); f != nil {
					return f
				}
			}
			if f := mem.WriteWordPriv(hdata, node(0)); f != nil { // cur
				return f
			}
			if f := mem.WriteWordPriv(hdata+4, node(1)); f != nil { // freelist head
				return f
			}
			return nil
		},
		Verify: func(mem Memory, threads, ops int) error {
			for i := 0; i < threads; i++ {
				v, f := mem.ReadWordPriv(hdata + hvViolOff + uint32(i)*4)
				if f != nil {
					return f
				}
				if v != 0 {
					return fmt.Errorf("hazard: reader tid %d dereferenced a freed node %d times", i+1, v)
				}
			}
			w := hazardWriters(threads)
			gen, f := mem.ReadWordPriv(hdata + 8)
			if f != nil {
				return f
			}
			if uint64(gen) != uint64(w)*uint64(ops) {
				return fmt.Errorf("hazard: generation counter %d, want %d", gen, w*ops)
			}
			// Conservation: cur plus the freelist must reach every node
			// exactly once; cur is live, free nodes are poisoned.
			inRange := func(p uint32) bool {
				return p >= hnodes && p < hnodes+hazNodes*16 && (p-hnodes)%16 == 0
			}
			seen := make(map[uint32]bool, hazNodes)
			cur, f := mem.ReadWordPriv(hdata)
			if f != nil {
				return f
			}
			if !inRange(cur) {
				return fmt.Errorf("hazard: cur %#x outside the node pool", cur)
			}
			can, f := mem.ReadWordPriv(cur + 4)
			if f != nil {
				return f
			}
			if can != hazLive {
				return fmt.Errorf("hazard: live node %#x has canary %#x", cur, can)
			}
			seen[cur] = true
			fl, f := mem.ReadWordPriv(hdata + 4)
			if f != nil {
				return f
			}
			for p := fl; p != 0; {
				if !inRange(p) {
					return fmt.Errorf("hazard: freelist left the node pool at %#x", p)
				}
				if seen[p] {
					return fmt.Errorf("hazard: node %#x reachable twice (double free)", p)
				}
				seen[p] = true
				can, f := mem.ReadWordPriv(p + 4)
				if f != nil {
					return f
				}
				if can != hazDead {
					return fmt.Errorf("hazard: free node %#x has canary %#x, want poisoned", p, can)
				}
				next, f := mem.ReadWordPriv(p)
				if f != nil {
					return f
				}
				p = next
			}
			if len(seen) != hazNodes {
				return fmt.Errorf("hazard: conservation violated: %d of %d nodes reachable", len(seen), hazNodes)
			}
			return nil
		},
	}, nil
}

// --- futex producer/consumer ---

const (
	fpcSlots = 4 // tiny ring: constant full/empty futex churn
	// fdata offsets.
	fpcMu       = 0
	fpcNotEmpty = 4
	fpcNotFull  = 8
	fpcQCount   = 12
	fpcWIdx     = 16
	fpcRIdx     = 20
	fpcProduced = 24
	fpcConsumed = 28
	fpcTotal    = 32
	fpcCsck     = 36
	fpcCntOff   = 0x40  // per-consumer pop counts (tid-1)
	fpcSumOff   = 0x140 // per-consumer value sums (tid-1)
)

func fpcProducers(threads int) int { return (threads + 1) / 2 }

func buildFutexPC(org uint32) (*Instance, error) {
	b := asm.NewBuilder(org)

	// r12 = &fdata throughout; r5 = &fring; r9 = ops (producers);
	// r11 = tid. The mutex is the canonical futex lock (0 free,
	// 1 locked, 2 locked-with-waiters); condvars are futex sequence
	// words bumped under the mutex.
	b.Label("worker") // r0 = per-producer item count
	b.Mov(arch.R9, arch.R0)
	b.Svc(5)
	b.Mov(arch.R11, arch.R0)
	b.LoadAddr(arch.R12, "fdata")
	b.LoadAddr(arch.R5, "fring")
	b.Label("fpmark")
	b.MovI(arch.R1, 1) // patched: P
	b.Cmp(arch.R11, arch.R1)
	b.Bgt("consumer")

	// Producer.
	b.CmpI(arch.R9, 0)
	b.Beq("f_exit")
	b.Label("p_loop")
	b.BL("mu_lock")
	b.Label("p_check")
	b.Ldr(arch.R1, arch.R12, fpcQCount)
	b.CmpI(arch.R1, fpcSlots)
	b.Bne("p_push")
	b.BL("cv_wait_nf")
	b.B("p_check")
	b.Label("p_push")
	b.Ldr(arch.R2, arch.R12, fpcProduced) // v = produced
	b.Ldr(arch.R3, arch.R12, fpcWIdx)
	b.AndI(arch.R6, arch.R3, fpcSlots-1)
	b.LslI(arch.R6, arch.R6, 2)
	b.StrR(arch.R2, arch.R5, arch.R6) // ring[w & mask] = v
	b.AddI(arch.R3, arch.R3, 1)
	b.Str(arch.R3, arch.R12, fpcWIdx)
	b.AddI(arch.R2, arch.R2, 1)
	b.Str(arch.R2, arch.R12, fpcProduced)
	b.AddI(arch.R1, arch.R1, 1)
	b.Str(arch.R1, arch.R12, fpcQCount)
	b.Ldr(arch.R1, arch.R12, fpcCsck) // mutual-exclusion checksum
	b.Nop()
	b.AddI(arch.R1, arch.R1, 1)
	b.Str(arch.R1, arch.R12, fpcCsck)
	b.BL("cv_sig_ne")
	b.BL("mu_unlock")
	b.SubsI(arch.R9, arch.R9, 1)
	b.Bne("p_loop")
	b.B("f_exit")

	// Consumer: r7 accumulates count, r8 sum; flushed to the per-tid
	// slots before exit.
	b.Label("consumer")
	b.MovI(arch.R7, 0)
	b.MovI(arch.R8, 0)
	b.Label("c_loop")
	b.BL("mu_lock")
	b.Label("c_check")
	b.Ldr(arch.R1, arch.R12, fpcConsumed)
	b.Ldr(arch.R2, arch.R12, fpcTotal)
	b.Cmp(arch.R1, arch.R2)
	b.Beq("c_done")
	b.Ldr(arch.R2, arch.R12, fpcQCount)
	b.CmpI(arch.R2, 0)
	b.Bne("c_pop")
	b.BL("cv_wait_ne")
	b.B("c_check")
	b.Label("c_pop")
	b.Ldr(arch.R3, arch.R12, fpcRIdx)
	b.AndI(arch.R6, arch.R3, fpcSlots-1)
	b.LslI(arch.R6, arch.R6, 2)
	b.LdrR(arch.R0, arch.R5, arch.R6) // v = ring[r & mask]
	b.Mov(arch.R10, arch.R0)          // cv_sig/mu_unlock clobber r0: park v in r10
	b.AddI(arch.R3, arch.R3, 1)
	b.Str(arch.R3, arch.R12, fpcRIdx)
	b.SubI(arch.R2, arch.R2, 1)
	b.Str(arch.R2, arch.R12, fpcQCount)
	b.AddI(arch.R1, arch.R1, 1)
	b.Str(arch.R1, arch.R12, fpcConsumed)
	b.Ldr(arch.R1, arch.R12, fpcCsck)
	b.Nop()
	b.AddI(arch.R1, arch.R1, 1)
	b.Str(arch.R1, arch.R12, fpcCsck)
	b.BL("cv_sig_nf")
	b.BL("mu_unlock")
	b.AddI(arch.R7, arch.R7, 1)
	b.Add(arch.R8, arch.R8, arch.R10)
	b.B("c_loop")
	b.Label("c_done")
	// Everything consumed: chain-wake any consumers still in cv_wait.
	b.BL("cv_sig_ne")
	b.BL("mu_unlock")
	b.SubI(arch.R1, arch.R11, 1)
	b.LslI(arch.R1, arch.R1, 2)
	b.AddI(arch.R2, arch.R1, fpcCntOff)
	b.Add(arch.R2, arch.R12, arch.R2)
	b.Str(arch.R7, arch.R2, 0)
	b.AddI(arch.R2, arch.R1, fpcSumOff)
	b.Add(arch.R2, arch.R12, arch.R2)
	b.Str(arch.R8, arch.R2, 0)
	b.Label("f_exit")
	b.MovI(arch.R0, 0)
	b.Svc(1)

	// mu_lock: the futex mutex acquire (Drepper's three-state protocol).
	// Critically, a thread that ever contended acquires with 2, not 1 —
	// otherwise its unlock would skip the wake and strand the other
	// sleepers. Clobbers r0-r3.
	b.Label("mu_lock")
	b.Label("mlk_fast")
	b.Ldrex(arch.R1, arch.R12)
	b.CmpI(arch.R1, 0)
	b.Bne("mlk_slow0")
	b.MovI(arch.R1, 1)
	b.Strex(arch.R2, arch.R1, arch.R12)
	b.CmpI(arch.R2, 0)
	b.Bne("mlk_fast")
	b.Ret()
	b.Label("mlk_slow0")
	b.Clrex()
	b.Label("mlk_slow")
	b.Ldrex(arch.R1, arch.R12)
	b.CmpI(arch.R1, 0)
	b.Bne("mlk_mark")
	b.MovI(arch.R3, 2)
	b.Strex(arch.R2, arch.R3, arch.R12) // acquire as contended
	b.CmpI(arch.R2, 0)
	b.Bne("mlk_slow")
	b.Ret()
	b.Label("mlk_mark") // held: mark contended (best effort) and sleep
	b.MovI(arch.R3, 2)
	b.Strex(arch.R2, arch.R3, arch.R12)
	b.Mov(arch.R0, arch.R12)
	b.MovI(arch.R1, 2)
	b.Svc(7) // futex_wait(&mu, 2); returns at once unless mu is still 2
	b.B("mlk_slow")

	// mu_unlock: release and wake one waiter if contended. Clobbers r0-r3.
	b.Label("mu_unlock")
	b.Label("mul_retry")
	b.Ldrex(arch.R1, arch.R12)
	b.MovI(arch.R2, 0)
	b.Strex(arch.R3, arch.R2, arch.R12)
	b.CmpI(arch.R3, 0)
	b.Bne("mul_retry")
	b.CmpI(arch.R1, 2)
	b.Bne("mul_done")
	b.Mov(arch.R0, arch.R12)
	b.MovI(arch.R1, 1)
	b.Svc(8) // futex_wake(&mu, 1)
	b.Label("mul_done")
	b.Ret()

	// cv_wait_*: standard futex condvar wait — snapshot the sequence word
	// under the mutex, drop the mutex, sleep unless the sequence moved,
	// reacquire. Nested calls, so lr is saved.
	emitCvWait := func(name string, off int32) {
		b.Label(name)
		b.Push(arch.LR, arch.R4)
		b.Ldr(arch.R4, arch.R12, off) // seq snapshot
		b.BL("mu_unlock")
		b.AddI(arch.R0, arch.R12, off)
		b.Mov(arch.R1, arch.R4)
		b.Svc(7) // futex_wait(&cv, seq)
		b.BL("mu_lock")
		b.Pop(arch.LR, arch.R4)
		b.Ret()
	}
	emitCvWait("cv_wait_ne", fpcNotEmpty)
	emitCvWait("cv_wait_nf", fpcNotFull)

	// cv_sig_*: bump the sequence word (callers hold the mutex) and wake
	// every sleeper — they revalidate their predicate anyway.
	emitCvSig := func(name string, off int32) {
		b.Label(name)
		b.Ldr(arch.R1, arch.R12, off)
		b.AddI(arch.R1, arch.R1, 1)
		b.Str(arch.R1, arch.R12, off)
		b.AddI(arch.R0, arch.R12, off)
		b.MovI(arch.R1, 64)
		b.Svc(8) // futex_wake(&cv, 64)
		b.Ret()
	}
	emitCvSig("cv_sig_ne", fpcNotEmpty)
	emitCvSig("cv_sig_nf", fpcNotFull)

	b.AlignWords(mmu.PageWords)
	b.Label("fdata")
	b.Space(mmu.PageWords)
	b.Label("fring")
	b.Space(fpcSlots)

	im, err := b.Finish()
	if err != nil {
		return nil, err
	}
	fdata := im.MustSymbol("fdata")
	fpmark := im.MustSymbol("fpmark")
	return &Instance{
		Image: im,
		Entry: im.MustSymbol("worker"),
		Args:  sameOps,
		Setup: func(mem Memory, threads, ops int) error {
			p := fpcProducers(threads)
			in := arch.Instruction{Op: arch.MOVI, Rd: arch.R1, Imm: int32(p)}
			if f := mem.WriteWordPriv(fpmark, in.Encode()); f != nil {
				return f
			}
			if f := mem.WriteWordPriv(fdata+fpcTotal, uint32(p*ops)); f != nil {
				return f
			}
			return nil
		},
		Verify: func(mem Memory, threads, ops int) error {
			p := fpcProducers(threads)
			total := uint32(p * ops)
			rd := func(off uint32) (uint32, error) {
				v, f := mem.ReadWordPriv(fdata + off)
				if f != nil {
					return 0, f
				}
				return v, nil
			}
			produced, err := rd(fpcProduced)
			if err != nil {
				return err
			}
			consumed, err := rd(fpcConsumed)
			if err != nil {
				return err
			}
			qcount, err := rd(fpcQCount)
			if err != nil {
				return err
			}
			csck, err := rd(fpcCsck)
			if err != nil {
				return err
			}
			if produced != total || consumed != total || qcount != 0 {
				return fmt.Errorf("futexpc: flow violated: produced=%d consumed=%d qcount=%d want total=%d",
					produced, consumed, qcount, total)
			}
			if csck != 2*total {
				return fmt.Errorf("futexpc: mutual exclusion violated: checksum %d, want %d", csck, 2*total)
			}
			var cnt, sum uint32
			for i := 0; i < threads; i++ {
				c, err := rd(fpcCntOff + uint32(i)*4)
				if err != nil {
					return err
				}
				s, err := rd(fpcSumOff + uint32(i)*4)
				if err != nil {
					return err
				}
				cnt += c
				sum += s
			}
			// Values are 0..total-1, each delivered exactly once; the sum is
			// conserved mod 2^32.
			var want uint32
			for v := uint32(0); v < total; v++ {
				want += v
			}
			if cnt != total || sum != want {
				return fmt.Errorf("futexpc: conservation violated: consumed %d items (want %d), sum %d (want %d)",
					cnt, total, sum, want)
			}
			return nil
		},
	}, nil
}
