package faultinject

import (
	"sync"
	"testing"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if got := in.Check(OpTxnCommit, 1, 0); got != ActNone {
		t.Fatalf("nil injector Check = %v, want ActNone", got)
	}
	if got := in.Fired(); got != 0 {
		t.Fatalf("nil injector Fired = %d, want 0", got)
	}
}

func TestAfterAndCountWindow(t *testing.T) {
	in := New(Rule{Op: OpTxnCommit, Action: ActAbort, After: 2, Count: 3})
	var got []Action
	for i := 0; i < 8; i++ {
		got = append(got, in.Check(OpTxnCommit, 1, 0))
	}
	want := []Action{ActNone, ActNone, ActAbort, ActAbort, ActAbort, ActNone, ActNone, ActNone}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: action = %v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	if in.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", in.Fired())
	}
}

func TestTIDAndAddrFilters(t *testing.T) {
	in := New(
		Rule{Op: OpHashUnlock, Action: ActStickLock, TID: 2},
		Rule{Op: OpMemStore, Action: ActFault, Addr: 0x100},
	)
	if got := in.Check(OpHashUnlock, 1, 0x40); got != ActNone {
		t.Fatalf("tid 1 unlock = %v, want ActNone", got)
	}
	if got := in.Check(OpHashUnlock, 2, 0x40); got != ActStickLock {
		t.Fatalf("tid 2 unlock = %v, want ActStickLock", got)
	}
	if got := in.Check(OpMemStore, 0, 0x104); got != ActNone {
		t.Fatalf("store 0x104 = %v, want ActNone", got)
	}
	if got := in.Check(OpMemStore, 0, 0x100); got != ActFault {
		t.Fatalf("store 0x100 = %v, want ActFault", got)
	}
	// A rule never fires at a different op site.
	if got := in.Check(OpTxnBegin, 2, 0x100); got != ActNone {
		t.Fatalf("txn-begin = %v, want ActNone", got)
	}
}

func TestPerTIDCountersAreIndependentOfOtherTIDs(t *testing.T) {
	// A rule scoped to TID 3 must not have its counter advanced by
	// other vCPUs' operations.
	in := New(Rule{Op: OpTxnBegin, Action: ActAbort, TID: 3, After: 1, Count: 1})
	for i := 0; i < 10; i++ {
		if got := in.Check(OpTxnBegin, 1, 0); got != ActNone {
			t.Fatalf("tid 1 begin = %v, want ActNone", got)
		}
	}
	if got := in.Check(OpTxnBegin, 3, 0); got != ActNone {
		t.Fatalf("tid 3 first begin = %v, want ActNone (After=1)", got)
	}
	if got := in.Check(OpTxnBegin, 3, 0); got != ActAbort {
		t.Fatalf("tid 3 second begin = %v, want ActAbort", got)
	}
	if got := in.Check(OpTxnBegin, 3, 0); got != ActNone {
		t.Fatalf("tid 3 third begin = %v, want ActNone (Count=1)", got)
	}
}

func TestConcurrentCheckFiresExactly(t *testing.T) {
	// Count rule windows hold under concurrency: with Count=k, exactly
	// k of N concurrent matching calls observe the action.
	const workers, perWorker, k = 8, 1000, 64
	in := New(Rule{Op: OpTxnCommit, Action: ActAbort, Count: k})
	var wg sync.WaitGroup
	hits := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if in.Check(OpTxnCommit, uint32(w+1), 0) == ActAbort {
					hits[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, h := range hits {
		total += h
	}
	if total != k {
		t.Fatalf("total injected = %d, want %d", total, k)
	}
	if in.Fired() != k {
		t.Fatalf("Fired = %d, want %d", in.Fired(), k)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpTxnBegin:   "txn-begin",
		OpTxnCommit:  "txn-commit",
		OpHashUnlock: "hash-unlock",
		OpMemLoad:    "mem-load",
		OpMemStore:   "mem-store",
		Op(250):      "unknown",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}
