// Package faultinject provides deterministic, rule-based fault injection
// for the emulator's concurrency substrate. Tests register rules that fire
// at the Nth matching operation on a chosen vCPU (or address) and force a
// failure that is hard to provoke naturally: a transaction abort, a
// poisoned commit, a stuck hash-entry lock holder, or a memory fault.
//
// Determinism: rules match on logical operation counts, never on wall
// clock. A rule's counter is advanced atomically per matching call, so a
// rule scoped to one TID fires at an exact, reproducible point in that
// vCPU's instruction stream. Rules scoped to "any vCPU" are deterministic
// in aggregate (the Nth matching operation machine-wide) but which vCPU
// observes the fault depends on scheduling.
//
// The injector is wired through htm.TM, hashtab.Table and mmu.Memory via
// their SetInjector methods; a nil *Injector is valid everywhere and
// injects nothing, so production paths pay one nil check.
package faultinject

import "sync/atomic"

// Op identifies an instrumented operation site.
type Op uint8

const (
	// OpTxnBegin fires when a vCPU opens an HTM transaction. ActAbort
	// dooms the transaction: it aborts at its first read/write/commit.
	OpTxnBegin Op = iota
	// OpTxnCommit fires at transaction commit. ActAbort forces a
	// conflict abort; ActPoison forces a non-transactional-store abort
	// (as if a plain store had poisoned an owned slot).
	OpTxnCommit
	// OpHashUnlock fires when a vCPU releases a hash-entry LockBit.
	// ActStickLock suppresses the release, simulating a stuck holder.
	OpHashUnlock
	// OpMemLoad and OpMemStore fire on guest word accesses through the
	// MMU. ActFault forces a protection fault. The MMU has no vCPU
	// identity, so these sites match rules with TID 0 (any) only.
	OpMemLoad
	OpMemStore
)

// String returns the site name for diagnostics.
func (o Op) String() string {
	switch o {
	case OpTxnBegin:
		return "txn-begin"
	case OpTxnCommit:
		return "txn-commit"
	case OpHashUnlock:
		return "hash-unlock"
	case OpMemLoad:
		return "mem-load"
	case OpMemStore:
		return "mem-store"
	}
	return "unknown"
}

// Action is what an instrumented site should do when a rule fires.
type Action uint8

const (
	// ActNone means no rule fired; proceed normally.
	ActNone Action = iota
	// ActAbort forces a transaction abort (htm sites).
	ActAbort
	// ActPoison forces a poisoned-slot abort (htm commit site).
	ActPoison
	// ActStickLock suppresses a hash-entry unlock (hashtab site).
	ActStickLock
	// ActFault forces a memory protection fault (mmu sites).
	ActFault
)

// Rule describes one deterministic fault. The zero value of a filter
// field means "match anything".
type Rule struct {
	// Op is the operation site this rule instruments.
	Op Op
	// Action is injected when the rule fires.
	Action Action
	// TID restricts the rule to one vCPU; 0 matches any vCPU.
	TID uint32
	// Addr restricts the rule to one guest address; 0 matches any.
	Addr uint32
	// After skips the first After matching operations, so the rule
	// first fires at matching operation After+1.
	After uint64
	// Count bounds how many times the rule fires; 0 means no bound.
	Count uint64
}

type ruleState struct {
	Rule
	seen  atomic.Uint64 // matching operations observed
	fired atomic.Uint64 // faults actually injected
}

// Injector evaluates a fixed rule set. It is safe for concurrent use and
// a nil receiver injects nothing.
type Injector struct {
	rules []*ruleState
}

// New builds an injector from rules. Rules are evaluated in order; the
// first rule whose window covers the current matching operation wins.
func New(rules ...Rule) *Injector {
	in := &Injector{rules: make([]*ruleState, 0, len(rules))}
	for _, r := range rules {
		in.rules = append(in.rules, &ruleState{Rule: r})
	}
	return in
}

// Check reports the action to inject at an operation site. Every call
// that matches a rule's filters advances that rule's operation counter,
// whether or not the rule's After/Count window covers it.
func (in *Injector) Check(op Op, tid, addr uint32) Action {
	if in == nil {
		return ActNone
	}
	for _, r := range in.rules {
		if r.Op != op {
			continue
		}
		if r.TID != 0 && r.TID != tid {
			continue
		}
		if r.Addr != 0 && r.Addr != addr {
			continue
		}
		n := r.seen.Add(1)
		if n <= r.After {
			continue
		}
		if r.Count != 0 && n > r.After+r.Count {
			continue
		}
		r.fired.Add(1)
		return r.Action
	}
	return ActNone
}

// Fired returns how many faults have been injected across all rules.
func (in *Injector) Fired() uint64 {
	if in == nil {
		return 0
	}
	var n uint64
	for _, r := range in.rules {
		n += r.fired.Load()
	}
	return n
}
