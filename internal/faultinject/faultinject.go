// Package faultinject provides deterministic, rule-based fault injection
// for the emulator's concurrency substrate. Tests register rules that fire
// at the Nth matching operation on a chosen vCPU (or address) and force a
// failure that is hard to provoke naturally: a transaction abort, a
// poisoned commit, a stuck hash-entry lock holder, or a memory fault.
//
// Determinism: rules match on logical operation counts, never on wall
// clock. A rule's counter is advanced atomically per matching call, so a
// rule scoped to one TID fires at an exact, reproducible point in that
// vCPU's instruction stream. Rules scoped to "any vCPU" are deterministic
// in aggregate (the Nth matching operation machine-wide) but which vCPU
// observes the fault depends on scheduling.
//
// The injector is wired through htm.TM, hashtab.Table and mmu.Memory via
// their SetInjector methods; a nil *Injector is valid everywhere and
// injects nothing, so production paths pay one nil check.
package faultinject

import (
	"fmt"
	"sync/atomic"
)

// Op identifies an instrumented operation site.
type Op uint8

const (
	// OpTxnBegin fires when a vCPU opens an HTM transaction. ActAbort
	// dooms the transaction: it aborts at its first read/write/commit.
	OpTxnBegin Op = iota
	// OpTxnCommit fires at transaction commit. ActAbort forces a
	// conflict abort; ActPoison forces a non-transactional-store abort
	// (as if a plain store had poisoned an owned slot).
	OpTxnCommit
	// OpHashUnlock fires when a vCPU releases a hash-entry LockBit.
	// ActStickLock suppresses the release, simulating a stuck holder.
	OpHashUnlock
	// OpMemLoad and OpMemStore fire on guest word accesses through the
	// MMU. ActFault forces a protection fault. The MMU has no vCPU
	// identity, so these sites match rules with TID 0 (any) only.
	OpMemLoad
	OpMemStore
)

// String returns the site name for diagnostics.
func (o Op) String() string {
	switch o {
	case OpTxnBegin:
		return "txn-begin"
	case OpTxnCommit:
		return "txn-commit"
	case OpHashUnlock:
		return "hash-unlock"
	case OpMemLoad:
		return "mem-load"
	case OpMemStore:
		return "mem-store"
	}
	return "unknown"
}

// ParseOp resolves an operation-site name (the Op.String form) back to
// its Op. It is the single source of truth for external rule encodings
// (the job service's JSON fault rules, the adversary's repro files).
func ParseOp(s string) (Op, error) {
	for _, o := range []Op{OpTxnBegin, OpTxnCommit, OpHashUnlock, OpMemLoad, OpMemStore} {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown op %q (want txn-begin, txn-commit, hash-unlock, mem-load or mem-store)", s)
}

// Action is what an instrumented site should do when a rule fires.
type Action uint8

const (
	// ActNone means no rule fired; proceed normally.
	ActNone Action = iota
	// ActAbort forces a transaction abort (htm sites).
	ActAbort
	// ActPoison forces a poisoned-slot abort (htm commit site).
	ActPoison
	// ActStickLock suppresses a hash-entry unlock (hashtab site).
	ActStickLock
	// ActFault forces a memory protection fault (mmu sites).
	ActFault
)

// String returns the action name for diagnostics and external encodings.
func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActAbort:
		return "abort"
	case ActPoison:
		return "poison"
	case ActStickLock:
		return "stick-lock"
	case ActFault:
		return "fault"
	}
	return "unknown"
}

// ParseAction resolves an action name (the Action.String form) back to
// its Action. ActNone is not accepted: an external rule that injects
// nothing is a mistake, not a request.
func ParseAction(s string) (Action, error) {
	for _, a := range []Action{ActAbort, ActPoison, ActStickLock, ActFault} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown action %q (want abort, poison, stick-lock or fault)", s)
}

// Rule describes one deterministic fault. The zero value of a filter
// field means "match anything".
type Rule struct {
	// Op is the operation site this rule instruments.
	Op Op
	// Action is injected when the rule fires.
	Action Action
	// TID restricts the rule to one vCPU; 0 matches any vCPU.
	TID uint32
	// Addr restricts the rule to one guest address; 0 matches any.
	Addr uint32
	// After skips the first After matching operations, so the rule
	// first fires at matching operation After+1.
	After uint64
	// Count bounds how many times the rule fires; 0 means no bound.
	Count uint64
}

// actionsFor is the op/action compatibility matrix: which injections an
// instrumented site actually honours. An incompatible pair parses but
// can never fire usefully — Validate turns that silent no-op into an
// upfront error.
func actionsFor(op Op) []Action {
	switch op {
	case OpTxnBegin:
		return []Action{ActAbort}
	case OpTxnCommit:
		return []Action{ActAbort, ActPoison}
	case OpHashUnlock:
		return []Action{ActStickLock}
	case OpMemLoad, OpMemStore:
		return []Action{ActFault}
	}
	return nil
}

// Validate rejects rules whose action the op site does not honour, and
// rules on MMU sites scoped to a TID (the MMU has no vCPU identity, so
// such a rule would never match).
func (r Rule) Validate() error {
	ok := false
	for _, a := range actionsFor(r.Op) {
		if a == r.Action {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("faultinject: action %q is not injectable at op %q", r.Action, r.Op)
	}
	if (r.Op == OpMemLoad || r.Op == OpMemStore) && r.TID != 0 {
		return fmt.Errorf("faultinject: op %q cannot be scoped to a tid (MMU sites match any vCPU)", r.Op)
	}
	return nil
}

// String renders the rule compactly for CSV rows and repro notes.
func (r Rule) String() string {
	s := fmt.Sprintf("%s:%s", r.Op, r.Action)
	if r.TID != 0 {
		s += fmt.Sprintf(":t%d", r.TID)
	}
	if r.Addr != 0 {
		s += fmt.Sprintf(":a%#x", r.Addr)
	}
	if r.After != 0 {
		s += fmt.Sprintf(":+%d", r.After)
	}
	if r.Count != 0 {
		s += fmt.Sprintf(":x%d", r.Count)
	}
	return s
}

type ruleState struct {
	Rule
	seen  atomic.Uint64 // matching operations observed
	fired atomic.Uint64 // faults actually injected
}

// Injector evaluates a fixed rule set. It is safe for concurrent use and
// a nil receiver injects nothing.
type Injector struct {
	rules []*ruleState
}

// New builds an injector from rules. Rules are evaluated in order; the
// first rule whose window covers the current matching operation wins.
func New(rules ...Rule) *Injector {
	in := &Injector{rules: make([]*ruleState, 0, len(rules))}
	for _, r := range rules {
		in.rules = append(in.rules, &ruleState{Rule: r})
	}
	return in
}

// Check reports the action to inject at an operation site. Every call
// that matches a rule's filters advances that rule's operation counter,
// whether or not the rule's After/Count window covers it.
func (in *Injector) Check(op Op, tid, addr uint32) Action {
	if in == nil {
		return ActNone
	}
	for _, r := range in.rules {
		if r.Op != op {
			continue
		}
		if r.TID != 0 && r.TID != tid {
			continue
		}
		if r.Addr != 0 && r.Addr != addr {
			continue
		}
		n := r.seen.Add(1)
		if n <= r.After {
			continue
		}
		if r.Count != 0 && n > r.After+r.Count {
			continue
		}
		r.fired.Add(1)
		return r.Action
	}
	return ActNone
}

// Fired returns how many faults have been injected across all rules.
func (in *Injector) Fired() uint64 {
	if in == nil {
		return 0
	}
	var n uint64
	for _, r := range in.rules {
		n += r.fired.Load()
	}
	return n
}

// RuleStat reports one rule's observation and injection counts.
type RuleStat struct {
	Rule  Rule
	Seen  uint64 // matching operations observed
	Fired uint64 // faults actually injected
}

// RuleStats returns per-rule counts in registration order. The adversary
// uses them as coverage feedback: a rule that never fired explored
// nothing and is a candidate for removal or retargeting.
func (in *Injector) RuleStats() []RuleStat {
	if in == nil {
		return nil
	}
	out := make([]RuleStat, 0, len(in.rules))
	for _, r := range in.rules {
		out = append(out, RuleStat{Rule: r.Rule, Seen: r.seen.Load(), Fired: r.fired.Load()})
	}
	return out
}
