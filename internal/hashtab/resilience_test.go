package hashtab

import (
	"testing"

	"atomemu/internal/faultinject"
)

func TestSetWaitBudgetExhaustion(t *testing.T) {
	tab, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	tab.SpinBudget = 64
	const addr = 0x40
	tab.Set(addr, 1)
	if !tab.Lock(addr, 1) {
		t.Fatal("lock by owner should succeed")
	}
	if tab.SetWait(addr, 2) {
		t.Fatal("SetWait must give up once the spin budget is exhausted")
	}
	tab.Unlock(addr, 1)
	if !tab.SetWait(addr, 2) {
		t.Fatal("SetWait should claim a released entry")
	}
	if got := tab.Get(addr); got != 2 {
		t.Fatalf("entry owner = %d, want 2", got)
	}
}

func TestStuckUnlockInjectionLeavesLockHeld(t *testing.T) {
	tab, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	tab.SpinBudget = 32
	tab.SetInjector(faultinject.New(faultinject.Rule{
		Op: faultinject.OpHashUnlock, Action: faultinject.ActStickLock, TID: 1, Count: 1,
	}))
	const addr = 0x80
	tab.Set(addr, 1)
	if !tab.Lock(addr, 1) {
		t.Fatal("lock should succeed")
	}
	tab.Unlock(addr, 1) // swallowed by the injected fault
	if !tab.Locked(addr) {
		t.Fatal("injected stuck unlock should leave the LockBit set")
	}
	if tab.SetWait(addr, 2) {
		t.Fatal("SetWait must time out against a stuck holder")
	}
	// The rule's window is spent: a second unlock goes through.
	tab.Unlock(addr, 1)
	if tab.Locked(addr) {
		t.Fatal("second unlock should release the entry")
	}
}
