package hashtab

import (
	"sync"
	"testing"
	"testing/quick"
)

func newTable(t *testing.T, bits uint) *Table {
	t.Helper()
	tab, err := New(bits)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewValidation(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Error("too-small table should fail")
	}
	if _, err := New(29); err == nil {
		t.Error("too-large table should fail")
	}
	tab := newTable(t, 10)
	if tab.Len() != 1024 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestSetGetCheckOwner(t *testing.T) {
	tab := newTable(t, 10)
	const addr = 0x1234_5678 &^ 3
	if tab.Get(addr) != Empty {
		t.Fatal("fresh entry should be empty")
	}
	tab.Set(addr, 7)
	if !tab.CheckOwner(addr, 7) {
		t.Fatal("owner check failed")
	}
	tab.Set(addr, 9)
	if tab.CheckOwner(addr, 7) {
		t.Fatal("stale owner must not pass: this is the store-test")
	}
	if !tab.CheckOwner(addr, 9) {
		t.Fatal("new owner check failed")
	}
}

func TestIndexAliasing(t *testing.T) {
	tab := newTable(t, 10) // covers 4 KiB of word addresses before aliasing
	a := uint32(0x1000)
	b := a + uint32(tab.Len())*4 // exactly one table-span away: must collide
	if !tab.Collides(a, b) {
		t.Fatalf("addresses %#x and %#x should collide", a, b)
	}
	c := a + 4
	if tab.Collides(a, c) {
		t.Fatal("adjacent words should not collide")
	}
	if tab.Collides(a, a) {
		t.Fatal("an address does not collide with itself")
	}
	// A colliding store by another thread breaks the owner check — the
	// paper's benign spurious SC failure.
	tab.Set(a, 1)
	tab.Set(b, 2)
	if tab.CheckOwner(a, 1) {
		t.Fatal("colliding store must break ownership")
	}
}

func TestQuickIndexInRangeAndWordStable(t *testing.T) {
	tab := newTable(t, 12)
	f := func(addr uint32) bool {
		idx := tab.Index(addr)
		if int(idx) >= tab.Len() {
			return false
		}
		// All byte addresses within one word map to the same entry.
		return tab.Index(addr&^3) == tab.Index(addr&^3|3)&^0 || true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSameWordSameEntry(t *testing.T) {
	tab := newTable(t, 12)
	f := func(wordAddr uint32) bool {
		base := wordAddr &^ 3
		idx := tab.Index(base)
		for o := uint32(1); o < 4; o++ {
			if tab.Index(base|o) != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLockUnlock(t *testing.T) {
	tab := newTable(t, 10)
	const addr = 0x40
	tab.Set(addr, 3)
	if !tab.Lock(addr, 3) {
		t.Fatal("lock by owner should succeed")
	}
	if !tab.Locked(addr) {
		t.Fatal("entry should be locked")
	}
	if tab.Lock(addr, 3) {
		t.Fatal("double lock should fail")
	}
	tab.Unlock(addr, 3)
	if tab.Locked(addr) {
		t.Fatal("entry should be unlocked")
	}
	if tab.Get(addr) != Empty {
		t.Fatal("unlock should clear the entry")
	}
}

func TestLockFailsAfterSteal(t *testing.T) {
	tab := newTable(t, 10)
	const addr = 0x40
	tab.Set(addr, 3)
	tab.Set(addr, 5) // another thread's LL or store stole the entry
	if tab.Lock(addr, 3) {
		t.Fatal("lock with stale tid must fail — the HST-WEAK SC test")
	}
}

func TestUnlockRespectsOverwrite(t *testing.T) {
	tab := newTable(t, 10)
	const addr = 0x40
	tab.Set(addr, 3)
	if !tab.Lock(addr, 3) {
		t.Fatal("lock failed")
	}
	// A racing LL overwrites the locked entry (allowed: single-word table).
	tab.Set(addr, 8)
	tab.Unlock(addr, 3) // must NOT clobber thread 8's claim
	if got := tab.Get(addr); got != 8 {
		t.Fatalf("unlock clobbered racing claim: entry = %d, want 8", got)
	}
}

func TestClear(t *testing.T) {
	tab := newTable(t, 8)
	for a := uint32(0); a < 64; a += 4 {
		tab.Set(a, a+1)
	}
	tab.Clear()
	for a := uint32(0); a < 64; a += 4 {
		if tab.Get(a) != Empty {
			t.Fatalf("entry %#x not cleared", a)
		}
	}
}

// TestConcurrentOwnershipRace: concurrent Set/CheckOwner sequences never
// observe a tid that was never written — entries hold exactly what some
// thread stored (single-word atomicity).
func TestConcurrentOwnershipRace(t *testing.T) {
	tab := newTable(t, 10)
	const addr = 0x80
	const goroutines = 8
	var wg sync.WaitGroup
	for g := uint32(1); g <= goroutines; g++ {
		wg.Add(1)
		go func(tid uint32) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tab.Set(addr, tid)
				got := tab.Get(addr)
				if got == Empty || got > goroutines {
					t.Errorf("observed impossible entry %d", got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentLockMutualExclusion: only one thread can hold an entry lock
// at a time; the lock-protected counter must not lose updates.
func TestConcurrentLockMutualExclusion(t *testing.T) {
	tab := newTable(t, 10)
	const addr = 0xc0
	counter := 0
	const goroutines = 4
	const perG = 500
	var wg sync.WaitGroup
	for g := uint32(1); g <= goroutines; g++ {
		wg.Add(1)
		go func(tid uint32) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				for {
					tab.SetWait(addr, tid)
					if tab.Lock(addr, tid) {
						break
					}
				}
				counter++ // protected by the entry lock
				tab.Unlock(addr, tid)
			}
		}(g)
	}
	wg.Wait()
	if counter != goroutines*perG {
		t.Fatalf("counter = %d, want %d — entry lock is not mutually exclusive", counter, goroutines*perG)
	}
}
