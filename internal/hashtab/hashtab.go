// Package hashtab implements the non-blocking store-test hash table at the
// heart of the paper's HST scheme (§III-A, Fig. 4).
//
// The table maps guest addresses to the id of the thread that last touched
// them through an instrumented access. Following the paper's design it is a
// flat array with a single word per entry so that Set and Get compile to one
// atomic store and one atomic load — cheap enough to inline at the IR level
// instead of calling a helper. The index is taken directly from the address
// bits (word-aligned), so distinct addresses may collide; collisions only
// cause spurious SC failures (retried by the guest), never wrong successes.
//
// HST-WEAK additionally uses an entry as a tiny lock during SC emulation:
// Lock/Unlock flip the entry's high bit with CAS.
package hashtab

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"atomemu/internal/faultinject"
)

// LockBit marks an entry locked by an SC in progress (HST-WEAK).
const LockBit uint32 = 1 << 31

// Empty is the value of an untouched entry. Thread ids must be nonzero and
// below LockBit.
const Empty uint32 = 0

// DefaultSpinBudget bounds SetWait's spin on a locked entry. An SC
// critical section is a few dozen instructions, so 2^20 yields means the
// holder is stuck (died, or was wedged by fault injection), not slow.
const DefaultSpinBudget = 1 << 20

// Table is the store-test hash table.
type Table struct {
	entries []atomic.Uint32
	mask    uint32
	// SpinBudget bounds SetWait's spin on a locked entry; 0 means
	// DefaultSpinBudget. Set before the table is shared.
	SpinBudget int
	inj        *faultinject.Injector
}

// New creates a table with 2^bits entries (covering 2^(bits+2) bytes of
// guest address space before aliasing). The paper's configuration maps a
// 4 GiB guest space into a 256 MiB region; the default used by the engine
// (engine.DefaultConfig) is bits = 14 — 64 KiB of host memory, sized to the
// emulator's 4 GiB guest space at the same aliasing rate the collision
// census (Table I) found negligible.
func New(bits uint) (*Table, error) {
	if bits < 4 || bits > 28 {
		return nil, fmt.Errorf("hashtab: bits %d out of range [4,28]", bits)
	}
	n := uint32(1) << bits
	return &Table{entries: make([]atomic.Uint32, n), mask: n - 1}, nil
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.entries) }

// Index computes the entry index for a guest address: the word address
// masked into the table, exactly the paper's "embed the index in the memory
// address" trick.
func (t *Table) Index(addr uint32) uint32 { return addr >> 2 & t.mask }

// Collides reports whether two distinct addresses share an entry.
func (t *Table) Collides(a, b uint32) bool { return a != b && t.Index(a) == t.Index(b) }

// Set records tid as the last toucher of addr: Htable_set in the paper.
// One atomic store; no locking.
func (t *Table) Set(addr, tid uint32) { t.entries[t.Index(addr)].Store(tid) }

// SetInjector installs a fault injector (nil to disable). Call before the
// table is shared; the field is read without synchronization afterwards.
func (t *Table) SetInjector(inj *faultinject.Injector) { t.inj = inj }

// SetWait records tid like Set but respects an in-progress SC entry lock,
// spinning until the entry is released. HST-WEAK's LL must use this: with no
// stop-the-world around SC, a plain Set could clobber the lock bit and let
// two SCs enter their critical sections at once.
//
// The spin is bounded by SpinBudget: SetWait returns false if the lock
// holder never releases, so the caller can raise a watchdog diagnostic
// instead of hanging the vCPU. A true return means tid owns the entry.
func (t *Table) SetWait(addr, tid uint32) bool {
	e := &t.entries[t.Index(addr)]
	budget := t.SpinBudget
	if budget <= 0 {
		budget = DefaultSpinBudget
	}
	for spins := 0; ; {
		w := e.Load()
		if w&LockBit != 0 {
			spins++
			if spins >= budget {
				return false
			}
			runtime.Gosched()
			continue
		}
		if e.CompareAndSwap(w, tid) {
			return true
		}
	}
}

// Get returns the current owner of addr's entry: Htable_check.
func (t *Table) Get(addr uint32) uint32 { return t.entries[t.Index(addr)].Load() }

// CheckOwner reports whether the entry for addr still belongs to tid — the
// SC-side test. A store or LL by any other thread to a colliding address
// flips the entry and makes this false.
func (t *Table) CheckOwner(addr, tid uint32) bool { return t.Get(addr) == tid }

// Lock attempts to transition addr's entry from tid to tid|LockBit,
// claiming it for an SC in progress (HST-WEAK). It fails if the entry no
// longer belongs to tid.
func (t *Table) Lock(addr, tid uint32) bool {
	return t.entries[t.Index(addr)].CompareAndSwap(tid, tid|LockBit)
}

// Unlock releases a Lock, clearing the entry. If another thread already
// overwrote the entry (a racing LL or store) the unlock is a no-op — their
// claim stands.
func (t *Table) Unlock(addr, tid uint32) {
	if t.inj.Check(faultinject.OpHashUnlock, tid, addr) == faultinject.ActStickLock {
		return // simulate a stuck holder: leave the LockBit set
	}
	t.entries[t.Index(addr)].CompareAndSwap(tid|LockBit, Empty)
}

// Locked reports whether addr's entry is currently locked.
func (t *Table) Locked(addr uint32) bool { return t.Get(addr)&LockBit != 0 }

// LoadIndex reads an entry by index (HST-HTM maps entries into its
// transactional address space by index).
func (t *Table) LoadIndex(idx uint32) uint32 { return t.entries[idx].Load() }

// StoreIndex writes an entry by index.
func (t *Table) StoreIndex(idx, val uint32) { t.entries[idx].Store(val) }

// Clear resets every entry; test helper.
func (t *Table) Clear() {
	for i := range t.entries {
		t.entries[i].Store(Empty)
	}
}

// Snapshot copies every entry for a checkpoint. LockBits are cleared in
// the copy: an entry locked at capture time belongs to an SC that will not
// exist after a restore (monitors are disarmed), and a stuck lock from
// fault injection must not survive rollback either.
func (t *Table) Snapshot() []uint32 {
	out := make([]uint32, len(t.entries))
	for i := range t.entries {
		out[i] = t.entries[i].Load() &^ LockBit
	}
	return out
}

// Restore installs entries captured by Snapshot. Call only at machine
// quiescence.
func (t *Table) Restore(entries []uint32) {
	for i := range t.entries {
		v := Empty
		if i < len(entries) {
			v = entries[i] &^ LockBit
		}
		t.entries[i].Store(v)
	}
}
