package hashtab

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestSetWaitLockMutualExclusion models HST-WEAK's SC protocol from many
// goroutines at once: each thread publishes ownership with SetWait (the LL
// side, which must respect an in-progress SC's entry lock), then tries to
// Lock the entry for its critical section. No two threads may ever be
// inside the critical section together, and a locked entry must never be
// observed clobbered by a racing SetWait. Run with -race.
func TestSetWaitLockMutualExclusion(t *testing.T) {
	tab, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	const addr = uint32(0x1000)
	const workers = 8
	iters := 2000
	if testing.Short() {
		iters = 200
	}

	var inCrit atomic.Int32
	var overlaps, clobbers atomic.Int32
	var scWins atomic.Uint64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid uint32) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				tab.SetWait(addr, tid) // LL: publish ownership, honouring the lock
				if !tab.Lock(addr, tid) {
					continue // another thread's LL/store took the entry — SC fails
				}
				if inCrit.Add(1) != 1 {
					overlaps.Add(1)
				}
				if tab.Get(addr) != tid|LockBit {
					clobbers.Add(1) // a SetWait overwrote a locked entry
				}
				inCrit.Add(-1)
				tab.Unlock(addr, tid)
				scWins.Add(1)
			}
		}(uint32(w) + 1)
	}
	close(start)
	wg.Wait()

	if n := overlaps.Load(); n != 0 {
		t.Errorf("%d overlapping SC critical sections", n)
	}
	if n := clobbers.Load(); n != 0 {
		t.Errorf("%d locked entries clobbered by SetWait", n)
	}
	if scWins.Load() == 0 {
		t.Error("no SC ever entered its critical section")
	}
	if tab.Locked(addr) {
		t.Error("entry left locked after all workers unlocked")
	}
}

// TestSetWaitRacingSetters: plain ownership races (no locks involved) must
// always leave the entry owned by one of the racers — never a torn or
// stale-locked value.
func TestSetWaitRacingSetters(t *testing.T) {
	tab, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	const addr = uint32(0x40)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid uint32) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tab.SetWait(addr, tid)
			}
		}(uint32(w) + 1)
	}
	wg.Wait()
	owner := tab.Get(addr)
	if owner == Empty || owner > workers {
		t.Fatalf("final owner %d is not one of the racing tids", owner)
	}
}
