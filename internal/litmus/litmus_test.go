package litmus

import (
	"testing"

	"atomemu/internal/core"
)

// schemeAtomicity is the paper's Table II claim per scheme.
var schemeAtomicity = map[string]core.Atomicity{
	"pico-cas":  core.AtomicityIncorrect,
	"pico-st":   core.AtomicityStrong,
	"pico-htm":  core.AtomicityStrong,
	"hst":       core.AtomicityStrong,
	"hst-weak":  core.AtomicityWeak,
	"hst-htm":   core.AtomicityStrong,
	"pst":       core.AtomicityStrong,
	"pst-remap": core.AtomicityStrong,
	"pst-mpk":   core.AtomicityStrong,
}

// TestSequencesMatchExpectationPerScheme replays every §IV-A sequence under
// every scheme and checks the final SC outcome against the paper's analysis
// for that scheme's atomicity level.
func TestSequencesMatchExpectationPerScheme(t *testing.T) {
	for scheme, atom := range schemeAtomicity {
		for _, seq := range StandardSequences() {
			t.Run(scheme+"/"+seq.Name, func(t *testing.T) {
				res, err := Run(scheme, seq)
				if err != nil {
					t.Fatal(err)
				}
				want := seq.Expect[atom]
				if res.FinalSCSuccess != want {
					t.Fatalf("%s under %s (%v): SC_a success = %v, want %v",
						seq.Name, scheme, atom, res.FinalSCSuccess, want)
				}
				// Memory consistency: when SC_a succeeded the final value
				// is its value; the intervening thread has halted either way.
				if res.FinalSCSuccess && res.FinalValue != valF {
					t.Errorf("SC_a succeeded but x = %#x, want %#x", res.FinalValue, valF)
				}
				if !res.FinalSCSuccess && res.FinalValue == valF {
					t.Errorf("SC_a failed but x = %#x (its value leaked)", res.FinalValue)
				}
			})
		}
	}
}

// TestClassificationMatchesTableII: the measured atomicity classification
// must equal each scheme's claim — the paper's Table II, regenerated.
func TestClassificationMatchesTableII(t *testing.T) {
	for scheme, want := range schemeAtomicity {
		t.Run(scheme, func(t *testing.T) {
			results, err := RunAll(scheme)
			if err != nil {
				t.Fatal(err)
			}
			if got := Classify(results); got != want {
				t.Fatalf("measured atomicity of %s = %v, want %v", scheme, got, want)
			}
		})
	}
}

// TestIntermediateSCsSucceed: thread b's SCs inside the dances are
// uncontended at their point in the interleaving and must succeed for the
// sequence to mean anything.
func TestIntermediateSCsSucceed(t *testing.T) {
	for _, scheme := range []string{"pico-cas", "hst", "hst-weak", "pst"} {
		res, err := Run(scheme, StandardSequences()[1]) // Seq2
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range res.SCs {
			if sc.Thread == 1 && !sc.Success {
				t.Errorf("%s: T1's SC at event %d failed — the dance broke down", scheme, sc.EventIndex)
			}
		}
	}
}

// TestSeq2ExposesABAOnPicoCASOnly is the headline single-fact check.
func TestSeq2ExposesABAOnPicoCASOnly(t *testing.T) {
	for scheme := range schemeAtomicity {
		res, err := Run(scheme, StandardSequences()[1])
		if err != nil {
			t.Fatal(err)
		}
		if scheme == "pico-cas" {
			if !res.FinalSCSuccess {
				t.Errorf("pico-cas must be fooled by the ABA dance")
			}
		} else if res.FinalSCSuccess {
			t.Errorf("%s was fooled by the ABA dance", scheme)
		}
	}
}

func TestSequenceValueTrailing(t *testing.T) {
	// After Seq2 under a correct scheme: SC_a failed, so x holds thread
	// b's last SC value (valC).
	res, err := Run("hst", StandardSequences()[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalValue != valC {
		t.Fatalf("x = %#x, want %#x", res.FinalValue, valC)
	}
}

func TestOpKindString(t *testing.T) {
	if OpLL.String() != "LL" || OpSC.String() != "SC" || OpStore.String() != "S" {
		t.Error("OpKind strings")
	}
}

func TestClassifyFallbacks(t *testing.T) {
	// Missing results default to incorrect.
	if got := Classify(map[string]*Result{}); got != core.AtomicityIncorrect {
		t.Errorf("empty classification = %v", got)
	}
}
