// Package litmus deterministically replays the paper's §IV-A interleavings
// (Seq1–Seq4 plus the definitional weak/strong sequences) against every
// emulation scheme and classifies the atomicity each scheme actually
// enforces — measured, not asserted.
//
// Each sequence is a global order of LL/SC/store events from two guest
// threads on one synchronization variable. The harness compiles a per-thread
// GA32 program, runs the machine in step mode (one guest instruction per
// translation block) and advances exactly one thread at a time until its
// next event's architectural effect is visible in the vCPU counters, giving
// a fully deterministic interleaving.
package litmus

import (
	"fmt"

	"atomemu/internal/arch"
	"atomemu/internal/asm"
	"atomemu/internal/core"
	"atomemu/internal/engine"
)

// OpKind is a litmus event kind.
type OpKind uint8

// Event kinds.
const (
	OpLL OpKind = iota
	OpSC
	OpStore
)

func (k OpKind) String() string {
	switch k {
	case OpLL:
		return "LL"
	case OpSC:
		return "SC"
	case OpStore:
		return "S"
	}
	return "?"
}

// Event is one step of the global interleaving: thread T performs Op
// (with value Val for SC and stores) on the shared variable.
type Event struct {
	T   int
	Op  OpKind
	Val uint32
}

// Sequence is a named interleaving with the initial value of x.
type Sequence struct {
	Name   string
	Init   uint32
	Events []Event
	// Expect maps an atomicity level to whether the *final SC* (the last
	// SC of thread 0, the paper's SC_a) must succeed under it.
	Expect map[core.Atomicity]bool
}

// Values used across the standard sequences: c is the initial value, d an
// intermediate one.
const (
	valC = 0x10
	valD = 0x20
	valF = 0x77 // the final SC_a's attempted value
)

// StandardSequences returns the paper's §IV-A sequences with their expected
// outcomes per atomicity level (true = SC_a succeeds).
func StandardSequences() []Sequence {
	return []Sequence{
		{
			// Seq1: LLa(c) → Sb(d) → Sb(c) → SCa.
			// Plain stores restore the value: only strong atomicity fails it.
			Name: "Seq1", Init: valC,
			Events: []Event{
				{0, OpLL, 0}, {1, OpStore, valD}, {1, OpStore, valC}, {0, OpSC, valF},
			},
			Expect: map[core.Atomicity]bool{
				core.AtomicityStrong: false, core.AtomicityWeak: true, core.AtomicityIncorrect: true,
			},
		},
		{
			// Seq2: LLa(c) → LLb(c) → SCb(d) → LLb(d) → SCb(c) → SCa.
			// The ABA dance via SCs: weak atomicity must catch it;
			// PICO-CAS sees value c and succeeds — the ABA problem.
			Name: "Seq2", Init: valC,
			Events: []Event{
				{0, OpLL, 0}, {1, OpLL, 0}, {1, OpSC, valD},
				{1, OpLL, 0}, {1, OpSC, valC}, {0, OpSC, valF},
			},
			Expect: map[core.Atomicity]bool{
				core.AtomicityStrong: false, core.AtomicityWeak: false, core.AtomicityIncorrect: true,
			},
		},
		{
			// Seq3: LLa(c) → LLb(c) → SCb(d) → Sb(c) → SCa.
			Name: "Seq3", Init: valC,
			Events: []Event{
				{0, OpLL, 0}, {1, OpLL, 0}, {1, OpSC, valD}, {1, OpStore, valC}, {0, OpSC, valF},
			},
			Expect: map[core.Atomicity]bool{
				core.AtomicityStrong: false, core.AtomicityWeak: false, core.AtomicityIncorrect: true,
			},
		},
		{
			// Seq4: LLa(c) → Sb(d) → LLb(d) → SCb(c) → SCa.
			Name: "Seq4", Init: valC,
			Events: []Event{
				{0, OpLL, 0}, {1, OpStore, valD}, {1, OpLL, 0}, {1, OpSC, valC}, {0, OpSC, valF},
			},
			Expect: map[core.Atomicity]bool{
				core.AtomicityStrong: false, core.AtomicityWeak: false, core.AtomicityIncorrect: true,
			},
		},
		{
			// WeakDef: LLa(c) → LLb(c) → SCb(d) → SCa.
			// The definitional weak-atomicity failure; even PICO-CAS fails
			// it because the value actually changed.
			Name: "WeakDef", Init: valC,
			Events: []Event{
				{0, OpLL, 0}, {1, OpLL, 0}, {1, OpSC, valD}, {0, OpSC, valF},
			},
			Expect: map[core.Atomicity]bool{
				core.AtomicityStrong: false, core.AtomicityWeak: false, core.AtomicityIncorrect: false,
			},
		},
		{
			// StrongDef: LLa(c) → Sb(c) → SCa.
			// A same-value plain store: only strong atomicity detects it.
			Name: "StrongDef", Init: valC,
			Events: []Event{
				{0, OpLL, 0}, {1, OpStore, valC}, {0, OpSC, valF},
			},
			Expect: map[core.Atomicity]bool{
				core.AtomicityStrong: false, core.AtomicityWeak: true, core.AtomicityIncorrect: true,
			},
		},
	}
}

// SCOutcome records one SC event's result.
type SCOutcome struct {
	EventIndex int
	Thread     int
	Success    bool
}

// Result is the outcome of replaying one sequence under one scheme.
type Result struct {
	Sequence string
	Scheme   string
	// SCs holds every SC event's outcome, in event order.
	SCs []SCOutcome
	// FinalSCSuccess is the outcome of the last SC of thread 0 (SC_a).
	FinalSCSuccess bool
	// FinalValue is x's value after all threads halted.
	FinalValue uint32
}

// numThreads returns 1 + the highest thread index used.
func (s *Sequence) numThreads() int {
	n := 0
	for _, ev := range s.Events {
		if ev.T+1 > n {
			n = ev.T + 1
		}
	}
	return n
}

// buildProgram compiles each thread's event subsequence. Register use per
// snippet: r0 = &x, r1 = LL result, r2 = store/SC value, r3 = SC status.
func buildProgram(seq *Sequence) (*asm.Image, []uint32, error) {
	n := seq.numThreads()
	b := asm.NewBuilder(0x10000)
	entries := make([]string, n)
	for t := 0; t < n; t++ {
		entry := fmt.Sprintf("thread%d", t)
		entries[t] = entry
		b.Label(entry)
		for _, ev := range seq.Events {
			if ev.T != t {
				continue
			}
			b.LoadAddr(arch.R0, "x")
			switch ev.Op {
			case OpLL:
				b.Ldrex(arch.R1, arch.R0)
			case OpSC:
				b.MovImm32(arch.R2, ev.Val)
				b.Strex(arch.R3, arch.R2, arch.R0)
			case OpStore:
				b.MovImm32(arch.R2, ev.Val)
				b.Str(arch.R2, arch.R0, 0)
			}
		}
		b.MovI(arch.R0, 0)
		b.Svc(1)
	}
	b.AlignWords(2)
	b.Label("x")
	b.Word(seq.Init)
	im, err := b.Finish()
	if err != nil {
		return nil, nil, err
	}
	addrs := make([]uint32, n)
	for t := range entries {
		addrs[t] = im.MustSymbol(entries[t])
	}
	return im, addrs, nil
}

// Run replays the sequence under the named scheme with a deterministic
// interleaving and reports every SC outcome.
func Run(schemeName string, seq Sequence) (*Result, error) {
	im, entries, err := buildProgram(&seq)
	if err != nil {
		return nil, err
	}
	cfg := engine.DefaultConfig(schemeName)
	cfg.StepMode = true
	cfg.MaxGuestInstrs = 1_000_000
	m, err := engine.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.LoadImage(im); err != nil {
		return nil, err
	}
	cpus := make([]*engine.CPU, len(entries))
	for t, entry := range entries {
		c, err := m.Start(entry)
		if err != nil {
			return nil, err
		}
		cpus[t] = c
	}

	res := &Result{Sequence: seq.Name, Scheme: schemeName}
	for i, ev := range seq.Events {
		c := cpus[ev.T]
		if err := stepUntilEvent(c, ev.Op); err != nil {
			return nil, fmt.Errorf("litmus: %s under %s, event %d (%s by T%d): %w",
				seq.Name, schemeName, i, ev.Op, ev.T, err)
		}
		if ev.Op == OpSC {
			out := SCOutcome{EventIndex: i, Thread: ev.T, Success: c.Reg(arch.R3) == 0}
			res.SCs = append(res.SCs, out)
			if ev.T == 0 {
				res.FinalSCSuccess = out.Success
			}
		}
	}
	// Drain every thread to its exit.
	for t, c := range cpus {
		for !c.Halted() {
			if _, err := c.Step(); err != nil {
				return nil, fmt.Errorf("litmus: draining thread %d: %w", t, err)
			}
		}
	}
	v, f := m.Mem().ReadWordPriv(im.MustSymbol("x"))
	if f != nil {
		return nil, f
	}
	res.FinalValue = v
	return res, nil
}

// stepUntilEvent advances one vCPU until the architectural effect of the
// given operation kind lands (observed via the vCPU's counters).
func stepUntilEvent(c *engine.CPU, kind OpKind) error {
	before := counterFor(c, kind)
	for steps := 0; ; steps++ {
		if steps > 10_000 {
			return fmt.Errorf("event did not complete within 10k steps")
		}
		if c.Halted() {
			return fmt.Errorf("thread halted before its event (err=%v)", c.Err())
		}
		if _, err := c.Step(); err != nil {
			return err
		}
		if counterFor(c, kind) > before {
			return nil
		}
	}
}

func counterFor(c *engine.CPU, kind OpKind) uint64 {
	st := c.VStats()
	switch kind {
	case OpLL:
		return st.LLs
	case OpSC:
		return st.SCs
	case OpStore:
		return st.Stores
	}
	return 0
}

// Classify derives the atomicity level a scheme actually enforces from its
// observed litmus results: strong if it fails the same-value plain-store
// test, weak if it at least fails the SC-dance tests, incorrect otherwise.
func Classify(results map[string]*Result) core.Atomicity {
	strongDef, okS := results["StrongDef"]
	seq2, ok2 := results["Seq2"]
	if okS && !strongDef.FinalSCSuccess {
		return core.AtomicityStrong
	}
	if ok2 && !seq2.FinalSCSuccess {
		return core.AtomicityWeak
	}
	return core.AtomicityIncorrect
}

// RunAll replays every standard sequence under a scheme.
func RunAll(schemeName string) (map[string]*Result, error) {
	out := make(map[string]*Result)
	for _, seq := range StandardSequences() {
		r, err := Run(schemeName, seq)
		if err != nil {
			return nil, err
		}
		out[seq.Name] = r
	}
	return out, nil
}
