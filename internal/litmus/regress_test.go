package litmus

import "testing"

// TestAdversaryRepros replays every committed minimized repro: the same
// scenario, driven from the same seed, must reproduce the same outcome
// class, oracle verdict and trace hash. A divergence means either a real
// behaviour change in the emulation schemes or lost determinism in the
// step-mode scheduler — both are regressions.
func TestAdversaryRepros(t *testing.T) {
	results, err := ReplayRepros("testdata/repros")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 3 {
		t.Fatalf("only %d committed repros found, want at least the livelock, ABA and stuck-lock pins", len(results))
	}
	for _, res := range results {
		res := res
		t.Run(res.File, func(t *testing.T) {
			t.Parallel()
			if res.Err != nil {
				t.Fatalf("%s (%s): %v", res.File, res.Note, res.Err)
			}
		})
	}
}
