package litmus

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"atomemu/internal/adversary"
)

// Auto-minimized adversary regressions. Each file under testdata/repros is
// a self-contained adversary.Repro: a normalized step-mode scenario plus
// the outcome class, oracle verdict and trace hash it must replay to,
// byte-for-byte, from its recorded seed. The committed set pins known
// behaviours — the paper's fig. 11 strict-mode HTM livelock, ABA loss
// under pico-cas, watchdog conversion of a stuck hash-entry lock — so any
// engine change that silently shifts one of them fails loudly here.
//
// New repros come from the search ("atomemu-bench adversary" writes its
// minimized findings as repro JSON); committing one is just copying the
// file into testdata/repros.

// ReproResult is one replayed regression.
type ReproResult struct {
	File  string
	Note  string
	Class string
	Err   error // nil when the replay matched every expectation
}

// ReplayRepros loads every *.json repro under dir and replays it. The
// returned slice has one entry per file, in name order; a missing or
// empty directory yields an empty slice and no error.
func ReplayRepros(dir string) ([]ReproResult, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	out := make([]ReproResult, 0, len(files))
	for _, name := range files {
		path := filepath.Join(dir, name)
		res := ReproResult{File: name}
		r, err := adversary.LoadRepro(path)
		if err != nil {
			res.Err = fmt.Errorf("load: %w", err)
			out = append(out, res)
			continue
		}
		res.Note = r.Note
		res.Class = r.Expect.Class
		if _, err := r.Replay(); err != nil {
			res.Err = err
		}
		out = append(out, res)
	}
	return out, nil
}
