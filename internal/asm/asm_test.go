package asm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"atomemu/internal/arch"
)

func TestBuilderBasicProgram(t *testing.T) {
	b := NewBuilder(0x10000)
	b.Label("start")
	b.MovI(arch.R0, 5)
	b.MovI(arch.R1, 7)
	b.Add(arch.R2, arch.R0, arch.R1)
	b.Hlt()
	im, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if im.Org != 0x10000 || len(im.Words) != 4 {
		t.Fatalf("unexpected image: org=%#x words=%d", im.Org, len(im.Words))
	}
	if got := im.MustSymbol("start"); got != 0x10000 {
		t.Errorf("start = %#x", got)
	}
	in, err := arch.Decode(im.Words[2])
	if err != nil || in.Op != arch.ADD {
		t.Errorf("word 2 = %v, %v", in, err)
	}
}

func TestBuilderForwardAndBackwardBranches(t *testing.T) {
	b := NewBuilder(0)
	b.Label("top")
	b.SubsI(arch.R0, arch.R0, 1)
	b.Bne("top") // backward
	b.B("end")   // forward
	b.Nop()
	b.Label("end")
	b.Hlt()
	im, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	back, _ := arch.Decode(im.Words[1])
	if back.BranchTarget(4) != 0 {
		t.Errorf("backward branch target = %#x, want 0", back.BranchTarget(4))
	}
	fwd, _ := arch.Decode(im.Words[2])
	if fwd.BranchTarget(8) != im.MustSymbol("end") {
		t.Errorf("forward branch target = %#x, want %#x", fwd.BranchTarget(8), im.MustSymbol("end"))
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder(0)
	b.B("nowhere")
	if _, err := b.Finish(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("expected undefined-label error, got %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder(0)
	b.Label("x")
	b.Nop()
	b.Label("x")
	if _, err := b.Finish(); err == nil {
		t.Fatal("expected duplicate-label error")
	}
}

func TestBuilderLoadAddr(t *testing.T) {
	b := NewBuilder(0x20000)
	b.LoadAddr(arch.R4, "data")
	b.Hlt()
	b.AlignWords(4)
	b.Label("data")
	b.Word(0xdeadbeef)
	im, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	dataAddr := im.MustSymbol("data")
	movw, _ := arch.Decode(im.Words[0])
	movt, _ := arch.Decode(im.Words[1])
	got := uint32(movw.Imm) | uint32(movt.Imm)<<16
	if got != dataAddr {
		t.Errorf("LoadAddr materializes %#x, want %#x", got, dataAddr)
	}
}

func TestBuilderMovImm32Forms(t *testing.T) {
	cases := []struct {
		v     uint32
		words int
	}{
		{0, 1}, {0xfff, 1}, {0x1000, 1}, {0xffff, 1}, {0x10000, 2}, {0xdeadbeef, 2},
	}
	for _, c := range cases {
		b := NewBuilder(0)
		b.MovImm32(arch.R0, c.v)
		im, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if len(im.Words) != c.words {
			t.Errorf("MovImm32(%#x) used %d words, want %d", c.v, len(im.Words), c.words)
		}
	}
}

func TestBuilderPushPopSymmetry(t *testing.T) {
	b := NewBuilder(0)
	b.Push(arch.R0, arch.R1, arch.LR)
	b.Pop(arch.R0, arch.R1, arch.LR)
	im, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// 1 subi + 3 str + 3 ldr + 1 addi
	if len(im.Words) != 8 {
		t.Errorf("push/pop of 3 regs = %d words, want 8", len(im.Words))
	}
}

func TestBuilderPCAdvances(t *testing.T) {
	b := NewBuilder(0x1000)
	if b.PC() != 0x1000 {
		t.Fatalf("initial PC = %#x", b.PC())
	}
	b.Nop()
	if b.PC() != 0x1004 {
		t.Errorf("PC after one instr = %#x", b.PC())
	}
	b.Space(3)
	if b.PC() != 0x1010 {
		t.Errorf("PC after Space(3) = %#x", b.PC())
	}
}

func TestImageSerializationRoundTrip(t *testing.T) {
	b := NewBuilder(0x10000)
	b.Label("main")
	b.MovImm32(arch.R0, 0x12345678)
	b.Svc(1)
	b.Label("buf")
	b.Space(4)
	im, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	im.Entry = im.MustSymbol("main")

	var buf bytes.Buffer
	if _, err := im.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Org != im.Org || got.Entry != im.Entry || len(got.Words) != len(im.Words) {
		t.Fatalf("header mismatch: %+v vs %+v", got, im)
	}
	for i := range im.Words {
		if got.Words[i] != im.Words[i] {
			t.Fatalf("word %d mismatch", i)
		}
	}
	if got.MustSymbol("buf") != im.MustSymbol("buf") {
		t.Error("symbol table mismatch")
	}
}

func TestReadImageRejectsGarbage(t *testing.T) {
	if _, err := ReadImage(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("expected error for bad magic")
	}
	if _, err := ReadImage(bytes.NewReader(nil)); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestAssembleBasic(t *testing.T) {
	src := `
; counter loop
.org 0x10000
.entry main
.equ COUNT, 10
main:
    movi r0, #COUNT
    movi r1, #0
loop:
    addi r1, r1, #1
    subsi r0, r0, #1
    bne loop
    hlt
`
	im, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if im.Org != 0x10000 {
		t.Errorf("org = %#x", im.Org)
	}
	if im.Entry != im.MustSymbol("main") {
		t.Errorf("entry = %#x", im.Entry)
	}
	first, err := arch.Decode(im.Words[0])
	if err != nil || first.Op != arch.MOVI || first.Imm != 10 {
		t.Errorf("first instr = %v (err %v)", first, err)
	}
}

func TestAssembleAllFormats(t *testing.T) {
	src := `
.org 0
start:
    add r0, r1, r2
    addi r3, r3, #100
    mov r4, r5
    mvn r4, r5
    movw r6, #0xffff
    movt r6, #0x1234
    movi r7, #42
    cmp r0, r1
    cmpi r0, #7
    cmn r0, r1
    tst r0, r1
    ldr r0, [r1, #4]
    str r0, [r1, #8]
    ldrb r0, [r1]
    strb r0, [r1, #1]
    ldrr r0, [r1, r2]
    strr r0, [r1, r2]
    ldrbr r0, [r1, r2]
    strbr r0, [r1, r2]
    ldrex r0, [r1]
    strex r2, r0, [r1]
    clrex
    dmb
    b start
    beq start
    bhi start
    bl start
    bx lr
    svc #3
    nop
    yield
    hlt
    ldr r9, =0xcafebabe
    ldr r10, =start
    push {r0, r1}
    pop {r0, r1}
    ret
.word 123
.word start
.space 2
.align 4
`
	im, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	// Every instruction word must decode (data words at the end may not).
	decodable := 0
	for _, w := range im.Words {
		if _, err := arch.Decode(w); err == nil {
			decodable++
		}
	}
	if decodable < 30 {
		t.Errorf("only %d words decodable", decodable)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r0, r1",
		"addi r0, r0, #4096",
		"ldr r0, [r1, r2]",      // register offset needs ldrr
		"ldrr r0, [r1, #4]",     // immediate offset needs ldr
		"b",                     // missing label
		"movw r0, #0x10000",     // imm16 overflow
		"add r0, r1",            // missing operand
		"ldr r16, [r0]",         // bad register
		".equ ONLYNAME",         // malformed
		".space -1",             // negative
		"label:\nlabel:\nnop",   // duplicate label
		"b nowhere",             // undefined label
		"strex r0, r1",          // missing address
		".bogusdirective 1",     // unknown directive
		"nop\n.org 0x2000\nnop", // .org after code
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestAssembleCommentStyles(t *testing.T) {
	src := `
nop ; semicolon
nop // slashes
nop @ at-sign
`
	im, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(im.Words) != 3 {
		t.Errorf("got %d words, want 3", len(im.Words))
	}
}

func TestAssembleLabelAndInstructionSameLine(t *testing.T) {
	im, err := Assemble("start: nop\n b start")
	if err != nil {
		t.Fatal(err)
	}
	if len(im.Words) != 2 {
		t.Errorf("got %d words", len(im.Words))
	}
}

func TestAssembleNegativeImmediateRejected(t *testing.T) {
	// GA32 immediates are unsigned 12-bit; use rsb/sub for negatives.
	if _, err := Assemble("movi r0, #-1"); err == nil {
		t.Error("negative imm12 should be rejected")
	}
}

// TestQuickDisassembleReassemble: random instruction sequences survive a
// disassemble → reassemble round trip bit-exactly.
func TestQuickDisassembleReassemble(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		b := NewBuilder(0)
		n := 1 + r.Intn(20)
		for i := 0; i < n; i++ {
			// Emit only non-branch instructions: branch text uses relative
			// offsets which the text assembler expresses via labels.
			for {
				in := randomValidInstr(r)
				if in.Op.IsBranch() {
					continue
				}
				b.Raw(in)
				break
			}
		}
		im, err := b.Finish()
		if err != nil {
			t.Logf("builder error: %v", err)
			return false
		}
		var text bytes.Buffer
		if err := im.Disassemble(&text); err != nil {
			return false
		}
		// Extract just the instruction column.
		var src strings.Builder
		src.WriteString(".org 0\n")
		for _, line := range strings.Split(text.String(), "\n") {
			parts := strings.SplitN(strings.TrimSpace(line), "  ", 3)
			if len(parts) == 3 {
				src.WriteString(parts[2] + "\n")
			}
		}
		im2, err := Assemble(src.String())
		if err != nil {
			t.Logf("reassemble error: %v\nsource:\n%s", err, src.String())
			return false
		}
		if len(im2.Words) != len(im.Words) {
			return false
		}
		for i := range im.Words {
			if im.Words[i] != im2.Words[i] {
				t.Logf("word %d: %#08x vs %#08x", i, im.Words[i], im2.Words[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomValidInstr(r *rand.Rand) arch.Instruction {
	for {
		op := arch.Opcode(r.Intn(int(arch.NumOpcodes)))
		in := arch.Instruction{Op: op}
		reg := func() arch.Reg { return arch.Reg(r.Intn(arch.NumRegs)) }
		switch op.Format() {
		case arch.Fmt3R, arch.FmtMemR, arch.FmtEx:
			in.Rd, in.Rn, in.Rm = reg(), reg(), reg()
			if op == arch.LDREX {
				// Rm is a don't-care for LDREX and not printed by the
				// disassembler, so zero it for text round-trips.
				in.Rm = 0
			}
		case arch.Fmt2RI, arch.FmtMem:
			in.Rd, in.Rn, in.Imm = reg(), reg(), int32(r.Intn(4096))
		case arch.Fmt2R:
			in.Rd, in.Rm = reg(), reg()
		case arch.FmtRI16:
			in.Rd, in.Imm = reg(), int32(r.Intn(65536))
		case arch.FmtRI12:
			in.Rd, in.Imm = reg(), int32(r.Intn(4096))
		case arch.FmtCmpR:
			in.Rn, in.Rm = reg(), reg()
		case arch.FmtCmpI:
			in.Rn, in.Imm = reg(), int32(r.Intn(4096))
		case arch.FmtB:
			in.Cond = arch.Cond(r.Intn(int(arch.NumConds)))
			in.Off = int32(r.Intn(100) - 50)
		case arch.FmtBL:
			in.Off = int32(r.Intn(100) - 50)
		case arch.FmtBX:
			in.Rm = reg()
		case arch.FmtSVC:
			in.Imm = int32(r.Intn(4096))
		}
		if in.Validate() == nil {
			return in
		}
	}
}

func TestDisassembleOutput(t *testing.T) {
	b := NewBuilder(0x100)
	b.Label("f")
	b.AddI(arch.R0, arch.R0, 1)
	b.Ret()
	im, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := im.Disassemble(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"f:", "addi r0, r0, #1", "bx lr", "00000100"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}
