// Package asm provides two assemblers for the GA32 guest ISA: a programmatic
// macro-assembler (Builder) used by the guest runtime library and the
// synthetic workload suite, and a text assembler (Assemble) with labels,
// directives and pseudo-instructions for hand-written guest programs.
//
// Both produce an Image: a flat word array to be loaded at a fixed guest
// address, plus a symbol table.
package asm

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"atomemu/internal/arch"
)

// Image is an assembled guest program: Words loaded at guest address Org,
// execution starting at Entry.
type Image struct {
	Org     uint32
	Entry   uint32
	Words   []uint32
	Symbols map[string]uint32
}

// Size returns the image size in bytes.
func (im *Image) Size() uint32 { return uint32(len(im.Words)) * arch.WordBytes }

// End returns the first guest address past the image.
func (im *Image) End() uint32 { return im.Org + im.Size() }

// Symbol returns the address of a defined symbol.
func (im *Image) Symbol(name string) (uint32, error) {
	addr, ok := im.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("asm: undefined symbol %q", name)
	}
	return addr, nil
}

// MustSymbol is Symbol for symbols the caller created itself.
func (im *Image) MustSymbol(name string) uint32 {
	addr, err := im.Symbol(name)
	if err != nil {
		panic(err)
	}
	return addr
}

// Disassemble renders the image as GA32 assembly, one instruction (or data
// word) per line, annotated with addresses and symbols.
func (im *Image) Disassemble(w io.Writer) error {
	bySym := make(map[uint32][]string)
	for name, addr := range im.Symbols {
		bySym[addr] = append(bySym[addr], name)
	}
	for _, names := range bySym {
		sort.Strings(names)
	}
	for idx, word := range im.Words {
		addr := im.Org + uint32(idx)*arch.WordBytes
		for _, name := range bySym[addr] {
			if _, err := fmt.Fprintf(w, "%s:\n", name); err != nil {
				return err
			}
		}
		in, err := arch.Decode(word)
		text := ""
		if err != nil {
			text = fmt.Sprintf(".word %#08x", word)
		} else {
			text = in.String()
		}
		if _, err := fmt.Fprintf(w, "  %08x:  %08x  %s\n", addr, word, text); err != nil {
			return err
		}
	}
	return nil
}

// Binary image serialization (cmd/atomemu-asm output, cmd/atomemu input).

const imageMagic = 0x47413332 // "GA32"

// WriteTo serializes the image in the atomemu flat binary format.
func (im *Image) WriteTo(w io.Writer) (int64, error) {
	var n int64
	put32 := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		m, err := w.Write(buf[:])
		n += int64(m)
		return err
	}
	for _, v := range []uint32{imageMagic, im.Org, im.Entry, uint32(len(im.Words)), uint32(len(im.Symbols))} {
		if err := put32(v); err != nil {
			return n, err
		}
	}
	names := make([]string, 0, len(im.Symbols))
	for name := range im.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := put32(uint32(len(name))); err != nil {
			return n, err
		}
		m, err := io.WriteString(w, name)
		n += int64(m)
		if err != nil {
			return n, err
		}
		if err := put32(im.Symbols[name]); err != nil {
			return n, err
		}
	}
	for _, word := range im.Words {
		if err := put32(word); err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadImage deserializes an image written by WriteTo.
func ReadImage(r io.Reader) (*Image, error) {
	get32 := func() (uint32, error) {
		var buf [4]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}
	magic, err := get32()
	if err != nil {
		return nil, fmt.Errorf("asm: reading image header: %w", err)
	}
	if magic != imageMagic {
		return nil, fmt.Errorf("asm: bad image magic %#08x", magic)
	}
	im := &Image{Symbols: make(map[string]uint32)}
	if im.Org, err = get32(); err != nil {
		return nil, err
	}
	if im.Entry, err = get32(); err != nil {
		return nil, err
	}
	nwords, err := get32()
	if err != nil {
		return nil, err
	}
	nsyms, err := get32()
	if err != nil {
		return nil, err
	}
	const maxWords = 1 << 26 // 256 MB of guest code/data is beyond any use here
	if nwords > maxWords || nsyms > maxWords {
		return nil, fmt.Errorf("asm: image header counts implausible (words=%d syms=%d)", nwords, nsyms)
	}
	for i := uint32(0); i < nsyms; i++ {
		nameLen, err := get32()
		if err != nil {
			return nil, err
		}
		if nameLen > 4096 {
			return nil, fmt.Errorf("asm: symbol name length %d implausible", nameLen)
		}
		buf := make([]byte, nameLen)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		addr, err := get32()
		if err != nil {
			return nil, err
		}
		im.Symbols[string(buf)] = addr
	}
	im.Words = make([]uint32, nwords)
	for i := range im.Words {
		if im.Words[i], err = get32(); err != nil {
			return nil, err
		}
	}
	return im, nil
}
