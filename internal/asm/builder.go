package asm

import (
	"fmt"

	"atomemu/internal/arch"
)

// Builder is a programmatic macro-assembler for GA32. Methods append
// instructions or data at the current location; labels may be referenced
// before they are defined (fixed up at Finish). Errors are accumulated and
// reported once by Finish, so emission code stays linear.
type Builder struct {
	org    uint32
	words  []uint32
	labels map[string]uint32
	fixups []fixup
	errs   []error
	// gensym counter for unique local labels in macro helpers.
	gen int
}

type fixupKind uint8

const (
	fixB fixupKind = iota
	fixBL
	fixMOVWLo // movw rd, #lo16(label)
	fixMOVTHi // movt rd, #hi16(label)
	fixWord   // .word label
)

type fixup struct {
	index int // word index into words
	kind  fixupKind
	label string
}

// NewBuilder starts a builder whose first word will load at guest address org.
// org must be word-aligned.
func NewBuilder(org uint32) *Builder {
	b := &Builder{org: org, labels: make(map[string]uint32)}
	if org%arch.WordBytes != 0 {
		b.errs = append(b.errs, fmt.Errorf("asm: org %#x not word-aligned", org))
	}
	return b
}

// PC returns the guest address of the next emitted word.
func (b *Builder) PC() uint32 { return b.org + uint32(len(b.words))*arch.WordBytes }

// Label defines name at the current location.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("asm: duplicate label %q", name))
		return
	}
	b.labels[name] = b.PC()
}

// Gensym returns a fresh label name with the given prefix, for macro helpers
// that need internal branch targets.
func (b *Builder) Gensym(prefix string) string {
	b.gen++
	return fmt.Sprintf(".%s.%d", prefix, b.gen)
}

// Errf records a client-detected error to be reported by Finish.
func (b *Builder) Errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

func (b *Builder) emit(in arch.Instruction) {
	if err := in.Validate(); err != nil {
		b.errs = append(b.errs, fmt.Errorf("asm: at %#x: %w", b.PC(), err))
		b.words = append(b.words, 0)
		return
	}
	b.words = append(b.words, in.Encode())
}

// Raw emits a pre-built instruction.
func (b *Builder) Raw(in arch.Instruction) { b.emit(in) }

// Word emits a literal data word.
func (b *Builder) Word(v uint32) { b.words = append(b.words, v) }

// WordLabel emits a data word holding the address of label.
func (b *Builder) WordLabel(label string) {
	b.fixups = append(b.fixups, fixup{index: len(b.words), kind: fixWord, label: label})
	b.words = append(b.words, 0)
}

// Space emits n zero words.
func (b *Builder) Space(n int) {
	for i := 0; i < n; i++ {
		b.words = append(b.words, 0)
	}
}

// AlignWords pads with zero words until the location is a multiple of n words.
func (b *Builder) AlignWords(n int) {
	if n <= 0 {
		b.Errf("asm: AlignWords(%d)", n)
		return
	}
	for (b.PC()/arch.WordBytes)%uint32(n) != 0 {
		b.words = append(b.words, 0)
	}
}

// --- Three-register ALU ---

func (b *Builder) op3(op arch.Opcode, rd, rn, rm arch.Reg) {
	b.emit(arch.Instruction{Op: op, Rd: rd, Rn: rn, Rm: rm})
}

// Add emits rd = rn + rm.
func (b *Builder) Add(rd, rn, rm arch.Reg) { b.op3(arch.ADD, rd, rn, rm) }

// Sub emits rd = rn - rm.
func (b *Builder) Sub(rd, rn, rm arch.Reg) { b.op3(arch.SUB, rd, rn, rm) }

// Rsb emits rd = rm - rn.
func (b *Builder) Rsb(rd, rn, rm arch.Reg) { b.op3(arch.RSB, rd, rn, rm) }

// And emits rd = rn & rm.
func (b *Builder) And(rd, rn, rm arch.Reg) { b.op3(arch.AND, rd, rn, rm) }

// Orr emits rd = rn | rm.
func (b *Builder) Orr(rd, rn, rm arch.Reg) { b.op3(arch.ORR, rd, rn, rm) }

// Eor emits rd = rn ^ rm.
func (b *Builder) Eor(rd, rn, rm arch.Reg) { b.op3(arch.EOR, rd, rn, rm) }

// Mul emits rd = rn * rm.
func (b *Builder) Mul(rd, rn, rm arch.Reg) { b.op3(arch.MUL, rd, rn, rm) }

// Udiv emits rd = rn / rm (unsigned; x/0 = 0 as on ARM).
func (b *Builder) Udiv(rd, rn, rm arch.Reg) { b.op3(arch.UDIV, rd, rn, rm) }

// Sdiv emits rd = rn / rm (signed).
func (b *Builder) Sdiv(rd, rn, rm arch.Reg) { b.op3(arch.SDIV, rd, rn, rm) }

// Lsl emits rd = rn << (rm&31).
func (b *Builder) Lsl(rd, rn, rm arch.Reg) { b.op3(arch.LSL, rd, rn, rm) }

// Lsr emits rd = rn >> (rm&31) (logical).
func (b *Builder) Lsr(rd, rn, rm arch.Reg) { b.op3(arch.LSR, rd, rn, rm) }

// Asr emits rd = rn >> (rm&31) (arithmetic).
func (b *Builder) Asr(rd, rn, rm arch.Reg) { b.op3(arch.ASR, rd, rn, rm) }

// Adds emits rd = rn + rm, setting NZCV.
func (b *Builder) Adds(rd, rn, rm arch.Reg) { b.op3(arch.ADDS, rd, rn, rm) }

// Subs emits rd = rn - rm, setting NZCV.
func (b *Builder) Subs(rd, rn, rm arch.Reg) { b.op3(arch.SUBS, rd, rn, rm) }

// --- Register+immediate ALU ---

func (b *Builder) op2i(op arch.Opcode, rd, rn arch.Reg, imm int32) {
	b.emit(arch.Instruction{Op: op, Rd: rd, Rn: rn, Imm: imm})
}

// AddI emits rd = rn + imm12.
func (b *Builder) AddI(rd, rn arch.Reg, imm int32) { b.op2i(arch.ADDI, rd, rn, imm) }

// SubI emits rd = rn - imm12.
func (b *Builder) SubI(rd, rn arch.Reg, imm int32) { b.op2i(arch.SUBI, rd, rn, imm) }

// RsbI emits rd = imm12 - rn.
func (b *Builder) RsbI(rd, rn arch.Reg, imm int32) { b.op2i(arch.RSBI, rd, rn, imm) }

// AndI emits rd = rn & imm12.
func (b *Builder) AndI(rd, rn arch.Reg, imm int32) { b.op2i(arch.ANDI, rd, rn, imm) }

// OrrI emits rd = rn | imm12.
func (b *Builder) OrrI(rd, rn arch.Reg, imm int32) { b.op2i(arch.ORRI, rd, rn, imm) }

// EorI emits rd = rn ^ imm12.
func (b *Builder) EorI(rd, rn arch.Reg, imm int32) { b.op2i(arch.EORI, rd, rn, imm) }

// LslI emits rd = rn << imm.
func (b *Builder) LslI(rd, rn arch.Reg, imm int32) { b.op2i(arch.LSLI, rd, rn, imm) }

// LsrI emits rd = rn >> imm (logical).
func (b *Builder) LsrI(rd, rn arch.Reg, imm int32) { b.op2i(arch.LSRI, rd, rn, imm) }

// AsrI emits rd = rn >> imm (arithmetic).
func (b *Builder) AsrI(rd, rn arch.Reg, imm int32) { b.op2i(arch.ASRI, rd, rn, imm) }

// AddsI emits rd = rn + imm12, setting NZCV.
func (b *Builder) AddsI(rd, rn arch.Reg, imm int32) { b.op2i(arch.ADDSI, rd, rn, imm) }

// SubsI emits rd = rn - imm12, setting NZCV.
func (b *Builder) SubsI(rd, rn arch.Reg, imm int32) { b.op2i(arch.SUBSI, rd, rn, imm) }

// --- Moves and compares ---

// Mov emits rd = rm.
func (b *Builder) Mov(rd, rm arch.Reg) { b.emit(arch.Instruction{Op: arch.MOV, Rd: rd, Rm: rm}) }

// Mvn emits rd = ^rm.
func (b *Builder) Mvn(rd, rm arch.Reg) { b.emit(arch.Instruction{Op: arch.MVN, Rd: rd, Rm: rm}) }

// MovI emits rd = imm12.
func (b *Builder) MovI(rd arch.Reg, imm int32) {
	b.emit(arch.Instruction{Op: arch.MOVI, Rd: rd, Imm: imm})
}

// MovW emits rd = imm16 (upper half cleared).
func (b *Builder) MovW(rd arch.Reg, imm int32) {
	b.emit(arch.Instruction{Op: arch.MOVW, Rd: rd, Imm: imm})
}

// MovT emits rd = (rd & 0xffff) | imm16<<16.
func (b *Builder) MovT(rd arch.Reg, imm int32) {
	b.emit(arch.Instruction{Op: arch.MOVT, Rd: rd, Imm: imm})
}

// MovImm32 loads an arbitrary 32-bit constant, using one instruction when
// it fits and a movw/movt pair otherwise.
func (b *Builder) MovImm32(rd arch.Reg, v uint32) {
	switch {
	case v < 0x1000:
		b.MovI(rd, int32(v))
	case v <= 0xffff:
		b.MovW(rd, int32(v))
	default:
		b.MovW(rd, int32(v&0xffff))
		b.MovT(rd, int32(v>>16))
	}
}

// LoadAddr loads the address of label into rd (movw/movt pair, fixed up at
// Finish).
func (b *Builder) LoadAddr(rd arch.Reg, label string) {
	b.fixups = append(b.fixups, fixup{index: len(b.words), kind: fixMOVWLo, label: label})
	b.emit(arch.Instruction{Op: arch.MOVW, Rd: rd, Imm: 0})
	b.fixups = append(b.fixups, fixup{index: len(b.words), kind: fixMOVTHi, label: label})
	b.emit(arch.Instruction{Op: arch.MOVT, Rd: rd, Imm: 0})
}

// Cmp emits flags = rn - rm.
func (b *Builder) Cmp(rn, rm arch.Reg) { b.emit(arch.Instruction{Op: arch.CMP, Rn: rn, Rm: rm}) }

// CmpI emits flags = rn - imm12.
func (b *Builder) CmpI(rn arch.Reg, imm int32) {
	b.emit(arch.Instruction{Op: arch.CMPI, Rn: rn, Imm: imm})
}

// Cmn emits flags = rn + rm.
func (b *Builder) Cmn(rn, rm arch.Reg) { b.emit(arch.Instruction{Op: arch.CMN, Rn: rn, Rm: rm}) }

// Tst emits flags = rn & rm.
func (b *Builder) Tst(rn, rm arch.Reg) { b.emit(arch.Instruction{Op: arch.TST, Rn: rn, Rm: rm}) }

// --- Memory ---

// Ldr emits rd = mem32[rn+imm].
func (b *Builder) Ldr(rd, rn arch.Reg, imm int32) {
	b.emit(arch.Instruction{Op: arch.LDR, Rd: rd, Rn: rn, Imm: imm})
}

// Str emits mem32[rn+imm] = rd.
func (b *Builder) Str(rd, rn arch.Reg, imm int32) {
	b.emit(arch.Instruction{Op: arch.STR, Rd: rd, Rn: rn, Imm: imm})
}

// Ldrb emits rd = mem8[rn+imm].
func (b *Builder) Ldrb(rd, rn arch.Reg, imm int32) {
	b.emit(arch.Instruction{Op: arch.LDRB, Rd: rd, Rn: rn, Imm: imm})
}

// Strb emits mem8[rn+imm] = rd&0xff.
func (b *Builder) Strb(rd, rn arch.Reg, imm int32) {
	b.emit(arch.Instruction{Op: arch.STRB, Rd: rd, Rn: rn, Imm: imm})
}

// LdrR emits rd = mem32[rn+rm].
func (b *Builder) LdrR(rd, rn, rm arch.Reg) { b.op3(arch.LDRR, rd, rn, rm) }

// StrR emits mem32[rn+rm] = rd.
func (b *Builder) StrR(rd, rn, rm arch.Reg) { b.op3(arch.STRR, rd, rn, rm) }

// LdrbR emits rd = mem8[rn+rm].
func (b *Builder) LdrbR(rd, rn, rm arch.Reg) { b.op3(arch.LDRBR, rd, rn, rm) }

// StrbR emits mem8[rn+rm] = rd&0xff.
func (b *Builder) StrbR(rd, rn, rm arch.Reg) { b.op3(arch.STRBR, rd, rn, rm) }

// Ldrex emits rd = mem32[rn] and arms the exclusive monitor (the LL).
func (b *Builder) Ldrex(rd, rn arch.Reg) {
	b.emit(arch.Instruction{Op: arch.LDREX, Rd: rd, Rn: rn})
}

// Strex emits the SC: mem32[rn] = rm if the monitor holds; rd = 0 on
// success, 1 on failure.
func (b *Builder) Strex(rd, rm, rn arch.Reg) {
	b.emit(arch.Instruction{Op: arch.STREX, Rd: rd, Rn: rn, Rm: rm})
}

// Clrex clears the exclusive monitor.
func (b *Builder) Clrex() { b.emit(arch.Instruction{Op: arch.CLREX}) }

// Dmb emits a full memory barrier.
func (b *Builder) Dmb() { b.emit(arch.Instruction{Op: arch.DMB}) }

// --- Control flow ---

// B emits an unconditional branch to label.
func (b *Builder) B(label string) { b.BCond(arch.AL, label) }

// BCond emits a conditional branch to label.
func (b *Builder) BCond(cond arch.Cond, label string) {
	b.fixups = append(b.fixups, fixup{index: len(b.words), kind: fixB, label: label})
	b.emit(arch.Instruction{Op: arch.B, Cond: cond})
}

// Beq, Bne etc. are shorthands for the common conditions.
func (b *Builder) Beq(label string) { b.BCond(arch.EQ, label) }
func (b *Builder) Bne(label string) { b.BCond(arch.NE, label) }
func (b *Builder) Blt(label string) { b.BCond(arch.LT, label) }
func (b *Builder) Ble(label string) { b.BCond(arch.LE, label) }
func (b *Builder) Bgt(label string) { b.BCond(arch.GT, label) }
func (b *Builder) Bge(label string) { b.BCond(arch.GE, label) }
func (b *Builder) Bcs(label string) { b.BCond(arch.CS, label) }
func (b *Builder) Bcc(label string) { b.BCond(arch.CC, label) }

// BL emits a call to label (return address in LR).
func (b *Builder) BL(label string) {
	b.fixups = append(b.fixups, fixup{index: len(b.words), kind: fixBL, label: label})
	b.emit(arch.Instruction{Op: arch.BL})
}

// Bx emits an indirect branch to rm.
func (b *Builder) Bx(rm arch.Reg) { b.emit(arch.Instruction{Op: arch.BX, Rm: rm}) }

// Ret emits bx lr.
func (b *Builder) Ret() { b.Bx(arch.LR) }

// Svc emits a supervisor call.
func (b *Builder) Svc(num int32) { b.emit(arch.Instruction{Op: arch.SVC, Imm: num}) }

// Hlt halts the executing vCPU.
func (b *Builder) Hlt() { b.emit(arch.Instruction{Op: arch.HLT}) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(arch.Instruction{Op: arch.NOP}) }

// Yield emits a scheduling hint.
func (b *Builder) Yield() { b.emit(arch.Instruction{Op: arch.YIELD}) }

// --- Stack macros ---

// Push emits a push of regs (descending addresses, first reg at lowest).
func (b *Builder) Push(regs ...arch.Reg) {
	if len(regs) == 0 {
		return
	}
	b.SubI(arch.SP, arch.SP, int32(len(regs))*arch.WordBytes)
	for i, r := range regs {
		b.Str(r, arch.SP, int32(i)*arch.WordBytes)
	}
}

// Pop undoes a matching Push.
func (b *Builder) Pop(regs ...arch.Reg) {
	if len(regs) == 0 {
		return
	}
	for i, r := range regs {
		b.Ldr(r, arch.SP, int32(i)*arch.WordBytes)
	}
	b.AddI(arch.SP, arch.SP, int32(len(regs))*arch.WordBytes)
}

// Finish resolves fixups and returns the image. Entry defaults to Org; use
// SetEntry or Image.Entry to change it.
func (b *Builder) Finish() (*Image, error) {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("asm: undefined label %q", f.label))
			continue
		}
		addr := b.org + uint32(f.index)*arch.WordBytes
		switch f.kind {
		case fixB, fixBL:
			off := arch.OffsetFor(addr, target)
			in, err := arch.Decode(b.words[f.index])
			if err != nil {
				b.errs = append(b.errs, fmt.Errorf("asm: fixup at %#x: %w", addr, err))
				continue
			}
			in.Off = off
			if err := in.Validate(); err != nil {
				b.errs = append(b.errs, fmt.Errorf("asm: branch to %q out of range: %w", f.label, err))
				continue
			}
			b.words[f.index] = in.Encode()
		case fixMOVWLo, fixMOVTHi:
			in, err := arch.Decode(b.words[f.index])
			if err != nil {
				b.errs = append(b.errs, fmt.Errorf("asm: fixup at %#x: %w", addr, err))
				continue
			}
			if f.kind == fixMOVWLo {
				in.Imm = int32(target & 0xffff)
			} else {
				in.Imm = int32(target >> 16)
			}
			b.words[f.index] = in.Encode()
		case fixWord:
			b.words[f.index] = target
		}
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("asm: %d error(s), first: %w", len(b.errs), b.errs[0])
	}
	syms := make(map[string]uint32, len(b.labels))
	for name, addr := range b.labels {
		syms[name] = addr
	}
	words := make([]uint32, len(b.words))
	copy(words, b.words)
	return &Image{Org: b.org, Entry: b.org, Words: words, Symbols: syms}, nil
}
