package asm

import (
	"fmt"
	"strconv"
	"strings"

	"atomemu/internal/arch"
)

// Assemble parses GA32 text assembly and produces an Image.
//
// Syntax overview:
//
//	; comment   // comment   @ comment
//	.org 0x10000          set load address (before any emission)
//	.entry main           set entry point to a label (default: .org)
//	.equ NAME, 123        define a constant usable as an immediate
//	.word 42              emit a data word (number or label)
//	.space 16             emit 16 zero words
//	.align 4              align to a multiple of 4 words
//	label:                define a label
//	  movw r0, #0x34      immediates take an optional '#'
//	  ldr r1, [r2, #4]    memory operands in brackets
//	  ldrr r1, [r2, r3]   register-offset memory
//	  ldrex r0, [r1]      the LL
//	  strex r2, r0, [r1]  the SC: status, value, [address]
//	  beq label           conditional branches: b<cond>
//	  bl func             call; bx lr / ret returns
//	  ldr r0, =0xdeadbeef pseudo: 32-bit constant load (movw/movt)
//	  ldr r0, =label      pseudo: address load
//	  push {r0, r1}       stack pseudo-ops
//	  pop {r0, r1}
func Assemble(src string) (*Image, error) {
	p := &parser{equs: make(map[string]int64)}
	// First scan for .org so the builder starts at the right base.
	org := uint32(0x10000)
	for _, line := range strings.Split(src, "\n") {
		fields := splitLine(line)
		if len(fields) == 2 && fields[0] == ".org" {
			v, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "#"), 0, 32)
			if err != nil {
				return nil, fmt.Errorf("asm: bad .org %q: %v", fields[1], err)
			}
			org = uint32(v)
			break
		}
	}
	p.b = NewBuilder(org)
	entryLabel := ""
	for lineno, raw := range strings.Split(src, "\n") {
		if err := p.line(raw, &entryLabel); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", lineno+1, err)
		}
	}
	im, err := p.b.Finish()
	if err != nil {
		return nil, err
	}
	if entryLabel != "" {
		addr, err := im.Symbol(entryLabel)
		if err != nil {
			return nil, fmt.Errorf("asm: .entry: %w", err)
		}
		im.Entry = addr
	}
	return im, nil
}

type parser struct {
	b       *Builder
	equs    map[string]int64
	sawOrg  bool
	emitted bool
}

// splitLine strips comments and splits a line into mnemonic + operand string.
func splitLine(line string) []string {
	for _, marker := range []string{";", "//", "@"} {
		if i := strings.Index(line, marker); i >= 0 {
			line = line[:i]
		}
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return []string{line}
	}
	return []string{line[:i], strings.TrimSpace(line[i:])}
}

func (p *parser) line(raw string, entry *string) error {
	fields := splitLine(raw)
	if fields == nil {
		return nil
	}
	head := fields[0]
	// Labels, possibly followed by an instruction on the same line.
	for strings.HasSuffix(head, ":") {
		name := strings.TrimSuffix(head, ":")
		if name == "" {
			return fmt.Errorf("empty label")
		}
		p.b.Label(name)
		if len(fields) == 1 {
			return nil
		}
		fields = splitLine(fields[1])
		if fields == nil {
			return nil
		}
		head = fields[0]
	}
	rest := ""
	if len(fields) > 1 {
		rest = fields[1]
	}
	if strings.HasPrefix(head, ".") {
		return p.directive(head, rest, entry)
	}
	p.emitted = true
	return p.instruction(strings.ToLower(head), rest)
}

func (p *parser) directive(name, rest string, entry *string) error {
	switch name {
	case ".org":
		if p.emitted || p.sawOrg {
			return fmt.Errorf(".org must appear once, before any code")
		}
		p.sawOrg = true
		return nil // already handled in the pre-scan
	case ".entry":
		*entry = strings.TrimSpace(rest)
		if *entry == "" {
			return fmt.Errorf(".entry needs a label")
		}
		return nil
	case ".equ":
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return fmt.Errorf(".equ needs NAME, value")
		}
		v, err := p.immediate(parts[1])
		if err != nil {
			return err
		}
		p.equs[parts[0]] = v
		return nil
	case ".word":
		p.emitted = true
		arg := strings.TrimSpace(rest)
		if v, err := p.immediate(arg); err == nil {
			p.b.Word(uint32(v))
		} else {
			p.b.WordLabel(arg)
		}
		return nil
	case ".space":
		p.emitted = true
		v, err := p.immediate(rest)
		if err != nil || v < 0 {
			return fmt.Errorf(".space needs a non-negative word count")
		}
		p.b.Space(int(v))
		return nil
	case ".align":
		p.emitted = true
		v, err := p.immediate(rest)
		if err != nil || v <= 0 {
			return fmt.Errorf(".align needs a positive word multiple")
		}
		p.b.AlignWords(int(v))
		return nil
	}
	return fmt.Errorf("unknown directive %s", name)
}

func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, c := range s {
		switch c {
		case '[', '{':
			depth++
		case ']', '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	tail := strings.TrimSpace(s[start:])
	if tail != "" {
		out = append(out, tail)
	}
	return out
}

func parseReg(s string) (arch.Reg, error) {
	switch strings.ToLower(s) {
	case "sp":
		return arch.SP, nil
	case "lr":
		return arch.LR, nil
	case "pc":
		return arch.PC, nil
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'R') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < arch.NumRegs {
			return arch.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func (p *parser) immediate(s string) (int64, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "#"))
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	if v, ok := p.equs[s]; ok {
		if neg {
			return -v, nil
		}
		return v, nil
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// memOperand parses "[rn]", "[rn, #imm]" or "[rn, rm]". The bool reports
// whether the offset is a register.
func (p *parser) memOperand(s string) (rn, rm arch.Reg, imm int64, isReg bool, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, 0, false, fmt.Errorf("bad memory operand %q", s)
	}
	parts := strings.Split(s[1:len(s)-1], ",")
	rn, err = parseReg(strings.TrimSpace(parts[0]))
	if err != nil {
		return
	}
	switch len(parts) {
	case 1:
		return rn, 0, 0, false, nil
	case 2:
		off := strings.TrimSpace(parts[1])
		if r, rerr := parseReg(off); rerr == nil {
			return rn, r, 0, true, nil
		}
		imm, err = p.immediate(off)
		return rn, 0, imm, false, err
	}
	return 0, 0, 0, false, fmt.Errorf("bad memory operand %q", s)
}

func (p *parser) instruction(mn, rest string) error {
	ops := splitOperands(rest)
	reg := func(i int) (arch.Reg, error) {
		if i >= len(ops) {
			return 0, fmt.Errorf("%s: missing operand %d", mn, i+1)
		}
		return parseReg(ops[i])
	}
	imm := func(i int) (int64, error) {
		if i >= len(ops) {
			return 0, fmt.Errorf("%s: missing operand %d", mn, i+1)
		}
		return p.immediate(ops[i])
	}

	// Pseudo-instructions first.
	switch mn {
	case "ret":
		p.b.Ret()
		return nil
	case "push", "pop":
		if len(ops) != 1 || !strings.HasPrefix(ops[0], "{") || !strings.HasSuffix(ops[0], "}") {
			return fmt.Errorf("%s needs {reg, ...}", mn)
		}
		var regs []arch.Reg
		for _, rs := range strings.Split(ops[0][1:len(ops[0])-1], ",") {
			r, err := parseReg(strings.TrimSpace(rs))
			if err != nil {
				return err
			}
			regs = append(regs, r)
		}
		if mn == "push" {
			p.b.Push(regs...)
		} else {
			p.b.Pop(regs...)
		}
		return nil
	case "ldr":
		// ldr rd, =imm32 / =label pseudo.
		if len(ops) == 2 && strings.HasPrefix(ops[1], "=") {
			rd, err := reg(0)
			if err != nil {
				return err
			}
			arg := strings.TrimPrefix(ops[1], "=")
			if v, err := p.immediate(arg); err == nil {
				p.b.MovImm32(rd, uint32(v))
			} else {
				p.b.LoadAddr(rd, arg)
			}
			return nil
		}
	}

	// Branches: bl, bx, b, b<cond>.
	switch {
	case mn == "bl":
		if len(ops) != 1 {
			return fmt.Errorf("bl needs a label")
		}
		p.b.BL(ops[0])
		return nil
	case mn == "bx":
		r, err := reg(0)
		if err != nil {
			return err
		}
		p.b.Bx(r)
		return nil
	case mn == "b":
		if len(ops) != 1 {
			return fmt.Errorf("b needs a label")
		}
		p.b.B(ops[0])
		return nil
	case len(mn) > 1 && mn[0] == 'b':
		for c := arch.Cond(0); c < arch.NumConds; c++ {
			if mn == "b"+c.String() {
				if len(ops) != 1 {
					return fmt.Errorf("%s needs a label", mn)
				}
				p.b.BCond(c, ops[0])
				return nil
			}
		}
	}

	op, ok := arch.OpcodeByName(mn)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	switch op.Format() {
	case arch.Fmt3R:
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rn, err := reg(1)
		if err != nil {
			return err
		}
		rm, err := reg(2)
		if err != nil {
			return err
		}
		p.b.op3(op, rd, rn, rm)
	case arch.Fmt2RI:
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rn, err := reg(1)
		if err != nil {
			return err
		}
		v, err := imm(2)
		if err != nil {
			return err
		}
		p.b.op2i(op, rd, rn, int32(v))
	case arch.Fmt2R:
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rm, err := reg(1)
		if err != nil {
			return err
		}
		p.b.emit(arch.Instruction{Op: op, Rd: rd, Rm: rm})
	case arch.FmtRI16, arch.FmtRI12:
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		p.b.emit(arch.Instruction{Op: op, Rd: rd, Imm: int32(v)})
	case arch.FmtCmpR:
		rn, err := reg(0)
		if err != nil {
			return err
		}
		rm, err := reg(1)
		if err != nil {
			return err
		}
		p.b.emit(arch.Instruction{Op: op, Rn: rn, Rm: rm})
	case arch.FmtCmpI:
		rn, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		p.b.emit(arch.Instruction{Op: op, Rn: rn, Imm: int32(v)})
	case arch.FmtMem:
		rd, err := reg(0)
		if err != nil {
			return err
		}
		if len(ops) != 2 {
			return fmt.Errorf("%s needs rd, [rn, #imm]", mn)
		}
		rn, _, off, isReg, err := p.memOperand(ops[1])
		if err != nil {
			return err
		}
		if isReg {
			return fmt.Errorf("%s takes an immediate offset (use %sr for register offset)", mn, mn)
		}
		p.b.emit(arch.Instruction{Op: op, Rd: rd, Rn: rn, Imm: int32(off)})
	case arch.FmtMemR:
		rd, err := reg(0)
		if err != nil {
			return err
		}
		if len(ops) != 2 {
			return fmt.Errorf("%s needs rd, [rn, rm]", mn)
		}
		rn, rm, _, isReg, err := p.memOperand(ops[1])
		if err != nil {
			return err
		}
		if !isReg {
			return fmt.Errorf("%s needs a register offset", mn)
		}
		p.b.emit(arch.Instruction{Op: op, Rd: rd, Rn: rn, Rm: rm})
	case arch.FmtEx:
		if op == arch.LDREX {
			rd, err := reg(0)
			if err != nil {
				return err
			}
			if len(ops) != 2 {
				return fmt.Errorf("ldrex needs rd, [rn]")
			}
			rn, _, _, _, err := p.memOperand(ops[1])
			if err != nil {
				return err
			}
			p.b.Ldrex(rd, rn)
		} else {
			rd, err := reg(0)
			if err != nil {
				return err
			}
			rm, err := reg(1)
			if err != nil {
				return err
			}
			if len(ops) != 3 {
				return fmt.Errorf("strex needs rd, rm, [rn]")
			}
			rn, _, _, _, err := p.memOperand(ops[2])
			if err != nil {
				return err
			}
			p.b.Strex(rd, rm, rn)
		}
	case arch.FmtSVC:
		v, err := imm(0)
		if err != nil {
			return err
		}
		p.b.Svc(int32(v))
	case arch.FmtNone:
		p.b.emit(arch.Instruction{Op: op})
	default:
		return fmt.Errorf("unhandled mnemonic %q", mn)
	}
	return nil
}
