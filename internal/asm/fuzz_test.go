package asm

import (
	"bytes"
	"testing"
)

// FuzzAssemble feeds arbitrary text to the assembler. It must never panic;
// any source it accepts must produce an image that survives the binary
// WriteTo/ReadImage round trip unchanged.
func FuzzAssemble(f *testing.F) {
	f.Add("movi r0, #1\nsvc #1\n")
	f.Add(".org 0x1000\n.entry main\nmain:\n  ldr r0, =cell\n  b main\ncell: .word 7\n")
	f.Add("loop:\n  ldrex r1, [r0]\n  addi r1, r1, #1\n  strex r2, r1, [r0]\n  cmpi r2, #0\n  bne loop\n")
	f.Add(".align 2\n.space 3\n.word 0xffffffff\n")
	f.Add("; comment only\n")
	f.Add("label without colon")
	f.Fuzz(func(t *testing.T, src string) {
		im, err := Assemble(src)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := im.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo on assembled image: %v", err)
		}
		back, err := ReadImage(&buf)
		if err != nil {
			t.Fatalf("ReadImage on written image: %v", err)
		}
		if back.Org != im.Org || back.Entry != im.Entry || len(back.Words) != len(im.Words) {
			t.Fatalf("round trip changed image: org %#x->%#x entry %#x->%#x words %d->%d",
				im.Org, back.Org, im.Entry, back.Entry, len(im.Words), len(back.Words))
		}
		for i := range im.Words {
			if im.Words[i] != back.Words[i] {
				t.Fatalf("round trip changed word %d: %#08x -> %#08x", i, im.Words[i], back.Words[i])
			}
		}
	})
}
