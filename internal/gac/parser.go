package gac

// Recursive-descent parser with precedence climbing for expressions.

type parser struct {
	toks []token
	pos  int
}

func parse(toks []token) (*program, error) {
	p := &parser{toks: toks}
	prog := &program{}
	for !p.at(tokEOF) {
		switch {
		case p.atKeyword("var"):
			g, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			prog.globals = append(prog.globals, g)
		case p.atKeyword("func"):
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.funcs = append(prog.funcs, f)
		default:
			return nil, errf(p.cur().line, "expected 'var' or 'func', got %s", p.cur())
		}
	}
	return prog, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind) bool { return p.cur().kind == kind }

func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == kw
}

func (p *parser) atPunct(s string) bool {
	return p.cur().kind == tokPunct && p.cur().text == s
}

func (p *parser) eatPunct(s string) bool {
	if p.atPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.eatPunct(s) {
		return errf(p.cur().line, "expected %q, got %s", s, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	if !p.at(tokIdent) {
		return token{}, errf(p.cur().line, "expected identifier, got %s", p.cur())
	}
	return p.next(), nil
}

// globalDecl parses: var name; | var name = NUM; | var name[NUM];
func (p *parser) globalDecl() (*globalDecl, error) {
	kw := p.next() // 'var'
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	g := &globalDecl{name: name.text, size: 1, line: kw.line}
	if p.eatPunct("[") {
		if !p.at(tokNumber) {
			return nil, errf(p.cur().line, "array size must be a constant")
		}
		g.size = p.next().num
		if g.size == 0 || g.size > 1<<20 {
			return nil, errf(kw.line, "array size %d out of range", g.size)
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	} else if p.eatPunct("=") {
		if !p.at(tokNumber) {
			return nil, errf(p.cur().line, "global initializer must be a constant")
		}
		g.init = p.next().num
	}
	return g, p.expectPunct(";")
}

func (p *parser) funcDecl() (*funcDecl, error) {
	kw := p.next() // 'func'
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	f := &funcDecl{name: name.text, line: kw.line}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.atPunct(")") {
		if len(f.params) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		prm, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		f.params = append(f.params, prm.text)
	}
	p.next() // ')'
	if len(f.params) > 4 {
		return nil, errf(kw.line, "function %s: at most 4 parameters (r0-r3 ABI)", f.name)
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

func (p *parser) block() (*blockStmt, error) {
	line := p.cur().line
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &blockStmt{line: line}
	for !p.atPunct("}") {
		if p.at(tokEOF) {
			return nil, errf(line, "unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
	p.next() // '}'
	return b, nil
}

func (p *parser) statement() (stmt, error) {
	t := p.cur()
	switch {
	case p.atPunct("{"):
		return p.block()
	case p.atKeyword("var"):
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		s := &varStmt{name: name.text, line: t.line}
		if p.eatPunct("=") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			s.init = e
		}
		return s, p.expectPunct(";")
	case p.atKeyword("if"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.statement()
		if err != nil {
			return nil, err
		}
		s := &ifStmt{cond: cond, then: then, line: t.line}
		if p.atKeyword("else") {
			p.next()
			els, err := p.statement()
			if err != nil {
				return nil, err
			}
			s.els_ = els
		}
		return s, nil
	case p.atKeyword("while"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: t.line}, nil
	case p.atKeyword("return"):
		p.next()
		s := &returnStmt{line: t.line}
		if !p.atPunct(";") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			s.val = e
		}
		return s, p.expectPunct(";")
	case p.atKeyword("break"):
		p.next()
		return &breakStmt{line: t.line}, p.expectPunct(";")
	case p.atKeyword("continue"):
		p.next()
		return &continueStmt{line: t.line}, p.expectPunct(";")
	}
	// Expression or assignment statement.
	e, err := p.expression()
	if err != nil {
		return nil, err
	}
	if p.eatPunct("=") {
		rhs, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &assignStmt{lhs: e, rhs: rhs, line: t.line}, p.expectPunct(";")
	}
	return &exprStmt{e: e, line: t.line}, p.expectPunct(";")
}

// Binary operator precedence (higher binds tighter).
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expression() (expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binExpr{op: t.text, l: lhs, r: rhs, line: t.line}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "!", "~", "*", "&":
			p.next()
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &unaryExpr{op: t.text, x: x, line: t.line}, nil
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.atPunct("[") {
		t := p.next()
		idx, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		e = &indexExpr{base: e, idx: idx, line: t.line}
	}
	return e, nil
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		return &numExpr{val: t.num, line: t.line}, nil
	case t.kind == tokIdent:
		p.next()
		if p.atPunct("(") {
			p.next()
			call := &callExpr{name: t.text, line: t.line}
			for !p.atPunct(")") {
				if len(call.args) > 0 {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				a, err := p.expression()
				if err != nil {
					return nil, err
				}
				call.args = append(call.args, a)
			}
			p.next() // ')'
			return call, nil
		}
		return &identExpr{name: t.text, line: t.line}, nil
	case p.atPunct("("):
		p.next()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	}
	return nil, errf(t.line, "unexpected %s in expression", t)
}
