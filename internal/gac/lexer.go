package gac

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokKeyword
	tokPunct // operators and punctuation, in tok.text
)

type token struct {
	kind tokKind
	text string
	num  uint32
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokNumber:
		return fmt.Sprintf("number %d", t.num)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

var keywords = map[string]bool{
	"var": true, "func": true, "if": true, "else": true, "while": true,
	"return": true, "break": true, "continue": true,
}

// multi-character operators, longest first.
var multiOps = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			start := line
			i += 2
			for {
				if i+1 >= n {
					return nil, errf(start, "unterminated block comment")
				}
				if src[i] == '\n' {
					line++
				}
				if src[i] == '*' && src[i+1] == '/' {
					i += 2
					break
				}
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (isIdentChar(src[i])) {
				i++
			}
			word := src[start:i]
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, text: word, line: line})
		case unicode.IsDigit(rune(c)):
			start := i
			for i < n && isIdentChar(src[i]) {
				i++
			}
			lit := src[start:i]
			v, err := strconv.ParseUint(lit, 0, 32)
			if err != nil {
				return nil, errf(line, "bad number %q", lit)
			}
			toks = append(toks, token{kind: tokNumber, text: lit, num: uint32(v), line: line})
		default:
			matched := false
			for _, op := range multiOps {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{kind: tokPunct, text: op, line: line})
					i += len(op)
					matched = true
					break
				}
			}
			if matched {
				break
			}
			switch c {
			case '+', '-', '*', '/', '%', '&', '|', '^', '!', '~',
				'(', ')', '{', '}', '[', ']', ',', ';', '=', '<', '>':
				toks = append(toks, token{kind: tokPunct, text: string(c), line: line})
				i++
			default:
				return nil, errf(line, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) ||
		(c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || c == 'x' || c == 'X'
}
