package gac

import "testing"

func lexKinds(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatal(err)
	}
	return toks
}

func TestLexBasics(t *testing.T) {
	toks := lexKinds(t, "var x = 0x1f + 42;")
	want := []struct {
		kind tokKind
		text string
	}{
		{tokKeyword, "var"}, {tokIdent, "x"}, {tokPunct, "="},
		{tokNumber, "0x1f"}, {tokPunct, "+"}, {tokNumber, "42"},
		{tokPunct, ";"}, {tokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].kind != w.kind || (w.text != "" && toks[i].text != w.text) {
			t.Errorf("token %d = %v, want %v %q", i, toks[i], w.kind, w.text)
		}
	}
	if toks[3].num != 0x1f || toks[5].num != 42 {
		t.Errorf("numbers: %d %d", toks[3].num, toks[5].num)
	}
}

func TestLexMultiCharOps(t *testing.T) {
	toks := lexKinds(t, "a<=b>=c==d!=e&&f||g<<h>>i")
	var ops []string
	for _, tk := range toks {
		if tk.kind == tokPunct {
			ops = append(ops, tk.text)
		}
	}
	want := []string{"<=", ">=", "==", "!=", "&&", "||", "<<", ">>"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}

func TestLexLineTracking(t *testing.T) {
	toks := lexKinds(t, "a\nb\n\nc")
	lines := map[string]int{}
	for _, tk := range toks {
		if tk.kind == tokIdent {
			lines[tk.text] = tk.line
		}
	}
	if lines["a"] != 1 || lines["b"] != 2 || lines["c"] != 4 {
		t.Fatalf("lines = %v", lines)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("a $ b"); err == nil {
		t.Error("bad character should fail")
	}
	if _, err := lex("/* never closed"); err == nil {
		t.Error("unterminated comment should fail")
	}
	if _, err := lex("var x = 99999999999999;"); err == nil {
		t.Error("overflowing number should fail")
	}
}

func TestParsePrecedenceShape(t *testing.T) {
	toks := lexKinds(t, "func main() { return 1 + 2 * 3 == 7 && 1; }")
	prog, err := parse(toks)
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.funcs[0].body.stmts[0].(*returnStmt)
	// Top level must be &&.
	and, ok := ret.val.(*binExpr)
	if !ok || and.op != "&&" {
		t.Fatalf("top op = %#v", ret.val)
	}
	eq, ok := and.l.(*binExpr)
	if !ok || eq.op != "==" {
		t.Fatalf("second level = %#v", and.l)
	}
	plus, ok := eq.l.(*binExpr)
	if !ok || plus.op != "+" {
		t.Fatalf("third level = %#v", eq.l)
	}
	mul, ok := plus.r.(*binExpr)
	if !ok || mul.op != "*" {
		t.Fatalf("mul did not bind tighter: %#v", plus.r)
	}
}

func TestParseDanglingElse(t *testing.T) {
	toks := lexKinds(t, "func main() { if (1) if (2) return 3; else return 4; }")
	prog, err := parse(toks)
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.funcs[0].body.stmts[0].(*ifStmt)
	if outer.els_ != nil {
		t.Fatal("else must bind to the inner if")
	}
	inner := outer.then.(*ifStmt)
	if inner.els_ == nil {
		t.Fatal("inner if lost its else")
	}
}

func TestParseErrorsHaveLines(t *testing.T) {
	cases := []string{
		"func main( { }",
		"func main() { var; }",
		"func main() { while 1 {} }",
		"var a[0]; func main() {}",
		"func main() { return 1 }",
	}
	for _, src := range cases {
		toks, err := lex(src)
		if err != nil {
			continue
		}
		if _, err := parse(toks); err == nil {
			t.Errorf("parse(%q) should fail", src)
		}
	}
}
