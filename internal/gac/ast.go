package gac

// The GAC abstract syntax tree. Every value is a 32-bit word.

type program struct {
	globals []*globalDecl
	funcs   []*funcDecl
}

type globalDecl struct {
	name string
	// size is the word count: 1 for scalars, n for "var a[n]".
	size uint32
	// init is the scalar initializer (constant only).
	init uint32
	line int
}

type funcDecl struct {
	name   string
	params []string
	body   *blockStmt
	line   int
}

// --- statements ---

type stmt interface{ stmtLine() int }

type blockStmt struct {
	stmts []stmt
	line  int
}

type varStmt struct {
	name string
	init expr // nil means zero
	line int
}

type ifStmt struct {
	cond       expr
	then, els_ stmt // els_ may be nil
	line       int
}

type whileStmt struct {
	cond expr
	body stmt
	line int
}

type returnStmt struct {
	val  expr // nil means return 0
	line int
}

type breakStmt struct{ line int }
type continueStmt struct{ line int }

type exprStmt struct {
	e    expr
	line int
}

// assignStmt is "lhs = rhs" where lhs is a local, global, *expr or g[i].
type assignStmt struct {
	lhs  expr
	rhs  expr
	line int
}

func (s *blockStmt) stmtLine() int    { return s.line }
func (s *varStmt) stmtLine() int      { return s.line }
func (s *ifStmt) stmtLine() int       { return s.line }
func (s *whileStmt) stmtLine() int    { return s.line }
func (s *returnStmt) stmtLine() int   { return s.line }
func (s *breakStmt) stmtLine() int    { return s.line }
func (s *continueStmt) stmtLine() int { return s.line }
func (s *exprStmt) stmtLine() int     { return s.line }
func (s *assignStmt) stmtLine() int   { return s.line }

// --- expressions ---

type expr interface{ exprLine() int }

type numExpr struct {
	val  uint32
	line int
}

type identExpr struct {
	name string
	line int
}

type unaryExpr struct {
	op   string // "-", "!", "~", "*", "&"
	x    expr
	line int
}

type binExpr struct {
	op   string
	l, r expr
	line int
}

type callExpr struct {
	name string
	args []expr
	line int
}

type indexExpr struct {
	base expr // must be an addressable global (array)
	idx  expr
	line int
}

func (e *numExpr) exprLine() int   { return e.line }
func (e *identExpr) exprLine() int { return e.line }
func (e *unaryExpr) exprLine() int { return e.line }
func (e *binExpr) exprLine() int   { return e.line }
func (e *callExpr) exprLine() int  { return e.line }
func (e *indexExpr) exprLine() int { return e.line }
