package gac

import (
	"strings"
	"testing"

	"atomemu/internal/engine"
)

// run compiles and executes a GAC program single-threaded, returning the
// output log.
func run(t *testing.T, src string, scheme string, args ...uint32) []uint32 {
	t.Helper()
	m, _ := start(t, src, scheme, args...)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m.Output()
}

func start(t *testing.T, src, scheme string, args ...uint32) (*engine.Machine, *engine.CPU) {
	t.Helper()
	im, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig(scheme)
	cfg.MaxGuestInstrs = 200_000_000
	m, err := engine.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	c, err := m.Start(im.Entry, args...)
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

func expectOutput(t *testing.T, src string, want ...uint32) {
	t.Helper()
	got := run(t, src, "hst")
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output = %v, want %v", got, want)
		}
	}
}

func TestArithmeticAndPrecedence(t *testing.T) {
	expectOutput(t, `
func main() {
    print(2 + 3 * 4);          // 14
    print((2 + 3) * 4);        // 20
    print(100 / 7);            // 14
    print(100 % 7);            // 2
    print(1 << 10);            // 1024
    print(0xff00 >> 8);        // 255
    print(0xf0 | 0x0f);        // 255
    print(0xff & 0x18);        // 24
    print(0xff ^ 0x0f);        // 240
    print(-5 + 10);            // 5
    print(~0 - 0xfffffffe);    // 1
    exit(0);
}`, 14, 20, 14, 2, 1024, 255, 255, 24, 240, 5, 1)
}

func TestComparisonsAndLogic(t *testing.T) {
	expectOutput(t, `
func main() {
    print(3 < 4);
    print(4 <= 4);
    print(5 > 6);
    print(5 >= 6);
    print(7 == 7);
    print(7 != 7);
    print(1 && 0);
    print(1 && 2);
    print(0 || 0);
    print(0 || 9);
    print(!0);
    print(!42);
    exit(0);
}`, 1, 1, 0, 0, 1, 0, 0, 1, 0, 1, 1, 0)
}

func TestShortCircuitDoesNotEvaluate(t *testing.T) {
	// The right side of && must not run when the left is false: the global
	// would record it.
	expectOutput(t, `
var touched;
func touch() { touched = 1; return 1; }
func main() {
    var x = 0 && touch();
    print(x);
    print(touched);
    var y = 1 || touch();
    print(y);
    print(touched);
    exit(0);
}`, 0, 0, 1, 0)
}

func TestControlFlow(t *testing.T) {
	expectOutput(t, `
func main() {
    var i = 0;
    var sum = 0;
    while (i < 10) {
        i = i + 1;
        if (i == 3) { continue; }
        if (i == 8) { break; }
        sum = sum + i;
    }
    print(sum);                 // 1+2+4+5+6+7 = 25
    if (sum > 20) { print(1); } else { print(2); }
    exit(0);
}`, 25, 1)
}

func TestFunctionsAndRecursion(t *testing.T) {
	expectOutput(t, `
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func max(a, b) {
    if (a > b) { return a; }
    return b;
}
func sub2(a, b) { return a - b; }
func main() {
    print(fib(15));            // 610
    print(max(3, 9));
    print(max(9, 3));
    print(sub2(10, 4));        // argument order: 6, not -6
    exit(0);
}`, 610, 9, 9, 6)
}

func TestGlobalsPointersArrays(t *testing.T) {
	expectOutput(t, `
var g = 7;
var arr[8];
func bump(p) { *p = *p + 1; }
func main() {
    bump(&g);
    bump(&g);
    print(g);                   // 9
    var i = 0;
    while (i < 8) { arr[i] = i * i; i = i + 1; }
    print(arr[5]);              // 25
    print(*(&arr[3]));          // 9
    var p = &arr[0];
    print(*(p + 4 * 2));        // arr[2] = 4
    exit(0);
}`, 9, 25, 9, 4)
}

func TestAtomicBuiltinsSingleThread(t *testing.T) {
	expectOutput(t, `
var cell = 10;
func main() {
    print(atomic_add(&cell, 5));       // returns new value: 15
    print(atomic_xchg(&cell, 99));     // returns old: 15
    print(cell);                       // 99
    print(atomic_cas(&cell, 99, 1));   // success: 0
    print(atomic_cas(&cell, 99, 2));   // mismatch: 1
    print(cell);                       // 1
    var v = ll(&cell);
    print(v);                          // 1
    print(sc(&cell, 42));              // success: 0
    print(cell);                       // 42
    exit(0);
}`, 15, 15, 99, 0, 1, 1, 1, 0, 42)
}

func TestSpawnJoinThreads(t *testing.T) {
	// Concurrency correctness end-to-end from the high-level language.
	for _, scheme := range []string{"pico-cas", "hst", "pst"} {
		t.Run(scheme, func(t *testing.T) {
			out := run(t, `
var counter;
var done;
func worker(n) {
    var i = 0;
    while (i < n) {
        atomic_add(&counter, 1);
        i = i + 1;
    }
    atomic_add(&done, 1);
}
func main() {
    var t1 = spawn(worker, 2000);
    var t2 = spawn(worker, 2000);
    worker(2000);
    join(t1);
    join(t2);
    print(counter);
    print(done);
    exit(0);
}`, scheme)
			if len(out) != 2 || out[0] != 6000 || out[1] != 3 {
				t.Fatalf("output = %v, want [6000 3]", out)
			}
		})
	}
}

// TestLockFreeStackInGAC: the paper's Figure 3 micro-benchmark written in
// the high-level language — ABA under pico-cas would corrupt it; under HST
// it must survive.
func TestLockFreeStackInGAC(t *testing.T) {
	src := `
var top;
var nodes[32];     // 16 nodes x [next, value]

func push(node) {
    var old = ll(&top);
    *node = old;                 // node->next = old (store in the window)
    while (sc(&top, node)) {
        old = ll(&top);
        *node = old;
    }
}

func pop() {
    while (1) {
        var old = ll(&top);
        if (old == 0) { clrex(); return 0; }
        var next = *old;
        if (sc(&top, next) == 0) { return old; }
    }
}

func worker(n) {
    var i = 0;
    while (i < n) {
        var node = pop();
        if (node == 0) { yield(); continue; }
        *(node + 4) = *(node + 4) + 1;   // touch the payload
        push(node);
        i = i + 1;
    }
}

func main(n) {
    // Link 16 nodes onto the stack.
    var i = 0;
    while (i < 16) {
        var node = &nodes[i * 2];
        if (i == 15) { *node = 0; } else { *node = &nodes[(i + 1) * 2]; }
        top = node;
        i = i + 1;
    }
    // Relink properly: push order above left top at the last node; rebuild.
    top = 0;
    i = 0;
    while (i < 16) {
        push(&nodes[i * 2]);
        i = i + 1;
    }
    var t1 = spawn(worker, n);
    var t2 = spawn(worker, n);
    var t3 = spawn(worker, n);
    worker(n);
    join(t1); join(t2); join(t3);
    // Audit: walk the stack counting nodes and self-loops.
    var count = 0;
    var cur = top;
    while (cur != 0) {
        if (*cur == cur) { print(777777); exit(2); }  // ABA signature
        count = count + 1;
        if (count > 16) { print(888888); exit(3); }   // cycle
        cur = *cur;
    }
    print(count);
    exit(0);
}`
	m, _ := start(t, src, "hst", 1500)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := m.Output()
	if len(out) != 1 || out[0] != 16 {
		t.Fatalf("stack audit = %v, want [16] — corruption under HST", out)
	}
}

func TestExitCodePropagates(t *testing.T) {
	m, c := start(t, "func main() { exit(42); }", "pico-cas")
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if c.ExitCode() != 42 {
		t.Fatalf("exit code = %d", c.ExitCode())
	}
}

func TestMainReceivesArgument(t *testing.T) {
	m, _ := start(t, "func main(n) { print(n * 2); exit(0); }", "pico-cas", 21)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out := m.Output(); len(out) != 1 || out[0] != 42 {
		t.Fatalf("output = %v", out)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"no main":               "func f() {}",
		"undefined variable":    "func main() { print(x); }",
		"undefined function":    "func main() { f(); }",
		"wrong arity":           "func f(a) {} func main() { f(1, 2); }",
		"too many params":       "func f(a, b, c, d, e) {} func main() {}",
		"duplicate local":       "func main() { var a; var a; }",
		"duplicate global":      "var g; var g; func main() {}",
		"duplicate function":    "func f() {} func f() {} func main() {}",
		"break outside loop":    "func main() { break; }",
		"address of local":      "func main() { var a; print(&a); }",
		"assign to expression":  "func main() { 1 + 2 = 3; }",
		"bad spawn target":      "func main() { spawn(1 + 2, 0); }",
		"unterminated block":    "func main() {",
		"bad token":             "func main() { $; }",
		"array size not const":  "var a[x]; func main() {}",
		"global init not const": "var g = 1 + 2; func main() {}",
		"builtin arity":         "func main() { print(); }",
		"spawn two params":      "func f(a, b) {} func main() { spawn(f, 0); }",
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: compile should fail:\n%s", name, src)
		} else if !strings.Contains(err.Error(), "gac: line") {
			t.Errorf("%s: error %v lacks position", name, err)
		}
	}
}

func TestCommentsAndHexNumbers(t *testing.T) {
	expectOutput(t, `
// line comment
/* block
   comment */
func main() {
    print(0x10);   // 16
    print(0777);   // octal via strconv: 511
    exit(0);
}`, 16, 511)
}

func TestDeepExpressionStack(t *testing.T) {
	// Nested expressions exercise the push/pop temporary stack.
	expectOutput(t, `
func main() {
    print(((1 + 2) * (3 + 4)) - ((5 - 6) * (7 + 8)));  // 21 + 15 = 36
    exit(0);
}`, 36)
}

// TestGACAtomicAddFuses: the compiler's atomic_add emits exactly the LL/SC
// retry shape the rule-based fuser recognizes — with fusion on, no SC ever
// fails and the result is still exact.
func TestGACAtomicAddFuses(t *testing.T) {
	im, err := Compile(`
var counter;
func worker(n) {
    var i = 0;
    while (i < n) { atomic_add(&counter, 1); i = i + 1; }
}
func main(n) {
    var t1 = spawn(worker, n);
    worker(n);
    join(t1);
    print(counter);
    exit(0);
}`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig("hst")
	cfg.FuseAtomics = true
	cfg.MaxGuestInstrs = 200_000_000
	m, err := engine.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(im.Entry, 3000); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out := m.Output(); len(out) != 1 || out[0] != 6000 {
		t.Fatalf("output = %v, want [6000]", out)
	}
	agg := m.AggregateStats()
	if agg.SCFails != 0 {
		t.Fatalf("SC failures under fusion: %d — atomic_add did not fuse", agg.SCFails)
	}
	if agg.LLs < 6000 {
		t.Fatalf("fused RMWs not counted as LL/SC pairs: %d", agg.LLs)
	}
}
