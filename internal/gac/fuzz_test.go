package gac

import (
	"testing"

	"atomemu/internal/arch"
)

// FuzzGACParse feeds arbitrary text through the full GAC pipeline (lexer,
// parser, code generator). It must never panic, and any program it accepts
// must compile to an image of decodable instructions up to the data section.
func FuzzGACParse(f *testing.F) {
	f.Add("func main() { exit(0); }")
	f.Add("var x = 3;\nfunc main() { x = x + 1; print(x); }")
	f.Add("func main() { var i = 0; while (i < 10) { i = i + 1; } exit(i); }")
	f.Add("func add(a, b) { return a + b; }\nfunc main() { print(add(2, 3)); }")
	f.Add("var cell = 10;\nfunc main() { print(atomic_add(&cell, 5)); print(atomic_cas(&cell, 15, 1)); }")
	f.Add("func main() { if (1) { exit(1); } else { exit(2); } }")
	f.Add("}{)(;;")
	f.Fuzz(func(t *testing.T, src string) {
		im, err := Compile(src)
		if err != nil {
			return
		}
		if im == nil {
			t.Fatal("Compile returned nil image and nil error")
		}
		// Entry must land inside the image on a word boundary.
		if im.Entry < im.Org || im.Entry >= im.End() || im.Entry%arch.WordBytes != 0 {
			t.Fatalf("entry %#x outside image [%#x,%#x)", im.Entry, im.Org, im.End())
		}
	})
}
