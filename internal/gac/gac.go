// Package gac implements GAC ("GA32 C"), a small C-like language that
// compiles to GA32 guest images — so atomemu guest programs (tests,
// workloads, reproduction experiments) can be written above assembly level.
// The compiler is a classic three-stage pipeline: hand-written lexer,
// recursive-descent parser with precedence climbing, and a one-pass code
// generator that emits through the internal/asm macro-assembler.
//
// The language, in one example:
//
//	var counter;          // one-word global, zero-initialized
//	var nodes[64];        // word-array global
//
//	func worker(n) {
//	    var i = 0;
//	    while (i < n) {
//	        atomic_add(&counter, 1);   // LL/SC retry loop (fusable, §VI)
//	        i = i + 1;
//	    }
//	    return i;
//	}
//
//	func main(arg) {
//	    var t = spawn(worker, arg);
//	    worker(arg);
//	    join(t);
//	    print(counter);
//	    exit(0);
//	}
//
// Everything is a 32-bit word. Pointers are words; `&g` takes a global's
// address, `*p` dereferences, `g[i]` indexes a global array. Control flow:
// if/else, while, break, continue, return. Builtins map to the engine's
// guest syscalls (print, exit, spawn, join, tid, futex_wait, futex_wake,
// barrier_init, barrier_wait, mmap, clock, yield) and to atomic primitives
// (ll, sc, clrex, fence, atomic_add, atomic_xchg, atomic_cas) emitted as
// LL/SC instruction sequences — which the rule-based fuser then recognizes.
package gac

import (
	"fmt"

	"atomemu/internal/asm"
)

// Compile turns GAC source into a runnable guest image with entry at main.
func Compile(src string) (*asm.Image, error) {
	return CompileAt(src, 0x10000)
}

// CompileAt compiles with an explicit load address.
func CompileAt(src string, org uint32) (*asm.Image, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	prog, err := parse(toks)
	if err != nil {
		return nil, err
	}
	return generate(prog, org)
}

// Error is a positioned compile error.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("gac: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}
