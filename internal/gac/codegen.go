package gac

import (
	"atomemu/internal/arch"
	"atomemu/internal/asm"
	"atomemu/internal/mmu"
)

// Code generator. Conventions:
//
//   - r0..r3: arguments, return value, expression scratch
//   - r11:    frame pointer (locals at [r11 + 4*slot])
//   - r12:    extra scratch for atomic builtins
//   - sp:     expression temporaries are pushed/popped around binary ops
//
// Each function is emitted as "fn_<name>"; globals live on their own page
// after the code so PST-family schemes see realistic data placement.

type gen struct {
	b       *asm.Builder
	globals map[string]*globalDecl
	funcs   map[string]*funcDecl

	// per-function state
	locals   map[string]int
	epilogue string
	breaks   []string
	conts    []string
}

const fp = arch.R11

func generate(prog *program, org uint32) (*asm.Image, error) {
	g := &gen{
		b:       asm.NewBuilder(org),
		globals: make(map[string]*globalDecl),
		funcs:   make(map[string]*funcDecl),
	}
	for _, gd := range prog.globals {
		if g.globals[gd.name] != nil {
			return nil, errf(gd.line, "duplicate global %q", gd.name)
		}
		g.globals[gd.name] = gd
	}
	var main *funcDecl
	for _, f := range prog.funcs {
		if g.funcs[f.name] != nil {
			return nil, errf(f.line, "duplicate function %q", f.name)
		}
		if g.globals[f.name] != nil {
			return nil, errf(f.line, "%q is both a global and a function", f.name)
		}
		g.funcs[f.name] = f
		if f.name == "main" {
			main = f
		}
	}
	if main == nil {
		return nil, errf(1, "no main function")
	}
	for _, f := range prog.funcs {
		if err := g.function(f); err != nil {
			return nil, err
		}
	}
	// Data page.
	g.b.AlignWords(mmu.PageWords)
	for _, gd := range prog.globals {
		g.b.Label("g_" + gd.name)
		if gd.size == 1 {
			g.b.Word(gd.init)
		} else {
			g.b.Space(int(gd.size))
		}
	}
	im, err := g.b.Finish()
	if err != nil {
		return nil, err
	}
	im.Entry = im.MustSymbol("fn_main")
	return im, nil
}

// countLocals pre-scans a function body for var declarations.
func countLocals(s stmt, names map[string]int) error {
	switch n := s.(type) {
	case *blockStmt:
		for _, c := range n.stmts {
			if err := countLocals(c, names); err != nil {
				return err
			}
		}
	case *varStmt:
		if _, dup := names[n.name]; dup {
			return errf(n.line, "duplicate local %q", n.name)
		}
		names[n.name] = len(names)
	case *ifStmt:
		if err := countLocals(n.then, names); err != nil {
			return err
		}
		if n.els_ != nil {
			return countLocals(n.els_, names)
		}
	case *whileStmt:
		return countLocals(n.body, names)
	}
	return nil
}

func (g *gen) function(f *funcDecl) error {
	g.locals = make(map[string]int)
	for _, p := range f.params {
		if _, dup := g.locals[p]; dup {
			return errf(f.line, "duplicate parameter %q", p)
		}
		g.locals[p] = len(g.locals)
	}
	if err := countLocals(f.body, g.locals); err != nil {
		return err
	}
	n := len(g.locals)
	if n > 512 {
		return errf(f.line, "function %s: too many locals (%d)", f.name, n)
	}
	frame := int32(n * 4)
	g.epilogue = g.b.Gensym("ret_" + f.name)
	g.breaks, g.conts = nil, nil

	g.b.Label("fn_" + f.name)
	g.b.Push(fp, arch.LR)
	if frame > 0 {
		g.b.SubI(arch.SP, arch.SP, frame)
	}
	g.b.Mov(fp, arch.SP)
	for i := range f.params {
		g.b.Str(arch.Reg(i), fp, int32(g.locals[f.params[i]])*4)
	}
	if err := g.stmt(f.body); err != nil {
		return err
	}
	// Implicit "return 0" at the end.
	g.b.MovI(arch.R0, 0)
	g.b.Label(g.epilogue)
	g.b.Mov(arch.SP, fp)
	if frame > 0 {
		g.b.AddI(arch.SP, arch.SP, frame)
	}
	g.b.Pop(fp, arch.LR)
	g.b.Ret()
	return nil
}

// --- statements ---

func (g *gen) stmt(s stmt) error {
	switch n := s.(type) {
	case *blockStmt:
		for _, c := range n.stmts {
			if err := g.stmt(c); err != nil {
				return err
			}
		}
		return nil
	case *varStmt:
		slot := g.locals[n.name]
		if n.init != nil {
			if err := g.expr(n.init); err != nil {
				return err
			}
		} else {
			g.b.MovI(arch.R0, 0)
		}
		g.b.Str(arch.R0, fp, int32(slot)*4)
		return nil
	case *assignStmt:
		return g.assign(n)
	case *exprStmt:
		return g.expr(n.e)
	case *returnStmt:
		if n.val != nil {
			if err := g.expr(n.val); err != nil {
				return err
			}
		} else {
			g.b.MovI(arch.R0, 0)
		}
		g.b.B(g.epilogue)
		return nil
	case *ifStmt:
		elseL := g.b.Gensym("else")
		doneL := g.b.Gensym("endif")
		if err := g.expr(n.cond); err != nil {
			return err
		}
		g.b.CmpI(arch.R0, 0)
		g.b.Beq(elseL)
		if err := g.stmt(n.then); err != nil {
			return err
		}
		g.b.B(doneL)
		g.b.Label(elseL)
		if n.els_ != nil {
			if err := g.stmt(n.els_); err != nil {
				return err
			}
		}
		g.b.Label(doneL)
		return nil
	case *whileStmt:
		top := g.b.Gensym("while")
		done := g.b.Gensym("wend")
		g.breaks = append(g.breaks, done)
		g.conts = append(g.conts, top)
		g.b.Label(top)
		if err := g.expr(n.cond); err != nil {
			return err
		}
		g.b.CmpI(arch.R0, 0)
		g.b.Beq(done)
		if err := g.stmt(n.body); err != nil {
			return err
		}
		g.b.B(top)
		g.b.Label(done)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		return nil
	case *breakStmt:
		if len(g.breaks) == 0 {
			return errf(n.line, "break outside loop")
		}
		g.b.B(g.breaks[len(g.breaks)-1])
		return nil
	case *continueStmt:
		if len(g.conts) == 0 {
			return errf(n.line, "continue outside loop")
		}
		g.b.B(g.conts[len(g.conts)-1])
		return nil
	}
	return errf(s.stmtLine(), "unhandled statement")
}

func (g *gen) assign(n *assignStmt) error {
	switch lhs := n.lhs.(type) {
	case *identExpr:
		if slot, ok := g.locals[lhs.name]; ok {
			if err := g.expr(n.rhs); err != nil {
				return err
			}
			g.b.Str(arch.R0, fp, int32(slot)*4)
			return nil
		}
		if gd := g.globals[lhs.name]; gd != nil {
			if err := g.expr(n.rhs); err != nil {
				return err
			}
			g.b.LoadAddr(arch.R1, "g_"+lhs.name)
			g.b.Str(arch.R0, arch.R1, 0)
			return nil
		}
		return errf(lhs.line, "assignment to undefined name %q", lhs.name)
	case *unaryExpr:
		if lhs.op != "*" {
			return errf(lhs.line, "cannot assign to unary %q expression", lhs.op)
		}
		if err := g.expr(n.rhs); err != nil {
			return err
		}
		g.push(arch.R0)
		if err := g.expr(lhs.x); err != nil {
			return err
		}
		g.b.Mov(arch.R1, arch.R0)
		g.pop(arch.R0)
		g.b.Str(arch.R0, arch.R1, 0)
		return nil
	case *indexExpr:
		if err := g.expr(n.rhs); err != nil {
			return err
		}
		g.push(arch.R0)
		if err := g.addrOf(lhs); err != nil {
			return err
		}
		g.b.Mov(arch.R1, arch.R0)
		g.pop(arch.R0)
		g.b.Str(arch.R0, arch.R1, 0)
		return nil
	}
	return errf(n.line, "invalid assignment target")
}

// --- expressions: result in r0 ---

func (g *gen) push(r arch.Reg) {
	g.b.SubI(arch.SP, arch.SP, 4)
	g.b.Str(r, arch.SP, 0)
}

func (g *gen) pop(r arch.Reg) {
	g.b.Ldr(r, arch.SP, 0)
	g.b.AddI(arch.SP, arch.SP, 4)
}

func (g *gen) expr(e expr) error {
	switch n := e.(type) {
	case *numExpr:
		g.b.MovImm32(arch.R0, n.val)
		return nil
	case *identExpr:
		if slot, ok := g.locals[n.name]; ok {
			g.b.Ldr(arch.R0, fp, int32(slot)*4)
			return nil
		}
		if g.globals[n.name] != nil {
			g.b.LoadAddr(arch.R0, "g_"+n.name)
			g.b.Ldr(arch.R0, arch.R0, 0)
			return nil
		}
		return errf(n.line, "undefined name %q", n.name)
	case *unaryExpr:
		switch n.op {
		case "-":
			if err := g.expr(n.x); err != nil {
				return err
			}
			g.b.RsbI(arch.R0, arch.R0, 0)
			return nil
		case "~":
			if err := g.expr(n.x); err != nil {
				return err
			}
			g.b.Mvn(arch.R0, arch.R0)
			return nil
		case "!":
			if err := g.expr(n.x); err != nil {
				return err
			}
			g.b.CmpI(arch.R0, 0)
			g.b.MovI(arch.R0, 1)
			done := g.b.Gensym("not")
			g.b.Beq(done)
			g.b.MovI(arch.R0, 0)
			g.b.Label(done)
			return nil
		case "*":
			if err := g.expr(n.x); err != nil {
				return err
			}
			g.b.Ldr(arch.R0, arch.R0, 0)
			return nil
		case "&":
			return g.addrOf(n.x)
		}
		return errf(n.line, "unhandled unary %q", n.op)
	case *binExpr:
		return g.binary(n)
	case *indexExpr:
		if err := g.addrOf(n); err != nil {
			return err
		}
		g.b.Ldr(arch.R0, arch.R0, 0)
		return nil
	case *callExpr:
		return g.call(n)
	}
	return errf(e.exprLine(), "unhandled expression")
}

// addrOf leaves an lvalue's address in r0.
func (g *gen) addrOf(e expr) error {
	switch n := e.(type) {
	case *identExpr:
		if g.globals[n.name] != nil {
			g.b.LoadAddr(arch.R0, "g_"+n.name)
			return nil
		}
		if _, isLocal := g.locals[n.name]; isLocal {
			return errf(n.line, "cannot take the address of local %q (locals live in the frame; use a global)", n.name)
		}
		return errf(n.line, "undefined name %q", n.name)
	case *indexExpr:
		base, ok := n.base.(*identExpr)
		if !ok || g.globals[base.name] == nil {
			return errf(n.line, "indexing requires a global array")
		}
		if err := g.expr(n.idx); err != nil {
			return err
		}
		g.b.LslI(arch.R0, arch.R0, 2)
		g.push(arch.R0)
		g.b.LoadAddr(arch.R0, "g_"+base.name)
		g.pop(arch.R1)
		g.b.Add(arch.R0, arch.R0, arch.R1)
		return nil
	case *unaryExpr:
		if n.op == "*" {
			return g.expr(n.x)
		}
	}
	return errf(e.exprLine(), "expression is not addressable")
}

var cmpConds = map[string]arch.Cond{
	"==": arch.EQ, "!=": arch.NE, "<": arch.LT, "<=": arch.LE,
	">": arch.GT, ">=": arch.GE,
}

func (g *gen) binary(n *binExpr) error {
	// Short-circuit forms first.
	if n.op == "&&" || n.op == "||" {
		out := g.b.Gensym("sc_out")
		short := g.b.Gensym("sc_short")
		if err := g.expr(n.l); err != nil {
			return err
		}
		g.b.CmpI(arch.R0, 0)
		if n.op == "&&" {
			g.b.Beq(short)
		} else {
			g.b.Bne(short)
		}
		if err := g.expr(n.r); err != nil {
			return err
		}
		g.b.CmpI(arch.R0, 0)
		if n.op == "&&" {
			g.b.Beq(short)
		} else {
			g.b.Bne(short)
		}
		if n.op == "&&" {
			g.b.MovI(arch.R0, 1)
		} else {
			g.b.MovI(arch.R0, 0)
		}
		g.b.B(out)
		g.b.Label(short)
		if n.op == "&&" {
			g.b.MovI(arch.R0, 0)
		} else {
			g.b.MovI(arch.R0, 1)
		}
		g.b.Label(out)
		return nil
	}

	if err := g.expr(n.l); err != nil {
		return err
	}
	g.push(arch.R0)
	if err := g.expr(n.r); err != nil {
		return err
	}
	g.b.Mov(arch.R1, arch.R0)
	g.pop(arch.R0)

	switch n.op {
	case "+":
		g.b.Add(arch.R0, arch.R0, arch.R1)
	case "-":
		g.b.Sub(arch.R0, arch.R0, arch.R1)
	case "*":
		g.b.Mul(arch.R0, arch.R0, arch.R1)
	case "/":
		g.b.Sdiv(arch.R0, arch.R0, arch.R1)
	case "%":
		g.b.Sdiv(arch.R2, arch.R0, arch.R1)
		g.b.Mul(arch.R2, arch.R2, arch.R1)
		g.b.Sub(arch.R0, arch.R0, arch.R2)
	case "&":
		g.b.And(arch.R0, arch.R0, arch.R1)
	case "|":
		g.b.Orr(arch.R0, arch.R0, arch.R1)
	case "^":
		g.b.Eor(arch.R0, arch.R0, arch.R1)
	case "<<":
		g.b.Lsl(arch.R0, arch.R0, arch.R1)
	case ">>":
		g.b.Lsr(arch.R0, arch.R0, arch.R1)
	default:
		cond, ok := cmpConds[n.op]
		if !ok {
			return errf(n.line, "unhandled operator %q", n.op)
		}
		g.b.Cmp(arch.R0, arch.R1)
		g.b.MovI(arch.R0, 1)
		done := g.b.Gensym("cmp")
		g.b.BCond(cond, done)
		g.b.MovI(arch.R0, 0)
		g.b.Label(done)
	}
	return nil
}

// call dispatches builtins and user functions.
func (g *gen) call(n *callExpr) error {
	if emit, ok := builtins[n.name]; ok {
		return emit(g, n)
	}
	f := g.funcs[n.name]
	if f == nil {
		return errf(n.line, "call to undefined function %q", n.name)
	}
	if len(n.args) != len(f.params) {
		return errf(n.line, "%s takes %d argument(s), got %d", n.name, len(f.params), len(n.args))
	}
	for _, a := range n.args {
		if err := g.expr(a); err != nil {
			return err
		}
		g.push(arch.R0)
	}
	for i := len(n.args) - 1; i >= 0; i-- {
		g.pop(arch.Reg(i))
	}
	g.b.BL("fn_" + n.name)
	return nil
}

// argRegs evaluates call arguments into r0..rN-1 via the stack.
func (g *gen) argRegs(n *callExpr, want int) error {
	if len(n.args) != want {
		return errf(n.line, "%s takes %d argument(s), got %d", n.name, want, len(n.args))
	}
	for _, a := range n.args {
		if err := g.expr(a); err != nil {
			return err
		}
		g.push(arch.R0)
	}
	for i := want - 1; i >= 0; i-- {
		g.pop(arch.Reg(i))
	}
	return nil
}

var builtins map[string]func(*gen, *callExpr) error

// init breaks the builtins/expr initialization cycle.
func init() {
	builtins = map[string]func(*gen, *callExpr) error{
		"print": func(g *gen, n *callExpr) error {
			if err := g.argRegs(n, 1); err != nil {
				return err
			}
			g.b.Svc(6)
			return nil
		},
		"exit": func(g *gen, n *callExpr) error {
			if err := g.argRegs(n, 1); err != nil {
				return err
			}
			g.b.Svc(1)
			return nil
		},
		"spawn": func(g *gen, n *callExpr) error {
			if len(n.args) != 2 {
				return errf(n.line, "spawn takes (func, arg)")
			}
			fn, ok := n.args[0].(*identExpr)
			if !ok || g.funcs[fn.name] == nil {
				return errf(n.line, "spawn's first argument must name a function")
			}
			if len(g.funcs[fn.name].params) > 1 {
				return errf(n.line, "spawned function %q may take at most one parameter", fn.name)
			}
			if err := g.expr(n.args[1]); err != nil {
				return err
			}
			g.b.Mov(arch.R1, arch.R0)
			g.b.LoadAddr(arch.R0, "fn_"+fn.name)
			g.b.Svc(3)
			return nil
		},
		"join": func(g *gen, n *callExpr) error {
			if err := g.argRegs(n, 1); err != nil {
				return err
			}
			g.b.Svc(4)
			return nil
		},
		"tid": func(g *gen, n *callExpr) error {
			if err := g.argRegs(n, 0); err != nil {
				return err
			}
			g.b.Svc(5)
			return nil
		},
		"futex_wait": func(g *gen, n *callExpr) error {
			if err := g.argRegs(n, 2); err != nil {
				return err
			}
			g.b.Svc(7)
			return nil
		},
		"futex_wake": func(g *gen, n *callExpr) error {
			if err := g.argRegs(n, 2); err != nil {
				return err
			}
			g.b.Svc(8)
			return nil
		},
		"barrier_init": func(g *gen, n *callExpr) error {
			if err := g.argRegs(n, 2); err != nil {
				return err
			}
			g.b.Svc(9)
			return nil
		},
		"barrier_wait": func(g *gen, n *callExpr) error {
			if err := g.argRegs(n, 1); err != nil {
				return err
			}
			g.b.Svc(10)
			return nil
		},
		"mmap": func(g *gen, n *callExpr) error {
			if err := g.argRegs(n, 1); err != nil {
				return err
			}
			g.b.Svc(11)
			return nil
		},
		"clock": func(g *gen, n *callExpr) error {
			if err := g.argRegs(n, 0); err != nil {
				return err
			}
			g.b.Svc(12)
			return nil
		},
		"yield": func(g *gen, n *callExpr) error {
			if err := g.argRegs(n, 0); err != nil {
				return err
			}
			g.b.Yield()
			return nil
		},
		"fence": func(g *gen, n *callExpr) error {
			if err := g.argRegs(n, 0); err != nil {
				return err
			}
			g.b.Dmb()
			return nil
		},
		"clrex": func(g *gen, n *callExpr) error {
			if err := g.argRegs(n, 0); err != nil {
				return err
			}
			g.b.Clrex()
			return nil
		},
		"ll": func(g *gen, n *callExpr) error {
			if err := g.argRegs(n, 1); err != nil {
				return err
			}
			g.b.Mov(arch.R1, arch.R0)
			g.b.Ldrex(arch.R0, arch.R1)
			return nil
		},
		"sc": func(g *gen, n *callExpr) error {
			// sc(addr, val) -> 0 on success, 1 on failure.
			if err := g.argRegs(n, 2); err != nil {
				return err
			}
			g.b.Mov(arch.R2, arch.R1)
			g.b.Mov(arch.R1, arch.R0)
			g.b.Strex(arch.R0, arch.R2, arch.R1)
			return nil
		},
		"atomic_add": func(g *gen, n *callExpr) error {
			// atomic_add(addr, delta) -> new value. The emitted retry loop is
			// exactly the fuser's RMW pattern.
			if err := g.argRegs(n, 2); err != nil {
				return err
			}
			g.b.Mov(arch.R2, arch.R1)
			g.b.Mov(arch.R1, arch.R0)
			retry := g.b.Gensym("aadd")
			g.b.Label(retry)
			g.b.Ldrex(arch.R0, arch.R1)
			g.b.Add(arch.R0, arch.R0, arch.R2)
			g.b.Strex(arch.R3, arch.R0, arch.R1)
			g.b.CmpI(arch.R3, 0)
			g.b.Bne(retry)
			return nil
		},
		"atomic_xchg": func(g *gen, n *callExpr) error {
			// atomic_xchg(addr, val) -> old value.
			if err := g.argRegs(n, 2); err != nil {
				return err
			}
			g.b.Mov(arch.R2, arch.R1)
			g.b.Mov(arch.R1, arch.R0)
			retry := g.b.Gensym("axchg")
			g.b.Label(retry)
			g.b.Ldrex(arch.R0, arch.R1)
			g.b.Strex(arch.R3, arch.R2, arch.R1)
			g.b.CmpI(arch.R3, 0)
			g.b.Bne(retry)
			return nil
		},
		"atomic_cas": func(g *gen, n *callExpr) error {
			// atomic_cas(addr, old, new) -> 0 on success, 1 on mismatch.
			if err := g.argRegs(n, 3); err != nil {
				return err
			}
			g.b.Mov(arch.R12, arch.R2) // new
			g.b.Mov(arch.R2, arch.R1)  // expected
			g.b.Mov(arch.R1, arch.R0)  // addr
			retry := g.b.Gensym("acas")
			fail := g.b.Gensym("acasf")
			done := g.b.Gensym("acasd")
			g.b.Label(retry)
			g.b.Ldrex(arch.R0, arch.R1)
			g.b.Cmp(arch.R0, arch.R2)
			g.b.Bne(fail)
			g.b.Strex(arch.R3, arch.R12, arch.R1)
			g.b.CmpI(arch.R3, 0)
			g.b.Bne(retry)
			g.b.MovI(arch.R0, 0)
			g.b.B(done)
			g.b.Label(fail)
			g.b.Clrex()
			g.b.MovI(arch.R0, 1)
			g.b.Label(done)
			return nil
		},
	}
}
