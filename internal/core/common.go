package core

import (
	"sync/atomic"

	"atomemu/internal/hashtab"
)

// HashTable is the HST store-test table type (re-exported so engine and
// harness configuration only import core).
type HashTable = hashtab.Table

// NewHashTable creates a store-test table with 2^bits entries.
func NewHashTable(bits uint) (*HashTable, error) { return hashtab.New(bits) }

type brokenFlag = atomic.Bool

// noInstrumentation provides the default hooks for schemes that do not
// instrument regular loads/stores: the engine never calls these (it uses
// its uninstrumented fast path), but the methods exist so such schemes
// satisfy Scheme, and they behave sensibly if invoked directly.
type noInstrumentation struct{}

func (noInstrumentation) InstrumentsStores() bool { return false }
func (noInstrumentation) InstrumentsLoads() bool  { return false }

func (noInstrumentation) Store(ctx Context, addr, val uint32) error {
	if f := ctx.Mem().StoreWord(addr, val); f != nil {
		return f
	}
	return nil
}

func (noInstrumentation) StoreB(ctx Context, addr uint32, val uint8) error {
	if f := ctx.Mem().StoreByte(addr, val); f != nil {
		return f
	}
	return nil
}

func (noInstrumentation) Load(ctx Context, addr uint32) (uint32, error) {
	v, f := ctx.Mem().LoadWord(addr)
	if f != nil {
		return 0, f
	}
	return v, nil
}

func (noInstrumentation) LoadB(ctx Context, addr uint32) (uint8, error) {
	v, f := ctx.Mem().LoadByte(addr)
	if f != nil {
		return 0, f
	}
	return v, nil
}

// plainLoads provides uninstrumented load hooks for schemes that only
// instrument stores.
type plainLoads struct{}

func (plainLoads) InstrumentsLoads() bool { return false }

func (plainLoads) Load(ctx Context, addr uint32) (uint32, error) {
	v, f := ctx.Mem().LoadWord(addr)
	if f != nil {
		return 0, f
	}
	return v, nil
}

func (plainLoads) LoadB(ctx Context, addr uint32) (uint8, error) {
	v, f := ctx.Mem().LoadByte(addr)
	if f != nil {
		return 0, f
	}
	return v, nil
}
