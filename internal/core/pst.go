package core

import (
	"sync"

	"atomemu/internal/mmu"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// pst is the Page Protection-Based Store Test (§III-D, Fig. 8). Instead of
// instrumenting every store, the LL write-protects the page holding the
// atomic variable; a store from any thread to that page takes a page fault,
// whose handler checks the faulting address against the page's armed
// monitors, breaks the conflicting ones, and performs the store. The SC runs
// in an exclusive section, flips the protection to commit, and restores it.
//
// Store instrumentation is therefore free on the fast path (an unprotected
// page stores normally) but each LL/SC pays protection-syscall and
// suspension costs, and stores to a protected page that miss the monitored
// word pay a fault anyway — the paper's "false sharing", which grows with
// thread count.
//
// Mechanically this implementation serializes page state with a per-page
// mutex instead of the engine's stop-the-world (a fault handler running
// inside a vCPU's execution region must never wait on a stopped world), and
// commits through permission-bypassing writes; the paper's suspension and
// mprotect costs are charged through Context.ChargeExclusive and the cost
// model so the timing behaviour matches the measured system.
type pst struct {
	cost *CostModel

	mu    sync.Mutex // guards pages map
	pages map[uint32]*pstPage
}

type pstPage struct {
	pmu       sync.Mutex // serializes monitors, protection state and SC/fault handling
	refcnt    int
	protected bool
	origPerm  mmu.Perm
	monitors  map[uint32]*pstMonitor // tid -> armed monitor
	remapping bool                   // PST-REMAP: SC remap window open
	mpk       *mpkState              // PST-MPK: key bookkeeping
}

type pstMonitor struct {
	addr uint32
	mon  *Monitor
}

// NewPST constructs the PST scheme.
func NewPST(cost *CostModel) Scheme {
	return &pst{cost: cost, pages: make(map[uint32]*pstPage)}
}

func (s *pst) Name() string            { return "pst" }
func (s *pst) Atomicity() Atomicity    { return AtomicityStrong }
func (s *pst) Portable() bool          { return true }
func (s *pst) InstrumentsStores() bool { return true }
func (s *pst) InstrumentsLoads() bool  { return false }

func (s *pst) page(base uint32) *pstPage {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.pages[base]
	if p == nil {
		p = &pstPage{monitors: make(map[uint32]*pstMonitor)}
		s.pages[base] = p
	}
	return p
}

func (s *pst) lookup(base uint32) *pstPage {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pages[base]
}

// releaseLocked removes tid's monitor from p and restores protection when
// the last monitor leaves. Caller holds p.pmu.
func (s *pst) releaseLocked(ctx Context, base uint32, p *pstPage, tid uint32) {
	if _, armed := p.monitors[tid]; !armed {
		return
	}
	delete(p.monitors, tid)
	p.refcnt--
	if p.refcnt == 0 && p.protected {
		if err := ctx.Mem().Protect(base, mmu.PageSize, p.origPerm); err == nil {
			p.protected = false
		}
		ctx.Charge(stats.CompMProtect, s.cost.MProtect)
	}
}

// breakOthersLocked breaks every monitor on addr's word held by a thread
// other than tid. Caller holds p.pmu.
func (s *pst) breakOthersLocked(p *pstPage, addr, tid uint32) {
	for monTID, pm := range p.monitors {
		if monTID != tid && pm.addr&^3 == addr&^3 {
			pm.mon.Break()
		}
	}
}

// release drops the vCPU's current monitor, if any.
func (s *pst) release(ctx Context) {
	m := ctx.Monitor()
	if !m.Active {
		return
	}
	base := mmu.PageBase(m.Addr)
	if p := s.lookup(base); p != nil {
		p.pmu.Lock()
		s.releaseLocked(ctx, base, p, ctx.TID())
		p.pmu.Unlock()
	}
	m.Reset()
}

func (s *pst) LL(ctx Context, addr uint32) (uint32, error) {
	s.release(ctx)
	base := mmu.PageBase(addr)
	p := s.page(base)

	p.pmu.Lock()
	m := ctx.Monitor()
	m.ClearBroken()
	m.Active = true
	m.Addr = addr
	p.monitors[ctx.TID()] = &pstMonitor{addr: addr, mon: m}
	p.refcnt++
	if !p.protected {
		p.origPerm = ctx.Mem().PermAt(base)
		if p.origPerm == 0 {
			// Unmapped page: undo and fault like the guest load would.
			s.releaseLocked(ctx, base, p, ctx.TID())
			p.pmu.Unlock()
			m.Reset()
			return 0, &mmu.Fault{Addr: addr, Kind: mmu.FaultUnmapped, Access: mmu.AccessLoad}
		}
		if err := ctx.Mem().Protect(base, mmu.PageSize, p.origPerm&^mmu.PermWrite); err != nil {
			s.releaseLocked(ctx, base, p, ctx.TID())
			p.pmu.Unlock()
			m.Reset()
			return 0, err
		}
		p.protected = true
	}
	// The paper's LL: one mprotect syscall plus suspending the other vCPUs.
	ctx.Charge(stats.CompMProtect, s.cost.MProtect)
	ctx.ChargeExclusive()
	v, f := ctx.Mem().ReadWordPriv(addr)
	p.pmu.Unlock()
	if f != nil {
		s.release(ctx)
		return 0, f
	}
	m.Val = v
	return v, nil
}

func (s *pst) SC(ctx Context, addr, val uint32) (uint32, error) {
	m := ctx.Monitor()
	if !m.Active {
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCNoMonitor)
		return 1, nil
	}
	base := mmu.PageBase(m.Addr)
	p := s.lookup(base)
	if p == nil {
		m.Reset()
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCPageGone)
		return 1, nil
	}
	p.pmu.Lock()
	defer p.pmu.Unlock()
	defer m.Reset()
	// The paper's SC: exclusive section + two protection flips.
	ctx.ChargeExclusive()
	ctx.Charge(stats.CompMProtect, 2*s.cost.MProtect)
	ok := m.Addr == addr && !m.Broken()
	var fault *mmu.Fault
	if ok {
		// The SC's own update is a store to the variable: it breaks every
		// other thread's monitor on the same word.
		s.breakOthersLocked(p, addr, ctx.TID())
		fault = ctx.Mem().WriteWordPriv(addr, val)
	}
	s.releaseLocked(ctx, base, p, ctx.TID())
	if fault != nil {
		return 1, fault
	}
	if ok {
		return 0, nil
	}
	ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCMonitorBroken)
	return 1, nil
}

func (s *pst) Clrex(ctx Context) { s.release(ctx) }

// handleStoreFault is the SIGSEGV-handler analogue: break conflicting
// monitors on the page and perform the store with privileges. wordBase is
// the 4-aligned address the monitors are compared against.
func (s *pst) handleStoreFault(ctx Context, base, wordBase uint32, commit func() *mmu.Fault) error {
	st := ctx.Stats()
	st.PageFaults++
	ctx.Charge(stats.CompMProtect, s.cost.PageFault)
	p := s.lookup(base)
	if p == nil {
		// Genuinely protected page, not one of ours.
		return &mmu.Fault{Addr: wordBase, Kind: mmu.FaultProtected, Access: mmu.AccessStore}
	}
	p.pmu.Lock()
	defer p.pmu.Unlock()
	tid := ctx.TID()
	matched := false
	for monTID, pm := range p.monitors {
		if pm.addr&^3 == wordBase {
			matched = true
			if monTID != tid {
				pm.mon.Break()
			}
		}
	}
	if !matched {
		st.FalseSharing++
	}
	if f := commit(); f != nil {
		return f
	}
	return nil
}

func (s *pst) Store(ctx Context, addr, val uint32) error {
	f := ctx.Mem().StoreWord(addr, val)
	if f == nil {
		return nil
	}
	if f.Kind != mmu.FaultProtected {
		return f
	}
	return s.handleStoreFault(ctx, mmu.PageBase(addr), addr, func() *mmu.Fault {
		return ctx.Mem().WriteWordPriv(addr, val)
	})
}

func (s *pst) StoreB(ctx Context, addr uint32, val uint8) error {
	f := ctx.Mem().StoreByte(addr, val)
	if f == nil {
		return nil
	}
	if f.Kind != mmu.FaultProtected {
		return f
	}
	return s.handleStoreFault(ctx, mmu.PageBase(addr), addr&^3, func() *mmu.Fault {
		// Privileged read-modify-write of the containing word.
		w, rf := ctx.Mem().ReadWordPriv(addr &^ 3)
		if rf != nil {
			return rf
		}
		shift := 8 * (addr & 3)
		return ctx.Mem().WriteWordPriv(addr&^3, w&^(0xff<<shift)|uint32(val)<<shift)
	})
}

func (s *pst) Load(ctx Context, addr uint32) (uint32, error) {
	v, f := ctx.Mem().LoadWord(addr)
	if f != nil {
		return 0, f
	}
	return v, nil
}

func (s *pst) LoadB(ctx Context, addr uint32) (uint8, error) {
	v, f := ctx.Mem().LoadByte(addr)
	if f != nil {
		return 0, f
	}
	return v, nil
}

// pstProtPage records one page the scheme held write-protected at
// checkpoint time, with the permissions to restore once its monitors are
// disarmed.
type pstProtPage struct {
	base uint32
	perm mmu.Perm
}

// Snapshot captures the pages currently write-protected on behalf of armed
// monitors. The monitors themselves are not captured: a restore disarms
// them all, so only the protection state needs undoing.
func (s *pst) Snapshot() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []pstProtPage
	for base, p := range s.pages {
		p.pmu.Lock()
		if p.protected {
			out = append(out, pstProtPage{base: base, perm: p.origPerm})
		}
		p.pmu.Unlock()
	}
	return out
}

// Restore empties the page registry and lifts the write protection the
// memory rollback just re-installed: with every monitor disarmed, nobody
// would ever unprotect those pages again.
func (s *pst) Restore(mem *mmu.Memory, snap any) {
	s.mu.Lock()
	s.pages = make(map[uint32]*pstPage)
	s.mu.Unlock()
	prot, _ := snap.([]pstProtPage)
	for _, pp := range prot {
		// The page was mapped at capture time and the memory rollback has
		// re-mapped it, so this cannot fail.
		_ = mem.Protect(pp.base, mmu.PageSize, pp.perm)
	}
}

// NoteStore implements StoreNotifier: a fused RMW on a monitored page breaks
// the other threads' monitors on that word (the page-fault handler's job for
// regular stores).
func (s *pst) NoteStore(ctx Context, addr uint32) {
	p := s.lookup(mmu.PageBase(addr))
	if p == nil {
		return
	}
	p.pmu.Lock()
	s.breakOthersLocked(p, addr, ctx.TID())
	p.pmu.Unlock()
}
