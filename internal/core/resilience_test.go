package core

import (
	"errors"
	"testing"

	"atomemu/internal/faultinject"
	"atomemu/internal/hashtab"
	"atomemu/internal/htm"
)

// resFixture builds a pico-htm scheme around a small TM (16 slots, so
// slot-aliasing addresses are easy to find) with an explicit policy.
type resFixture struct {
	*fixture
	tm *htm.TM
}

func newResFixture(t *testing.T, bits uint) *resFixture {
	t.Helper()
	f := newFixture(t)
	tm, err := htm.New(bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.tm = tm
	for _, c := range f.ctxs {
		c.tm = tm
	}
	return &resFixture{fixture: f, tm: tm}
}

func (f *resFixture) picoHTM(t *testing.T, res *Resilience) *picoHTM {
	t.Helper()
	cm := DefaultCostModel()
	return NewPicoHTM(&cm, f.tm, res).(*picoHTM)
}

func (f *resFixture) hstHTM(t *testing.T, res *Resilience) *hstHTM {
	t.Helper()
	tab, err := NewHashTable(12)
	if err != nil {
		t.Fatal(err)
	}
	cm := DefaultCostModel()
	return NewHSTHTM(&cm, tab, f.tm, res).(*hstHTM)
}

// TestPicoHTMResetAbortsLeakedTxn is the regression test for the
// address-mismatch leak: an SC to a different address than the LL used to
// leave the LL's transaction open forever, permanently pinning tm.Active()
// and with it NotifyStore's slow path.
func TestPicoHTMResetAbortsLeakedTxn(t *testing.T) {
	f := newResFixture(t, 12)
	s := f.picoHTM(t, &Resilience{StrictPaper: true})
	a := f.ctx(1)
	b := f.ctx(2)
	if fl := f.mem.StoreWord(varAddr, 100); fl != nil {
		t.Fatal(fl)
	}
	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	// Intervening stores while the window is open.
	if err := s.Store(b, varAddr+8, 1); err != nil {
		t.Fatal(err)
	}
	r, err := s.SC(a, varAddr+4, 7) // mismatched address
	if err != nil || r != 1 {
		t.Fatalf("mismatched-address SC: r=%d err=%v", r, err)
	}
	if f.tm.Active() {
		t.Fatal("mismatched-address SC leaked a live transaction (tm still active)")
	}
	// The TM must be fully usable afterwards.
	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	if r, err := s.SC(a, varAddr, 101); err != nil || r != 0 {
		t.Fatalf("follow-up SC: r=%d err=%v", r, err)
	}
	if v, _ := f.mem.LoadWord(varAddr); v != 101 {
		t.Fatalf("mem = %d, want 101", v)
	}
	if f.tm.Active() {
		t.Fatal("tm active after clean window")
	}
}

// TestPicoHTMDegradesUnderAbortStorm drives every transactional attempt of
// tid 1 into an abort and checks the resilient policy retries with backoff,
// then demotes and completes the LL/SC window on the degraded path.
func TestPicoHTMDegradesUnderAbortStorm(t *testing.T) {
	f := newResFixture(t, 12)
	f.tm.SetInjector(faultinject.New(faultinject.Rule{
		Op: faultinject.OpTxnBegin, Action: faultinject.ActAbort, TID: 1,
	}))
	res := &Resilience{MaxRetries: 3, Cooldown: 4}
	s := f.picoHTM(t, res)
	a := f.ctx(1)
	if fl := f.mem.StoreWord(varAddr, 100); fl != nil {
		t.Fatal(fl)
	}
	v, err := s.LL(a, varAddr)
	if err != nil {
		t.Fatalf("LL should degrade, not fail: %v", err)
	}
	if v != 100 {
		t.Fatalf("LL = %d, want 100", v)
	}
	if !a.mon.Degraded {
		t.Fatal("monitor should be degraded after exhausting retries")
	}
	if a.st.HTMRetries != 3 || a.st.HTMBackoffWaits != 3 {
		t.Fatalf("retries=%d backoffs=%d, want 3/3", a.st.HTMRetries, a.st.HTMBackoffWaits)
	}
	if a.st.SchemeFallbacks != 1 {
		t.Fatalf("fallbacks=%d, want 1", a.st.SchemeFallbacks)
	}
	if r, err := s.SC(a, varAddr, 101); err != nil || r != 0 {
		t.Fatalf("degraded SC: r=%d err=%v", r, err)
	}
	if v, _ := f.mem.LoadWord(varAddr); v != 101 {
		t.Fatalf("mem = %d, want 101", v)
	}
	// The remaining cooldown windows skip the doomed transactional path
	// outright: no further retries are burned.
	before := a.st.HTMRetries
	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	if r, err := s.SC(a, varAddr, 102); err != nil || r != 0 {
		t.Fatalf("cooldown SC: r=%d err=%v", r, err)
	}
	if a.st.HTMRetries != before {
		t.Fatal("cooldown windows must not retry transactions")
	}
	// Other tids keep the transactional fast path.
	b := f.ctx(2)
	if _, err := s.LL(b, varAddr); err != nil {
		t.Fatal(err)
	}
	if r, err := s.SC(b, varAddr, 103); err != nil || r != 0 {
		t.Fatalf("tid-2 SC: r=%d err=%v", r, err)
	}
	if b.st.SchemeFallbacks != 0 || b.st.HTMCommits != 1 {
		t.Fatalf("tid 2 should commit transactionally: fallbacks=%d commits=%d",
			b.st.SchemeFallbacks, b.st.HTMCommits)
	}
}

// TestPicoHTMDegradedWindowCatchesABA checks the degraded window's
// slot-word snapshot: a foreign store that restores the original value
// (classic ABA) still fails the SC, because the store bumped the version.
func TestPicoHTMDegradedWindowCatchesABA(t *testing.T) {
	f := newResFixture(t, 12)
	f.tm.SetInjector(faultinject.New(faultinject.Rule{
		Op: faultinject.OpTxnBegin, Action: faultinject.ActAbort, TID: 1,
	}))
	s := f.picoHTM(t, &Resilience{MaxRetries: 1, Cooldown: 100})
	a, b := f.ctx(1), f.ctx(2)
	if fl := f.mem.StoreWord(varAddr, 100); fl != nil {
		t.Fatal(fl)
	}
	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	if !a.mon.Degraded {
		t.Fatal("window should be degraded")
	}
	// ABA: tid 2 swaps the value away and back between LL and SC.
	if err := s.Store(b, varAddr, 55); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(b, varAddr, 100); err != nil {
		t.Fatal(err)
	}
	if r, err := s.SC(a, varAddr, 101); err != nil || r != 1 {
		t.Fatalf("ABA'd degraded SC must fail: r=%d err=%v", r, err)
	}
	// The guest's retry (fresh LL) then succeeds.
	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	if r, err := s.SC(a, varAddr, 101); err != nil || r != 0 {
		t.Fatalf("retry SC: r=%d err=%v", r, err)
	}
	if v, _ := f.mem.LoadWord(varAddr); v != 101 {
		t.Fatalf("mem = %d, want 101", v)
	}
}

// TestPicoHTMDegradedWindowAdoptsOwnAliasingStore: a store by the degraded
// window's own vCPU to an address aliasing the monitored slot must not fail
// the SC — the guest would retry the identical window forever.
func TestPicoHTMDegradedWindowAdoptsOwnAliasingStore(t *testing.T) {
	f := newResFixture(t, 4) // 16 slots: aliases are nearby
	f.tm.SetInjector(faultinject.New(faultinject.Rule{
		Op: faultinject.OpTxnBegin, Action: faultinject.ActAbort, TID: 1,
	}))
	s := f.picoHTM(t, &Resilience{MaxRetries: 1, Cooldown: 100})
	a := f.ctx(1)
	alias := uint32(0)
	for cand := varAddr + 4; cand < varAddr+4096; cand += 4 {
		if f.tm.SameSlot(varAddr, uint32(cand)) {
			alias = uint32(cand)
			break
		}
	}
	if alias == 0 {
		t.Fatal("no slot alias found in range")
	}
	if fl := f.mem.StoreWord(varAddr, 100); fl != nil {
		t.Fatal(fl)
	}
	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	if !a.mon.Degraded {
		t.Fatal("window should be degraded")
	}
	// Scratch store inside the window to a slot-aliasing address.
	if err := s.Store(a, alias, 7); err != nil {
		t.Fatal(err)
	}
	if r, err := s.SC(a, varAddr, 101); err != nil || r != 0 {
		t.Fatalf("own aliasing store must not fail the degraded SC: r=%d err=%v", r, err)
	}
	if v, _ := f.mem.LoadWord(varAddr); v != 101 {
		t.Fatalf("mem = %d, want 101", v)
	}
	if v, _ := f.mem.LoadWord(alias); v != 7 {
		t.Fatalf("alias mem = %d, want 7", v)
	}
}

// TestHSTHTMDemotesToStopTheWorld drives the HST-HTM SC transaction into a
// commit-abort storm and checks it demotes to the stop-the-world fallback
// (completing the SC) and that cooldown windows skip the storm entirely.
func TestHSTHTMDemotesToStopTheWorld(t *testing.T) {
	f := newResFixture(t, 12)
	f.tm.SetInjector(faultinject.New(faultinject.Rule{
		Op: faultinject.OpTxnCommit, Action: faultinject.ActAbort, TID: 1,
	}))
	s := f.hstHTM(t, &Resilience{MaxRetries: 2, Cooldown: 8})
	a := f.ctx(1)
	if fl := f.mem.StoreWord(varAddr, 100); fl != nil {
		t.Fatal(fl)
	}
	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	if r, err := s.SC(a, varAddr, 101); err != nil || r != 0 {
		t.Fatalf("SC should complete via fallback: r=%d err=%v", r, err)
	}
	if v, _ := f.mem.LoadWord(varAddr); v != 101 {
		t.Fatalf("mem = %d, want 101", v)
	}
	if a.st.SchemeFallbacks != 1 || a.st.HTMRetries != 2 {
		t.Fatalf("fallbacks=%d retries=%d, want 1/2", a.st.SchemeFallbacks, a.st.HTMRetries)
	}
	// During cooldown the SC takes the fallback directly: no new aborts.
	aborts := a.st.HTMAborts
	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	if r, err := s.SC(a, varAddr, 102); err != nil || r != 0 {
		t.Fatalf("cooldown SC: r=%d err=%v", r, err)
	}
	if a.st.HTMAborts != aborts {
		t.Fatal("cooldown SC must not re-run the abort storm")
	}
	if a.st.ExclSections == 0 && v(t, f, varAddr) != 102 {
		t.Fatal("fallback should have used the exclusive section")
	}
}

func v(t *testing.T, f *resFixture, addr uint32) uint32 {
	t.Helper()
	x, fl := f.mem.LoadWord(addr)
	if fl != nil {
		t.Fatal(fl)
	}
	return x
}

// TestHSTHTMStrictKeepsFixedFallback: StrictPaper mode preserves the
// paper's fixed attempt count before the stop-the-world fallback.
func TestHSTHTMStrictKeepsFixedFallback(t *testing.T) {
	f := newResFixture(t, 12)
	f.tm.SetInjector(faultinject.New(faultinject.Rule{
		Op: faultinject.OpTxnCommit, Action: faultinject.ActAbort, TID: 1,
	}))
	s := f.hstHTM(t, &Resilience{StrictPaper: true})
	a := f.ctx(1)
	if fl := f.mem.StoreWord(varAddr, 100); fl != nil {
		t.Fatal(fl)
	}
	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	if r, err := s.SC(a, varAddr, 101); err != nil || r != 0 {
		t.Fatalf("strict SC should fall back after fixed attempts: r=%d err=%v", r, err)
	}
	if a.st.HTMAborts != uint64(s.fallbackAfter) {
		t.Fatalf("aborts=%d, want the fixed bound %d", a.st.HTMAborts, s.fallbackAfter)
	}
	if a.st.HTMRetries != 0 || a.st.SchemeFallbacks != 0 {
		t.Fatalf("strict mode must not use resilience counters: retries=%d fallbacks=%d",
			a.st.HTMRetries, a.st.SchemeFallbacks)
	}
}

// TestHSTWeakSetWaitWatchdog: a stuck hash-entry lock holder makes the
// bounded SetWait spin give up with a structured watchdog diagnostic
// instead of hanging the vCPU.
func TestHSTWeakSetWaitWatchdog(t *testing.T) {
	f := newFixture(t)
	tab, err := NewHashTable(12)
	if err != nil {
		t.Fatal(err)
	}
	tab.SpinBudget = 64
	s, err := New("hst-weak", Deps{Htab: tab})
	if err != nil {
		t.Fatal(err)
	}
	// tid 9 claims and locks the entry, then never releases.
	tab.Set(varAddr, 9)
	if !tab.Lock(varAddr, 9) {
		t.Fatal("lock setup failed")
	}
	a := f.ctx(1)
	_, err = s.LL(a, varAddr)
	var werr *WatchdogError
	if !errors.As(err, &werr) {
		t.Fatalf("LL against a stuck lock should trip the watchdog, got %v", err)
	}
	if werr.Scheme != "hst-weak" || werr.TID != 1 || werr.Addr != varAddr {
		t.Fatalf("diagnostic = %+v", werr)
	}
	if !werr.HasOwner || werr.HashOwner&^hashtab.LockBit != 9 {
		t.Fatalf("diagnostic owner = %#x, want tid 9", werr.HashOwner)
	}
	if a.st.WatchdogTrips != 1 {
		t.Fatalf("WatchdogTrips = %d, want 1", a.st.WatchdogTrips)
	}
}
