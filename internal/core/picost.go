package core

import (
	"sync"

	"atomemu/internal/mmu"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// picoST is the software store-test scheme from PICO: every LL/SC pair
// registers a (thread, address) monitor with a software exclusive flag, and
// *every* regular store runs a helper that looks its address up against all
// active monitors and clears conflicting flags before performing the store.
// All of it happens under one global lock, which — together with the
// helper-call cost on the store fast path — is exactly the overhead the
// paper measures against (stores outnumber LL/SC by 88x–3000x, Table I).
type picoST struct {
	plainLoads
	cost *CostModel

	mu sync.Mutex
	// byAddr maps a monitored address to the monitors armed on it.
	byAddr map[uint32][]*stMonitor
	// byTID maps a thread to its (single) active monitor.
	byTID map[uint32]*stMonitor
}

type stMonitor struct {
	tid   uint32
	addr  uint32
	valid bool
}

// NewPicoST constructs the PICO-ST scheme.
func NewPicoST(cost *CostModel) Scheme {
	return &picoST{
		cost:   cost,
		byAddr: make(map[uint32][]*stMonitor),
		byTID:  make(map[uint32]*stMonitor),
	}
}

func (s *picoST) Name() string            { return "pico-st" }
func (s *picoST) Atomicity() Atomicity    { return AtomicityStrong }
func (s *picoST) Portable() bool          { return true }
func (s *picoST) InstrumentsStores() bool { return true }

// dropLocked removes a thread's monitor from the registry. Caller holds mu.
func (s *picoST) dropLocked(tid uint32) {
	m := s.byTID[tid]
	if m == nil {
		return
	}
	delete(s.byTID, tid)
	mons := s.byAddr[m.addr]
	for i, other := range mons {
		if other == m {
			mons[i] = mons[len(mons)-1]
			mons = mons[:len(mons)-1]
			break
		}
	}
	if len(mons) == 0 {
		delete(s.byAddr, m.addr)
	} else {
		s.byAddr[m.addr] = mons
	}
}

// breakConflictsLocked clears every monitor on addr held by a thread other
// than storer. Caller holds mu.
func (s *picoST) breakConflictsLocked(addr, storer uint32) {
	for _, m := range s.byAddr[addr] {
		if m.tid != storer {
			m.valid = false
		}
	}
}

// chargeLockContention models the convoy on PICO-ST's global monitor lock:
// LL/SC sections serialize on it against every other running thread.
func (s *picoST) chargeLockContention(ctx Context) {
	if n := ctx.RunningCPUs(); n > 1 {
		ctx.Charge(stats.CompExclusive, s.cost.LockContention*uint64(n-1))
	}
}

func (s *picoST) LL(ctx Context, addr uint32) (uint32, error) {
	ctx.Charge(stats.CompInstrument, s.cost.HelperCall)
	s.chargeLockContention(ctx)
	tid := ctx.TID()
	s.mu.Lock()
	s.dropLocked(tid)
	m := &stMonitor{tid: tid, addr: addr, valid: true}
	s.byTID[tid] = m
	s.byAddr[addr] = append(s.byAddr[addr], m)
	v, f := ctx.Mem().LoadWord(addr)
	s.mu.Unlock()
	if f != nil {
		return 0, f
	}
	mon := ctx.Monitor()
	mon.Active = true
	mon.Addr = addr
	mon.Val = v
	return v, nil
}

func (s *picoST) SC(ctx Context, addr, val uint32) (uint32, error) {
	ctx.Charge(stats.CompInstrument, s.cost.HelperCall)
	ctx.Charge(stats.CompExclusive, s.cost.HostAtomic)
	s.chargeLockContention(ctx)
	tid := ctx.TID()
	mon := ctx.Monitor()
	defer mon.Reset()

	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.byTID[tid]
	if m == nil || !m.valid || m.addr != addr || !mon.Active || mon.Addr != addr {
		s.dropLocked(tid)
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCMonitorBroken)
		return 1, nil
	}
	// The SC's own update is a store: it must break other threads' monitors
	// on the same address (they come later in LL/SC order).
	s.breakConflictsLocked(addr, tid)
	s.dropLocked(tid)
	if f := ctx.Mem().StoreWord(addr, val); f != nil {
		return 1, f
	}
	return 0, nil
}

func (s *picoST) Clrex(ctx Context) {
	s.mu.Lock()
	s.dropLocked(ctx.TID())
	s.mu.Unlock()
	ctx.Monitor().Reset()
}

func (s *picoST) Store(ctx Context, addr, val uint32) error {
	ctx.Charge(stats.CompInstrument, s.cost.HelperCall)
	ctx.Charge(stats.CompExclusive, s.cost.HostAtomic)
	s.mu.Lock()
	s.breakConflictsLocked(addr, ctx.TID())
	f := ctx.Mem().StoreWord(addr, val)
	s.mu.Unlock()
	if f != nil {
		return f
	}
	return nil
}

func (s *picoST) StoreB(ctx Context, addr uint32, val uint8) error {
	ctx.Charge(stats.CompInstrument, s.cost.HelperCall)
	ctx.Charge(stats.CompExclusive, s.cost.HostAtomic)
	s.mu.Lock()
	// A byte store conflicts with a monitor on its containing word.
	s.breakConflictsLocked(addr&^3, ctx.TID())
	f := ctx.Mem().StoreByte(addr, val)
	s.mu.Unlock()
	if f != nil {
		return f
	}
	return nil
}

// Snapshot: the registry only holds armed monitors, which are disarmed
// wholesale on restore, so there is nothing to capture.
func (s *picoST) Snapshot() any { return nil }

// Restore empties the monitor registry to match the engine-side disarm of
// every per-vCPU monitor.
func (s *picoST) Restore(mem *mmu.Memory, snap any) {
	s.mu.Lock()
	s.byAddr = make(map[uint32][]*stMonitor)
	s.byTID = make(map[uint32]*stMonitor)
	s.mu.Unlock()
}

// NoteStore implements StoreNotifier: fused RMWs still clear conflicting
// monitors under the global lock.
func (s *picoST) NoteStore(ctx Context, addr uint32) {
	s.mu.Lock()
	s.breakConflictsLocked(addr, ctx.TID())
	s.mu.Unlock()
}
