package core

import (
	"runtime"

	"atomemu/internal/htm"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// Resilience is the abort-handling policy shared by the HTM schemes. The
// paper's reproduction crashes the machine when PICO-HTM livelocks beyond
// 8 threads (§III-B, Fig. 11); real deployments pair the transactional
// fast path with a guaranteed-progress fallback instead. This policy
// classifies each abort by reason and decides between a bounded
// backoff-retry and demoting the monitor to the portable fallback path
// for a cooldown window:
//
//	conflict, non-txn-store  transient contention: backoff, retry
//	capacity                 deterministic: the window cannot fit, demote
//	emulation, syscall       deterministic: the window always contains
//	                         emulation work, demote
//
// All delays are virtual cycles plus a runtime.Gosched(); nothing reads
// the wall clock, so runs stay reproducible.
type Resilience struct {
	// StrictPaper restores the paper's behavior: no retries, no
	// degradation — PICO-HTM returns EmulationError after its livelock
	// limit and HST-HTM falls back per-SC after a fixed attempt count.
	StrictPaper bool
	// MaxRetries bounds consecutive retryable aborts per LL/SC window
	// before the monitor demotes.
	MaxRetries int
	// BackoffBase is the virtual-cycle delay unit; attempt k waits about
	// BackoffBase<<k (capped at BackoffMax) plus jitter.
	BackoffBase uint64
	// BackoffMax caps the exponential delay.
	BackoffMax uint64
	// Cooldown is how many LL windows run on the fallback path after a
	// demotion before the transactional fast path is retried.
	Cooldown int
	// Seed derives the per-vCPU jitter streams. Any value works; runs
	// with equal seeds make identical backoff decisions.
	Seed uint64
}

// DefaultResilience returns the default policy.
func DefaultResilience() Resilience {
	return Resilience{
		MaxRetries:  16,
		BackoffBase: 64,
		BackoffMax:  4096,
		Cooldown:    64,
		Seed:        0x9e3779b97f4a7c15,
	}
}

// normalized fills zero fields with defaults so a partially-specified
// policy (e.g. only StrictPaper set) behaves sanely.
func (r Resilience) normalized() Resilience {
	d := DefaultResilience()
	if r.MaxRetries <= 0 {
		r.MaxRetries = d.MaxRetries
	}
	if r.BackoffBase == 0 {
		r.BackoffBase = d.BackoffBase
	}
	if r.BackoffMax == 0 {
		r.BackoffMax = d.BackoffMax
	}
	if r.Cooldown <= 0 {
		r.Cooldown = d.Cooldown
	}
	if r.Seed == 0 {
		r.Seed = d.Seed
	}
	return r
}

// retryable reports whether an abort reason can succeed on retry.
// Conflicts and poisoned slots are transient contention; capacity,
// emulation work and syscalls inside the window are properties of the
// window itself, so retrying burns cycles for nothing.
func retryable(reason htm.AbortReason) bool {
	switch reason {
	case htm.ReasonConflict, htm.ReasonNonTxnStore:
		return true
	}
	return false
}

// seedRng initializes the monitor's jitter stream on first use.
func (r *Resilience) seedRng(m *Monitor, tid uint32) {
	if m.Res.Rng == 0 {
		m.Res.Rng = (r.Seed ^ uint64(tid)*0x2545f4914f6cdd1d) | 1
	}
}

// nextRand steps the monitor's xorshift64 stream.
func nextRand(m *Monitor) uint64 {
	x := m.Res.Rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	m.Res.Rng = x
	return x
}

// backoffRetry reports whether the scheme should retry the transaction
// after an abort, charging the backoff delay when it does. attempt is the
// number of aborts already taken this window (1-based).
func (r *Resilience) backoffRetry(ctx Context, reason htm.AbortReason, attempt int) bool {
	if !retryable(reason) || attempt > r.MaxRetries {
		return false
	}
	m := ctx.Monitor()
	r.seedRng(m, ctx.TID())
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	d := r.BackoffBase << shift
	if d > r.BackoffMax {
		d = r.BackoffMax
	}
	// Half deterministic, half per-tid jitter: decorrelates competing
	// vCPUs so they stop re-colliding in lockstep.
	wait := d/2 + nextRand(m)%(d/2+1)
	st := ctx.Stats()
	st.HTMRetries++
	st.HTMBackoffWaits++
	ctx.Tracer().Emit(obs.EvHTMBackoff, m.Addr, wait)
	ctx.Charge(stats.CompHTM, wait)
	// Yield the host thread too: the competing transaction is a real
	// goroutine that needs host cycles to finish and release its locks.
	runtime.Gosched()
	return true
}

// demote switches the monitor onto the fallback path for a cooldown
// window and records the fallback.
func (r *Resilience) demote(ctx Context) {
	m := ctx.Monitor()
	m.Res.CooldownLeft = r.Cooldown
	ctx.Stats().SchemeFallbacks++
	ctx.Tracer().Emit(obs.EvSchemeFall, m.Addr, uint64(m.AbortStreak))
}

// inCooldown reports whether the monitor should keep using the fallback
// path, consuming one cooldown window.
func (r *Resilience) inCooldown(m *Monitor) bool {
	if m.Res.CooldownLeft <= 0 {
		return false
	}
	m.Res.CooldownLeft--
	return true
}
