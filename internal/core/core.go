// Package core implements the paper's contribution: the emulation schemes
// that translate guest LL/SC (Load-Link/Store-Conditional) atomic
// instructions onto a host that only offers CAS, while avoiding the ABA
// problem.
//
// Eight schemes are provided, matching the paper's Table II:
//
//	pico-cas   QEMU-4.1's shipping scheme: SC = host CAS on the LL value.
//	           Fast, portable — and incorrect (ABA).
//	pico-st    Software store test: every store runs a helper that checks
//	           and clears other threads' exclusive monitors. Correct, slow.
//	pico-htm   The whole LL…SC region runs in a hardware transaction.
//	           Fast at low thread counts, livelocks as emulation work lands
//	           inside transactions.
//	hst        Hash-table store test (§III-A): LL and every store publish
//	           their thread id into a non-blocking one-word-per-entry hash
//	           table; SC checks ownership inside an exclusive section.
//	           Strong atomicity, portable, fast — the paper's best scheme.
//	hst-weak   HST without store instrumentation (§III-C): SC locks the hash
//	           entry instead of stopping the world. Weak atomicity.
//	hst-htm    HST with the SC critical section as an HTM transaction
//	           (§III-B). Strong atomicity, needs HTM.
//	pst        Page-protection store test (§III-D): LL write-protects the
//	           page of the atomic variable; foreign stores fault and break
//	           the monitor. Strong atomicity, heavy mprotect cost.
//	pst-remap  PST with the SC-side stop-the-world replaced by remapping the
//	           page to a private alias (§III-E).
//
// Schemes plug into the execution engine (internal/engine) through the
// Scheme interface; the engine supplies per-vCPU state and machine services
// through Context.
package core

import (
	"fmt"

	"atomemu/internal/htm"
	"atomemu/internal/mmu"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// Atomicity classifies how faithfully a scheme enforces LL/SC semantics
// (paper §II-D and Table II).
type Atomicity uint8

// Atomicity levels.
const (
	// AtomicityIncorrect admits the ABA problem even between atomic
	// operations (PICO-CAS).
	AtomicityIncorrect Atomicity = iota
	// AtomicityWeak detects conflicts among LL/SC pairs but not regular
	// stores (HST-WEAK).
	AtomicityWeak
	// AtomicityStrong detects any modification of the synchronization
	// variable during the LL…SC window.
	AtomicityStrong
)

func (a Atomicity) String() string {
	switch a {
	case AtomicityIncorrect:
		return "incorrect"
	case AtomicityWeak:
		return "weak"
	case AtomicityStrong:
		return "strong"
	}
	return "atomicity?"
}

// Monitor is the per-vCPU exclusive-monitor state: the architectural
// lsc_addr/oldval pair plus scheme-private bookkeeping.
type Monitor struct {
	Active bool
	Addr   uint32
	Val    uint32 // value observed by the LL

	// Broken is set by other threads (PST fault handlers) when their store
	// hits the monitored variable. Checked by the owner's SC.
	broken brokenFlag

	// Txn is the open transaction between LL and SC (PICO-HTM).
	Txn *htm.Txn

	// AbortStreak counts consecutive transaction aborts for livelock
	// detection.
	AbortStreak int

	// Degraded marks the current LL/SC window as running on the portable
	// fallback path after an abort storm (PICO-HTM, HST-HTM).
	Degraded bool

	// Res is the monitor's resilience state. Unlike the architectural
	// fields it survives Reset: cooldowns and the backoff RNG span many
	// LL/SC windows.
	Res ResState
}

// ResState is the per-monitor resilience bookkeeping (see Resilience).
type ResState struct {
	// Rng is the per-vCPU xorshift state behind backoff jitter; 0 means
	// not yet seeded.
	Rng uint64
	// CooldownLeft is how many more LL windows run degraded before the
	// transactional fast path is retried.
	CooldownLeft int
	// Watcher is true while this monitor holds a TM store watcher (so
	// NotifyStore stays live across its degraded windows).
	Watcher bool
	// DegradedWord is the TM slot-word snapshot taken at a degraded LL.
	DegradedWord uint64
}

// Reset clears the monitor. A still-open transaction is aborted first:
// every SC path (including address-mismatch failures) funnels through
// Reset, and dropping a live Txn would leak its write locks and the TM's
// active count — after which every plain store pays NotifyStore forever.
func (m *Monitor) Reset() {
	if m.Txn != nil && !m.Txn.Done() {
		m.Txn.AbortNow(htm.ReasonConflict)
	}
	m.Active = false
	m.Addr = 0
	m.Val = 0
	m.broken.Store(false)
	m.Txn = nil
	m.Degraded = false
}

// Break marks the monitor broken (cross-thread).
func (m *Monitor) Break() { m.broken.Store(true) }

// Broken reports whether another thread broke the monitor.
func (m *Monitor) Broken() bool { return m.broken.Load() }

// ClearBroken resets the broken flag (at LL).
func (m *Monitor) ClearBroken() { m.broken.Store(false) }

// Context is what the execution engine provides to a scheme on every
// LL/SC/store hook invocation. One Context belongs to one vCPU.
type Context interface {
	// TID returns the vCPU's nonzero thread id.
	TID() uint32
	// Mem returns the guest address space.
	Mem() *mmu.Memory
	// Monitor returns this vCPU's exclusive-monitor state.
	Monitor() *Monitor
	// StartExclusive stops the world: it returns once every other vCPU is
	// parked outside its execution region (QEMU's start_exclusive).
	StartExclusive()
	// EndExclusive resumes the world.
	EndExclusive()
	// ChargeExclusive accounts the cost of a stop-the-world section (base +
	// per-running-vCPU) without mechanically stopping the world. The PST
	// schemes use it: their correctness comes from page locks, but the
	// paper's implementations pay thread-suspension costs that must appear
	// in the timing model.
	ChargeExclusive()
	// Stats returns this vCPU's counters.
	Stats() *stats.CPU
	// Charge adds virtual cycles to a cost component.
	Charge(comp stats.Component, cycles uint64)
	// TM returns the machine's transactional memory, or nil when the
	// machine was built without HTM support.
	TM() *htm.TM
	// RunningCPUs returns the number of vCPUs not yet halted, for
	// contention-dependent cost charging.
	RunningCPUs() int
	// Tracer returns this vCPU's event ring, or nil when tracing is off.
	// obs.Ring methods are nil-safe, so call sites emit unconditionally.
	Tracer() *obs.Ring
}

// Scheme is one atomic-instruction emulation strategy.
type Scheme interface {
	// Name returns the scheme's identifier (e.g. "hst", "pico-cas").
	Name() string
	// Atomicity reports the enforcement level (Table II).
	Atomicity() Atomicity
	// Portable reports whether the scheme runs without HTM hardware.
	Portable() bool
	// InstrumentsStores reports whether guest stores must be routed through
	// Store/StoreB. When false the engine uses its uninstrumented fast
	// path, like QEMU's.
	InstrumentsStores() bool
	// InstrumentsLoads reports whether guest loads must be routed through
	// Load/LoadB (PICO-HTM reads inside transactions, PST-REMAP fault
	// waiting).
	InstrumentsLoads() bool

	// LL emulates a guest Load-Link of addr.
	LL(ctx Context, addr uint32) (uint32, error)
	// SC emulates a guest Store-Conditional of val to addr. It returns the
	// architectural status register value: 0 on success, 1 on failure.
	SC(ctx Context, addr, val uint32) (uint32, error)
	// Clrex clears the vCPU's exclusive monitor.
	Clrex(ctx Context)

	// Store emulates an instrumented guest word store.
	Store(ctx Context, addr, val uint32) error
	// StoreB emulates an instrumented guest byte store.
	StoreB(ctx Context, addr uint32, val uint8) error
	// Load emulates an instrumented guest word load.
	Load(ctx Context, addr uint32) (uint32, error)
	// LoadB emulates an instrumented guest byte load.
	LoadB(ctx Context, addr uint32) (uint8, error)

	// Snapshot captures the scheme's global state (hash-table entries, TM
	// slot words, PST page marks, MPK key tags) for a checkpoint. It must
	// be strictly read-only — a clean run with checkpointing enabled has to
	// stay bit-identical to one without — and is only called at machine
	// quiescence (inside an exclusive section). Stateless schemes return
	// nil.
	Snapshot() any
	// Restore re-installs a state captured by Snapshot on the same scheme
	// instance, again at quiescence, after mem has been rolled back to the
	// same checkpoint. Per-vCPU monitors are NOT part of the snapshot: a
	// restore disarms every monitor, which the architecture permits (an SC
	// may fail spuriously; guests retry from the LL). Restore must leave no
	// entry locked, no transaction live, and no page protected on behalf of
	// a disarmed monitor (the PST family un-protects via mem).
	Restore(mem *mmu.Memory, snap any)
}

// StoreNotifier is implemented by schemes that need to observe stores the
// engine performs outside the scheme — fused atomic RMWs from rule-based
// translation (§VI). NoteStore must break any other thread's monitor on the
// word, exactly as the scheme's instrumented store path would, without
// performing the store itself.
type StoreNotifier interface {
	NoteStore(ctx Context, addr uint32)
}

// EmulationError reports a scheme-level failure that aborts the guest run —
// the analogue of QEMU crashing or livelocking (the paper's PICO-HTM beyond
// 8 threads). With the default (resilient) configuration the HTM schemes
// degrade instead of returning this; StrictPaper mode restores it.
type EmulationError struct {
	Scheme string
	Reason string
}

func (e *EmulationError) Error() string {
	return fmt.Sprintf("core: scheme %s failed: %s", e.Scheme, e.Reason)
}

// WatchdogError is the structured diagnostic raised when the progress
// watchdog detects a wedged vCPU (an SC-failure storm with no successes,
// or a hash-entry lock whose holder never releases). It stops the machine
// with enough context to identify the stuck resource instead of hanging.
type WatchdogError struct {
	Scheme      string
	TID         uint32
	Addr        uint32 // last SC address (or locked hash address)
	Kind        string // "sc-failure storm" or "hash-entry lock spin"
	Fails       uint64 // SC failures (or spins) accumulated without progress
	AbortStreak int    // consecutive HTM aborts at trip time, if any
	HashOwner   uint32 // hash-entry owner word, when the scheme has one
	HasOwner    bool
}

func (e *WatchdogError) Error() string {
	s := fmt.Sprintf("core: watchdog: %s on vCPU %d (scheme %s, addr %#08x, %d fails without progress",
		e.Kind, e.TID, e.Scheme, e.Addr, e.Fails)
	if e.AbortStreak > 0 {
		s += fmt.Sprintf(", abort streak %d", e.AbortStreak)
	}
	if e.HasOwner {
		s += fmt.Sprintf(", hash entry owner %#x", e.HashOwner)
	}
	return s + ")"
}

// HashOwnerReporter is implemented by schemes that can report the current
// owner word of an address's hash entry, for watchdog diagnostics.
type HashOwnerReporter interface {
	HashOwner(addr uint32) (uint32, bool)
}

// DeadlockWaiter describes one parked vCPU at deadlock-detection time.
type DeadlockWaiter struct {
	TID  uint32
	Kind string // "futex", "barrier" or "join"
	// Addr is the futex word or barrier cell the vCPU sleeps on; for a
	// join it is the joined thread id.
	Addr uint32
	// Arrived/Total describe the barrier generation for barrier waiters
	// (how many threads have arrived out of how many expected).
	Arrived int
	Total   int
}

func (w DeadlockWaiter) String() string {
	switch w.Kind {
	case "barrier":
		return fmt.Sprintf("vCPU %d barrier@%#08x (%d/%d arrived)", w.TID, w.Addr, w.Arrived, w.Total)
	case "join":
		return fmt.Sprintf("vCPU %d join(tid %d)", w.TID, w.Addr)
	}
	return fmt.Sprintf("vCPU %d %s@%#08x", w.TID, w.Kind, w.Addr)
}

// DeadlockError is the structured diagnostic for a guest deadlock: every
// live vCPU is parked in a blocking syscall (futex wait, barrier, join)
// and no wake can ever arrive. The engine returns it instead of letting
// Run hang forever.
type DeadlockError struct {
	Waiters []DeadlockWaiter
}

func (e *DeadlockError) Error() string {
	s := fmt.Sprintf("core: guest deadlock: all %d runnable vCPUs blocked:", len(e.Waiters))
	for _, w := range e.Waiters {
		s += " [" + w.String() + "]"
	}
	return s
}

// CostModel holds the virtual-cycle charges used by the engine and schemes.
// The defaults are calibrated so the cost *ratios* mirror the paper's
// measured trade-offs: inline IR instrumentation is cheap relative to helper
// calls, stop-the-world scales with thread count, and protection changes
// dwarf everything else per event. See DESIGN.md §4.
type CostModel struct {
	IROp       uint64 // one non-memory IR operation
	MemAccess  uint64 // load/store through the soft MMU
	HostAtomic uint64 // host CAS / atomic RMW
	HashInline uint64 // one inline hash-table set/check (HST family)
	HelperCall uint64 // context switch into an emulator helper (PICO-ST)

	ExclusiveBase   uint64 // entering a stop-the-world section
	ExclusivePerCPU uint64 // per running vCPU that must be parked
	ExclusiveStall  uint64 // charged to each vCPU per section it witnesses
	LockContention  uint64 // per-competitor cost of a contended global lock (PICO-ST LL/SC)

	MProtect  uint64 // one protection syscall
	WrPKRU    uint64 // one protection-key register update (PST-MPK)
	PageFault uint64 // one delivered page fault
	Remap     uint64 // one mremap

	HTMBegin  uint64
	HTMCommit uint64
	HTMAbort  uint64

	SyscallBase uint64 // guest syscall entry/exit
	TBLookup    uint64 // translation-cache hit
	TBTranslate uint64 // per guest instruction translated (decode→IR→optimize)
	TBDecode    uint64 // per guest instruction decoded for the interp tier (no IR)

	// Checkpoint capture costs, charged to the checkpoint component only —
	// never the guest-visible clock — so enabling checkpoints leaves a
	// clean run's virtual times untouched.
	CheckpointBase uint64 // one capture (bookkeeping + scheme snapshot)
	CheckpointPage uint64 // per dirty page frame copied into the capture
}

// DefaultCostModel returns the calibrated defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		IROp:            10,
		MemAccess:       30,
		HostAtomic:      40,
		HashInline:      3,
		HelperCall:      60,
		ExclusiveBase:   400,
		ExclusivePerCPU: 60,
		ExclusiveStall:  150,
		LockContention:  25,
		MProtect:        4000,
		WrPKRU:          60,
		PageFault:       8000,
		Remap:           2500,
		HTMBegin:        60,
		HTMCommit:       40,
		HTMAbort:        300,
		SyscallBase:     1500,
		TBLookup:        12,
		TBTranslate:     400,
		TBDecode:        80,
		CheckpointBase:  5000,
		CheckpointPage:  800,
	}
}

// Deps carries the substrate objects a scheme may need.
type Deps struct {
	Cost *CostModel
	Htab *HashTable  // HST family store-test table
	TM   *htm.TM     // HTM schemes
	Res  *Resilience // HTM abort policy; nil means DefaultResilience
}

// SchemeNames lists every implemented scheme in the paper's presentation
// order.
func SchemeNames() []string {
	return []string{
		"pico-cas", "pico-st", "pico-htm",
		"hst", "hst-weak", "hst-htm",
		"pst", "pst-remap", "pst-mpk",
	}
}

// New constructs a scheme by name.
func New(name string, deps Deps) (Scheme, error) {
	if deps.Cost == nil {
		cm := DefaultCostModel()
		deps.Cost = &cm
	}
	if deps.Res == nil {
		r := DefaultResilience()
		deps.Res = &r
	}
	switch name {
	case "pico-cas":
		return NewPicoCAS(deps.Cost), nil
	case "pico-st":
		return NewPicoST(deps.Cost), nil
	case "pico-htm":
		if deps.TM == nil {
			return nil, fmt.Errorf("core: scheme pico-htm needs a TM")
		}
		return NewPicoHTM(deps.Cost, deps.TM, deps.Res), nil
	case "hst":
		if deps.Htab == nil {
			return nil, fmt.Errorf("core: scheme hst needs a hash table")
		}
		return NewHST(deps.Cost, deps.Htab), nil
	case "hst-weak":
		if deps.Htab == nil {
			return nil, fmt.Errorf("core: scheme hst-weak needs a hash table")
		}
		return NewHSTWeak(deps.Cost, deps.Htab), nil
	case "hst-htm":
		if deps.Htab == nil || deps.TM == nil {
			return nil, fmt.Errorf("core: scheme hst-htm needs a hash table and a TM")
		}
		return NewHSTHTM(deps.Cost, deps.Htab, deps.TM, deps.Res), nil
	case "pst":
		return NewPST(deps.Cost), nil
	case "pst-remap":
		return NewPSTRemap(deps.Cost), nil
	case "pst-mpk":
		// The §VI-discussion MPK variant (an extension beyond the paper's
		// evaluated eight).
		return NewPSTMPK(deps.Cost), nil
	}
	return nil, fmt.Errorf("core: unknown scheme %q (know %v)", name, SchemeNames())
}
