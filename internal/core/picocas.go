package core

import (
	"atomemu/internal/mmu"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// picoCAS is QEMU-4.1's shipping scheme (PICO-CAS in the paper, Fig. 1):
// the LL records the loaded value and address; the SC issues a host CAS
// comparing against that value. No store is instrumented and no exclusivity
// is enforced, so "value unchanged" is mistaken for "nothing happened" —
// the ABA problem. It is the fastest scheme and the correctness baseline
// every other scheme is measured against.
type picoCAS struct {
	noInstrumentation
	cost *CostModel
}

// NewPicoCAS constructs the PICO-CAS scheme.
func NewPicoCAS(cost *CostModel) Scheme { return &picoCAS{cost: cost} }

func (s *picoCAS) Name() string         { return "pico-cas" }
func (s *picoCAS) Atomicity() Atomicity { return AtomicityIncorrect }
func (s *picoCAS) Portable() bool       { return true }

func (s *picoCAS) LL(ctx Context, addr uint32) (uint32, error) {
	v, f := ctx.Mem().LoadWord(addr)
	if f != nil {
		return 0, f
	}
	m := ctx.Monitor()
	m.Active = true
	m.Addr = addr
	m.Val = v
	ctx.Charge(stats.CompNative, s.cost.MemAccess)
	return v, nil
}

func (s *picoCAS) SC(ctx Context, addr, val uint32) (uint32, error) {
	m := ctx.Monitor()
	defer m.Reset()
	if !m.Active || m.Addr != addr {
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCNoMonitor)
		return 1, nil
	}
	ctx.Charge(stats.CompNative, s.cost.HostAtomic)
	ok, f := ctx.Mem().CASWord(addr, m.Val, val)
	if f != nil {
		return 1, f
	}
	if ok {
		return 0, nil
	}
	ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCValueChanged)
	return 1, nil
}

func (s *picoCAS) Clrex(ctx Context) { ctx.Monitor().Reset() }

// Snapshot: PICO-CAS keeps no state beyond the per-vCPU monitors, which
// checkpoints capture (and restores disarm) at the engine level.
func (s *picoCAS) Snapshot() any                     { return nil }
func (s *picoCAS) Restore(mem *mmu.Memory, snap any) {}
