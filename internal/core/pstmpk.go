package core

import (
	"atomemu/internal/mmu"
	"atomemu/internal/mpk"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// pstMPK is the Memory-Protection-Keys variant of PST sketched in the
// paper's §VI discussion: instead of an mprotect syscall (kernel entry,
// page-table update, stop-the-world), the LL tags the monitored page with
// one of Intel MPK's 16 protection keys — an unprivileged, thread-local
// operation. Stores to tagged pages trap exactly as under PST (the fault
// cost is unchanged; SIGSEGV is SIGSEGV), but the LL/SC path drops from
// thousands of cycles to a WRPKRU.
//
// The discussion's two predicted limits are modelled faithfully:
//
//   - Only 15 allocatable keys exist. When more pages are monitored
//     concurrently, the scheme falls back to classic PST mprotect for the
//     overflow pages (counted in Stats.ExclSections via ChargeExclusive).
//   - Synchronizing other threads' PKRU views is charged per LL through
//     CostModel.WrPKRU on top of the owner's own register write.
//
// pst-mpk extends the paper's evaluated set; it is an implementation of the
// paper's future-work proposal, not one of its eight measured schemes.
type pstMPK struct {
	pst
	unit *mpk.Unit
}

// NewPSTMPK constructs the MPK-based PST variant.
func NewPSTMPK(cost *CostModel) Scheme {
	return &pstMPK{
		pst:  pst{cost: cost, pages: make(map[uint32]*pstPage)},
		unit: mpk.New(),
	}
}

func (s *pstMPK) Name() string { return "pst-mpk" }

// pageKey tracks the key assigned to a page while monitored; stored in the
// pstPage via the spare remapping field? No — keep a side map keyed by the
// same page struct. Simplest: key per page in a parallel map guarded by the
// page mutex.

// mpkState hangs per-page MPK bookkeeping off the shared pstPage.
type mpkState struct {
	key      uint8
	fallback bool // no key available: classic PST mprotect used
}

// keyed returns the page's MPK state, lazily attached. Caller holds p.pmu.
func (s *pstMPK) keyed(p *pstPage) *mpkState {
	if p.mpk == nil {
		p.mpk = &mpkState{}
	}
	return p.mpk
}

func (s *pstMPK) LL(ctx Context, addr uint32) (uint32, error) {
	s.release2(ctx)
	base := mmu.PageBase(addr)
	p := s.page(base)

	p.pmu.Lock()
	m := ctx.Monitor()
	m.ClearBroken()
	m.Active = true
	m.Addr = addr
	p.monitors[ctx.TID()] = &pstMonitor{addr: addr, mon: m}
	p.refcnt++
	st := s.keyed(p)
	if p.refcnt == 1 {
		if ctx.Mem().PermAt(base) == 0 {
			s.releaseMPKLocked(ctx, base, p, ctx.TID())
			p.pmu.Unlock()
			m.Reset()
			return 0, &mmu.Fault{Addr: addr, Kind: mmu.FaultUnmapped, Access: mmu.AccessLoad}
		}
		if key, ok := s.unit.AllocKey(); ok {
			st.key = key
			st.fallback = false
			s.unit.TagPage(base, key)
			// The owner's WRPKRU plus the cross-thread PKRU propagation
			// the paper's discussion warns about.
			ctx.Charge(stats.CompMProtect, s.cost.WrPKRU)
		} else {
			// Key exhaustion: classic PST for this page.
			st.fallback = true
			p.origPerm = ctx.Mem().PermAt(base)
			if err := ctx.Mem().Protect(base, mmu.PageSize, p.origPerm&^mmu.PermWrite); err != nil {
				s.releaseMPKLocked(ctx, base, p, ctx.TID())
				p.pmu.Unlock()
				m.Reset()
				return 0, err
			}
			p.protected = true
			ctx.Charge(stats.CompMProtect, s.cost.MProtect)
			ctx.ChargeExclusive()
		}
	}
	v, f := ctx.Mem().ReadWordPriv(addr)
	p.pmu.Unlock()
	if f != nil {
		s.release2(ctx)
		return 0, f
	}
	m.Val = v
	return v, nil
}

// releaseMPKLocked drops tid's monitor, untagging the page when the last
// monitor leaves. Caller holds p.pmu.
func (s *pstMPK) releaseMPKLocked(ctx Context, base uint32, p *pstPage, tid uint32) {
	if _, armed := p.monitors[tid]; !armed {
		return
	}
	delete(p.monitors, tid)
	p.refcnt--
	if p.refcnt > 0 {
		return
	}
	st := s.keyed(p)
	if st.fallback {
		if p.protected {
			if err := ctx.Mem().Protect(base, mmu.PageSize, p.origPerm); err == nil {
				p.protected = false
			}
			ctx.Charge(stats.CompMProtect, s.cost.MProtect)
		}
		return
	}
	if st.key != 0 {
		s.unit.UntagPage(base)
		s.unit.FreeKey(st.key)
		st.key = 0
		ctx.Charge(stats.CompMProtect, s.cost.WrPKRU)
	}
}

// release2 drops the vCPU's current monitor (MPK-aware variant of
// pst.release).
func (s *pstMPK) release2(ctx Context) {
	m := ctx.Monitor()
	if !m.Active {
		return
	}
	base := mmu.PageBase(m.Addr)
	if p := s.lookup(base); p != nil {
		p.pmu.Lock()
		s.releaseMPKLocked(ctx, base, p, ctx.TID())
		p.pmu.Unlock()
	}
	m.Reset()
}

func (s *pstMPK) SC(ctx Context, addr, val uint32) (uint32, error) {
	m := ctx.Monitor()
	if !m.Active {
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCNoMonitor)
		return 1, nil
	}
	base := mmu.PageBase(m.Addr)
	p := s.lookup(base)
	if p == nil {
		m.Reset()
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCPageGone)
		return 1, nil
	}
	p.pmu.Lock()
	defer p.pmu.Unlock()
	defer m.Reset()
	st := s.keyed(p)
	if st.fallback {
		ctx.ChargeExclusive()
		ctx.Charge(stats.CompMProtect, 2*s.cost.MProtect)
	} else {
		// Grant-write / restore-deny on the owner's PKRU: two register
		// writes, no kernel, no suspension.
		ctx.Charge(stats.CompMProtect, 2*s.cost.WrPKRU)
	}
	ok := m.Addr == addr && !m.Broken()
	var fault *mmu.Fault
	if ok {
		s.breakOthersLocked(p, addr, ctx.TID())
		fault = ctx.Mem().WriteWordPriv(addr, val)
	}
	s.releaseMPKLocked(ctx, base, p, ctx.TID())
	if fault != nil {
		return 1, fault
	}
	if ok {
		return 0, nil
	}
	ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCMonitorBroken)
	return 1, nil
}

func (s *pstMPK) Clrex(ctx Context) { s.release2(ctx) }

// Store: the fast path is the hardware's free key check; a tagged page
// diverts to the PST-style handler (a real SIGSEGV, full fault cost).
func (s *pstMPK) Store(ctx Context, addr, val uint32) error {
	if s.unit.KeyOf(addr) == 0 {
		// Untagged page, but it may still be mprotect-protected (fallback).
		f := ctx.Mem().StoreWord(addr, val)
		if f == nil {
			return nil
		}
		if f.Kind != mmu.FaultProtected {
			return f
		}
		return s.handleStoreFault(ctx, mmu.PageBase(addr), addr, func() *mmu.Fault {
			return ctx.Mem().WriteWordPriv(addr, val)
		})
	}
	return s.handleStoreFault(ctx, mmu.PageBase(addr), addr, func() *mmu.Fault {
		return ctx.Mem().WriteWordPriv(addr, val)
	})
}

func (s *pstMPK) StoreB(ctx Context, addr uint32, val uint8) error {
	commit := func() *mmu.Fault {
		w, rf := ctx.Mem().ReadWordPriv(addr &^ 3)
		if rf != nil {
			return rf
		}
		shift := 8 * (addr & 3)
		return ctx.Mem().WriteWordPriv(addr&^3, w&^(0xff<<shift)|uint32(val)<<shift)
	}
	if s.unit.KeyOf(addr) == 0 {
		f := ctx.Mem().StoreByte(addr, val)
		if f == nil {
			return nil
		}
		if f.Kind != mmu.FaultProtected {
			return f
		}
		return s.handleStoreFault(ctx, mmu.PageBase(addr), addr&^3, commit)
	}
	return s.handleStoreFault(ctx, mmu.PageBase(addr), addr&^3, commit)
}

// Restore additionally clears every page tag and returns all keys to the
// pool: tagged pages belong to monitors the restore disarms. The embedded
// pst.Snapshot already covers the key-exhaustion fallback pages (the only
// ones that flip mmu permissions).
func (s *pstMPK) Restore(mem *mmu.Memory, snap any) {
	s.unit.Reset()
	s.pst.Restore(mem, snap)
}

// NoteStore implements StoreNotifier for fused RMWs.
func (s *pstMPK) NoteStore(ctx Context, addr uint32) {
	p := s.lookup(mmu.PageBase(addr))
	if p == nil {
		return
	}
	p.pmu.Lock()
	s.breakOthersLocked(p, addr, ctx.TID())
	p.pmu.Unlock()
}
