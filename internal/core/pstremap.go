package core

import (
	"atomemu/internal/mmu"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// AliasRegionBase is the guest address region PST-REMAP uses for per-thread
// page aliases. The engine keeps it unmapped; thread t's alias page sits at
// AliasRegionBase + t*PageSize.
const AliasRegionBase uint32 = 0x7800_0000

// pstRemap is the remap optimization of PST (§III-E, Fig. 9). The SC avoids
// the stop-the-world around its protection flip: it remaps the monitored
// page to a thread-private alias with write permission, leaving the original
// address unmapped. Any other thread touching the page during the window
// faults with MAPERR and simply waits (the paper: "the pagefault handler of
// mapping error simply waits the completion of SC by locking and
// unlocking"), then retries. After the conditional store the page is mapped
// back read-only and the waiters resume.
type pstRemap struct {
	pst
}

// NewPSTRemap constructs the PST-REMAP scheme.
func NewPSTRemap(cost *CostModel) Scheme {
	return &pstRemap{pst: pst{cost: cost, pages: make(map[uint32]*pstPage)}}
}

func (s *pstRemap) Name() string           { return "pst-remap" }
func (s *pstRemap) InstrumentsLoads() bool { return true }

func (s *pstRemap) aliasFor(tid uint32) uint32 {
	return AliasRegionBase + tid*mmu.PageSize
}

func (s *pstRemap) SC(ctx Context, addr, val uint32) (uint32, error) {
	m := ctx.Monitor()
	if !m.Active {
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCNoMonitor)
		return 1, nil
	}
	base := mmu.PageBase(m.Addr)
	p := s.lookup(base)
	if p == nil {
		m.Reset()
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCPageGone)
		return 1, nil
	}
	p.pmu.Lock()
	defer p.pmu.Unlock()
	defer m.Reset()

	ok := m.Addr == addr && !m.Broken()
	var fault *mmu.Fault
	if ok {
		// The SC's own update breaks other monitors on the same word.
		s.breakOthersLocked(p, addr, ctx.TID())
		// Remap the page to our private alias with write permission; the
		// original address goes unmapped so every other thread's access
		// faults MAPERR and blocks on p.pmu in the handler.
		alias := s.aliasFor(ctx.TID())
		ctx.Charge(stats.CompMProtect, 2*s.cost.Remap)
		p.remapping = true
		if err := ctx.Mem().Remap(base, alias, mmu.PermRW); err != nil {
			p.remapping = false
			s.releaseLocked(ctx, base, p, ctx.TID())
			return 1, err
		}
		fault = ctx.Mem().StoreWord(alias+(addr-base), val)
		// Map back. Protection stays read-only while other monitors remain.
		restore := p.origPerm &^ mmu.PermWrite
		if p.refcnt == 1 { // ours is the last monitor
			restore = p.origPerm
		}
		if err := ctx.Mem().Remap(alias, base, restore); err != nil {
			// The address space is corrupt; surface loudly.
			p.remapping = false
			return 1, &EmulationError{Scheme: s.Name(), Reason: "remap-back failed: " + err.Error()}
		}
		p.remapping = false
		p.protected = restore&mmu.PermWrite == 0
	}
	// Bypass releaseLocked's mprotect: the remap-back above already settled
	// protection. Just drop the monitor.
	if _, armed := p.monitors[ctx.TID()]; armed {
		delete(p.monitors, ctx.TID())
		p.refcnt--
		if !ok && p.refcnt == 0 && p.protected {
			if err := ctx.Mem().Protect(base, mmu.PageSize, p.origPerm); err == nil {
				p.protected = false
			}
			ctx.Charge(stats.CompMProtect, s.cost.MProtect)
		}
	}
	if fault != nil {
		return 1, fault
	}
	if ok {
		return 0, nil
	}
	ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCMonitorBroken)
	return 1, nil
}

// waitRemap blocks until a remap window on the page closes. Reports whether
// the address belonged to a remapping page (retry) or not (genuine fault).
func (s *pstRemap) waitRemap(ctx Context, base uint32) bool {
	p := s.lookup(base)
	if p == nil {
		return false
	}
	// Lock/unlock: the paper's fault handler "simply waits the completion
	// of SC by locking and unlocking".
	ctx.Charge(stats.CompMProtect, s.cost.PageFault)
	ctx.Stats().PageFaults++
	p.pmu.Lock()
	//lint:ignore SA2001 empty critical section is the point: wait out the SC
	p.pmu.Unlock()
	return true
}

func (s *pstRemap) Store(ctx Context, addr, val uint32) error {
	for {
		f := ctx.Mem().StoreWord(addr, val)
		if f == nil {
			return nil
		}
		switch f.Kind {
		case mmu.FaultProtected:
			return s.handleStoreFault(ctx, mmu.PageBase(addr), addr, func() *mmu.Fault {
				return ctx.Mem().WriteWordPriv(addr, val)
			})
		case mmu.FaultUnmapped:
			if s.waitRemap(ctx, mmu.PageBase(addr)) {
				continue
			}
			return f
		default:
			return f
		}
	}
}

func (s *pstRemap) StoreB(ctx Context, addr uint32, val uint8) error {
	for {
		f := ctx.Mem().StoreByte(addr, val)
		if f == nil {
			return nil
		}
		switch f.Kind {
		case mmu.FaultProtected:
			return s.handleStoreFault(ctx, mmu.PageBase(addr), addr&^3, func() *mmu.Fault {
				w, rf := ctx.Mem().ReadWordPriv(addr &^ 3)
				if rf != nil {
					return rf
				}
				shift := 8 * (addr & 3)
				return ctx.Mem().WriteWordPriv(addr&^3, w&^(0xff<<shift)|uint32(val)<<shift)
			})
		case mmu.FaultUnmapped:
			if s.waitRemap(ctx, mmu.PageBase(addr)) {
				continue
			}
			return f
		default:
			return f
		}
	}
}

func (s *pstRemap) Load(ctx Context, addr uint32) (uint32, error) {
	for {
		v, f := ctx.Mem().LoadWord(addr)
		if f == nil {
			return v, nil
		}
		if f.Kind == mmu.FaultUnmapped && s.waitRemap(ctx, mmu.PageBase(addr)) {
			continue
		}
		return 0, f
	}
}

func (s *pstRemap) LoadB(ctx Context, addr uint32) (uint8, error) {
	for {
		v, f := ctx.Mem().LoadByte(addr)
		if f == nil {
			return v, nil
		}
		if f.Kind == mmu.FaultUnmapped && s.waitRemap(ctx, mmu.PageBase(addr)) {
			continue
		}
		return 0, f
	}
}
