package core

import (
	"errors"
	"fmt"

	"atomemu/internal/htm"
	"atomemu/internal/mmu"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// picoHTM is PICO's HTM scheme: HTM_xbegin at the LL, HTM_xend at the SC,
// with every guest access in between running transactionally. With no store
// instrumentation it is the fastest correct scheme at low thread counts —
// but, as the paper observes (§III-B, Fig. 11), any emulation work between
// the LL and the SC (a translation-cache miss, a helper, a syscall) lands
// *inside* the transaction and aborts it. Under contention the aborts
// cascade into livelock; the paper reports frequent crashes beyond 8
// threads. The engine reports such a livelock as an EmulationError, the
// analogue of the crashed QEMU run.
//
// Rollback note: a real HTM abort rewinds the guest to the LL. A DBT cannot
// rewind guest registers mid-block, so after an abort inside the window this
// implementation runs in "doomed" mode — loads and stores go directly to
// memory and the SC is guaranteed to fail, sending the guest back around its
// retry loop. Stores executed doomed are applied directly; LL/SC regions
// write only thread-private scratch before the SC in all the paper's
// workloads, so this matches the fallback-path semantics.
//
// Resilience: with the default policy the livelock is survived instead of
// reported. Retryable aborts at the LL back off and retry (Resilience);
// once the budget is exhausted — or an abort reason that retrying cannot
// fix occurs — the monitor demotes to a degraded window for a cooldown:
// the LL snapshots the TM slot word of the monitored address and loads
// directly, and the SC revalidates the snapshot and the value inside a
// stop-the-world section. Every store path (transactional commits, plain
// instrumented stores, other vCPUs' degraded SCs) changes the slot word,
// so the degraded window keeps strong atomicity — at HST-like cost. A TM
// store watcher keeps NotifyStore live while any monitor is degraded.
type picoHTM struct {
	cost *CostModel
	tm   *htm.TM
	res  Resilience
	// livelockLimit is the number of consecutive aborts after which the
	// scheme declares livelock (StrictPaper mode).
	livelockLimit int
}

// NewPicoHTM constructs the PICO-HTM scheme. A nil res means the default
// resilient policy; res.StrictPaper restores the paper's crash-on-livelock
// behavior.
func NewPicoHTM(cost *CostModel, tm *htm.TM, res *Resilience) Scheme {
	r := DefaultResilience()
	if res != nil {
		r = res.normalized()
	}
	return &picoHTM{cost: cost, tm: tm, res: r, livelockLimit: 48}
}

func (s *picoHTM) Name() string            { return "pico-htm" }
func (s *picoHTM) Atomicity() Atomicity    { return AtomicityStrong }
func (s *picoHTM) Portable() bool          { return false }
func (s *picoHTM) InstrumentsStores() bool { return true }
func (s *picoHTM) InstrumentsLoads() bool  { return true }

func (s *picoHTM) memLoad(ctx Context) func(addr uint32) (uint32, error) {
	return func(addr uint32) (uint32, error) {
		if addr&(1<<31) != 0 {
			// Synthetic emulator-state address (engine.EmulStateAddr):
			// only its version matters for conflict detection.
			return 0, nil
		}
		v, f := ctx.Mem().LoadWord(addr)
		if f != nil {
			return 0, f
		}
		return v, nil
	}
}

func (s *picoHTM) memStore(ctx Context) func(addr, val uint32) error {
	return func(addr, val uint32) error {
		if f := ctx.Mem().StoreWord(addr, val); f != nil {
			return f
		}
		return nil
	}
}

// chargeAbort bumps the abort streak and accounts one abort.
func (s *picoHTM) chargeAbort(ctx Context, reason htm.AbortReason) {
	ctx.Monitor().AbortStreak++
	ctx.Stats().HTMAborts++
	ctx.Tracer().Emit(obs.EvHTMAbort, ctx.Monitor().Addr, uint64(reason))
	ctx.Charge(stats.CompHTM, s.cost.HTMAbort)
}

// noteAbort (StrictPaper mode) bumps the livelock counter; the returned
// error is non-nil when the scheme declares livelock.
func (s *picoHTM) noteAbort(ctx Context, reason htm.AbortReason) error {
	s.chargeAbort(ctx, reason)
	m := ctx.Monitor()
	if m.AbortStreak > s.livelockLimit {
		return &EmulationError{
			Scheme: s.Name(),
			Reason: fmt.Sprintf("livelock: %d consecutive HTM aborts (thread %d)", m.AbortStreak, ctx.TID()),
		}
	}
	return nil
}

// demoteMon switches the monitor to degraded windows for a cooldown,
// taking a store watcher so NotifyStore stays observable meanwhile.
func (s *picoHTM) demoteMon(ctx Context) {
	m := ctx.Monitor()
	if !m.Res.Watcher {
		s.tm.AddStoreWatcher()
		m.Res.Watcher = true
	}
	s.res.demote(ctx)
}

// scFailed decides, after a failed resilient window, whether the next
// windows should run degraded. Retries are impossible at the SC (the guest
// rewinds to the LL itself), so only the demotion decision is made here.
func (s *picoHTM) scFailed(ctx Context, reason htm.AbortReason) {
	if s.res.StrictPaper {
		return
	}
	m := ctx.Monitor()
	if !retryable(reason) || m.AbortStreak > s.res.MaxRetries {
		s.demoteMon(ctx)
	}
}

// llDegraded opens a degraded (non-transactional) LL/SC window. The slot
// word is snapshotted BEFORE the value load: a store between the two then
// shows up as a word change at the SC, never as an unnoticed same-value
// swap (ABA).
func (s *picoHTM) llDegraded(ctx Context, addr uint32) (uint32, error) {
	m := ctx.Monitor()
	word := s.tm.SlotWord(addr)
	v, f := ctx.Mem().LoadWord(addr)
	if f != nil {
		m.Reset()
		return 0, f
	}
	m.Active = true
	m.Addr = addr
	m.Val = v
	m.Txn = nil
	m.Degraded = true
	m.Res.DegradedWord = word
	return v, nil
}

func (s *picoHTM) LL(ctx Context, addr uint32) (uint32, error) {
	m := ctx.Monitor()
	if m.Txn != nil && !m.Txn.Done() {
		// Nested/abandoned LL: the previous transaction is discarded, as a
		// new LL re-arms the monitor.
		m.Txn.AbortNow(htm.ReasonConflict)
	}
	if !s.res.StrictPaper {
		if s.res.inCooldown(m) {
			return s.llDegraded(ctx, addr)
		}
		if m.Res.Watcher {
			// Cooldown expired: retry the transactional fast path with a
			// clean slate and release the store watcher.
			s.tm.RemoveStoreWatcher()
			m.Res.Watcher = false
			m.AbortStreak = 0
		}
	}
	for {
		ctx.Charge(stats.CompHTM, s.cost.HTMBegin)
		txn := s.tm.Begin(ctx.TID(), s.memLoad(ctx))
		v, err := txn.Read(addr)
		if err != nil {
			var ab *htm.Abort
			if errors.As(err, &ab) {
				if s.res.StrictPaper {
					if lerr := s.noteAbort(ctx, ab.Reason); lerr != nil {
						m.Reset()
						return 0, lerr
					}
					continue
				}
				s.chargeAbort(ctx, ab.Reason)
				if s.res.backoffRetry(ctx, ab.Reason, m.AbortStreak) {
					continue
				}
				s.demoteMon(ctx)
				s.res.inCooldown(m) // consume this window's cooldown slot
				return s.llDegraded(ctx, addr)
			}
			txn.AbortNow(htm.ReasonConflict)
			m.Reset()
			return 0, err
		}
		m.Active = true
		m.Addr = addr
		m.Val = v
		m.Txn = txn
		return v, nil
	}
}

// scDegraded validates and completes a degraded window under
// stop-the-world: the SC succeeds only if the slot word still matches the
// LL snapshot and the memory value is unchanged. Parked vCPUs holding open
// transactions cannot have published anything (commits never span a
// checkpoint), and the NotifyStore on success poisons any such transaction
// that had eagerly locked the slot.
func (s *picoHTM) scDegraded(ctx Context, addr, val uint32) (uint32, error) {
	m := ctx.Monitor()
	defer m.Reset()
	if !m.Active || m.Addr != addr {
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCNoMonitor)
		return 1, nil
	}
	ctx.StartExclusive()
	defer ctx.EndExclusive()
	cur, f := ctx.Mem().LoadWord(addr)
	if f != nil {
		return 1, f
	}
	if s.tm.SlotWord(addr) != m.Res.DegradedWord || cur != m.Val {
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCValueChanged)
		return 1, nil
	}
	if f := ctx.Mem().StoreWord(addr, val); f != nil {
		return 1, f
	}
	s.tm.NotifyStore(addr)
	m.AbortStreak = 0
	return 0, nil
}

func (s *picoHTM) SC(ctx Context, addr, val uint32) (uint32, error) {
	m := ctx.Monitor()
	if m.Degraded {
		return s.scDegraded(ctx, addr, val)
	}
	txn := m.Txn
	defer m.Reset()
	if !m.Active || m.Addr != addr || txn == nil {
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCNoMonitor)
		return 1, nil
	}
	if txn.Done() {
		// Doomed window: an abort happened between LL and SC (emulation
		// work or a conflicting access). It counts toward livelock.
		reason, _ := txn.AbortReason()
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCTxnDoomed)
		if s.res.StrictPaper {
			if lerr := s.noteAbort(ctx, reason); lerr != nil {
				return 1, lerr
			}
			return 1, nil
		}
		s.chargeAbort(ctx, reason)
		s.scFailed(ctx, reason)
		return 1, nil
	}
	if err := txn.Write(addr, val); err != nil {
		reason, _ := txn.AbortReason()
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCTxnDoomed)
		if s.res.StrictPaper {
			if lerr := s.noteAbort(ctx, reason); lerr != nil {
				return 1, lerr
			}
			return 1, nil
		}
		s.chargeAbort(ctx, reason)
		s.scFailed(ctx, reason)
		return 1, nil
	}
	if err := txn.Commit(s.memStore(ctx)); err != nil {
		var ab *htm.Abort
		if errors.As(err, &ab) {
			ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCTxnDoomed)
			if s.res.StrictPaper {
				if lerr := s.noteAbort(ctx, ab.Reason); lerr != nil {
					return 1, lerr
				}
				return 1, nil
			}
			s.chargeAbort(ctx, ab.Reason)
			s.scFailed(ctx, ab.Reason)
			return 1, nil
		}
		return 1, err
	}
	m.AbortStreak = 0
	ctx.Stats().HTMCommits++
	ctx.Charge(stats.CompHTM, s.cost.HTMCommit)
	return 0, nil
}

func (s *picoHTM) Clrex(ctx Context) {
	m := ctx.Monitor()
	if m.Txn != nil && !m.Txn.Done() {
		m.Txn.AbortNow(htm.ReasonConflict)
	}
	m.Reset()
}

func (s *picoHTM) Load(ctx Context, addr uint32) (uint32, error) {
	m := ctx.Monitor()
	if m.Txn != nil && !m.Txn.Done() {
		v, err := m.Txn.Read(addr)
		if err == nil {
			return v, nil
		}
		var ab *htm.Abort
		if !errors.As(err, &ab) {
			return 0, err
		}
		ctx.Stats().HTMAborts++
		ctx.Tracer().Emit(obs.EvHTMAbort, addr, uint64(ab.Reason))
		ctx.Charge(stats.CompHTM, s.cost.HTMAbort)
		// Doomed: fall through to a direct read; SC will fail.
	}
	v, f := ctx.Mem().LoadWord(addr)
	if f != nil {
		return 0, f
	}
	return v, nil
}

func (s *picoHTM) LoadB(ctx Context, addr uint32) (uint8, error) {
	// Byte loads inside the window read the containing word
	// transactionally.
	m := ctx.Monitor()
	if m.Txn != nil && !m.Txn.Done() {
		w, err := m.Txn.Read(addr &^ 3)
		if err == nil {
			return uint8(w >> (8 * (addr & 3))), nil
		}
		var ab *htm.Abort
		if !errors.As(err, &ab) {
			return 0, err
		}
		ctx.Stats().HTMAborts++
		ctx.Tracer().Emit(obs.EvHTMAbort, addr, uint64(ab.Reason))
		ctx.Charge(stats.CompHTM, s.cost.HTMAbort)
	}
	v, f := ctx.Mem().LoadByte(addr)
	if f != nil {
		return 0, f
	}
	return v, nil
}

func (s *picoHTM) Store(ctx Context, addr, val uint32) error {
	m := ctx.Monitor()
	if m.Txn != nil && !m.Txn.Done() {
		if err := m.Txn.Write(addr, val); err == nil {
			return nil
		} else {
			var ab *htm.Abort
			if !errors.As(err, &ab) {
				return err
			}
			ctx.Stats().HTMAborts++
			ctx.Tracer().Emit(obs.EvHTMAbort, addr, uint64(ab.Reason))
			ctx.Charge(stats.CompHTM, s.cost.HTMAbort)
			// Doomed: apply directly below.
		}
	}
	if f := ctx.Mem().StoreWord(addr, val); f != nil {
		return f
	}
	s.notifyOwnStore(ctx, addr)
	return nil
}

// notifyOwnStore publishes a direct store for strong atomicity. Inside a
// degraded window, a store to an address aliasing the monitored slot
// would bump the slot word and fail our own SC forever (the guest retries
// the identical window); the CAS adopts exactly our own bump into the
// snapshot — if it loses (the word moved, or a transaction holds the
// lock) the plain NotifyStore runs and the window conservatively fails.
func (s *picoHTM) notifyOwnStore(ctx Context, addr uint32) {
	m := ctx.Monitor()
	if m.Degraded && m.Active && s.tm.SameSlot(addr, m.Addr) {
		if next, ok := s.tm.BumpIfWord(m.Addr, m.Res.DegradedWord); ok {
			m.Res.DegradedWord = next
			return
		}
	}
	s.tm.NotifyStore(addr)
}

func (s *picoHTM) StoreB(ctx Context, addr uint32, val uint8) error {
	m := ctx.Monitor()
	if m.Txn != nil && !m.Txn.Done() {
		w, err := m.Txn.Read(addr &^ 3)
		if err == nil {
			shift := 8 * (addr & 3)
			nw := w&^(0xff<<shift) | uint32(val)<<shift
			err = m.Txn.Write(addr&^3, nw)
			if err == nil {
				return nil
			}
		}
		reason := htm.ReasonConflict
		var ab *htm.Abort
		if errors.As(err, &ab) {
			reason = ab.Reason
		}
		ctx.Stats().HTMAborts++
		ctx.Tracer().Emit(obs.EvHTMAbort, addr, uint64(reason))
		ctx.Charge(stats.CompHTM, s.cost.HTMAbort)
	}
	if f := ctx.Mem().StoreByte(addr, val); f != nil {
		return f
	}
	s.notifyOwnStore(ctx, addr&^3)
	return nil
}

// NoteStore implements StoreNotifier: fused RMWs conflict with open
// transactions reading the word.
func (s *picoHTM) NoteStore(ctx Context, addr uint32) {
	s.tm.NotifyStore(addr)
}

// Snapshot captures the TM slot words (locked words are recorded unlocked:
// their owning transactions belong to parked vCPUs and are aborted before
// any restore).
func (s *picoHTM) Snapshot() any { return s.tm.SnapshotWords() }

// Restore re-installs the slot words. The engine has already aborted every
// live transaction and released every store watcher (monitor disarm), so
// the TM's active count is back at zero.
func (s *picoHTM) Restore(mem *mmu.Memory, snap any) {
	if words, ok := snap.([]uint64); ok {
		s.tm.RestoreWords(words)
	}
}
