package core

import (
	"errors"
	"fmt"

	"atomemu/internal/htm"
	"atomemu/internal/stats"
)

// picoHTM is PICO's HTM scheme: HTM_xbegin at the LL, HTM_xend at the SC,
// with every guest access in between running transactionally. With no store
// instrumentation it is the fastest correct scheme at low thread counts —
// but, as the paper observes (§III-B, Fig. 11), any emulation work between
// the LL and the SC (a translation-cache miss, a helper, a syscall) lands
// *inside* the transaction and aborts it. Under contention the aborts
// cascade into livelock; the paper reports frequent crashes beyond 8
// threads. The engine reports such a livelock as an EmulationError, the
// analogue of the crashed QEMU run.
//
// Rollback note: a real HTM abort rewinds the guest to the LL. A DBT cannot
// rewind guest registers mid-block, so after an abort inside the window this
// implementation runs in "doomed" mode — loads and stores go directly to
// memory and the SC is guaranteed to fail, sending the guest back around its
// retry loop. Stores executed doomed are applied directly; LL/SC regions
// write only thread-private scratch before the SC in all the paper's
// workloads, so this matches the fallback-path semantics.
type picoHTM struct {
	cost *CostModel
	tm   *htm.TM
	// livelockLimit is the number of consecutive aborts after which the
	// scheme declares livelock.
	livelockLimit int
}

// NewPicoHTM constructs the PICO-HTM scheme.
func NewPicoHTM(cost *CostModel, tm *htm.TM) Scheme {
	return &picoHTM{cost: cost, tm: tm, livelockLimit: 48}
}

func (s *picoHTM) Name() string            { return "pico-htm" }
func (s *picoHTM) Atomicity() Atomicity    { return AtomicityStrong }
func (s *picoHTM) Portable() bool          { return false }
func (s *picoHTM) InstrumentsStores() bool { return true }
func (s *picoHTM) InstrumentsLoads() bool  { return true }

func (s *picoHTM) memLoad(ctx Context) func(addr uint32) (uint32, error) {
	return func(addr uint32) (uint32, error) {
		if addr&(1<<31) != 0 {
			// Synthetic emulator-state address (engine.EmulStateAddr):
			// only its version matters for conflict detection.
			return 0, nil
		}
		v, f := ctx.Mem().LoadWord(addr)
		if f != nil {
			return 0, f
		}
		return v, nil
	}
}

func (s *picoHTM) memStore(ctx Context) func(addr, val uint32) error {
	return func(addr, val uint32) error {
		if f := ctx.Mem().StoreWord(addr, val); f != nil {
			return f
		}
		return nil
	}
}

// noteAbort bumps the livelock counter; the returned error is non-nil when
// the scheme declares livelock.
func (s *picoHTM) noteAbort(ctx Context) error {
	m := ctx.Monitor()
	m.AbortStreak++
	ctx.Stats().HTMAborts++
	ctx.Charge(stats.CompHTM, s.cost.HTMAbort)
	if m.AbortStreak > s.livelockLimit {
		return &EmulationError{
			Scheme: s.Name(),
			Reason: fmt.Sprintf("livelock: %d consecutive HTM aborts (thread %d)", m.AbortStreak, ctx.TID()),
		}
	}
	return nil
}

func (s *picoHTM) LL(ctx Context, addr uint32) (uint32, error) {
	m := ctx.Monitor()
	if m.Txn != nil && !m.Txn.Done() {
		// Nested/abandoned LL: the previous transaction is discarded, as a
		// new LL re-arms the monitor.
		m.Txn.AbortNow(htm.ReasonConflict)
	}
	for {
		ctx.Charge(stats.CompHTM, s.cost.HTMBegin)
		txn := s.tm.Begin(s.memLoad(ctx))
		v, err := txn.Read(addr)
		if err != nil {
			var ab *htm.Abort
			if errors.As(err, &ab) {
				if lerr := s.noteAbort(ctx); lerr != nil {
					m.Reset()
					return 0, lerr
				}
				continue
			}
			txn.AbortNow(htm.ReasonConflict)
			m.Reset()
			return 0, err
		}
		m.Active = true
		m.Addr = addr
		m.Val = v
		m.Txn = txn
		return v, nil
	}
}

func (s *picoHTM) SC(ctx Context, addr, val uint32) (uint32, error) {
	m := ctx.Monitor()
	txn := m.Txn
	defer m.Reset()
	if !m.Active || m.Addr != addr || txn == nil {
		return 1, nil
	}
	if txn.Done() {
		// Doomed window: an abort happened between LL and SC (emulation
		// work or a conflicting access). It counts toward livelock.
		if lerr := s.noteAbort(ctx); lerr != nil {
			return 1, lerr
		}
		return 1, nil
	}
	if err := txn.Write(addr, val); err != nil {
		if lerr := s.noteAbort(ctx); lerr != nil {
			return 1, lerr
		}
		return 1, nil
	}
	if err := txn.Commit(s.memStore(ctx)); err != nil {
		var ab *htm.Abort
		if errors.As(err, &ab) {
			if lerr := s.noteAbort(ctx); lerr != nil {
				return 1, lerr
			}
			return 1, nil
		}
		return 1, err
	}
	m.AbortStreak = 0
	ctx.Stats().HTMCommits++
	ctx.Charge(stats.CompHTM, s.cost.HTMCommit)
	return 0, nil
}

func (s *picoHTM) Clrex(ctx Context) {
	m := ctx.Monitor()
	if m.Txn != nil && !m.Txn.Done() {
		m.Txn.AbortNow(htm.ReasonConflict)
	}
	m.Reset()
}

func (s *picoHTM) Load(ctx Context, addr uint32) (uint32, error) {
	m := ctx.Monitor()
	if m.Txn != nil && !m.Txn.Done() {
		v, err := m.Txn.Read(addr)
		if err == nil {
			return v, nil
		}
		var ab *htm.Abort
		if !errors.As(err, &ab) {
			return 0, err
		}
		ctx.Stats().HTMAborts++
		ctx.Charge(stats.CompHTM, s.cost.HTMAbort)
		// Doomed: fall through to a direct read; SC will fail.
	}
	v, f := ctx.Mem().LoadWord(addr)
	if f != nil {
		return 0, f
	}
	return v, nil
}

func (s *picoHTM) LoadB(ctx Context, addr uint32) (uint8, error) {
	// Byte loads inside the window read the containing word
	// transactionally.
	m := ctx.Monitor()
	if m.Txn != nil && !m.Txn.Done() {
		w, err := m.Txn.Read(addr &^ 3)
		if err == nil {
			return uint8(w >> (8 * (addr & 3))), nil
		}
		var ab *htm.Abort
		if !errors.As(err, &ab) {
			return 0, err
		}
		ctx.Stats().HTMAborts++
		ctx.Charge(stats.CompHTM, s.cost.HTMAbort)
	}
	v, f := ctx.Mem().LoadByte(addr)
	if f != nil {
		return 0, f
	}
	return v, nil
}

func (s *picoHTM) Store(ctx Context, addr, val uint32) error {
	m := ctx.Monitor()
	if m.Txn != nil && !m.Txn.Done() {
		if err := m.Txn.Write(addr, val); err == nil {
			return nil
		} else {
			var ab *htm.Abort
			if !errors.As(err, &ab) {
				return err
			}
			ctx.Stats().HTMAborts++
			ctx.Charge(stats.CompHTM, s.cost.HTMAbort)
			// Doomed: apply directly below.
		}
	}
	if f := ctx.Mem().StoreWord(addr, val); f != nil {
		return f
	}
	s.tm.NotifyStore(addr)
	return nil
}

func (s *picoHTM) StoreB(ctx Context, addr uint32, val uint8) error {
	m := ctx.Monitor()
	if m.Txn != nil && !m.Txn.Done() {
		w, err := m.Txn.Read(addr &^ 3)
		if err == nil {
			shift := 8 * (addr & 3)
			nw := w&^(0xff<<shift) | uint32(val)<<shift
			if err := m.Txn.Write(addr&^3, nw); err == nil {
				return nil
			}
		}
		ctx.Stats().HTMAborts++
		ctx.Charge(stats.CompHTM, s.cost.HTMAbort)
	}
	if f := ctx.Mem().StoreByte(addr, val); f != nil {
		return f
	}
	s.tm.NotifyStore(addr &^ 3)
	return nil
}

// NoteStore implements StoreNotifier: fused RMWs conflict with open
// transactions reading the word.
func (s *picoHTM) NoteStore(ctx Context, addr uint32) {
	s.tm.NotifyStore(addr)
}
