package core

import (
	"errors"
	"sync"
	"testing"

	"atomemu/internal/htm"
	"atomemu/internal/mmu"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// fakeCtx implements Context for scheme unit tests. All fake contexts of one
// fixture share memory and an exclusive mutex; each has its own tid,
// monitor and stats.
type fakeCtx struct {
	tid  uint32
	mem  *mmu.Memory
	mon  Monitor
	st   stats.CPU
	excl *sync.Mutex
	tm   *htm.TM
	ring *obs.Ring
}

func (c *fakeCtx) TID() uint32                            { return c.tid }
func (c *fakeCtx) Mem() *mmu.Memory                       { return c.mem }
func (c *fakeCtx) Monitor() *Monitor                      { return &c.mon }
func (c *fakeCtx) StartExclusive()                        { c.excl.Lock() }
func (c *fakeCtx) EndExclusive()                          { c.excl.Unlock() }
func (c *fakeCtx) ChargeExclusive()                       { c.st.ExclSections++ }
func (c *fakeCtx) Stats() *stats.CPU                      { return &c.st }
func (c *fakeCtx) Charge(comp stats.Component, cy uint64) { c.st.Charge(comp, cy) }
func (c *fakeCtx) TM() *htm.TM                            { return c.tm }
func (c *fakeCtx) RunningCPUs() int                       { return len(c.excls()) }
func (c *fakeCtx) Tracer() *obs.Ring                      { return c.ring }

// excls is a small helper so the fake reports a plausible CPU count.
func (c *fakeCtx) excls() []int { return []int{1} }

type fixture struct {
	mem  *mmu.Memory
	excl sync.Mutex
	tm   *htm.TM
	ctxs map[uint32]*fakeCtx
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	mem := mmu.New(16 << 20)
	if err := mem.Map(0x10000, 4*mmu.PageSize, mmu.PermRW); err != nil {
		t.Fatal(err)
	}
	tm, err := htm.New(14, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{mem: mem, tm: tm, ctxs: make(map[uint32]*fakeCtx)}
}

func (f *fixture) ctx(tid uint32) *fakeCtx {
	c := f.ctxs[tid]
	if c == nil {
		c = &fakeCtx{tid: tid, mem: f.mem, excl: &f.excl, tm: f.tm}
		f.ctxs[tid] = c
	}
	return c
}

func (f *fixture) scheme(t *testing.T, name string) Scheme {
	t.Helper()
	tab, err := NewHashTable(12)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(name, Deps{Htab: tab, TM: f.tm})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const varAddr = 0x10040

func TestNewAllSchemes(t *testing.T) {
	f := newFixture(t)
	for _, name := range SchemeNames() {
		s := f.scheme(t, name)
		if s.Name() != name {
			t.Errorf("scheme %q reports name %q", name, s.Name())
		}
	}
	if _, err := New("bogus", Deps{}); err == nil {
		t.Error("unknown scheme should fail")
	}
	if _, err := New("hst", Deps{}); err == nil {
		t.Error("hst without hash table should fail")
	}
	if _, err := New("pico-htm", Deps{}); err == nil {
		t.Error("pico-htm without TM should fail")
	}
}

func TestTableIIMetadata(t *testing.T) {
	f := newFixture(t)
	want := map[string]struct {
		atom     Atomicity
		portable bool
		stores   bool
	}{
		"pico-cas":  {AtomicityIncorrect, true, false},
		"pico-st":   {AtomicityStrong, true, true},
		"pico-htm":  {AtomicityStrong, false, true},
		"hst":       {AtomicityStrong, true, true},
		"hst-weak":  {AtomicityWeak, true, false},
		"hst-htm":   {AtomicityStrong, false, true},
		"pst":       {AtomicityStrong, true, true},
		"pst-remap": {AtomicityStrong, true, true},
		"pst-mpk":   {AtomicityStrong, true, true},
	}
	for name, w := range want {
		s := f.scheme(t, name)
		if s.Atomicity() != w.atom {
			t.Errorf("%s atomicity = %v, want %v", name, s.Atomicity(), w.atom)
		}
		if s.Portable() != w.portable {
			t.Errorf("%s portable = %v, want %v", name, s.Portable(), w.portable)
		}
		if s.InstrumentsStores() != w.stores {
			t.Errorf("%s instrumentsStores = %v, want %v", name, s.InstrumentsStores(), w.stores)
		}
	}
}

// basicLLSC checks the happy path: LL reads, SC with no interference
// succeeds, a second SC without LL fails.
func basicLLSC(t *testing.T, name string) {
	t.Helper()
	f := newFixture(t)
	s := f.scheme(t, name)
	a := f.ctx(1)
	if f := f.mem.StoreWord(varAddr, 100); f != nil {
		t.Fatal(f)
	}
	v, err := s.LL(a, varAddr)
	if err != nil || v != 100 {
		t.Fatalf("%s: LL = %d, %v", name, v, err)
	}
	st, err := s.SC(a, varAddr, 101)
	if err != nil || st != 0 {
		t.Fatalf("%s: SC = %d, %v", name, st, err)
	}
	got, _ := f.mem.LoadWord(varAddr)
	if got != 101 {
		t.Fatalf("%s: value after SC = %d", name, got)
	}
	// SC without a preceding LL must fail.
	st, err = s.SC(a, varAddr, 102)
	if err != nil || st != 1 {
		t.Fatalf("%s: orphan SC = %d, %v (want failure)", name, st, err)
	}
	got, _ = f.mem.LoadWord(varAddr)
	if got != 101 {
		t.Fatalf("%s: orphan SC modified memory: %d", name, got)
	}
}

func TestBasicLLSCAllSchemes(t *testing.T) {
	for _, name := range SchemeNames() {
		t.Run(name, func(t *testing.T) { basicLLSC(t, name) })
	}
}

// interveningSC checks that an LL/SC by another thread between a thread's LL
// and SC fails the outer SC — required by weak AND strong atomicity (the
// paper's Seq2 core).
func interveningSC(t *testing.T, name string) {
	t.Helper()
	f := newFixture(t)
	s := f.scheme(t, name)
	a, b := f.ctx(1), f.ctx(2)
	f.mem.StoreWord(varAddr, 5)

	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	// Thread b: LL, SC to d, then LL, SC back to 5 (the ABA dance).
	if _, err := s.LL(b, varAddr); err != nil {
		t.Fatal(err)
	}
	if st, err := s.SC(b, varAddr, 6); err != nil || st != 0 {
		t.Fatalf("%s: b's first SC = %d, %v", name, st, err)
	}
	if _, err := s.LL(b, varAddr); err != nil {
		t.Fatal(err)
	}
	if st, err := s.SC(b, varAddr, 5); err != nil || st != 0 {
		t.Fatalf("%s: b's second SC = %d, %v", name, st, err)
	}
	// Value is back to 5 — PICO-CAS is fooled, everyone else must fail.
	st, err := s.SC(a, varAddr, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantFail := name != "pico-cas"
	if wantFail && st != 1 {
		t.Errorf("%s: SC after ABA dance succeeded — ABA problem", name)
	}
	if !wantFail && st != 0 {
		t.Errorf("pico-cas: expected the ABA success (that is its bug), got failure")
	}
}

func TestInterveningSCAllSchemes(t *testing.T) {
	for _, name := range SchemeNames() {
		t.Run(name, func(t *testing.T) { interveningSC(t, name) })
	}
}

// interveningStore checks Seq1: a plain store of the same value between LL
// and SC. Strong-atomicity schemes must fail the SC; weak/incorrect ones
// succeed.
func interveningStore(t *testing.T, name string) {
	t.Helper()
	f := newFixture(t)
	s := f.scheme(t, name)
	a, b := f.ctx(1), f.ctx(2)
	f.mem.StoreWord(varAddr, 5)

	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	// Thread b stores 6 then 5 (restoring the value) via the scheme's
	// instrumented store path (or plain stores when not instrumented).
	storeVia := func(val uint32) {
		if s.InstrumentsStores() {
			if err := s.Store(b, varAddr, val); err != nil {
				t.Fatal(err)
			}
		} else {
			if f := f.mem.StoreWord(varAddr, val); f != nil {
				t.Fatal(f)
			}
		}
	}
	storeVia(6)
	storeVia(5)
	st, err := s.SC(a, varAddr, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantFail := s.Atomicity() == AtomicityStrong
	if wantFail && st != 1 {
		t.Errorf("%s claims strong atomicity but missed an intervening store", name)
	}
	if !wantFail && st != 0 {
		t.Errorf("%s (%v) should not detect plain stores, SC = %d", name, s.Atomicity(), st)
	}
}

func TestInterveningStoreAllSchemes(t *testing.T) {
	for _, name := range SchemeNames() {
		t.Run(name, func(t *testing.T) { interveningStore(t, name) })
	}
}

// TestOwnStoreDoesNotBreakMonitor: per the architecture (paper §II-A), a
// store from the monitoring thread itself does not clear its exclusive flag.
func TestOwnStoreDoesNotBreakMonitor(t *testing.T) {
	for _, name := range []string{"pico-st", "hst", "pst", "pst-remap", "pst-mpk"} {
		t.Run(name, func(t *testing.T) {
			f := newFixture(t)
			s := f.scheme(t, name)
			a := f.ctx(1)
			f.mem.StoreWord(varAddr, 5)
			if _, err := s.LL(a, varAddr); err != nil {
				t.Fatal(err)
			}
			if err := s.Store(a, varAddr, 6); err != nil {
				t.Fatal(err)
			}
			st, err := s.SC(a, varAddr, 7)
			if err != nil || st != 0 {
				t.Fatalf("own store broke the monitor: SC = %d, %v", st, err)
			}
		})
	}
}

func TestClrexDropsMonitor(t *testing.T) {
	for _, name := range SchemeNames() {
		t.Run(name, func(t *testing.T) {
			f := newFixture(t)
			s := f.scheme(t, name)
			a := f.ctx(1)
			if _, err := s.LL(a, varAddr); err != nil {
				t.Fatal(err)
			}
			s.Clrex(a)
			st, err := s.SC(a, varAddr, 9)
			if err != nil || st != 1 {
				t.Fatalf("SC after clrex = %d, %v (want failure)", st, err)
			}
		})
	}
}

func TestLLToDifferentAddressFailsOldSC(t *testing.T) {
	// Only one monitor per thread: LL y after LL x means SC x fails.
	for _, name := range SchemeNames() {
		t.Run(name, func(t *testing.T) {
			f := newFixture(t)
			s := f.scheme(t, name)
			a := f.ctx(1)
			const x, y = varAddr, varAddr + 0x100
			if _, err := s.LL(a, x); err != nil {
				t.Fatal(err)
			}
			if _, err := s.LL(a, y); err != nil {
				t.Fatal(err)
			}
			st, err := s.SC(a, x, 1)
			if err != nil || st != 1 {
				t.Fatalf("SC to superseded address = %d, %v (want failure)", st, err)
			}
			st, err = s.SC(a, y, 2)
			// The failed SC to x dropped the monitor entirely (matching the
			// architectural rule that any SC consumes the monitor).
			if err != nil || st != 1 {
				t.Fatalf("SC after consuming SC = %d, %v", st, err)
			}
		})
	}
}

func TestPSTFalseSharingCounted(t *testing.T) {
	f := newFixture(t)
	s := f.scheme(t, "pst")
	a, b := f.ctx(1), f.ctx(2)
	f.mem.StoreWord(varAddr, 1)
	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	// b stores to the same page, different word: false sharing.
	other := uint32(varAddr + 64)
	if err := s.Store(b, other, 42); err != nil {
		t.Fatal(err)
	}
	if b.st.PageFaults != 1 || b.st.FalseSharing != 1 {
		t.Errorf("faults=%d falseSharing=%d, want 1/1", b.st.PageFaults, b.st.FalseSharing)
	}
	// The store landed despite the read-only page.
	if v, _ := f.mem.LoadWord(other); v != 42 {
		t.Errorf("false-sharing store lost: %d", v)
	}
	// And the monitor survived.
	st, err := s.SC(a, varAddr, 2)
	if err != nil || st != 0 {
		t.Fatalf("SC after false sharing = %d, %v", st, err)
	}
	// Page protection restored after the last monitor left.
	if p := f.mem.PermAt(varAddr); p != mmu.PermRW {
		t.Errorf("page perm after SC = %v, want rw-", p)
	}
}

func TestPSTStoreToUnmappedStillFaults(t *testing.T) {
	f := newFixture(t)
	s := f.scheme(t, "pst")
	b := f.ctx(2)
	err := s.Store(b, 0x4000_0000, 1)
	var fault *mmu.Fault
	if !errors.As(err, &fault) || fault.Kind != mmu.FaultUnmapped {
		t.Fatalf("expected unmapped fault, got %v", err)
	}
}

func TestPSTRemapWindowBlocksAndResumes(t *testing.T) {
	f := newFixture(t)
	s := f.scheme(t, "pst-remap").(*pstRemap)
	a, b := f.ctx(1), f.ctx(2)
	f.mem.StoreWord(varAddr, 10)

	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	// Open the remap window by hand: lock the page and remap.
	base := mmu.PageBase(varAddr)
	p := s.lookup(base)
	p.pmu.Lock()
	alias := s.aliasFor(a.TID())
	if err := f.mem.Remap(base, alias, mmu.PermRW); err != nil {
		t.Fatal(err)
	}
	// b's store now faults MAPERR and must block until the window closes.
	done := make(chan error, 1)
	go func() { done <- s.Store(b, varAddr+8, 77) }()
	select {
	case err := <-done:
		t.Fatalf("store completed during remap window: %v", err)
	default:
	}
	// Close the window.
	if err := f.mem.Remap(alias, base, mmu.PermRead); err != nil {
		t.Fatal(err)
	}
	p.pmu.Unlock()
	if err := <-done; err != nil {
		t.Fatalf("store after window: %v", err)
	}
	if v, _ := f.mem.LoadWord(varAddr + 8); v != 77 {
		t.Errorf("blocked store lost: %d", v)
	}
	// a's SC still works (its monitor was not on varAddr+8... it was on
	// varAddr — but b's store was false sharing, monitor intact).
	st, err := s.SC(a, varAddr, 11)
	if err != nil || st != 0 {
		t.Fatalf("SC = %d, %v", st, err)
	}
	if perm := f.mem.PermAt(base); perm != mmu.PermRW {
		t.Errorf("page perm after last SC = %v, want rw-", perm)
	}
}

func TestPicoHTMDoomedWindowFailsSC(t *testing.T) {
	f := newFixture(t)
	s := f.scheme(t, "pico-htm")
	a := f.ctx(1)
	f.mem.StoreWord(varAddr, 3)
	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	// Emulation work inside the window aborts the transaction.
	a.mon.Txn.AbortNow(htm.ReasonEmulation)
	// Loads still work (direct, doomed mode).
	v, err := s.Load(a, varAddr)
	if err != nil || v != 3 {
		t.Fatalf("doomed load = %d, %v", v, err)
	}
	st, err := s.SC(a, varAddr, 4)
	if err != nil || st != 1 {
		t.Fatalf("doomed SC = %d, %v (must fail)", st, err)
	}
	if v, _ := f.mem.LoadWord(varAddr); v != 3 {
		t.Errorf("doomed SC wrote memory: %d", v)
	}
}

func TestPicoHTMLivelockDetection(t *testing.T) {
	f := newFixture(t)
	res := &Resilience{StrictPaper: true}
	s := NewPicoHTM(f.scheme(t, "pico-cas").(*picoCAS).cost, f.tm, res).(*picoHTM)
	s.livelockLimit = 3
	a := f.ctx(1)
	// Force repeated aborts: hold a conflicting lock from another txn.
	blocker := f.tm.Begin(99, func(addr uint32) (uint32, error) { return 0, nil })
	if err := blocker.Write(varAddr, 9); err != nil {
		t.Fatal(err)
	}
	_, err := s.LL(a, varAddr)
	var ee *EmulationError
	if !errors.As(err, &ee) {
		t.Fatalf("expected livelock EmulationError, got %v", err)
	}
	blocker.AbortNow(htm.ReasonSyscall)
}

func TestHSTCollisionFailsSCButNeverLies(t *testing.T) {
	f := newFixture(t)
	tab, err := NewHashTable(4) // tiny: collisions guaranteed
	if err != nil {
		t.Fatal(err)
	}
	cm := DefaultCostModel()
	s := NewHST(&cm, tab)
	a, b := f.ctx(1), f.ctx(2)
	f.mem.StoreWord(varAddr, 1)
	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	// b stores to an address that collides with varAddr in a 16-entry table.
	collide := uint32(varAddr + 16*4)
	if !tab.Collides(varAddr, collide) {
		t.Fatal("test setup: addresses should collide")
	}
	if err := s.Store(b, collide, 9); err != nil {
		t.Fatal(err)
	}
	// Spurious failure — safe direction.
	st, err := s.SC(a, varAddr, 2)
	if err != nil || st != 1 {
		t.Fatalf("SC with colliding store = %d, %v (must fail spuriously)", st, err)
	}
	if v, _ := f.mem.LoadWord(varAddr); v != 1 {
		t.Errorf("failed SC wrote memory: %d", v)
	}
}

func TestHSTProfiledCountsCollisions(t *testing.T) {
	f := newFixture(t)
	tab, err := NewHashTable(4)
	if err != nil {
		t.Fatal(err)
	}
	cm := DefaultCostModel()
	s := NewHSTProfiled(&cm, tab)
	a := f.ctx(1)
	if err := s.Store(a, varAddr, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(a, varAddr+16*4, 2); err != nil { // collides
		t.Fatal(err)
	}
	if a.st.HashConflicts != 1 {
		t.Errorf("HashConflicts = %d, want 1", a.st.HashConflicts)
	}
}

func TestPicoSTConcurrentStoresBreakMonitors(t *testing.T) {
	f := newFixture(t)
	s := f.scheme(t, "pico-st")
	a, b := f.ctx(1), f.ctx(2)
	f.mem.StoreWord(varAddr, 5)
	if _, err := s.LL(a, varAddr); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(b, varAddr, 5); err != nil { // same value!
		t.Fatal(err)
	}
	st, err := s.SC(a, varAddr, 6)
	if err != nil || st != 1 {
		t.Fatalf("pico-st missed a same-value store: SC = %d, %v", st, err)
	}
}

func TestAtomicityString(t *testing.T) {
	if AtomicityStrong.String() != "strong" || AtomicityWeak.String() != "weak" ||
		AtomicityIncorrect.String() != "incorrect" {
		t.Error("atomicity strings wrong")
	}
}

func TestEmulationErrorFormat(t *testing.T) {
	e := &EmulationError{Scheme: "pico-htm", Reason: "livelock"}
	if e.Error() == "" {
		t.Error("empty error string")
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	cm := DefaultCostModel()
	if cm.HelperCall <= cm.HashInline {
		t.Error("helper calls must cost more than inline hash ops — the HST vs PICO-ST premise")
	}
	if cm.MProtect <= cm.HostAtomic {
		t.Error("mprotect must dominate atomic ops — the PST premise")
	}
	if cm.PageFault <= cm.MProtect/2 {
		t.Error("page faults should be expensive")
	}
}
