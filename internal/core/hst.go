package core

import (
	"sync/atomic"

	"atomemu/internal/hashtab"
	"atomemu/internal/mmu"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// hst is the paper's Hash Table-Based Store Test (§III-A, Fig. 4/5), the
// headline scheme. A flat non-blocking hash table records the thread id of
// the last instrumented access to every (aliased) word:
//
//	LL    x: Htable_set(x, tid); load x
//	store x: Htable_set(x, tid); store x        (one inline atomic store)
//	SC    x: start_exclusive
//	         if monitor armed and Htable_check(x) == tid: store x; success
//	         end_exclusive
//
// Any store or LL by another thread between the LL and the SC flips the
// entry and fails the SC — strong atomicity. Hash collisions (distinct
// addresses sharing an entry) only cause spurious SC failures, which the
// guest retries; the paper measures them at 2.4% on PARSEC.
//
// Faithfulness note: like the paper's design, a thread's *own* store to an
// address that collides with its active monitor rewrites the entry with its
// own tid and therefore does not break the monitor; the window this opens
// requires self-collision within one LL/SC region and is accepted by the
// paper.
type hst struct {
	plainLoads
	cost *CostModel
	tab  *hashtab.Table
	// shadow, when non-nil, records the last address stored into each
	// entry so genuine collisions can be counted (profiling only).
	shadow []atomic.Uint32
}

// NewHST constructs the HST scheme.
func NewHST(cost *CostModel, tab *hashtab.Table) Scheme {
	return &hst{cost: cost, tab: tab}
}

// NewHSTProfiled constructs HST with collision profiling enabled.
func NewHSTProfiled(cost *CostModel, tab *hashtab.Table) Scheme {
	return &hst{cost: cost, tab: tab, shadow: make([]atomic.Uint32, tab.Len())}
}

func (s *hst) Name() string            { return "hst" }
func (s *hst) Atomicity() Atomicity    { return AtomicityStrong }
func (s *hst) Portable() bool          { return true }
func (s *hst) InstrumentsStores() bool { return true }

func (s *hst) set(ctx Context, addr, tid uint32) {
	if s.shadow != nil {
		if prev := s.shadow[s.tab.Index(addr)].Swap(addr); prev != 0 && prev != addr {
			ctx.Stats().HashConflicts++
			ctx.Tracer().Emit(obs.EvHashConflict, addr, uint64(prev))
		}
	}
	s.tab.Set(addr, tid)
}

func (s *hst) LL(ctx Context, addr uint32) (uint32, error) {
	ctx.Charge(stats.CompInstrument, s.cost.HashInline)
	s.set(ctx, addr, ctx.TID())
	v, f := ctx.Mem().LoadWord(addr)
	if f != nil {
		return 0, f
	}
	m := ctx.Monitor()
	m.Active = true
	m.Addr = addr
	m.Val = v
	return v, nil
}

func (s *hst) SC(ctx Context, addr, val uint32) (uint32, error) {
	m := ctx.Monitor()
	defer m.Reset()
	if !m.Active || m.Addr != addr {
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCNoMonitor)
		return 1, nil
	}
	ctx.StartExclusive()
	defer ctx.EndExclusive()
	ctx.Charge(stats.CompInstrument, s.cost.HashInline)
	if !s.tab.CheckOwner(addr, ctx.TID()) {
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCHashStolen)
		return 1, nil
	}
	if f := ctx.Mem().StoreWord(addr, val); f != nil {
		return 1, f
	}
	return 0, nil
}

func (s *hst) Clrex(ctx Context) { ctx.Monitor().Reset() }

func (s *hst) Store(ctx Context, addr, val uint32) error {
	ctx.Charge(stats.CompInstrument, s.cost.HashInline)
	s.set(ctx, addr, ctx.TID())
	if f := ctx.Mem().StoreWord(addr, val); f != nil {
		return f
	}
	return nil
}

func (s *hst) StoreB(ctx Context, addr uint32, val uint8) error {
	ctx.Charge(stats.CompInstrument, s.cost.HashInline)
	s.set(ctx, addr&^3, ctx.TID())
	if f := ctx.Mem().StoreByte(addr, val); f != nil {
		return f
	}
	return nil
}

// hstWeak is HST-WEAK (§III-C, Fig. 7): the store instrumentation is
// dropped entirely — only LL and SC touch the hash table, and the SC uses
// the entry itself as a tiny lock instead of stopping the world. Conflicts
// among LL/SC pairs are still caught (the entry carries the claiming
// thread's id), but a plain store between LL and SC goes unnoticed: weak
// atomicity, the same level QEMU's PICO-CAS aims for, at far lower cost
// than full HST.
type hstWeak struct {
	noInstrumentation
	cost *CostModel
	tab  *hashtab.Table
}

// NewHSTWeak constructs the HST-WEAK scheme.
func NewHSTWeak(cost *CostModel, tab *hashtab.Table) Scheme {
	return &hstWeak{cost: cost, tab: tab}
}

func (s *hstWeak) Name() string         { return "hst-weak" }
func (s *hstWeak) Atomicity() Atomicity { return AtomicityWeak }
func (s *hstWeak) Portable() bool       { return true }

func (s *hstWeak) LL(ctx Context, addr uint32) (uint32, error) {
	ctx.Charge(stats.CompInstrument, s.cost.HashInline)
	// SetWait respects a concurrent SC's entry lock; overwriting it would
	// let two SCs into their critical sections at once. The spin is
	// bounded: a holder that never releases (a wedged or faulted vCPU)
	// raises a watchdog diagnostic instead of hanging this vCPU forever.
	if !s.tab.SetWait(addr, ctx.TID()) {
		budget := s.tab.SpinBudget
		if budget <= 0 {
			budget = hashtab.DefaultSpinBudget
		}
		ctx.Stats().WatchdogTrips++
		ctx.Tracer().Emit(obs.EvWatchdogTrip, addr, uint64(budget))
		return 0, &WatchdogError{
			Scheme:    s.Name(),
			TID:       ctx.TID(),
			Addr:      addr,
			Kind:      "hash-entry lock spin",
			Fails:     uint64(budget),
			HashOwner: s.tab.Get(addr),
			HasOwner:  true,
		}
	}
	v, f := ctx.Mem().LoadWord(addr)
	if f != nil {
		return 0, f
	}
	m := ctx.Monitor()
	m.Active = true
	m.Addr = addr
	m.Val = v
	return v, nil
}

func (s *hstWeak) SC(ctx Context, addr, val uint32) (uint32, error) {
	m := ctx.Monitor()
	defer m.Reset()
	if !m.Active || m.Addr != addr {
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCNoMonitor)
		return 1, nil
	}
	tid := ctx.TID()
	ctx.Charge(stats.CompInstrument, s.cost.HashInline+s.cost.HostAtomic)
	if !s.tab.Lock(addr, tid) {
		// Entry stolen by another thread's LL or SC since our LL.
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCLockStolen)
		return 1, nil
	}
	f := ctx.Mem().StoreWord(addr, val)
	s.tab.Unlock(addr, tid)
	if f != nil {
		return 1, f
	}
	return 0, nil
}

func (s *hstWeak) Clrex(ctx Context) { ctx.Monitor().Reset() }

// NoteStore implements StoreNotifier: a fused RMW claims the word's hash
// entry just like an instrumented store, breaking foreign monitors.
func (s *hst) NoteStore(ctx Context, addr uint32) {
	ctx.Charge(stats.CompInstrument, s.cost.HashInline)
	s.set(ctx, addr, ctx.TID())
}

// HashOwner implements HashOwnerReporter for watchdog diagnostics.
func (s *hst) HashOwner(addr uint32) (uint32, bool) {
	return s.tab.Get(addr), true
}

// Snapshot captures the store-test table (the scheme's only global state;
// the profiling shadow is excluded — it feeds a census, not correctness).
func (s *hst) Snapshot() any { return s.tab.Snapshot() }

// Restore re-installs a captured table.
func (s *hst) Restore(mem *mmu.Memory, snap any) {
	if entries, ok := snap.([]uint32); ok {
		s.tab.Restore(entries)
	}
}

// Snapshot captures the store-test table; LockBits are dropped so a stuck
// SC entry lock cannot survive rollback.
func (s *hstWeak) Snapshot() any { return s.tab.Snapshot() }

// Restore re-installs a captured table.
func (s *hstWeak) Restore(mem *mmu.Memory, snap any) {
	if entries, ok := snap.([]uint32); ok {
		s.tab.Restore(entries)
	}
}

// HashOwner implements HashOwnerReporter for watchdog diagnostics.
func (s *hstWeak) HashOwner(addr uint32) (uint32, bool) {
	return s.tab.Get(addr), true
}
