package core

import (
	"errors"

	"atomemu/internal/hashtab"
	"atomemu/internal/htm"
	"atomemu/internal/mmu"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// hstHTM is HST-HTM (§III-B, Fig. 6): identical instrumentation to HST, but
// the SC's check-and-update critical section runs as a hardware transaction
// instead of a stop-the-world exclusive section. Crucially — and unlike
// PICO-HTM — only the SC emulation itself is transactional, so no QEMU
// emulation work can land inside the transaction and livelock it.
//
// The transaction's footprint is the hash entry plus the guest word. Hash
// entries are mapped into the transactional address space at
// entrySpaceBit|index<<2; the plain-store path publishes entry updates
// through TM.NotifyStore at that synthetic address, which is how a
// conflicting store aborts an in-flight SC.
// Resilience: the default policy replaces the fixed attempt count with
// reason-aware backoff — retryable aborts wait (exponential + per-tid
// jitter) before re-issuing the transaction, non-retryable aborts and an
// exhausted budget demote the monitor, after which SCs go straight to the
// stop-the-world fallback for a cooldown's worth of windows instead of
// burning a fresh abort storm each time. StrictPaper keeps the original
// fixed-count behavior.
type hstHTM struct {
	plainLoads
	cost *CostModel
	tab  *hashtab.Table
	tm   *htm.TM
	res  Resilience
	// fallbackAfter is the abort count after which the SC falls back to
	// the stop-the-world path (StrictPaper's forward progress guarantee).
	fallbackAfter int
}

// entrySpaceBit distinguishes hash-table entries from guest addresses in
// the transactional address space. Guest images must stay below 2 GiB when
// an HTM scheme is active (the engine's default layout does).
const entrySpaceBit uint32 = 1 << 31

// NewHSTHTM constructs the HST-HTM scheme. A nil res means the default
// resilient policy; res.StrictPaper restores the fixed-count fallback.
func NewHSTHTM(cost *CostModel, tab *hashtab.Table, tm *htm.TM, res *Resilience) Scheme {
	r := DefaultResilience()
	if res != nil {
		r = res.normalized()
	}
	return &hstHTM{cost: cost, tab: tab, tm: tm, res: r, fallbackAfter: 8}
}

func (s *hstHTM) Name() string            { return "hst-htm" }
func (s *hstHTM) Atomicity() Atomicity    { return AtomicityStrong }
func (s *hstHTM) Portable() bool          { return false }
func (s *hstHTM) InstrumentsStores() bool { return true }

func (s *hstHTM) entryAddr(addr uint32) uint32 {
	return entrySpaceBit | s.tab.Index(addr)<<2
}

// txLoad dispatches transactional reads to the hash table or guest memory.
func (s *hstHTM) txLoad(ctx Context) func(addr uint32) (uint32, error) {
	return func(addr uint32) (uint32, error) {
		if addr&entrySpaceBit != 0 {
			return s.tab.LoadIndex(addr &^ entrySpaceBit >> 2), nil
		}
		v, f := ctx.Mem().LoadWord(addr)
		if f != nil {
			return 0, f
		}
		return v, nil
	}
}

// txStore dispatches transactional commits.
func (s *hstHTM) txStore(ctx Context) func(addr, val uint32) error {
	return func(addr, val uint32) error {
		if addr&entrySpaceBit != 0 {
			s.tab.StoreIndex(addr&^entrySpaceBit>>2, val)
			return nil
		}
		if f := ctx.Mem().StoreWord(addr, val); f != nil {
			return f
		}
		return nil
	}
}

func (s *hstHTM) setAndNotify(addr, tid uint32) {
	s.tab.Set(addr, tid)
	s.tm.NotifyStore(entrySpaceBit | s.tab.Index(addr)<<2)
}

func (s *hstHTM) LL(ctx Context, addr uint32) (uint32, error) {
	ctx.Charge(stats.CompInstrument, s.cost.HashInline)
	s.setAndNotify(addr, ctx.TID())
	v, f := ctx.Mem().LoadWord(addr)
	if f != nil {
		return 0, f
	}
	m := ctx.Monitor()
	m.Active = true
	m.Addr = addr
	m.Val = v
	return v, nil
}

// scFallback is the HST stop-the-world critical section — the portable
// guaranteed-progress path.
func (s *hstHTM) scFallback(ctx Context, addr, val, tid uint32) (uint32, error) {
	ctx.StartExclusive()
	defer ctx.EndExclusive()
	if !s.tab.CheckOwner(addr, tid) {
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCHashStolen)
		return 1, nil
	}
	if f := ctx.Mem().StoreWord(addr, val); f != nil {
		return 1, f
	}
	return 0, nil
}

// scAbort accounts one transactional-attempt abort and decides what the
// SC does next: retry (after backoff), or demote and take the fallback.
func (s *hstHTM) scAbort(ctx Context, reason htm.AbortReason, attempt int) (retry bool) {
	ctx.Stats().HTMAborts++
	ctx.Tracer().Emit(obs.EvHTMAbort, 0, uint64(reason))
	ctx.Charge(stats.CompHTM, s.cost.HTMAbort)
	if s.res.StrictPaper {
		return true // the attempt counter provides the bound
	}
	if s.res.backoffRetry(ctx, reason, attempt) {
		return true
	}
	s.res.demote(ctx)
	return false
}

func (s *hstHTM) SC(ctx Context, addr, val uint32) (uint32, error) {
	m := ctx.Monitor()
	defer m.Reset()
	if !m.Active || m.Addr != addr {
		ctx.Tracer().Emit(obs.EvSCFail, addr, obs.SCNoMonitor)
		return 1, nil
	}
	tid := ctx.TID()
	if !s.res.StrictPaper && s.res.inCooldown(m) {
		// Demoted: skip the transactional attempts for the rest of the
		// cooldown instead of re-running an abort storm per SC.
		return s.scFallback(ctx, addr, val, tid)
	}
	load, store := s.txLoad(ctx), s.txStore(ctx)
	for attempt := 1; ; attempt++ {
		if s.res.StrictPaper && attempt > s.fallbackAfter {
			return s.scFallback(ctx, addr, val, tid)
		}
		ctx.Charge(stats.CompHTM, s.cost.HTMBegin)
		txn := s.tm.Begin(tid, load)
		owner, err := txn.Read(s.entryAddr(addr))
		if err != nil {
			var ab *htm.Abort
			if errors.As(err, &ab) {
				if s.scAbort(ctx, ab.Reason, attempt) {
					continue
				}
				return s.scFallback(ctx, addr, val, tid)
			}
			return 1, err
		}
		if owner != tid {
			// Entry changed since our LL: genuine SC failure, not an abort.
			txn.AbortNow(htm.ReasonConflict)
			return 1, nil
		}
		if err := txn.Write(addr, val); err != nil {
			reason := htm.ReasonConflict
			var ab *htm.Abort
			if errors.As(err, &ab) {
				reason = ab.Reason
			}
			if s.scAbort(ctx, reason, attempt) {
				continue
			}
			return s.scFallback(ctx, addr, val, tid)
		}
		if err := txn.Commit(store); err != nil {
			var ab *htm.Abort
			if errors.As(err, &ab) {
				if s.scAbort(ctx, ab.Reason, attempt) {
					continue
				}
				return s.scFallback(ctx, addr, val, tid)
			}
			return 1, err
		}
		ctx.Stats().HTMCommits++
		ctx.Charge(stats.CompHTM, s.cost.HTMCommit)
		return 0, nil
	}
}

func (s *hstHTM) Clrex(ctx Context) { ctx.Monitor().Reset() }

func (s *hstHTM) Store(ctx Context, addr, val uint32) error {
	ctx.Charge(stats.CompInstrument, s.cost.HashInline)
	s.setAndNotify(addr, ctx.TID())
	if f := ctx.Mem().StoreWord(addr, val); f != nil {
		return f
	}
	s.tm.NotifyStore(addr)
	return nil
}

func (s *hstHTM) StoreB(ctx Context, addr uint32, val uint8) error {
	ctx.Charge(stats.CompInstrument, s.cost.HashInline)
	s.setAndNotify(addr&^3, ctx.TID())
	if f := ctx.Mem().StoreByte(addr, val); f != nil {
		return f
	}
	s.tm.NotifyStore(addr &^ 3)
	return nil
}

// NoteStore implements StoreNotifier for fused RMWs.
func (s *hstHTM) NoteStore(ctx Context, addr uint32) {
	ctx.Charge(stats.CompInstrument, s.cost.HashInline)
	s.setAndNotify(addr, ctx.TID())
	s.tm.NotifyStore(addr)
}

// HashOwner implements HashOwnerReporter for watchdog diagnostics.
func (s *hstHTM) HashOwner(addr uint32) (uint32, bool) {
	return s.tab.Get(addr), true
}

// hstHTMSnap is HST-HTM's checkpoint payload: the store-test table plus
// the TM slot words (entries live in the transactional address space, so
// both must roll back together).
type hstHTMSnap struct {
	entries []uint32
	words   []uint64
}

// Snapshot captures the table and the TM slot words.
func (s *hstHTM) Snapshot() any {
	return &hstHTMSnap{entries: s.tab.Snapshot(), words: s.tm.SnapshotWords()}
}

// Restore re-installs both; live transactions were aborted by the engine's
// monitor disarm beforehand.
func (s *hstHTM) Restore(mem *mmu.Memory, snap any) {
	if hs, ok := snap.(*hstHTMSnap); ok {
		s.tab.Restore(hs.entries)
		s.tm.RestoreWords(hs.words)
	}
}
