package core

import (
	"errors"

	"atomemu/internal/hashtab"
	"atomemu/internal/htm"
	"atomemu/internal/stats"
)

// hstHTM is HST-HTM (§III-B, Fig. 6): identical instrumentation to HST, but
// the SC's check-and-update critical section runs as a hardware transaction
// instead of a stop-the-world exclusive section. Crucially — and unlike
// PICO-HTM — only the SC emulation itself is transactional, so no QEMU
// emulation work can land inside the transaction and livelock it.
//
// The transaction's footprint is the hash entry plus the guest word. Hash
// entries are mapped into the transactional address space at
// entrySpaceBit|index<<2; the plain-store path publishes entry updates
// through TM.NotifyStore at that synthetic address, which is how a
// conflicting store aborts an in-flight SC.
type hstHTM struct {
	plainLoads
	cost *CostModel
	tab  *hashtab.Table
	tm   *htm.TM
	// fallbackAfter is the abort count after which the SC falls back to
	// the stop-the-world path (forward progress guarantee).
	fallbackAfter int
}

// entrySpaceBit distinguishes hash-table entries from guest addresses in
// the transactional address space. Guest images must stay below 2 GiB when
// an HTM scheme is active (the engine's default layout does).
const entrySpaceBit uint32 = 1 << 31

// NewHSTHTM constructs the HST-HTM scheme.
func NewHSTHTM(cost *CostModel, tab *hashtab.Table, tm *htm.TM) Scheme {
	return &hstHTM{cost: cost, tab: tab, tm: tm, fallbackAfter: 8}
}

func (s *hstHTM) Name() string            { return "hst-htm" }
func (s *hstHTM) Atomicity() Atomicity    { return AtomicityStrong }
func (s *hstHTM) Portable() bool          { return false }
func (s *hstHTM) InstrumentsStores() bool { return true }

func (s *hstHTM) entryAddr(addr uint32) uint32 {
	return entrySpaceBit | s.tab.Index(addr)<<2
}

// txLoad dispatches transactional reads to the hash table or guest memory.
func (s *hstHTM) txLoad(ctx Context) func(addr uint32) (uint32, error) {
	return func(addr uint32) (uint32, error) {
		if addr&entrySpaceBit != 0 {
			return s.tab.LoadIndex(addr &^ entrySpaceBit >> 2), nil
		}
		v, f := ctx.Mem().LoadWord(addr)
		if f != nil {
			return 0, f
		}
		return v, nil
	}
}

// txStore dispatches transactional commits.
func (s *hstHTM) txStore(ctx Context) func(addr, val uint32) error {
	return func(addr, val uint32) error {
		if addr&entrySpaceBit != 0 {
			s.tab.StoreIndex(addr&^entrySpaceBit>>2, val)
			return nil
		}
		if f := ctx.Mem().StoreWord(addr, val); f != nil {
			return f
		}
		return nil
	}
}

func (s *hstHTM) setAndNotify(addr, tid uint32) {
	s.tab.Set(addr, tid)
	s.tm.NotifyStore(entrySpaceBit | s.tab.Index(addr)<<2)
}

func (s *hstHTM) LL(ctx Context, addr uint32) (uint32, error) {
	ctx.Charge(stats.CompInstrument, s.cost.HashInline)
	s.setAndNotify(addr, ctx.TID())
	v, f := ctx.Mem().LoadWord(addr)
	if f != nil {
		return 0, f
	}
	m := ctx.Monitor()
	m.Active = true
	m.Addr = addr
	m.Val = v
	return v, nil
}

func (s *hstHTM) SC(ctx Context, addr, val uint32) (uint32, error) {
	m := ctx.Monitor()
	defer m.Reset()
	if !m.Active || m.Addr != addr {
		return 1, nil
	}
	tid := ctx.TID()
	load, store := s.txLoad(ctx), s.txStore(ctx)
	for attempt := 0; ; attempt++ {
		if attempt >= s.fallbackAfter {
			// Fallback path: the HST stop-the-world critical section.
			ctx.StartExclusive()
			defer ctx.EndExclusive()
			if !s.tab.CheckOwner(addr, tid) {
				return 1, nil
			}
			if f := ctx.Mem().StoreWord(addr, val); f != nil {
				return 1, f
			}
			return 0, nil
		}
		ctx.Charge(stats.CompHTM, s.cost.HTMBegin)
		txn := s.tm.Begin(load)
		owner, err := txn.Read(s.entryAddr(addr))
		if err != nil {
			var ab *htm.Abort
			if errors.As(err, &ab) {
				ctx.Stats().HTMAborts++
				ctx.Charge(stats.CompHTM, s.cost.HTMAbort)
				continue
			}
			return 1, err
		}
		if owner != tid {
			// Entry changed since our LL: genuine SC failure, not an abort.
			txn.AbortNow(htm.ReasonConflict)
			return 1, nil
		}
		if err := txn.Write(addr, val); err != nil {
			ctx.Stats().HTMAborts++
			ctx.Charge(stats.CompHTM, s.cost.HTMAbort)
			continue
		}
		if err := txn.Commit(store); err != nil {
			var ab *htm.Abort
			if errors.As(err, &ab) {
				ctx.Stats().HTMAborts++
				ctx.Charge(stats.CompHTM, s.cost.HTMAbort)
				continue
			}
			return 1, err
		}
		ctx.Stats().HTMCommits++
		ctx.Charge(stats.CompHTM, s.cost.HTMCommit)
		return 0, nil
	}
}

func (s *hstHTM) Clrex(ctx Context) { ctx.Monitor().Reset() }

func (s *hstHTM) Store(ctx Context, addr, val uint32) error {
	ctx.Charge(stats.CompInstrument, s.cost.HashInline)
	s.setAndNotify(addr, ctx.TID())
	if f := ctx.Mem().StoreWord(addr, val); f != nil {
		return f
	}
	s.tm.NotifyStore(addr)
	return nil
}

func (s *hstHTM) StoreB(ctx Context, addr uint32, val uint8) error {
	ctx.Charge(stats.CompInstrument, s.cost.HashInline)
	s.setAndNotify(addr&^3, ctx.TID())
	if f := ctx.Mem().StoreByte(addr, val); f != nil {
		return f
	}
	s.tm.NotifyStore(addr &^ 3)
	return nil
}

// NoteStore implements StoreNotifier for fused RMWs.
func (s *hstHTM) NoteStore(ctx Context, addr uint32) {
	ctx.Charge(stats.CompInstrument, s.cost.HashInline)
	s.setAndNotify(addr, ctx.TID())
	s.tm.NotifyStore(addr)
}
