// Package tbstore is the process-wide content-addressed translation store:
// the cross-job answer to the per-Machine TB cache in internal/engine.
//
// Every atomemud job used to retranslate its guest image from scratch even
// when the fleet serves millions of repeat submissions of the same image —
// the sharded engine cache dies with its Machine. Here translations are
// keyed by *content*: a Key is the sha256 of the guest image span plus a
// canonical descriptor of everything that changes what a translation means
// (scheme, instrumentation options, tier/chain configuration). Two machines
// with equal keys are guaranteed to produce interchangeable blocks, so the
// first job pays decode+translate+optimize and every later job for the same
// image starts warm.
//
// Concurrency mirrors the engine cache's copy-on-write discipline: each
// key's segment holds an atomic pointer to an immutable pc→block map, so
// hits are one atomic load with no locks, and publication copies the
// snapshot under the segment's writer mutex with adopt-the-winner
// semantics — racing publishers for the same pc converge on one canonical
// block, exactly like tbCache.insert.
//
// Memory is bounded by a block cap with 2Q-flavoured eviction at segment
// granularity: a segment starts in probation and is promoted to the
// protected set the first time a second machine attaches to it (proven
// cross-job reuse). When the store exceeds its cap, probation segments are
// evicted LRU-first, so one-shot images cannot wash out the hot set.
//
// The store never invalidates entries itself: publication is guarded on the
// engine side by an MMU store-watch over the image span, so a segment only
// ever contains blocks translated from pristine image bytes (see
// DESIGN.md §13). Machines that mutate their code span detach from their
// view and count an invalidation here.
package tbstore

import (
	"sync"
	"sync/atomic"
)

// Key identifies one translation universe. Two machines whose Keys are
// equal translate identically, byte for byte.
type Key struct {
	// Image is the sha256 of the guest image span (org, entry, words).
	Image [32]byte
	// Opts is the canonical descriptor of the translation configuration:
	// scheme name, instrumentation flags, block caps, tiering and fusion
	// knobs. Kept as the full descriptor string rather than a digest so a
	// key match is exact — there is no fingerprint collision to fall back
	// from.
	Opts string
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Hits          uint64 // segment lookups that returned a block
	Misses        uint64 // segment lookups that found nothing
	Publishes     uint64 // blocks published (publish races excluded)
	Evictions     uint64 // segments cleared by the cap
	EvictedBlocks uint64 // blocks dropped by those evictions
	Invalidations uint64 // machines that detached after mutating their code span
	Segments      int    // distinct keys ever attached (live map size)
	Blocks        int    // blocks currently cached across all segments
}

// Store is a bounded content-addressed block store, generic over the block
// type so the engine can instantiate it with its own *TB without an import
// cycle. The zero Store is not usable; construct with New. A nil *Store is
// valid and inert (View returns nil).
type Store[V any] struct {
	maxBlocks int

	hits          atomic.Uint64
	misses        atomic.Uint64
	publishes     atomic.Uint64
	evictions     atomic.Uint64
	evictedBlocks atomic.Uint64
	invalidations atomic.Uint64
	blocks        atomic.Int64

	// mu guards the key map and the 2Q recency state (lastUse/protected).
	// Lock order: mu before any segment.mu (eviction); Get/Publish never
	// hold a segment.mu while taking mu.
	mu   sync.Mutex
	segs map[Key]*segment[V]
	tick uint64
}

type segment[V any] struct {
	snap atomic.Pointer[map[uint32]V] // immutable; replaced wholesale
	mu   sync.Mutex                   // serializes publishers and eviction
	n    atomic.Int64                 // blocks in snap; mutated under mu

	// 2Q state, guarded by Store.mu.
	protected bool
	lastUse   uint64
}

// New builds a store capped at maxBlocks cached blocks. maxBlocks <= 0
// returns nil: a disabled store that every View call treats as absent.
func New[V any](maxBlocks int) *Store[V] {
	if maxBlocks <= 0 {
		return nil
	}
	return &Store[V]{
		maxBlocks: maxBlocks,
		segs:      make(map[Key]*segment[V]),
	}
}

// View attaches to the segment for k, creating it (in probation) on first
// attach and promoting it to the protected set on re-attach — a second
// machine wanting the same key is the 2Q "second access" signal. Returns
// nil on a nil store.
func (s *Store[V]) View(k Key) *View[V] {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	seg := s.segs[k]
	if seg == nil {
		seg = &segment[V]{}
		s.segs[k] = seg
	} else {
		seg.protected = true
	}
	seg.lastUse = s.tick
	return &View[V]{st: s, seg: seg}
}

// NoteInvalidation records a machine detaching from its view after
// observing a guest store into its translated span.
func (s *Store[V]) NoteInvalidation() {
	if s != nil {
		s.invalidations.Add(1)
	}
}

// Stats snapshots the counters.
func (s *Store[V]) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	nseg := len(s.segs)
	s.mu.Unlock()
	return Stats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Publishes:     s.publishes.Load(),
		Evictions:     s.evictions.Load(),
		EvictedBlocks: s.evictedBlocks.Load(),
		Invalidations: s.invalidations.Load(),
		Segments:      nseg,
		Blocks:        int(s.blocks.Load()),
	}
}

// Len reports the cached block count (approximate while publishers race).
func (s *Store[V]) Len() int {
	if s == nil {
		return 0
	}
	return int(s.blocks.Load())
}

// View is one machine's handle on its key's segment. Methods are safe for
// concurrent use by the machine's vCPUs; a nil *View is inert.
type View[V any] struct {
	st  *Store[V]
	seg *segment[V]
}

// Get returns the block published for pc, if any. Lock-free: one atomic
// load of the segment snapshot.
func (v *View[V]) Get(pc uint32) (V, bool) {
	var zero V
	if v == nil {
		return zero, false
	}
	if m := v.seg.snap.Load(); m != nil {
		if val, ok := (*m)[pc]; ok {
			v.st.hits.Add(1)
			return val, true
		}
	}
	v.st.misses.Add(1)
	return zero, false
}

// Publish offers val for pc and returns the canonical block: val itself if
// this call won, or the already-published block if another machine raced us
// here first (won=false) — the same adopt-the-winner contract as the
// engine's tbCache.insert, lifted across machines.
func (v *View[V]) Publish(pc uint32, val V) (canonical V, won bool) {
	if v == nil {
		return val, false
	}
	seg := v.seg
	seg.mu.Lock()
	old := seg.snap.Load()
	if old != nil {
		if existing, ok := (*old)[pc]; ok {
			seg.mu.Unlock()
			return existing, false
		}
	}
	next := make(map[uint32]V, segLen(old)+1)
	if old != nil {
		for k, blk := range *old {
			next[k] = blk
		}
	}
	next[pc] = val
	seg.snap.Store(&next)
	seg.n.Add(1)
	seg.mu.Unlock()

	v.st.publishes.Add(1)
	if v.st.blocks.Add(1) > int64(v.st.maxBlocks) {
		v.st.evict(seg)
	}
	return val, true
}

// evict clears least-recently-attached segments — probation first, then
// protected — until the store is back under its block cap. The segment that
// triggered the eviction is spared (it is by definition the most recent).
func (s *Store[V]) evict(keep *segment[V]) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.blocks.Load() > int64(s.maxBlocks) {
		victim := s.victimLocked(keep, false)
		if victim == nil {
			victim = s.victimLocked(keep, true)
		}
		if victim == nil {
			return
		}
		victim.mu.Lock()
		victim.snap.Store(nil)
		n := victim.n.Swap(0)
		victim.mu.Unlock()
		victim.protected = false
		s.blocks.Add(-n)
		s.evictions.Add(1)
		s.evictedBlocks.Add(uint64(n))
	}
}

// victimLocked picks the LRU non-empty segment in the requested queue.
func (s *Store[V]) victimLocked(keep *segment[V], protected bool) *segment[V] {
	var victim *segment[V]
	for _, seg := range s.segs {
		if seg == keep || seg.protected != protected || seg.n.Load() == 0 {
			continue
		}
		if victim == nil || seg.lastUse < victim.lastUse {
			victim = seg
		}
	}
	return victim
}

func segLen[V any](m *map[uint32]V) int {
	if m == nil {
		return 0
	}
	return len(*m)
}
