package tbstore

import (
	"fmt"
	"sync"
	"testing"
)

func key(b byte) Key {
	var k Key
	k.Image[0] = b
	k.Opts = "scheme=test"
	return k
}

func TestNilStoreIsInert(t *testing.T) {
	s := New[int](0)
	if s != nil {
		t.Fatal("New(0) should return nil")
	}
	if v := s.View(key(1)); v != nil {
		t.Fatal("nil store View should return nil")
	}
	var v *View[int]
	if _, ok := v.Get(0x1000); ok {
		t.Fatal("nil view Get should miss")
	}
	if _, won := v.Publish(0x1000, 7); won {
		t.Fatal("nil view Publish should not win")
	}
	s.NoteInvalidation()
	if got := s.Stats(); got != (Stats{}) {
		t.Fatalf("nil store Stats = %+v, want zero", got)
	}
	if s.Len() != 0 {
		t.Fatal("nil store Len should be 0")
	}
}

func TestGetPublishRoundTrip(t *testing.T) {
	s := New[string](16)
	v := s.View(key(1))
	if _, ok := v.Get(0x1000); ok {
		t.Fatal("empty segment should miss")
	}
	if got, won := v.Publish(0x1000, "a"); !won || got != "a" {
		t.Fatalf("first publish: got %q won=%v", got, won)
	}
	if got, ok := v.Get(0x1000); !ok || got != "a" {
		t.Fatalf("Get after publish: got %q ok=%v", got, ok)
	}
	// Second view of the same key sees the published block.
	v2 := s.View(key(1))
	if got, ok := v2.Get(0x1000); !ok || got != "a" {
		t.Fatalf("second view Get: got %q ok=%v", got, ok)
	}
	// A different key is a different universe.
	v3 := s.View(key(2))
	if _, ok := v3.Get(0x1000); ok {
		t.Fatal("different key should not see the block")
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Publishes != 1 || st.Segments != 2 || st.Blocks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPublishAdoptsTheWinner(t *testing.T) {
	s := New[string](16)
	v := s.View(key(1))
	v.Publish(0x2000, "winner")
	got, won := v.Publish(0x2000, "loser")
	if won {
		t.Fatal("second publish for the same pc must lose")
	}
	if got != "winner" {
		t.Fatalf("loser must adopt the winner, got %q", got)
	}
	if st := s.Stats(); st.Publishes != 1 || st.Blocks != 1 {
		t.Fatalf("a losing publish must not count or grow the store: %+v", st)
	}
}

func TestConcurrentPublishConverges(t *testing.T) {
	s := New[int](1024)
	const goroutines = 16
	results := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := s.View(key(1))
			canonical, _ := v.Publish(0x3000, g)
			results[g] = canonical
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("publishers disagree on the canonical block: %v", results)
		}
	}
	if st := s.Stats(); st.Publishes != 1 || st.Blocks != 1 {
		t.Fatalf("exactly one publish must win: %+v", st)
	}
}

func TestEvictionPrefersProbationOverProtected(t *testing.T) {
	s := New[int](4)

	// key(1) is attached twice → protected.
	hot := s.View(key(1))
	s.View(key(1))
	hot.Publish(0x1000, 1)
	hot.Publish(0x1004, 2)

	// key(2) is a one-shot image in probation.
	cold := s.View(key(2))
	cold.Publish(0x1000, 3)
	cold.Publish(0x1004, 4)

	// key(3)'s publishes push past the cap; the probation segment key(2)
	// must be the victim even though key(1) is older.
	v3 := s.View(key(3))
	v3.Publish(0x1000, 5)

	if _, ok := hot.Get(0x1000); !ok {
		t.Fatal("protected segment was evicted while probation segments existed")
	}
	if _, ok := cold.Get(0x1000); ok {
		t.Fatal("probation segment survived past the cap")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.EvictedBlocks != 2 {
		t.Fatalf("stats = %+v, want 1 eviction of 2 blocks", st)
	}
	if st.Blocks > 4 {
		t.Fatalf("store over cap after eviction: %+v", st)
	}
}

func TestEvictionFallsBackToProtected(t *testing.T) {
	s := New[int](2)
	// Two protected segments, no probation left: the cap must still hold.
	a := s.View(key(1))
	s.View(key(1))
	b := s.View(key(2))
	s.View(key(2))
	a.Publish(0x1000, 1)
	a.Publish(0x1004, 2)
	b.Publish(0x1000, 3) // over cap; only protected victims available

	if st := s.Stats(); st.Blocks > 2 {
		t.Fatalf("cap not enforced against protected segments: %+v", st)
	}
	// The triggering segment is spared; the LRU protected one (a) is cleared.
	if _, ok := b.Get(0x1000); !ok {
		t.Fatal("the publishing segment must be spared")
	}
	if _, ok := a.Get(0x1000); ok {
		t.Fatal("LRU protected segment should have been evicted")
	}
}

func TestEvictedSegmentDemotesToProbation(t *testing.T) {
	s := New[int](4)
	// Two protected segments; b attached first so b is the protected-LRU.
	b := s.View(key(2))
	s.View(key(2))
	a := s.View(key(1))
	s.View(key(1))
	a.Publish(0x1000, 1)
	a.Publish(0x1004, 2)
	b.Publish(0x1000, 3)
	b.Publish(0x1004, 4)
	b.Publish(0x1008, 5) // over cap; a is the only non-trigger victim

	if _, ok := a.Get(0x1000); ok {
		t.Fatal("setup: a should be evicted")
	}
	// a is now demoted to probation with a NEWER lastUse than protected b.
	// Refill a through the old view (no re-attach, so no re-promotion) and
	// overflow from a third key: probation-first ordering must evict a even
	// though plain LRU would pick b.
	a.Publish(0x1000, 6)
	c := s.View(key(3))
	c.Publish(0x1000, 7)
	if _, ok := a.Get(0x1000); ok {
		t.Fatal("previously evicted segment must re-enter probation and be evicted first")
	}
	if _, ok := b.Get(0x1000); !ok {
		t.Fatal("protected segment b must survive")
	}
}

func TestInvalidationCounter(t *testing.T) {
	s := New[int](8)
	s.NoteInvalidation()
	s.NoteInvalidation()
	if st := s.Stats(); st.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", st.Invalidations)
	}
}

func TestManyKeysStayBounded(t *testing.T) {
	const cap = 32
	s := New[int](cap)
	for i := 0; i < 64; i++ {
		v := s.View(key(byte(i)))
		for pc := uint32(0); pc < 8; pc++ {
			v.Publish(0x1000+4*pc, i)
		}
	}
	if got := s.Len(); got > cap {
		t.Fatalf("Len = %d, want <= %d", got, cap)
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatal("expected evictions under sustained insert pressure")
	}
}

func TestStatsString(t *testing.T) {
	// Stats must be a plain value type usable in logs.
	s := New[int](4)
	v := s.View(key(1))
	v.Publish(0x1000, 1)
	got := fmt.Sprintf("%+v", s.Stats())
	if got == "" {
		t.Fatal("empty stats formatting")
	}
}
