// Package ir defines atomemu's TCG-like intermediate representation.
//
// The DBT frontend (internal/translate) decodes one guest basic block into a
// Block of straight-line IR operations ending in exactly one terminator.
// Registers form a single index space: slots 0..15 are the guest registers
// (live across blocks), slots 16.. are block-local temporaries. Guest NZCV
// flags live in dedicated CPU state and are written only by the OpFlags*
// operations and read only by the conditional terminator.
//
// The representation is deliberately branch-free inside a block — guest
// branches terminate blocks — which keeps the optimizer (opt.go) a set of
// simple linear passes, as in QEMU's TCG.
package ir

import (
	"fmt"
	"strings"

	"atomemu/internal/arch"
)

// RegID indexes the block's register space: 0..15 guest registers, 16..
// temporaries.
type RegID int16

// NumGuestRegs is the number of slots reserved for guest registers.
const NumGuestRegs = arch.NumRegs

// IsGuest reports whether r names a guest register (live-out of the block).
func (r RegID) IsGuest() bool { return r < NumGuestRegs }

func (r RegID) String() string {
	if r.IsGuest() {
		return arch.Reg(r).String()
	}
	return fmt.Sprintf("t%d", int(r)-NumGuestRegs)
}

// Op is an IR operation code.
type Op uint8

// IR operations. D/A/B are register operands; Imm is a 32-bit immediate.
const (
	Nop Op = iota

	// Moves.
	MovI // d = imm
	Mov  // d = a
	Not  // d = ^a

	// ALU, register-register.
	Add  // d = a + b
	Sub  // d = a - b
	And  // d = a & b
	Or   // d = a | b
	Xor  // d = a ^ b
	Mul  // d = a * b
	UDiv // d = a / b unsigned, x/0 = 0
	SDiv // d = a / b signed, x/0 = 0, MinInt32/-1 = MinInt32
	Shl  // d = a << (b & 31)
	Shr  // d = a >> (b & 31) logical
	Sar  // d = a >> (b & 31) arithmetic

	// ALU, register-immediate.
	AddI // d = a + imm
	SubI // d = a - imm
	RsbI // d = imm - a
	AndI // d = a & imm
	OrI  // d = a | imm
	XorI // d = a ^ imm
	ShlI // d = a << (imm & 31)
	ShrI // d = a >> (imm & 31) logical
	SarI // d = a >> (imm & 31) arithmetic

	// Flag-setting arithmetic (NZCV).
	FlagsAdd  // d = a + b, set NZCV
	FlagsSub  // d = a - b, set NZCV (C = no-borrow)
	FlagsAddI // d = a + imm, set NZCV
	FlagsSubI // d = a - imm, set NZCV
	FlagsNZ   // set N,Z from a; C,V unchanged (logical compares)

	// Memory. Address is a + imm (byte address).
	Load   // d = mem32[a + imm]
	LoadB  // d = mem8[a + imm]
	Store  // mem32[a + imm] = b   (uninstrumented fast path)
	StoreB // mem8[a + imm] = b
	// Instrumented stores route through the active emulation scheme's
	// store hook (the paper's "store test").
	InstrStore  // scheme.Store(a + imm, b)
	InstrStoreB // scheme.StoreB(a + imm, b)
	// Instrumented loads, for schemes that must observe reads (PICO-HTM
	// transactional reads, PST-REMAP fault waiting).
	InstrLoad  // d = scheme.Load(a + imm)
	InstrLoadB // d = scheme.LoadB(a + imm)

	// Exclusive pair and barriers — always routed through the scheme.
	LL    // d = scheme.LL(a)
	SC    // d = scheme.SC(a, b): 0 success, 1 failure
	Clrex // scheme.Clrex()
	Fence // full barrier
	// AtomicRMW is the fused form of a compiler-generated LL/SC retry loop
	// (the paper's §VI rule-based translation): d = old value of mem[a],
	// atomically replaced by old <RMWKind> operand. The operand is register
	// b, or Imm when RMWImm is set. Executed as one host atomic — no
	// emulation scheme involvement, ABA-free by construction.
	AtomicRMW

	// Terminators. Exactly one per block, as the final op.
	ExitJmp  // goto guest address Addr
	ExitCond // if cond(flags) goto Addr else goto Addr2
	ExitInd  // goto guest address in a
	Syscall  // supervisor call Imm, resume at Addr
	Halt     // stop this vCPU
	YieldOp  // scheduling hint, resume at Addr

	numOps
)

var opNames = [numOps]string{
	Nop: "nop", MovI: "movi", Mov: "mov", Not: "not",
	Add: "add", Sub: "sub", And: "and", Or: "or", Xor: "xor",
	Mul: "mul", UDiv: "udiv", SDiv: "sdiv", Shl: "shl", Shr: "shr", Sar: "sar",
	AddI: "addi", SubI: "subi", RsbI: "rsbi", AndI: "andi", OrI: "ori",
	XorI: "xori", ShlI: "shli", ShrI: "shri", SarI: "sari",
	FlagsAdd: "flags.add", FlagsSub: "flags.sub",
	FlagsAddI: "flags.addi", FlagsSubI: "flags.subi", FlagsNZ: "flags.nz",
	Load: "ld32", LoadB: "ld8", Store: "st32", StoreB: "st8",
	InstrStore: "st32.instr", InstrStoreB: "st8.instr",
	InstrLoad: "ld32.instr", InstrLoadB: "ld8.instr",
	LL: "ll", SC: "sc", Clrex: "clrex", Fence: "fence", AtomicRMW: "rmw",
	ExitJmp: "exit", ExitCond: "exit.cond", ExitInd: "exit.ind",
	Syscall: "syscall", Halt: "halt", YieldOp: "yield",
}

func (o Op) String() string {
	if o < numOps {
		return opNames[o]
	}
	return fmt.Sprintf("irop?%d", uint8(o))
}

// IsTerminator reports whether o must be the final op of a block.
func (o Op) IsTerminator() bool {
	switch o {
	case ExitJmp, ExitCond, ExitInd, Syscall, Halt, YieldOp:
		return true
	}
	return false
}

// HasSideEffects reports whether o must survive dead-code elimination even
// if its destination is dead.
func (o Op) HasSideEffects() bool {
	switch o {
	case Store, StoreB, InstrStore, InstrStoreB, LL, SC, Clrex, Fence,
		AtomicRMW,
		Load, LoadB, InstrLoad, InstrLoadB: // loads can fault, so they are effects too
		return true
	}
	return o.IsTerminator()
}

// WritesFlags reports whether o updates the guest NZCV flags.
func (o Op) WritesFlags() bool {
	switch o {
	case FlagsAdd, FlagsSub, FlagsAddI, FlagsSubI, FlagsNZ:
		return true
	}
	return false
}

// Inst is one IR operation.
type Inst struct {
	Op    Op
	D     RegID     // destination
	A, B  RegID     // sources
	Imm   uint32    // immediate / address offset / syscall number
	Cond  arch.Cond // ExitCond only
	Addr  uint32    // terminator: primary guest target / resume address
	Addr2 uint32    // ExitCond: fall-through guest target
	// GuestPC is the address of the guest instruction this op was
	// translated from, for profiling and fault reporting.
	GuestPC uint32
	// RMW and RMWImm qualify AtomicRMW: the operation kind and whether the
	// operand is Imm rather than register b.
	RMW    RMWKind
	RMWImm bool
}

// RMWKind is the operation of a fused AtomicRMW.
type RMWKind uint8

// Fused read-modify-write kinds.
const (
	RMWAdd RMWKind = iota
	RMWSub
	RMWAnd
	RMWOr
	RMWXor
	RMWXchg // unconditional exchange: new value = operand
)

func (k RMWKind) String() string {
	switch k {
	case RMWAdd:
		return "add"
	case RMWSub:
		return "sub"
	case RMWAnd:
		return "and"
	case RMWOr:
		return "or"
	case RMWXor:
		return "xor"
	case RMWXchg:
		return "xchg"
	}
	return "rmw?"
}

// Eval applies the kind to an old value and operand.
func (k RMWKind) Eval(old, operand uint32) uint32 {
	switch k {
	case RMWAdd:
		return old + operand
	case RMWSub:
		return old - operand
	case RMWAnd:
		return old & operand
	case RMWOr:
		return old | operand
	case RMWXor:
		return old ^ operand
	case RMWXchg:
		return operand
	}
	return old
}

// uses returns the source registers read by the instruction.
func (in *Inst) uses() (srcs [2]RegID, n int) {
	switch in.Op {
	case Mov, Not, AddI, SubI, RsbI, AndI, OrI, XorI, ShlI, ShrI, SarI,
		FlagsAddI, FlagsSubI, FlagsNZ, Load, LoadB, InstrLoad, InstrLoadB,
		LL, ExitInd:
		srcs[0] = in.A
		n = 1
	case Add, Sub, And, Or, Xor, Mul, UDiv, SDiv, Shl, Shr, Sar,
		FlagsAdd, FlagsSub, Store, StoreB, InstrStore, InstrStoreB, SC:
		srcs[0], srcs[1] = in.A, in.B
		n = 2
	case AtomicRMW:
		srcs[0] = in.A
		n = 1
		if !in.RMWImm {
			srcs[1] = in.B
			n = 2
		}
	}
	return
}

// writes returns the destination register, or -1.
func (in *Inst) writes() RegID {
	switch in.Op {
	case MovI, Mov, Not, Add, Sub, And, Or, Xor, Mul, UDiv, SDiv, Shl, Shr,
		Sar, AddI, SubI, RsbI, AndI, OrI, XorI, ShlI, ShrI, SarI,
		FlagsAdd, FlagsSub, FlagsAddI, FlagsSubI, Load, LoadB, InstrLoad,
		InstrLoadB, LL, SC, AtomicRMW:
		return in.D
	}
	return -1
}

func (in Inst) String() string {
	switch in.Op {
	case Nop, Clrex, Fence, Halt:
		return in.Op.String()
	case MovI:
		return fmt.Sprintf("%s = %#x", in.D, in.Imm)
	case Mov:
		return fmt.Sprintf("%s = %s", in.D, in.A)
	case Not:
		return fmt.Sprintf("%s = ^%s", in.D, in.A)
	case Add, Sub, And, Or, Xor, Mul, UDiv, SDiv, Shl, Shr, Sar, FlagsAdd, FlagsSub:
		return fmt.Sprintf("%s = %s(%s, %s)", in.D, in.Op, in.A, in.B)
	case AddI, SubI, RsbI, AndI, OrI, XorI, ShlI, ShrI, SarI, FlagsAddI, FlagsSubI:
		return fmt.Sprintf("%s = %s(%s, %#x)", in.D, in.Op, in.A, in.Imm)
	case FlagsNZ:
		return fmt.Sprintf("flags.nz(%s)", in.A)
	case Load, LoadB, InstrLoad, InstrLoadB:
		return fmt.Sprintf("%s = %s[%s + %#x]", in.D, in.Op, in.A, in.Imm)
	case Store, StoreB, InstrStore, InstrStoreB:
		return fmt.Sprintf("%s[%s + %#x] = %s", in.Op, in.A, in.Imm, in.B)
	case LL:
		return fmt.Sprintf("%s = ll[%s]", in.D, in.A)
	case SC:
		return fmt.Sprintf("%s = sc[%s] <- %s", in.D, in.A, in.B)
	case AtomicRMW:
		if in.RMWImm {
			return fmt.Sprintf("%s = rmw.%s[%s], %#x", in.D, in.RMW, in.A, in.Imm)
		}
		return fmt.Sprintf("%s = rmw.%s[%s], %s", in.D, in.RMW, in.A, in.B)
	case ExitJmp:
		return fmt.Sprintf("exit -> %#x", in.Addr)
	case ExitCond:
		return fmt.Sprintf("exit.%s -> %#x else %#x", in.Cond, in.Addr, in.Addr2)
	case ExitInd:
		return fmt.Sprintf("exit -> [%s]", in.A)
	case Syscall:
		return fmt.Sprintf("syscall %d, resume %#x", in.Imm, in.Addr)
	case YieldOp:
		return fmt.Sprintf("yield, resume %#x", in.Addr)
	}
	return in.Op.String()
}

// Block is one translated guest basic block.
type Block struct {
	// Start is the guest address of the first instruction.
	Start uint32
	// GuestLen is the number of guest instructions translated.
	GuestLen int
	// NumSlots is the register-space size (guest regs + temps).
	NumSlots int
	Ops      []Inst
	// HasStores/HasLoads record whether the block contains plain guest
	// stores/loads (or fused atomics) — the instructions whose lowering
	// depends on Options.InstrumentStores/InstrumentLoads. Scheme demotion
	// uses them to retain translations that are invariant under an
	// instrumentation change (engine/tbcache.retain).
	HasStores bool
	HasLoads  bool
	// GuestLo/GuestHi bound the guest addresses this block was translated
	// from (hi exclusive). Superblocks are non-contiguous, so the bounds
	// are a conservative cover; the shared translation store checks them
	// against the MMU store watch before reusing a block cross-job.
	GuestLo, GuestHi uint32
}

// NewBlock creates an empty block starting at the given guest address.
func NewBlock(start uint32) *Block {
	return &Block{Start: start, NumSlots: NumGuestRegs}
}

// Temp allocates a fresh temporary.
func (b *Block) Temp() RegID {
	id := RegID(b.NumSlots)
	b.NumSlots++
	return id
}

// Emit appends an op.
func (b *Block) Emit(in Inst) { b.Ops = append(b.Ops, in) }

func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "block %#x (%d guest instrs, %d slots):\n", b.Start, b.GuestLen, b.NumSlots)
	for i, in := range b.Ops {
		fmt.Fprintf(&sb, "  %3d: %s\n", i, in.String())
	}
	return sb.String()
}

// Verify checks structural invariants: register indices in range, exactly
// one terminator as the final op, valid conditions.
func (b *Block) Verify() error {
	if len(b.Ops) == 0 {
		return fmt.Errorf("ir: block %#x is empty", b.Start)
	}
	for i := range b.Ops {
		in := &b.Ops[i]
		if in.Op >= numOps {
			return fmt.Errorf("ir: block %#x op %d: invalid opcode %d", b.Start, i, in.Op)
		}
		isLast := i == len(b.Ops)-1
		if in.Op.IsTerminator() != isLast {
			if isLast {
				return fmt.Errorf("ir: block %#x: final op %s is not a terminator", b.Start, in.Op)
			}
			return fmt.Errorf("ir: block %#x op %d: terminator %s before end", b.Start, i, in.Op)
		}
		check := func(r RegID, what string) error {
			if r < 0 || int(r) >= b.NumSlots {
				return fmt.Errorf("ir: block %#x op %d (%s): %s register %d out of range", b.Start, i, in.Op, what, r)
			}
			return nil
		}
		if d := in.writes(); d >= 0 {
			if err := check(d, "dest"); err != nil {
				return err
			}
		}
		srcs, n := in.uses()
		for s := 0; s < n; s++ {
			if err := check(srcs[s], "source"); err != nil {
				return err
			}
		}
		if in.Op == ExitCond && !in.Cond.Valid() {
			return fmt.Errorf("ir: block %#x: invalid condition %d", b.Start, in.Cond)
		}
	}
	return nil
}
