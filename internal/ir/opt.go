package ir

// Optimizer passes. These mirror TCG's per-block optimizations: constant
// folding/propagation, copy propagation and dead-code elimination over
// straight-line code. Guest registers (slots 0..15) and the NZCV flags are
// live-out of every block; temporaries die at the terminator.

// Optimize runs the standard pass pipeline in place.
func Optimize(b *Block) {
	ConstFold(b)
	CopyProp(b)
	DeadCode(b)
	compact(b)
}

// ConstFold tracks constants through the block, folds ALU ops whose inputs
// are all known, and narrows register-register ops to their immediate forms
// when one input is constant.
func ConstFold(b *Block) {
	known := make([]bool, b.NumSlots)
	val := make([]uint32, b.NumSlots)
	kill := func(r RegID) {
		if r >= 0 {
			known[r] = false
		}
	}
	set := func(r RegID, v uint32) {
		known[r] = true
		val[r] = v
	}

	for i := range b.Ops {
		in := &b.Ops[i]
		switch in.Op {
		case MovI:
			set(in.D, in.Imm)
			continue
		case Mov:
			if known[in.A] {
				*in = Inst{Op: MovI, D: in.D, Imm: val[in.A], GuestPC: in.GuestPC}
				set(in.D, in.Imm)
				continue
			}
		case Not:
			if known[in.A] {
				*in = Inst{Op: MovI, D: in.D, Imm: ^val[in.A], GuestPC: in.GuestPC}
				set(in.D, in.Imm)
				continue
			}
		case Add, Sub, And, Or, Xor, Mul, UDiv, SDiv, Shl, Shr, Sar:
			a, bk := known[in.A], known[in.B]
			switch {
			case a && bk:
				*in = Inst{Op: MovI, D: in.D, Imm: evalALU(in.Op, val[in.A], val[in.B]), GuestPC: in.GuestPC}
				set(in.D, in.Imm)
				continue
			case bk:
				if (in.Op == UDiv || in.Op == SDiv) && val[in.B] == 0 {
					// x / 0 = 0 regardless of x (ARM division semantics).
					*in = Inst{Op: MovI, D: in.D, Imm: 0, GuestPC: in.GuestPC}
					set(in.D, 0)
					continue
				}
				if imm, ok := immForm(in.Op); ok {
					*in = Inst{Op: imm, D: in.D, A: in.A, Imm: val[in.B], GuestPC: in.GuestPC}
					// fall through to the immediate-form handling below
					// on the *next* pass; for this pass, treat result as
					// unknown unless identities apply.
					if folded := foldIdentity(in); folded {
						if in.Op == MovI {
							set(in.D, in.Imm)
							continue
						}
					}
				}
			case a && commutative(in.Op):
				if imm, ok := immForm(in.Op); ok {
					*in = Inst{Op: imm, D: in.D, A: in.B, Imm: val[in.A], GuestPC: in.GuestPC}
					if foldIdentity(in) && in.Op == MovI {
						set(in.D, in.Imm)
						continue
					}
				}
			}
		case AddI, SubI, RsbI, AndI, OrI, XorI, ShlI, ShrI, SarI:
			if known[in.A] {
				*in = Inst{Op: MovI, D: in.D, Imm: evalALUImm(in.Op, val[in.A], in.Imm), GuestPC: in.GuestPC}
				set(in.D, in.Imm)
				continue
			}
			if foldIdentity(in) && in.Op == MovI {
				set(in.D, in.Imm)
				continue
			}
		}
		kill(in.writes())
	}
}

// evalALU computes a register-register ALU op on constants.
func evalALU(op Op, a, b uint32) uint32 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case Mul:
		return a * b
	case UDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case SDiv:
		return sdiv(a, b)
	case Shl:
		return a << (b & 31)
	case Shr:
		return a >> (b & 31)
	case Sar:
		return uint32(int32(a) >> (b & 31))
	}
	panic("ir: evalALU on non-ALU op " + op.String())
}

// evalALUImm computes an immediate-form ALU op on a constant.
func evalALUImm(op Op, a, imm uint32) uint32 {
	switch op {
	case AddI:
		return a + imm
	case SubI:
		return a - imm
	case RsbI:
		return imm - a
	case AndI:
		return a & imm
	case OrI:
		return a | imm
	case XorI:
		return a ^ imm
	case ShlI:
		return a << (imm & 31)
	case ShrI:
		return a >> (imm & 31)
	case SarI:
		return uint32(int32(a) >> (imm & 31))
	}
	panic("ir: evalALUImm on non-imm op " + op.String())
}

// sdiv implements the ARM SDIV edge cases: x/0 = 0, MinInt32/-1 = MinInt32.
func sdiv(a, b uint32) uint32 {
	if b == 0 {
		return 0
	}
	sa, sb := int32(a), int32(b)
	if sa == -1<<31 && sb == -1 {
		return a
	}
	return uint32(sa / sb)
}

func commutative(op Op) bool {
	switch op {
	case Add, And, Or, Xor, Mul:
		return true
	}
	return false
}

// immForm maps a register-register op to its immediate form.
func immForm(op Op) (Op, bool) {
	switch op {
	case Add:
		return AddI, true
	case Sub:
		return SubI, true
	case And:
		return AndI, true
	case Or:
		return OrI, true
	case Xor:
		return XorI, true
	case Shl:
		return ShlI, true
	case Shr:
		return ShrI, true
	case Sar:
		return SarI, true
	}
	return 0, false
}

// foldIdentity simplifies algebraic identities on immediate-form ops in
// place. Returns true if the op changed.
func foldIdentity(in *Inst) bool {
	switch in.Op {
	case AddI, SubI, OrI, XorI, ShlI, ShrI, SarI:
		if in.Imm == 0 || (in.Op == ShlI || in.Op == ShrI || in.Op == SarI) && in.Imm&31 == 0 {
			*in = Inst{Op: Mov, D: in.D, A: in.A, GuestPC: in.GuestPC}
			return true
		}
	case AndI:
		if in.Imm == 0 {
			*in = Inst{Op: MovI, D: in.D, Imm: 0, GuestPC: in.GuestPC}
			return true
		}
		if in.Imm == 0xffffffff {
			*in = Inst{Op: Mov, D: in.D, A: in.A, GuestPC: in.GuestPC}
			return true
		}
	}
	return false
}

// CopyProp forwards Mov sources into later uses.
func CopyProp(b *Block) {
	// copyOf[r] = s means r currently holds the same value as s.
	copyOf := make([]RegID, b.NumSlots)
	for i := range copyOf {
		copyOf[i] = RegID(i)
	}
	resolve := func(r RegID) RegID { return copyOf[r] }
	invalidate := func(r RegID) {
		if r < 0 {
			return
		}
		copyOf[r] = r
		for i := range copyOf {
			if copyOf[i] == r && RegID(i) != r {
				copyOf[i] = RegID(i)
			}
		}
	}

	for i := range b.Ops {
		in := &b.Ops[i]
		// Rewrite sources first.
		switch n := in; n.Op {
		case Mov, Not, AddI, SubI, RsbI, AndI, OrI, XorI, ShlI, ShrI, SarI,
			FlagsAddI, FlagsSubI, FlagsNZ, Load, LoadB, InstrLoad, InstrLoadB,
			LL, ExitInd:
			in.A = resolve(in.A)
		case Add, Sub, And, Or, Xor, Mul, UDiv, SDiv, Shl, Shr, Sar,
			FlagsAdd, FlagsSub, Store, StoreB, InstrStore, InstrStoreB, SC:
			in.A = resolve(in.A)
			in.B = resolve(in.B)
		case AtomicRMW:
			in.A = resolve(in.A)
			if !in.RMWImm {
				in.B = resolve(in.B)
			}
		}
		d := in.writes()
		invalidate(d)
		if in.Op == Mov && in.D != in.A {
			copyOf[in.D] = in.A
		}
	}
}

// DeadCode removes ops whose results are unused, walking backward with
// guest registers live-out. Flag writers and side-effecting ops survive.
func DeadCode(b *Block) {
	live := make([]bool, b.NumSlots)
	for r := 0; r < NumGuestRegs; r++ {
		live[r] = true
	}
	for i := len(b.Ops) - 1; i >= 0; i-- {
		in := &b.Ops[i]
		d := in.writes()
		if d >= 0 && !live[d] && !in.Op.HasSideEffects() && !in.Op.WritesFlags() {
			in.Op = Nop
			continue
		}
		if d >= 0 && !in.Op.HasSideEffects() {
			// A pure op fully redefines d; for side-effecting ops (LL, SC,
			// Load) d is also redefined but keeping it live is harmless.
			live[d] = false
		}
		srcs, n := in.uses()
		for s := 0; s < n; s++ {
			live[srcs[s]] = true
		}
	}
}

// compact removes Nops left by earlier passes.
func compact(b *Block) {
	out := b.Ops[:0]
	for _, in := range b.Ops {
		if in.Op != Nop {
			out = append(out, in)
		}
	}
	b.Ops = out
}
