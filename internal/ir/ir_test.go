package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"atomemu/internal/arch"
)

// evalPure interprets a block's pure ALU/move ops over a register file,
// ignoring memory and terminators. It is the reference semantics used to
// check that optimizer passes preserve meaning.
func evalPure(b *Block, regs []uint32) {
	for _, in := range b.Ops {
		switch in.Op {
		case Nop:
		case MovI:
			regs[in.D] = in.Imm
		case Mov:
			regs[in.D] = regs[in.A]
		case Not:
			regs[in.D] = ^regs[in.A]
		case Add, Sub, And, Or, Xor, Mul, UDiv, SDiv, Shl, Shr, Sar:
			regs[in.D] = evalALU(in.Op, regs[in.A], regs[in.B])
		case AddI, SubI, RsbI, AndI, OrI, XorI, ShlI, ShrI, SarI:
			regs[in.D] = evalALUImm(in.Op, regs[in.A], in.Imm)
		case ExitJmp, Halt:
			return
		default:
			panic("evalPure: unsupported op " + in.Op.String())
		}
	}
}

var pureOps = []Op{Add, Sub, And, Or, Xor, Mul, UDiv, SDiv, Shl, Shr, Sar}
var pureImmOps = []Op{AddI, SubI, RsbI, AndI, OrI, XorI, ShlI, ShrI, SarI}

// randomPureBlock builds a random straight-line block over guest registers
// and a few temps, ending in ExitJmp.
func randomPureBlock(r *rand.Rand) *Block {
	b := NewBlock(0x1000)
	ntemps := r.Intn(6)
	for i := 0; i < ntemps; i++ {
		b.Temp()
	}
	reg := func() RegID { return RegID(r.Intn(b.NumSlots)) }
	n := 1 + r.Intn(30)
	for i := 0; i < n; i++ {
		switch r.Intn(5) {
		case 0:
			b.Emit(Inst{Op: MovI, D: reg(), Imm: r.Uint32() % 1024})
		case 1:
			b.Emit(Inst{Op: Mov, D: reg(), A: reg()})
		case 2:
			b.Emit(Inst{Op: Not, D: reg(), A: reg()})
		case 3:
			b.Emit(Inst{Op: pureOps[r.Intn(len(pureOps))], D: reg(), A: reg(), B: reg()})
		case 4:
			b.Emit(Inst{Op: pureImmOps[r.Intn(len(pureImmOps))], D: reg(), A: reg(), Imm: r.Uint32() % 64})
		}
	}
	b.Emit(Inst{Op: ExitJmp, Addr: 0x2000})
	b.GuestLen = n
	return b
}

func cloneBlock(b *Block) *Block {
	nb := *b
	nb.Ops = append([]Inst(nil), b.Ops...)
	return &nb
}

func TestQuickOptimizePreservesGuestRegs(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		b := randomPureBlock(r)
		opt := cloneBlock(b)
		Optimize(opt)
		if err := opt.Verify(); err != nil {
			t.Logf("optimized block fails verify: %v\n%s", err, opt)
			return false
		}

		before := make([]uint32, b.NumSlots)
		after := make([]uint32, b.NumSlots)
		for i := range before {
			v := r.Uint32()
			before[i], after[i] = v, v
		}
		evalPure(b, before)
		evalPure(opt, after)
		for g := 0; g < NumGuestRegs; g++ {
			if before[g] != after[g] {
				t.Logf("guest reg %d diverged: %#x vs %#x\noriginal:\n%s\noptimized:\n%s",
					g, before[g], after[g], b, opt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickOptimizeNeverGrows(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	f := func() bool {
		b := randomPureBlock(r)
		n := len(b.Ops)
		Optimize(b)
		return len(b.Ops) <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestConstFoldChain(t *testing.T) {
	b := NewBlock(0)
	t0 := b.Temp()
	t1 := b.Temp()
	b.Emit(Inst{Op: MovI, D: t0, Imm: 6})
	b.Emit(Inst{Op: MovI, D: t1, Imm: 7})
	b.Emit(Inst{Op: Mul, D: 0, A: t0, B: t1})  // r0 = 42
	b.Emit(Inst{Op: AddI, D: 1, A: 0, Imm: 8}) // r1 = 50
	b.Emit(Inst{Op: ExitJmp})
	Optimize(b)
	// After folding + DCE: r0 = 42, r1 = 50, exit.
	if len(b.Ops) != 3 {
		t.Fatalf("expected 3 ops after optimize, got:\n%s", b)
	}
	if b.Ops[0].Op != MovI || b.Ops[0].Imm != 42 || b.Ops[0].D != 0 {
		t.Errorf("op0 = %s", b.Ops[0])
	}
	if b.Ops[1].Op != MovI || b.Ops[1].Imm != 50 || b.Ops[1].D != 1 {
		t.Errorf("op1 = %s", b.Ops[1])
	}
}

func TestConstFoldDivByZero(t *testing.T) {
	b := NewBlock(0)
	t0 := b.Temp()
	b.Emit(Inst{Op: MovI, D: t0, Imm: 0})
	b.Emit(Inst{Op: UDiv, D: 0, A: 1, B: t0})
	b.Emit(Inst{Op: ExitJmp})
	Optimize(b)
	if b.Ops[0].Op != MovI || b.Ops[0].Imm != 0 || b.Ops[0].D != 0 {
		t.Fatalf("udiv by zero should fold to 0:\n%s", b)
	}
}

func TestConstFoldSDivEdgeCases(t *testing.T) {
	if got := sdiv(0x80000000, 0xffffffff); got != 0x80000000 {
		t.Errorf("MinInt32 / -1 = %#x, want 0x80000000", got)
	}
	if got := sdiv(7, 0); got != 0 {
		t.Errorf("7 / 0 = %d, want 0", got)
	}
	if got := sdiv(uint32(0xfffffff9), 2); got != uint32(0xfffffffd) {
		t.Errorf("-7 / 2 = %#x, want -3", got)
	}
}

func TestCopyPropEliminatesMovChains(t *testing.T) {
	b := NewBlock(0)
	t0 := b.Temp()
	t1 := b.Temp()
	b.Emit(Inst{Op: Mov, D: t0, A: 2})        // t0 = r2
	b.Emit(Inst{Op: Mov, D: t1, A: t0})       // t1 = t0
	b.Emit(Inst{Op: Add, D: 0, A: t1, B: t1}) // r0 = t1 + t1
	b.Emit(Inst{Op: ExitJmp})
	Optimize(b)
	// The adds should read r2 directly and the movs be dead.
	if len(b.Ops) != 2 {
		t.Fatalf("expected add+exit, got:\n%s", b)
	}
	if b.Ops[0].Op != Add || b.Ops[0].A != 2 || b.Ops[0].B != 2 {
		t.Errorf("add operands not propagated: %s", b.Ops[0])
	}
}

func TestCopyPropInvalidationOnRedefine(t *testing.T) {
	b := NewBlock(0)
	t0 := b.Temp()
	b.Emit(Inst{Op: Mov, D: t0, A: 1})         // t0 = r1
	b.Emit(Inst{Op: AddI, D: 1, A: 1, Imm: 1}) // r1 changes
	b.Emit(Inst{Op: Mov, D: 0, A: t0})         // r0 must get OLD r1
	b.Emit(Inst{Op: ExitJmp})
	orig := cloneBlock(b)
	Optimize(b)
	regsA := make([]uint32, b.NumSlots)
	regsB := make([]uint32, b.NumSlots)
	regsA[1], regsB[1] = 10, 10
	evalPure(orig, regsA)
	evalPure(b, regsB)
	if regsA[0] != regsB[0] || regsB[0] != 10 {
		t.Fatalf("copy-prop broke redefinition: orig r0=%d opt r0=%d\n%s", regsA[0], regsB[0], b)
	}
}

func TestDeadCodeKeepsSideEffects(t *testing.T) {
	b := NewBlock(0)
	tAddr := b.Temp()
	tVal := b.Temp()
	tDead := b.Temp()
	b.Emit(Inst{Op: MovI, D: tAddr, Imm: 0x1000})
	b.Emit(Inst{Op: LL, D: tDead, A: tAddr})            // result dead but LL has effects
	b.Emit(Inst{Op: InstrStore, A: tAddr, B: tVal})     // store always kept
	b.Emit(Inst{Op: Load, D: tDead, A: tAddr})          // load can fault: kept
	b.Emit(Inst{Op: FlagsSubI, D: tDead, A: 0, Imm: 1}) // writes flags: kept
	b.Emit(Inst{Op: ExitJmp})
	Optimize(b)
	var kinds []string
	for _, in := range b.Ops {
		kinds = append(kinds, in.Op.String())
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"ll", "st32.instr", "ld32", "flags.subi"} {
		if !strings.Contains(joined, want) {
			t.Errorf("DCE dropped side-effecting op %q: %s", want, joined)
		}
	}
}

func TestDeadCodeRemovesDeadTemps(t *testing.T) {
	b := NewBlock(0)
	t0 := b.Temp()
	b.Emit(Inst{Op: MovI, D: t0, Imm: 5}) // dead: t0 never used
	b.Emit(Inst{Op: MovI, D: 0, Imm: 9})
	b.Emit(Inst{Op: ExitJmp})
	Optimize(b)
	if len(b.Ops) != 2 {
		t.Fatalf("dead temp not removed:\n%s", b)
	}
}

func TestDeadCodeKeepsGuestRegs(t *testing.T) {
	b := NewBlock(0)
	b.Emit(Inst{Op: MovI, D: 5, Imm: 123}) // guest r5: live-out, must stay
	b.Emit(Inst{Op: ExitJmp})
	Optimize(b)
	if len(b.Ops) != 2 || b.Ops[0].Op != MovI || b.Ops[0].D != 5 {
		t.Fatalf("guest register write removed:\n%s", b)
	}
}

func TestVerifyCatchesBadBlocks(t *testing.T) {
	mk := func(f func(b *Block)) *Block {
		b := NewBlock(0)
		f(b)
		return b
	}
	cases := []struct {
		name string
		b    *Block
	}{
		{"empty", mk(func(b *Block) {})},
		{"no terminator", mk(func(b *Block) { b.Emit(Inst{Op: MovI, D: 0}) })},
		{"terminator mid-block", mk(func(b *Block) {
			b.Emit(Inst{Op: ExitJmp})
			b.Emit(Inst{Op: MovI, D: 0})
			b.Emit(Inst{Op: ExitJmp})
		})},
		{"reg out of range", mk(func(b *Block) {
			b.Emit(Inst{Op: MovI, D: 99})
			b.Emit(Inst{Op: ExitJmp})
		})},
		{"src out of range", mk(func(b *Block) {
			b.Emit(Inst{Op: Mov, D: 0, A: -1})
			b.Emit(Inst{Op: ExitJmp})
		})},
		{"bad cond", mk(func(b *Block) {
			b.Emit(Inst{Op: ExitCond, Cond: arch.NumConds})
		})},
	}
	for _, c := range cases {
		if err := c.b.Verify(); err == nil {
			t.Errorf("%s: Verify should fail", c.name)
		}
	}
}

func TestVerifyAcceptsGoodBlock(t *testing.T) {
	b := NewBlock(0x100)
	tv := b.Temp()
	b.Emit(Inst{Op: MovI, D: tv, Imm: 1})
	b.Emit(Inst{Op: FlagsSubI, D: b.Temp(), A: 0, Imm: 1})
	b.Emit(Inst{Op: ExitCond, Cond: arch.NE, Addr: 0x100, Addr2: 0x104})
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRegIDString(t *testing.T) {
	if RegID(0).String() != "r0" || RegID(13).String() != "sp" || RegID(16).String() != "t0" {
		t.Errorf("RegID strings: %s %s %s", RegID(0), RegID(13), RegID(16))
	}
}

func TestBlockStringRenders(t *testing.T) {
	b := NewBlock(0x40)
	b.GuestLen = 1
	b.Emit(Inst{Op: MovI, D: 0, Imm: 7})
	b.Emit(Inst{Op: ExitJmp, Addr: 0x44})
	s := b.String()
	for _, want := range []string{"block 0x40", "r0 = 0x7", "exit -> 0x44"} {
		if !strings.Contains(s, want) {
			t.Errorf("Block.String missing %q:\n%s", want, s)
		}
	}
}

func TestInstStringCoverage(t *testing.T) {
	insts := []Inst{
		{Op: Nop}, {Op: MovI, D: 0, Imm: 1}, {Op: Mov, D: 0, A: 1},
		{Op: Not, D: 0, A: 1}, {Op: Add, D: 0, A: 1, B: 2},
		{Op: AddI, D: 0, A: 1, Imm: 4}, {Op: FlagsNZ, A: 3},
		{Op: Load, D: 0, A: 1, Imm: 8}, {Op: Store, A: 1, B: 2},
		{Op: InstrStore, A: 1, B: 2}, {Op: LL, D: 0, A: 1},
		{Op: SC, D: 0, A: 1, B: 2}, {Op: Clrex}, {Op: Fence},
		{Op: ExitJmp, Addr: 4}, {Op: ExitCond, Cond: arch.EQ, Addr: 4, Addr2: 8},
		{Op: ExitInd, A: 14}, {Op: Syscall, Imm: 1, Addr: 8},
		{Op: Halt}, {Op: YieldOp, Addr: 12},
	}
	for _, in := range insts {
		if in.String() == "" {
			t.Errorf("empty String for op %s", in.Op)
		}
	}
}
