package htm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// memStore is a trivial backing memory for tests.
type memStore struct {
	mu sync.Mutex
	m  map[uint32]uint32
}

func newMemStore() *memStore { return &memStore{m: make(map[uint32]uint32)} }

func (s *memStore) load(addr uint32) (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[addr], nil
}

func (s *memStore) store(addr, val uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[addr] = val
	return nil
}

func newTM(t *testing.T) *TM {
	t.Helper()
	tm, err := New(12, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestCommitPublishesWrites(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	txn := tm.Begin(1, mem.load)
	if err := txn.Write(0x100, 42); err != nil {
		t.Fatal(err)
	}
	// Write must not be visible before commit.
	if v, _ := mem.load(0x100); v != 0 {
		t.Fatalf("write leaked before commit: %d", v)
	}
	if err := txn.Commit(mem.store); err != nil {
		t.Fatal(err)
	}
	if v, _ := mem.load(0x100); v != 42 {
		t.Fatalf("after commit: %d", v)
	}
	if !txn.Done() {
		t.Error("txn should be done")
	}
	if tm.Active() {
		t.Error("no txn should be active after commit")
	}
}

func TestReadOwnWrites(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	mem.store(0x100, 7)
	txn := tm.Begin(1, mem.load)
	v, err := txn.Read(0x100)
	if err != nil || v != 7 {
		t.Fatalf("Read = %d, %v", v, err)
	}
	if err := txn.Write(0x100, 8); err != nil {
		t.Fatal(err)
	}
	v, err = txn.Read(0x100)
	if err != nil || v != 8 {
		t.Fatalf("read-own-write = %d, %v", v, err)
	}
	if err := txn.Commit(mem.store); err != nil {
		t.Fatal(err)
	}
}

func TestWriteWriteConflictAborts(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	t1 := tm.Begin(1, mem.load)
	t2 := tm.Begin(1, mem.load)
	if err := t1.Write(0x100, 1); err != nil {
		t.Fatal(err)
	}
	err := t2.Write(0x100, 2)
	var ab *Abort
	if !errors.As(err, &ab) || ab.Reason != ReasonConflict {
		t.Fatalf("expected conflict abort, got %v", err)
	}
	if !t2.Done() {
		t.Error("aborted txn should be done")
	}
	if err := t1.Commit(mem.store); err != nil {
		t.Fatal(err)
	}
	if v, _ := mem.load(0x100); v != 1 {
		t.Fatalf("winner's write lost: %d", v)
	}
}

func TestReadInvalidatedByCommittedWriter(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	reader := tm.Begin(1, mem.load)
	if _, err := reader.Read(0x200); err != nil {
		t.Fatal(err)
	}
	writer := tm.Begin(1, mem.load)
	if err := writer.Write(0x200, 9); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(mem.store); err != nil {
		t.Fatal(err)
	}
	err := reader.Commit(mem.store)
	var ab *Abort
	if !errors.As(err, &ab) || ab.Reason != ReasonConflict {
		t.Fatalf("reader must abort after writer committed, got %v", err)
	}
}

func TestReadLockedSlotAborts(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	writer := tm.Begin(1, mem.load)
	if err := writer.Write(0x300, 5); err != nil {
		t.Fatal(err)
	}
	reader := tm.Begin(1, mem.load)
	_, err := reader.Read(0x300)
	var ab *Abort
	if !errors.As(err, &ab) || ab.Reason != ReasonConflict {
		t.Fatalf("read of locked slot should abort, got %v", err)
	}
	writer.AbortNow(ReasonSyscall)
}

func TestNonTxnStorePoisonsWriter(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	txn := tm.Begin(1, mem.load)
	if err := txn.Write(0x400, 1); err != nil {
		t.Fatal(err)
	}
	// A plain store to the same word while the txn holds its lock: the
	// strong-atomicity case. The txn must not commit.
	tm.NotifyStore(0x400)
	err := txn.Commit(mem.store)
	var ab *Abort
	if !errors.As(err, &ab) || ab.Reason != ReasonNonTxnStore {
		t.Fatalf("expected poison abort, got %v", err)
	}
}

func TestNonTxnStoreInvalidatesReader(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	txn := tm.Begin(1, mem.load)
	if _, err := txn.Read(0x500); err != nil {
		t.Fatal(err)
	}
	tm.NotifyStore(0x500) // version bump
	err := txn.Commit(mem.store)
	var ab *Abort
	if !errors.As(err, &ab) || ab.Reason != ReasonConflict {
		t.Fatalf("expected conflict abort after plain store, got %v", err)
	}
}

func TestNotifyStoreCheapWhenInactive(t *testing.T) {
	tm := newTM(t)
	// Must not panic or misbehave with no transactions.
	tm.NotifyStore(0x100)
	if tm.Active() {
		t.Error("Active with no txns")
	}
}

func TestCapacityAbort(t *testing.T) {
	tm, err := New(12, 8)
	if err != nil {
		t.Fatal(err)
	}
	mem := newMemStore()
	txn := tm.Begin(1, mem.load)
	var last error
	for i := uint32(0); i < 20; i++ {
		if last = txn.Write(0x1000+i*4, i); last != nil {
			break
		}
	}
	var ab *Abort
	if !errors.As(last, &ab) || ab.Reason != ReasonCapacity {
		t.Fatalf("expected capacity abort, got %v", last)
	}
}

func TestExplicitAbortReleasesLocks(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	t1 := tm.Begin(1, mem.load)
	if err := t1.Write(0x600, 1); err != nil {
		t.Fatal(err)
	}
	ab := t1.AbortNow(ReasonEmulation)
	if ab.Reason != ReasonEmulation {
		t.Fatalf("reason = %v", ab.Reason)
	}
	// The slot must be free for the next transaction.
	t2 := tm.Begin(1, mem.load)
	if err := t2.Write(0x600, 2); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(mem.store); err != nil {
		t.Fatal(err)
	}
	if v, _ := mem.load(0x600); v != 2 {
		t.Fatalf("value = %d", v)
	}
}

func TestUsingDoneTxnFails(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	txn := tm.Begin(1, mem.load)
	txn.AbortNow(ReasonSyscall)
	if _, err := txn.Read(0); err == nil {
		t.Error("Read on done txn should fail")
	}
	if err := txn.Write(0, 1); err == nil {
		t.Error("Write on done txn should fail")
	}
	if err := txn.Commit(mem.store); err == nil {
		t.Error("Commit on done txn should fail")
	}
}

func TestSameTxnMultipleWritesSameSlot(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	txn := tm.Begin(1, mem.load)
	// Same address twice: second write re-acquires its own lock.
	if err := txn.Write(0x700, 1); err != nil {
		t.Fatal(err)
	}
	if err := txn.Write(0x700, 2); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(mem.store); err != nil {
		t.Fatal(err)
	}
	if v, _ := mem.load(0x700); v != 2 {
		t.Fatalf("last write must win: %d", v)
	}
}

func TestStoreErrorPropagatesFromCommit(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	txn := tm.Begin(1, mem.load)
	if err := txn.Write(0x800, 1); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("page fault")
	err := txn.Commit(func(addr, val uint32) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("expected store error, got %v", err)
	}
	if !txn.Done() {
		t.Error("txn must be done after failed commit")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 0); err == nil {
		t.Error("bits too small should fail")
	}
	if _, err := New(30, 0); err == nil {
		t.Error("bits too large should fail")
	}
}

func TestAbortErrorString(t *testing.T) {
	for _, r := range []AbortReason{ReasonConflict, ReasonCapacity, ReasonNonTxnStore, ReasonEmulation, ReasonSyscall} {
		ab := &Abort{Reason: r, Addr: 0x42}
		if ab.Error() == "" || r.String() == "reason?" {
			t.Errorf("bad formatting for %v", r)
		}
	}
}

// TestConcurrentCounterSerializable: N goroutines increment a counter via
// transactions with retry; the final value must equal the total number of
// successful increments (serializability), and every goroutine must finish
// (no lost wakeups / stuck locks).
func TestConcurrentCounterSerializable(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	const goroutines = 8
	const perG = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				for {
					txn := tm.Begin(1, mem.load)
					v, err := txn.Read(0x1000)
					if err != nil {
						continue
					}
					if err := txn.Write(0x1000, v+1); err != nil {
						continue
					}
					if err := txn.Commit(mem.store); err == nil {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	v, _ := mem.load(0x1000)
	if v != goroutines*perG {
		t.Fatalf("counter = %d, want %d", v, goroutines*perG)
	}
	if tm.Active() {
		t.Error("transactions leaked")
	}
}

// TestQuickDisjointTxnsAllCommit: transactions touching disjoint addresses
// never abort each other.
func TestQuickDisjointTxnsAllCommit(t *testing.T) {
	f := func(seed uint8) bool {
		tm, err := New(16, 0) // large table: distinct word addrs rarely collide
		if err != nil {
			return false
		}
		mem := newMemStore()
		base := uint32(seed) * 0x1000
		var wg sync.WaitGroup
		fail := false
		var mu sync.Mutex
		for g := uint32(0); g < 4; g++ {
			wg.Add(1)
			go func(g uint32) {
				defer wg.Done()
				for i := uint32(0); i < 10; i++ {
					addr := base + g*0x40000 + i*4
					txn := tm.Begin(1, mem.load)
					if err := txn.Write(addr, g+1); err != nil {
						// A hash collision between disjoint addresses is
						// possible but should be rare with 2^16 slots;
						// treat a conflict between disjoint addrs as
						// retryable, not a failure.
						i--
						continue
					}
					if err := txn.Commit(mem.store); err != nil {
						mu.Lock()
						fail = true
						mu.Unlock()
						return
					}
				}
			}(g)
		}
		wg.Wait()
		return !fail
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestManySequentialTxns(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	for i := 0; i < 1000; i++ {
		txn := tm.Begin(1, mem.load)
		addr := uint32(i%64) * 4
		v, err := txn.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := txn.Write(addr, v+1); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(mem.store); err != nil {
			t.Fatal(err)
		}
	}
	var total uint32
	for i := uint32(0); i < 64; i++ {
		v, _ := mem.load(i * 4)
		total += v
	}
	if total != 1000 {
		t.Fatalf("total increments = %d", total)
	}
}

func TestReadAfterColleagueLockSameSlotSelf(t *testing.T) {
	// Write locks slot for addr A; reading a different address that hashes
	// to the same slot must not self-abort. Construct collision by using
	// the slot function indirectly: same address is the simple case; a true
	// collision is exercised via table size 16.
	tm, err := New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := newMemStore()
	mem.store(0x104, 77)
	txn := tm.Begin(1, mem.load)
	if err := txn.Write(0x100, 1); err != nil {
		t.Fatal(err)
	}
	// Find an address colliding with 0x100 in a 16-slot table.
	collide := uint32(0)
	for a := uint32(0x104); a < 0x2000; a += 4 {
		if tm.slot(a) == tm.slot(0x100) && a != 0x100 {
			collide = a
			break
		}
	}
	if collide == 0 {
		t.Skip("no collision found")
	}
	mem.store(collide, 123)
	v, err := txn.Read(collide)
	if err != nil || v != 123 {
		t.Fatalf("self-colliding read = %d, %v", v, err)
	}
	if err := txn.Commit(mem.store); err != nil {
		t.Fatal(err)
	}
}

func ExampleTM() {
	tm, _ := New(12, 0)
	mem := map[uint32]uint32{0x40: 10}
	load := func(a uint32) (uint32, error) { return mem[a], nil }
	store := func(a, v uint32) error { mem[a] = v; return nil }

	txn := tm.Begin(1, load)
	v, _ := txn.Read(0x40)
	txn.Write(0x40, v*2)
	if err := txn.Commit(store); err == nil {
		fmt.Println(mem[0x40])
	}
	// Output: 20
}
