// Package htm is a software stand-in for hardware transactional memory
// (Intel TSX), which the paper's PICO-HTM and HST-HTM schemes require and
// which the reproduction host does not have.
//
// The design is a TL2-style word-based STM with eager write locking and
// commit-time read validation, plus one extension real HTM gets for free
// from cache coherence and that the schemes depend on: *strong atomicity*
// against non-transactional stores. The execution engine funnels plain guest
// stores through TM.NotifyStore, which either bumps the version of the
// word's lock slot (aborting any reader that saw the old version) or
// poisons a slot locked by an in-flight transaction (aborting its commit).
// NotifyStore costs a single atomic load when no transaction is active.
//
// Transactions abort on conflict, on capacity overflow, on poisoning, and
// explicitly (the engine aborts a transaction when emulation work — a
// translation-cache miss — occurs inside it, reproducing the paper's
// observation that QEMU's own code inside a PICO-HTM transaction causes
// repeated aborts and livelock).
package htm

import (
	"fmt"
	"sync/atomic"

	"atomemu/internal/faultinject"
)

// AbortReason classifies why a transaction aborted.
type AbortReason uint8

// Abort reasons.
const (
	ReasonConflict    AbortReason = iota // read/write conflict with another txn
	ReasonCapacity                       // read+write set exceeded capacity
	ReasonNonTxnStore                    // plain store hit our write set (poison)
	ReasonEmulation                      // emulation work (translation) inside txn
	ReasonSyscall                        // syscall inside txn
)

func (r AbortReason) String() string {
	switch r {
	case ReasonConflict:
		return "conflict"
	case ReasonCapacity:
		return "capacity"
	case ReasonNonTxnStore:
		return "non-txn-store"
	case ReasonEmulation:
		return "emulation"
	case ReasonSyscall:
		return "syscall"
	}
	return "reason?"
}

// Abort is the error returned when a transaction aborts. The caller decides
// whether to retry or fall back.
type Abort struct {
	Reason AbortReason
	Addr   uint32
}

func (a *Abort) Error() string {
	return fmt.Sprintf("htm: transaction aborted (%s) at %#08x", a.Reason, a.Addr)
}

// Lock-word layout:
//
//	unlocked: version<<2              (bit0 = 0)
//	locked:   owner<<2 | poison<<1 | 1
const (
	lockedBit  = 1
	poisonBit  = 2
	ownerShift = 2
	versionInc = 4
)

// TM is the transactional-memory "hardware": a versioned lock table shared
// by all transactions on a machine.
type TM struct {
	locks    []atomic.Uint64
	mask     uint32
	capacity int
	// active counts in-flight transactions plus registered store
	// watchers; NotifyStore's fast path is one load of it.
	active atomic.Int64
	nextID atomic.Uint64
	inj    *faultinject.Injector
}

// DefaultCapacity bounds a transaction's combined read+write set, modelling
// the L1-sized capacity of real HTM.
const DefaultCapacity = 512

// New creates a TM with 2^bits lock slots and the given read+write set
// capacity (0 means DefaultCapacity).
func New(bits uint, capacity int) (*TM, error) {
	if bits < 4 || bits > 24 {
		return nil, fmt.Errorf("htm: bits %d out of range [4,24]", bits)
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := uint32(1) << bits
	return &TM{locks: make([]atomic.Uint64, n), mask: n - 1, capacity: capacity}, nil
}

func (tm *TM) slot(addr uint32) uint32 {
	// Multiplicative hash over the word address.
	return (addr >> 2 * 0x9e3779b1) & tm.mask
}

// SetInjector installs a fault injector (nil to disable). Call before any
// transaction runs; the field is read without synchronization afterwards.
func (tm *TM) SetInjector(inj *faultinject.Injector) { tm.inj = inj }

// Active reports whether any transaction is in flight or any store watcher
// is registered; the engine's plain store path uses it to skip NotifyStore
// bookkeeping when HTM is unused.
func (tm *TM) Active() bool { return tm.active.Load() > 0 }

// AddStoreWatcher keeps NotifyStore live while no transaction is open, so
// a vCPU running a degraded (non-transactional) LL/SC window still
// observes version bumps from plain stores. Paired with
// RemoveStoreWatcher.
func (tm *TM) AddStoreWatcher() { tm.active.Add(1) }

// RemoveStoreWatcher releases a watcher taken with AddStoreWatcher.
func (tm *TM) RemoveStoreWatcher() { tm.active.Add(-1) }

// SlotWord returns the current lock word of addr's slot. A degraded LL/SC
// window snapshots it at LL (before loading the value) and revalidates at
// SC: any committed transaction or notified plain store to an aliasing
// address changes the word.
func (tm *TM) SlotWord(addr uint32) uint64 {
	return tm.locks[tm.slot(addr)].Load()
}

// SameSlot reports whether two addresses alias to the same lock slot.
func (tm *TM) SameSlot(a, b uint32) bool { return tm.slot(a) == tm.slot(b) }

// BumpIfWord advances addr's slot version by exactly one step iff the slot
// still holds expect, returning the new word. A degraded vCPU uses it to
// adopt its own in-window store's version bump into its snapshot: the CAS
// guarantees no foreign bump is absorbed, and a locked expect word is
// refused (bumping it would corrupt the owner's lock).
func (tm *TM) BumpIfWord(addr uint32, expect uint64) (uint64, bool) {
	if expect&lockedBit != 0 {
		return expect, false
	}
	next := expect + versionInc
	if tm.locks[tm.slot(addr)].CompareAndSwap(expect, next) {
		return next, true
	}
	return expect, false
}

// NotifyStore records a non-transactional store for strong atomicity:
// readers of the slot revalidate and fail; a transaction holding the slot's
// lock is poisoned and will abort at commit.
func (tm *TM) NotifyStore(addr uint32) {
	if tm.active.Load() == 0 {
		return
	}
	s := &tm.locks[tm.slot(addr)]
	for {
		w := s.Load()
		if w&lockedBit != 0 {
			if w&poisonBit != 0 || s.CompareAndSwap(w, w|poisonBit) {
				return
			}
			continue
		}
		if s.CompareAndSwap(w, w+versionInc) {
			return
		}
	}
}

// SnapshotWords copies every slot's lock word for a checkpoint. A word
// locked by an open transaction (a vCPU parked mid LL/SC window) is
// recorded as a fresh unlocked version and poison bits are dropped: a
// restore aborts every live transaction, so neither its locks nor its
// poisoning may be resurrected.
func (tm *TM) SnapshotWords() []uint64 {
	out := make([]uint64, len(tm.locks))
	for i := range tm.locks {
		w := tm.locks[i].Load()
		if w&lockedBit != 0 {
			w = 0
		}
		out[i] = w &^ uint64(poisonBit)
	}
	return out
}

// RestoreWords installs a SnapshotWords copy. Call only at machine
// quiescence, after every live transaction has been aborted and every
// store watcher released (the active count is not part of the snapshot —
// it reaches zero through those aborts/releases).
func (tm *TM) RestoreWords(words []uint64) {
	for i := range tm.locks {
		var w uint64
		if i < len(words) {
			w = words[i]
		}
		tm.locks[i].Store(w)
	}
}

type readEntry struct {
	slot uint32
	ver  uint64
}

type writeEntry struct {
	addr uint32
	val  uint32
	slot uint32
	prev uint64 // lock word we replaced when acquiring
	dup  bool   // true if an earlier entry already owns the slot lock
}

// Txn is one transaction. It is not safe for concurrent use by multiple
// goroutines — like a hardware transaction, it belongs to one CPU.
type Txn struct {
	tm       *TM
	id       uint64
	tid      uint32
	load     func(addr uint32) (uint32, error)
	reads    []readEntry
	writes   []writeEntry
	done     bool
	doomed   bool // fault injection: abort at the first memory op or commit
	aborted  bool
	lastWhy  AbortReason
	lastAddr uint32
}

// Begin starts a transaction for vCPU tid. load reads committed guest
// memory (it is called for transactional reads that miss the write
// buffer).
func (tm *TM) Begin(tid uint32, load func(addr uint32) (uint32, error)) *Txn {
	tm.active.Add(1)
	t := &Txn{tm: tm, id: tm.nextID.Add(1), tid: tid, load: load}
	if tm.inj.Check(faultinject.OpTxnBegin, tid, 0) == faultinject.ActAbort {
		t.doomed = true
	}
	return t
}

// TID returns the vCPU the transaction belongs to.
func (t *Txn) TID() uint32 { return t.tid }

func (t *Txn) abort(reason AbortReason, addr uint32) *Abort {
	t.releaseLocks(true)
	t.finish()
	t.aborted = true
	t.lastWhy = reason
	t.lastAddr = addr
	return &Abort{Reason: reason, Addr: addr}
}

func (t *Txn) finish() {
	if !t.done {
		t.done = true
		t.tm.active.Add(-1)
	}
}

// releaseLocks drops every write lock. With bump, versions advance past the
// pre-lock value so racing readers revalidate.
func (t *Txn) releaseLocks(bump bool) {
	for i := range t.writes {
		w := &t.writes[i]
		if w.dup {
			continue
		}
		v := w.prev
		if bump {
			v += versionInc
		}
		t.tm.locks[w.slot].Store(v)
	}
}

// AbortReason returns why the transaction last aborted, if it has.
func (t *Txn) AbortReason() (AbortReason, bool) {
	return t.lastWhy, t.aborted
}

// Read performs a transactional load.
func (t *Txn) Read(addr uint32) (uint32, error) {
	if t.done {
		return 0, &Abort{Reason: ReasonConflict, Addr: addr}
	}
	if t.doomed {
		return 0, t.abort(ReasonConflict, addr)
	}
	// Read-own-writes.
	for i := len(t.writes) - 1; i >= 0; i-- {
		if t.writes[i].addr == addr {
			return t.writes[i].val, nil
		}
	}
	slot := t.tm.slot(addr)
	s := &t.tm.locks[slot]
	w := s.Load()
	if w&lockedBit != 0 {
		if w>>ownerShift != t.id {
			return 0, t.abort(ReasonConflict, addr)
		}
		// We hold the slot lock for a colliding address; memory holds the
		// committed value for this one.
		v, err := t.load(addr)
		if err != nil {
			t.abort(ReasonConflict, addr)
			return 0, err
		}
		return v, nil
	}
	v, err := t.load(addr)
	if err != nil {
		t.abort(ReasonConflict, addr)
		return 0, err
	}
	if s.Load() != w {
		return 0, t.abort(ReasonConflict, addr)
	}
	t.reads = append(t.reads, readEntry{slot: slot, ver: w})
	if len(t.reads)+len(t.writes) > t.tm.capacity {
		return 0, t.abort(ReasonCapacity, addr)
	}
	return v, nil
}

// Write buffers a transactional store, eagerly locking the word's slot.
func (t *Txn) Write(addr, val uint32) error {
	if t.done {
		return &Abort{Reason: ReasonConflict, Addr: addr}
	}
	if t.doomed {
		return t.abort(ReasonConflict, addr)
	}
	slot := t.tm.slot(addr)
	s := &t.tm.locks[slot]
	for {
		w := s.Load()
		if w&lockedBit != 0 {
			if w>>ownerShift == t.id {
				t.writes = append(t.writes, writeEntry{addr: addr, val: val, slot: slot, dup: true})
				break
			}
			return t.abort(ReasonConflict, addr)
		}
		if s.CompareAndSwap(w, t.id<<ownerShift|lockedBit) {
			t.writes = append(t.writes, writeEntry{addr: addr, val: val, slot: slot, prev: w})
			break
		}
	}
	if len(t.reads)+len(t.writes) > t.tm.capacity {
		return t.abort(ReasonCapacity, addr)
	}
	return nil
}

// AbortNow aborts the transaction explicitly (emulation work or a syscall
// landed inside it).
func (t *Txn) AbortNow(reason AbortReason) *Abort {
	if t.done {
		return &Abort{Reason: reason}
	}
	return t.abort(reason, 0)
}

// Done reports whether the transaction has committed or aborted.
func (t *Txn) Done() bool { return t.done }

// Commit validates the read set, publishes buffered writes through store,
// and releases locks. On abort the returned error is *Abort; a store error
// (e.g. a guest memory fault) is returned as-is after aborting.
func (t *Txn) Commit(store func(addr, val uint32) error) error {
	if t.done {
		return &Abort{Reason: ReasonConflict}
	}
	if t.doomed {
		return t.abort(ReasonConflict, 0)
	}
	switch t.tm.inj.Check(faultinject.OpTxnCommit, t.tid, 0) {
	case faultinject.ActAbort:
		return t.abort(ReasonConflict, 0)
	case faultinject.ActPoison:
		return t.abort(ReasonNonTxnStore, 0)
	}
	// Poison check: a plain store hit one of our locked slots.
	for i := range t.writes {
		w := &t.writes[i]
		if t.tm.locks[w.slot].Load()&poisonBit != 0 {
			return t.abort(ReasonNonTxnStore, w.addr)
		}
	}
	// Read validation.
	for _, r := range t.reads {
		w := t.tm.locks[r.slot].Load()
		if w&lockedBit != 0 {
			if w>>ownerShift != t.id {
				return t.abort(ReasonConflict, 0)
			}
			// We locked this slot after reading it; the pre-lock version
			// must match what we read.
			ok := false
			for i := range t.writes {
				we := &t.writes[i]
				if we.slot == r.slot && !we.dup {
					ok = we.prev == r.ver
					break
				}
			}
			if !ok {
				return t.abort(ReasonConflict, 0)
			}
			continue
		}
		if w != r.ver {
			return t.abort(ReasonConflict, 0)
		}
	}
	// Publish.
	for i := range t.writes {
		w := &t.writes[i]
		if err := store(w.addr, w.val); err != nil {
			t.releaseLocks(true)
			t.finish()
			return err
		}
	}
	t.releaseLocks(true)
	t.finish()
	return nil
}
