package htm

import (
	"errors"
	"testing"

	"atomemu/internal/faultinject"
)

func TestStoreWatcherKeepsNotifyStoreLive(t *testing.T) {
	tm := newTM(t)
	const addr = 0x200
	w0 := tm.SlotWord(addr)
	// With no transaction and no watcher, NotifyStore takes the fast path
	// and leaves the slot untouched.
	tm.NotifyStore(addr)
	if got := tm.SlotWord(addr); got != w0 {
		t.Fatalf("NotifyStore with no watcher changed slot: %#x -> %#x", w0, got)
	}
	tm.AddStoreWatcher()
	if !tm.Active() {
		t.Fatal("watcher should make the TM active")
	}
	tm.NotifyStore(addr)
	w1 := tm.SlotWord(addr)
	if w1 == w0 {
		t.Fatal("NotifyStore with a watcher must bump the slot version")
	}
	tm.RemoveStoreWatcher()
	if tm.Active() {
		t.Fatal("TM should be idle after watcher removal")
	}
	tm.NotifyStore(addr)
	if got := tm.SlotWord(addr); got != w1 {
		t.Fatalf("NotifyStore after watcher removal changed slot: %#x -> %#x", w1, got)
	}
}

func TestBumpIfWordAdoptsOnlyExactWord(t *testing.T) {
	tm := newTM(t)
	const addr = 0x300
	w0 := tm.SlotWord(addr)
	nw, ok := tm.BumpIfWord(addr, w0)
	if !ok || nw == w0 {
		t.Fatalf("bump of current word should succeed: ok=%v %#x -> %#x", ok, w0, nw)
	}
	if got := tm.SlotWord(addr); got != nw {
		t.Fatalf("slot should hold the bumped word: got %#x want %#x", got, nw)
	}
	// A stale expect (the pre-bump word) must be refused: the CAS prevents
	// a degraded vCPU from absorbing a foreign version advance.
	if _, ok := tm.BumpIfWord(addr, w0); ok {
		t.Fatal("bump with stale expect must fail")
	}
	if got := tm.SlotWord(addr); got != nw {
		t.Fatalf("failed bump must not change the slot: got %#x want %#x", got, nw)
	}
}

func TestBumpIfWordRefusesLockedWord(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	const addr = 0x400
	txn := tm.Begin(1, mem.load)
	if err := txn.Write(addr, 7); err != nil {
		t.Fatal(err)
	}
	w := tm.SlotWord(addr) // eager write lock: word is locked by txn
	if _, ok := tm.BumpIfWord(addr, w); ok {
		t.Fatal("bump of a locked word must be refused")
	}
	if got := tm.SlotWord(addr); got != w {
		t.Fatalf("refused bump corrupted the lock word: %#x -> %#x", w, got)
	}
	txn.AbortNow(ReasonConflict)
}

func TestInjectedBeginAbortDoomsTxn(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	tm.SetInjector(faultinject.New(faultinject.Rule{
		Op: faultinject.OpTxnBegin, Action: faultinject.ActAbort, TID: 5, Count: 1,
	}))
	txn := tm.Begin(5, mem.load)
	_, err := txn.Read(0x10)
	var ab *Abort
	if !errors.As(err, &ab) || ab.Reason != ReasonConflict {
		t.Fatalf("doomed txn should abort with ReasonConflict, got %v", err)
	}
	if why, ok := txn.AbortReason(); !ok || why != ReasonConflict {
		t.Fatalf("AbortReason = %v,%v", why, ok)
	}
	// Other tids are unaffected.
	other := tm.Begin(6, mem.load)
	if _, err := other.Read(0x10); err != nil {
		t.Fatalf("tid 6 should be untouched: %v", err)
	}
	if err := other.Commit(mem.store); err != nil {
		t.Fatal(err)
	}
}

func TestInjectedCommitPoisonAborts(t *testing.T) {
	tm := newTM(t)
	mem := newMemStore()
	tm.SetInjector(faultinject.New(faultinject.Rule{
		Op: faultinject.OpTxnCommit, Action: faultinject.ActPoison, Count: 1,
	}))
	txn := tm.Begin(1, mem.load)
	if err := txn.Write(0x20, 99); err != nil {
		t.Fatal(err)
	}
	err := txn.Commit(mem.store)
	var ab *Abort
	if !errors.As(err, &ab) || ab.Reason != ReasonNonTxnStore {
		t.Fatalf("poisoned commit should abort with ReasonNonTxnStore, got %v", err)
	}
	if v, _ := mem.load(0x20); v != 0 {
		t.Fatalf("aborted commit leaked a write: %d", v)
	}
	if tm.Active() {
		t.Fatal("aborted txn left the TM active")
	}
	// The rule's window is spent; the retry commits cleanly.
	retry := tm.Begin(1, mem.load)
	if err := retry.Write(0x20, 99); err != nil {
		t.Fatal(err)
	}
	if err := retry.Commit(mem.store); err != nil {
		t.Fatalf("retry after spent rule: %v", err)
	}
}
