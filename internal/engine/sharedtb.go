package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"atomemu/internal/asm"
	"atomemu/internal/ir"
	"atomemu/internal/tbstore"
)

// This file is the machine side of the cross-job translation store
// (internal/tbstore): key derivation, attachment, and the store-watch
// pristine checks that keep shared blocks sound against self-modifying
// guest code. See DESIGN.md §13.

// ImageKey content-addresses an assembled image: sha256 over its origin,
// entry point and words. Machines whose images hash equal and whose
// translation options match (sharedOptsKey) produce interchangeable
// translation blocks.
func ImageKey(im *asm.Image) [32]byte {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:], im.Org)
	binary.LittleEndian.PutUint32(buf[4:], im.Entry)
	h.Write(buf[:])
	for _, w := range im.Words {
		binary.LittleEndian.PutUint32(buf[:4], w)
		h.Write(buf[:4])
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// ImageSpan returns the guest address range an image's words occupy —
// the span the shared-translation store watch guards.
func ImageSpan(im *asm.Image) (base, size uint32) {
	return im.Org, im.Size()
}

// sharedOptsKey canonically describes everything that changes what a
// translation block means: scheme identity (demotion swaps the scheme, so
// a demoted machine naturally re-keys), instrumentation flags, block caps,
// the optimizer, fusion, and the tier/chain configuration. Kept as a full
// descriptor string so key equality is exact.
func (m *Machine) sharedOptsKey() string {
	o := m.topts
	return fmt.Sprintf("scheme=%s st=%t ld=%t max=%d opt=%t fuse=%t tier=%t hot=%d super=%d chain=%d",
		m.scheme.Name(), o.InstrumentStores, o.InstrumentLoads, o.MaxGuestInstrs,
		o.Optimize, o.FuseAtomics, m.tiered, m.hotThreshold, m.superMax, m.chainBudget)
}

// attachSharedTB derives the machine's keyed view of the process-wide
// store and installs the image-span store watch. Must run after host-side
// image seeding (WriteWordPriv resolves as a store and would count) and
// before guest execution starts. seedStores, when non-nil, pre-marks pages
// the producing run had already stored to — required when the machine's
// memory comes from a snapshot (warm fork) rather than a pristine image,
// so the span checks below keep rejecting pages mutated before the cut.
func (m *Machine) attachSharedTB(image [32]byte, base, size uint32, seedStores []uint64) {
	st := m.cfg.SharedTBStore
	if st == nil || size == 0 {
		return
	}
	m.sharedImage = image
	m.sharedView = st.View(tbstore.Key{Image: image, Opts: m.sharedOptsKey()})
	m.sharedWatch = m.mem.WatchStores(base, base+size)
	m.sharedWatch.SeedStores(seedStores)
}

// rekeySharedTB re-derives the view after demoteScheme changed the
// translation options: post-demotion translations belong to the demoted
// key's universe, so the machine gets a clean keyed view instead of
// poisoning (or being poisoned by) the un-demoted one. Runs only while the
// machine is quiesced (restore owns all vCPUs).
func (m *Machine) rekeySharedTB() {
	if m.sharedView == nil {
		return
	}
	m.sharedView = m.cfg.SharedTBStore.View(tbstore.Key{Image: m.sharedImage, Opts: m.sharedOptsKey()})
}

// ImageMutated reports whether any guest store has landed in the watched
// image span (false when no watch is installed).
func (m *Machine) ImageMutated() bool {
	return m.sharedWatch.Count() != 0
}

// ImageStoreCounts snapshots the per-page store counts of the image-span
// watch (nil without one). The server's warm pool captures this alongside
// a template snapshot and seeds it into forks via Config.SharedTBSeedStores.
func (m *Machine) ImageStoreCounts() []uint64 {
	return m.sharedWatch.StoreCounts()
}

// sharedSpanClean reports whether the guest range [lo, hi) lies inside the
// watched image span and none of its pages has seen a guest store. The
// store-watch counter is bumped before the mutating word is written
// (mmu.StoreWatch), so a translation that read a mutated word can never
// pass a clean check performed after the translation finished. Page
// granularity keeps data-writing programs shareable: a store to a data
// cell only taints its own page, not the whole image.
func (m *Machine) sharedSpanClean(lo, hi uint32) bool {
	return m.sharedWatch.Contains(lo, hi) && m.sharedWatch.RangeCount(lo, hi) == 0
}

// tbSpan returns the conservative guest address cover of a TB's
// translation inputs.
func (tb *TB) tbSpan() (lo, hi uint32) {
	return tb.lo.Load(), tb.hi.Load()
}

// widenSpan grows the TB's cover monotonically (promotion replaces a
// block's IR with a superblock spanning more guest code; the bounds must
// be published before the new IR so any reader that sees the superblock
// also sees its full cover).
func (tb *TB) widenSpan(lo, hi uint32) {
	for {
		cur := tb.lo.Load()
		if lo >= cur || tb.lo.CompareAndSwap(cur, lo) {
			break
		}
	}
	for {
		cur := tb.hi.Load()
		if hi <= cur || tb.hi.CompareAndSwap(cur, hi) {
			break
		}
	}
}

// Instrumentation-sensitivity bits carried on each TB (see tbCache.retain).
const (
	sensStores = 1 << 0
	sensLoads  = 1 << 1
)

func sensOf(hasStores, hasLoads bool) uint32 {
	var s uint32
	if hasStores {
		s |= sensStores
	}
	if hasLoads {
		s |= sensLoads
	}
	return s
}

// compatibleAfter reports whether this TB's translation is unchanged by an
// instrumentation transition: a block with no plain stores translates
// identically whether or not stores are instrumented, and likewise for
// loads. Exactly the predicate scheme demotion retains by.
func (tb *TB) compatibleAfter(oldStores, newStores, oldLoads, newLoads bool) bool {
	s := tb.sens.Load()
	if oldStores != newStores && s&sensStores != 0 {
		return false
	}
	if oldLoads != newLoads && s&sensLoads != 0 {
		return false
	}
	return true
}

// noteBlock records an IR block's span and sensitivity on the TB; called
// before the block's IR is (or could be) published so readers of the IR
// always see covering metadata.
func (tb *TB) noteBlock(block *ir.Block) {
	tb.widenSpan(block.GuestLo, block.GuestHi)
	tb.sens.Or(sensOf(block.HasStores, block.HasLoads))
}
