package engine

import (
	"math/rand"
	"testing"

	"atomemu/internal/mmu"
)

const fusedCounterSrc = `
.org 0x10000
.entry worker
worker:                 ; r0 = iterations
    ldr r4, =counter
loop:
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne loop
    subsi r0, r0, #1
    bne loop
    movi r0, #0
    svc #1
.align 1024
counter: .word 0
`

// TestFusedCounterAllSchemes: with rule-based fusion on, the canonical
// atomic-increment loop must stay correct under concurrency for every
// scheme (fused RMWs bypass the scheme but notify it).
func TestFusedCounterAllSchemes(t *testing.T) {
	const threads, iters = 6, 2000
	for _, scheme := range []string{"pico-cas", "pico-st", "pico-htm", "hst", "hst-weak", "hst-htm", "pst", "pst-remap", "pst-mpk"} {
		t.Run(scheme, func(t *testing.T) {
			im := buildImage(t, fusedCounterSrc)
			cfg := DefaultConfig(scheme)
			cfg.FuseAtomics = true
			cfg.MaxGuestInstrs = 100_000_000
			m, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadImage(im); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < threads; i++ {
				if _, err := m.SpawnThread(im.Entry, iters); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			v, _ := m.Mem().ReadWordPriv(im.MustSymbol("counter"))
			if v != threads*iters {
				t.Fatalf("fused counter = %d, want %d", v, threads*iters)
			}
			// The loop really was fused: SC failures are impossible for a
			// host atomic RMW.
			agg := m.AggregateStats()
			if agg.SCFails != 0 {
				t.Errorf("fused RMW reported %d SC failures", agg.SCFails)
			}
		})
	}
}

// TestFusedAndRawMixOnSameVariable: thread A uses the fused increment while
// thread B hammers the same word with a raw (unfusable) LL/SC increment.
// NoteStore must keep B's monitors honest: the total must be exact.
func TestFusedAndRawMixOnSameVariable(t *testing.T) {
	// The raw loop inserts a nop between ldrex and the add so the fusion
	// pattern does not match, keeping it on the scheme path.
	src := `
.org 0x10000
.entry fusedworker
fusedworker:            ; r0 = iterations
    ldr r4, =counter
floop:
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne floop
    subsi r0, r0, #1
    bne floop
    movi r0, #0
    svc #1
rawworker:              ; r0 = iterations
    ldr r4, =counter
rloop:
    ldrex r1, [r4]
    nop
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne rloop
    subsi r0, r0, #1
    bne rloop
    movi r0, #0
    svc #1
.align 1024
counter: .word 0
`
	const iters = 3000
	for _, scheme := range []string{"hst", "pico-st", "pst", "hst-htm", "pst-mpk"} {
		t.Run(scheme, func(t *testing.T) {
			im := buildImage(t, src)
			cfg := DefaultConfig(scheme)
			cfg.FuseAtomics = true
			cfg.MaxGuestInstrs = 200_000_000
			m, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadImage(im); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				if _, err := m.SpawnThread(im.MustSymbol("fusedworker"), iters); err != nil {
					t.Fatal(err)
				}
				if _, err := m.SpawnThread(im.MustSymbol("rawworker"), iters); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			v, _ := m.Mem().ReadWordPriv(im.MustSymbol("counter"))
			if v != 4*iters {
				t.Fatalf("mixed counter = %d, want %d — fused RMW broke scheme monitors", v, 4*iters)
			}
		})
	}
}

// TestDifferentialFusionPreservesSemantics: random single-threaded programs
// must behave identically with fusion on and off.
func TestDifferentialFusionPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	for round := 0; round < 10; round++ {
		im, err := genProgram(r, 120)
		if err != nil {
			t.Fatal(err)
		}
		plain := runDifferential(t, im, "hst", false)

		cfg := DefaultConfig("hst")
		cfg.FuseAtomics = true
		cfg.MaxGuestInstrs = 10_000_000
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadImage(im); err != nil {
			t.Fatal(err)
		}
		if err := m.MapRegion(scratchBase, 4096, mmu.PermRW); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Start(im.Entry); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		fused := archResult{output: m.Output(), mem: make([]uint32, 1024)}
		for i := range fused.mem {
			v, _ := m.Mem().ReadWordPriv(scratchBase + uint32(i)*4)
			fused.mem[i] = v
		}
		diffResults(t, "fusion", plain, fused)
	}
}

// TestFusionReducesVirtualTime: the point of rule-based translation is
// cheaper atomics. On an atomic-heavy workload HST+fusion must beat plain
// HST in virtual time.
func TestFusionReducesVirtualTime(t *testing.T) {
	run := func(fuse bool) uint64 {
		im := buildImage(t, fusedCounterSrc)
		cfg := DefaultConfig("hst")
		cfg.FuseAtomics = fuse
		cfg.MaxGuestInstrs = 100_000_000
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadImage(im); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if _, err := m.SpawnThread(im.Entry, 3000); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.VirtualTime()
	}
	plain, fused := run(false), run(true)
	if fused >= plain {
		t.Fatalf("fusion did not pay: fused=%d plain=%d", fused, plain)
	}
	t.Logf("fusion speedup on atomic counter: %.2fx", float64(plain)/float64(fused))
}
