package engine

import (
	"errors"

	"atomemu/internal/core"
)

// StopClass classifies how a Run/RunContext finished. Its integer value is
// the process exit code cmd/atomemu has always used, and the job daemon
// reports the same classification, so the two cannot drift.
type StopClass int

// Stop classes, in exit-code order.
const (
	// StopOK: the guest ran to completion.
	StopOK StopClass = 0
	// StopError: any failure without a more specific class (I/O errors,
	// cancellation, deadline, guest faults, vCPU panics).
	StopError StopClass = 1
	// StopDeadlock: every live vCPU was parked in a guest syscall with no
	// wake in flight (core.DeadlockError).
	StopDeadlock StopClass = 2
	// StopFault: the emulation scheme failed — a scheme-level
	// core.EmulationError or a progress-watchdog trip.
	StopFault StopClass = 3
	// StopRecoveryExhausted: rollback recovery used its whole attempt
	// budget without a clean finish.
	StopRecoveryExhausted StopClass = 4
)

// String names the class for status reports.
func (c StopClass) String() string {
	switch c {
	case StopOK:
		return "ok"
	case StopDeadlock:
		return "deadlock"
	case StopFault:
		return "fault"
	case StopRecoveryExhausted:
		return "recovery-exhausted"
	}
	return "error"
}

// ExitCode returns the class as a process exit code.
func (c StopClass) ExitCode() int { return int(c) }

// ClassifyStop maps a machine stop error to its StopClass.
// RecoveryExhaustedError wraps the final failure, so it is matched first —
// an exhausted run that died on a watchdog trip is class 4, not 3.
func ClassifyStop(err error) StopClass {
	if err == nil {
		return StopOK
	}
	var rex *RecoveryExhaustedError
	if errors.As(err, &rex) {
		return StopRecoveryExhausted
	}
	var dead *core.DeadlockError
	if errors.As(err, &dead) {
		return StopDeadlock
	}
	var wd *core.WatchdogError
	var em *core.EmulationError
	if errors.As(err, &wd) || errors.As(err, &em) {
		return StopFault
	}
	return StopError
}
