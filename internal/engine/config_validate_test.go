package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"atomemu/internal/core"
)

// TestValidateAcceptsDefaults: every scheme's DefaultConfig must validate,
// and so must the zero-sized partial configs normalization fills in.
func TestValidateAcceptsDefaults(t *testing.T) {
	for _, s := range core.SchemeNames() {
		if err := DefaultConfig(s).Validate(); err != nil {
			t.Errorf("DefaultConfig(%q).Validate() = %v", s, err)
		}
		if err := (Config{Scheme: s}).Validate(); err != nil {
			t.Errorf("partial config for %q: %v", s, err)
		}
	}
	// -1 is the documented "disabled" sentinel, not nonsense.
	cfg := DefaultConfig("hst")
	cfg.RecoveryAttempts = -1
	cfg.WatchdogSCFails = -1
	cfg.PreemptMemOps = -1
	if err := cfg.Validate(); err != nil {
		t.Errorf("-1 sentinels should validate: %v", err)
	}
}

// TestValidateRejectsNonsense covers the explicit-error cases that used to
// be silently clamped or to surface as obscure mid-run faults.
func TestValidateRejectsNonsense(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"unknown scheme", func(c *Config) { c.Scheme = "qemu" }, "unknown scheme"},
		{"hash bits over address space", func(c *Config) { c.HashBits = 30 }, "28-bit table limit"},
		{"hash bits under table minimum", func(c *Config) { c.HashBits = 2 }, "4-bit table minimum"},
		{"mem below two pages", func(c *Config) { c.MemBytes = 4096 }, "two-page minimum"},
		{"zero threads", func(c *Config) { c.MaxThreads = -3 }, "MaxThreads"},
		{"stack region overflow", func(c *Config) { c.MemBytes = 0; c.StackBytes = 1 << 31 }, "overflow the 32-bit address space"},
		{"negative quantum", func(c *Config) { c.QuantumTBs = -1 }, "QuantumTBs"},
		{"recovery below sentinel", func(c *Config) { c.RecoveryAttempts = -2 }, "-1 disables recovery"},
		{"watchdog below sentinel", func(c *Config) { c.WatchdogSCFails = -2 }, "-1 disables the watchdog"},
		{"negative spin budget", func(c *Config) { c.HashSpinBudget = -1 }, "HashSpinBudget"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig("hst")
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
		if _, err := NewMachine(cfg); err == nil {
			t.Errorf("%s: NewMachine accepted an invalid config", tc.name)
		}
	}
	// HTM sizing is only meaningful for the HTM-backed schemes.
	htm := DefaultConfig("pico-htm")
	htm.HTMBits = 26
	if err := htm.Validate(); err == nil || !strings.Contains(err.Error(), "HTMBits") {
		t.Errorf("pico-htm HTMBits=26: Validate() = %v, want HTMBits error", err)
	}
	soft := DefaultConfig("pico-cas")
	soft.HTMBits = 26
	if err := soft.Validate(); err != nil {
		t.Errorf("pico-cas ignores HTMBits, Validate() = %v", err)
	}
}

// TestClassifyStop pins the exit classification shared by cmd/atomemu and
// the job daemon: 2 deadlock, 3 fault/watchdog, 4 recovery exhausted,
// 1 anything else, 0 success. Wrapping must not change the class.
func TestClassifyStop(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want StopClass
	}{
		{"success", nil, StopOK},
		{"deadlock", &core.DeadlockError{}, StopDeadlock},
		{"wrapped deadlock", fmt.Errorf("engine: machine stopped: %w", &core.DeadlockError{}), StopDeadlock},
		{"watchdog", &core.WatchdogError{Scheme: "hst", TID: 1}, StopFault},
		{"emulation", &core.EmulationError{Scheme: "pico-htm", Reason: "livelock"}, StopFault},
		{"exhausted", &RecoveryExhaustedError{Attempts: 3, Err: &core.WatchdogError{}}, StopRecoveryExhausted},
		{"cancelled", context.Canceled, StopError},
		{"deadline", &DeadlineError{TID: 1, Deadline: 10, Clock: 11}, StopError},
		{"plain", errors.New("boom"), StopError},
	}
	for _, tc := range cases {
		if got := ClassifyStop(tc.err); got != tc.want {
			t.Errorf("%s: ClassifyStop = %v, want %v", tc.name, got, tc.want)
		}
	}
	if StopRecoveryExhausted.ExitCode() != 4 || StopDeadlock.ExitCode() != 2 ||
		StopFault.ExitCode() != 3 || StopError.ExitCode() != 1 || StopOK.ExitCode() != 0 {
		t.Error("StopClass exit codes drifted from the documented 0/1/2/3/4 mapping")
	}
	if StopFault.String() != "fault" || StopRecoveryExhausted.String() != "recovery-exhausted" {
		t.Errorf("StopClass names drifted: %v %v", StopFault, StopRecoveryExhausted)
	}
}
