package engine

import (
	"sync/atomic"
	"testing"

	"atomemu/internal/checkpoint"
	"atomemu/internal/tbstore"
)

// sharedTBDeterminismImage: a single-threaded mix of compute, plain memory
// traffic and LL/SC on a data page .align-ed away from the code page, so the
// code span stays pristine and every code block is publishable.
const sharedTBDeterminismImage = `
.org 0x10000
.entry main
main:
    movi r5, #0
    movi r6, #400
loop:
    bl work
    add r5, r5, r0
    ldr r2, =cell
    str r5, [r2]
    subsi r6, r6, #1
    bne loop
    ldr r3, [r2]
    mov r0, r3
    svc #6
    ldrex r1, [r2]
    add r1, r1, r5
    strex r4, r1, [r2]
    mov r0, r4
    svc #6
    movi r0, #0
    svc #1
work:
    movi r0, #3
    mul r0, r0, r0
    ret
.align 4096
cell: .word 0
`

func TestSharedStoreCrossMachineReuse(t *testing.T) {
	im := buildImage(t, sharedTBDeterminismImage)
	store := tbstore.New[*TB](4096)
	run := func() *Machine {
		cfg := DefaultConfig("pico-cas")
		cfg.MaxGuestInstrs = 50_000_000
		cfg.SharedTBStore = store
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadImage(im); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Start(im.Entry, 0); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1 := run()
	m2 := run()

	a1, a2 := m1.AggregateStats(), m2.AggregateStats()
	if a1.TBStorePublishes == 0 {
		t.Error("first machine should publish its translations")
	}
	if a2.TBStoreHits == 0 {
		t.Error("second machine should adopt shared translations")
	}
	if a2.TBStoreHits < a1.TBStorePublishes {
		t.Errorf("second machine adopted %d blocks, first published %d",
			a2.TBStoreHits, a1.TBStorePublishes)
	}
	out1, out2 := m1.Output(), m2.Output()
	if len(out1) != len(out2) {
		t.Fatalf("output lengths differ: %v vs %v", out1, out2)
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("outputs differ at %d: %v vs %v", i, out1, out2)
		}
	}
	if a1.GuestInstrs != a2.GuestInstrs {
		t.Errorf("guest instruction counts differ: %d vs %d", a1.GuestInstrs, a2.GuestInstrs)
	}
	st := store.Stats()
	if st.Hits == 0 || st.Publishes == 0 {
		t.Errorf("store counters flat: %+v", st)
	}
}

// TestSharedStoreDeterminismColdHitFork is the cross-start determinism
// contract: for each scheme, a cold run, a shared-store-hit run and a
// warm fork from a mid-run checkpoint must produce byte-identical output
// and identical guest instruction counts.
func TestSharedStoreDeterminismColdHitFork(t *testing.T) {
	for _, scheme := range []string{"pico-cas", "hst", "pico-htm"} {
		t.Run(scheme, func(t *testing.T) {
			im := buildImage(t, sharedTBDeterminismImage)
			base := func() Config {
				cfg := DefaultConfig(scheme)
				cfg.MaxGuestInstrs = 50_000_000
				return cfg
			}

			// Cold: no shared store at all.
			cold := newTestMachine(t, scheme, im)
			if _, err := cold.Start(im.Entry, 0); err != nil {
				t.Fatal(err)
			}
			if err := cold.Run(); err != nil {
				t.Fatal(err)
			}

			// Producer: publishes into the store and captures a mid-run
			// checkpoint plus the store counts at the cut, the template a
			// warm fork is built from.
			store := tbstore.New[*TB](4096)
			var snap atomic.Pointer[checkpoint.Snapshot]
			var seed atomic.Pointer[[]uint64]
			var prod *Machine
			pcfg := base()
			pcfg.SharedTBStore = store
			pcfg.CheckpointEvery = 2000
			pcfg.CheckpointSink = func(s *checkpoint.Snapshot) {
				if snap.CompareAndSwap(nil, s) {
					counts := prod.ImageStoreCounts()
					seed.Store(&counts)
				}
			}
			var err error
			prod, err = NewMachine(pcfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := prod.LoadImage(im); err != nil {
				t.Fatal(err)
			}
			if _, err := prod.Start(im.Entry, 0); err != nil {
				t.Fatal(err)
			}
			if err := prod.Run(); err != nil {
				t.Fatal(err)
			}
			if snap.Load() == nil {
				t.Fatal("producer finished without capturing a checkpoint; shorten the cadence")
			}

			// Hit: same config and store, adopts the producer's blocks.
			hcfg := base()
			hcfg.SharedTBStore = store
			hit, err := NewMachine(hcfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := hit.LoadImage(im); err != nil {
				t.Fatal(err)
			}
			if _, err := hit.Start(im.Entry, 0); err != nil {
				t.Fatal(err)
			}
			if err := hit.Run(); err != nil {
				t.Fatal(err)
			}
			if hit.AggregateStats().TBStoreHits == 0 {
				t.Error("hit run adopted nothing from the shared store")
			}

			// Fork: resume the producer's checkpoint in a fresh machine,
			// shared store attached with the producer's store counts seeded.
			fcfg := base()
			fcfg.SharedTBStore = store
			fcfg.SharedTBImage = ImageKey(im)
			fcfg.SharedTBBase, fcfg.SharedTBSize = ImageSpan(im)
			fcfg.SharedTBSeedStores = *seed.Load()
			fork, err := ResumeFromSnapshot(fcfg, snap.Load())
			if err != nil {
				t.Fatal(err)
			}
			if err := fork.Run(); err != nil {
				t.Fatal(err)
			}

			want := cold.Output()
			for name, m := range map[string]*Machine{"hit": hit, "fork": fork} {
				got := m.Output()
				if len(got) != len(want) {
					t.Fatalf("%s output %v, cold %v", name, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s output %v, cold %v", name, got, want)
					}
				}
				if gi, ci := m.AggregateStats().GuestInstrs, cold.AggregateStats().GuestInstrs; gi != ci {
					t.Errorf("%s GuestInstrs = %d, cold = %d", name, gi, ci)
				}
			}
		})
	}
}

// selfModifyLitmusImage patches target's first instruction (movi r0, #1 →
// the donor word, movi r0, #2) before calling it when the spawn argument is
// non-zero. A machine that mutates its code span must never adopt (or keep
// serving to others) a translation of the pristine bytes.
const selfModifyLitmusImage = `
.org 0x10000
.entry main
main:
    cmpi r0, #0
    beq run
    ldr r2, =donor
    ldr r1, [r2]
    ldr r3, =target
    str r1, [r3]
run:
    bl target
    svc #6
    movi r0, #0
    svc #1
target:
    movi r0, #1
    ret
donor:
    movi r0, #2
    ret
`

func TestSharedStoreSelfModifyLitmus(t *testing.T) {
	im := buildImage(t, selfModifyLitmusImage)
	store := tbstore.New[*TB](4096)
	run := func(arg uint32) *Machine {
		cfg := DefaultConfig("pico-cas")
		cfg.MaxGuestInstrs = 1_000_000
		cfg.SharedTBStore = store
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadImage(im); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Start(im.Entry, arg); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Job 1 runs pristine and publishes target's original translation.
	m1 := run(0)
	if out := m1.Output(); len(out) != 1 || out[0] != 1 {
		t.Fatalf("pristine run output = %v, want [1]", out)
	}
	if m1.ImageMutated() {
		t.Fatal("pristine run must not trip the store watch")
	}

	// Job 2 patches the code first. Adopting the shared pristine block would
	// print 1; the store-watch span check must force a retranslation of the
	// mutated bytes.
	m2 := run(1)
	if out := m2.Output(); len(out) != 1 || out[0] != 2 {
		t.Fatalf("self-modifying run output = %v, want [2] (stale shared TB executed?)", out)
	}
	if !m2.ImageMutated() {
		t.Fatal("store watch missed the code-span store")
	}
	a2 := m2.AggregateStats()
	if a2.TBStoreInvalidations == 0 {
		t.Error("mutated-span adoption should count TBStoreInvalidations")
	}
	if a2.TBStoreHits == 0 {
		t.Error("blocks reached before the mutation should still be adopted")
	}

	// Job 3 runs pristine again: the store must still serve the original,
	// unpoisoned translation.
	m3 := run(0)
	if out := m3.Output(); len(out) != 1 || out[0] != 1 {
		t.Fatalf("post-litmus pristine run output = %v, want [1]", out)
	}
}

// demotionRetentionImage exercises three leaf functions with distinct
// instrumentation sensitivity: compute (neither), reader (loads), writer
// (stores only — ldr =cell is a mov-immediate pseudo, not a load).
const demotionRetentionImage = `
.org 0x10000
.entry main
main:
    movi r6, #100
loop:
    bl compute
    bl reader
    bl writer
    subsi r6, r6, #1
    bne loop
    mov r0, r5
    svc #6
    movi r0, #0
    svc #1
compute:
    movi r3, #7
    mul r3, r3, r3
    ret
reader:
    ldr r2, =cell
    ldr r5, [r2]
    ret
writer:
    ldr r2, =cell
    str r6, [r2]
    ret
.align 4096
cell: .word 0
`

// TestDemotionRetainsCompatibleTranslations is the regression test for the
// demotion cache flush: demoting pico-htm (stores+loads instrumented) to hst
// (stores only) used to reset the whole machine cache; it must instead drop
// exactly the blocks whose translation depended on load instrumentation.
func TestDemotionRetainsCompatibleTranslations(t *testing.T) {
	im := buildImage(t, demotionRetentionImage)
	m := newTestMachine(t, "pico-htm", im)
	if _, err := m.Start(im.Entry, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	computePC := im.MustSymbol("compute")
	readerPC := im.MustSymbol("reader")
	writerPC := im.MustSymbol("writer")
	for name, pc := range map[string]uint32{"compute": computePC, "reader": readerPC, "writer": writerPC} {
		if m.tbs.get(pc) == nil {
			t.Fatalf("setup: %s block not cached after the run", name)
		}
	}
	before := m.tbs.len()

	if err := m.demoteScheme(); err != nil {
		t.Fatal(err)
	}
	if got := m.scheme.Name(); got != "hst" {
		t.Fatalf("scheme after demotion = %q, want hst", got)
	}
	if m.tbs.get(computePC) == nil {
		t.Error("pure-compute block dropped by demotion; translation will be re-paid")
	}
	if m.tbs.get(writerPC) == nil {
		t.Error("store-only block dropped, but store instrumentation did not change")
	}
	if m.tbs.get(readerPC) != nil {
		t.Error("load-bearing block survived a load-instrumentation change")
	}
	if after := m.tbs.len(); after >= before || after == 0 {
		t.Errorf("cache went %d -> %d blocks; want a partial retain", before, after)
	}
}

// TestDemotionRetentionRewrapsDecOnlyTBs covers the tiered variant: a
// retained decode-only block must come back as a fresh TB object so a
// post-demotion promotion can never install new-universe IR onto an object
// still resident in the pre-demotion shared-store segment.
func TestDemotionRetentionRewrapsDecOnlyTBs(t *testing.T) {
	im := buildImage(t, demotionRetentionImage)
	cfg := DefaultConfig("pico-htm")
	cfg.MaxGuestInstrs = 50_000_000
	cfg.Tiered = true
	cfg.HotThreshold = 1 << 30 // nothing promotes: every block stays dec-only
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(im.Entry, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	computePC := im.MustSymbol("compute")
	old := m.tbs.get(computePC)
	if old == nil {
		t.Fatal("setup: compute block not cached")
	}
	if old.ir.Load() != nil {
		t.Fatal("setup: compute block promoted despite the huge threshold")
	}
	if err := m.demoteScheme(); err != nil {
		t.Fatal(err)
	}
	now := m.tbs.get(computePC)
	if now == nil {
		t.Fatal("dec-only compute block dropped by demotion")
	}
	if now == old {
		t.Error("retained dec-only block must be re-wrapped, not shared with the old universe")
	}
	if now.dec != old.dec {
		t.Error("re-wrap must reuse the decoded block, not re-decode")
	}
}

// TestMidRunDemotionDoesNotRetranslateComputeBlocks drives a wedged SC loop
// (strex address differs from the ldrex address) through the watchdog so the
// first rollback demotes pico-htm to hst mid-run, then bounds the total
// translation work: the compute leaves the loop keeps calling must be served
// from the retained cache after demotion, so translations stay near the
// distinct-block count instead of re-paying the whole working set.
func TestMidRunDemotionDoesNotRetranslateComputeBlocks(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry worker
worker:
    ldr r4, =xvar
    ldr r5, =yvar
loop:
    bl c1
    bl c2
    bl c3
    bl c4
    ldrex r1, [r4]
    strex r2, r1, [r5]
    b loop
c1:
    movi r3, #5
    mul r3, r3, r3
    ret
c2:
    addi r3, r3, #1
    ret
c3:
    addi r3, r3, #2
    ret
c4:
    addi r3, r3, #3
    ret
.align 1024
xvar: .word 1
yvar: .word 2
`)
	cfg := DefaultConfig("pico-htm")
	cfg.MaxGuestInstrs = 2_000_000_000
	cfg.WatchdogSCFails = 500
	cfg.CheckpointEvery = 2_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnThread(im.Entry, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err == nil {
		t.Fatal("wedged guest should not finish cleanly")
	}
	if got := m.Scheme().Name(); got != "hst" {
		t.Fatalf("run never demoted (scheme %q); the test exercised nothing", got)
	}
	distinct := uint64(m.tbs.len())
	agg := m.AggregateStats()
	// Only the load-bearing SC block is invalidated by the demotion; budget
	// a handful of retranslations on top of one translation per distinct
	// block. Resetting the cache instead re-pays every block the post-demote
	// loop touches across every recovery attempt, which blows this bound.
	if agg.TBTranslations > distinct+4 {
		t.Errorf("TBTranslations = %d with %d distinct blocks; demotion re-paid retained translations",
			agg.TBTranslations, distinct)
	}
	if m.tbs.get(im.MustSymbol("c1")) == nil {
		t.Error("compute block evicted across mid-run demotion")
	}
}
