package engine

import (
	"fmt"
	"runtime"

	"atomemu/internal/arch"
	"atomemu/internal/htm"
	"atomemu/internal/ir"
	"atomemu/internal/mmu"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
	"atomemu/internal/translate"
)

// This file is the IR-bypass fast path (ROADMAP item 1): direct block
// chaining, the decoder-direct interp tier, and superblock promotion.
//
//   - Chaining: a localTB records its taken/fallthrough successors, so
//     stepOnce follows a committed exit straight to the next block without
//     a cache lookup. Links live in the vCPU-private tier only and die
//     with it (TB flush, scheme demotion, checkpoint restore).
//   - Tiering: with Config.Tiered, a cold block is only decoded
//     (translate.Interp tier: no IR, no optimizer) and interpreted off the
//     instruction slice; once its per-vCPU execution count crosses
//     HotThreshold it is re-translated as an optimized superblock
//     (translation follows unconditional branches) and the IR is published
//     on the shared TB for every vCPU to adopt.

// localTB is one vCPU's private view of a TB: the resolved executable form
// plus the direct-chaining links to its successors. Everything here is
// single-goroutine state; dropping the localTBs map (TB-cache flush,
// demotion, restore) drops the chain links with it.
type localTB struct {
	tb    *TB
	start uint32
	block *ir.Block // resolved IR; nil while the block runs in the interp tier
	execs uint32    // interp-tier executions by this vCPU, drives promotion
	taken *localTB  // successor after a taken/direct exit
	fall  *localTB  // successor after a fallthrough exit
}

// exitOutcome classifies how a block ended, for chaining: only direct
// exits (whose target is a static property of the block) may be chained.
type exitOutcome uint8

const (
	exitNone  exitOutcome = iota // indirect, syscall, halt, yield, fault
	exitTaken                    // direct jump or taken conditional branch
	exitFall                     // untaken conditional branch
)

// link returns the chain successor recorded for outcome o, if any.
func (lt *localTB) link(o exitOutcome) *localTB {
	if o == exitTaken {
		return lt.taken
	}
	return lt.fall
}

// setLink records the chain successor for outcome o. Valid because a direct
// exit's target is determined by the block form alone; any change of form
// (promotion, IR adoption) resets the links first.
func (lt *localTB) setLink(o exitOutcome, next *localTB) {
	if o == exitTaken {
		lt.taken = next
	} else {
		lt.fall = next
	}
}

// abortOpenTxn aborts an open transaction before emulation work that the
// paper's interference model says cannot survive inside one (translation,
// promotion): QEMU's translator touches shared emulator state.
func (c *CPU) abortOpenTxn(pc uint32) {
	if txn := c.mon.Txn; txn != nil && !txn.Done() {
		txn.AbortNow(htm.ReasonEmulation)
		c.st.HTMAborts++
		c.ring.Emit(obs.EvHTMAbort, pc, uint64(htm.ReasonEmulation))
		c.charge(stats.CompHTM, c.m.cfg.Cost.HTMAbort)
	}
}

// fetcher adapts the MMU's instruction fetch for the translator.
func (m *Machine) fetcher() translate.FetchFunc {
	return func(addr uint32) (uint32, error) {
		w, f := m.mem.FetchWord(addr)
		if f != nil {
			return 0, f
		}
		return w, nil
	}
}

// promote re-translates a hot interp-tier block as an optimized superblock
// and publishes the IR on its shared TB. The first promoter wins the
// publish; a racer adopts the published block but still pays for the
// translation work it did (mirroring the TB-cache race-discard account).
func (m *Machine) promote(c *CPU, lt *localTB) error {
	opts := m.topts
	opts.FollowUncond = true
	opts.MaxGuestInstrs = m.superMax
	block, err := translate.Block(m.fetcher(), lt.start, opts)
	if err != nil {
		return err
	}
	c.st.TBTranslations++
	c.st.TierPromotions++
	c.charge(stats.CompTBTranslate, m.cfg.Cost.TBTranslate*uint64(block.GuestLen))
	if m.sharedView != nil && !m.sharedSpanClean(block.GuestLo, block.GuestHi) {
		// The TB may be resident in (or adopted from) the cross-job store,
		// and this superblock read guest pages that have been stored to:
		// publishing it on the shared TB object would leak a mutated-code
		// translation to pristine machines. Keep the IR vCPU-private.
		lt.block = block
		lt.taken, lt.fall = nil, nil
		c.ring.Emit(obs.EvTierPromote, lt.start, uint64(lt.execs))
		return nil
	}
	// Widen the TB's guest cover and sensitivity before the IR publishes,
	// so any reader that adopts the superblock also sees metadata covering
	// it (shared-store span checks, demotion retention).
	lt.tb.noteBlock(block)
	if !lt.tb.ir.CompareAndSwap(nil, block) {
		c.st.TBRaceDiscards++
	}
	lt.block = lt.tb.ir.Load()
	// The superblock's terminator need not match the decoded block's;
	// stale links would chain to the wrong successor.
	lt.taken, lt.fall = nil, nil
	c.ring.Emit(obs.EvTierPromote, lt.start, uint64(lt.execs))
	return nil
}

// truncatedBlock one-off translates the block at pc capped to n guest
// instructions, bypassing both cache tiers: it exists only to clamp the
// final block of a MaxGuestInstrs-bounded run, and caching it would poison
// the caches with an artificially short block. Fusion is disabled because
// a fused LL/SC loop consumes several guest instructions as one unit and
// could punch through the cap.
func (m *Machine) truncatedBlock(c *CPU, pc uint32, n int) (*ir.Block, error) {
	opts := m.topts
	opts.MaxGuestInstrs = n
	opts.FuseAtomics = false
	opts.FollowUncond = false
	block, err := translate.Block(m.fetcher(), pc, opts)
	if err != nil {
		return nil, err
	}
	c.charge(stats.CompTBTranslate, m.cfg.Cost.TBTranslate*uint64(block.GuestLen))
	return block, nil
}

// exec runs one resolved block: optimized IR when available, otherwise the
// decoder-direct interp tier. Interp executions are counted toward
// promotion; IR published by another vCPU's promotion is adopted first.
func (c *CPU) exec(lt *localTB) exitOutcome {
	if lt.block == nil {
		if b := lt.tb.ir.Load(); b != nil {
			lt.block = b
			lt.taken, lt.fall = nil, nil
		} else {
			lt.execs++
			if lt.execs >= c.m.hotThreshold {
				c.abortOpenTxn(lt.start)
				if err := c.m.promote(c, lt); err != nil {
					c.fail(fmt.Errorf("engine: tid %d: %w", c.tid, err))
					return exitNone
				}
			}
		}
	}
	if b := lt.block; b != nil {
		if max := c.m.cfg.MaxGuestInstrs; max > 0 {
			if remain := max - c.st.GuestInstrs; uint64(b.GuestLen) > remain {
				// Fewer guest instructions remain in the budget than the
				// block holds: run a one-off translation of just the
				// remainder so the overshoot stays bounded (the dispatch
				// loop fails the run at the next block boundary).
				tb, err := c.m.truncatedBlock(c, b.Start, int(remain))
				if err != nil {
					c.fail(fmt.Errorf("engine: tid %d: %w", c.tid, err))
					return exitNone
				}
				b = tb
			}
		}
		return c.execBlock(b)
	}
	c.st.InterpBlocks++
	d := lt.tb.dec
	limit := len(d.Instrs)
	if max := c.m.cfg.MaxGuestInstrs; max > 0 {
		if remain := max - c.st.GuestInstrs; uint64(limit) > remain {
			limit = int(remain)
		}
	}
	return c.execDecoded(d, limit)
}

// execDecoded interprets a decoded block straight off the instruction
// slice — the translate.Interp tier. Architectural semantics and
// virtual-cycle charges mirror the IR lowering in translate.emit op for op
// (MOVT and TST lower to two IR ops, register-offset memory ops pay an
// extra address add), so a block's effect is the same in either tier; only
// the optimizer's savings differ, which is the point of promoting. limit
// caps how many instructions run (the MaxGuestInstrs clamp); a block cut
// short — by limit or by a truncated decode — resumes at the next pc
// exactly like a truncated IR block's continuation ExitJmp.
func (c *CPU) execDecoded(d *translate.Decoded, limit int) exitOutcome {
	s := c.slots
	mem := c.m.mem
	scheme := c.m.scheme
	cost := &c.m.cfg.Cost
	tm := c.m.tm
	var native uint64
	executed, irops := 0, 0

	defer func() {
		c.st.IROps += uint64(irops)
		c.st.GuestInstrs += uint64(executed)
		c.charge(stats.CompNative, native)
	}()

	if limit > len(d.Instrs) {
		limit = len(d.Instrs)
	}
	for i := 0; i < limit; i++ {
		in := &d.Instrs[i]
		pc := d.Start + uint32(i)*arch.InstrBytes
		next := pc + arch.InstrBytes
		executed++
		irops++ // most opcodes lower to one IR op; multi-op cases add more
		switch in.Op {
		case arch.ADD:
			s[in.Rd] = s[in.Rn] + s[in.Rm]
			native += cost.IROp
		case arch.SUB:
			s[in.Rd] = s[in.Rn] - s[in.Rm]
			native += cost.IROp
		case arch.RSB:
			s[in.Rd] = s[in.Rm] - s[in.Rn]
			native += cost.IROp
		case arch.AND:
			s[in.Rd] = s[in.Rn] & s[in.Rm]
			native += cost.IROp
		case arch.ORR:
			s[in.Rd] = s[in.Rn] | s[in.Rm]
			native += cost.IROp
		case arch.EOR:
			s[in.Rd] = s[in.Rn] ^ s[in.Rm]
			native += cost.IROp
		case arch.MUL:
			s[in.Rd] = s[in.Rn] * s[in.Rm]
			native += cost.IROp
		case arch.UDIV:
			if dvs := s[in.Rm]; dvs == 0 {
				s[in.Rd] = 0
			} else {
				s[in.Rd] = s[in.Rn] / dvs
			}
			native += cost.IROp
		case arch.SDIV:
			s[in.Rd] = sdiv32(s[in.Rn], s[in.Rm])
			native += cost.IROp
		case arch.LSL:
			s[in.Rd] = s[in.Rn] << (s[in.Rm] & 31)
			native += cost.IROp
		case arch.LSR:
			s[in.Rd] = s[in.Rn] >> (s[in.Rm] & 31)
			native += cost.IROp
		case arch.ASR:
			s[in.Rd] = uint32(int32(s[in.Rn]) >> (s[in.Rm] & 31))
			native += cost.IROp
		case arch.ADDS:
			s[in.Rd], c.flags = addFlags(s[in.Rn], s[in.Rm])
			native += cost.IROp
		case arch.SUBS:
			s[in.Rd], c.flags = subFlags(s[in.Rn], s[in.Rm])
			native += cost.IROp

		case arch.ADDI:
			s[in.Rd] = s[in.Rn] + uint32(in.Imm)
			native += cost.IROp
		case arch.SUBI:
			s[in.Rd] = s[in.Rn] - uint32(in.Imm)
			native += cost.IROp
		case arch.RSBI:
			s[in.Rd] = uint32(in.Imm) - s[in.Rn]
			native += cost.IROp
		case arch.ANDI:
			s[in.Rd] = s[in.Rn] & uint32(in.Imm)
			native += cost.IROp
		case arch.ORRI:
			s[in.Rd] = s[in.Rn] | uint32(in.Imm)
			native += cost.IROp
		case arch.EORI:
			s[in.Rd] = s[in.Rn] ^ uint32(in.Imm)
			native += cost.IROp
		case arch.LSLI:
			s[in.Rd] = s[in.Rn] << (uint32(in.Imm) & 31)
			native += cost.IROp
		case arch.LSRI:
			s[in.Rd] = s[in.Rn] >> (uint32(in.Imm) & 31)
			native += cost.IROp
		case arch.ASRI:
			s[in.Rd] = uint32(int32(s[in.Rn]) >> (uint32(in.Imm) & 31))
			native += cost.IROp
		case arch.ADDSI:
			s[in.Rd], c.flags = addFlags(s[in.Rn], uint32(in.Imm))
			native += cost.IROp
		case arch.SUBSI:
			s[in.Rd], c.flags = subFlags(s[in.Rn], uint32(in.Imm))
			native += cost.IROp

		case arch.MOV:
			s[in.Rd] = s[in.Rm]
			native += cost.IROp
		case arch.MVN:
			s[in.Rd] = ^s[in.Rm]
			native += cost.IROp
		case arch.MOVI, arch.MOVW:
			s[in.Rd] = uint32(in.Imm)
			native += cost.IROp
		case arch.MOVT:
			s[in.Rd] = (s[in.Rd] & 0xffff) | uint32(in.Imm)<<16
			irops++
			native += 2 * cost.IROp
		case arch.CMP:
			_, c.flags = subFlags(s[in.Rn], s[in.Rm])
			native += cost.IROp
		case arch.CMN:
			_, c.flags = addFlags(s[in.Rn], s[in.Rm])
			native += cost.IROp
		case arch.CMPI:
			_, c.flags = subFlags(s[in.Rn], uint32(in.Imm))
			native += cost.IROp
		case arch.TST:
			v := s[in.Rn] & s[in.Rm]
			c.flags.N = int32(v) < 0
			c.flags.Z = v == 0
			irops++
			native += 2 * cost.IROp

		case arch.LDR, arch.LDRB, arch.LDRR, arch.LDRBR:
			addr := s[in.Rn]
			byte_ := in.Op == arch.LDRB || in.Op == arch.LDRBR
			if in.Op == arch.LDRR || in.Op == arch.LDRBR {
				addr += s[in.Rm]
				irops++
				native += cost.IROp
			} else {
				addr += uint32(in.Imm)
			}
			c.maybePreempt()
			if c.m.topts.InstrumentLoads {
				if byte_ {
					b8, err := scheme.LoadB(c, addr)
					if err != nil {
						c.schemeFaultAt(err, pc)
						return exitNone
					}
					s[in.Rd] = uint32(b8)
				} else {
					v, err := scheme.Load(c, addr)
					if err != nil {
						c.schemeFaultAt(err, pc)
						return exitNone
					}
					s[in.Rd] = v
				}
			} else {
				if byte_ {
					b8, f := mem.LoadByte(addr)
					if f != nil {
						c.guestFaultAt(f, pc)
						return exitNone
					}
					s[in.Rd] = uint32(b8)
				} else {
					v, f := mem.LoadWord(addr)
					if f != nil {
						c.guestFaultAt(f, pc)
						return exitNone
					}
					s[in.Rd] = v
				}
			}
			c.st.Loads++
			native += cost.MemAccess

		case arch.STR, arch.STRB, arch.STRR, arch.STRBR:
			addr := s[in.Rn]
			byte_ := in.Op == arch.STRB || in.Op == arch.STRBR
			if in.Op == arch.STRR || in.Op == arch.STRBR {
				addr += s[in.Rm]
				irops++
				native += cost.IROp
			} else {
				addr += uint32(in.Imm)
			}
			c.maybePreempt()
			if c.m.topts.InstrumentStores {
				var err error
				if byte_ {
					err = scheme.StoreB(c, addr, uint8(s[in.Rd]))
				} else {
					err = scheme.Store(c, addr, s[in.Rd])
				}
				if err != nil {
					c.schemeFaultAt(err, pc)
					return exitNone
				}
			} else {
				var mf *mmu.Fault
				if byte_ {
					mf = mem.StoreByte(addr, uint8(s[in.Rd]))
				} else {
					mf = mem.StoreWord(addr, s[in.Rd])
				}
				if mf != nil {
					c.guestFaultAt(mf, pc)
					return exitNone
				}
				if tm != nil {
					if byte_ {
						tm.NotifyStore(addr &^ 3)
					} else {
						tm.NotifyStore(addr)
					}
				}
			}
			c.st.Stores++
			native += cost.MemAccess

		case arch.LDREX:
			c.maybePreempt()
			addr := s[in.Rn]
			v, err := scheme.LL(c, addr)
			if err != nil {
				c.schemeFaultAt(err, pc)
				return exitNone
			}
			s[in.Rd] = v
			c.st.LLs++
			c.ring.Emit(obs.EvLL, addr, 0)
			native += cost.MemAccess
		case arch.STREX:
			c.maybePreempt()
			addr := s[in.Rn]
			c.lastSCAddr = addr
			status, err := scheme.SC(c, addr, s[in.Rm])
			if err != nil {
				c.schemeFaultAt(err, pc)
				return exitNone
			}
			if status == 0 {
				c.ring.Emit(obs.EvSCOk, addr, 0)
			}
			s[in.Rd] = status
			c.st.SCs++
			c.st.SCFails += uint64(status)
			native += cost.MemAccess
		case arch.CLREX:
			scheme.Clrex(c)
			native += cost.IROp
		case arch.DMB:
			native += cost.IROp

		case arch.B:
			target := in.BranchTarget(pc)
			if in.Cond == arch.AL {
				c.pc = target
				return exitTaken
			}
			native += cost.IROp
			if c.flags.Test(in.Cond) {
				c.pc = target
				return exitTaken
			}
			c.pc = next
			return exitFall
		case arch.BL:
			s[arch.LR] = next
			irops++
			native += cost.IROp
			c.pc = in.BranchTarget(pc)
			return exitTaken
		case arch.BX:
			c.pc = s[in.Rm]
			native += cost.IROp
			return exitNone
		case arch.SVC:
			c.pc = next
			c.m.syscall(c, uint32(in.Imm))
			return exitNone
		case arch.HLT:
			c.halted = true
			return exitNone
		case arch.NOP:
			irops--
		case arch.YIELD:
			c.pc = next
			runtime.Gosched()
			return exitNone

		default:
			c.fail(fmt.Errorf("engine: tid %d: unhandled opcode %s at %#08x", c.tid, in.Op, pc))
			return exitNone
		}
	}
	// Cut short (limit clamp or truncated decode) without a block ender:
	// continue at the next instruction, like a truncated IR block.
	c.pc = d.Start + uint32(executed)*arch.InstrBytes
	return exitTaken
}
