package engine

import (
	"fmt"
	"strings"
	"testing"

	"atomemu/internal/stats"
)

func TestPSTMPKConcurrentCounter(t *testing.T) {
	im := buildImage(t, counterProgram)
	m := newTestMachine(t, "pst-mpk", im)
	const threads, iters = 6, 1500
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(im.Entry, iters); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Mem().ReadWordPriv(im.MustSymbol("counter"))
	if v != threads*iters {
		t.Fatalf("counter = %d, want %d", v, threads*iters)
	}
}

// TestPSTMPKCheaperThanPST: the whole point of the §VI proposal — the same
// workload must cost fewer virtual cycles under pst-mpk than under pst,
// with the savings visible in the mprotect component.
func TestPSTMPKCheaperThanPST(t *testing.T) {
	run := func(scheme string) (uint64, stats.CPU) {
		im := buildImage(t, counterProgram)
		m := newTestMachine(t, scheme, im)
		for i := 0; i < 4; i++ {
			if _, err := m.SpawnThread(im.Entry, 1000); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.VirtualTime(), m.AggregateStats()
	}
	pstVT, pstStats := run("pst")
	mpkVT, mpkStats := run("pst-mpk")
	if mpkVT >= pstVT {
		t.Fatalf("pst-mpk (%d) not cheaper than pst (%d)", mpkVT, pstVT)
	}
	if mpkStats.Cycles[stats.CompMProtect] >= pstStats.Cycles[stats.CompMProtect] {
		t.Fatalf("mprotect component: mpk %d >= pst %d",
			mpkStats.Cycles[stats.CompMProtect], pstStats.Cycles[stats.CompMProtect])
	}
	t.Logf("pst-mpk speedup over pst: %.2fx", float64(pstVT)/float64(mpkVT))
}

// TestPSTMPKKeyExhaustionFallsBack: with more than 15 concurrently
// monitored pages the scheme must fall back to mprotect (the 16-key limit
// of the paper's discussion) and still be correct.
func TestPSTMPKKeyExhaustionFallsBack(t *testing.T) {
	// 24 threads, each LL/SC-incrementing a counter on its OWN page:
	// 24 concurrently monitored pages > 15 keys.
	var sb strings.Builder
	sb.WriteString(".org 0x10000\n.entry worker\n")
	sb.WriteString(`
worker:             ; r0 = iterations; tid picks the page
    mov r9, r0
    svc #5          ; gettid
    subi r1, r0, 1
    lsli r1, r1, 12 ; tid * page
    ldr r4, =cells
    add r4, r4, r1
loop:
    ldrex r1, [r4]
    nop             ; defeat rule-based fusion; stay on the scheme path
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne loop
    subsi r9, r9, 1
    bne loop
    movi r0, #0
    svc #1
.align 1024
cells:
`)
	sb.WriteString(fmt.Sprintf(".space %d\n", 24*1024))
	im := buildImage(t, sb.String())
	// Step mode pins all 24 monitors armed at once: free-running threads
	// hold their LL window for only a few instructions, so 15 keys rarely
	// exhaust by chance.
	cfg := DefaultConfig("pst-mpk")
	cfg.StepMode = true
	cfg.MaxGuestInstrs = 10_000_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	const threads, iters = 24, 50
	cpus := make([]*CPU, threads)
	for i := range cpus {
		c, err := m.Start(im.Entry, iters)
		if err != nil {
			t.Fatal(err)
		}
		cpus[i] = c
	}
	// Advance every thread to just past its first LL: 24 armed monitors on
	// 24 distinct pages > 15 keys.
	for i, c := range cpus {
		for c.VStats().LLs == 0 {
			if _, err := c.Step(); err != nil {
				t.Fatalf("cpu %d: %v", i, err)
			}
		}
	}
	// The last nine LLs had no key left: the mprotect fallback fired.
	agg := m.AggregateStats()
	if agg.ExclSections == 0 {
		t.Fatal("expected mprotect fallback under key exhaustion")
	}
	// Drain everyone; correctness must hold across the key/fallback mix.
	for i, c := range cpus {
		for !c.Halted() {
			if _, err := c.Step(); err != nil {
				t.Fatalf("cpu %d: %v", i, err)
			}
		}
	}
	cells := im.MustSymbol("cells")
	for i := uint32(0); i < threads; i++ {
		v, _ := m.Mem().ReadWordPriv(cells + i*4096)
		if v != iters {
			t.Fatalf("cell %d = %d, want %d", i, v, iters)
		}
	}
}
