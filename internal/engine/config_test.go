package engine

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"atomemu/internal/hashtab"
)

// TestNewMachineKeepsPartialConfig: a Config that sets some fields but not
// MemBytes must keep every caller-set field and only fill the zero-valued
// sizing fields from DefaultConfig. (NewMachine used to swap in
// DefaultConfig wholesale, silently discarding HashBits, FuseAtomics,
// NoOptimize, TraceWriter, ….)
func TestNewMachineKeepsPartialConfig(t *testing.T) {
	tw := &bytes.Buffer{}
	cfg := Config{
		Scheme:         "hst",
		HashBits:       6,
		FuseAtomics:    true,
		NoOptimize:     true,
		TraceWriter:    tw,
		MaxGuestInstrs: 123,
		StepMode:       true,
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig("hst")

	if m.cfg.HashBits != 6 {
		t.Errorf("HashBits = %d, want the caller's 6", m.cfg.HashBits)
	}
	if !m.cfg.FuseAtomics || !m.cfg.NoOptimize {
		t.Error("FuseAtomics/NoOptimize flags were discarded")
	}
	if m.cfg.TraceWriter != tw {
		t.Error("TraceWriter was discarded")
	}
	if m.cfg.MaxGuestInstrs != 123 || !m.cfg.StepMode {
		t.Error("MaxGuestInstrs/StepMode were discarded")
	}
	// Zero-valued sizing fields are filled from the defaults.
	if m.cfg.MemBytes != def.MemBytes {
		t.Errorf("MemBytes = %d, want default %d", m.cfg.MemBytes, def.MemBytes)
	}
	if m.cfg.MaxThreads != def.MaxThreads || m.cfg.StackBytes != def.StackBytes {
		t.Error("MaxThreads/StackBytes not defaulted")
	}
	if m.cfg.Cost != def.Cost {
		t.Error("Cost model not defaulted")
	}
	// The kept options must actually reach the translator.
	if !m.topts.FuseAtomics {
		t.Error("FuseAtomics did not reach translate.Options")
	}
	if m.topts.Optimize {
		t.Error("NoOptimize did not reach translate.Options")
	}
}

// TestNewMachineExplicitFieldsUntouched: fully-specified configs pass
// through unchanged.
func TestNewMachineExplicitFieldsUntouched(t *testing.T) {
	cfg := DefaultConfig("pico-cas")
	cfg.MemBytes = 8 << 20
	cfg.MaxThreads = 3
	cfg.QuantumTBs = 7
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.cfg.MemBytes != 8<<20 || m.cfg.MaxThreads != 3 || m.cfg.QuantumTBs != 7 {
		t.Errorf("explicit fields rewritten: %+v", m.cfg)
	}
}

// TestDefaultHashBitsRoundTrip pins the engine default advertised by the
// hashtab.New doc comment: DefaultConfig's HashBits must build a table of
// exactly 2^14 entries.
func TestDefaultHashBitsRoundTrip(t *testing.T) {
	cfg := DefaultConfig("hst")
	if cfg.HashBits != 14 {
		t.Fatalf("DefaultConfig HashBits = %d; update the hashtab.New doc comment if this changes", cfg.HashBits)
	}
	tab, err := hashtab.New(cfg.HashBits)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1<<cfg.HashBits {
		t.Fatalf("table len = %d, want %d", tab.Len(), 1<<cfg.HashBits)
	}
}

// TestConcurrentSpawnRespectsMaxThreads: racing spawns must never overshoot
// the thread limit — the reserve-tid-and-slot step in newCPU is atomic.
func TestConcurrentSpawnRespectsMaxThreads(t *testing.T) {
	const limit = 8
	const attempts = 32
	m, err := NewMachine(Config{Scheme: "pico-cas", MaxThreads: limit, StepMode: true})
	if err != nil {
		t.Fatal(err)
	}
	var ok, rejected atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := m.SpawnThread(RuntimeBase); err != nil {
				rejected.Add(1)
			} else {
				ok.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := ok.Load(); got != limit {
		t.Errorf("%d spawns succeeded, want exactly %d", got, limit)
	}
	if got := rejected.Load(); got != attempts-limit {
		t.Errorf("%d spawns rejected, want %d", got, attempts-limit)
	}
	if n := len(m.CPUs()); n != limit {
		t.Errorf("machine holds %d vCPUs, want %d", n, limit)
	}
	// Every accepted vCPU got a distinct tid and a distinct stack.
	seen := map[uint32]bool{}
	for _, c := range m.CPUs() {
		if seen[c.TID()] {
			t.Errorf("duplicate tid %d", c.TID())
		}
		seen[c.TID()] = true
	}
}

// TestSpawnFailureReleasesReservation: a spawn that fails after reserving
// its slot (stack mapping fails once the region is exhausted) must release
// the reservation so later spawns can still use the slot.
func TestSpawnFailureReleasesReservation(t *testing.T) {
	// A machine so small that mapping any 64 KiB stack fails.
	cfg := DefaultConfig("pico-cas")
	cfg.MemBytes = 1 << 16
	cfg.StackBytes = 1 << 20
	cfg.StepMode = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnThread(RuntimeBase); err == nil {
		t.Fatal("spawn with an unmappable stack should fail")
	}
	m.cpuMu.Lock()
	reserved := m.cpuReserved
	m.cpuMu.Unlock()
	if reserved != 0 {
		t.Fatalf("cpuReserved = %d after failed spawn, want 0", reserved)
	}
}
