package engine

import (
	"errors"
	"strings"
	"testing"

	"atomemu/internal/core"
	"atomemu/internal/faultinject"
	"atomemu/internal/guestlib"
	"atomemu/internal/stats"
)

// runStackResilience drives the lock-free-stack bench through an explicit
// config and returns the aggregate stats and the post-run stack audit.
func runStackResilience(t *testing.T, cfg Config, threads int, pairsPerThread uint64, nodes uint32) (stats.CPU, guestlib.StackReport) {
	t.Helper()
	sb, err := guestlib.BuildStackBench(0x10000, nodes)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(sb.Image); err != nil {
		t.Fatal(err)
	}
	if err := sb.InitStack(m.Mem()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(sb.Worker, uint32(pairsPerThread)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run should complete under the resilient policy: %v", err)
	}
	for _, c := range m.CPUs() {
		if c.ExitCode() != 0 {
			t.Fatalf("vCPU %d exit code %d", c.TID(), c.ExitCode())
		}
	}
	rep, err := sb.CheckStack(m.Mem())
	if err != nil {
		t.Fatal(err)
	}
	return m.AggregateStats(), rep
}

// TestStressPicoHTMFaultInjectedAbortStorm forces a long storm of
// transaction-begin aborts (so every LL/SC window retries with backoff and
// then demotes) and checks PICO-HTM degrades (SchemeFallbacks > 0) yet
// finishes the stack workload with a fully intact stack. The storm is
// Count-bounded: an unbounded one would (rightly) starve individual vCPUs
// into the progress watchdog.
func TestStressPicoHTMFaultInjectedAbortStorm(t *testing.T) {
	for _, threads := range []int{8, 16} {
		t.Run(map[int]string{8: "8vcpu", 16: "16vcpu"}[threads], func(t *testing.T) {
			cfg := DefaultConfig("pico-htm")
			cfg.MaxGuestInstrs = 2_000_000_000
			cfg.HTMMaxRetries = 4
			cfg.FaultInjector = faultinject.New(faultinject.Rule{
				Op: faultinject.OpTxnBegin, Action: faultinject.ActAbort, Count: 4000,
			})
			agg, rep := runStackResilience(t, cfg, threads, 384, 256)
			if agg.SchemeFallbacks == 0 {
				t.Error("expected scheme fallbacks under a commit-abort storm")
			}
			if agg.HTMRetries == 0 {
				t.Error("expected backoff retries before demotion")
			}
			if rep.Corrupted() {
				t.Errorf("stack corrupted: %+v", rep)
			}
		})
	}
}

// TestStressHSTHTMFaultInjectedAbortStorm storms HST-HTM's SC transaction
// with begin aborts (they fire before the entry-owner check, so each SC
// takes consecutive aborts until its retry budget demotes it): the SC
// falls back to the stop-the-world path and completes. Count-bounded for
// the same starvation reason as above.
func TestStressHSTHTMFaultInjectedAbortStorm(t *testing.T) {
	for _, threads := range []int{8, 16} {
		t.Run(map[int]string{8: "8vcpu", 16: "16vcpu"}[threads], func(t *testing.T) {
			cfg := DefaultConfig("hst-htm")
			cfg.MaxGuestInstrs = 2_000_000_000
			cfg.HTMMaxRetries = 4
			cfg.FaultInjector = faultinject.New(faultinject.Rule{
				Op: faultinject.OpTxnBegin, Action: faultinject.ActAbort, Count: 4000,
			})
			agg, rep := runStackResilience(t, cfg, threads, 384, 256)
			if agg.SchemeFallbacks == 0 {
				t.Error("expected scheme fallbacks under a commit-abort storm")
			}
			if agg.HTMRetries == 0 {
				t.Error("expected backoff retries before demotion")
			}
			if rep.Corrupted() {
				t.Errorf("stack corrupted: %+v", rep)
			}
		})
	}
}

// TestStressPicoHTM16VCPUsCompletesDegraded is the headline robustness
// claim: at 16 vCPUs the paper's PICO-HTM livelocks and crashes, while the
// default resilient policy completes the run (degraded) with a correct
// stack — no fault injection involved.
func TestStressPicoHTM16VCPUsCompletesDegraded(t *testing.T) {
	cfg := DefaultConfig("pico-htm")
	cfg.MaxGuestInstrs = 2_000_000_000
	agg, rep := runStackResilience(t, cfg, 16, 1024, 256)
	if agg.SchemeFallbacks == 0 {
		t.Error("16-vCPU pico-htm should have demoted at least once")
	}
	if rep.Corrupted() {
		t.Errorf("stack corrupted: %+v", rep)
	}
}

// TestStressStrictPaperReproducesLivelockCrash: the same 16-vCPU run with
// StrictPaper set reproduces the paper's crash (EmulationError livelock).
func TestStressStrictPaperReproducesLivelockCrash(t *testing.T) {
	sb, err := guestlib.BuildStackBench(0x10000, 256)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig("pico-htm")
	cfg.MaxGuestInstrs = 2_000_000_000
	cfg.StrictPaper = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(sb.Image); err != nil {
		t.Fatal(err)
	}
	if err := sb.InitStack(m.Mem()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := m.SpawnThread(sb.Worker, 4096); err != nil {
			t.Fatal(err)
		}
	}
	err = m.Run()
	var ee *core.EmulationError
	if !errors.As(err, &ee) {
		t.Fatalf("strict 16-vCPU pico-htm should crash with EmulationError, got %v", err)
	}
	if !strings.Contains(ee.Reason, "livelock") {
		t.Fatalf("crash reason = %q, want a livelock report", ee.Reason)
	}
}

// TestFaultWatchdogTripsOnSCFailureStorm runs a guest whose SC address
// never matches its LL (so the SC fails forever) and checks the progress
// watchdog converts the storm into a structured diagnostic.
func TestFaultWatchdogTripsOnSCFailureStorm(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry worker
worker:
    ldr r4, =xvar
    ldr r5, =yvar
loop:
    ldrex r1, [r4]
    strex r2, r1, [r5]
    b loop
.align 1024
xvar: .word 1
yvar: .word 2
`)
	cfg := DefaultConfig("pico-htm")
	cfg.MaxGuestInstrs = 200_000_000
	cfg.WatchdogSCFails = 500
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	cpu, err := m.SpawnThread(im.Entry, 0)
	if err != nil {
		t.Fatal(err)
	}
	tid := cpu.TID()
	err = m.Run()
	var werr *core.WatchdogError
	if !errors.As(err, &werr) {
		t.Fatalf("SC-failure storm should trip the watchdog, got %v", err)
	}
	if werr.Kind != "sc-failure storm" || werr.TID != tid {
		t.Fatalf("diagnostic = %+v", werr)
	}
	if werr.Addr != im.MustSymbol("yvar") {
		t.Fatalf("diagnostic addr = %#x, want yvar %#x", werr.Addr, im.MustSymbol("yvar"))
	}
	if werr.Fails < 500 {
		t.Fatalf("diagnostic fails = %d, want >= 500", werr.Fails)
	}
	if agg := m.AggregateStats(); agg.WatchdogTrips == 0 {
		t.Error("WatchdogTrips stat not counted")
	}
}

// TestFaultWatchdogDisabledByNegativeLimit: a negative limit turns the
// watchdog off; the run then ends via the instruction budget instead.
func TestFaultWatchdogDisabledByNegativeLimit(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry worker
worker:
    ldr r4, =xvar
    ldr r5, =yvar
loop:
    ldrex r1, [r4]
    strex r2, r1, [r5]
    b loop
.align 1024
xvar: .word 1
yvar: .word 2
`)
	cfg := DefaultConfig("pico-cas")
	cfg.MaxGuestInstrs = 100_000
	cfg.WatchdogSCFails = -1
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnThread(im.Entry, 0); err != nil {
		t.Fatal(err)
	}
	err = m.Run()
	var werr *core.WatchdogError
	if errors.As(err, &werr) {
		t.Fatalf("watchdog should be disabled, got %v", err)
	}
	if err == nil {
		t.Fatal("run should still stop on the instruction budget")
	}
}

// panicWriter panics on the first write, standing in for a buggy
// tracing/IO integration inside the vCPU goroutine.
type panicWriter struct{}

func (panicWriter) Write([]byte) (int, error) { panic("injected writer panic") }

// TestFaultVCPUPanicContained: a panic on a vCPU goroutine must not kill
// the process; it surfaces as a machine stop error naming the vCPU.
func TestFaultVCPUPanicContained(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    movi r0, #0
    svc #1
`)
	cfg := DefaultConfig("hst")
	cfg.MaxGuestInstrs = 1_000_000
	cfg.TraceWriter = panicWriter{}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	err = m.Run()
	if err == nil {
		t.Fatal("panicking writer should fail the run")
	}
	if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "vCPU") {
		t.Fatalf("error should report the contained panic with its vCPU: %v", err)
	}
}
