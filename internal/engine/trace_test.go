package engine

import (
	"testing"

	"atomemu/internal/asm"
	"atomemu/internal/obs"
)

// traceGuest is the contended LL/SC counter: every thread increments the
// shared word r0 times, retrying failed SCs.
const traceGuest = `
.org 0x10000
.entry worker
worker:
    ldr r4, =counter
loop:
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne loop
    subsi r0, r0, #1
    bne loop
    movi r0, #0
    svc #1
.align 1024
counter: .word 0
`

// TestTraceEventsContendedHST is the acceptance run: 8 vCPUs hammer one
// counter under HST with tracing on; the merged stream must be non-empty,
// sorted by virtual time, and per-vCPU monotonic, and must contain the
// kinds the run necessarily produced.
func TestTraceEventsContendedHST(t *testing.T) {
	im, err := asm.Assemble(traceGuest)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig("hst")
	cfg.TraceEvents = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	const threads, iters = 8, 300
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(im.Entry, iters); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	events := m.TraceEvents()
	if len(events) == 0 {
		t.Fatal("traced run produced no events")
	}
	kinds := map[obs.Kind]int{}
	perTID := map[uint32]uint64{}
	for i, e := range events {
		kinds[e.Kind]++
		if i > 0 && e.VT < events[i-1].VT {
			t.Fatalf("merged stream out of order at %d: vt %d after %d", i, e.VT, events[i-1].VT)
		}
		if last, ok := perTID[e.TID]; ok && e.VT < last {
			t.Fatalf("tid %d stream went backwards: vt %d after %d", e.TID, e.VT, last)
		}
		perTID[e.TID] = e.VT
	}
	agg := m.AggregateStats()
	if kinds[obs.EvSCOk] == 0 || kinds[obs.EvLL] == 0 {
		t.Fatalf("missing LL/SC events: %v", kinds)
	}
	// Every HST SC success enters an exclusive section.
	if kinds[obs.EvExclEnter] == 0 || kinds[obs.EvExclExit] == 0 {
		t.Fatalf("missing exclusive-section events: %v", kinds)
	}
	// 8 threads on one word must fail some SCs, each with a reason.
	if agg.SCFails > 0 && kinds[obs.EvSCFail] == 0 && m.TraceDropped() == 0 {
		t.Fatalf("%d SC failures but no sc_fail events and nothing dropped", agg.SCFails)
	}
	for _, e := range events {
		if e.Kind == obs.EvSCFail && obs.SCReasonString(e.Arg) == "unknown" {
			t.Fatalf("sc_fail with unnamed reason %d", e.Arg)
		}
	}
}

// TestTraceDisabledNoRings checks the disabled path: no rings, no events,
// nil tracer on every vCPU.
func TestTraceDisabledNoRings(t *testing.T) {
	im, err := asm.Assemble(traceGuest)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(DefaultConfig("hst"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnThread(im.Entry, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.TraceEvents(); got != nil {
		t.Fatalf("disabled tracer returned %d events", len(got))
	}
	for _, c := range m.CPUs() {
		if c.Tracer() != nil {
			t.Fatal("vCPU has a ring with tracing disabled")
		}
	}
}
