package engine

import (
	"sync"
	"sync/atomic"
)

// exclusive implements QEMU's linux-user start_exclusive/end_exclusive
// protocol: a vCPU wanting exclusivity waits until every other vCPU has
// parked outside its execution region; vCPUs poll a pending flag between
// translation blocks and park when an exclusive section is requested.
//
// It also anchors the virtual-time model: the requester pays the park cost
// (base + per-vCPU), and every other vCPU is charged a fixed stall per
// section it witnesses (CPU.witnessStalls) — so a stop-the-world costs the
// whole machine O(threads) VIRTUAL cycles per section, as on the paper's
// QEMU, without artificially merging the drifting virtual clocks. The host
// cost of the accounting itself is O(1): chargeExclusiveEntry reads the
// maintained runningCPUs counter instead of scanning the vCPU list, since
// it runs on every HST/PICO-ST SC.
type exclusive struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending atomic.Int32 // exclusive sections requested or active
	running int          // vCPUs inside their execution region

	// exclHolder serializes exclusive sections.
	exclHolder sync.Mutex
}

func newExclusive() *exclusive {
	e := &exclusive{}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// execStart enters the vCPU execution region, parking while an exclusive
// section is pending or active.
func (e *exclusive) execStart(c *CPU) {
	e.mu.Lock()
	for e.pending.Load() > 0 {
		e.cond.Wait()
	}
	e.running++
	e.mu.Unlock()
}

// execEnd leaves the execution region.
func (e *exclusive) execEnd(c *CPU) {
	e.mu.Lock()
	e.running--
	if e.running == 0 {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// checkpoint parks the vCPU if an exclusive section is pending. Called
// between translation blocks; the fast path is one atomic load.
func (e *exclusive) checkpoint(c *CPU) {
	if e.pending.Load() == 0 {
		return
	}
	e.execEnd(c)
	e.execStart(c)
}

// startExclusive stops the world. The caller must currently be inside its
// execution region; on return it is the only vCPU making progress.
func (e *exclusive) startExclusive(c *CPU) {
	e.execEnd(c)
	e.exclHolder.Lock()
	e.pending.Add(1)
	e.mu.Lock()
	for e.running > 0 {
		e.cond.Wait()
	}
	e.mu.Unlock()
	// The world is stopped: advance our clock past every vCPU (their
	// clocks are stable while parked) and charge the suspension cost.
	c.m.chargeExclusiveEntry(c)
}

// endExclusive resumes the world and re-enters the execution region.
func (e *exclusive) endExclusive(c *CPU) {
	e.pending.Add(-1)
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
	e.exclHolder.Unlock()
	e.execStart(c)
}

// startExclusiveQuiet stops the world without charging anyone: no entry
// cost on the requester, no section published for witness stalls. Used for
// checkpoint capture, which must be invisible to the virtual-time model so
// a run with checkpointing enabled stays cycle-identical to one without.
func (e *exclusive) startExclusiveQuiet(c *CPU) {
	e.execEnd(c)
	e.exclHolder.Lock()
	e.pending.Add(1)
	e.mu.Lock()
	for e.running > 0 {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// endExclusiveQuiet resumes the world after a quiet section. (endExclusive
// never charges, so this is the same release path under the paired name.)
func (e *exclusive) endExclusiveQuiet(c *CPU) { e.endExclusive(c) }

// hostStop stops the world from a host thread (one that is not a vCPU and
// therefore not inside an execution region): status pollers reading live
// per-vCPU counters, which are plain fields owned by their vCPU goroutine.
// On return every vCPU is parked outside its execution region and all its
// prior writes are visible (its execEnd released e.mu, which this acquires);
// no vCPU re-enters until hostResume. Charges nothing — like the checkpoint
// section, a host-side read must be invisible to the virtual-time model.
func (e *exclusive) hostStop() {
	e.exclHolder.Lock()
	e.pending.Add(1)
	e.mu.Lock()
	for e.running > 0 {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// hostResume resumes the world after hostStop.
func (e *exclusive) hostResume() {
	e.pending.Add(-1)
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
	e.exclHolder.Unlock()
}

// lift raises an atomic clock to at least v.
func lift(a *atomic.Uint64, v uint64) {
	for {
		old := a.Load()
		if v <= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}
