package engine

import (
	"errors"
	"strings"
	"testing"

	"atomemu/internal/faultinject"
	"atomemu/internal/stats"
)

// runCounterWorkload runs the shared-counter guest on threads vCPUs and
// returns the machine for inspection. The guest is the same LL/SC counter
// the scheme correctness tests use, so any tier/chain bug that perturbs
// architectural state shows up as a wrong final count.
func runCounterWorkload(t *testing.T, cfg Config, threads int, iters uint32) *Machine {
	t.Helper()
	im := buildImage(t, counterProgram)
	cfg.MaxGuestInstrs = 50_000_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(im.Entry, iters); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	counter := im.MustSymbol("counter")
	got, f := m.Mem().ReadWordPriv(counter)
	if f != nil {
		t.Fatal(f)
	}
	if want := uint32(threads) * iters; got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	return m
}

// TestTieredChainedMatchesBaseline: the IR-bypass fast path (interp tier,
// superblock promotion, direct chaining) must be architecturally invisible.
// Single-threaded the comparison is exact — an uncontended run retires the
// same guest instruction stream block by block, so GuestInstrs must match
// the baseline to the instruction. The fast run must also actually exercise
// every new mechanism (interp executions, promotions, installed links,
// followed links all nonzero).
func TestTieredChainedMatchesBaseline(t *testing.T) {
	for _, scheme := range []string{"pico-cas", "hst", "pico-htm"} {
		t.Run(scheme, func(t *testing.T) {
			base := runCounterWorkload(t, DefaultConfig(scheme), 1, 2000).AggregateStats()

			cfg := DefaultConfig(scheme)
			cfg.ChainBudget = 64
			cfg.Tiered = true
			cfg.HotThreshold = 8
			fast := runCounterWorkload(t, cfg, 1, 2000).AggregateStats()

			if fast.GuestInstrs != base.GuestInstrs {
				t.Errorf("guest instructions diverged: %d (fast) vs %d (base)",
					fast.GuestInstrs, base.GuestInstrs)
			}
			if fast.InterpBlocks == 0 {
				t.Error("tiered run never used the interp tier")
			}
			if fast.TierPromotions == 0 {
				t.Error("hot blocks were never promoted to IR")
			}
			if fast.ChainLinks == 0 || fast.ChainFollows == 0 {
				t.Errorf("chaining idle: links=%d follows=%d", fast.ChainLinks, fast.ChainFollows)
			}
			if base.InterpBlocks != 0 || base.TierPromotions != 0 || base.ChainFollows != 0 {
				t.Errorf("baseline run used fast-path mechanisms: %+v", base)
			}
		})
	}
}

// TestTieredChainedContended re-runs the contended 4-way counter with the
// full fast path on: the per-scheme atomicity guarantee (no lost updates)
// is asserted inside runCounterWorkload.
func TestTieredChainedContended(t *testing.T) {
	for _, scheme := range []string{"pico-cas", "hst", "pico-htm", "pst"} {
		t.Run(scheme, func(t *testing.T) {
			cfg := DefaultConfig(scheme)
			cfg.ChainBudget = 64
			cfg.Tiered = true
			cfg.HotThreshold = 8
			runCounterWorkload(t, cfg, 4, 600)
		})
	}
}

// TestMaxGuestInstrsOvershootBounded is the regression test for the budget
// clamp: the check used to run only at block entry with strict >, so a run
// could overshoot MaxGuestInstrs by up to a full TB (and a superblock once
// tiering landed). Now the final block is truncated to the remainder, so
// the run stops at exactly the budget in every tier.
func TestMaxGuestInstrsOvershootBounded(t *testing.T) {
	// An infinite loop with a straight-line body longer than most budgets'
	// remainders, so the clamp must cut inside a block.
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    movi r1, #0
loop:
    addi r1, r1, #1
    addi r1, r1, #2
    addi r1, r1, #3
    addi r1, r1, #4
    addi r1, r1, #5
    addi r1, r1, #6
    addi r1, r1, #7
    b loop
`)
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"plain", func(cfg *Config) {}},
		{"chained", func(cfg *Config) { cfg.ChainBudget = 64 }},
		{"tiered", func(cfg *Config) { cfg.Tiered = true; cfg.HotThreshold = 4; cfg.ChainBudget = 64 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const budget = 1003 // ≡ 2 mod 8+... deliberately not a block multiple
			cfg := DefaultConfig("pico-cas")
			cfg.MaxGuestInstrs = budget
			tc.mut(&cfg)
			m, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadImage(im); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Start(im.Entry); err != nil {
				t.Fatal(err)
			}
			err = m.Run()
			if err == nil || !strings.Contains(err.Error(), "exceeded") {
				t.Fatalf("runaway guest should be stopped with an exceeded error, got %v", err)
			}
			agg := m.AggregateStats()
			if agg.GuestInstrs > budget+1 {
				t.Errorf("overshoot: executed %d guest instructions with a budget of %d",
					agg.GuestInstrs, budget)
			}
			if agg.GuestInstrs < budget {
				t.Errorf("stopped early: executed %d of the %d budgeted instructions",
					agg.GuestInstrs, budget)
			}
		})
	}
}

// checkLocalTierConsistent asserts the per-vCPU TB tier invariants after a
// run: every cached block must be the canonical shared-cache entry for its
// pc (a mismatch means the vCPU kept a block across a flush — exactly the
// stale-instrumentation bug demotion used to allow), and every chain link
// must point at an entry of the same map (a dangling link would chain into
// a flushed generation).
func checkLocalTierConsistent(t *testing.T, m *Machine) {
	t.Helper()
	for _, c := range m.CPUs() {
		for pc, lt := range c.localTBs {
			if got := m.tbs.get(pc); got != lt.tb {
				t.Errorf("tid %d caches a TB for pc %#x that is not the canonical shared block",
					c.TID(), pc)
			}
			for _, link := range [...]*localTB{lt.taken, lt.fall} {
				if link != nil && c.localTBs[link.start] != link {
					t.Errorf("tid %d: chain link %#x→%#x dangles outside the local tier",
						c.TID(), pc, link.start)
				}
			}
		}
	}
}

// TestDemotionFlushesChainedLocalTBs drives the wedged-SC guest into
// watchdog-triggered scheme demotion (PICO-HTM → portable HST changes the
// instrumentation options and flushes the shared TB cache) with chaining
// and tiering on. Run under -race: the relaunched vCPUs re-translate
// concurrently, and afterwards no vCPU may hold a block or chain link from
// the pre-demotion generation.
func TestDemotionFlushesChainedLocalTBs(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry worker
worker:
    ldr r4, =xvar
    ldr r5, =yvar
loop:
    ldrex r1, [r4]
    strex r2, r1, [r5]
    b loop
.align 1024
xvar: .word 1
yvar: .word 2
`)
	cfg := DefaultConfig("pico-htm")
	cfg.MaxGuestInstrs = 2_000_000_000
	cfg.WatchdogSCFails = 500
	cfg.CheckpointEvery = 2_000
	cfg.ChainBudget = 32
	cfg.Tiered = true
	cfg.HotThreshold = 4
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.SpawnThread(im.Entry, 0); err != nil {
			t.Fatal(err)
		}
	}
	err = m.Run()
	var re *RecoveryExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("wedged guest should exhaust recovery, got %v", err)
	}
	if got := m.Scheme().Name(); got != "hst" {
		t.Fatalf("scheme-attributed failure should demote to hst, still %q", got)
	}
	// The demotion changed the instrumentation options: every surviving
	// localTB must belong to the post-flush shared cache generation.
	checkLocalTierConsistent(t, m)
}

// TestChainingSurvivesCheckpointRestore kills a chained 8-vCPU lock-free
// stack run with an injected store fault mid-flight: the restore must drop
// every chain link along with the rolled-back state, and the resumed run
// re-links and completes with an intact stack.
func TestChainingSurvivesCheckpointRestore(t *testing.T) {
	cfg := DefaultConfig("hst")
	cfg.MaxGuestInstrs = 2_000_000_000
	cfg.CheckpointEvery = 100_000
	cfg.ChainBudget = 64
	cfg.FaultInjector = faultinject.New(faultinject.Rule{
		Op: faultinject.OpMemStore, Action: faultinject.ActFault, After: 6_000, Count: 1,
	})
	agg, rep := runStackResilience(t, cfg, 8, 256, 256)
	if cfg.FaultInjector.Fired() == 0 {
		t.Fatal("injected fault never fired; the test exercised nothing")
	}
	if agg.RecoveryRestores == 0 {
		t.Error("run should have rolled back to a checkpoint at least once")
	}
	if agg.ChainFollows == 0 {
		t.Error("chaining never followed a link")
	}
	if rep.Corrupted() {
		t.Errorf("stack corrupted after recovery: %+v", rep)
	}
}

// TestTieredMetricsExposeTranslateCycles: the headline attribution fix —
// translation work must land in CompTBTranslate (and cache probes in
// CompTBLookup), never fold into CompNative, in both the tiered and the
// always-IR pipeline.
func TestTieredMetricsExposeTranslateCycles(t *testing.T) {
	for _, tiered := range []bool{false, true} {
		cfg := DefaultConfig("hst")
		cfg.Tiered = tiered
		cfg.ChainBudget = 16
		cfg.HotThreshold = 8
		agg := runCounterWorkload(t, cfg, 2, 200).AggregateStats()
		if agg.Cycles[stats.CompTBTranslate] == 0 {
			t.Errorf("tiered=%v: no cycles attributed to tb_translate", tiered)
		}
		if agg.Cycles[stats.CompTBLookup] == 0 {
			t.Errorf("tiered=%v: no cycles attributed to tb_lookup", tiered)
		}
	}
}
