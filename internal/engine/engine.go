// Package engine is atomemu's DBT execution engine — the QEMU analogue. It
// owns the guest address space, the translation-block cache, the vCPU
// goroutines with their QEMU-style exclusive (stop-the-world) protocol, the
// guest syscall layer (threads, futexes, barriers, memory), and the
// virtual-time cost model that stands in for the paper's 52-core testbed
// (see DESIGN.md §4).
//
// The atomic-instruction emulation scheme (internal/core) plugs in at
// machine construction; the translator consults it for instrumentation
// decisions, and the interpreter routes LL/SC and instrumented loads/stores
// through it.
//
// Limitation: a machine's own translation blocks are never invalidated, so
// self-modifying guest code is unsupported within one machine (all guest
// programs here are static images) — the same simplification QEMU's user
// mode makes unless mmap tracking forces a flush. The cross-job shared
// store (Config.SharedTBStore) is stricter: an MMU store watch over the
// image span gates every shared adoption and publication, so a mutated
// page's blocks are never shared across machines (sharedtb.go).
package engine

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"atomemu/internal/asm"
	"atomemu/internal/checkpoint"
	"atomemu/internal/core"
	"atomemu/internal/faultinject"
	"atomemu/internal/htm"
	"atomemu/internal/ir"
	"atomemu/internal/mmu"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
	"atomemu/internal/tbstore"
	"atomemu/internal/translate"
)

// Default guest memory layout.
const (
	// RuntimeBase holds the engine-provided thread-exit trampoline.
	RuntimeBase uint32 = 0x0000_1000
	// DefaultHeapBase is where sys_mmap allocations start.
	DefaultHeapBase uint32 = 0x2000_0000
	// StackRegionBase is where per-thread stacks are carved out, growing
	// upward by thread id, each followed by an unmapped guard page.
	StackRegionBase uint32 = 0x4000_0000
)

// Config configures a Machine.
type Config struct {
	// Scheme selects the atomic emulation scheme by name (core.SchemeNames).
	Scheme string
	// Cost is the virtual-time cost model.
	Cost core.CostModel
	// MemBytes bounds guest physical memory.
	MemBytes uint32
	// HashBits sizes the HST store-test table (2^bits entries).
	HashBits uint
	// HTMBits and HTMCapacity size the software HTM.
	HTMBits     uint
	HTMCapacity int
	// MaxGuestInstrsPerTB caps translation-block length (0 = default).
	MaxGuestInstrsPerTB int
	// NoOptimize disables the IR optimizer (for differential testing).
	NoOptimize bool
	// StackBytes is the per-thread stack size.
	StackBytes uint32
	// MaxThreads bounds guest thread creation.
	MaxThreads int
	// QuantumTBs is how many blocks run between host scheduler yields
	// (0 = default).
	QuantumTBs int
	// PreemptMemOps is the mean number of guest memory operations between
	// randomized mid-block host yields (instruction-granular preemption).
	// 0 selects the default; a negative value disables mid-block preemption.
	PreemptMemOps int
	// FuseAtomics enables rule-based translation (paper §VI): recognized
	// LL/SC retry loops run as single fused host atomics.
	FuseAtomics bool
	// ChainBudget enables direct block chaining: a block exiting through a
	// direct branch jumps straight to its successor without returning to
	// the dispatch loop, for at most this many blocks per loop iteration.
	// Exclusive-protocol polling and witness stalls still run at every
	// chained boundary; the budget only bounds how stale the loop-level
	// services (deadline, checkpoint cadence, watchdog, host yield) can
	// get. 0 (the default) disables chaining; forced off in StepMode and
	// under TraceWriter, which need the loop after every block.
	ChainBudget int
	// Tiered enables profile-gated tiering: cold blocks run in a
	// decoder-direct interp tier (translate.Interp — no IR, no optimizer)
	// and are re-translated as optimized superblocks once their per-vCPU
	// execution count crosses HotThreshold. Off by default: the tier's
	// virtual-time charges are close to but not cycle-identical with the
	// always-IR pipeline, so the figure/correctness harness leaves it off.
	Tiered bool
	// HotThreshold is the per-vCPU execution count at which a tiered
	// block is promoted to optimized IR (0 = default 64).
	HotThreshold int
	// HTMInterference calibrates how violently emulation work interferes
	// with transactions that span block boundaries (PICO-HTM's LL…SC
	// windows): at each boundary inside an open transaction the engine
	// aborts it with probability min(0.95, ((threads-1)/HTMInterference)²),
	// modelling conflicts on QEMU's shared emulator state [paper §III-B,
	// ref 18]. SC-only transactions (HST-HTM) never cross a boundary and
	// are unaffected. 0 means the default (16).
	HTMInterference int
	// MaxGuestInstrs aborts a runaway vCPU after this many guest
	// instructions (0 = unlimited).
	MaxGuestInstrs uint64
	// StepMode builds vCPUs for deterministic single-stepping (litmus
	// tests): no goroutines, one guest instruction per block.
	StepMode bool
	// TraceWriter, when set, logs every executed guest instruction
	// (tid, pc, disassembly). Forces one-instruction blocks; debugging only.
	TraceWriter io.Writer
	// TraceEvents enables the per-vCPU atomic-event tracer (internal/obs):
	// LL/SC outcomes, exclusive sections, HTM aborts, watchdog trips,
	// checkpoint/restore. Off (the default) costs one nil check per
	// would-be event.
	TraceEvents bool
	// TraceRingBits sizes each vCPU's event ring at 2^bits events
	// (32 bytes each). 0 selects the default (12: 4096 events, 128 KiB
	// per vCPU). Older events are overwritten once a ring wraps.
	TraceRingBits uint
	// ProfileCollisions enables the HST collision census (Table I support).
	ProfileCollisions bool

	// StrictPaper restores the paper's crash-on-livelock behavior: the HTM
	// schemes return EmulationError after an abort storm instead of
	// demoting to their portable fallback path. The figure/correctness
	// harness sets it for reproduction fidelity; the default is resilient.
	StrictPaper bool
	// HTMMaxRetries bounds consecutive retryable aborts per LL/SC window
	// before a monitor demotes (0 = default).
	HTMMaxRetries int
	// HTMBackoffBase and HTMBackoffMax shape the virtual-cycle exponential
	// backoff between retries (0 = defaults).
	HTMBackoffBase uint64
	HTMBackoffMax  uint64
	// FallbackCooldown is how many LL windows run on the fallback path
	// after a demotion (0 = default).
	FallbackCooldown int
	// ResilienceSeed seeds the deterministic per-tid backoff jitter
	// (0 = default).
	ResilienceSeed uint64
	// WatchdogSCFails trips the per-vCPU progress watchdog after this many
	// SC failures with no intervening success. 0 selects the default;
	// a negative value disables the watchdog.
	WatchdogSCFails int64
	// CheckpointEvery enables crash-consistent checkpoints: a consistent
	// cut of the whole machine is captured inside a quiet stop-the-world
	// section each time virtual time advances by this many cycles. 0 (the
	// default) disables checkpointing; the paper harness leaves it off so
	// figure reproduction is unaffected.
	CheckpointEvery uint64
	// RecoveryAttempts bounds how many rollback recoveries Run performs
	// after a recoverable failure (watchdog trip, scheme error, guest
	// fault, vCPU panic) before giving up with RecoveryExhaustedError.
	// 0 selects the default (3); a negative value disables recovery even
	// when checkpoints are captured.
	RecoveryAttempts int
	// CheckpointSink, when set alongside CheckpointEvery, receives every
	// captured snapshot just after the quiet stop-the-world window ends —
	// the durability layer spills it to disk from here. The call runs on
	// the capturing vCPU's goroutine, uncharged (capture cost is already
	// attributed to the checkpoint component), so implementations must not
	// block: hand the (immutable) snapshot to a writer goroutine and
	// return. Restored runs keep the same sink.
	CheckpointSink func(*checkpoint.Snapshot)
	// VirtualDeadline stops the machine with a DeadlineError once any vCPU
	// clock passes this many virtual cycles. 0 means no deadline.
	VirtualDeadline uint64
	// HashSpinBudget bounds hashtab.SetWait's spin on a locked entry
	// (0 = hashtab.DefaultSpinBudget).
	HashSpinBudget int
	// FaultInjector, when set, is threaded through the TM, the hash table
	// and the MMU for deterministic failure testing.
	FaultInjector *faultinject.Injector
	// SchedHook, when set, observes vCPU blocking transitions so an
	// external step-mode scheduler (internal/adversary) can drive the
	// machine without timeouts or polling. See the SchedHook type.
	SchedHook SchedHook

	// SharedTBStore attaches the machine to the process-wide
	// content-addressed translation store (internal/tbstore): translation
	// blocks are adopted from and published to a view keyed by image
	// content + translation options, so repeat jobs for the same image
	// skip decode+translate+optimize. The keyed view is derived at
	// LoadImage from the image itself; machines built over a snapshot
	// (ResumeFromSnapshot never calls LoadImage) must pin the key and the
	// guarded span with the three fields below.
	SharedTBStore *tbstore.Store[*TB]
	// SharedTBImage is the image content hash (engine.ImageKey) when the
	// caller already knows it; zero means derive at LoadImage.
	SharedTBImage [32]byte
	// SharedTBBase/SharedTBSize give the image span the MMU store watch
	// guards. A non-zero size makes NewMachine attach immediately (the
	// resume path); otherwise LoadImage attaches.
	SharedTBBase uint32
	SharedTBSize uint32
	// SharedTBSeedStores pre-marks image pages the snapshot's producer had
	// already stored to (engine.(*Machine).ImageStoreCounts), keeping the
	// span checks sound when memory comes from a warm-fork template rather
	// than a pristine image.
	SharedTBSeedStores []uint64
}

// SchedHook receives vCPU park/wake notifications for an external
// deterministic scheduler. A step-mode machine is driven one vCPU at a
// time through CPU.Step, but blocking guest syscalls (futex, barrier,
// join) do not return until another vCPU delivers a wake — the scheduler
// must know when the vCPU it is stepping has parked (its Step call will
// not return) and how many parked vCPUs a wake is about to release
// (their pending Step calls will now return).
//
// Parked runs on the parking vCPU's goroutine after the park is
// registered, before it sleeps. Woken runs on the waking vCPU's
// goroutine before the wakes are delivered, possibly under machine
// locks: implementations must not call back into the Machine, and may
// only block on a peer that is guaranteed to be receiving (a channel
// hand-off to the scheduler loop).
type SchedHook interface {
	Parked(tid uint32)
	Woken(n int)
}

// DefaultConfig returns a ready-to-use configuration for the given scheme.
func DefaultConfig(scheme string) Config {
	return Config{
		Scheme:           scheme,
		Cost:             core.DefaultCostModel(),
		MemBytes:         64 << 20,
		HashBits:         14,
		HTMBits:          16,
		HTMCapacity:      0,
		StackBytes:       64 << 10,
		MaxThreads:       256,
		QuantumTBs:       32,
		PreemptMemOps:    600,
		HTMInterference:  16,
		WatchdogSCFails:  1 << 17,
		RecoveryAttempts: 3,
		HotThreshold:     64,
	}
}

// Machine is one emulated guest machine.
type Machine struct {
	cfg    Config
	mem    *mmu.Memory
	scheme core.Scheme
	tm     *htm.TM
	excl   *exclusive
	topts  translate.Options

	// storeNotifier is the scheme's NoteStore hook, when it has one (fused
	// atomics bypass the scheme but must still break monitors).
	storeNotifier core.StoreNotifier

	// tbs is the shared translation-block cache: lock-free sharded
	// copy-on-write lookups, see tbcache.go.
	tbs tbCache

	// Cross-job shared-translation state (sharedtb.go): the keyed view of
	// cfg.SharedTBStore, the image hash it derives from, and the MMU store
	// watch over the image span that gates adoption and publication.
	// All three are set before vCPUs launch (or while quiesced, on rekey).
	sharedView  *tbstore.View[*TB]
	sharedImage [32]byte
	sharedWatch *mmu.StoreWatch

	// Effective IR-bypass knobs (tier.go), derived from cfg at
	// construction: StepMode and TraceWriter force both off.
	chainBudget  int
	tiered       bool
	hotThreshold uint32
	superMax     int // superblock instruction cap used at promotion

	cpuMu sync.Mutex
	cpus  []*CPU
	// cpuReserved counts newCPU calls that passed the MaxThreads check but
	// have not appended to cpus yet, so concurrent guest spawns cannot
	// overshoot the limit between the check and the append.
	cpuReserved int
	nextTID     uint32
	wg          sync.WaitGroup

	stopped atomic.Bool
	// stopCh broadcasts the stop to join waiters, which (unlike futex and
	// barrier waiters) have no per-waiter wake channel the stop path can
	// reach: a join cycle would otherwise hang the host forever after the
	// deadlock detector fires. Guarded by errMu; recreated by restore.
	stopCh       chan struct{}
	stopChClosed bool
	errMu        sync.Mutex
	firstErr     error

	outMu  sync.Mutex
	output []uint32

	heapMu   sync.Mutex
	heapNext uint32

	futexMu sync.Mutex
	futexes map[uint32]*futexQueue

	barMu    sync.Mutex
	barriers map[uint32]*guestBarrier

	// exclSections counts stop-the-world sections (real or charged); every
	// vCPU pays an ExclusiveStall for each section it witnesses.
	exclSections atomic.Uint64
	// runningCPUs counts vCPUs not yet halted.
	runningCPUs atomic.Int32

	// parkMu guards parked, the per-CPU blocked markers and joinParked
	// counts: the guest-deadlock detector's state. parked counts vCPUs
	// blocked in a guest syscall with no wake in flight (wakers decrement
	// before delivering the wake, so parked == runningCPUs only at a true
	// deadlock). Lock order: futexMu/barMu before parkMu, parkMu before
	// cpuMu; never call stop while holding parkMu.
	parkMu sync.Mutex
	parked int

	// Checkpoint/recovery state. lastCkpt is the newest consistent cut;
	// nextCkptVT is the virtual time at which the next capture is claimed
	// (CAS-guarded so exactly one vCPU captures per cadence point).
	ckptMu     sync.Mutex
	lastCkpt   *checkpoint.Snapshot
	nextCkptVT atomic.Uint64
	// Machine-level counters (per-CPU stats are themselves rolled back by
	// restores); AggregateStats merges them into the aggregate.
	checkpoints      atomic.Uint64
	ckptPages        atomic.Uint64
	recoveryAttempts atomic.Uint64
	recoveryRestores atomic.Uint64

	// Event-tracer state (nil/empty unless cfg.TraceEvents). rings holds
	// every per-vCPU ring ever created — restore() drops rolled-back vCPUs
	// from cpus, but their trace of what actually happened must survive.
	// hostRing records machine-level events (restores) with explicit
	// timestamps.
	ringMu   sync.Mutex
	rings    []*obs.Ring
	hostRing *obs.Ring
}

// TB is a cached translation block — the shared, scheme-consistent unit of
// the two-level cache. Without tiering, ir is set before the TB is
// published and never changes. Under profile-gated tiering a TB is born
// with only its decoded form (dec) and ir is published once, by the first
// vCPU that promotes the block (tier.go); dec stays valid so vCPUs that
// have not noticed the promotion yet can still interpret.
type TB struct {
	ir  atomic.Pointer[ir.Block]
	dec *translate.Decoded

	// lo/hi bound the guest addresses the block was translated from (hi
	// exclusive; widened at promotion, before the superblock IR publishes)
	// and sens carries the instrumentation-sensitivity bits — both serve
	// the shared store's span checks and demotion retention (sharedtb.go).
	lo, hi atomic.Uint32
	sens   atomic.Uint32
}

// newIRTB wraps an already-translated IR block as a TB.
func newIRTB(block *ir.Block) *TB {
	tb := &TB{}
	tb.lo.Store(block.GuestLo)
	tb.hi.Store(block.GuestHi)
	tb.sens.Store(sensOf(block.HasStores, block.HasLoads))
	tb.ir.Store(block)
	return tb
}

// newDecTB wraps a decoded (interp-tier) block as a TB.
func newDecTB(dec *translate.Decoded) *TB {
	tb := &TB{dec: dec}
	tb.lo.Store(dec.Start)
	tb.hi.Store(dec.End())
	tb.sens.Store(sensOf(dec.HasStores, dec.HasLoads))
	return tb
}

// normalized fills zero-valued sizing fields from DefaultConfig while
// keeping every caller-set field. (A partially-specified Config used to be
// replaced wholesale whenever MemBytes was 0, silently discarding options
// like Scheme, HashBits, FuseAtomics, NoOptimize or TraceWriter.) Flags and
// debug fields pass through untouched; fields where zero is meaningful
// (MaxGuestInstrsPerTB, MaxGuestInstrs, HTMCapacity) are likewise kept, and
// PreemptMemOps uses a negative value, not 0, to disable preemption.
func (cfg Config) normalized() Config {
	def := DefaultConfig(cfg.Scheme)
	if cfg.Cost == (core.CostModel{}) {
		cfg.Cost = def.Cost
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = def.MemBytes
	}
	if cfg.HashBits == 0 {
		cfg.HashBits = def.HashBits
	}
	if cfg.HTMBits == 0 {
		cfg.HTMBits = def.HTMBits
	}
	if cfg.StackBytes == 0 {
		cfg.StackBytes = def.StackBytes
	}
	if cfg.MaxThreads == 0 {
		cfg.MaxThreads = def.MaxThreads
	}
	if cfg.QuantumTBs == 0 {
		cfg.QuantumTBs = def.QuantumTBs
	}
	if cfg.PreemptMemOps == 0 {
		cfg.PreemptMemOps = def.PreemptMemOps
	}
	if cfg.HTMInterference == 0 {
		cfg.HTMInterference = def.HTMInterference
	}
	// WatchdogSCFails mirrors PreemptMemOps: 0 means default, negative
	// disables.
	if cfg.WatchdogSCFails == 0 {
		cfg.WatchdogSCFails = def.WatchdogSCFails
	}
	// RecoveryAttempts likewise: 0 means default, negative disables.
	if cfg.RecoveryAttempts == 0 {
		cfg.RecoveryAttempts = def.RecoveryAttempts
	}
	if cfg.HotThreshold == 0 {
		cfg.HotThreshold = def.HotThreshold
	}
	return cfg
}

// resilience derives the scheme-facing resilience policy from the config.
func (cfg *Config) resilience() core.Resilience {
	return core.Resilience{
		StrictPaper: cfg.StrictPaper,
		MaxRetries:  cfg.HTMMaxRetries,
		BackoffBase: cfg.HTMBackoffBase,
		BackoffMax:  cfg.HTMBackoffMax,
		Cooldown:    cfg.FallbackCooldown,
		Seed:        cfg.ResilienceSeed,
	}
}

// NewMachine builds a machine with the configured scheme. Zero-valued
// sizing fields of cfg are filled from DefaultConfig (see Config.normalized)
// and the result must pass Config.Validate.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	m := &Machine{
		cfg:      cfg,
		mem:      mmu.New(cfg.MemBytes),
		excl:     newExclusive(),
		heapNext: DefaultHeapBase,
		futexes:  make(map[uint32]*futexQueue),
		barriers: make(map[uint32]*guestBarrier),
		stopCh:   make(chan struct{}),
	}
	m.mem.SetInjector(cfg.FaultInjector)
	m.nextCkptVT.Store(cfg.CheckpointEvery)
	if cfg.TraceEvents {
		m.hostRing = obs.NewRing(0, m.traceRingBits(), nil)
	}

	res := m.cfg.resilience()
	deps := core.Deps{Cost: &m.cfg.Cost, Res: &res}
	needsHTM := cfg.Scheme == "pico-htm" || cfg.Scheme == "hst-htm"
	if needsHTM {
		tm, err := htm.New(cfg.HTMBits, cfg.HTMCapacity)
		if err != nil {
			return nil, err
		}
		tm.SetInjector(cfg.FaultInjector)
		m.tm = tm
		deps.TM = tm
	}
	switch cfg.Scheme {
	case "hst", "hst-weak", "hst-htm":
		tab, err := core.NewHashTable(cfg.HashBits)
		if err != nil {
			return nil, err
		}
		tab.SpinBudget = cfg.HashSpinBudget
		tab.SetInjector(cfg.FaultInjector)
		deps.Htab = tab
	}
	var err error
	if cfg.Scheme == "hst" && cfg.ProfileCollisions {
		m.scheme = core.NewHSTProfiled(deps.Cost, deps.Htab)
	} else {
		m.scheme, err = core.New(cfg.Scheme, deps)
		if err != nil {
			return nil, err
		}
	}

	maxTB := cfg.MaxGuestInstrsPerTB
	if cfg.StepMode || cfg.TraceWriter != nil {
		maxTB = 1
	}
	m.topts = translate.Options{
		InstrumentStores: m.scheme.InstrumentsStores(),
		InstrumentLoads:  m.scheme.InstrumentsLoads(),
		MaxGuestInstrs:   maxTB,
		Optimize:         !cfg.NoOptimize,
		FuseAtomics:      cfg.FuseAtomics,
	}
	m.storeNotifier, _ = m.scheme.(core.StoreNotifier)

	m.chainBudget = cfg.ChainBudget
	m.tiered = cfg.Tiered
	m.hotThreshold = uint32(cfg.HotThreshold)
	if cfg.StepMode || cfg.TraceWriter != nil {
		// Single-stepping and per-instruction tracing rely on returning to
		// the dispatch loop after every (one-instruction) block.
		m.chainBudget = 0
		m.tiered = false
	}
	m.superMax = translate.DefaultSuperblockInstrs
	if maxTB > 0 {
		m.superMax = 4 * maxTB
	}

	// The runtime page: the thread-exit trampoline (svc exit).
	if err := m.mem.Map(RuntimeBase, mmu.PageSize, mmu.PermRX); err != nil {
		return nil, err
	}
	trap := trampolineWords()
	for i, w := range trap {
		if f := m.mem.WriteWordPriv(RuntimeBase+uint32(i)*4, w); f != nil {
			return nil, f
		}
	}

	// A caller that pins the image key attaches here — the resume path,
	// where LoadImage never runs (memory arrives via snapshot restore,
	// which writes frames directly and so never trips the store watch).
	if cfg.SharedTBStore != nil && cfg.SharedTBSize != 0 {
		m.attachSharedTB(cfg.SharedTBImage, cfg.SharedTBBase, cfg.SharedTBSize, cfg.SharedTBSeedStores)
	}
	return m, nil
}

// Scheme returns the active emulation scheme.
func (m *Machine) Scheme() core.Scheme { return m.scheme }

// Mem returns the guest address space (examples and tests use it to seed
// and inspect guest data).
func (m *Machine) Mem() *mmu.Memory { return m.mem }

// LoadImage maps and copies an assembled image into guest memory. Image
// pages are mapped read-write-execute (code and data share pages, as in a
// flat firmware-style binary).
func (m *Machine) LoadImage(im *asm.Image) error {
	base := mmu.PageBase(im.Org)
	end := im.End()
	size := (end - base + mmu.PageSize - 1) &^ uint32(mmu.PageMask)
	if err := m.mem.Map(base, size, mmu.PermRWX); err != nil {
		return fmt.Errorf("engine: mapping image: %w", err)
	}
	for i, w := range im.Words {
		if f := m.mem.WriteWordPriv(im.Org+uint32(i)*4, w); f != nil {
			return f
		}
	}
	// Attach the shared-translation view now that the image bytes are in
	// place (the watch must not count host-side seeding as mutation).
	if m.cfg.SharedTBStore != nil && m.sharedView == nil {
		key := m.cfg.SharedTBImage
		if key == ([32]byte{}) {
			key = ImageKey(im)
		}
		spanBase, spanSize := ImageSpan(im)
		m.attachSharedTB(key, spanBase, spanSize, m.cfg.SharedTBSeedStores)
	}
	return nil
}

// MapRegion maps extra guest memory (workload heaps).
func (m *Machine) MapRegion(addr, size uint32, perm mmu.Perm) error {
	return m.mem.Map(addr, size, perm)
}

// stop records the first fatal error and halts every vCPU.
func (m *Machine) stop(err error) {
	m.errMu.Lock()
	if m.firstErr == nil && err != nil {
		m.firstErr = err
	}
	m.stopped.Store(true)
	if !m.stopChClosed {
		m.stopChClosed = true
		close(m.stopCh)
	}
	m.errMu.Unlock()
	// Wake sleepers so they observe the stop.
	m.futexMu.Lock()
	for _, q := range m.futexes {
		q.wakeAll(0)
	}
	m.futexMu.Unlock()
	m.barMu.Lock()
	for _, b := range m.barriers {
		b.releaseAll()
	}
	m.barMu.Unlock()
}

// Stopped reports whether the machine has fatally stopped (Err can still
// be nil: a clean exit_group also stops the machine).
func (m *Machine) Stopped() bool { return m.stopped.Load() }

// Interrupt stops the machine as if a fatal error had occurred, waking
// any vCPUs parked in blocking guest syscalls so their pending Step
// calls return. External steppers use it to abandon a wedged step-mode
// run; outside step mode, cancelling RunContext is the supported path.
func (m *Machine) Interrupt(err error) { m.stop(err) }

// Err returns the first fatal error, if any.
func (m *Machine) Err() error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.firstErr
}

// Start creates the main vCPU at entry with r0..rN = args and, unless the
// machine is in step mode, launches it.
func (m *Machine) Start(entry uint32, args ...uint32) (*CPU, error) {
	return m.newCPU(entry, 0, args)
}

// SpawnThread is the host-side thread creation used by tests; guest code
// uses the spawn syscall.
func (m *Machine) SpawnThread(entry uint32, args ...uint32) (*CPU, error) {
	return m.newCPU(entry, 0, args)
}

func (m *Machine) newCPU(entry uint32, startClock uint64, args []uint32) (*CPU, error) {
	// A stopped machine must not hand out a fresh vCPU goroutine: Start or
	// SpawnThread after a fatal stop used to launch a thread that raced
	// machine teardown. Surface the stop error instead.
	if m.stopped.Load() {
		if err := m.Err(); err != nil {
			return nil, fmt.Errorf("engine: machine stopped: %w", err)
		}
		return nil, fmt.Errorf("engine: machine stopped")
	}
	// Reserve a tid and a slot under one lock so concurrent guest spawns
	// cannot both pass the limit check and overshoot MaxThreads; the
	// reservation (not a re-check at append time) also means a spawn that
	// passed the check can never lose a race after mapping its stack.
	m.cpuMu.Lock()
	if len(m.cpus)+m.cpuReserved >= m.cfg.MaxThreads {
		m.cpuMu.Unlock()
		return nil, fmt.Errorf("engine: thread limit %d reached", m.cfg.MaxThreads)
	}
	m.cpuReserved++
	m.nextTID++
	tid := m.nextTID
	m.cpuMu.Unlock()

	stackTop, err := m.mapStack(tid)
	if err != nil {
		m.cpuMu.Lock()
		m.cpuReserved--
		m.cpuMu.Unlock()
		return nil, err
	}
	c := newCPU(m, tid)
	c.pc = entry
	c.clock.Store(startClock)
	for i, a := range args {
		if i >= 13 {
			break
		}
		c.slots[i] = a
	}
	c.slots[13] = stackTop    // sp
	c.slots[14] = RuntimeBase // lr: returning from the entry function exits
	c.done = make(chan struct{})

	m.cpuMu.Lock()
	m.cpus = append(m.cpus, c)
	m.cpuReserved--
	m.cpuMu.Unlock()
	m.runningCPUs.Add(1)

	if !m.cfg.StepMode {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			c.run()
		}()
	}
	return c, nil
}

func (m *Machine) mapStack(tid uint32) (uint32, error) {
	sz := m.cfg.StackBytes
	if sz == 0 {
		sz = 64 << 10
	}
	stride := sz + mmu.PageSize // guard page between stacks
	base := StackRegionBase + (tid-1)*stride
	if err := m.mem.Map(base, sz, mmu.PermRW); err != nil {
		return 0, fmt.Errorf("engine: mapping stack for tid %d: %w", tid, err)
	}
	return base + sz, nil
}

// CPUs returns the machine's vCPUs (stable after threads stop spawning).
func (m *Machine) CPUs() []*CPU {
	m.cpuMu.Lock()
	defer m.cpuMu.Unlock()
	out := make([]*CPU, len(m.cpus))
	copy(out, m.cpus)
	return out
}

// Output returns the values the guest emitted via the write syscall.
func (m *Machine) Output() []uint32 {
	m.outMu.Lock()
	defer m.outMu.Unlock()
	out := make([]uint32, len(m.output))
	copy(out, m.output)
	return out
}

// VirtualTime returns the machine's execution time in virtual cycles: the
// maximum over all vCPU clocks.
func (m *Machine) VirtualTime() uint64 {
	var maxClk uint64
	for _, c := range m.CPUs() {
		if t := c.clock.Load(); t > maxClk {
			maxClk = t
		}
	}
	return maxClk
}

// AggregateStats sums all vCPU counters and merges in the machine-level
// checkpoint/recovery counters (which survive rollbacks; per-CPU counters
// are restored along with the vCPU).
//
// Safe to call while the machine is running: per-vCPU counters are plain
// fields owned by their vCPU goroutine, so the read briefly stops the world
// (uncharged, like a checkpoint capture) to get a consistent, race-free
// snapshot — the service layer polls live jobs through this. In StepMode
// there are no vCPU goroutines and the caller drives all execution, so the
// read is direct and callers must not step concurrently.
func (m *Machine) AggregateStats() stats.CPU {
	if !m.cfg.StepMode {
		m.excl.hostStop()
		defer m.excl.hostResume()
	}
	var agg stats.CPU
	for _, c := range m.CPUs() {
		agg.Add(&c.st)
	}
	agg.Checkpoints = m.checkpoints.Load()
	agg.CheckpointPages = m.ckptPages.Load()
	agg.RecoveryAttempts = m.recoveryAttempts.Load()
	agg.RecoveryRestores = m.recoveryRestores.Load()
	return agg
}

// traceRingBits returns the configured per-ring size exponent.
func (m *Machine) traceRingBits() uint {
	if m.cfg.TraceRingBits != 0 {
		return m.cfg.TraceRingBits
	}
	return 12
}

// newTraceRing creates and registers a vCPU's event ring (nil when tracing
// is off). Rings are registered machine-wide rather than discovered via
// m.cpus because restore() drops rolled-back vCPUs from cpus — the trace
// must still describe what those vCPUs actually did.
func (m *Machine) newTraceRing(tid uint32, clock *atomic.Uint64) *obs.Ring {
	if !m.cfg.TraceEvents {
		return nil
	}
	r := obs.NewRing(tid, m.traceRingBits(), clock)
	m.ringMu.Lock()
	m.rings = append(m.rings, r)
	m.ringMu.Unlock()
	return r
}

// TraceEvents returns every traced event, merged across vCPUs and sorted
// by virtual timestamp (ties by tid). Outside StepMode it quiesces the
// machine with the same host-side stop AggregateStats uses, so it is safe
// while vCPUs run. Returns nil when tracing is disabled.
func (m *Machine) TraceEvents() []obs.Event {
	if !m.cfg.TraceEvents {
		return nil
	}
	if !m.cfg.StepMode {
		m.excl.hostStop()
		defer m.excl.hostResume()
	}
	m.ringMu.Lock()
	rings := append([]*obs.Ring{m.hostRing}, m.rings...)
	m.ringMu.Unlock()
	var out []obs.Event
	for _, r := range rings {
		out = append(out, r.Events()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].VT != out[j].VT {
			return out[i].VT < out[j].VT
		}
		return out[i].TID < out[j].TID
	})
	return out
}

// TraceDropped reports how many events were lost to ring wrap, summed
// across all rings.
func (m *Machine) TraceDropped() uint64 {
	m.ringMu.Lock()
	defer m.ringMu.Unlock()
	n := m.hostRing.Dropped()
	for _, r := range m.rings {
		n += r.Dropped()
	}
	return n
}

// chargeExclusiveEntry charges the requester for a stop-the-world section
// (base + per-running-vCPU park cost) and publishes the section so every
// other vCPU pays its witness stall.
//
// This sits on the critical path of every HST and PICO-ST SC, so the
// running-vCPU count comes from the maintained runningCPUs counter — one
// atomic load — rather than copying and scanning the cpus slice under
// cpuMu, which made each SC O(num vCPUs) and serialized it against spawns.
func (m *Machine) chargeExclusiveEntry(c *CPU) {
	n := int(m.runningCPUs.Load())
	cost := m.cfg.Cost.ExclusiveBase
	if n > 1 {
		cost += uint64(n-1) * m.cfg.Cost.ExclusivePerCPU
	}
	c.charge(stats.CompExclusive, cost)
	c.st.ExclSections++
	// Publish; the requester has already paid, so it skips its own stall.
	c.lastExclSeen = m.exclSections.Add(1)
}

// tbFor returns the translation block at pc, translating on a shared-cache
// miss; see localFor for the mechanics. Kept as the shared-level entry
// point for tests and tools that care about the TB, not the per-vCPU view.
func (m *Machine) tbFor(c *CPU, pc uint32) (*TB, error) {
	lt, err := m.localFor(c, pc)
	if err != nil {
		return nil, err
	}
	return lt.tb, nil
}

// localFor returns the vCPU-private view of the block at pc, translating
// on a shared-cache miss. The shared lookup is lock-free (tbcache.go) and
// translation runs outside any critical section, so concurrent misses on
// different PCs proceed in parallel; racing misses on the same pc adopt
// the first published block. Translation inside an open PICO-HTM window
// aborts the transaction — the paper's "QEMU code becomes part of the
// transaction" effect.
//
// Cycle attribution: cache probes charge CompTBLookup and translation
// charges CompTBTranslate (both tiers folded these into CompNative once,
// which made the translate pipeline invisible in /metrics and in tiering
// decisions). Under tiering a cold miss only decodes (Cost.TBDecode per
// instruction); the full Cost.TBTranslate is paid at promotion.
func (m *Machine) localFor(c *CPU, pc uint32) (*localTB, error) {
	if lt := c.localTBs[pc]; lt != nil {
		c.charge(stats.CompTBLookup, m.cfg.Cost.TBLookup)
		return lt, nil
	}
	c.st.TBSharedLookups++
	tb := m.tbs.get(pc)
	if tb == nil && m.sharedView != nil && m.sharedWatch.Contains(pc, pc+4) {
		// Cross-job adoption: take the store's canonical block if the pages
		// it was translated from are still pristine in THIS machine's
		// memory (a warm fork seeds pre-cut mutations into the watch, so
		// the check stays sound over snapshot-born memory too).
		if stb, ok := m.sharedView.Get(pc); ok {
			if lo, hi := stb.tbSpan(); m.sharedSpanClean(lo, hi) {
				c.st.TBStoreHits++
				tb, _ = m.tbs.insert(pc, stb)
			} else {
				c.st.TBStoreInvalidations++
			}
		} else {
			c.st.TBStoreMisses++
		}
	}
	if tb == nil {
		c.abortOpenTxn(pc)
		// The vCPU does the translation work whether or not its block wins
		// the publish race, so it pays the translate cost either way.
		var newTB *TB
		if m.tiered {
			dec, err := translate.Decode(m.fetcher(), pc, m.topts)
			if err != nil {
				return nil, err
			}
			newTB = newDecTB(dec)
			c.charge(stats.CompTBTranslate, m.cfg.Cost.TBDecode*uint64(dec.GuestLen))
		} else {
			block, err := translate.Block(m.fetcher(), pc, m.topts)
			if err != nil {
				return nil, err
			}
			newTB = newIRTB(block)
			c.charge(stats.CompTBTranslate, m.cfg.Cost.TBTranslate*uint64(block.GuestLen))
		}
		// Offer the block to the cross-job store first — adopt-the-winner
		// there too, so racing machines converge on one canonical TB — then
		// publish into the machine cache. The span must be pristine AFTER
		// translation: the watch bumps before a mutating word is written,
		// so a translation that read mutated bytes cannot pass this check.
		if m.sharedView != nil {
			if lo, hi := newTB.tbSpan(); m.sharedSpanClean(lo, hi) {
				var pubWon bool
				newTB, pubWon = m.sharedView.Publish(pc, newTB)
				if pubWon {
					c.st.TBStorePublishes++
				}
			}
		}
		var won bool
		tb, won = m.tbs.insert(pc, newTB)
		c.st.TBTranslations++
		if !won {
			c.st.TBRaceDiscards++
		}
	}
	lt := &localTB{tb: tb, start: pc, block: tb.ir.Load()}
	c.localTBs[pc] = lt
	c.charge(stats.CompTBLookup, m.cfg.Cost.TBLookup)
	return lt, nil
}

// trampolineWords builds the runtime page: "svc #SysExit" so a thread entry
// function returning through lr exits cleanly.
func trampolineWords() []uint32 {
	return []uint32{
		svcWord(SysExit),
	}
}

// InitBarrier creates a guest barrier at addr for n participants — host-side
// setup used by harnesses; guest code can also use the barrier_init syscall.
func (m *Machine) InitBarrier(addr uint32, n int) { m.sysBarrierInit(addr, n) }
