package engine

import (
	"fmt"

	"atomemu/internal/checkpoint"
)

// This file is the cross-process half of checkpoint/restore: rollback
// recovery (checkpoint.go) replays a snapshot into the machine that
// captured it, while ResumeFromSnapshot replays one into a brand-new
// machine — the daemon restart path, where the original process is gone
// and the snapshot arrived from disk.

// LatestCheckpoint returns the newest captured snapshot, or nil when no
// checkpoint has been taken. The snapshot is immutable and safe to read
// (or encode) concurrently with further execution.
func (m *Machine) LatestCheckpoint() *checkpoint.Snapshot {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	return m.lastCkpt
}

// ResumeFromSnapshot builds a machine from cfg and resumes execution from
// snap, typically one decoded from a durable spill (checkpoint.Decode).
// The snapshot supplies the whole guest state — address space (image,
// stacks, heap), vCPU registers and counters, synchronization topology,
// output log — so no image loading or thread spawning happens here; the
// machine comes back exactly as deep into the run as the cut was taken,
// and RunContext drives it to completion as usual.
//
// cfg plays the same role as in NewMachine: scheme and policy. It need not
// match the crashed process's config — a decoded snapshot carries no
// scheme payload, every scheme starts fresh from a restore (monitors are
// disarmed; the first SC may fail spuriously, which LL/SC guests
// tolerate) — but MemBytes must be large enough for the snapshot's frames.
// The resumed machine seeds its rollback state with snap, so in-run
// recovery works from the first instruction of the resumed run.
func ResumeFromSnapshot(cfg Config, snap *checkpoint.Snapshot) (*Machine, error) {
	if cfg.StepMode {
		return nil, fmt.Errorf("engine: resume: step mode machines cannot resume from a snapshot")
	}
	if snap == nil || snap.Mem == nil {
		return nil, fmt.Errorf("engine: resume: nil snapshot")
	}
	if len(snap.CPUs) == 0 {
		return nil, fmt.Errorf("engine: resume: snapshot has no vCPUs")
	}
	m, err := NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	// Create one vCPU shell per snapshot vCPU, keyed by tid: restore()
	// rewrites every architectural and accounting field and relaunches the
	// goroutines of the non-halted ones, exactly as it does for rollback.
	// No stacks are mapped and no entry points are set — the snapshot's
	// page table replaces the fresh address space wholesale.
	seen := make(map[uint32]bool, len(snap.CPUs))
	for i := range snap.CPUs {
		cs := &snap.CPUs[i]
		if cs.TID == 0 || seen[cs.TID] {
			return nil, fmt.Errorf("engine: resume: bad vCPU tid %d in snapshot", cs.TID)
		}
		seen[cs.TID] = true
		c := newCPU(m, cs.TID)
		c.done = make(chan struct{})
		m.cpus = append(m.cpus, c)
	}
	// Seed the rollback state before restoring, so a recoverable failure in
	// the resumed run can roll back to the resume point even before the
	// first fresh checkpoint is captured.
	m.ckptMu.Lock()
	m.lastCkpt = snap
	m.ckptMu.Unlock()
	if err := m.tryRestore(snap, false); err != nil {
		return nil, fmt.Errorf("engine: resume: %w", err)
	}
	return m, nil
}
