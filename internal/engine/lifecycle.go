package engine

import (
	"context"
	"errors"
	"fmt"

	"atomemu/internal/checkpoint"
	"atomemu/internal/core"
	"atomemu/internal/mmu"
)

// This file is the machine lifecycle layer: cancellation and virtual-time
// deadlines for Run, the guest-deadlock detector, and the rollback-recovery
// policy that replays the last checkpoint after a recoverable failure.

// DeadlineError reports that a vCPU's virtual clock passed the configured
// VirtualDeadline. It is terminal: a rollback would only replay up to the
// same deadline again.
type DeadlineError struct {
	TID      uint32
	Deadline uint64
	Clock    uint64
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("engine: virtual deadline %d exceeded on vCPU %d (clock %d)",
		e.Deadline, e.TID, e.Clock)
}

// PanicError wraps a panic recovered on a vCPU goroutine: one bad block
// stops the machine with a diagnostic instead of killing the host process,
// and the recovery policy can roll the machine back past it.
type PanicError struct {
	TID    uint32
	PC     uint32
	Scheme string
	Value  any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: panic on vCPU %d (scheme %s) at pc %#08x: %v",
		e.TID, e.Scheme, e.PC, e.Value)
}

// RecoveryExhaustedError reports that rollback recovery used its whole
// attempt budget without reaching a clean finish. Err is the last failure.
type RecoveryExhaustedError struct {
	Attempts int
	Err      error
}

func (e *RecoveryExhaustedError) Error() string {
	return fmt.Sprintf("engine: recovery exhausted after %d attempts: %v", e.Attempts, e.Err)
}

func (e *RecoveryExhaustedError) Unwrap() error { return e.Err }

// Run waits for every vCPU to halt and returns the first fatal error,
// applying the rollback-recovery policy when checkpoints are enabled.
func (m *Machine) Run() error { return m.RunContext(context.Background()) }

// RunContext is Run with lifecycle control: cancelling ctx stops the
// machine — the vCPUs drain through the exclusive protocol at their next
// block boundary, never mid-SC — and RunContext returns ctx's error.
// Cancellation and virtual-time deadlines are terminal; recoverable
// failures (watchdog trips, scheme errors, guest faults, vCPU panics) are
// rolled back to the last checkpoint up to Config.RecoveryAttempts times,
// demoting to the portable HST scheme when the failure implicates the
// emulation scheme itself.
func (m *Machine) RunContext(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := 0
	for {
		err := m.waitStopped(ctx)
		if err == nil {
			return nil
		}
		if !recoverable(err) || m.cfg.RecoveryAttempts < 0 || m.cfg.StepMode {
			return err
		}
		m.ckptMu.Lock()
		snap := m.lastCkpt
		m.ckptMu.Unlock()
		if snap == nil {
			return err
		}
		demote := schemeAttributed(err) && !m.scheme.Portable()
		// The restore itself can fail — a fault injected into the page-table
		// rebuild, a snapshot that no longer matches the machine, or a panic
		// on the restore path. Each failed restore consumes a recovery
		// attempt and is retried against the same (immutable) snapshot,
		// instead of returning a terminal "rollback failed" on the first
		// hiccup — or worse, leaving a half-restored machine that a later
		// waitStopped would report as a clean finish.
		for {
			if attempts >= m.cfg.RecoveryAttempts {
				return &RecoveryExhaustedError{Attempts: attempts, Err: err}
			}
			attempts++
			m.recoveryAttempts.Add(1)
			rerr := m.tryRestore(snap, demote)
			if rerr == nil {
				break
			}
			err = fmt.Errorf("engine: rollback failed: %w (recovering from: %v)", rerr, err)
		}
		m.recoveryRestores.Add(1)
	}
}

// tryRestore is restore with panic containment: a panic on the restore
// path (the same class of failure the vCPU run loop already contains)
// becomes an error charged against the recovery budget rather than killing
// the recovery goroutine.
func (m *Machine) tryRestore(snap *checkpoint.Snapshot, demote bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: restore panicked: %v", r)
		}
	}()
	return m.restore(snap, demote)
}

// waitStopped waits for the current generation of vCPU goroutines while
// honouring ctx cancellation.
func (m *Machine) waitStopped(ctx context.Context) error {
	if ctx.Done() == nil {
		m.wg.Wait()
		return m.Err()
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		m.stop(ctx.Err())
		<-done
	case <-done:
	}
	return m.Err()
}

// recoverable classifies failures the rollback policy may retry: watchdog
// trips, scheme-level errors, guest memory faults (including injected
// ones), and vCPU panics. Deadlocks, deadlines and cancellation are
// terminal — replaying the same schedule cannot clear them.
func recoverable(err error) bool {
	var we *core.WatchdogError
	var ee *core.EmulationError
	var mf *mmu.Fault
	var pe *PanicError
	return errors.As(err, &we) || errors.As(err, &ee) ||
		errors.As(err, &mf) || errors.As(err, &pe)
}

// schemeAttributed reports whether the failure implicates the emulation
// scheme (watchdog trip or scheme-level error) rather than the guest
// program, in which case recovery resumes under the portable HST scheme.
func schemeAttributed(err error) bool {
	var we *core.WatchdogError
	var ee *core.EmulationError
	return errors.As(err, &we) || errors.As(err, &ee)
}

// --- guest-deadlock detection ---

// blockedMark records that a vCPU is parked in a blocking guest syscall.
// It doubles as the deadlock report's wait info and as the checkpoint
// marker that tells a restore to re-execute the interrupted syscall.
type blockedMark struct {
	active  bool
	syscall uint32
	kind    string // "futex", "barrier" or "join"
	addr    uint32 // futex word, barrier cell, or joined tid
	arrived int    // barrier occupancy when this waiter arrived
	total   int    // barrier size
}

// notePark registers c as blocked just before it leaves its execution
// region, and stops the machine with a DeadlockError when this park leaves
// no vCPU that could ever issue a wake. Must be called without futexMu or
// barMu held (stop takes both).
func (m *Machine) notePark(c *CPU, mark blockedMark) {
	m.parkMu.Lock()
	c.blocked = mark
	m.parked++
	derr := m.deadlockedLocked()
	m.parkMu.Unlock()
	if derr != nil {
		m.stop(derr)
	}
	if h := m.cfg.SchedHook; h != nil {
		h.Parked(c.tid)
	}
}

// noteWake is the waker-side decrement: n parked vCPUs are about to receive
// a wake. It must run BEFORE the wake is delivered, so a vCPU with a wake
// in flight is never counted as parked (no false deadlocks).
func (m *Machine) noteWake(n int) {
	if n == 0 {
		return
	}
	m.parkMu.Lock()
	m.parked -= n
	m.parkMu.Unlock()
	if h := m.cfg.SchedHook; h != nil {
		h.Woken(n)
	}
}

// noteResume clears c's blocked marker once it is back inside its execution
// region (the waker already decremented the park count on its behalf).
func (m *Machine) noteResume(c *CPU) {
	m.parkMu.Lock()
	c.blocked = blockedMark{}
	m.parkMu.Unlock()
}

// deadlockedLocked builds the structured deadlock diagnostic when every
// live vCPU is parked in a blocking syscall with no wake in flight. Caller
// holds parkMu and must pass a non-nil result to Machine.stop only after
// releasing it.
func (m *Machine) deadlockedLocked() error {
	running := int(m.runningCPUs.Load())
	if m.parked <= 0 || m.parked != running || m.stopped.Load() {
		return nil
	}
	werr := &core.DeadlockError{}
	m.cpuMu.Lock()
	for _, c := range m.cpus {
		if c.haltedFlag.Load() || !c.blocked.active {
			continue
		}
		werr.Waiters = append(werr.Waiters, core.DeadlockWaiter{
			TID:     c.tid,
			Kind:    c.blocked.kind,
			Addr:    c.blocked.addr,
			Arrived: c.blocked.arrived,
			Total:   c.blocked.total,
		})
	}
	m.cpuMu.Unlock()
	return werr
}
