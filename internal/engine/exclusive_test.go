package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"atomemu/internal/stats"
)

// TestExclusiveMutualExclusion drives the raw protocol from host-side
// goroutines: sections must never overlap, and parked vCPUs must wait.
func TestExclusiveMutualExclusion(t *testing.T) {
	cfg := DefaultConfig("pico-cas")
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 6
	const sections = 200
	cpus := make([]*CPU, workers)
	for i := range cpus {
		cpus[i] = newCPU(m, uint32(i+1))
	}
	var inSection atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	for _, c := range cpus {
		wg.Add(1)
		go func(c *CPU) {
			defer wg.Done()
			e := m.excl
			e.execStart(c)
			for s := 0; s < sections; s++ {
				e.checkpoint(c)
				e.startExclusive(c)
				if inSection.Add(1) != 1 {
					violations.Add(1)
				}
				inSection.Add(-1)
				e.endExclusive(c)
			}
			e.execEnd(c)
		}(c)
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d overlapping exclusive sections", violations.Load())
	}
}

// TestExclusiveCostAccounting: a requester pays base + per-cpu, and other
// vCPUs pay witness stalls.
func TestExclusiveCostAccounting(t *testing.T) {
	cfg := DefaultConfig("pico-cas")
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := newCPU(m, 1)
	b := newCPU(m, 2)
	m.cpuMu.Lock()
	m.cpus = append(m.cpus, a, b)
	m.cpuMu.Unlock()
	m.runningCPUs.Store(2)

	e := m.excl
	e.execStart(a)
	e.startExclusive(a)
	e.endExclusive(a)
	e.execEnd(a)

	wantReq := cfg.Cost.ExclusiveBase + cfg.Cost.ExclusivePerCPU
	if got := a.st.Cycles[stats.CompExclusive]; got != wantReq {
		t.Errorf("requester exclusive cycles = %d, want %d", got, wantReq)
	}
	if a.st.ExclSections != 1 {
		t.Errorf("requester sections = %d", a.st.ExclSections)
	}
	// b witnesses the section at its next checkpoint.
	b.witnessStalls()
	if got := b.st.Cycles[stats.CompExclusive]; got != cfg.Cost.ExclusiveStall {
		t.Errorf("witness stall = %d, want %d", got, cfg.Cost.ExclusiveStall)
	}
	// A second check without new sections charges nothing more.
	b.witnessStalls()
	if got := b.st.Cycles[stats.CompExclusive]; got != cfg.Cost.ExclusiveStall {
		t.Errorf("double-charged witness: %d", got)
	}
}

// TestChargeExclusiveWithoutStopping (the PST path) publishes a section for
// witnesses but never blocks anyone.
func TestChargeExclusiveWithoutStopping(t *testing.T) {
	cfg := DefaultConfig("pst")
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := newCPU(m, 1)
	b := newCPU(m, 2)
	m.cpuMu.Lock()
	m.cpus = append(m.cpus, a, b)
	m.cpuMu.Unlock()
	m.runningCPUs.Store(2)

	a.ChargeExclusive()
	if a.st.ExclSections != 1 {
		t.Error("section not recorded")
	}
	b.witnessStalls()
	if b.st.Cycles[stats.CompExclusive] == 0 {
		t.Error("witness not charged for a charged-only section")
	}
}
