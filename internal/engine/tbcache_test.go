package engine

import (
	"sync"
	"testing"

	"atomemu/internal/stats"
)

// TestTBCacheRacingMissesYieldOneTB races get-or-insert on overlapping PCs
// from many goroutines: every racer must end up with the identical *TB per
// pc (the first published block is canonical), and the cache must hold
// exactly one entry per pc. Run under -race this also proves the
// copy-on-write publication is data-race free.
func TestTBCacheRacingMissesYieldOneTB(t *testing.T) {
	const goroutines = 8
	const npcs = 64
	var cache tbCache
	pcs := make([]uint32, npcs)
	for i := range pcs {
		pcs[i] = 0x10000 + uint32(i)*4
	}
	var results [goroutines][npcs]*TB
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := range pcs {
				// Stagger the visit order per goroutine so different PCs
				// race at different times.
				idx := (i*7 + g*13) % npcs
				pc := pcs[idx]
				tb := cache.get(pc)
				if tb == nil {
					tb, _ = cache.insert(pc, &TB{})
				}
				results[g][idx] = tb
			}
		}(g)
	}
	close(start)
	wg.Wait()

	for i, pc := range pcs {
		want := cache.get(pc)
		if want == nil {
			t.Fatalf("pc %#x missing after racing inserts", pc)
		}
		for g := 0; g < goroutines; g++ {
			if results[g][i] != want {
				t.Fatalf("goroutine %d got a different *TB for pc %#x", g, pc)
			}
		}
	}
	if n := cache.len(); n != npcs {
		t.Fatalf("cache holds %d blocks, want %d", n, npcs)
	}
}

// TestTBForRacingTranslationsAgree drives the real miss path: host
// goroutines with their own vCPUs race m.tbFor on the same block starts.
// Everyone must resolve each pc to the same block, and the translation
// counters must balance — one winner per pc, every extra translation
// recorded as a race discard.
func TestTBForRacingTranslationsAgree(t *testing.T) {
	im := buildImage(t, counterProgram)
	m := newTestMachine(t, "pico-cas", im)
	const goroutines = 8
	const npcs = 8 // the first 8 instruction starts of the program
	pcs := make([]uint32, npcs)
	for i := range pcs {
		pcs[i] = im.Org + uint32(i)*4
	}
	cpus := make([]*CPU, goroutines)
	for i := range cpus {
		cpus[i] = newCPU(m, uint32(i+1))
	}
	var results [goroutines][npcs]*TB
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := range pcs {
				idx := (i*5 + g*3) % npcs
				tb, err := m.tbFor(cpus[g], pcs[idx])
				if err != nil {
					t.Error(err)
					return
				}
				results[g][idx] = tb
			}
		}(g)
	}
	close(start)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i := range pcs {
		want := results[0][i]
		for g := 1; g < goroutines; g++ {
			if results[g][i] != want {
				t.Fatalf("goroutine %d resolved pc %#x to a different block", g, pcs[i])
			}
		}
	}
	var translations, discards uint64
	for _, c := range cpus {
		translations += c.st.TBTranslations
		discards += c.st.TBRaceDiscards
	}
	if translations-discards != npcs {
		t.Fatalf("translation accounting: %d translations, %d discards, want %d winners",
			translations, discards, npcs)
	}
	if n := m.tbs.len(); n != npcs {
		t.Fatalf("shared cache holds %d blocks, want %d", n, npcs)
	}
	// Cycle attribution: translation work belongs to CompTBTranslate for
	// every vCPU that translated — including racers whose block lost the
	// publish and was discarded — and never folds into CompNative (the old
	// mis-attribution this PR fixes). No block was executed here, so the
	// native component must stay zero everywhere.
	for _, c := range cpus {
		if c.st.TBTranslations > 0 && c.st.Cycles[stats.CompTBTranslate] == 0 {
			t.Errorf("tid %d translated %d blocks (%d discarded) but charged no tb_translate cycles",
				c.tid, c.st.TBTranslations, c.st.TBRaceDiscards)
		}
		if c.st.Cycles[stats.CompNative] != 0 {
			t.Errorf("tid %d: translation leaked %d cycles into the native component",
				c.tid, c.st.Cycles[stats.CompNative])
		}
	}
}

// TestTBCacheLocalHitSkipsShared: after the first lookup the block is in
// the vCPU-local cache and the shared-lookup counter stops moving.
func TestTBCacheLocalHitSkipsShared(t *testing.T) {
	im := buildImage(t, counterProgram)
	m := newTestMachine(t, "pico-cas", im)
	c := newCPU(m, 1)
	for i := 0; i < 3; i++ {
		if _, err := m.tbFor(c, im.Org); err != nil {
			t.Fatal(err)
		}
	}
	if c.st.TBSharedLookups != 1 {
		t.Fatalf("shared lookups = %d, want 1 (local cache must absorb repeats)", c.st.TBSharedLookups)
	}
	if c.st.TBTranslations != 1 {
		t.Fatalf("translations = %d, want 1", c.st.TBTranslations)
	}
}
