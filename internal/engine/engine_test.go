package engine

import (
	"strings"
	"testing"

	"atomemu/internal/arch"
	"atomemu/internal/asm"
	"atomemu/internal/mmu"
)

func buildImage(t *testing.T, src string) *asm.Image {
	t.Helper()
	im, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func newTestMachine(t *testing.T, scheme string, im *asm.Image) *Machine {
	t.Helper()
	cfg := DefaultConfig(scheme)
	cfg.MaxGuestInstrs = 50_000_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSimpleArithmeticProgram(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    movi r0, #6
    movi r1, #7
    mul r2, r0, r1
    mov r0, r2
    svc #6      ; write r0
    movi r0, #0
    svc #1      ; exit
`)
	m := newTestMachine(t, "pico-cas", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := m.Output()
	if len(out) != 1 || out[0] != 42 {
		t.Fatalf("output = %v, want [42]", out)
	}
}

func TestLoopAndMemory(t *testing.T) {
	// Sum 1..100 into memory, read back, print.
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    movi r0, #0          ; sum
    movi r1, #100
loop:
    add r0, r0, r1
    subsi r1, r1, #1
    bne loop
    ldr r2, =cell
    str r0, [r2]
    ldr r3, [r2]
    mov r0, r3
    svc #6
    svc #1
.align 4
cell: .word 0
`)
	m := newTestMachine(t, "pico-cas", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out := m.Output(); len(out) != 1 || out[0] != 5050 {
		t.Fatalf("output = %v, want [5050]", out)
	}
}

func TestCallAndReturn(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    movi r0, #5
    bl double
    svc #6
    svc #1
double:
    add r0, r0, r0
    ret
`)
	m := newTestMachine(t, "pico-cas", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out := m.Output(); len(out) != 1 || out[0] != 10 {
		t.Fatalf("output = %v, want [10]", out)
	}
}

func TestEntryReturnExitsViaTrampoline(t *testing.T) {
	// A main that just returns: lr points at the runtime trampoline.
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    movi r0, #9
    ret
`)
	m := newTestMachine(t, "pico-cas", im)
	c, err := m.Start(im.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if c.ExitCode() != 9 {
		t.Fatalf("exit code = %d, want 9 (r0 at return)", c.ExitCode())
	}
}

// counterProgram is an LL/SC atomic-increment worker: r0 = iteration count.
const counterProgram = `
.org 0x10000
.entry worker
worker:
    ldr r4, =counter
loop:
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne loop
    subsi r0, r0, #1
    bne loop
    movi r0, #0
    svc #1
.align 1024
counter: .word 0
`

func TestConcurrentAtomicCounterAllSchemes(t *testing.T) {
	const threads = 4
	const iters = 1500
	for _, scheme := range []string{"pico-cas", "pico-st", "pico-htm", "hst", "hst-weak", "hst-htm", "pst", "pst-remap", "pst-mpk"} {
		t.Run(scheme, func(t *testing.T) {
			im := buildImage(t, counterProgram)
			m := newTestMachine(t, scheme, im)
			for i := 0; i < threads; i++ {
				if _, err := m.SpawnThread(im.Entry, iters); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			got, f := m.Mem().LoadWord(im.MustSymbol("counter"))
			if f != nil {
				t.Fatal(f)
			}
			if got != threads*iters {
				t.Fatalf("counter = %d, want %d — lost updates under %s", got, threads*iters, scheme)
			}
			agg := m.AggregateStats()
			if agg.SCs < threads*iters {
				t.Errorf("SC count %d below minimum %d", agg.SCs, threads*iters)
			}
			if m.VirtualTime() == 0 {
				t.Error("virtual time did not advance")
			}
		})
	}
}

func TestGuestSpawnJoin(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    ldr r5, =child
    mov r0, r5
    movi r1, #21
    svc #3          ; spawn(entry=r0, arg=r1) -> tid
    mov r6, r0
    mov r0, r6
    svc #4          ; join(tid)
    ldr r2, =cell
    ldr r0, [r2]
    svc #6          ; write the child's result
    svc #1
child:              ; r0 = 21
    add r0, r0, r0
    ldr r2, =cell
    str r0, [r2]
    movi r0, #0
    svc #1
.align 4
cell: .word 0
`)
	m := newTestMachine(t, "hst", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out := m.Output(); len(out) != 1 || out[0] != 42 {
		t.Fatalf("output = %v, want [42]", out)
	}
}

func TestGuestBarrier(t *testing.T) {
	// Two threads: both barrier_wait; each then writes. Values must both
	// appear (no one stuck).
	im := buildImage(t, `
.org 0x10000
.entry worker
worker:             ; r0 = my value
    mov r7, r0
    ldr r0, =barcell
    svc #10         ; barrier_wait
    mov r0, r7
    svc #6
    svc #1
.align 4
barcell: .word 0
`)
	m := newTestMachine(t, "pico-cas", im)
	m.sysBarrierInit(im.MustSymbol("barcell"), 2)
	if _, err := m.SpawnThread(im.Entry, 11); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnThread(im.Entry, 22); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := m.Output()
	if len(out) != 2 {
		t.Fatalf("output = %v", out)
	}
	if out[0]+out[1] != 33 {
		t.Fatalf("outputs = %v, want {11,22}", out)
	}
}

func TestGuestFutexMutex(t *testing.T) {
	// A futex-backed lock: LL/SC acquire with futex sleep, protecting a
	// non-atomic counter. 4 threads x 500 increments.
	im := buildImage(t, `
.org 0x10000
.entry worker
.equ ITERS, 500
worker:
    movw r6, #ITERS
outer:
    ; --- lock ---
acquire:
    ldr r4, =lockcell
    ldrex r1, [r4]
    cmpi r1, #0
    bne contended
    movi r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne acquire
    b locked
contended:
    clrex
    mov r0, r4
    movi r1, #1
    svc #7          ; futex_wait(lock, 1)
    b acquire
locked:
    ; --- critical section: non-atomic increment ---
    ldr r5, =countcell
    ldr r1, [r5]
    addi r1, r1, #1
    str r1, [r5]
    ; --- unlock ---
    movi r1, #0
    str r1, [r4]
    mov r0, r4
    movi r1, #1
    svc #8          ; futex_wake(lock, 1)
    subsi r6, r6, #1
    bne outer
    movi r0, #0
    svc #1
.align 4
lockcell: .word 0
countcell: .word 0
`)
	m := newTestMachine(t, "hst", im)
	const threads = 4
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(im.Entry); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Mem().LoadWord(im.MustSymbol("countcell"))
	if got != threads*500 {
		t.Fatalf("mutex-protected counter = %d, want %d", got, threads*500)
	}
}

func TestGuestFaultReported(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    ldr r0, =0x60000000  ; unmapped
    ldr r1, [r0]
    svc #1
`)
	m := newTestMachine(t, "pico-cas", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "fault") {
		t.Fatalf("expected guest fault, got %v", err)
	}
}

func TestRunawayGuestStopped(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    b main
`)
	cfg := DefaultConfig("pico-cas")
	cfg.MaxGuestInstrs = 10_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	err = m.Run()
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("expected runaway error, got %v", err)
	}
}

func TestExitGroupStopsEveryone(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    movi r0, #7
    svc #2          ; exit_group
spinner:
    b spinner
`)
	m := newTestMachine(t, "pico-cas", im)
	// A spinner thread that would never halt on its own.
	if _, err := m.SpawnThread(im.MustSymbol("spinner")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStepModeDeterministicInterleaving(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    ldr r4, =cell
    ldr r1, [r4]
    addi r1, r1, #1
    str r1, [r4]
    svc #1
.align 4
cell: .word 0
`)
	cfg := DefaultConfig("hst")
	cfg.StepMode = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	a, err := m.Start(im.Entry)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Start(im.Entry)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave a and b so both read 0 before either writes: the lost
	// update must happen deterministically (plain loads/stores race).
	steps := func(c *CPU, n int) {
		for i := 0; i < n; i++ {
			if _, err := c.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// ldr r4,= is movw+movt = 2 instrs; then ldr (1) = 3 instructions to
	// have loaded the cell value.
	steps(a, 3)
	steps(b, 3)
	for !a.Halted() {
		if _, err := a.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for !b.Halted() {
		if _, err := b.Step(); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := m.Mem().LoadWord(im.MustSymbol("cell"))
	if v != 1 {
		t.Fatalf("cell = %d, want exactly 1 (deterministic lost update)", v)
	}
}

func TestVirtualTimeScalesWithWork(t *testing.T) {
	run := func(iters uint32) uint64 {
		im := buildImage(t, counterProgram)
		m := newTestMachine(t, "pico-cas", im)
		if _, err := m.SpawnThread(im.Entry, iters); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.VirtualTime()
	}
	small, big := run(100), run(10_000)
	if big < small*20 {
		t.Errorf("virtual time not proportional to work: %d vs %d", small, big)
	}
}

func TestExclusiveWithSleepersNoDeadlock(t *testing.T) {
	// One thread blocks on a futex that is never woken by guest code; the
	// other performs HST SCs (stop-the-world) and then exits the group.
	// The machine must not deadlock.
	im := buildImage(t, `
.org 0x10000
.entry sleeper
sleeper:
    ldr r0, =cell2
    movi r1, #0
    svc #7             ; futex_wait(cell2, 0) — sleeps
    svc #1
worker:
    movi r6, #100
loop:
    ldr r4, =cell
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne loop
    subsi r6, r6, #1
    bne loop
    movi r0, #0
    svc #2             ; exit_group wakes the sleeper
.align 4
cell: .word 0
cell2: .word 0
`)
	m := newTestMachine(t, "hst", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnThread(im.MustSymbol("worker")); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Mem().LoadWord(im.MustSymbol("cell"))
	if v != 100 {
		t.Fatalf("cell = %d", v)
	}
	agg := m.AggregateStats()
	if agg.ExclSections < 100 {
		t.Errorf("HST should have run %d exclusive sections, saw %d", 100, agg.ExclSections)
	}
}

func TestMmapSyscall(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    movw r0, #8192
    svc #11            ; mmap
    cmpi r0, #0
    beq fail
    movi r1, #123
    str r1, [r0, #16]
    ldr r2, [r0, #16]
    mov r0, r2
    svc #6
    svc #1
fail:
    movi r0, #1
    svc #6
    svc #1
`)
	m := newTestMachine(t, "pico-cas", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out := m.Output(); len(out) != 1 || out[0] != 123 {
		t.Fatalf("output = %v, want [123]", out)
	}
}

func TestStackIsolationGuardPage(t *testing.T) {
	// Deliberately overrun the stack: the guard page faults.
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    mov r1, sp
    movw r2, #0x4000   ; well past the 64 KiB stack plus guard
    sub r1, r1, r2
    sub r1, r1, r2
    sub r1, r1, r2
    sub r1, r1, r2
    sub r1, r1, r2
    movi r0, #1
    str r0, [r1]
    svc #1
`)
	m := newTestMachine(t, "pico-cas", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err == nil {
		t.Fatal("stack overrun should fault")
	}
}

func TestPSTSchemeProtectsAndRestores(t *testing.T) {
	im := buildImage(t, counterProgram)
	m := newTestMachine(t, "pst", im)
	if _, err := m.SpawnThread(im.Entry, 50); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	counter := im.MustSymbol("counter")
	v, _ := m.Mem().LoadWord(counter)
	if v != 50 {
		t.Fatalf("counter = %d", v)
	}
	// Protection must be fully restored after the run.
	if p := m.Mem().PermAt(counter); p&mmu.PermWrite == 0 {
		t.Errorf("page left protected: %v", p)
	}
}

func TestConfigUnknownScheme(t *testing.T) {
	if _, err := NewMachine(DefaultConfig("nope")); err == nil {
		t.Fatal("unknown scheme must fail")
	}
}

func TestRegAccessors(t *testing.T) {
	cfg := DefaultConfig("pico-cas")
	cfg.StepMode = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	im := buildImage(t, ".org 0x10000\n.entry main\nmain:\n movi r3, #77\n svc #1\n")
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	c, err := m.Start(im.Entry, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if c.Reg(arch.R0) != 5 || c.Reg(arch.R1) != 6 {
		t.Fatalf("start args not delivered: r0=%d r1=%d", c.Reg(arch.R0), c.Reg(arch.R1))
	}
	if c.Reg(arch.SP) == 0 {
		t.Error("sp not initialized")
	}
	for {
		more, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	if c.Reg(arch.R3) != 77 {
		t.Fatalf("r3 = %d", c.Reg(arch.R3))
	}
	if c.PC() == 0 || !c.Halted() {
		t.Error("halt state wrong")
	}
}
