package engine

import (
	"fmt"

	"atomemu/internal/checkpoint"
	"atomemu/internal/core"
	"atomemu/internal/mmu"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// This file is the engine half of crash-consistent checkpointing: cadence
// tracking and capture (maybeCheckpoint/capture) and rollback (restore,
// with optional demotion to the portable HST scheme).

// maybeCheckpoint captures a consistent cut when this vCPU's clock crosses
// the next cadence point. The fast path is two atomic loads; exactly one
// vCPU wins the CAS per cadence point and pays the (quiet) stop-the-world.
// Caller has already checked CheckpointEvery > 0.
func (m *Machine) maybeCheckpoint(c *CPU) {
	next := m.nextCkptVT.Load()
	clk := c.clock.Load()
	if clk < next || m.stopped.Load() {
		return
	}
	every := m.cfg.CheckpointEvery
	target := next + every
	for target <= clk {
		target += every
	}
	if !m.nextCkptVT.CompareAndSwap(next, target) {
		return
	}
	m.excl.startExclusiveQuiet(c)
	var snap *checkpoint.Snapshot
	if !m.stopped.Load() {
		snap = m.capture(c)
	}
	m.excl.endExclusiveQuiet(c)
	// The durability sink runs after the quiet window is over: spilling a
	// snapshot to disk must never extend the stop-the-world, and the
	// snapshot is immutable once captured, so the sink (and whatever
	// writer goroutine it hands off to) can read it race-free while the
	// machine runs on. Uncharged, like the capture itself.
	if snap != nil && m.cfg.CheckpointSink != nil {
		m.cfg.CheckpointSink(snap)
	}
}

// capture records the machine's state as the newest snapshot. The caller
// holds a (quiet) exclusive section: every other vCPU is parked between
// blocks or blocked in a guest syscall, so all the state read here is a
// consistent cut (their marker and register writes happened-before our
// exclusive acquisition).
//
// The capture cost is charged to the checkpoint stats component only, never
// to the capturing vCPU's clock — checkpointing must not perturb the
// virtual-time model, so a run with it enabled stays cycle-identical to one
// without.
func (m *Machine) capture(c *CPU) *checkpoint.Snapshot {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	var prev *mmu.Snapshot
	if m.lastCkpt != nil {
		prev = m.lastCkpt.Mem
	}
	snap := &checkpoint.Snapshot{
		Mem:    m.mem.SnapshotPages(prev),
		Scheme: m.scheme.Snapshot(),
	}
	m.parkMu.Lock()
	for _, cc := range m.CPUs() {
		v := checkpoint.VCPU{
			TID:      cc.tid,
			PC:       cc.pc,
			Slots:    append([]uint32(nil), cc.slots...),
			Flags:    cc.flags,
			Clock:    cc.clock.Load(),
			Stats:    cc.st,
			Halted:   cc.haltedFlag.Load(),
			ExitCode: cc.exitCode,
		}
		if cc.blocked.active {
			v.Blocked = checkpoint.Blocked{
				Active:  true,
				Syscall: cc.blocked.syscall,
				Kind:    cc.blocked.kind,
				Addr:    cc.blocked.addr,
			}
		}
		snap.CPUs = append(snap.CPUs, v)
	}
	m.parkMu.Unlock()
	m.barMu.Lock()
	for addr, b := range m.barriers {
		snap.Barriers = append(snap.Barriers, checkpoint.Barrier{Addr: addr, Total: b.total})
	}
	m.barMu.Unlock()
	m.outMu.Lock()
	snap.Output = append([]uint32(nil), m.output...)
	m.outMu.Unlock()
	m.heapMu.Lock()
	snap.HeapNext = m.heapNext
	m.heapMu.Unlock()
	m.cpuMu.Lock()
	snap.NextTID = m.nextTID
	m.cpuMu.Unlock()
	snap.VirtualTime = m.VirtualTime()

	m.lastCkpt = snap
	m.checkpoints.Add(1)
	m.ckptPages.Add(uint64(snap.Mem.Copied))
	c.ring.Emit(obs.EvCheckpoint, 0, uint64(snap.Mem.Copied))
	c.st.Charge(stats.CompCheckpoint,
		m.cfg.Cost.CheckpointBase+uint64(snap.Mem.Copied)*m.cfg.Cost.CheckpointPage)
	return snap
}

// restore rolls the machine back to snap and relaunches its vCPUs. Called
// only from the recovery loop after every vCPU goroutine has exited, so it
// owns the machine outright. When demote is set the emulation scheme is
// replaced by portable HST (fresh state) instead of restoring the failed
// scheme's snapshot payload.
//
// The restore deliberately re-derives rather than deserializes two things:
// exclusive monitors are disarmed (the first SC after resumption may fail
// spuriously, which LL/SC guests tolerate), and futex/barrier waiter queues
// come back empty — each vCPU that was blocked at the cut re-executes its
// syscall on resumption and re-joins the rebuilt queue.
func (m *Machine) restore(snap *checkpoint.Snapshot, demote bool) error {
	// Owning the machine does not exclude host-side status pollers: a live
	// AggregateStats read stops the (empty) world via exclHolder, so holding
	// it across the rewrite of per-vCPU state keeps those reads race-free.
	m.excl.exclHolder.Lock()
	defer m.excl.exclHolder.Unlock()
	m.cpuMu.Lock()
	all := append([]*CPU(nil), m.cpus...)
	m.cpuMu.Unlock()
	byTID := make(map[uint32]*CPU, len(all))
	for _, c := range all {
		byTID[c.tid] = c
	}
	// Disarm every monitor first (including those of vCPUs spawned after
	// the cut, which are about to be dropped), releasing any TM store
	// watchers they hold so NotifyStore doesn't stay live forever.
	for _, c := range all {
		if c.mon.Res.Watcher && m.tm != nil {
			m.tm.RemoveStoreWatcher()
		}
		c.mon = core.Monitor{}
	}
	if demote {
		if err := m.demoteScheme(); err != nil {
			return err
		}
	}
	if f := m.mem.Restore(snap.Mem); f != nil {
		return fmt.Errorf("engine: restoring guest memory: %w", f)
	}
	if !demote {
		m.scheme.Restore(m.mem, snap.Scheme)
	}

	kept := make([]*CPU, 0, len(snap.CPUs))
	var running int32
	for i := range snap.CPUs {
		cs := &snap.CPUs[i]
		c := byTID[cs.TID]
		if c == nil {
			return fmt.Errorf("engine: checkpoint vCPU %d no longer exists", cs.TID)
		}
		c.slots = append(c.slots[:0], cs.Slots...)
		c.flags = cs.Flags
		c.pc = cs.PC
		c.clock.Store(cs.Clock)
		c.st = cs.Stats
		c.halted = cs.Halted
		c.haltedFlag.Store(cs.Halted)
		c.exitCode = cs.ExitCode
		c.err = nil
		c.blocked = blockedMark{
			active:  cs.Blocked.Active,
			syscall: cs.Blocked.Syscall,
			kind:    cs.Blocked.Kind,
			addr:    cs.Blocked.Addr,
		}
		c.joinParked = 0
		// Re-seed the watchdog from the restored counters so pre-rollback
		// failures aren't double counted against the restored run.
		c.wdSucc = cs.Stats.SCs - cs.Stats.SCFails
		c.wdFails = cs.Stats.SCFails
		c.wdStalled = 0
		c.lastExclSeen = m.exclSections.Load()
		c.preemptLeft = 0
		// Always drop the vCPU-private TB tier: after a demotion it holds
		// blocks instrumented for the wrong scheme, and after any rollback
		// its chain links describe control flow the restored run may never
		// re-validate. Resume re-looks-up and re-links from the shared
		// cache.
		c.localTBs = make(map[uint32]*localTB)
		c.done = make(chan struct{})
		if cs.Halted {
			close(c.done)
		} else {
			running++
		}
		kept = append(kept, c)
	}

	m.cpuMu.Lock()
	m.cpus = kept
	m.nextTID = snap.NextTID
	m.cpuMu.Unlock()
	m.outMu.Lock()
	m.output = append(m.output[:0], snap.Output...)
	m.outMu.Unlock()
	m.heapMu.Lock()
	m.heapNext = snap.HeapNext
	m.heapMu.Unlock()
	m.futexMu.Lock()
	m.futexes = make(map[uint32]*futexQueue)
	m.futexMu.Unlock()
	m.barMu.Lock()
	m.barriers = make(map[uint32]*guestBarrier, len(snap.Barriers))
	for _, b := range snap.Barriers {
		m.barriers[b.Addr] = &guestBarrier{total: b.Total, gen: &barrierGen{ch: make(chan struct{})}}
	}
	m.barMu.Unlock()
	m.parkMu.Lock()
	m.parked = 0
	m.parkMu.Unlock()
	m.runningCPUs.Store(running)
	if every := m.cfg.CheckpointEvery; every > 0 {
		m.nextCkptVT.Store(snap.VirtualTime + every)
	}
	m.errMu.Lock()
	m.firstErr = nil
	m.stopCh = make(chan struct{})
	m.stopChClosed = false
	m.errMu.Unlock()
	m.stopped.Store(false)
	m.hostRing.EmitAt(snap.VirtualTime, obs.EvRestore, 0, m.recoveryRestores.Load())

	for _, c := range kept {
		if c.haltedFlag.Load() {
			continue
		}
		cc := c
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			cc.run()
		}()
	}
	return nil
}

// demoteScheme swaps the active scheme for portable HST with fresh state.
// When the translation options change it drops the machine-cache blocks
// whose translation actually depended on the changed options — a block
// with no plain stores translates identically either way, so it survives
// (tbCache.retain; resetting everything re-paid translation for every
// pure-compute block). The cross-job view re-keys to the demoted universe.
// Restore unconditionally drops the per-vCPU local caches (stale blocks
// and chain links) either way.
func (m *Machine) demoteScheme() error {
	tab, err := core.NewHashTable(m.cfg.HashBits)
	if err != nil {
		return err
	}
	tab.SpinBudget = m.cfg.HashSpinBudget
	tab.SetInjector(m.cfg.FaultInjector)
	res := m.cfg.resilience()
	deps := core.Deps{Cost: &m.cfg.Cost, Res: &res, Htab: tab}
	sch, err := core.New("hst", deps)
	if err != nil {
		return err
	}
	m.scheme = sch
	m.storeNotifier, _ = sch.(core.StoreNotifier)
	old := m.topts
	m.topts.InstrumentStores = sch.InstrumentsStores()
	m.topts.InstrumentLoads = sch.InstrumentsLoads()
	if m.topts != old {
		m.tbs.retain(func(tb *TB) *TB {
			if !tb.compatibleAfter(old.InstrumentStores, m.topts.InstrumentStores,
				old.InstrumentLoads, m.topts.InstrumentLoads) {
				return nil
			}
			// A dec-only TB is still promotable: re-wrap it so a future
			// promotion CASes post-demotion IR onto a fresh object, never
			// onto one resident in the pre-demotion shared-store segment.
			if tb.ir.Load() == nil && tb.dec != nil {
				return newDecTB(tb.dec)
			}
			return tb
		})
		m.rekeySharedTB()
	}
	return nil
}
