package engine

import (
	"sync"
	"sync/atomic"
)

// tbCache is the machine-wide shared translation-block cache.
//
// It is the engine's answer to the contention the paper measures on QEMU's
// shared emulator state (§III): with a single mutex around the TB map,
// every shared-cache miss serializes all vCPUs behind the translator, and
// even hits pay a lock handoff. Here the cache is split into power-of-two
// shards, each holding an atomic pointer to an immutable map snapshot:
//
//   - Hits are one atomic load plus one read of an immutable map — no
//     locks, no stores, so concurrent lookups never contend.
//   - Misses translate OUTSIDE any critical section; only publishing the
//     finished block takes the shard's writer mutex, which copies the
//     snapshot, adds the entry, and swaps the pointer (copy-on-write).
//     Misses on different PCs therefore translate in parallel.
//   - Racing misses on the SAME pc both translate, but the first publisher
//     wins: insert re-checks under the shard lock and the loser adopts the
//     winner's *TB, so a given pc always resolves to one canonical block.
//
// Copy-on-write is the right trade here because the working set is
// append-only and small (TBs are never invalidated — see the package
// comment on self-modifying code) while lookups run once per executed
// block on every vCPU.
const (
	tbShardBits = 6
	tbShardNum  = 1 << tbShardBits
)

type tbMap = map[uint32]*TB

type tbShard struct {
	snap atomic.Pointer[tbMap] // immutable; replaced wholesale on insert
	mu   sync.Mutex            // serializes writers only; readers never take it
	// pad spaces shards a cache line apart so snapshot swaps on one shard
	// don't false-share with hot lookups on a neighbour.
	_ [40]byte
}

type tbCache struct {
	shards [tbShardNum]tbShard
}

// shard hashes a block-start pc to its shard. Fibonacci hashing on the word
// address spreads the arithmetic progressions typical of block starts.
func (c *tbCache) shard(pc uint32) *tbShard {
	return &c.shards[(pc>>2)*2654435761>>(32-tbShardBits)]
}

// get returns the block cached for pc, or nil. Lock-free: one atomic load.
func (c *tbCache) get(pc uint32) *TB {
	if m := c.shard(pc).snap.Load(); m != nil {
		return (*m)[pc]
	}
	return nil
}

// insert publishes tb for pc and returns the canonical block: tb itself if
// this call won, or the already-published block if another vCPU raced us
// here first (won=false; the caller's translation is discarded).
func (c *tbCache) insert(pc uint32, tb *TB) (canonical *TB, won bool) {
	s := c.shard(pc)
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.snap.Load()
	if old != nil {
		if existing := (*old)[pc]; existing != nil {
			return existing, false
		}
	}
	next := make(tbMap, lenOrZero(old)+1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[pc] = tb
	s.snap.Store(&next)
	return tb, true
}

// reset drops every cached block. Needed when scheme demotion changes the
// translation options: blocks translated without store instrumentation are
// wrong for a scheme that requires it. Callers must also clear per-vCPU
// local caches.
func (c *tbCache) reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.snap.Store(nil)
		s.mu.Unlock()
	}
}

// retain rebuilds every shard through the mapping function — scheme
// demotion's surgical alternative to reset: translations that are
// invariant under the instrumentation change survive (possibly re-wrapped
// in a fresh *TB), so vCPUs do not re-pay decode+translate+optimize for
// pure-compute blocks. A nil return drops the block. Callers must still
// clear per-vCPU local caches.
func (c *tbCache) retain(keep func(*TB) *TB) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if old := s.snap.Load(); old != nil {
			next := make(tbMap, len(*old))
			for pc, tb := range *old {
				if kept := keep(tb); kept != nil {
					next[pc] = kept
				}
			}
			if len(next) == 0 {
				s.snap.Store(nil)
			} else {
				s.snap.Store(&next)
			}
		}
		s.mu.Unlock()
	}
}

// len counts cached blocks across all shards (tests and stats reporting).
func (c *tbCache) len() int {
	n := 0
	for i := range c.shards {
		if m := c.shards[i].snap.Load(); m != nil {
			n += len(*m)
		}
	}
	return n
}

func lenOrZero(m *tbMap) int {
	if m == nil {
		return 0
	}
	return len(*m)
}
