package engine

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"

	"atomemu/internal/arch"
	"atomemu/internal/core"
	"atomemu/internal/htm"
	"atomemu/internal/ir"
	"atomemu/internal/mmu"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// CPU is one guest vCPU, executed by one goroutine (or single-stepped by
// the litmus harness in step mode). It implements core.Context.
type CPU struct {
	m   *Machine
	tid uint32

	// slots holds the unified IR register space: [0:16] are the guest
	// registers, the rest block-local temporaries.
	slots []uint32
	flags arch.Flags
	pc    uint32

	mon core.Monitor
	st  stats.CPU

	// ring is this vCPU's event-trace ring; nil (one dead nil check per
	// emit site) unless Config.TraceEvents.
	ring *obs.Ring

	// clock is this vCPU's virtual time; read by other vCPUs during
	// exclusive sections and sync reconciliation.
	clock atomic.Uint64

	// localTBs is the vCPU-private level of the two-level TB cache: plain
	// map, no synchronization, absorbs every repeat lookup so the shared
	// lock-free cache (Machine.tbs, tbcache.go) is only consulted once per
	// (vCPU, pc). Each entry also carries this vCPU's chain links and
	// interp-tier promotion counter (tier.go).
	localTBs map[uint32]*localTB

	// yieldRng drives randomized host-yield spacing so deschedule points
	// sweep across all guest loop phases (a fixed cadence phase-locks with
	// fixed-length guest loops and hides interleaving bugs like ABA).
	yieldRng uint32
	// lastExclSeen is the machine exclusive-section count this vCPU has
	// already paid witness stalls for.
	lastExclSeen uint64
	// preemptLeft counts down guest memory operations to the next
	// mid-block preemption point. Real hardware interleaves threads at
	// instruction granularity; without this, a translation block is a
	// de-facto critical section and races that need a deschedule inside a
	// block (the ABA window between a pop's next-load and its SC) never
	// fire.
	preemptLeft int

	// Progress-watchdog state (instruction-count based, no timers): the
	// run loop samples the SC counters every watchdogEvery blocks and
	// accumulates failures seen since the last success. lastSCAddr is the
	// most recent SC target, for the trip diagnostic.
	wdSucc     uint64
	wdFails    uint64
	wdStalled  uint64
	lastSCAddr uint32
	// stepWd counts Step calls toward the next step-mode watchdog sample
	// (the goroutine run loop keeps its own block-cadence counter).
	stepWd int

	// blocked and joinParked belong to the guest-deadlock detector and the
	// checkpoint layer; both are guarded by Machine.parkMu. blocked marks
	// this vCPU as parked in a blocking syscall (and tells a checkpoint
	// restore to re-execute it); joinParked counts vCPUs currently joined on
	// this one, settled by finish.
	blocked    blockedMark
	joinParked int

	halted     bool
	haltedFlag atomic.Bool
	exitCode   uint32
	err        error
	done       chan struct{} // closed when the vCPU stops

}

func newCPU(m *Machine, tid uint32) *CPU {
	c := &CPU{
		m:        m,
		tid:      tid,
		slots:    make([]uint32, 64),
		localTBs: make(map[uint32]*localTB),
		yieldRng: tid*2654435761 + 1,
	}
	c.ring = m.newTraceRing(tid, &c.clock)
	return c
}

// --- core.Context ---

// TID returns the vCPU's thread id (1-based).
func (c *CPU) TID() uint32 { return c.tid }

// Mem returns the guest address space.
func (c *CPU) Mem() *mmu.Memory { return c.m.mem }

// Monitor returns the exclusive-monitor state.
func (c *CPU) Monitor() *core.Monitor { return &c.mon }

// StartExclusive stops the world (QEMU start_exclusive).
func (c *CPU) StartExclusive() {
	c.m.excl.startExclusive(c)
	c.ring.Emit(obs.EvExclEnter, 0, 0)
}

// EndExclusive resumes the world.
func (c *CPU) EndExclusive() {
	c.ring.Emit(obs.EvExclExit, 0, 0)
	c.m.excl.endExclusive(c)
}

// ChargeExclusive accounts a stop-the-world's cost without stopping
// (PST-family schemes serialize with page locks instead).
func (c *CPU) ChargeExclusive() { c.m.chargeExclusiveEntry(c) }

// Stats returns this vCPU's counters.
func (c *CPU) Stats() *stats.CPU { return &c.st }

// Charge adds virtual cycles to a component and advances the clock.
func (c *CPU) charge(comp stats.Component, cycles uint64) {
	c.st.Charge(comp, cycles)
	c.clock.Add(cycles)
}

// Charge implements core.Context.
func (c *CPU) Charge(comp stats.Component, cycles uint64) { c.charge(comp, cycles) }

// TM returns the machine's transactional memory (nil without HTM).
func (c *CPU) TM() *htm.TM { return c.m.tm }

// liftClockTo raises the clock to at least t; when chargeExcl is set the
// jump is accounted as exclusive (stop-the-world suspension) time.
func (c *CPU) liftClockTo(t uint64, chargeExcl bool) {
	cur := c.clock.Load()
	if t <= cur {
		return
	}
	if chargeExcl {
		c.st.Charge(stats.CompExclusive, t-cur)
	}
	lift(&c.clock, t)
}

// --- execution ---

// PC returns the current guest program counter.
func (c *CPU) PC() uint32 { return c.pc }

// Reg returns a guest register value.
func (c *CPU) Reg(r arch.Reg) uint32 { return c.slots[r] }

// SetReg sets a guest register value (test/litmus setup).
func (c *CPU) SetReg(r arch.Reg, v uint32) { c.slots[r] = v }

// Flags returns the guest condition flags.
func (c *CPU) Flags() arch.Flags { return c.flags }

// Halted reports whether the vCPU has stopped.
func (c *CPU) Halted() bool { return c.haltedFlag.Load() }

// ExitCode returns the value passed to the exit syscall.
func (c *CPU) ExitCode() uint32 { return c.exitCode }

// Err returns the vCPU's fatal error, if any.
func (c *CPU) Err() error { return c.err }

// Clock returns the vCPU's virtual time.
func (c *CPU) Clock() uint64 { return c.clock.Load() }

// VStats returns a copy of the vCPU's counters.
func (c *CPU) VStats() stats.CPU { return c.st }

// fail records a fatal vCPU error and stops the machine.
func (c *CPU) fail(err error) {
	if c.err == nil {
		c.err = err
	}
	c.halted = true
	c.m.stop(err)
}

// RunningCPUs implements core.Context.
func (c *CPU) RunningCPUs() int { return int(c.m.runningCPUs.Load()) }

// Tracer implements core.Context: the vCPU's event ring, nil when tracing
// is off (obs.Ring methods are nil-safe).
func (c *CPU) Tracer() *obs.Ring { return c.ring }

// finish marks the vCPU stopped and releases joiners. Halting, settling the
// join park counts (closing done is the wake this vCPU owes its joiners)
// and re-checking for deadlock happen under one parkMu hold, so the
// detector never sees a half-finished vCPU.
func (c *CPU) finish() {
	m := c.m
	m.parkMu.Lock()
	if !c.haltedFlag.Load() {
		m.runningCPUs.Add(-1)
	}
	c.haltedFlag.Store(true)
	jp := c.joinParked
	m.parked -= jp
	c.joinParked = 0
	// This exit may strand the remaining vCPUs: with one fewer runner,
	// "every live vCPU is parked" may hold now.
	derr := m.deadlockedLocked()
	m.parkMu.Unlock()
	if derr != nil {
		m.stop(derr)
	}
	// Closing done below is the wake this vCPU owes its joiners; tell the
	// external scheduler (when there is one) before delivering it, same as
	// noteWake.
	if jp > 0 {
		if h := m.cfg.SchedHook; h != nil {
			h.Woken(jp)
		}
	}
	if c.mon.Txn != nil && !c.mon.Txn.Done() {
		c.mon.Txn.AbortNow(htm.ReasonSyscall)
	}
	if c.done != nil {
		close(c.done)
	}
}

// watchdogEvery is how many blocks run between progress-watchdog samples.
const watchdogEvery = 1024

// watchdogCheck trips the machine when this vCPU has accumulated
// WatchdogSCFails SC failures without a single success — an SC-failure
// storm (a stuck monitor, a wedged lock holder, a scheme bug) that would
// otherwise spin forever. Purely instruction-count based: no timers, so
// paused or slow runs never trip spuriously.
func (c *CPU) watchdogCheck() {
	limit := c.m.cfg.WatchdogSCFails
	if limit <= 0 {
		return
	}
	succ := c.st.SCs - c.st.SCFails
	if succ != c.wdSucc {
		c.wdSucc = succ
		c.wdFails = c.st.SCFails
		c.wdStalled = 0
		return
	}
	c.wdStalled += c.st.SCFails - c.wdFails
	c.wdFails = c.st.SCFails
	if c.wdStalled <= uint64(limit) {
		return
	}
	c.st.WatchdogTrips++
	c.ring.Emit(obs.EvWatchdogTrip, c.lastSCAddr, c.wdStalled)
	werr := &core.WatchdogError{
		Scheme:      c.m.scheme.Name(),
		TID:         c.tid,
		Addr:        c.lastSCAddr,
		Kind:        "sc-failure storm",
		Fails:       c.wdStalled,
		AbortStreak: c.mon.AbortStreak,
	}
	if ho, ok := c.m.scheme.(core.HashOwnerReporter); ok {
		werr.HashOwner, werr.HasOwner = ho.HashOwner(c.lastSCAddr)
	}
	c.fail(werr)
}

// run is the vCPU main loop (QEMU's cpu_exec).
func (c *CPU) run() {
	e := c.m.excl
	e.execStart(c)
	defer func() {
		c.finish()
		e.execEnd(c)
	}()
	// Contain panics: one bad block must stop the machine with a
	// diagnostic, not kill the host process. Registered after the defer
	// above so it recovers first; finish/execEnd then still run.
	defer func() {
		if r := recover(); r != nil {
			c.fail(&PanicError{TID: c.tid, PC: c.pc, Scheme: c.m.scheme.Name(), Value: r})
		}
	}()
	// A vCPU relaunched from a checkpoint with a blocked marker was parked
	// in a blocking syscall at the cut: its registers still hold the
	// arguments and pc the continuation, so re-execute the syscall before
	// resuming block execution.
	if c.blocked.active {
		c.resumeBlocked()
	}
	deadline := c.m.cfg.VirtualDeadline
	ckptEvery := c.m.cfg.CheckpointEvery
	// Both cadences count executed blocks, not loop iterations: one
	// stepOnce may run a whole chain, and the watchdog/yield spacing must
	// not stretch with the chain budget.
	yieldLeft := c.yieldGap()
	wdLeft := watchdogEvery
	for !c.halted {
		if c.m.stopped.Load() {
			break
		}
		e.checkpoint(c)
		c.witnessStalls()
		blocks := c.stepOnce()
		if deadline > 0 && c.clock.Load() > deadline {
			c.m.stop(&DeadlineError{TID: c.tid, Deadline: deadline, Clock: c.clock.Load()})
			break
		}
		if ckptEvery > 0 {
			c.m.maybeCheckpoint(c)
		}
		if wdLeft -= blocks; wdLeft <= 0 {
			c.watchdogCheck()
			wdLeft = watchdogEvery
		}
		if yieldLeft -= blocks; yieldLeft <= 0 {
			// On a single-core host, spinning guests starve lock holders
			// without this; the randomized gap sweeps the deschedule point
			// across guest loop phases.
			runtime.Gosched()
			yieldLeft = c.yieldGap()
		}
	}
}

// resumeBlocked re-executes the blocking syscall recorded in this vCPU's
// checkpoint marker (set by a restore). The dispatch rewrites r0 with the
// syscall result exactly as the original execution would have.
func (c *CPU) resumeBlocked() {
	c.m.parkMu.Lock()
	mark := c.blocked
	c.blocked = blockedMark{}
	c.m.parkMu.Unlock()
	if mark.active {
		c.m.syscall(c, mark.syscall)
	}
}

// maybePreempt yields the host thread at randomized guest memory-op
// intervals, modelling instruction-granular preemption of translated code.
func (c *CPU) maybePreempt() {
	c.preemptLeft--
	if c.preemptLeft > 0 {
		return
	}
	mean := c.m.cfg.PreemptMemOps
	if mean <= 0 {
		c.preemptLeft = 1 << 30
		return
	}
	r := c.yieldRng
	r ^= r << 13
	r ^= r >> 17
	r ^= r << 5
	c.yieldRng = r
	c.preemptLeft = 1 + int(r%uint32(2*mean))
	if !c.m.cfg.StepMode {
		runtime.Gosched()
	}
}

// witnessStalls charges this vCPU for stop-the-world sections other vCPUs
// ran since it last checked: the suspended-thread half of the exclusive
// cost model.
func (c *CPU) witnessStalls() {
	sec := c.m.exclSections.Load()
	if sec == c.lastExclSeen {
		return
	}
	delta := sec - c.lastExclSeen
	c.lastExclSeen = sec
	c.charge(stats.CompExclusive, delta*c.m.cfg.Cost.ExclusiveStall)
}

// yieldGap returns the next randomized host-yield distance in blocks,
// centred on the configured quantum.
func (c *CPU) yieldGap() int {
	r := c.yieldRng
	r ^= r << 13
	r ^= r >> 17
	r ^= r << 5
	c.yieldRng = r
	q := c.m.cfg.QuantumTBs
	if q <= 1 {
		q = 32
	}
	return 1 + int(r%uint32(2*q))
}

// Step executes one translation block in step mode (one guest instruction,
// since step mode caps blocks at 1). It returns false once the vCPU halted.
//
// The loop-level services that the goroutine run loop provides — the
// progress watchdog and the virtual deadline — run here too, at the same
// block cadence, so a step-mode SC-failure storm (a stuck hash lock, an
// injected abort schedule) trips the watchdog instead of spinning the
// caller forever.
func (c *CPU) Step() (bool, error) {
	if c.halted {
		return false, c.err
	}
	e := c.m.excl
	e.execStart(c)
	c.witnessStalls()
	c.stepOnce()
	e.execEnd(c)
	if !c.halted {
		if dl := c.m.cfg.VirtualDeadline; dl > 0 && c.clock.Load() > dl {
			c.m.stop(&DeadlineError{TID: c.tid, Deadline: dl, Clock: c.clock.Load()})
		}
		if c.stepWd++; c.stepWd >= watchdogEvery {
			c.stepWd = 0
			c.watchdogCheck()
		}
	}
	if c.halted {
		c.finish()
	}
	return !c.halted, c.err
}

// stepOnce resolves and executes the block at pc, then — when chaining is
// enabled — follows direct successor links for further blocks before
// returning to the dispatch loop, up to Machine.chainBudget blocks in
// total. Exclusive-protocol polling and witness stalls run at every chain
// boundary, so stop-the-world requests and checkpoint cuts never wait on a
// chain; the loop-level services (deadline, checkpoint cadence, watchdog,
// yield) catch up when stepOnce returns, which is why it reports how many
// blocks it ran. A followed link skips both the cache lookup and its
// TBLookup charge — the modeled saving of direct chaining.
func (c *CPU) stepOnce() int {
	blocks := 0
	var prev *localTB
	var outcome exitOutcome
	for {
		if max := c.m.cfg.MaxGuestInstrs; max > 0 && c.st.GuestInstrs >= max {
			c.fail(fmt.Errorf("engine: tid %d exceeded %d guest instructions at pc %#08x",
				c.tid, max, c.pc))
			return blocks
		}
		if c.m.tm != nil {
			// Emulator-interference model (paper §III-B, ref 18): a transaction
			// still open at a block boundary has emulation work — TB lookups,
			// chaining updates, shared profiling state — inside it; with more
			// threads that shared state churns faster. Abort with probability
			// min(0.95, ((threads-1)/HTMInterference)²). SC-only transactions
			// (HST-HTM) never reach here and are immune, the paper's point.
			if txn := c.mon.Txn; txn != nil && !txn.Done() {
				denom := c.m.cfg.HTMInterference
				if denom <= 0 {
					denom = 16
				}
				n := uint64(c.m.runningCPUs.Load())
				if n > 1 {
					ratio := (n - 1) * 65536 / uint64(denom)
					p := ratio * ratio / 65536
					if p > 62259 { // 0.95 in 16-bit fixed point
						p = 62259
					}
					r := c.yieldRng
					r ^= r << 13
					r ^= r >> 17
					r ^= r << 5
					c.yieldRng = r
					if uint64(r>>16) < p {
						txn.AbortNow(htm.ReasonEmulation)
						c.st.HTMAborts++
						c.ring.Emit(obs.EvHTMAbort, c.pc, uint64(htm.ReasonEmulation))
						c.charge(stats.CompHTM, c.m.cfg.Cost.HTMAbort)
					}
				}
			}
		}
		if w := c.m.cfg.TraceWriter; w != nil {
			c.trace(w)
		}
		// Resolve the next block: follow the chain link when one exists,
		// otherwise look it up and install the link for next time.
		var lt *localTB
		if prev != nil {
			lt = prev.link(outcome)
		}
		if lt == nil {
			var err error
			lt, err = c.m.localFor(c, c.pc)
			if err != nil {
				c.fail(fmt.Errorf("engine: tid %d: %w", c.tid, err))
				return blocks
			}
			if prev != nil {
				prev.setLink(outcome, lt)
				c.st.ChainLinks++
				c.ring.Emit(obs.EvChainLink, prev.start, uint64(lt.start))
			}
		} else {
			c.st.ChainFollows++
		}
		outcome = c.exec(lt)
		blocks++
		if outcome == exitNone || c.halted || blocks >= c.m.chainBudget || c.m.stopped.Load() {
			return blocks
		}
		prev = lt
		// Chain boundary: the same gates the dispatch loop runs before a
		// block — park for pending exclusive sections, pay witnessed stalls.
		c.m.excl.checkpoint(c)
		c.witnessStalls()
	}
}

// trace logs the instruction about to execute (TraceWriter mode).
func (c *CPU) trace(w io.Writer) {
	word, f := c.m.mem.FetchWord(c.pc)
	if f != nil {
		return // the fault will be reported by execution
	}
	text := fmt.Sprintf(".word %#08x", word)
	if in, err := arch.Decode(word); err == nil {
		text = in.String()
	}
	c.m.outMu.Lock()
	defer c.m.outMu.Unlock() // a panicking writer must not wedge outMu
	fmt.Fprintf(w, "T%d %08x: %-24s r0=%08x r1=%08x sp=%08x\n",
		c.tid, c.pc, text, c.slots[0], c.slots[1], c.slots[13])
}

// execBlock interprets one IR block and reports how it exited, for
// chaining: direct exits (ExitJmp, either ExitCond edge) have statically
// known targets and may be linked; everything else returns exitNone.
func (c *CPU) execBlock(b *ir.Block) exitOutcome {
	if len(c.slots) < b.NumSlots {
		grown := make([]uint32, b.NumSlots+16)
		copy(grown, c.slots)
		c.slots = grown
	}
	s := c.slots
	mem := c.m.mem
	scheme := c.m.scheme
	cost := &c.m.cfg.Cost
	tm := c.m.tm
	var native uint64

	defer func() {
		c.st.IROps += uint64(len(b.Ops))
		c.st.GuestInstrs += uint64(b.GuestLen)
		c.charge(stats.CompNative, native)
	}()

	for i := range b.Ops {
		in := &b.Ops[i]
		switch in.Op {
		case ir.Nop:

		case ir.MovI:
			s[in.D] = in.Imm
			native += cost.IROp
		case ir.Mov:
			s[in.D] = s[in.A]
			native += cost.IROp
		case ir.Not:
			s[in.D] = ^s[in.A]
			native += cost.IROp

		case ir.Add:
			s[in.D] = s[in.A] + s[in.B]
			native += cost.IROp
		case ir.Sub:
			s[in.D] = s[in.A] - s[in.B]
			native += cost.IROp
		case ir.And:
			s[in.D] = s[in.A] & s[in.B]
			native += cost.IROp
		case ir.Or:
			s[in.D] = s[in.A] | s[in.B]
			native += cost.IROp
		case ir.Xor:
			s[in.D] = s[in.A] ^ s[in.B]
			native += cost.IROp
		case ir.Mul:
			s[in.D] = s[in.A] * s[in.B]
			native += cost.IROp
		case ir.UDiv:
			if d := s[in.B]; d == 0 {
				s[in.D] = 0
			} else {
				s[in.D] = s[in.A] / d
			}
			native += cost.IROp
		case ir.SDiv:
			s[in.D] = sdiv32(s[in.A], s[in.B])
			native += cost.IROp
		case ir.Shl:
			s[in.D] = s[in.A] << (s[in.B] & 31)
			native += cost.IROp
		case ir.Shr:
			s[in.D] = s[in.A] >> (s[in.B] & 31)
			native += cost.IROp
		case ir.Sar:
			s[in.D] = uint32(int32(s[in.A]) >> (s[in.B] & 31))
			native += cost.IROp

		case ir.AddI:
			s[in.D] = s[in.A] + in.Imm
			native += cost.IROp
		case ir.SubI:
			s[in.D] = s[in.A] - in.Imm
			native += cost.IROp
		case ir.RsbI:
			s[in.D] = in.Imm - s[in.A]
			native += cost.IROp
		case ir.AndI:
			s[in.D] = s[in.A] & in.Imm
			native += cost.IROp
		case ir.OrI:
			s[in.D] = s[in.A] | in.Imm
			native += cost.IROp
		case ir.XorI:
			s[in.D] = s[in.A] ^ in.Imm
			native += cost.IROp
		case ir.ShlI:
			s[in.D] = s[in.A] << (in.Imm & 31)
			native += cost.IROp
		case ir.ShrI:
			s[in.D] = s[in.A] >> (in.Imm & 31)
			native += cost.IROp
		case ir.SarI:
			s[in.D] = uint32(int32(s[in.A]) >> (in.Imm & 31))
			native += cost.IROp

		case ir.FlagsAdd:
			s[in.D], c.flags = addFlags(s[in.A], s[in.B])
			native += cost.IROp
		case ir.FlagsSub:
			s[in.D], c.flags = subFlags(s[in.A], s[in.B])
			native += cost.IROp
		case ir.FlagsAddI:
			s[in.D], c.flags = addFlags(s[in.A], in.Imm)
			native += cost.IROp
		case ir.FlagsSubI:
			s[in.D], c.flags = subFlags(s[in.A], in.Imm)
			native += cost.IROp
		case ir.FlagsNZ:
			v := s[in.A]
			c.flags.N = int32(v) < 0
			c.flags.Z = v == 0
			native += cost.IROp

		case ir.Load:
			c.maybePreempt()
			v, f := mem.LoadWord(s[in.A] + in.Imm)
			if f != nil {
				c.guestFault(f, in)
				return exitNone
			}
			s[in.D] = v
			c.st.Loads++
			native += cost.MemAccess
		case ir.LoadB:
			c.maybePreempt()
			v, f := mem.LoadByte(s[in.A] + in.Imm)
			if f != nil {
				c.guestFault(f, in)
				return exitNone
			}
			s[in.D] = uint32(v)
			c.st.Loads++
			native += cost.MemAccess
		case ir.InstrLoad:
			c.maybePreempt()
			v, err := scheme.Load(c, s[in.A]+in.Imm)
			if err != nil {
				c.schemeFault(err, in)
				return exitNone
			}
			s[in.D] = v
			c.st.Loads++
			native += cost.MemAccess
		case ir.InstrLoadB:
			c.maybePreempt()
			v, err := scheme.LoadB(c, s[in.A]+in.Imm)
			if err != nil {
				c.schemeFault(err, in)
				return exitNone
			}
			s[in.D] = uint32(v)
			c.st.Loads++
			native += cost.MemAccess

		case ir.Store:
			c.maybePreempt()
			addr := s[in.A] + in.Imm
			if f := mem.StoreWord(addr, s[in.B]); f != nil {
				c.guestFault(f, in)
				return exitNone
			}
			if tm != nil {
				tm.NotifyStore(addr)
			}
			c.st.Stores++
			native += cost.MemAccess
		case ir.StoreB:
			c.maybePreempt()
			addr := s[in.A] + in.Imm
			if f := mem.StoreByte(addr, uint8(s[in.B])); f != nil {
				c.guestFault(f, in)
				return exitNone
			}
			if tm != nil {
				tm.NotifyStore(addr &^ 3)
			}
			c.st.Stores++
			native += cost.MemAccess
		case ir.InstrStore:
			c.maybePreempt()
			if err := scheme.Store(c, s[in.A]+in.Imm, s[in.B]); err != nil {
				c.schemeFault(err, in)
				return exitNone
			}
			c.st.Stores++
			native += cost.MemAccess
		case ir.InstrStoreB:
			c.maybePreempt()
			if err := scheme.StoreB(c, s[in.A]+in.Imm, uint8(s[in.B])); err != nil {
				c.schemeFault(err, in)
				return exitNone
			}
			c.st.Stores++
			native += cost.MemAccess

		case ir.LL:
			c.maybePreempt()
			addr := s[in.A] // capture before s[in.D] clobbers a shared slot
			v, err := scheme.LL(c, addr)
			if err != nil {
				c.schemeFault(err, in)
				return exitNone
			}
			s[in.D] = v
			c.st.LLs++
			c.ring.Emit(obs.EvLL, addr, 0)
			native += cost.MemAccess
		case ir.SC:
			c.maybePreempt()
			c.lastSCAddr = s[in.A]
			status, err := scheme.SC(c, s[in.A], s[in.B])
			if err != nil {
				c.schemeFault(err, in)
				return exitNone
			}
			if status == 0 {
				// Failures are emitted by the scheme with a reason code.
				c.ring.Emit(obs.EvSCOk, c.lastSCAddr, 0)
			}
			s[in.D] = status
			c.st.SCs++
			c.st.SCFails += uint64(status)
			native += cost.MemAccess
		case ir.AtomicRMW:
			c.maybePreempt()
			addr := s[in.A]
			operand := in.Imm
			if !in.RMWImm {
				operand = s[in.B]
			}
			// Rule-based fused atomic (paper §VI): one host atomic builtin,
			// outside the scheme, but still breaking monitors via NoteStore.
			if sn := c.m.storeNotifier; sn != nil {
				sn.NoteStore(c, addr)
			}
			for {
				old, f := mem.ReadWordPriv(addr)
				if f != nil {
					c.guestFault(f, in)
					return exitNone
				}
				ok, f := mem.CASWordPriv(addr, old, in.RMW.Eval(old, operand))
				if f != nil {
					c.guestFault(f, in)
					return exitNone
				}
				if ok {
					s[in.D] = old
					break
				}
			}
			if tm != nil {
				tm.NotifyStore(addr)
			}
			c.st.LLs++
			c.st.SCs++
			c.ring.Emit(obs.EvLL, addr, 0)
			c.ring.Emit(obs.EvSCOk, addr, 0)
			native += cost.HostAtomic
		case ir.Clrex:
			scheme.Clrex(c)
			native += cost.IROp
		case ir.Fence:
			// Go's atomics give sequential consistency; the fence is a
			// cost-model event only.
			native += cost.IROp

		case ir.ExitJmp:
			c.pc = in.Addr
			return exitTaken
		case ir.ExitCond:
			native += cost.IROp
			if c.flags.Test(in.Cond) {
				c.pc = in.Addr
				return exitTaken
			}
			c.pc = in.Addr2
			return exitFall
		case ir.ExitInd:
			c.pc = s[in.A]
			native += cost.IROp
			return exitNone
		case ir.Syscall:
			c.pc = in.Addr
			c.m.syscall(c, in.Imm)
			return exitNone
		case ir.Halt:
			c.halted = true
			return exitNone
		case ir.YieldOp:
			c.pc = in.Addr
			runtime.Gosched()
			return exitNone

		default:
			c.fail(fmt.Errorf("engine: tid %d: unhandled IR op %s at %#08x", c.tid, in.Op, in.GuestPC))
			return exitNone
		}
	}
	// The verifier guarantees a terminator; reaching here is an engine bug.
	c.fail(fmt.Errorf("engine: block %#08x fell off the end", b.Start))
	return exitNone
}

// guestFault reports an unhandled guest memory fault — the emulated program
// crashed (e.g. the corrupted lock-free stack dereferencing garbage).
func (c *CPU) guestFault(f *mmu.Fault, in *ir.Inst) { c.guestFaultAt(f, in.GuestPC) }

// guestFaultAt is guestFault for call sites without an IR instruction (the
// interp tier carries guest pcs directly).
func (c *CPU) guestFaultAt(f *mmu.Fault, pc uint32) {
	c.fail(fmt.Errorf("engine: tid %d: guest fault at pc %#08x: %w", c.tid, pc, f))
}

// schemeFault reports an error from the emulation scheme: either a guest
// fault surfaced through the scheme, or a scheme failure such as PICO-HTM
// livelock.
func (c *CPU) schemeFault(err error, in *ir.Inst) { c.schemeFaultAt(err, in.GuestPC) }

// schemeFaultAt is schemeFault for call sites without an IR instruction.
func (c *CPU) schemeFaultAt(err error, pc uint32) {
	c.fail(fmt.Errorf("engine: tid %d: at pc %#08x: %w", c.tid, pc, err))
}

func sdiv32(a, b uint32) uint32 {
	if b == 0 {
		return 0
	}
	sa, sb := int32(a), int32(b)
	if sa == -1<<31 && sb == -1 {
		return a
	}
	return uint32(sa / sb)
}

func addFlags(a, b uint32) (uint32, arch.Flags) {
	res := a + b
	return res, arch.Flags{
		N: int32(res) < 0,
		Z: res == 0,
		C: res < a,
		V: (^(a^b)&(a^res))>>31 != 0,
	}
}

func subFlags(a, b uint32) (uint32, arch.Flags) {
	res := a - b
	return res, arch.Flags{
		N: int32(res) < 0,
		Z: res == 0,
		C: a >= b, // no borrow
		V: ((a^b)&(a^res))>>31 != 0,
	}
}
