package engine

import (
	"fmt"

	"atomemu/internal/arch"
	"atomemu/internal/htm"
	"atomemu/internal/mmu"
	"atomemu/internal/obs"
	"atomemu/internal/stats"
)

// Guest syscall numbers (SVC immediate). Arguments in r0..r3, result in r0.
const (
	// SysExit ends the calling thread; r0 is its exit code.
	SysExit = 1
	// SysExitGroup ends the whole machine; r0 is the exit code.
	SysExitGroup = 2
	// SysSpawn starts a thread at entry r0 with argument r1 (delivered in
	// the child's r0). Returns the child tid, or ^0 on failure.
	SysSpawn = 3
	// SysJoin blocks until thread r0 exits. Returns 0, or 1 if no such
	// thread.
	SysJoin = 4
	// SysGetTID returns the caller's thread id.
	SysGetTID = 5
	// SysWrite appends r0 to the machine's output log.
	SysWrite = 6
	// SysFutexWait blocks while *r0 == r1. Returns 0 when woken, 1 when
	// the value already differed.
	SysFutexWait = 7
	// SysFutexWake wakes up to r1 waiters on address r0; returns the count.
	SysFutexWake = 8
	// SysBarrierInit creates a barrier at address r0 for r1 participants.
	SysBarrierInit = 9
	// SysBarrierWait blocks until all participants arrive. Returns 1 for
	// the last arriver (the "serial thread"), 0 otherwise.
	SysBarrierWait = 10
	// SysMmap maps r0 bytes of fresh guest memory; returns the address or 0.
	SysMmap = 11
	// SysClock returns the vCPU's virtual time (low 32 bits).
	SysClock = 12
)

// svcWord encodes "svc #n" (used to build the runtime trampoline).
func svcWord(n int32) uint32 {
	return arch.Instruction{Op: arch.SVC, Imm: n}.Encode()
}

func (m *Machine) syscall(c *CPU, num uint32) {
	c.charge(stats.CompNative, m.cfg.Cost.SyscallBase)
	// A syscall inside an open HTM window aborts the transaction: real
	// hardware transactions cannot survive a kernel entry.
	if c.mon.Txn != nil && !c.mon.Txn.Done() {
		c.mon.Txn.AbortNow(htm.ReasonSyscall)
		c.st.HTMAborts++
		c.ring.Emit(obs.EvHTMAbort, c.pc, uint64(htm.ReasonSyscall))
		c.charge(stats.CompHTM, m.cfg.Cost.HTMAbort)
	}
	r := c.slots[:4]
	switch num {
	case SysExit:
		c.exitCode = r[0]
		c.halted = true
	case SysExitGroup:
		c.exitCode = r[0]
		c.halted = true
		m.stop(nil)
	case SysSpawn:
		child, err := m.newCPU(r[0], c.clock.Load()+m.cfg.Cost.SyscallBase, []uint32{r[1]})
		if err != nil {
			r[0] = ^uint32(0)
			return
		}
		r[0] = child.tid
	case SysJoin:
		r[0] = m.sysJoin(c, r[0])
	case SysGetTID:
		r[0] = c.tid
	case SysWrite:
		m.outMu.Lock()
		m.output = append(m.output, r[0])
		m.outMu.Unlock()
	case SysFutexWait:
		r[0] = m.sysFutexWait(c, r[0], r[1])
	case SysFutexWake:
		r[0] = m.sysFutexWake(c, r[0], r[1])
	case SysBarrierInit:
		m.sysBarrierInit(r[0], int(r[1]))
	case SysBarrierWait:
		r[0] = m.sysBarrierWait(c, r[0])
	case SysMmap:
		r[0] = m.sysMmap(r[0])
	case SysClock:
		r[0] = uint32(c.clock.Load())
	default:
		c.fail(fmt.Errorf("engine: tid %d: unknown syscall %d at pc %#08x", c.tid, num, c.pc))
	}
}

func (m *Machine) cpuByTID(tid uint32) *CPU {
	m.cpuMu.Lock()
	defer m.cpuMu.Unlock()
	for _, c := range m.cpus {
		if c.tid == tid {
			return c
		}
	}
	return nil
}

func (m *Machine) sysJoin(c *CPU, tid uint32) uint32 {
	target := m.cpuByTID(tid)
	if target == nil || target == c {
		return 1
	}
	// Register the park against the target under parkMu: finish() settles
	// joinParked and halts under the same lock, so either we see the target
	// halted (no park) or finish() will decrement for us before it closes
	// done.
	m.parkMu.Lock()
	var derr error
	parked := false
	if !target.haltedFlag.Load() {
		c.blocked = blockedMark{active: true, kind: "join", syscall: SysJoin, addr: tid}
		target.joinParked++
		m.parked++
		parked = true
		derr = m.deadlockedLocked()
	}
	m.parkMu.Unlock()
	if derr != nil {
		m.stop(derr)
	}
	if parked {
		if h := m.cfg.SchedHook; h != nil {
			h.Parked(c.tid)
		}
	}
	m.excl.execEnd(c)
	// Also watch the stop broadcast: in a join cycle the target's done can
	// never close, and the deadlock stop must still unblock us.
	select {
	case <-target.done:
	case <-m.stopCh:
	}
	m.excl.execStart(c)
	m.noteResume(c)
	// The joiner resumes no earlier than the joinee finished.
	c.liftClockTo(target.clock.Load(), false)
	return 0
}

// --- futex ---

type futexQueue struct {
	waiters []chan uint64
}

// wakeAll releases every waiter, stamping them with the waker's clock.
// Caller holds futexMu.
func (q *futexQueue) wakeAll(clk uint64) {
	for _, ch := range q.waiters {
		ch <- clk
	}
	q.waiters = nil
}

func (m *Machine) sysFutexWait(c *CPU, addr, expected uint32) uint32 {
	m.futexMu.Lock()
	v, f := m.mem.LoadWord(addr)
	if f != nil {
		m.futexMu.Unlock()
		c.fail(fmt.Errorf("engine: tid %d: futex_wait fault: %w", c.tid, f))
		return 1
	}
	if v != expected {
		m.futexMu.Unlock()
		return 1
	}
	q := m.futexes[addr]
	if q == nil {
		q = &futexQueue{}
		m.futexes[addr] = q
	}
	ch := make(chan uint64, 1)
	q.waiters = append(q.waiters, ch)
	stoppedAlready := m.stopped.Load()
	m.futexMu.Unlock()
	if stoppedAlready {
		// The machine stopped before we could sleep; stop() already woke
		// registered waiters, so the channel has (or will get) a value —
		// but don't rely on ordering, just drain if present and leave.
		select {
		case <-ch:
		default:
		}
		return 0
	}
	// Register the park before sleeping (futexMu is released: a deadlock
	// here stops the machine, whose wakeAll reaches our channel).
	m.notePark(c, blockedMark{active: true, kind: "futex", syscall: SysFutexWait, addr: addr})
	m.excl.execEnd(c)
	wakeClk := <-ch
	m.excl.execStart(c)
	m.noteResume(c)
	// Blocked time counts as synchronization overhead.
	c.liftClockTo(wakeClk+m.cfg.Cost.SyscallBase, true)
	return 0
}

func (m *Machine) sysFutexWake(c *CPU, addr, maxWake uint32) uint32 {
	m.futexMu.Lock()
	defer m.futexMu.Unlock()
	q := m.futexes[addr]
	if q == nil || len(q.waiters) == 0 {
		return 0
	}
	n := int(maxWake)
	if n > len(q.waiters) {
		n = len(q.waiters)
	}
	clk := c.clock.Load()
	// Waker-side unpark accounting, BEFORE delivering the wakes: a waiter
	// with a wake in flight must never count as parked, or the deadlock
	// detector could fire while the machine can still make progress.
	m.noteWake(n)
	for i := 0; i < n; i++ {
		q.waiters[i] <- clk
	}
	q.waiters = append(q.waiters[:0], q.waiters[n:]...)
	return uint32(n)
}

// --- barrier ---

type guestBarrier struct {
	total   int
	arrived int
	maxClk  uint64
	gen     *barrierGen
}

// barrierGen is one barrier generation; releaseClk is written exactly once,
// before ch is closed, so waiters read it race-free after the close.
type barrierGen struct {
	ch         chan struct{}
	releaseClk uint64
}

// releaseAll releases current waiters (machine stop). Caller holds barMu.
func (b *guestBarrier) releaseAll() {
	old := b.gen
	b.gen = &barrierGen{ch: make(chan struct{})}
	b.arrived = 0
	close(old.ch)
}

func (m *Machine) sysBarrierInit(addr uint32, total int) {
	if total < 1 {
		total = 1
	}
	m.barMu.Lock()
	m.barriers[addr] = &guestBarrier{total: total, gen: &barrierGen{ch: make(chan struct{})}}
	m.barMu.Unlock()
}

func (m *Machine) sysBarrierWait(c *CPU, addr uint32) uint32 {
	m.barMu.Lock()
	b := m.barriers[addr]
	if b == nil {
		m.barMu.Unlock()
		c.fail(fmt.Errorf("engine: tid %d: barrier_wait on uninitialized barrier %#x", c.tid, addr))
		return 0
	}
	b.arrived++
	if clk := c.clock.Load(); clk > b.maxClk {
		b.maxClk = clk
	}
	if b.arrived == b.total {
		// Last arriver: release the generation. Unpark the waiters before
		// closing the channel (waker-side accounting; barMu-then-parkMu is
		// the sanctioned order).
		old := b.gen
		old.releaseClk = b.maxClk
		b.maxClk = 0
		b.arrived = 0
		b.gen = &barrierGen{ch: make(chan struct{})}
		m.noteWake(b.total - 1)
		close(old.ch)
		m.barMu.Unlock()
		c.liftClockTo(old.releaseClk+m.cfg.Cost.SyscallBase, true)
		return 1
	}
	g := b.gen
	mark := blockedMark{
		active:  true,
		kind:    "barrier",
		syscall: SysBarrierWait,
		addr:    addr,
		arrived: b.arrived,
		total:   b.total,
	}
	m.barMu.Unlock()
	m.notePark(c, mark)
	m.excl.execEnd(c)
	<-g.ch
	m.excl.execStart(c)
	m.noteResume(c)
	c.liftClockTo(g.releaseClk+m.cfg.Cost.SyscallBase, true)
	return 0
}

// --- memory ---

func (m *Machine) sysMmap(size uint32) uint32 {
	if size == 0 {
		return 0
	}
	size = (size + mmu.PageSize - 1) &^ uint32(mmu.PageMask)
	m.heapMu.Lock()
	defer m.heapMu.Unlock()
	addr := m.heapNext
	if addr+size < addr || addr+size > StackRegionBase {
		return 0
	}
	if err := m.mem.Map(addr, size, mmu.PermRW); err != nil {
		return 0
	}
	m.heapNext = addr + size
	return addr
}
