package engine

import (
	"fmt"

	"atomemu/internal/core"
	"atomemu/internal/mmu"
)

// Validate rejects nonsensical configurations with explicit errors instead
// of letting them surface as obscure faults mid-run (or be silently
// clamped). It validates the effective config — zero-valued sizing fields
// are filled from DefaultConfig exactly as NewMachine will — so a partially
// specified Config is judged by what it will actually run with. NewMachine
// calls it on every construction; the job server calls it again at admission
// so a bad job is refused at the API boundary, before a worker is committed.
//
// The -1 sentinels stay legal: RecoveryAttempts, WatchdogSCFails and
// PreemptMemOps document "negative disables", and -1 is the value that
// means exactly that. Anything below -1 is a sign the caller computed the
// field wrong, not that they wanted it off.
func (cfg Config) Validate() error {
	n := cfg.normalized()
	known := false
	for _, s := range core.SchemeNames() {
		if n.Scheme == s {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("engine: unknown scheme %q (know %v)", n.Scheme, core.SchemeNames())
	}
	// Guest addresses are 32-bit and the store-test table caps at 2^28
	// entries; past that the table cannot be built for any scheme.
	if n.HashBits > 28 {
		return fmt.Errorf("engine: HashBits %d exceeds the 28-bit table limit (guest addresses are 32-bit)", n.HashBits)
	}
	switch n.Scheme {
	case "hst", "hst-weak", "hst-htm":
		if n.HashBits < 4 {
			return fmt.Errorf("engine: HashBits %d below the 4-bit table minimum for scheme %s", n.HashBits, n.Scheme)
		}
	}
	switch n.Scheme {
	case "pico-htm", "hst-htm":
		if n.HTMBits < 4 || n.HTMBits > 24 {
			return fmt.Errorf("engine: HTMBits %d out of range [4,24] for scheme %s", n.HTMBits, n.Scheme)
		}
	}
	if n.HTMCapacity < 0 {
		return fmt.Errorf("engine: negative HTMCapacity %d", n.HTMCapacity)
	}
	// Two frames is the floor for anything runnable: the runtime trampoline
	// page plus at least one page of guest image.
	if n.MemBytes < 2*mmu.PageSize {
		return fmt.Errorf("engine: MemBytes %d below the two-page minimum (%d)", n.MemBytes, 2*mmu.PageSize)
	}
	if n.MaxThreads < 1 {
		return fmt.Errorf("engine: MaxThreads %d must be at least 1", n.MaxThreads)
	}
	// Per-thread stacks are carved upward from StackRegionBase with a guard
	// page between them; the whole region must fit below the top of the
	// 32-bit guest address space or later spawns would silently wrap onto
	// low memory. This is where a huge StackBytes with a defaulted MemBytes
	// used to go undiagnosed until a mid-run mapping fault.
	stride := uint64(n.StackBytes) + mmu.PageSize
	if uint64(StackRegionBase)+uint64(n.MaxThreads)*stride > 1<<32 {
		return fmt.Errorf("engine: %d stacks of %d bytes (+guard page) overflow the 32-bit address space above %#x",
			n.MaxThreads, n.StackBytes, StackRegionBase)
	}
	if n.QuantumTBs < 1 {
		return fmt.Errorf("engine: QuantumTBs %d must be at least 1", n.QuantumTBs)
	}
	if n.MaxGuestInstrsPerTB < 0 {
		return fmt.Errorf("engine: negative MaxGuestInstrsPerTB %d", n.MaxGuestInstrsPerTB)
	}
	if n.RecoveryAttempts < -1 {
		return fmt.Errorf("engine: RecoveryAttempts %d is nonsense (-1 disables recovery)", n.RecoveryAttempts)
	}
	if n.WatchdogSCFails < -1 {
		return fmt.Errorf("engine: WatchdogSCFails %d is nonsense (-1 disables the watchdog)", n.WatchdogSCFails)
	}
	if n.PreemptMemOps < -1 {
		return fmt.Errorf("engine: PreemptMemOps %d is nonsense (-1 disables mid-block preemption)", n.PreemptMemOps)
	}
	if n.HTMMaxRetries < 0 || n.FallbackCooldown < 0 {
		return fmt.Errorf("engine: negative HTM retry policy (HTMMaxRetries %d, FallbackCooldown %d)",
			n.HTMMaxRetries, n.FallbackCooldown)
	}
	if n.HashSpinBudget < 0 {
		return fmt.Errorf("engine: negative HashSpinBudget %d", n.HashSpinBudget)
	}
	if n.ChainBudget < 0 {
		return fmt.Errorf("engine: negative ChainBudget %d (0 disables chaining)", n.ChainBudget)
	}
	if n.HotThreshold < 1 {
		return fmt.Errorf("engine: HotThreshold %d must be at least 1", n.HotThreshold)
	}
	return nil
}
