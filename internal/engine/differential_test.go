package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"atomemu/internal/arch"
	"atomemu/internal/asm"
	"atomemu/internal/mmu"
)

// Differential testing: a single-threaded guest program must produce
// identical architectural results — registers, memory, output log — under
// every emulation scheme (LL/SC without interference always succeeds) and
// with the IR optimizer on or off. Divergence means a scheme or an
// optimizer pass changed guest semantics.

const scratchBase = 0x20000

// genProgram builds a random but terminating guest program: straight-line
// ALU/memory/LLSC ops with occasional bounded forward branches, operating
// on registers r0..r8 and a 4 KiB scratch region.
func genProgram(r *rand.Rand, nops int) (*asm.Image, error) {
	b := asm.NewBuilder(0x10000)
	// r4 stays the scratch base and r9/r10 are generator temps; everything
	// else is fair game.
	pool := []arch.Reg{arch.R0, arch.R1, arch.R2, arch.R3, arch.R5, arch.R6, arch.R7, arch.R8}
	reg := func() arch.Reg { return pool[r.Intn(len(pool))] }
	off := func() int32 { return int32(r.Intn(1024)) * 4 }

	b.Label("main")
	// Deterministic-ish initial registers.
	for i := 0; i < 9; i++ {
		b.MovImm32(arch.Reg(i), r.Uint32())
	}
	b.MovImm32(arch.R4, scratchBase) // keep r4 as the scratch base
	skip := 0
	for i := 0; i < nops; i++ {
		switch r.Intn(12) {
		case 0:
			b.Raw(arch.Instruction{Op: arch.ADD, Rd: reg(), Rn: reg(), Rm: reg()})
		case 1:
			b.Raw(arch.Instruction{Op: arch.SUBS, Rd: reg(), Rn: reg(), Rm: reg()})
		case 2:
			b.Raw(arch.Instruction{Op: arch.EORI, Rd: reg(), Rn: reg(), Imm: int32(r.Intn(4096))})
		case 3:
			b.Raw(arch.Instruction{Op: arch.MUL, Rd: reg(), Rn: reg(), Rm: reg()})
		case 4:
			b.Raw(arch.Instruction{Op: arch.LSRI, Rd: reg(), Rn: reg(), Imm: int32(r.Intn(31))})
		case 5:
			// Store then load so memory round-trips mix into registers.
			b.Str(reg(), arch.R4, off())
		case 6:
			b.Ldr(reg(), arch.R4, off())
		case 7:
			b.Strb(reg(), arch.R4, off()+int32(r.Intn(4)))
		case 8:
			// An uncontended LL/SC pair: must always succeed and store.
			o := off()
			dst := reg()
			b.AddI(arch.R9, arch.R4, o)
			b.Ldrex(dst, arch.R9)
			b.AddI(dst, dst, 1)
			b.Strex(arch.R10, dst, arch.R9)
			// Fold the status (always 0) into the data flow.
			b.Add(dst, dst, arch.R10)
		case 9:
			// Bounded forward skip over the next few instructions.
			b.Raw(arch.Instruction{Op: arch.CMPI, Rn: reg(), Imm: int32(r.Intn(4096))})
			label := fmt.Sprintf("skip%d", skip)
			skip++
			b.BCond(arch.Cond(r.Intn(int(arch.NumConds))), label)
			n := 1 + r.Intn(3)
			for j := 0; j < n; j++ {
				b.Raw(arch.Instruction{Op: arch.ADDI, Rd: reg(), Rn: reg(), Imm: int32(r.Intn(64))})
			}
			b.Label(label)
		case 10:
			b.Raw(arch.Instruction{Op: arch.UDIV, Rd: reg(), Rn: reg(), Rm: reg()})
		case 11:
			// Emit part of the register state to the output log.
			b.Mov(arch.R0, reg())
			b.Svc(6)
		}
	}
	// Final: write every register to the log, then exit.
	for i := 0; i < 9; i++ {
		b.Mov(arch.R0, arch.Reg(i))
		b.Svc(6)
	}
	b.MovI(arch.R0, 0)
	b.Svc(1)
	return b.Finish()
}

type archResult struct {
	output []uint32
	mem    []uint32
}

func runDifferential(t *testing.T, im *asm.Image, scheme string, noOpt bool) archResult {
	t.Helper()
	cfg := DefaultConfig(scheme)
	cfg.NoOptimize = noOpt
	cfg.MaxGuestInstrs = 10_000_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if err := m.MapRegion(scratchBase, 4096, mmu.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("scheme %s: %v", scheme, err)
	}
	res := archResult{output: m.Output(), mem: make([]uint32, 1024)}
	for i := range res.mem {
		v, f := m.Mem().ReadWordPriv(scratchBase + uint32(i)*4)
		if f != nil {
			t.Fatal(f)
		}
		res.mem[i] = v
	}
	return res
}

func diffResults(t *testing.T, tag string, want, got archResult) {
	t.Helper()
	if len(want.output) != len(got.output) {
		t.Fatalf("%s: output length %d vs %d", tag, len(want.output), len(got.output))
	}
	for i := range want.output {
		if want.output[i] != got.output[i] {
			t.Fatalf("%s: output[%d] = %#x vs %#x", tag, i, want.output[i], got.output[i])
		}
	}
	for i := range want.mem {
		if want.mem[i] != got.mem[i] {
			t.Fatalf("%s: scratch[%#x] = %#x vs %#x", tag, i*4, want.mem[i], got.mem[i])
		}
	}
}

// TestDifferentialSchemesAgree: every scheme must give bit-identical
// single-threaded results.
func TestDifferentialSchemesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	schemes := []string{"pico-cas", "pico-st", "pico-htm", "hst", "hst-weak", "hst-htm", "pst", "pst-remap", "pst-mpk"}
	for round := 0; round < 8; round++ {
		im, err := genProgram(r, 120)
		if err != nil {
			t.Fatal(err)
		}
		ref := runDifferential(t, im, "pico-cas", false)
		for _, scheme := range schemes[1:] {
			got := runDifferential(t, im, scheme, false)
			diffResults(t, fmt.Sprintf("round %d scheme %s", round, scheme), ref, got)
		}
	}
}

// TestDifferentialOptimizerPreservesSemantics: optimized vs unoptimized IR
// must match on random programs (the end-to-end version of the ir package's
// property test).
func TestDifferentialOptimizerPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for round := 0; round < 12; round++ {
		im, err := genProgram(r, 150)
		if err != nil {
			t.Fatal(err)
		}
		opt := runDifferential(t, im, "hst", false)
		raw := runDifferential(t, im, "hst", true)
		diffResults(t, fmt.Sprintf("round %d optimizer", round), opt, raw)
	}
}

// TestDifferentialBlockSizeInvariant: translation-block length must not
// change semantics (single-step blocks vs full blocks).
func TestDifferentialBlockSizeInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	im, err := genProgram(r, 120)
	if err != nil {
		t.Fatal(err)
	}
	full := runDifferential(t, im, "hst", false)

	cfg := DefaultConfig("hst")
	cfg.MaxGuestInstrsPerTB = 1
	cfg.MaxGuestInstrs = 10_000_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if err := m.MapRegion(scratchBase, 4096, mmu.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tiny := archResult{output: m.Output(), mem: make([]uint32, 1024)}
	for i := range tiny.mem {
		v, _ := m.Mem().ReadWordPriv(scratchBase + uint32(i)*4)
		tiny.mem[i] = v
	}
	diffResults(t, "block size", full, tiny)
}
