//go:build race

package engine

// raceEnabled reports whether the race detector instruments this build;
// perf guards skip under it (instrumentation inflates every memory op).
const raceEnabled = true
