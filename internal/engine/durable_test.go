package engine

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"atomemu/internal/checkpoint"
	"atomemu/internal/faultinject"
	"atomemu/internal/mmu"
)

// TestRestoreFaultConsumesRecoveryAttempt (regression): a restore that
// itself faults — here an injected fault in the page-table rebuild, scoped
// to the runtime page's base address so it can only fire inside
// mmu.Restore's sweep, never on a guest store — must consume a recovery
// attempt and be retried, not panic or surface as a terminal rollback
// failure. The run takes one mid-flight guest fault, one failed restore,
// then a clean restore, and still finishes with an intact stack.
func TestRestoreFaultConsumesRecoveryAttempt(t *testing.T) {
	cfg := DefaultConfig("hst")
	cfg.MaxGuestInstrs = 2_000_000_000
	cfg.CheckpointEvery = 100_000
	cfg.FaultInjector = faultinject.New(
		faultinject.Rule{
			Op: faultinject.OpMemStore, Action: faultinject.ActFault, After: 6_000, Count: 1,
		},
		// The guest never stores to the RX runtime page, so this rule's
		// counter only advances — and the rule only fires — when
		// mmu.Restore walks the restored pages.
		faultinject.Rule{
			Op: faultinject.OpMemStore, Action: faultinject.ActFault, Addr: RuntimeBase, Count: 1,
		},
	)
	agg, rep := runStackResilience(t, cfg, 16, 384, 256)
	if got := cfg.FaultInjector.Fired(); got != 2 {
		t.Fatalf("injected faults fired = %d, want 2 (one guest fault, one restore fault)", got)
	}
	if agg.RecoveryAttempts != 2 {
		t.Errorf("RecoveryAttempts = %d, want 2 (the failed restore must be charged)", agg.RecoveryAttempts)
	}
	if agg.RecoveryRestores != 1 {
		t.Errorf("RecoveryRestores = %d, want 1 (only the clean restore counts)", agg.RecoveryRestores)
	}
	if rep.Corrupted() {
		t.Errorf("stack corrupted after retried recovery: %+v", rep)
	}
}

// spillSink collects encoded snapshots the way the daemon's durability
// layer does: every capture is serialized with the stable codec and the
// latest image kept.
type spillSink struct {
	mu     sync.Mutex
	images [][]byte
}

func (s *spillSink) sink(t *testing.T) func(*checkpoint.Snapshot) {
	return func(snap *checkpoint.Snapshot) {
		var buf bytes.Buffer
		if err := checkpoint.Encode(&buf, snap); err != nil {
			t.Errorf("encoding spilled snapshot: %v", err)
			return
		}
		s.mu.Lock()
		s.images = append(s.images, buf.Bytes())
		s.mu.Unlock()
	}
}

// runDeterminismWithSink is runDeterminism with a CheckpointSink installed,
// for checking that spilling is as invisible as capturing.
func runDeterminismWithSink(t *testing.T, every uint64, sink func(*checkpoint.Snapshot)) ([]uint32, uint64) {
	t.Helper()
	im := buildImage(t, checkpointDeterminismImage)
	cfg := DefaultConfig("pico-cas")
	cfg.MaxGuestInstrs = 100_000_000
	cfg.CheckpointEvery = every
	cfg.CheckpointSink = sink
	cfg.Cost.TBTranslate = 0
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m.Output(), m.VirtualTime()
}

// TestResumeFromSpilledSnapshotMatchesUninterrupted is the durability
// round trip: a run spills every checkpoint through the binary codec; the
// latest image is decoded and resumed on a brand-new machine, which runs
// to completion with output and virtual time identical to an
// uninterrupted reference. It also extends the cycle-invisibility
// guarantee to the spill path — the run WITH a sink must match the
// reference run without one, output and virtual time both.
func TestResumeFromSpilledSnapshotMatchesUninterrupted(t *testing.T) {
	refOut, refVT, _ := runDeterminism(t, 0)

	var spill spillSink
	spillOut, spillVT := runDeterminismWithSink(t, 2_000, spill.sink(t))
	if len(spill.images) == 0 {
		t.Fatal("no snapshots spilled")
	}
	if spillVT != refVT {
		t.Fatalf("spilling perturbed virtual time: %d (spill) vs %d (ref)", spillVT, refVT)
	}
	if len(spillOut) != len(refOut) {
		t.Fatalf("spill-run output %v, want %v", spillOut, refOut)
	}
	for i := range spillOut {
		if spillOut[i] != refOut[i] {
			t.Fatalf("spill-run output diverged: %v vs %v", spillOut, refOut)
		}
	}

	// Resume from a mid-run cut (the final checkpoint can coincide with the
	// final virtual time, which would leave the resumed run nothing to do).
	snap, err := checkpoint.DecodeBytes(spill.images[len(spill.images)/2])
	if err != nil {
		t.Fatalf("decoding mid-run spill: %v", err)
	}
	if snap.VirtualTime == 0 || snap.VirtualTime >= refVT {
		t.Fatalf("chosen cut at VT %d should be mid-run (final VT %d)", snap.VirtualTime, refVT)
	}

	cfg := DefaultConfig("pico-cas")
	cfg.MaxGuestInstrs = 100_000_000
	cfg.CheckpointEvery = 2_000
	cfg.Cost.TBTranslate = 0
	m, err := ResumeFromSnapshot(cfg, snap)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	out, vt := m.Output(), m.VirtualTime()
	if vt != refVT {
		t.Fatalf("resumed virtual time %d, want %d", vt, refVT)
	}
	if len(out) != len(refOut) {
		t.Fatalf("resumed output %v, want %v", out, refOut)
	}
	for i := range out {
		if out[i] != refOut[i] {
			t.Fatalf("resumed output diverged: %v vs %v", out, refOut)
		}
	}
	for _, c := range m.CPUs() {
		if !c.Halted() {
			t.Fatalf("vCPU %d not halted after resumed run", c.TID())
		}
		if c.ExitCode() != 0 {
			t.Fatalf("vCPU %d exit code %d after resumed run", c.TID(), c.ExitCode())
		}
	}
}

// TestResumeRejectsBadInput: the resume entry point fails fast on the
// configurations and snapshots it cannot honour.
func TestResumeRejectsBadInput(t *testing.T) {
	valid := &checkpoint.Snapshot{
		Mem:  &mmu.Snapshot{Frames: map[int32][]uint32{}},
		CPUs: []checkpoint.VCPU{{TID: 1}},
	}
	step := DefaultConfig("hst")
	step.StepMode = true
	if _, err := ResumeFromSnapshot(step, valid); err == nil || !strings.Contains(err.Error(), "step mode") {
		t.Errorf("step-mode resume: err = %v, want step-mode rejection", err)
	}
	cfg := DefaultConfig("hst")
	if _, err := ResumeFromSnapshot(cfg, nil); err == nil {
		t.Error("nil snapshot must be rejected")
	}
	if _, err := ResumeFromSnapshot(cfg, &checkpoint.Snapshot{Mem: &mmu.Snapshot{}}); err == nil {
		t.Error("snapshot with no vCPUs must be rejected")
	}
	dup := &checkpoint.Snapshot{
		Mem:  &mmu.Snapshot{Frames: map[int32][]uint32{}},
		CPUs: []checkpoint.VCPU{{TID: 3}, {TID: 3}},
	}
	if _, err := ResumeFromSnapshot(cfg, dup); err == nil || !strings.Contains(err.Error(), "tid") {
		t.Errorf("duplicate-tid snapshot: err = %v, want tid rejection", err)
	}
}
