package engine

import (
	"testing"
	"time"

	"atomemu/internal/faultinject"
)

// statsPollImage: each worker increments a shared counter r0 times through
// an LL/SC retry loop — steady stat traffic on every vCPU for the live-read
// race tests below.
const statsPollImage = `
.org 0x10000
.entry worker
worker:
    ldr r4, =counter
loop:
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne loop
    subsi r0, r0, #1
    bne loop
    movi r0, #0
    svc #1
.align 64
counter: .word 0
`

// pollStats hammers the live-read API from a host goroutine until stop is
// closed, returning how many snapshots it took. Each AggregateStats call
// quiesces the machine, so under -race this is the regression test for the
// read-while-running race the service layer's status polling hits.
func pollStats(m *Machine, stop <-chan struct{}) (polls int) {
	for {
		select {
		case <-stop:
			return polls
		default:
		}
		agg := m.AggregateStats()
		_ = agg.GuestInstrs
		_ = m.Output()
		_ = m.VirtualTime()
		polls++
		time.Sleep(100 * time.Microsecond)
	}
}

// TestAggregateStatsLiveReadIsRaceFree polls AggregateStats/Output from a
// host goroutine while four vCPUs run, as the job server does for status
// requests. Before AggregateStats quiesced the machine, -race flagged the
// per-vCPU counter reads here.
func TestAggregateStatsLiveReadIsRaceFree(t *testing.T) {
	im := buildImage(t, statsPollImage)
	const threads, per = 4, 20_000
	cfg := DefaultConfig("hst")
	cfg.MaxGuestInstrs = 200_000_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(im.Entry, per); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	polled := make(chan int, 1)
	go func() { polled <- pollStats(m, stop) }()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if n := <-polled; n == 0 {
		t.Fatal("poller never sampled a live machine")
	}
	w, f := m.Mem().ReadWordPriv(im.MustSymbol("counter"))
	if f != nil {
		t.Fatal(f)
	}
	if w != threads*per {
		t.Fatalf("counter = %d, want %d", w, threads*per)
	}
	agg := m.AggregateStats()
	if agg.SCs < threads*per {
		t.Fatalf("SCs = %d, want >= %d", agg.SCs, threads*per)
	}
}

// TestAggregateStatsLiveReadAcrossRecovery keeps the poller running through
// a checkpoint rollback: an injected store fault kills the run mid-flight,
// restore rewrites every vCPU's counters from the snapshot, and the live
// reads must stay race-free against that rewrite too (restore holds the
// exclusive-section owner lock for its duration).
func TestAggregateStatsLiveReadAcrossRecovery(t *testing.T) {
	im := buildImage(t, statsPollImage)
	const threads, per = 4, 20_000
	cfg := DefaultConfig("hst")
	cfg.MaxGuestInstrs = 200_000_000
	cfg.CheckpointEvery = 40_000
	cfg.FaultInjector = faultinject.New(faultinject.Rule{
		Op: faultinject.OpMemStore, Action: faultinject.ActFault, After: 10_000, Count: 1,
	})
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(im.Entry, per); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	polled := make(chan int, 1)
	go func() { polled <- pollStats(m, stop) }()
	if err := m.Run(); err != nil {
		t.Fatalf("run should recover from the injected fault: %v", err)
	}
	close(stop)
	<-polled
	if cfg.FaultInjector.Fired() == 0 {
		t.Fatal("injected fault never fired; recovery untested")
	}
	agg := m.AggregateStats()
	if agg.RecoveryRestores == 0 {
		t.Fatal("no rollback happened; the restore path went unexercised")
	}
	w, f := m.Mem().ReadWordPriv(im.MustSymbol("counter"))
	if f != nil {
		t.Fatal(f)
	}
	if w != threads*per {
		t.Fatalf("counter = %d after recovery, want %d", w, threads*per)
	}
}
