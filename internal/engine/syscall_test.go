package engine

import (
	"strings"
	"testing"
)

func TestFutexWakeCountsAndValueMismatch(t *testing.T) {
	// Three sleepers on one futex; main wakes 2, then 1.
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    ldr r5, =sleeper
    mov r0, r5
    movi r1, #0
    svc #3          ; spawn 3 sleepers
    mov r0, r5
    svc #3
    mov r0, r5
    svc #3
    ; give them time to sleep: spin on the sleeping counter
waitloop:
    ldr r2, =slept
    ldr r1, [r2]
    cmpi r1, #3
    blt waitloop
    ; wake 2
    ldr r0, =cell
    movi r1, #2
    svc #8
    svc #6          ; print woken count (2)
    ldr r0, =cell
    movi r1, #5
    svc #8
    svc #6          ; print woken count (1)
    ; futex_wait with mismatched value returns immediately with 1
    ldr r0, =cell
    movi r1, #123
    svc #7
    svc #6          ; print 1
    svc #1
sleeper:
    ldr r4, =slept
sret:
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne sret
    ldr r0, =cell
    movi r1, #0
    svc #7          ; futex_wait(cell, 0)
    movi r0, #0
    svc #1
.align 4
cell: .word 0
slept: .word 0
`)
	m := newTestMachine(t, "pico-cas", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := m.Output()
	if len(out) != 3 || out[0] != 2 || out[1] != 1 || out[2] != 1 {
		t.Fatalf("output = %v, want [2 1 1]", out)
	}
}

func TestJoinInvalidTID(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    movw r0, #999
    svc #4          ; join(999) -> 1
    svc #6
    svc #1
`)
	m := newTestMachine(t, "pico-cas", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out := m.Output(); len(out) != 1 || out[0] != 1 {
		t.Fatalf("output = %v, want [1]", out)
	}
}

func TestJoinSelfReturnsError(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    svc #5          ; tid
    svc #4          ; join(self) -> 1, must not deadlock
    svc #6
    svc #1
`)
	m := newTestMachine(t, "pico-cas", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out := m.Output(); len(out) != 1 || out[0] != 1 {
		t.Fatalf("output = %v, want [1]", out)
	}
}

func TestUnknownSyscallFails(t *testing.T) {
	im := buildImage(t, ".org 0x10000\n.entry main\nmain:\n svc #99\n svc #1\n")
	m := newTestMachine(t, "pico-cas", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "unknown syscall") {
		t.Fatalf("err = %v", err)
	}
}

func TestSpawnLimit(t *testing.T) {
	cfg := DefaultConfig("pico-cas")
	cfg.MaxThreads = 3
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    ldr r5, =idle
    mov r0, r5
    movi r1, #0
    svc #3
    svc #6          ; tid 2
    mov r0, r5
    svc #3
    svc #6          ; tid 3
    mov r0, r5
    svc #3
    svc #6          ; limit: 0xffffffff
    svc #1
idle:
    movi r0, #0
    svc #1
`)
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := m.Output()
	if len(out) != 3 || out[0] != 2 || out[1] != 3 || out[2] != ^uint32(0) {
		t.Fatalf("output = %v", out)
	}
}

func TestMmapExhaustionReturnsZero(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    ; ask for far more than the heap region can hold
    movw r0, #0xffff
    movt r0, #0x1fff
    svc #11
    svc #6          ; 0
    movi r0, #0
    svc #11         ; zero-size mmap also returns 0
    svc #6
    svc #1
`)
	m := newTestMachine(t, "pico-cas", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := m.Output()
	if len(out) != 2 || out[0] != 0 || out[1] != 0 {
		t.Fatalf("output = %v, want [0 0]", out)
	}
}

func TestClockSyscallMonotonic(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    svc #12
    mov r5, r0
    movi r1, #100
spin:
    subsi r1, r1, #1
    bne spin
    svc #12
    sub r0, r0, r5  ; elapsed > 0
    cmpi r0, #0
    bgt good
    movi r0, #0
    svc #6
    svc #1
good:
    movi r0, #1
    svc #6
    svc #1
`)
	m := newTestMachine(t, "pico-cas", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out := m.Output(); len(out) != 1 || out[0] != 1 {
		t.Fatalf("clock not monotonic: %v", out)
	}
}

func TestBarrierUninitializedFails(t *testing.T) {
	im := buildImage(t, ".org 0x10000\n.entry main\nmain:\n movw r0, #0x5000\n svc #10\n svc #1\n")
	m := newTestMachine(t, "pico-cas", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "barrier") {
		t.Fatalf("err = %v", err)
	}
}

func TestGuestBarrierInitSyscall(t *testing.T) {
	// barrier_init from guest code rather than the host helper.
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    ldr r0, =barcell
    movi r1, #2
    svc #9          ; barrier_init(barcell, 2)
    ldr r5, =waiter
    mov r0, r5
    movi r1, #0
    svc #3
    ldr r0, =barcell
    svc #10
    svc #6          ; either 0 or 1 (last arriver)
    svc #1
waiter:
    ldr r0, =barcell
    svc #10
    movi r0, #0
    svc #1
.align 4
barcell: .word 0
`)
	m := newTestMachine(t, "pico-cas", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out := m.Output(); len(out) != 1 || out[0] > 1 {
		t.Fatalf("output = %v", out)
	}
}
