package engine

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestMachineChurn is the lifecycle stress the job server leans on: many
// short-lived machines created, run under a context, randomly cancelled
// mid-flight (often mid-checkpoint), polled for stats, and dropped. Run
// under -race it shakes out lifecycle data races; the goroutine census at
// the end catches vCPU or watchdog goroutines that outlive their machine.
func TestMachineChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn stress in -short mode")
	}
	im := buildImage(t, statsPollImage)
	schemes := []string{"pico-cas", "hst", "hst-htm"}

	baseline := runtime.NumGoroutine()
	const lanes, perLane = 8, 12
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ran, cancelled int
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(lane) + 1))
			for i := 0; i < perLane; i++ {
				cfg := DefaultConfig(schemes[rng.Intn(len(schemes))])
				cfg.MaxGuestInstrs = 50_000_000
				if rng.Intn(2) == 0 {
					cfg.CheckpointEvery = uint64(2_000 + rng.Intn(8_000))
				}
				m, err := NewMachine(cfg)
				if err != nil {
					t.Error(err)
					return
				}
				if err := m.LoadImage(im); err != nil {
					t.Error(err)
					return
				}
				threads := 1 + rng.Intn(4)
				for w := 0; w < threads; w++ {
					if _, err := m.SpawnThread(im.Entry, uint32(2_000+rng.Intn(4_000))); err != nil {
						t.Error(err)
						return
					}
				}
				ctx, cancel := context.WithCancel(context.Background())
				if d := rng.Intn(3); d > 0 {
					// Most runs get a kill timer short enough to land
					// mid-run; the rest run to completion.
					time.AfterFunc(time.Duration(50+rng.Intn(2000))*time.Microsecond, cancel)
				}
				err = m.RunContext(ctx)
				cancel()
				// Whatever the outcome, the machine must stay inspectable.
				_ = m.AggregateStats()
				_ = m.Output()
				_ = m.VirtualTime()
				mu.Lock()
				if err == context.Canceled {
					cancelled++
				} else if err != nil {
					mu.Unlock()
					t.Errorf("lane %d run %d: %v", lane, i, err)
					return
				}
				ran++
				mu.Unlock()
			}
		}(lane)
	}
	wg.Wait()
	if ran == 0 {
		t.Fatal("no machine survived the churn")
	}
	if cancelled == 0 {
		t.Fatal("no run was cancelled; the churn never exercised teardown mid-flight")
	}
	t.Logf("churn: %d runs, %d cancelled mid-flight", ran, cancelled)

	// Every machine is gone; their goroutines must be too. Allow a little
	// slack for runtime helpers and give stragglers time to park.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+4 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+4 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d live, baseline %d\n%s", n, baseline,
			buf[:runtime.Stack(buf, true)])
	}
}
