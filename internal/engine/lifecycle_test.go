package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"atomemu/internal/core"
	"atomemu/internal/faultinject"
	"atomemu/internal/guestlib"
)

// TestRecoveryFromInjectedFault is the headline recovery demo: a 16-vCPU
// lock-free-stack run is killed mid-flight by an injected store fault; the
// machine rolls back to the last checkpoint, resumes, and finishes with a
// fully intact stack and a clean exit. The injector is not rolled back, so
// the Count-bounded fault does not re-fire after the restore.
func TestRecoveryFromInjectedFault(t *testing.T) {
	cfg := DefaultConfig("hst")
	cfg.MaxGuestInstrs = 2_000_000_000
	cfg.CheckpointEvery = 100_000
	cfg.FaultInjector = faultinject.New(faultinject.Rule{
		Op: faultinject.OpMemStore, Action: faultinject.ActFault, After: 6_000, Count: 1,
	})
	agg, rep := runStackResilience(t, cfg, 16, 384, 256)
	if cfg.FaultInjector.Fired() == 0 {
		t.Fatal("injected fault never fired; the demo tested nothing")
	}
	if agg.RecoveryRestores == 0 {
		t.Error("run should have rolled back to a checkpoint at least once")
	}
	if agg.Checkpoints == 0 {
		t.Error("no checkpoints captured")
	}
	if rep.Corrupted() {
		t.Errorf("stack corrupted after recovery: %+v", rep)
	}
}

// TestRecoveryDemotesSchemeOnWatchdogAndExhausts drives a guest whose SC can
// never succeed (strex address differs from the ldrex address) into the
// progress watchdog with checkpointing on. The failure is scheme-attributed,
// so the first rollback demotes PICO-HTM to portable HST — but the guest is
// wedged under any scheme, so recovery retries its full budget and gives up
// with RecoveryExhaustedError wrapping the watchdog diagnostic.
func TestRecoveryDemotesSchemeOnWatchdogAndExhausts(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry worker
worker:
    ldr r4, =xvar
    ldr r5, =yvar
loop:
    ldrex r1, [r4]
    strex r2, r1, [r5]
    b loop
.align 1024
xvar: .word 1
yvar: .word 2
`)
	cfg := DefaultConfig("pico-htm")
	cfg.MaxGuestInstrs = 2_000_000_000
	cfg.WatchdogSCFails = 500
	cfg.CheckpointEvery = 2_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnThread(im.Entry, 0); err != nil {
		t.Fatal(err)
	}
	err = m.Run()
	var re *RecoveryExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("wedged guest should exhaust recovery, got %v", err)
	}
	if re.Attempts != cfg.RecoveryAttempts {
		t.Errorf("attempts = %d, want %d", re.Attempts, cfg.RecoveryAttempts)
	}
	var werr *core.WatchdogError
	if !errors.As(err, &werr) {
		t.Errorf("exhaustion should wrap the watchdog diagnostic, got %v", re.Err)
	}
	if got := m.Scheme().Name(); got != "hst" {
		t.Errorf("scheme-attributed failure should demote to hst, still %q", got)
	}
	agg := m.AggregateStats()
	if agg.RecoveryAttempts != uint64(cfg.RecoveryAttempts) {
		t.Errorf("RecoveryAttempts stat = %d, want %d", agg.RecoveryAttempts, cfg.RecoveryAttempts)
	}
	if agg.RecoveryRestores != uint64(cfg.RecoveryAttempts) {
		t.Errorf("RecoveryRestores stat = %d, want %d", agg.RecoveryRestores, cfg.RecoveryAttempts)
	}
}

// checkpointDeterminismImage: main spawns four workers, each incrementing a
// private counter 800 times through LL/SC, joins them, and emits the
// counters. Under pico-cas nothing stalls or serializes across vCPUs, so
// output AND virtual time are schedule-independent — the reference for
// checking that checkpointing is invisible to the virtual-time model.
const checkpointDeterminismImage = `
.org 0x10000
.entry main
main:
    ldr r6, =counters
    ldr r8, =tids
    movi r7, #4
spawn_loop:
    ldr r0, =worker
    mov r1, r6
    svc #3
    str r0, [r8]
    addi r8, r8, #4
    addi r6, r6, #4
    subsi r7, r7, #1
    bne spawn_loop
    ldr r8, =tids
    movi r7, #4
join_loop:
    ldr r0, [r8]
    svc #4
    addi r8, r8, #4
    subsi r7, r7, #1
    bne join_loop
    ldr r6, =counters
    movi r7, #4
emit_loop:
    ldr r0, [r6]
    svc #6
    addi r6, r6, #4
    subsi r7, r7, #1
    bne emit_loop
    movi r0, #0
    svc #1

worker:
    movi r2, #800
wloop:
    ldrex r1, [r0]
    addi r1, r1, #1
    strex r3, r1, [r0]
    cmpi r3, #0
    bne wloop
    subsi r2, r2, #1
    bne wloop
    movi r0, #0
    svc #1

.align 64
counters: .space 16
tids:     .space 16
`

func runDeterminism(t *testing.T, checkpointEvery uint64) ([]uint32, uint64, uint64) {
	t.Helper()
	im := buildImage(t, checkpointDeterminismImage)
	cfg := DefaultConfig("pico-cas")
	cfg.MaxGuestInstrs = 100_000_000
	cfg.CheckpointEvery = checkpointEvery
	// The translate charge is the engine's one scheduling-dependent cost: a
	// vCPU that loses the shared-TB publish race pays for its discarded
	// translation (engine.lookupTB), so the per-vCPU clocks jitter by
	// TBTranslate multiples across host schedules. Zero it so virtual time
	// is exactly reproducible and the on/off comparison is meaningful.
	cfg.Cost.TBTranslate = 0
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m.Output(), m.VirtualTime(), m.AggregateStats().Checkpoints
}

// TestCheckpointingIsInvisibleToVirtualTime: the same guest run with
// checkpointing off and on (and again on, across host schedules) produces
// identical output and identical virtual time — capture cost is charged to
// the checkpoint component, never the guest-visible clocks.
func TestCheckpointingIsInvisibleToVirtualTime(t *testing.T) {
	outOff, vtOff, ckOff := runDeterminism(t, 0)
	if ckOff != 0 {
		t.Fatalf("checkpointing off captured %d checkpoints", ckOff)
	}
	want := []uint32{800, 800, 800, 800}
	for i, v := range outOff {
		if v != want[i] {
			t.Fatalf("baseline output = %v, want %v", outOff, want)
		}
	}
	for round := 0; round < 3; round++ {
		outOn, vtOn, ckOn := runDeterminism(t, 2_000)
		if ckOn == 0 {
			t.Fatal("checkpointing on captured no checkpoints")
		}
		if len(outOn) != len(outOff) {
			t.Fatalf("output length %d vs %d", len(outOn), len(outOff))
		}
		for i := range outOn {
			if outOn[i] != outOff[i] {
				t.Fatalf("round %d: output diverged: %v vs %v", round, outOn, outOff)
			}
		}
		if vtOn != vtOff {
			t.Fatalf("round %d: virtual time diverged: %d (on) vs %d (off)", round, vtOn, vtOff)
		}
	}
}

// TestDeadlockFutexSelf: a lone vCPU futex-waiting on a value nobody will
// change is the minimal all-parked deadlock; the detector must convert it
// into a structured core.DeadlockError instead of hanging the host.
func TestDeadlockFutexSelf(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    ldr r0, =cell
    movi r1, #0
    svc #7
    movi r0, #0
    svc #1
.align 16
cell: .word 0
`)
	m := newTestMachine(t, "hst", im)
	cpu, err := m.Start(im.Entry)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run()
	var derr *core.DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("want core.DeadlockError, got %v", err)
	}
	if len(derr.Waiters) != 1 {
		t.Fatalf("waiters = %+v, want exactly one", derr.Waiters)
	}
	w := derr.Waiters[0]
	if w.TID != cpu.TID() || w.Kind != "futex" || w.Addr != im.MustSymbol("cell") {
		t.Errorf("waiter = %+v, want futex wait on cell by tid %d", w, cpu.TID())
	}
}

// TestDeadlockJoinCycle: two vCPUs joining each other can never finish, and
// neither has a wake channel the stop path can reach — the detector plus the
// stop broadcast must still unwedge the host and report both waiters.
func TestDeadlockJoinCycle(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    ldr r0, =peer
    movi r1, #1
    svc #3
    svc #4
    movi r0, #0
    svc #1
peer:
    svc #4
    movi r0, #0
    svc #1
`)
	m := newTestMachine(t, "hst", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	err := m.Run()
	var derr *core.DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("want core.DeadlockError, got %v", err)
	}
	if len(derr.Waiters) != 2 {
		t.Fatalf("waiters = %+v, want both joiners", derr.Waiters)
	}
	for _, w := range derr.Waiters {
		if w.Kind != "join" {
			t.Errorf("waiter %+v should be a join wait", w)
		}
	}
}

// TestDeadlockBarrierShortfall: a 3-party barrier with only two arrivals
// parks every live vCPU; the diagnostic reports the barrier occupancy.
func TestDeadlockBarrierShortfall(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    ldr r0, =bar
    movi r1, #3
    svc #9
    ldr r0, =waiter
    movi r1, #0
    svc #3
    ldr r0, =bar
    svc #10
    movi r0, #0
    svc #1
waiter:
    ldr r0, =bar
    svc #10
    movi r0, #0
    svc #1
.align 16
bar: .word 0
`)
	m := newTestMachine(t, "hst", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	err := m.Run()
	var derr *core.DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("want core.DeadlockError, got %v", err)
	}
	if len(derr.Waiters) != 2 {
		t.Fatalf("waiters = %+v, want two barrier waiters", derr.Waiters)
	}
	for _, w := range derr.Waiters {
		if w.Kind != "barrier" || w.Total != 3 {
			t.Errorf("waiter %+v, want a barrier wait with total 3", w)
		}
	}
}

// TestRunContextCancel: cancelling the context stops a spinning guest
// cleanly and surfaces the context error.
func TestRunContextCancel(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
loop:
    b loop
`)
	cfg := DefaultConfig("hst") // no instruction budget: only the cancel stops it
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err = m.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestVirtualDeadline: the deadline is virtual-time based, so a spinning
// guest stops with a DeadlineError naming the clock that crossed it.
func TestVirtualDeadline(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
loop:
    b loop
`)
	cfg := DefaultConfig("hst")
	cfg.MaxGuestInstrs = 1_000_000_000
	cfg.VirtualDeadline = 50_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	err = m.Run()
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlineError, got %v", err)
	}
	if de.Deadline != 50_000 || de.Clock <= de.Deadline {
		t.Errorf("diagnostic = %+v", de)
	}
}

// TestSpawnAfterStopReturnsStopError (regression): Start/SpawnThread on a
// stopped machine used to launch a goroutine that raced teardown; now they
// fail fast, wrapping the machine's stop error.
func TestSpawnAfterStopReturnsStopError(t *testing.T) {
	im := buildImage(t, `
.org 0x10000
.entry main
main:
    movi r1, #0
    str r0, [r1]
    movi r0, #0
    svc #1
`)
	m := newTestMachine(t, "hst", im)
	if _, err := m.Start(im.Entry); err != nil {
		t.Fatal(err)
	}
	runErr := m.Run()
	if runErr == nil {
		t.Fatal("store to unmapped page should fail the run")
	}
	_, err := m.SpawnThread(im.Entry)
	if err == nil {
		t.Fatal("SpawnThread on a stopped machine must fail")
	}
	if !strings.Contains(err.Error(), "machine stopped") || !errors.Is(err, runErr) {
		t.Errorf("spawn error should wrap the stop error: %v", err)
	}
	if _, err := m.Start(im.Entry); err == nil {
		t.Error("Start on a stopped machine must fail")
	}
}

// TestRecoveryDisabledByNegativeAttempts: RecoveryAttempts < 0 returns the
// raw failure even when a checkpoint exists.
func TestRecoveryDisabledByNegativeAttempts(t *testing.T) {
	cfg := DefaultConfig("hst")
	cfg.MaxGuestInstrs = 2_000_000_000
	cfg.CheckpointEvery = 100_000
	cfg.RecoveryAttempts = -1
	cfg.FaultInjector = faultinject.New(faultinject.Rule{
		Op: faultinject.OpMemStore, Action: faultinject.ActFault, After: 6_000, Count: 1,
	})
	sb, err := guestlib.BuildStackBench(0x10000, 256)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadImage(sb.Image); err != nil {
		t.Fatal(err)
	}
	if err := sb.InitStack(m.Mem()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := m.SpawnThread(sb.Worker, 384); err != nil {
			t.Fatal(err)
		}
	}
	err = m.Run()
	if err == nil {
		t.Fatal("with recovery disabled the injected fault must surface")
	}
	if !strings.Contains(err.Error(), "fault") {
		t.Errorf("error should be the injected guest fault: %v", err)
	}
	if agg := m.AggregateStats(); agg.RecoveryRestores != 0 {
		t.Errorf("RecoveryRestores = %d with recovery disabled", agg.RecoveryRestores)
	}
}
