package engine

import (
	"fmt"
	"sync"
	"testing"

	"atomemu/internal/asm"
	"atomemu/internal/obs"
)

// The contention benchmarks measure the two host-side hot paths the paper's
// argument turns on (§III): shared translation-cache lookup and the
// per-exclusive-section accounting charged by every HST/PICO-ST SC. Run
// them at 1/4/16 workers to see how the engine scales with vCPUs.

// benchPCs returns pcs spread like real block starts.
func benchPCs(n int) []uint32 {
	pcs := make([]uint32, n)
	for i := range pcs {
		pcs[i] = 0x10000 + uint32(i)*16
	}
	return pcs
}

func benchSharedTBLookup(b *testing.B, workers int) {
	m, err := NewMachine(DefaultConfig("pico-cas"))
	if err != nil {
		b.Fatal(err)
	}
	pcs := benchPCs(1024)
	for _, pc := range pcs {
		m.tbs.insert(pc, &TB{})
	}
	lookup := m.tbs.get
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			r := seed*2654435761 + 1
			for i := 0; i < per; i++ {
				r ^= r << 13
				r ^= r >> 17
				r ^= r << 5
				if lookup(pcs[r%uint32(len(pcs))]) == nil {
					panic("missing TB")
				}
			}
		}(uint32(w) + 1)
	}
	wg.Wait()
}

func BenchmarkSharedTBLookup(b *testing.B) {
	for _, w := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("vcpus-%d", w), func(b *testing.B) { benchSharedTBLookup(b, w) })
	}
}

func benchChargeExclusive(b *testing.B, vcpus int) {
	m, err := NewMachine(DefaultConfig("hst"))
	if err != nil {
		b.Fatal(err)
	}
	cpus := make([]*CPU, vcpus)
	for i := range cpus {
		cpus[i] = newCPU(m, uint32(i+1))
	}
	m.cpuMu.Lock()
	m.cpus = append(m.cpus, cpus...)
	m.cpuMu.Unlock()
	m.runningCPUs.Store(int32(vcpus))
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/vcpus + 1
	for w := 0; w < vcpus; w++ {
		wg.Add(1)
		go func(c *CPU) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.chargeExclusiveEntry(c)
			}
		}(cpus[w])
	}
	wg.Wait()
}

func BenchmarkChargeExclusiveEntry(b *testing.B) {
	for _, w := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("vcpus-%d", w), func(b *testing.B) { benchChargeExclusive(b, w) })
	}
}

// benchGuestSC runs the LL/SC atomic-counter guest end to end: b.N total
// SC-success increments split across the vCPUs. This exercises the whole SC
// hot path — exclusive protocol, accounting, TB dispatch.
func benchGuestSC(b *testing.B, scheme string, threads int, traced bool) {
	im, err := asm.Assemble(`
.org 0x10000
.entry worker
worker:
    ldr r4, =counter
loop:
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne loop
    subsi r0, r0, #1
    bne loop
    movi r0, #0
    svc #1
.align 1024
counter: .word 0
`)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(scheme)
	cfg.TraceEvents = traced
	m, err := NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		b.Fatal(err)
	}
	iters := uint32(b.N/threads + 1)
	b.ResetTimer()
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(im.Entry, iters); err != nil {
			b.Fatal(err)
		}
	}
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkGuestSC(b *testing.B) {
	for _, scheme := range []string{"hst", "pico-st"} {
		for _, threads := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/vcpus-%d", scheme, threads), func(b *testing.B) {
				benchGuestSC(b, scheme, threads, false)
			})
		}
	}
}

// BenchmarkGuestSCTraced is the A/B companion: the same guest with the
// event tracer on, for eyeballing the enabled-path cost against
// BenchmarkGuestSC.
func BenchmarkGuestSCTraced(b *testing.B) {
	for _, threads := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("hst/vcpus-%d", threads), func(b *testing.B) {
			benchGuestSC(b, "hst", threads, true)
		})
	}
}

// guardRing defeats constant folding of the nil check in the guard below:
// the compiler cannot prove a package-level var stays nil.
var guardRing *obs.Ring

// TestTracerDisabledOverheadGuard is the CI perf guard for the tracer's
// disabled path. Rather than an A/B wall-clock comparison of full guest
// runs (noisy under parallel CI), it measures the disabled emit site
// itself — one nil check on a *Ring — and fails if it costs more than
// tracerDisabledMaxNs per call, far below the ~100ns an SC already pays.
// A regression here means Emit stopped being nil-check-cheap (e.g. someone
// hoisted work before the nil test), which is exactly the bug this guards.
func TestTracerDisabledOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("perf guard skipped in -short")
	}
	if raceEnabled {
		t.Skip("perf guard skipped under -race: instrumentation dominates the nil check")
	}
	const tracerDisabledMaxNs = 20.0
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			guardRing.Emit(obs.EvSCOk, uint32(i), 0)
		}
	})
	perOp := float64(res.T.Nanoseconds()) / float64(res.N)
	t.Logf("disabled-tracer emit: %.2f ns/op over %d iterations", perOp, res.N)
	if perOp > tracerDisabledMaxNs {
		t.Fatalf("disabled-tracer emit costs %.2f ns/op, budget %v ns — the nil-check fast path regressed",
			perOp, tracerDisabledMaxNs)
	}
}
