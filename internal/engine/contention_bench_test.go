package engine

import (
	"fmt"
	"sync"
	"testing"

	"atomemu/internal/asm"
)

// The contention benchmarks measure the two host-side hot paths the paper's
// argument turns on (§III): shared translation-cache lookup and the
// per-exclusive-section accounting charged by every HST/PICO-ST SC. Run
// them at 1/4/16 workers to see how the engine scales with vCPUs.

// benchPCs returns pcs spread like real block starts.
func benchPCs(n int) []uint32 {
	pcs := make([]uint32, n)
	for i := range pcs {
		pcs[i] = 0x10000 + uint32(i)*16
	}
	return pcs
}

func benchSharedTBLookup(b *testing.B, workers int) {
	m, err := NewMachine(DefaultConfig("pico-cas"))
	if err != nil {
		b.Fatal(err)
	}
	pcs := benchPCs(1024)
	for _, pc := range pcs {
		m.tbs.insert(pc, &TB{})
	}
	lookup := m.tbs.get
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			r := seed*2654435761 + 1
			for i := 0; i < per; i++ {
				r ^= r << 13
				r ^= r >> 17
				r ^= r << 5
				if lookup(pcs[r%uint32(len(pcs))]) == nil {
					panic("missing TB")
				}
			}
		}(uint32(w) + 1)
	}
	wg.Wait()
}

func BenchmarkSharedTBLookup(b *testing.B) {
	for _, w := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("vcpus-%d", w), func(b *testing.B) { benchSharedTBLookup(b, w) })
	}
}

func benchChargeExclusive(b *testing.B, vcpus int) {
	m, err := NewMachine(DefaultConfig("hst"))
	if err != nil {
		b.Fatal(err)
	}
	cpus := make([]*CPU, vcpus)
	for i := range cpus {
		cpus[i] = newCPU(m, uint32(i+1))
	}
	m.cpuMu.Lock()
	m.cpus = append(m.cpus, cpus...)
	m.cpuMu.Unlock()
	m.runningCPUs.Store(int32(vcpus))
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/vcpus + 1
	for w := 0; w < vcpus; w++ {
		wg.Add(1)
		go func(c *CPU) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.chargeExclusiveEntry(c)
			}
		}(cpus[w])
	}
	wg.Wait()
}

func BenchmarkChargeExclusiveEntry(b *testing.B) {
	for _, w := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("vcpus-%d", w), func(b *testing.B) { benchChargeExclusive(b, w) })
	}
}

// benchGuestSC runs the LL/SC atomic-counter guest end to end: b.N total
// SC-success increments split across the vCPUs. This exercises the whole SC
// hot path — exclusive protocol, accounting, TB dispatch.
func benchGuestSC(b *testing.B, scheme string, threads int) {
	im, err := asm.Assemble(`
.org 0x10000
.entry worker
worker:
    ldr r4, =counter
loop:
    ldrex r1, [r4]
    addi r1, r1, #1
    strex r2, r1, [r4]
    cmpi r2, #0
    bne loop
    subsi r0, r0, #1
    bne loop
    movi r0, #0
    svc #1
.align 1024
counter: .word 0
`)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMachine(DefaultConfig(scheme))
	if err != nil {
		b.Fatal(err)
	}
	if err := m.LoadImage(im); err != nil {
		b.Fatal(err)
	}
	iters := uint32(b.N/threads + 1)
	b.ResetTimer()
	for i := 0; i < threads; i++ {
		if _, err := m.SpawnThread(im.Entry, iters); err != nil {
			b.Fatal(err)
		}
	}
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkGuestSC(b *testing.B) {
	for _, scheme := range []string{"hst", "pico-st"} {
		for _, threads := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/vcpus-%d", scheme, threads), func(b *testing.B) {
				benchGuestSC(b, scheme, threads)
			})
		}
	}
}
