package adversary

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// ReproVersion is bumped whenever the repro format or the trace-hash
// recipe changes incompatibly.
const ReproVersion = 1

// Expect pins what a repro's replay must observe.
type Expect struct {
	Class          string `json:"class"`
	OracleViolated bool   `json:"oracle_violated"`
	// ErrContains, when set, must be a substring of the machine error.
	ErrContains string `json:"err_contains,omitempty"`
}

// Repro is a self-contained, committable reproduction of a finding: a
// normalized step-mode scenario plus the exact outcome it must replay
// to, byte-for-byte (the trace hash covers the full event stream).
type Repro struct {
	Version   int      `json:"version"`
	Note      string   `json:"note,omitempty"`
	Scenario  Scenario `json:"scenario"`
	Expect    Expect   `json:"expect"`
	TraceHash string   `json:"trace_hash"`
}

// NewRepro pins a finding. Only step-mode scenarios are accepted: free
// runs are not deterministic and cannot anchor a byte-stable trace hash.
func NewRepro(s Scenario, o *Outcome, note string) (*Repro, error) {
	s = s.withDefaults()
	if s.Mode != ModeStep {
		return nil, fmt.Errorf("adversary: repros require step mode, got %q", s.Mode)
	}
	e := Expect{Class: o.Class.String(), OracleViolated: o.OracleViolated()}
	if o.Class == ClassLivelock {
		e.ErrContains = "livelock"
	}
	return &Repro{
		Version:   ReproVersion,
		Note:      note,
		Scenario:  s,
		Expect:    e,
		TraceHash: fmt.Sprintf("%016x", o.TraceHash),
	}, nil
}

// Replay re-runs the pinned scenario and checks every expectation:
// outcome class, oracle verdict, error substring and the trace hash. A
// non-nil error describes the divergence; the outcome is returned either
// way for diagnostics.
func (r *Repro) Replay() (*Outcome, error) {
	if r.Version != ReproVersion {
		return nil, fmt.Errorf("adversary: repro version %d, this build replays version %d", r.Version, ReproVersion)
	}
	wantClass, err := ParseClass(r.Expect.Class)
	if err != nil {
		return nil, err
	}
	o, err := RunScenario(r.Scenario)
	if err != nil {
		return nil, fmt.Errorf("adversary: replay setup: %w", err)
	}
	if o.Class != wantClass {
		return o, fmt.Errorf("adversary: replay class diverged: got %s want %s (err=%q oracle=%q)",
			o.Class, wantClass, o.Err, o.OracleErr)
	}
	if o.OracleViolated() != r.Expect.OracleViolated {
		return o, fmt.Errorf("adversary: replay oracle verdict diverged: violated=%v want %v (%q)",
			o.OracleViolated(), r.Expect.OracleViolated, o.OracleErr)
	}
	if r.Expect.ErrContains != "" && !strings.Contains(o.Err, r.Expect.ErrContains) {
		return o, fmt.Errorf("adversary: replay error %q does not contain %q", o.Err, r.Expect.ErrContains)
	}
	if got := fmt.Sprintf("%016x", o.TraceHash); got != r.TraceHash {
		return o, fmt.Errorf("adversary: replay trace hash diverged: got %s want %s (replay is no longer deterministic)",
			got, r.TraceHash)
	}
	return o, nil
}

// WriteFile saves the repro as indented JSON.
func (r *Repro) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro reads a repro file, validating the scenario's fault rules so
// a stale or hand-edited file fails loudly rather than replaying junk.
func LoadRepro(path string) (*Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("adversary: %s: %w", path, err)
	}
	for i, f := range r.Scenario.Faults {
		if _, err := f.Rule(); err != nil {
			return nil, fmt.Errorf("adversary: %s: fault[%d]: %w", path, i, err)
		}
	}
	if _, err := ParseClass(r.Expect.Class); err != nil {
		return nil, fmt.Errorf("adversary: %s: %w", path, err)
	}
	return &r, nil
}
